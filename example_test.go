package rfnoc_test

import (
	"fmt"

	rfnoc "repro"
)

// ExampleSimulate runs the 16 B baseline mesh under uniform traffic.
func ExampleSimulate() {
	mesh := rfnoc.NewMesh()
	gen := rfnoc.NewPatternTraffic(mesh, rfnoc.Uniform, 0, 1)
	r := rfnoc.Simulate(rfnoc.BaselineConfig(mesh, rfnoc.Width16B), gen,
		rfnoc.Options{Cycles: 2000})
	fmt.Println("drained:", r.Drained)
	fmt.Println("latency within [20,60):", r.AvgLatency >= 20 && r.AvgLatency < 60)
	fmt.Println("area mm2:", fmt.Sprintf("%.2f", r.AreaMM2))
	// Output:
	// drained: true
	// latency within [20,60): true
	// area mm2: 30.29
}

// ExampleStaticShortcuts selects the architecture-specific overlay.
func ExampleStaticShortcuts() {
	mesh := rfnoc.NewMesh()
	edges := rfnoc.StaticShortcuts(mesh, rfnoc.ShortcutBudget)
	fmt.Println("shortcuts:", len(edges))
	// The first max-cost shortcut spans the eligible diameter.
	fmt.Println("first span:", mesh.Manhattan(edges[0].From, edges[0].To))
	// Output:
	// shortcuts: 16
	// first span: 16
}

// ExampleNewBandPlan allocates the RF-I bundle's frequency bands.
func ExampleNewBandPlan() {
	mesh := rfnoc.NewMesh()
	edges := rfnoc.StaticShortcuts(mesh, 15)
	plan, err := rfnoc.NewBandPlan(edges, 16, mesh.RFPlacement(50)[:35])
	fmt.Println("err:", err)
	fmt.Println("bands:", len(plan.Bands))
	fmt.Println("aggregate B/cycle:", plan.AggregateBytes())
	fmt.Println("multicast band:", plan.Bands[15].Multicast)
	// Output:
	// err: <nil>
	// bands: 16
	// aggregate B/cycle: 256
	// multicast band: true
}

// ExampleController walks the paper's reconfiguration flow.
func ExampleController() {
	mesh := rfnoc.NewMesh()
	ctl := rfnoc.NewController(mesh, rfnoc.Width4B, 50)
	st, err := ctl.ReconfigureForWorkload(rfnoc.NewPatternTraffic(mesh, rfnoc.Hotspot1, 0, 1))
	fmt.Println("err:", err)
	fmt.Println("shortcuts:", len(st.Shortcuts))
	fmt.Println("table-update cycles:", st.UpdateCycles)
	// Output:
	// err: <nil>
	// shortcuts: 16
	// table-update cycles: 99
}
