// Closed-loop system study: the trace experiments measure network
// latency; what an architect ultimately buys is application throughput.
// This example runs MSHR-limited cores (which stall when the network is
// slow, like a real CMP) against four designs and reports completed
// memory operations per core per cycle, plus a link-load heatmap showing
// where the narrow mesh hurts and how the overlay relieves it.
//
//	go run ./examples/closed_loop
package main

import (
	"fmt"

	rfnoc "repro"
)

func main() {
	mesh := rfnoc.NewMesh()
	params := rfnoc.CPUParams{IssueRate: 0.3, MSHRs: 8, HotBankFraction: 0.04}
	const cycles = 40000

	run := func(cfg rfnoc.Config) (*rfnoc.CPUSystem, *rfnoc.Network) {
		n := rfnoc.NewNetwork(cfg)
		s := rfnoc.NewCPUSystem(mesh, params, 11)
		if !rfnoc.RunClosedLoop(s, n, cycles) {
			panic("closed loop did not drain")
		}
		return s, n
	}

	// Profile once for the adaptive overlay (from the 16B run's own
	// observed counters — the paper's event-counter story).
	profSys, profNet := run(rfnoc.BaselineConfig(mesh, rfnoc.Width16B))
	freq := profNet.ObservedFrequency()
	_ = profSys

	configs := []struct {
		name string
		cfg  rfnoc.Config
	}{
		{"baseline 16B", rfnoc.BaselineConfig(mesh, rfnoc.Width16B)},
		{"baseline 4B", rfnoc.BaselineConfig(mesh, rfnoc.Width4B)},
		{"static 4B", rfnoc.StaticConfig(mesh, rfnoc.Width4B)},
		{"adaptive 4B", rfnoc.AdaptiveConfig(mesh, rfnoc.Width4B, 50, freq)},
	}

	fmt.Println("closed-loop cores (8 MSHRs, hot bank at (7,0)):")
	fmt.Println("\ndesign          ops/core/cycle   round trip   core stalls")
	var hot *rfnoc.Network
	for _, c := range configs {
		s, n := run(c.cfg)
		st := s.Stats()
		fmt.Printf("%-15s %11.4f %12.1f cy %12d\n",
			c.name, st.Throughput(cycles, 64), st.AvgRoundTrip(), st.StallCycles)
		if c.name == "baseline 4B" {
			hot = n
		}
	}

	fmt.Println("\nlink-load heatmap of the congested 4B baseline (bottom row is mesh row 0;")
	fmt.Println("darker = more of the router's mesh bandwidth in use):")
	fmt.Println(hot.Heatmap())
	fmt.Println("hottest links:")
	for _, l := range hot.HottestLinks(5) {
		fmt.Println("  " + l)
	}
}
