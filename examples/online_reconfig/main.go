// Runtime reconfiguration: the paper allocates RF-I bands "at compile
// time or runtime". This example runs an application whose communication
// pattern changes phase (hotspot -> pipeline dataflow -> different
// hotspot) on a 4 B mesh, and compares three overlays: none, a single
// adaptive configuration chosen for the first phase only, and the online
// adapter that re-selects shortcuts every window from the network's own
// event counters — paying the drain and 99-cycle table-update costs
// inside the simulation.
//
//	go run ./examples/online_reconfig
package main

import (
	"fmt"

	rfnoc "repro"
)

const (
	phaseCycles = 25000
	totalCycles = 3 * phaseCycles
	window      = 12500
)

// rate loads the 4 B mesh heavily enough that which flows the overlay
// serves matters, not just that an overlay exists.
const rate = 0.011

func phases(mesh *rfnoc.Mesh, seed int64) *rfnoc.PhasedWorkload {
	return &rfnoc.PhasedWorkload{
		Phases: []rfnoc.Generator{
			rfnoc.NewPatternTraffic(mesh, rfnoc.UniDF, rate, seed),
			rfnoc.NewPatternTraffic(mesh, rfnoc.Hotspot1, rate, seed),
			rfnoc.NewPatternTraffic(mesh, rfnoc.Hotspot4, rate, seed),
		},
		PhaseCycles: phaseCycles,
	}
}

func main() {
	mesh := rfnoc.NewMesh()

	// No overlay.
	base := rfnoc.Simulate(rfnoc.BaselineConfig(mesh, rfnoc.Width4B),
		phases(mesh, 7), rfnoc.Options{Cycles: totalCycles})

	// One adaptive configuration, selected for phase 1 and never changed
	// (what per-application reconfiguration does when the application
	// itself changes phase).
	freq := rfnoc.ProfileTraffic(rfnoc.NewPatternTraffic(mesh, rfnoc.UniDF, rate, 7), mesh, 20000)
	fixed := rfnoc.Simulate(rfnoc.AdaptiveConfig(mesh, rfnoc.Width4B, 50, freq),
		phases(mesh, 7), rfnoc.Options{Cycles: totalCycles})

	// Online adaptation: re-select every window from observed counters.
	ctl := rfnoc.NewController(mesh, rfnoc.Width4B, 50)
	st, err := ctl.ReconfigureForProfile(freq)
	if err != nil {
		panic(err)
	}
	net := rfnoc.NewNetwork(st.Config)
	adapter := rfnoc.NewOnlineAdapter(ctl, net)
	adapter.Window = window
	if !adapter.Run(phases(mesh, 7), totalCycles) {
		panic("online run failed")
	}
	net.Drain(500000)
	onlineStats := net.Stats()

	fmt.Println("phased workload (UniDF -> 1Hotspot -> 4Hotspot) on a 4B mesh:")
	fmt.Println("\noverlay                 latency/flit")
	fmt.Printf("%-22s %9.2f cy\n", "none", base.AvgLatency)
	fmt.Printf("%-22s %9.2f cy\n", "fixed (phase-1 only)", fixed.AvgLatency)
	fmt.Printf("%-22s %9.2f cy\n", "online adaptive", onlineStats.AvgFlitLatency())

	a := adapter.Stats()
	fmt.Printf("\nonline adapter: %d windows, %d reconfigurations, %d quiesce cycles,\n",
		a.Windows, a.Reconfigurations, a.QuiesceCycles)
	fmt.Printf("%d routing-table update cycles charged in-simulation\n",
		onlineStats.ReconfigUpdateCycles)
	fmt.Println("\na mis-matched overlay is worse than none: deterministic routes chase")
	fmt.Println("shortcuts selected for traffic that no longer exists, creating contention.")
	fmt.Println("the online adapter follows the phases at a bounded retuning cost.")
}
