// Quickstart: simulate the baseline 16 B mesh and an RF-I overlaid mesh
// under uniform traffic and compare latency, power and area.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	rfnoc "repro"
)

func main() {
	mesh := rfnoc.NewMesh()
	opts := rfnoc.Options{Cycles: 50000, Seed: 1}

	// A workload: one of the paper's probabilistic traces.
	workload := func() rfnoc.Generator {
		return rfnoc.NewPatternTraffic(mesh, rfnoc.Uniform, 0, 1)
	}

	// The plain 16 B mesh.
	base := rfnoc.Simulate(rfnoc.BaselineConfig(mesh, rfnoc.Width16B), workload(), opts)

	// The same mesh overlaid with 16 architecture-specific RF-I
	// shortcuts (selected at design time by the max-cost heuristic).
	static := rfnoc.Simulate(rfnoc.StaticConfig(mesh, rfnoc.Width16B), workload(), opts)

	// The paper's headline design: a narrow 4 B mesh whose performance
	// is recovered by application-specific adaptive shortcuts.
	freq := rfnoc.ProfileTraffic(workload(), mesh, 20000)
	adaptive := rfnoc.Simulate(rfnoc.AdaptiveConfig(mesh, rfnoc.Width4B, 50, freq), workload(), opts)

	fmt.Println("design            latency      power      area")
	row := func(name string, r rfnoc.Result) {
		fmt.Printf("%-16s %7.2f cy  %6.2f W  %6.2f mm2\n",
			name, r.AvgLatency, r.PowerW, r.AreaMM2)
	}
	row("baseline 16B", base)
	row("static RF 16B", static)
	row("adaptive RF 4B", adaptive)

	fmt.Printf("\nadaptive 4B vs baseline 16B: %.0f%% latency, %.0f%% power, %.0f%% area\n",
		100*adaptive.AvgLatency/base.AvgLatency,
		100*adaptive.PowerW/base.PowerW,
		100*adaptive.AreaMM2/base.AreaMM2)
}
