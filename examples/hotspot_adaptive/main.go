// Hotspot adaptation: walk through the paper's reconfiguration flow on a
// hotspot workload — profile the traffic, select application-specific
// shortcuts around the hot cache bank, and show how the adaptive overlay
// rescues a bandwidth-reduced mesh that the fixed static overlay cannot.
//
//	go run ./examples/hotspot_adaptive
package main

import (
	"fmt"

	rfnoc "repro"
)

func main() {
	mesh := rfnoc.NewMesh()
	opts := rfnoc.Options{Cycles: 60000, Seed: 7}
	workload := func() rfnoc.Generator {
		return rfnoc.NewPatternTraffic(mesh, rfnoc.Hotspot1, 0, 7)
	}

	// Step 1 - Shortcut selection. The paper assumes the application's
	// communication profile is available (event counters or a prior
	// run); we dry-run the workload to collect F(x,y).
	freq := rfnoc.ProfileTraffic(workload(), mesh, 20000)

	// The 1Hotspot trace centers on the cache bank at (7,0); count the
	// profiled traffic it receives.
	hot := mesh.ID(7, 0)
	var toHot, total int64
	for src := range freq {
		if freq[src] == nil {
			continue
		}
		for dst, f := range freq[src] {
			total += f
			if dst == hot {
				toHot += f
			}
		}
	}
	fmt.Printf("profiled %d messages; %.1f%% target the hot bank at (7,0)\n\n",
		total, 100*float64(toHot)/float64(total))

	// Step 2 - Transmitter/receiver tuning: the adaptive config tunes 16
	// of the 50 access points' Tx/Rx pairs to form the selected
	// shortcuts. Step 3 - routing tables are rebuilt for the new paths
	// (the paper charges 99 overlapped cycles; table construction here).
	cfg := rfnoc.AdaptiveConfig(mesh, rfnoc.Width4B, 50, freq)
	fmt.Println("selected application-specific shortcuts:")
	for _, e := range cfg.Shortcuts {
		cf, ct := mesh.Coord(e.From), mesh.Coord(e.To)
		mark := ""
		if mesh.Manhattan(e.To, hot) <= 2 || mesh.Manhattan(e.From, hot) <= 2 {
			mark = "   <- serves the hotspot"
		}
		fmt.Printf("  (%d,%d) -> (%d,%d)%s\n", cf.X, cf.Y, ct.X, ct.Y, mark)
	}

	// Compare: 16 B baseline, 4 B baseline (congested), 4 B + static
	// overlay, 4 B + adaptive overlay.
	base16 := rfnoc.Simulate(rfnoc.BaselineConfig(mesh, rfnoc.Width16B), workload(), opts)
	base4 := rfnoc.Simulate(rfnoc.BaselineConfig(mesh, rfnoc.Width4B), workload(), opts)
	static4 := rfnoc.Simulate(rfnoc.StaticConfig(mesh, rfnoc.Width4B), workload(), opts)
	adapt4 := rfnoc.Simulate(cfg, workload(), opts)

	fmt.Println("\ndesign           latency        vs 16B    power")
	row := func(name string, r rfnoc.Result) {
		fmt.Printf("%-15s %8.2f cy   %6.2fx  %6.2f W\n",
			name, r.AvgLatency, r.AvgLatency/base16.AvgLatency, r.PowerW)
	}
	row("baseline 16B", base16)
	row("baseline 4B", base4)
	row("static 4B", static4)
	row("adaptive 4B", adapt4)

	fmt.Printf("\nthe adaptive overlay recovers %.0f%% of the bandwidth-reduction damage\n",
		100*(base4.AvgLatency-adapt4.AvgLatency)/(base4.AvgLatency-base16.AvgLatency))
	fmt.Printf("while saving %.0f%% power versus the 16 B baseline\n",
		100*(1-adapt4.PowerW/base16.PowerW))
}
