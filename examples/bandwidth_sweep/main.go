// Bandwidth sweep: the paper's core argument in one program. Sweep the
// mesh link width from 16 B down to 4 B for the baseline and the
// adaptive RF-I overlay, across two contrasting workloads, and print the
// latency/power frontier (a miniature of Figures 8 and 10a).
//
//	go run ./examples/bandwidth_sweep
package main

import (
	"fmt"

	rfnoc "repro"
)

func main() {
	mesh := rfnoc.NewMesh()
	opts := rfnoc.Options{Cycles: 40000, Seed: 11}
	widths := []rfnoc.LinkWidth{rfnoc.Width16B, rfnoc.Width8B, rfnoc.Width4B}

	for _, pattern := range []rfnoc.Pattern{rfnoc.Uniform, rfnoc.Hotspot2} {
		workload := func() rfnoc.Generator {
			return rfnoc.NewPatternTraffic(mesh, pattern, 0, 11)
		}
		freq := rfnoc.ProfileTraffic(workload(), mesh, 20000)

		base16 := rfnoc.Simulate(rfnoc.BaselineConfig(mesh, rfnoc.Width16B), workload(), opts)
		fmt.Printf("== %v ==\n", pattern)
		fmt.Println("design          width   latency (norm)   power (norm)   area mm2")
		for _, w := range widths {
			r := rfnoc.Simulate(rfnoc.BaselineConfig(mesh, w), workload(), opts)
			fmt.Printf("baseline        %5v   %7.2f (%.2f)   %6.2f (%.2f)   %7.2f\n",
				w, r.AvgLatency, r.AvgLatency/base16.AvgLatency,
				r.PowerW, r.PowerW/base16.PowerW, r.AreaMM2)
		}
		for _, w := range widths {
			r := rfnoc.Simulate(rfnoc.AdaptiveConfig(mesh, w, 50, freq), workload(), opts)
			fmt.Printf("adaptive RF-I   %5v   %7.2f (%.2f)   %6.2f (%.2f)   %7.2f\n",
				w, r.AvgLatency, r.AvgLatency/base16.AvgLatency,
				r.PowerW, r.PowerW/base16.PowerW, r.AreaMM2)
		}
		fmt.Println()
	}
	fmt.Println("reading: the adaptive 4B row should sit near 1.00 normalized latency")
	fmt.Println("at a fraction of the 16B baseline's power and area -- bandwidth where")
	fmt.Println("it is needed, RF-I shortcuts everywhere else.")
}
