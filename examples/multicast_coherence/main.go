// Multicast under a directory protocol: drive the same coherence
// workload (whose invalidates and fills are genuine multicasts) through
// the three delivery mechanisms the paper compares — unicast expansion,
// virtual-circuit-tree forwarding, and the RF-I multicast band — and
// report latency, power and the energy saved by DBV power gating.
//
//	go run ./examples/multicast_coherence
package main

import (
	"fmt"

	rfnoc "repro"
)

func main() {
	mesh := rfnoc.NewMesh()
	opts := rfnoc.Options{Cycles: 50000, Seed: 3}
	workload := func() rfnoc.Generator {
		return rfnoc.NewCoherenceTraffic(mesh, rfnoc.CoherenceWorkload{
			// Hot shared blocks keep sharer sets similar, so multicast
			// destination sets repeat -- the locality the paper's VCT
			// baseline depends on.
			HotBlocks: 24, HotFraction: 0.6,
		}, 3)
	}

	mode := func(mc rfnoc.MulticastMode) rfnoc.Config {
		cfg := rfnoc.BaselineConfig(mesh, rfnoc.Width16B)
		cfg.Multicast = mc
		if mc == rfnoc.MulticastRF {
			cfg.RFEnabled = mesh.RFPlacement(50)
		}
		return cfg
	}

	expand := rfnoc.Simulate(mode(rfnoc.MulticastExpand), workload(), opts)
	vct := rfnoc.Simulate(mode(rfnoc.MulticastVCT), workload(), opts)
	rf := rfnoc.Simulate(mode(rfnoc.MulticastRF), workload(), opts)

	fmt.Println("multicast delivery under a directory coherence workload (16B mesh):")
	fmt.Println("\nmechanism          latency     power    mesh flit-hops   deliveries")
	row := func(name string, r rfnoc.Result) {
		fmt.Printf("%-17s %7.2f cy  %6.2f W  %14d   %10d\n",
			name, r.AvgLatency, r.PowerW, r.Stats.MeshFlitHops, r.Stats.MulticastDeliveries)
	}
	row("unicast expansion", expand)
	row("VCT trees", vct)
	row("RF-I broadcast", rf)

	fmt.Printf("\nVCT tree reuse: %d hits / %d misses (table area cost %.2f mm2)\n",
		vct.Stats.VCTHits, vct.Stats.VCTMisses, vct.Area.VCT)
	fmt.Printf("VCT removes %.0f%% of the mesh flit-hops unicast expansion pays\n",
		100*(1-float64(vct.Stats.MeshFlitHops)/float64(expand.Stats.MeshFlitHops)))
	fmt.Printf("\nRF multicast moved %d bits on the multicast band\n", rf.Stats.RFMulticastBits)
	fmt.Printf("DBV power gating saved %d receiver-flit decodes\n", rf.Stats.RFGatedRxFlits)
}
