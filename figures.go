package rfnoc

import (
	"repro/internal/experiments"
	"repro/internal/topology"
)

// The functions below regenerate the paper's evaluation artifacts; they
// are thin wrappers over internal/experiments and mirror cmd/experiments.

// Figure1 collects traffic-by-manhattan-distance histograms for the
// application traces on the 16 B baseline mesh.
func Figure1(m *Mesh, opts Options) experiments.Fig1Result {
	return experiments.Fig1(m, opts)
}

// Figure7 runs the RF-enabled-router trade-off study (static versus
// adaptive with 50 and 25 access points on the 16 B mesh).
func Figure7(m *Mesh, opts Options) experiments.Fig7Result {
	return experiments.Fig7(m, opts)
}

// Figure8 runs the mesh bandwidth-reduction study (16/8/4 B crossed with
// baseline/static/adaptive).
func Figure8(m *Mesh, opts Options) experiments.Fig7Result {
	return experiments.Fig8(m, opts)
}

// Table2Area computes the area table for the paper's nine designs.
func Table2Area(m *Mesh) []experiments.Table2Row {
	return experiments.Table2(m)
}

// Figure9 runs the multicast study (VCT, RF multicast, and multicast
// plus shortcuts at 20% and 50% destination-set locality).
func Figure9(m *Mesh, opts Options) experiments.Fig9Result {
	return experiments.Fig9(m, opts)
}

// Figure10a runs the unified unicast power-performance comparison.
func Figure10a(m *Mesh, opts Options) []experiments.Fig10Line {
	return experiments.Fig10a(m, opts)
}

// Figure10b runs the unified multicast power-performance comparison.
func Figure10b(m *Mesh, opts Options) []experiments.Fig10Line {
	return experiments.Fig10b(m, opts)
}

// ApplicationStudy compares the adaptive 4 B design against the 16 B
// baseline on the application traces.
func ApplicationStudy(m *Mesh, opts Options) []experiments.AppResult {
	return experiments.AppStudy(m, opts)
}

// HeadlineClaims regenerates the paper's headline numbers and pairs each
// with its reported value.
func HeadlineClaims(m *Mesh, opts Options) []experiments.Claim {
	return experiments.Summary(m, opts)
}

// LoadLatencyCurves sweeps injection rate for the standard design set at
// the given width (the classic NoC characterization).
func LoadLatencyCurves(m *Mesh, w LinkWidth, pat Pattern, opts Options) []experiments.LoadCurve {
	return experiments.LoadLatency(m, experiments.LoadCurveDesigns(w), pat, nil, opts)
}

// ScalingStudy compares the 16 B baseline against the adaptive 4 B
// overlay across square mesh sizes at iso per-link load.
func ScalingStudy(sizes []int, opts Options) []experiments.ScalingRow {
	return experiments.ScalingStudy(sizes, opts)
}

// NewScaledMesh builds a WxH floorplan with the paper's placement recipe
// (memory corners, four edge cache clusters, cores elsewhere).
func NewScaledMesh(w, h int) *Mesh { return topology.New(w, h) }
