package rfnoc

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/noc"
)

// Closed-loop and runtime-adaptation surfaces.
type (
	// CPUSystem is the closed-loop core model: MSHR-limited cores whose
	// offered load throttles with network latency.
	CPUSystem = cpu.System

	// CPUParams configures the core model.
	CPUParams = cpu.Params

	// CPUStats summarizes closed-loop behaviour (issued/completed
	// operations, round trips, stall cycles).
	CPUStats = cpu.Stats

	// OnlineAdapter re-selects shortcuts at runtime from the network's
	// own frequency counters, window by window.
	OnlineAdapter = core.OnlineAdapter

	// PhasedWorkload switches between generators at fixed boundaries,
	// modeling phase-changing applications.
	PhasedWorkload = core.PhasedWorkload

	// LinkUse is a per-link activity snapshot for congestion analysis.
	LinkUse = noc.LinkUse
)

// NewCPUSystem builds the closed-loop workload model.
func NewCPUSystem(m *Mesh, p CPUParams, seed int64) *CPUSystem {
	return cpu.New(m, p, seed)
}

// RunClosedLoop drives a CPU system against a network for the given
// cycles and drains; returns false on drain failure.
func RunClosedLoop(s *CPUSystem, n *Network, cycles int64) bool {
	return cpu.RunClosedLoop(s, n, cycles)
}

// NewOnlineAdapter wraps a controller and network for runtime
// reconfiguration.
func NewOnlineAdapter(ctl *Controller, n *Network) *OnlineAdapter {
	return core.NewOnlineAdapter(ctl, n)
}
