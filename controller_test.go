package rfnoc_test

import (
	"testing"

	rfnoc "repro"
)

func TestPublicControllerFlow(t *testing.T) {
	m := rfnoc.NewMesh()
	c := rfnoc.NewController(m, rfnoc.Width4B, 50)
	st, err := c.ReconfigureForWorkload(rfnoc.NewPatternTraffic(m, rfnoc.Hotspot1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.UpdateCycles != rfnoc.ReconfigurationCycles(m.N()) {
		t.Errorf("update cycles = %d, want %d", st.UpdateCycles, rfnoc.ReconfigurationCycles(m.N()))
	}
	r := rfnoc.Simulate(st.Config, rfnoc.NewPatternTraffic(m, rfnoc.Hotspot1, 0, 1),
		rfnoc.Options{Cycles: 5000})
	if !r.Drained {
		t.Fatal("controller config did not drain")
	}
}

func TestPublicBandPlanBudget(t *testing.T) {
	m := rfnoc.NewMesh()
	edges := rfnoc.StaticShortcuts(m, rfnoc.ShortcutBudget)
	plan, err := rfnoc.NewBandPlan(edges, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.AggregateBytes(); got != rfnoc.RFIAggregateBytes {
		t.Errorf("aggregate = %d, want %d", got, rfnoc.RFIAggregateBytes)
	}
	// One band more than the budget must be rejected.
	over := append(edges, rfnoc.ShortcutEdge{From: 11, To: 88})
	if _, err := rfnoc.NewBandPlan(over, 16, nil); err == nil {
		t.Error("over-budget plan accepted")
	}
}
