// Command tracegen captures a workload into a trace file that cmd/rfsim
// can replay across design points (the way the paper captures Simics
// injection traces once and replays them on Garnet).
//
// Usage:
//
//	tracegen -workload 1hotspot [-cycles N] [-rate R] [-seed S]
//	         [-multicast] [-mclocality 20] [-o trace.txt]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/coherence"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	workload := flag.String("workload", "uniform", "workload name or 'coherence'")
	cycles := flag.Int64("cycles", 200000, "cycles to capture")
	rate := flag.Float64("rate", 0, "transaction rate (0 = default)")
	seed := flag.Int64("seed", 1, "random seed")
	multicast := flag.Bool("multicast", false, "augment with coherence multicasts")
	mcLocality := flag.Int("mclocality", 20, "multicast destination-set locality percent")
	mcRate := flag.Float64("mcrate", 0.05, "multicast injection probability per cycle")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	m := topology.New10x10()
	var gen traffic.Generator
	switch {
	case *workload == "coherence":
		gen = coherence.New(m, coherence.Workload{}, *seed)
	default:
		found := false
		for _, p := range traffic.Patterns() {
			if strings.EqualFold(p.String(), *workload) {
				gen = traffic.NewProbabilistic(m, p, *rate, *seed)
				found = true
			}
		}
		for _, a := range traffic.Apps() {
			if strings.EqualFold(a.String(), *workload) {
				gen = traffic.NewAppTrace(m, a, *rate, *seed)
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
		}
	}
	if *multicast && *workload != "coherence" {
		gen = traffic.NewMulticastAugment(m, gen, *mcRate, *mcLocality, *seed)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	n, err := traffic.WriteTrace(w, gen, *cycles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "captured %d messages over %d cycles\n", n, *cycles)
}
