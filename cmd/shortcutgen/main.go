// Command shortcutgen runs the paper's shortcut-selection algorithms and
// prints the chosen edges plus an ASCII rendering of the overlay (the
// Figure 2(b)/2(c) view).
//
// Usage:
//
//	shortcutgen -mode arch|app [-heuristic maxcost|permutation|region]
//	            [-workload 1hotspot] [-budget 16] [-rf 50] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/shortcut"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	mode := flag.String("mode", "arch", "arch (design-time, W objective) or app (F*W objective)")
	heuristic := flag.String("heuristic", "", "maxcost, permutation or region (defaults: arch=maxcost, app=region)")
	workload := flag.String("workload", "1hotspot", "workload profiled for app mode")
	budget := flag.Int("budget", 16, "number of shortcuts")
	rf := flag.Int("rf", 50, "RF-enabled routers for app mode (25, 50, 100)")
	seed := flag.Int64("seed", 1, "random seed")
	profileCycles := flag.Int64("profile-cycles", 20000, "profiling dry-run length")
	flag.Parse()

	m := topology.New10x10()
	g := m.Graph()
	p := shortcut.Params{
		Budget:   *budget,
		Eligible: m.ShortcutEligible,
		MeshW:    m.W, MeshH: m.H,
	}
	h := *heuristic
	if *mode == "app" {
		var gen traffic.Generator
		for _, pat := range traffic.Patterns() {
			if strings.EqualFold(pat.String(), *workload) {
				gen = traffic.NewProbabilistic(m, pat, 0, *seed)
			}
		}
		for _, a := range traffic.Apps() {
			if strings.EqualFold(a.String(), *workload) {
				gen = traffic.NewAppTrace(m, a, 0, *seed)
			}
		}
		if gen == nil {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
		}
		p.Freq = traffic.FrequencyMatrix(gen, m.N(), *profileCycles)
		rfSet := map[int]bool{}
		for _, id := range m.RFPlacement(*rf) {
			rfSet[id] = true
		}
		p.Eligible = func(id int) bool { return rfSet[id] && m.ShortcutEligible(id) }
		if h == "" {
			h = "region"
		}
	} else if h == "" {
		h = "maxcost"
	}

	var edges []shortcut.Edge
	switch h {
	case "maxcost":
		edges = shortcut.SelectMaxCost(g, p)
	case "permutation":
		edges = shortcut.SelectGreedyPermutation(g, p)
	case "region":
		if p.Freq == nil {
			fmt.Fprintln(os.Stderr, "region heuristic requires -mode app")
			os.Exit(2)
		}
		edges = shortcut.SelectRegionBased(g, p)
	default:
		fmt.Fprintf(os.Stderr, "unknown heuristic %q\n", h)
		os.Exit(2)
	}

	if err := shortcut.Validate(edges, p); err != nil {
		fmt.Fprintf(os.Stderr, "selection violated constraints: %v\n", err)
		os.Exit(1)
	}

	before := g.TotalPairCost()
	aug := shortcut.Apply(g, edges)
	after := aug.TotalPairCost()
	db, _, _ := g.Diameter()
	da, _, _ := aug.Diameter()
	fmt.Printf("mode=%s heuristic=%s budget=%d\n", *mode, h, *budget)
	fmt.Printf("total pair cost: %d -> %d (%.1f%% reduction)\n",
		before, after, 100*(1-float64(after)/float64(before)))
	fmt.Printf("diameter:        %d -> %d\n\n", db, da)
	if p.Freq != nil {
		wb := graph.WeightedCost(g.AllPairs(), p.Freq)
		wa := graph.WeightedCost(aug.AllPairs(), p.Freq)
		fmt.Printf("weighted (F*W) cost: %d -> %d (%.1f%% reduction)\n\n",
			wb, wa, 100*(1-float64(wa)/float64(wb)))
	}
	for i, e := range edges {
		cf, ct := m.Coord(e.From), m.Coord(e.To)
		fmt.Printf("%2d: (%d,%d) -> (%d,%d)  span %d hops\n",
			i+1, cf.X, cf.Y, ct.X, ct.Y, m.Manhattan(e.From, e.To))
	}
	fmt.Println()
	fmt.Println(renderOverlay(m, edges))
}

// renderOverlay draws the mesh with shortcut sources (S), destinations
// (D), both (B), memory corners (M), caches (c) and cores (.).
func renderOverlay(m *topology.Mesh, edges []shortcut.Edge) string {
	src := map[int]bool{}
	dst := map[int]bool{}
	for _, e := range edges {
		src[e.From] = true
		dst[e.To] = true
	}
	return m.Render(func(id int) rune {
		switch {
		case src[id] && dst[id]:
			return 'B'
		case src[id]:
			return 'S'
		case dst[id]:
			return 'D'
		}
		return 0
	})
}
