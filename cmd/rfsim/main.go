// Command rfsim runs one network design point under one workload and
// prints latency, power, area and raw counters.
//
// Usage:
//
//	rfsim -design baseline|static|wire-static|adaptive [-width 16|8|4]
//	      [-rf 25|50|100] [-workload uniform|unidf|bidf|hotbidf|1hotspot|
//	      2hotspot|4hotspot|x264|bodytrack|fluidanimate|streamcluster|
//	      specjbb|coherence] [-trace file] [-multicast none|expand|vct|rf]
//	      [-cycles N] [-rate R] [-seed S] [-mclocality 20]
//	      [-hist] [-check] [-timeline file] [-window N]
//	      [-checkpoint file] [-checkpoint-every N] [-resume] [-timeout D]
//
// With -trace, the workload is replayed from a file captured by
// cmd/tracegen instead of generated.
//
// Observability: -hist prints p50/p90/p99/max packet- and flit-latency
// histograms, -check attaches the invariant checker (flit conservation,
// credit sanity, forward progress; the process panics on violation with
// a dump of the stuck router), and -timeline exports a per-link
// occupancy timeline sampled every -window cycles as CSV (or JSON when
// the file name ends in .json).
//
// Fault injection: -fault-rate R enables transient flit corruption (CRC
// failure probability R per flit on every link; seeded by -fault-seed),
// -kill-link A-B@CYCLE fails a mesh link, -kill-band I@CYCLE fails RF
// band I (shortcut bands first, then the multicast band); both kill
// flags repeat. -replan re-selects shortcuts around failed endpoints
// once the network drains after a band loss. Any of these prints a
// fault/recovery summary (retransmission rate, availability, MTTR,
// post-fault latency delta).
//
// Checkpointing: -checkpoint saves the complete simulator state to a
// file every -checkpoint-every cycles and on interruption; -resume
// restores from that file (if present) and finishes the run with
// exactly the statistics of an uninterrupted one. -timeout bounds the
// run's wall-clock time; a timed-out run saves its checkpoint, prints
// partial results and exits with status 3. Bad flags exit with 2.
//
// Self-healing: -integrity adds per-packet sequence numbers and an
// end-to-end checksum (receiver-side dedup, misdelivery detection,
// NACK-style source retransmission), -watchdog arms staged stall
// recovery. The adversarial fault modes -misroute-rate,
// -misdeliver-rate, -duplicate-rate, -credit-leak-rate and
// -stuck-vc-rate inject seeded faults (misdeliver/duplicate need
// -integrity), and -leak-credit A-B@CYCLE / -stick-vc R-P@CYCLE
// schedule deterministic ones. Any of these prints an
// integrity/recovery summary.
//
// Chaos soak: -soak N runs N randomized fault-heavy simulations under
// the crash-isolating supervisor; each failure is automatically shrunk
// to a minimal still-failing repro written to -soak-dir as JSON.
// -shrink FILE replays such a repro and exits 0 only if it no longer
// fails.
//
// Performance: -step-workers W fans router arbitration's proposal phase
// out over W workers (0 = GOMAXPROCS); results are bit-identical at
// every worker count. -cpuprofile/-memprofile write pprof profiles of
// the run, and -bench-cycles N replaces -cycles and prints a wall-clock
// ns/cycle summary (see README "Profiling").
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/coherence"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Exit codes: 0 success, 1 runtime failure, 2 bad flags, 3 interrupted
// by -timeout (checkpoint saved when -checkpoint is set).
const (
	exitOK          = 0
	exitRunError    = 1
	exitBadFlags    = 2
	exitInterrupted = 3
)

// listFlag collects repeatable string flags.
type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

// simFlags is the parsed command line, separated from flag plumbing so
// validation is table-testable.
type simFlags struct {
	design     string
	width      int
	rf         int
	workload   string
	traceFile  string
	multicast  string
	mcLocality int
	mcRate     float64
	cycles     int64
	heatmap    bool
	rate       float64
	seed       int64
	hist       bool
	check      bool
	timeline   string
	window     int64
	faultRate  float64
	faultSeed  int64
	replan     bool
	killLinks  listFlag
	killBands  listFlag

	integrity      bool
	watchdog       bool
	misrouteRate   float64
	misdeliverRate float64
	duplicateRate  float64
	creditLeakRate float64
	stuckVCRate    float64
	leakCredits    listFlag
	stickVCs       listFlag

	soak         int
	soakDir      string
	shrink       string
	shrinkBudget int

	ckptPath  string
	ckptEvery int64
	resume    bool
	timeout   time.Duration

	stepWorkers int
	cpuProfile  string
	memProfile  string
	benchCycles int64
}

// adversarial reports whether any self-healing machinery is in play.
func (f *simFlags) adversarial() bool {
	return f.integrity || f.watchdog ||
		f.misrouteRate > 0 || f.misdeliverRate > 0 || f.duplicateRate > 0 ||
		f.creditLeakRate > 0 || f.stuckVCRate > 0 ||
		len(f.leakCredits) > 0 || len(f.stickVCs) > 0
}

func parseDesign(name string) (experiments.DesignKind, error) {
	switch name {
	case "baseline":
		return experiments.Baseline, nil
	case "static":
		return experiments.Static, nil
	case "wire-static":
		return experiments.WireStatic, nil
	case "adaptive":
		return experiments.Adaptive, nil
	}
	return 0, fmt.Errorf("unknown design %q (want baseline, static, wire-static or adaptive)", name)
}

func parseMulticast(name string) (noc.MulticastMode, error) {
	switch name {
	case "none", "expand":
		return noc.MulticastExpand, nil
	case "vct":
		return noc.MulticastVCT, nil
	case "rf":
		return noc.MulticastRF, nil
	}
	return 0, fmt.Errorf("unknown multicast mode %q (want none, expand, vct or rf)", name)
}

// validate rejects flag combinations before any simulation state is
// built. Every violation is reported, not just the first.
func (f *simFlags) validate() error {
	var errs []error
	fail := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if _, err := parseDesign(f.design); err != nil {
		errs = append(errs, err)
	}
	if _, err := parseMulticast(f.multicast); err != nil {
		errs = append(errs, err)
	}
	if !tech.LinkWidth(f.width).Valid() {
		fail("invalid -width %d (want 16, 8 or 4)", f.width)
	}
	if f.cycles <= 0 {
		fail("-cycles must be positive, got %d", f.cycles)
	}
	if f.rate < 0 {
		fail("-rate must be non-negative, got %g", f.rate)
	}
	if f.faultRate < 0 || f.faultRate > 1 {
		fail("-fault-rate must be in [0,1], got %g", f.faultRate)
	}
	if f.mcRate < 0 || f.mcRate > 1 {
		fail("-mcrate must be in [0,1], got %g", f.mcRate)
	}
	if f.mcLocality < 0 || f.mcLocality > 100 {
		fail("-mclocality must be in [0,100], got %d", f.mcLocality)
	}
	if f.window <= 0 {
		fail("-window must be positive, got %d", f.window)
	}
	if f.ckptEvery < 0 {
		fail("-checkpoint-every must be non-negative, got %d", f.ckptEvery)
	}
	if f.timeout < 0 {
		fail("-timeout must be non-negative, got %s", f.timeout)
	}
	if f.resume && f.ckptPath == "" {
		fail("-resume requires -checkpoint")
	}
	for _, s := range f.killLinks {
		if _, err := fault.ParseLinkKill(s); err != nil {
			errs = append(errs, err)
		}
	}
	for _, s := range f.killBands {
		if _, err := fault.ParseBandKill(s); err != nil {
			errs = append(errs, err)
		}
	}
	for _, s := range f.leakCredits {
		if _, err := fault.ParseLeakCredit(s); err != nil {
			errs = append(errs, err)
		}
	}
	for _, s := range f.stickVCs {
		if _, err := fault.ParseStickVC(s); err != nil {
			errs = append(errs, err)
		}
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"-misroute-rate", f.misrouteRate},
		{"-misdeliver-rate", f.misdeliverRate},
		{"-duplicate-rate", f.duplicateRate},
		{"-credit-leak-rate", f.creditLeakRate},
		{"-stuck-vc-rate", f.stuckVCRate},
	} {
		if r.v < 0 || r.v > 1 {
			fail("%s must be in [0,1], got %g", r.name, r.v)
		}
	}
	if !f.integrity && (f.misdeliverRate > 0 || f.duplicateRate > 0) {
		fail("-misdeliver-rate and -duplicate-rate need -integrity (without sequence numbers these faults are undetectable)")
	}
	if f.soak < 0 {
		fail("-soak must be non-negative, got %d", f.soak)
	}
	if f.shrinkBudget < 0 {
		fail("-shrink-budget must be non-negative, got %d", f.shrinkBudget)
	}
	if f.soak > 0 && f.shrink != "" {
		fail("-soak and -shrink are mutually exclusive")
	}
	if f.stepWorkers < 0 {
		fail("-step-workers must be non-negative, got %d", f.stepWorkers)
	}
	if f.benchCycles < 0 {
		fail("-bench-cycles must be non-negative, got %d", f.benchCycles)
	}
	return errors.Join(errs...)
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	var f simFlags
	fs := flag.NewFlagSet("rfsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&f.design, "design", "baseline", "design kind: baseline, static, wire-static, adaptive")
	fs.IntVar(&f.width, "width", 16, "mesh link width in bytes (16, 8, 4)")
	fs.IntVar(&f.rf, "rf", 50, "RF-enabled routers for adaptive designs (25, 50, 100)")
	fs.StringVar(&f.workload, "workload", "uniform", "workload name or 'coherence'")
	fs.StringVar(&f.traceFile, "trace", "", "replay a captured trace file instead of generating")
	fs.StringVar(&f.multicast, "multicast", "none", "multicast mode: none, expand, vct, rf")
	fs.IntVar(&f.mcLocality, "mclocality", 20, "multicast destination-set locality percent")
	fs.Float64Var(&f.mcRate, "mcrate", 0.05, "multicast injection probability per cycle")
	fs.Int64Var(&f.cycles, "cycles", 200000, "injection cycles")
	fs.BoolVar(&f.heatmap, "heatmap", false, "print a mesh link-load heatmap and the hottest links")
	fs.Float64Var(&f.rate, "rate", 0, "transaction rate per component per cycle (0 = default)")
	fs.Int64Var(&f.seed, "seed", 1, "random seed")
	fs.BoolVar(&f.hist, "hist", false, "print packet- and flit-latency histograms (p50/p90/p99/max)")
	fs.BoolVar(&f.check, "check", false, "attach the invariant checker (panics on violation)")
	fs.StringVar(&f.timeline, "timeline", "", "export a per-link occupancy timeline to this file (CSV, or JSON for *.json)")
	fs.Int64Var(&f.window, "window", 1000, "timeline sample window in cycles")
	fs.Float64Var(&f.faultRate, "fault-rate", 0, "per-flit corruption probability on every link (0 = fault-free)")
	fs.Int64Var(&f.faultSeed, "fault-seed", 1, "seed for the corruption draws")
	fs.BoolVar(&f.replan, "replan", false, "re-select shortcuts around failed endpoints after a band loss")
	fs.Var(&f.killLinks, "kill-link", "fail a mesh link: A-B@CYCLE (repeatable)")
	fs.Var(&f.killBands, "kill-band", "fail RF band I (shortcuts first, then multicast): I@CYCLE (repeatable)")
	fs.BoolVar(&f.integrity, "integrity", false, "end-to-end packet integrity: sequence numbers, checksum, dedup, source retransmission")
	fs.BoolVar(&f.watchdog, "watchdog", false, "arm the staged stall-recovery watchdog")
	fs.Float64Var(&f.misrouteRate, "misroute-rate", 0, "probability a packet is diverted to a wrong output port at route computation")
	fs.Float64Var(&f.misdeliverRate, "misdeliver-rate", 0, "probability an RF-band arrival ejects at the wrong router (needs -integrity)")
	fs.Float64Var(&f.duplicateRate, "duplicate-rate", 0, "probability an RF band re-trigger duplicates a packet (needs -integrity)")
	fs.Float64Var(&f.creditLeakRate, "credit-leak-rate", 0, "probability per credit return that the credit is destroyed")
	fs.Float64Var(&f.stuckVCRate, "stuck-vc-rate", 0, "probability per cycle that a busy VC wedges")
	fs.Var(&f.leakCredits, "leak-credit", "destroy one credit on mesh link A->B: A-B@CYCLE (repeatable)")
	fs.Var(&f.stickVCs, "stick-vc", "wedge router R's input port P (0=N 1=E 2=S 3=W): R-P@CYCLE (repeatable)")
	fs.IntVar(&f.soak, "soak", 0, "chaos soak: run N randomized fault-heavy simulations, shrinking each failure to a minimal repro")
	fs.StringVar(&f.soakDir, "soak-dir", "", "directory for soak crash dumps and shrunken repro JSONs (empty: no artifacts)")
	fs.StringVar(&f.shrink, "shrink", "", "replay a soak repro JSON; exits 0 only if it no longer fails")
	fs.IntVar(&f.shrinkBudget, "shrink-budget", 0, "max candidate runs the shrinker may spend per failure (0 = default 64)")
	fs.StringVar(&f.ckptPath, "checkpoint", "", "save complete simulator state to this file (enables crash recovery)")
	fs.Int64Var(&f.ckptEvery, "checkpoint-every", 10000, "auto-checkpoint interval in cycles (0 = only on interruption)")
	fs.BoolVar(&f.resume, "resume", false, "restore from -checkpoint if the file exists, then finish the run")
	fs.DurationVar(&f.timeout, "timeout", 0, "wall-clock budget; on expiry the run checkpoints and exits 3 (0 = none)")
	fs.IntVar(&f.stepWorkers, "step-workers", 1, "parallel-stepping worker count (0 = GOMAXPROCS); results are bit-identical at every count")
	fs.StringVar(&f.cpuProfile, "cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	fs.StringVar(&f.memProfile, "memprofile", "", "write a post-run heap profile to this file (go tool pprof)")
	fs.Int64Var(&f.benchCycles, "bench-cycles", 0, "override -cycles and print a wall-clock ns/cycle summary (0 = off)")
	if err := fs.Parse(args); err != nil {
		return exitBadFlags
	}
	if err := f.validate(); err != nil {
		fmt.Fprintln(stderr, err)
		return exitBadFlags
	}
	if f.cpuProfile != "" {
		cf, err := os.Create(f.cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitRunError
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			fmt.Fprintln(stderr, err)
			cf.Close()
			return exitRunError
		}
		defer func() {
			pprof.StopCPUProfile()
			cf.Close()
		}()
	}
	if f.memProfile != "" {
		defer func() {
			mf, err := os.Create(f.memProfile)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return
			}
			defer mf.Close()
			runtime.GC() // settle the heap so the profile shows retained state
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(stderr, err)
			}
		}()
	}
	if f.shrink != "" {
		return runShrinkReplay(&f, stdout, stderr)
	}
	if f.soak > 0 {
		return runSoak(&f, stdout, stderr)
	}
	return runSim(&f, stdout, stderr)
}

// runSoak executes the chaos-soak harness: f.soak randomized runs under
// the supervisor, every failure shrunk to a minimal repro.
func runSoak(f *simFlags, stdout, stderr io.Writer) int {
	ctx := context.Background()
	if f.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}
	if f.soakDir != "" {
		if err := os.MkdirAll(f.soakDir, 0o755); err != nil {
			fmt.Fprintln(stderr, err)
			return exitRunError
		}
	}
	outcomes, err := experiments.Soak(ctx, experiments.SoakConfig{
		Runs: f.soak, Seed: f.seed, Dir: f.soakDir, ShrinkBudget: f.shrinkBudget,
	})
	failed := 0
	for _, o := range outcomes {
		if o.Reason == "" {
			fmt.Fprintf(stdout, "%s: ok (%s %dx%d, seed %d)\n", o.ID, o.Spec.Pattern, o.Spec.MeshW, o.Spec.MeshH, o.Spec.Seed)
			continue
		}
		failed++
		fmt.Fprintf(stdout, "%s: FAIL: %s\n", o.ID, o.Reason)
		if o.Repro != "" {
			fmt.Fprintf(stdout, "%s: minimal repro: %s (replay with -shrink)\n", o.ID, o.Repro)
		}
	}
	fmt.Fprintf(stdout, "soak: %d/%d runs healthy\n", len(outcomes)-failed, len(outcomes))
	if ctx.Err() != nil {
		fmt.Fprintf(stderr, "soak interrupted: %v\n", ctx.Err())
		return exitInterrupted
	}
	if err != nil {
		return exitRunError
	}
	return exitOK
}

// runShrinkReplay re-runs a shrunken repro and reports whether the
// failure still reproduces.
func runShrinkReplay(f *simFlags, stdout, stderr io.Writer) int {
	rep, err := experiments.LoadSoakRepro(f.shrink)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitBadFlags
	}
	fmt.Fprintf(stdout, "repro: %s %dx%d seed %d, %d scheduled faults (recorded failure: %s)\n",
		rep.Spec.Pattern, rep.Spec.MeshW, rep.Spec.MeshH, rep.Spec.Seed, len(rep.Spec.Schedule), rep.Reason)
	if why := experiments.ReplaySoak(context.Background(), rep); why != "" {
		fmt.Fprintf(stdout, "still fails: %s\n", why)
		return exitRunError
	}
	fmt.Fprintln(stdout, "no longer fails")
	return exitOK
}

func runSim(f *simFlags, stdout, stderr io.Writer) int {
	var schedule fault.Schedule
	for _, s := range f.killLinks {
		e, _ := fault.ParseLinkKill(s) // validated above
		schedule = append(schedule, e)
	}
	for _, s := range f.killBands {
		e, _ := fault.ParseBandKill(s)
		schedule = append(schedule, e)
	}
	for _, s := range f.leakCredits {
		e, _ := fault.ParseLeakCredit(s)
		schedule = append(schedule, e)
	}
	for _, s := range f.stickVCs {
		e, _ := fault.ParseStickVC(s)
		schedule = append(schedule, e)
	}
	faulty := f.faultRate > 0 || len(schedule) > 0 || f.adversarial()

	m := topology.New10x10()
	cycles := f.cycles
	if f.benchCycles > 0 {
		cycles = f.benchCycles
	}
	opts := experiments.Options{Cycles: cycles, Rate: f.rate, Seed: f.seed, Check: f.check}

	kind, _ := parseDesign(f.design)
	mode, _ := parseMulticast(f.multicast)
	d := experiments.Design{Kind: kind, Width: tech.LinkWidth(f.width), RFRouters: f.rf, Multicast: mode}
	if mode == noc.MulticastRF && kind == experiments.Adaptive {
		d.ShortcutBudget = tech.ShortcutBudget - 1 // one band for multicast
	}

	mkGen := func(seed int64) (traffic.Generator, error) {
		g, err := baseGenerator(m, f.workload, f.traceFile, opts.WithDefaults().Rate, seed)
		if err != nil {
			return nil, err
		}
		if f.multicast != "none" && f.workload != "coherence" && f.traceFile == "" {
			g = traffic.NewMulticastAugment(m, g, f.mcRate, f.mcLocality, seed)
		}
		return g, nil
	}

	var profile traffic.Generator
	if d.Kind == experiments.Adaptive {
		p, err := mkGen(f.seed)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitBadFlags
		}
		profile = p
	}
	cfg := experiments.Build(m, d, profile, 0)
	cfg.StepWorkers = f.stepWorkers
	if cfg.StepWorkers == 0 {
		cfg.StepWorkers = runtime.GOMAXPROCS(0)
	}
	if f.faultRate > 0 {
		cfg.Fault = noc.FaultConfig{MeshBER: f.faultRate, RFBER: f.faultRate, Seed: f.faultSeed}
	}
	if f.adversarial() {
		cfg.Fault.Seed = f.faultSeed
		cfg.Fault.MisrouteRate = f.misrouteRate
		cfg.Fault.MisdeliverRate = f.misdeliverRate
		cfg.Fault.DuplicateRate = f.duplicateRate
		cfg.Fault.CreditLeakRate = f.creditLeakRate
		cfg.Fault.StuckVCRate = f.stuckVCRate
		cfg.Integrity = f.integrity
		if f.watchdog {
			cfg.Watchdog = noc.WatchdogConfig{Enabled: true}
		}
	}
	gen, err := mkGen(f.seed)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitBadFlags
	}

	// Assemble observers up front; RunCheckpointed attaches them after a
	// potential restore (observer state is not part of the checkpoint, so
	// on a resumed run they cover only the remainder — see DESIGN.md).
	var observers []noc.Observer
	var rec *obs.LatencyRecorder
	if f.hist {
		rec = obs.NewLatencyRecorder()
		observers = append(observers, rec)
	}
	var inj *fault.Injector
	var frec *obs.FaultRecorder
	var irec *obs.IntegrityRecorder
	spec := experiments.CheckpointSpec{Path: f.ckptPath, Every: f.ckptEvery, Resume: f.resume}
	if faulty {
		inj = fault.NewInjector(schedule)
		inj.AutoReplan = f.replan
		frec = obs.NewFaultRecorder()
		observers = append(observers, inj, frec)
		if spec.Path != "" {
			spec.Extra = append(spec.Extra, checkpoint.Part{Name: "faults", State: inj})
		}
	}
	if f.adversarial() {
		irec = obs.NewIntegrityRecorder()
		observers = append(observers, irec)
	}
	var tl *obs.LinkTimeline
	if f.timeline != "" {
		tl = obs.NewLinkTimeline(f.window)
		observers = append(observers, tl)
	}
	var net *noc.Network
	spec.OnNetwork = func(n *noc.Network) { net = n }

	ctx := context.Background()
	if f.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}
	start := time.Now()
	r, err := experiments.RunCheckpointed(ctx, cfg, gen, opts, spec, observers...)
	elapsed := time.Since(start)
	interrupted := r.Interrupted && errors.Is(err, context.DeadlineExceeded)
	if err != nil && !interrupted {
		fmt.Fprintln(stderr, err)
		return exitRunError
	}

	printReport(stdout, m, net, cfg, d, gen, r, rec, frec, inj, irec)
	if f.benchCycles > 0 && r.Stats.Cycles > 0 {
		fmt.Fprintf(stdout, "\nbench: %d cycles (injection + drain) in %s, %.0f ns/cycle, %d step workers\n",
			r.Stats.Cycles, elapsed.Round(time.Millisecond), float64(elapsed.Nanoseconds())/float64(r.Stats.Cycles), cfg.StepWorkers)
	}
	if f.heatmap {
		fmt.Fprintln(stdout, "\nlink-load heatmap (bottom row is mesh row 0):")
		fmt.Fprintln(stdout, net.Heatmap())
		fmt.Fprintln(stdout, "hottest links:")
		for _, l := range net.HottestLinks(8) {
			fmt.Fprintln(stdout, "  "+l)
		}
	}
	if tl != nil {
		if err := writeTimeline(f.timeline, tl, net.Now()); err != nil {
			fmt.Fprintf(stderr, "timeline: %v\n", err)
			return exitRunError
		}
		fmt.Fprintf(stdout, "\ntimeline: %s (%s)\n", f.timeline, tl)
	}
	if interrupted {
		if f.ckptPath != "" {
			fmt.Fprintf(stderr, "timeout after %s: partial results above; checkpoint saved to %s (rerun with -resume to finish)\n",
				f.timeout, f.ckptPath)
		} else {
			fmt.Fprintf(stderr, "timeout after %s: partial results above (set -checkpoint to make timed-out runs resumable)\n", f.timeout)
		}
		return exitInterrupted
	}
	return exitOK
}

func printReport(w io.Writer, m *topology.Mesh, net *noc.Network, cfg noc.Config, d experiments.Design, gen traffic.Generator, r experiments.Result, rec *obs.LatencyRecorder, frec *obs.FaultRecorder, inj *fault.Injector, irec *obs.IntegrityRecorder) {
	fmt.Fprintf(w, "design:   %s\n", d.Name())
	fmt.Fprintf(w, "workload: %s\n", gen.Name())
	fmt.Fprintf(w, "cycles:   %d (drained: %v)\n", r.Stats.Cycles, r.Drained)
	if r.Drained {
		fmt.Fprintf(w, "drain:    %d cycles\n", r.Drain.CyclesUsed)
	} else {
		fmt.Fprintf(w, "drain:    FAILED after %d cycles: %d packets stranded, oldest head flit %d cycles old\n",
			r.Drain.CyclesUsed, r.Drain.Stranded, r.Drain.OldestHeadAge)
	}
	if r.Interrupted {
		fmt.Fprintf(w, "status:   INTERRUPTED (partial measurement)\n")
	}
	fmt.Fprintf(w, "\navg latency:   %.2f per flit (%.2f per packet)\n",
		r.AvgLatency, r.Stats.AvgPacketLatency())
	fmt.Fprintf(w, "avg hops:      %.2f\n", r.Stats.AvgHops())
	fmt.Fprintf(w, "throughput:    %.3f flits/cycle\n", r.Stats.Throughput())
	fmt.Fprintf(w, "\npower: %.3f W total\n", r.PowerW)
	fmt.Fprintf(w, "  router dynamic %.3f  router leakage %.3f\n", r.Breakdown.RouterDynamic, r.Breakdown.RouterLeakage)
	fmt.Fprintf(w, "  link dynamic   %.3f  link leakage   %.3f\n", r.Breakdown.LinkDynamic, r.Breakdown.LinkLeakage)
	fmt.Fprintf(w, "  RF dynamic     %.3f  RF static      %.3f\n", r.Breakdown.RFDynamic, r.Breakdown.RFStatic)
	if r.Breakdown.VCTTable > 0 {
		fmt.Fprintf(w, "  VCT tables     %.3f\n", r.Breakdown.VCTTable)
	}
	fmt.Fprintf(w, "\narea: %.2f mm^2 (router %.2f, link %.2f, RF-I %.2f",
		r.AreaMM2, r.Area.Router, r.Area.Link, r.Area.RFI)
	if r.Area.VCT > 0 {
		fmt.Fprintf(w, ", VCT %.2f", r.Area.VCT)
	}
	fmt.Fprintln(w, ")")
	s := r.Stats
	fmt.Fprintf(w, "\npackets: %d ejected  flits: %d  mesh flit-hops: %d  RF bits: %d\n",
		s.PacketsEjected, s.FlitsEjected, s.MeshFlitHops, s.RFShortcutBits)
	if s.MulticastMessages > 0 {
		fmt.Fprintf(w, "multicasts: %d messages, %d deliveries, avg %.2f cycles\n",
			s.MulticastMessages, s.MulticastDeliveries,
			float64(s.MulticastLatency)/float64(max64(s.MulticastDeliveries, 1)))
	}
	if s.EscapeSwitches > 0 {
		fmt.Fprintf(w, "escape-VC reroutes: %d\n", s.EscapeSwitches)
	}
	if frec != nil {
		fmt.Fprintln(w, "\nfault/recovery:")
		fmt.Fprintln(w, frec.Render())
		if n := len(net.DeadMeshLinks()); n > 0 {
			fmt.Fprintf(w, "dead mesh links: %d\n", n)
		}
		if fs := net.FailedShortcuts(); len(fs) > 0 {
			var parts []string
			for _, e := range fs {
				parts = append(parts, e.String())
			}
			fmt.Fprintf(w, "failed shortcuts: %s\n", strings.Join(parts, " "))
		}
		if inj.Replans() > 0 {
			fmt.Fprintf(w, "auto-replans: %d\n", inj.Replans())
		}
		for _, sk := range inj.Skipped() {
			fmt.Fprintf(w, "skipped %s: %v\n", sk.Event, sk.Err)
		}
	}
	if irec != nil {
		fmt.Fprintln(w, "\nintegrity/recovery:")
		fmt.Fprintln(w, irec.Render())
	}
	if len(cfg.Shortcuts) > 0 {
		var parts []string
		for _, e := range cfg.Shortcuts {
			parts = append(parts, fmt.Sprintf("(%d,%d)->(%d,%d)",
				m.Coord(e.From).X, m.Coord(e.From).Y, m.Coord(e.To).X, m.Coord(e.To).Y))
		}
		fmt.Fprintf(w, "shortcuts: %s\n", strings.Join(parts, " "))
	}
	if rec != nil {
		fmt.Fprintln(w, "\nlatency distributions (cycles):")
		fmt.Fprintln(w, rec.Render())
	}
}

func writeTimeline(path string, tl *obs.LinkTimeline, now int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = tl.WriteJSON(f, now)
	} else {
		err = tl.WriteCSV(f, now)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func baseGenerator(m *topology.Mesh, workload, traceFile string, rate float64, seed int64) (traffic.Generator, error) {
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, fmt.Errorf("open trace: %v", err)
		}
		defer f.Close()
		rp, err := traffic.ReadTrace(f)
		if err != nil {
			return nil, fmt.Errorf("read trace: %v", err)
		}
		return rp, nil
	}
	if workload == "coherence" {
		return coherence.New(m, coherence.Workload{}, seed), nil
	}
	for _, p := range traffic.Patterns() {
		if strings.EqualFold(p.String(), workload) {
			return traffic.NewProbabilistic(m, p, rate, seed), nil
		}
	}
	for _, a := range traffic.Apps() {
		if strings.EqualFold(a.String(), workload) {
			return traffic.NewAppTrace(m, a, rate, seed), nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
