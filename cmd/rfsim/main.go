// Command rfsim runs one network design point under one workload and
// prints latency, power, area and raw counters.
//
// Usage:
//
//	rfsim -design baseline|static|wire-static|adaptive [-width 16|8|4]
//	      [-rf 25|50|100] [-workload uniform|unidf|bidf|hotbidf|1hotspot|
//	      2hotspot|4hotspot|x264|bodytrack|fluidanimate|streamcluster|
//	      specjbb|coherence] [-trace file] [-multicast none|expand|vct|rf]
//	      [-cycles N] [-rate R] [-seed S] [-mclocality 20]
//	      [-hist] [-check] [-timeline file] [-window N]
//
// With -trace, the workload is replayed from a file captured by
// cmd/tracegen instead of generated.
//
// Observability: -hist prints p50/p90/p99/max packet- and flit-latency
// histograms, -check attaches the invariant checker (flit conservation,
// credit sanity, forward progress; the process panics on violation with
// a dump of the stuck router), and -timeline exports a per-link
// occupancy timeline sampled every -window cycles as CSV (or JSON when
// the file name ends in .json).
//
// Fault injection: -fault-rate R enables transient flit corruption (CRC
// failure probability R per flit on every link; seeded by -fault-seed),
// -kill-link A-B@CYCLE fails a mesh link, -kill-band I@CYCLE fails RF
// band I (shortcut bands first, then the multicast band); both kill
// flags repeat. -replan re-selects shortcuts around failed endpoints
// once the network drains after a band loss. Any of these prints a
// fault/recovery summary (retransmission rate, availability, MTTR,
// post-fault latency delta).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/coherence"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// listFlag collects repeatable string flags.
type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	design := flag.String("design", "baseline", "design kind: baseline, static, wire-static, adaptive")
	width := flag.Int("width", 16, "mesh link width in bytes (16, 8, 4)")
	rf := flag.Int("rf", 50, "RF-enabled routers for adaptive designs (25, 50, 100)")
	workload := flag.String("workload", "uniform", "workload name or 'coherence'")
	traceFile := flag.String("trace", "", "replay a captured trace file instead of generating")
	multicast := flag.String("multicast", "none", "multicast mode: none, expand, vct, rf")
	mcLocality := flag.Int("mclocality", 20, "multicast destination-set locality percent")
	mcRate := flag.Float64("mcrate", 0.05, "multicast injection probability per cycle")
	cycles := flag.Int64("cycles", 200000, "injection cycles")
	heatmap := flag.Bool("heatmap", false, "print a mesh link-load heatmap and the hottest links")
	rate := flag.Float64("rate", 0, "transaction rate per component per cycle (0 = default)")
	seed := flag.Int64("seed", 1, "random seed")
	hist := flag.Bool("hist", false, "print packet- and flit-latency histograms (p50/p90/p99/max)")
	check := flag.Bool("check", false, "attach the invariant checker (panics on violation)")
	timeline := flag.String("timeline", "", "export a per-link occupancy timeline to this file (CSV, or JSON for *.json)")
	window := flag.Int64("window", 1000, "timeline sample window in cycles")
	faultRate := flag.Float64("fault-rate", 0, "per-flit corruption probability on every link (0 = fault-free)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the corruption draws")
	replan := flag.Bool("replan", false, "re-select shortcuts around failed endpoints after a band loss")
	var killLinks, killBands listFlag
	flag.Var(&killLinks, "kill-link", "fail a mesh link: A-B@CYCLE (repeatable)")
	flag.Var(&killBands, "kill-band", "fail RF band I (shortcuts first, then multicast): I@CYCLE (repeatable)")
	flag.Parse()

	var schedule fault.Schedule
	for _, s := range killLinks {
		e, err := fault.ParseLinkKill(s)
		if err != nil {
			fatal("%v", err)
		}
		schedule = append(schedule, e)
	}
	for _, s := range killBands {
		e, err := fault.ParseBandKill(s)
		if err != nil {
			fatal("%v", err)
		}
		schedule = append(schedule, e)
	}
	faulty := *faultRate > 0 || len(schedule) > 0

	m := topology.New10x10()
	opts := experiments.Options{Cycles: *cycles, Rate: *rate, Seed: *seed}

	d := experiments.Design{Width: tech.LinkWidth(*width), RFRouters: *rf}
	switch *design {
	case "baseline":
		d.Kind = experiments.Baseline
	case "static":
		d.Kind = experiments.Static
	case "wire-static":
		d.Kind = experiments.WireStatic
	case "adaptive":
		d.Kind = experiments.Adaptive
	default:
		fatal("unknown design %q", *design)
	}
	switch *multicast {
	case "none", "expand":
		d.Multicast = noc.MulticastExpand
	case "vct":
		d.Multicast = noc.MulticastVCT
	case "rf":
		d.Multicast = noc.MulticastRF
		if d.Kind == experiments.Adaptive {
			d.ShortcutBudget = tech.ShortcutBudget - 1 // one band for multicast
		}
	default:
		fatal("unknown multicast mode %q", *multicast)
	}

	mkGen := func(seed int64) traffic.Generator {
		g := baseGenerator(m, *workload, *traceFile, opts.WithDefaults().Rate, seed)
		if *multicast != "none" && *workload != "coherence" && *traceFile == "" {
			g = traffic.NewMulticastAugment(m, g, *mcRate, *mcLocality, seed)
		}
		return g
	}

	var profile traffic.Generator
	if d.Kind == experiments.Adaptive {
		profile = mkGen(*seed)
	}
	cfg := experiments.Build(m, d, profile, 0)
	if *faultRate > 0 {
		cfg.Fault = noc.FaultConfig{MeshBER: *faultRate, RFBER: *faultRate, Seed: *faultSeed}
	}
	gen := mkGen(*seed)

	// Run inline (rather than experiments.Run) so the live network stays
	// accessible for the heatmap and the observers.
	net := noc.New(cfg)
	var rec *obs.LatencyRecorder
	if *hist {
		rec = obs.NewLatencyRecorder()
		net.AttachObserver(rec)
	}
	var inj *fault.Injector
	var frec *obs.FaultRecorder
	if faulty {
		inj = fault.NewInjector(schedule)
		inj.AutoReplan = *replan
		frec = obs.NewFaultRecorder()
		net.AttachObserver(inj)
		net.AttachObserver(frec)
	}
	var tl *obs.LinkTimeline
	if *timeline != "" {
		tl = obs.NewLinkTimeline(*window)
		net.AttachObserver(tl)
	}
	if *check {
		net.AttachObserver(obs.NewInvariantChecker())
	}
	for now := int64(0); now < opts.WithDefaults().Cycles; now++ {
		gen.Tick(now, net.Inject)
		net.Step()
	}
	drained := net.Drain(opts.WithDefaults().DrainCycles)
	r := resultFrom(net, gen, drained)

	fmt.Printf("design:   %s\n", d.Name())
	fmt.Printf("workload: %s\n", gen.Name())
	fmt.Printf("cycles:   %d (drained: %v)\n", r.Stats.Cycles, r.Drained)
	fmt.Printf("\navg latency:   %.2f per flit (%.2f per packet)\n",
		r.AvgLatency, r.Stats.AvgPacketLatency())
	fmt.Printf("avg hops:      %.2f\n", r.Stats.AvgHops())
	fmt.Printf("throughput:    %.3f flits/cycle\n", r.Stats.Throughput())
	fmt.Printf("\npower: %.3f W total\n", r.PowerW)
	fmt.Printf("  router dynamic %.3f  router leakage %.3f\n", r.Breakdown.RouterDynamic, r.Breakdown.RouterLeakage)
	fmt.Printf("  link dynamic   %.3f  link leakage   %.3f\n", r.Breakdown.LinkDynamic, r.Breakdown.LinkLeakage)
	fmt.Printf("  RF dynamic     %.3f  RF static      %.3f\n", r.Breakdown.RFDynamic, r.Breakdown.RFStatic)
	if r.Breakdown.VCTTable > 0 {
		fmt.Printf("  VCT tables     %.3f\n", r.Breakdown.VCTTable)
	}
	fmt.Printf("\narea: %.2f mm^2 (router %.2f, link %.2f, RF-I %.2f",
		r.AreaMM2, r.Area.Router, r.Area.Link, r.Area.RFI)
	if r.Area.VCT > 0 {
		fmt.Printf(", VCT %.2f", r.Area.VCT)
	}
	fmt.Println(")")
	s := r.Stats
	fmt.Printf("\npackets: %d ejected  flits: %d  mesh flit-hops: %d  RF bits: %d\n",
		s.PacketsEjected, s.FlitsEjected, s.MeshFlitHops, s.RFShortcutBits)
	if s.MulticastMessages > 0 {
		fmt.Printf("multicasts: %d messages, %d deliveries, avg %.2f cycles\n",
			s.MulticastMessages, s.MulticastDeliveries,
			float64(s.MulticastLatency)/float64(max64(s.MulticastDeliveries, 1)))
	}
	if s.EscapeSwitches > 0 {
		fmt.Printf("escape-VC reroutes: %d\n", s.EscapeSwitches)
	}
	if frec != nil {
		fmt.Println("\nfault/recovery:")
		fmt.Println(frec.Render())
		if n := len(net.DeadMeshLinks()); n > 0 {
			fmt.Printf("dead mesh links: %d\n", n)
		}
		if fs := net.FailedShortcuts(); len(fs) > 0 {
			var parts []string
			for _, e := range fs {
				parts = append(parts, e.String())
			}
			fmt.Printf("failed shortcuts: %s\n", strings.Join(parts, " "))
		}
		if inj.Replans() > 0 {
			fmt.Printf("auto-replans: %d\n", inj.Replans())
		}
		for _, sk := range inj.Skipped() {
			fmt.Printf("skipped %s: %v\n", sk.Event, sk.Err)
		}
	}
	if len(cfg.Shortcuts) > 0 {
		var parts []string
		for _, e := range cfg.Shortcuts {
			parts = append(parts, fmt.Sprintf("(%d,%d)->(%d,%d)",
				m.Coord(e.From).X, m.Coord(e.From).Y, m.Coord(e.To).X, m.Coord(e.To).Y))
		}
		fmt.Printf("shortcuts: %s\n", strings.Join(parts, " "))
	}
	if *heatmap {
		fmt.Println("\nlink-load heatmap (bottom row is mesh row 0):")
		fmt.Println(net.Heatmap())
		fmt.Println("hottest links:")
		for _, l := range net.HottestLinks(8) {
			fmt.Println("  " + l)
		}
	}
	if rec != nil {
		fmt.Println("\nlatency distributions (cycles):")
		fmt.Println(rec.Render())
	}
	if tl != nil {
		f, err := os.Create(*timeline)
		if err != nil {
			fatal("timeline: %v", err)
		}
		if strings.HasSuffix(*timeline, ".json") {
			err = tl.WriteJSON(f, net.Now())
		} else {
			err = tl.WriteCSV(f, net.Now())
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal("timeline: %v", err)
		}
		fmt.Printf("\ntimeline: %s (%s)\n", *timeline, tl)
	}
}

// resultFrom packages a finished network into the experiments result
// shape used by the printers below.
func resultFrom(n *noc.Network, gen traffic.Generator, drained bool) experiments.Result {
	s := n.Stats()
	b := powerOf(n)
	a := areaOf(n)
	return experiments.Result{
		Workload:   gen.Name(),
		Design:     n.Config().Width.String(),
		AvgLatency: s.AvgFlitLatency(),
		PowerW:     b.Total(),
		AreaMM2:    a.Total(),
		Stats:      s,
		Breakdown:  b,
		Area:       a,
		Drained:    drained,
	}
}

func powerOf(n *noc.Network) power.Breakdown {
	return power.Compute(n.Config(), n.Stats())
}

func areaOf(n *noc.Network) power.Area {
	return power.ComputeArea(n.Config())
}

func baseGenerator(m *topology.Mesh, workload, traceFile string, rate float64, seed int64) traffic.Generator {
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			fatal("open trace: %v", err)
		}
		defer f.Close()
		rp, err := traffic.ReadTrace(f)
		if err != nil {
			fatal("read trace: %v", err)
		}
		return rp
	}
	if workload == "coherence" {
		return coherence.New(m, coherence.Workload{}, seed)
	}
	for _, p := range traffic.Patterns() {
		if strings.EqualFold(p.String(), workload) {
			return traffic.NewProbabilistic(m, p, rate, seed)
		}
	}
	for _, a := range traffic.Apps() {
		if strings.EqualFold(a.String(), workload) {
			return traffic.NewAppTrace(m, a, rate, seed)
		}
	}
	fatal("unknown workload %q", workload)
	return nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
