package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestBadFlagsExit2 is the satellite requirement: every malformed flag
// combination is rejected with exit code 2 and a message naming the
// flag, before any simulation state is built.
func TestBadFlagsExit2(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the stderr diagnostic
	}{
		{"zero cycles", []string{"-cycles", "0"}, "-cycles must be positive"},
		{"negative cycles", []string{"-cycles", "-5"}, "-cycles must be positive"},
		{"fault rate above one", []string{"-fault-rate", "1.5"}, "-fault-rate must be in [0,1]"},
		{"fault rate negative", []string{"-fault-rate", "-0.1"}, "-fault-rate must be in [0,1]"},
		{"zero window", []string{"-window", "0"}, "-window must be positive"},
		{"unknown design", []string{"-design", "quantum"}, `unknown design "quantum"`},
		{"unknown multicast", []string{"-multicast", "broadcast"}, `unknown multicast mode "broadcast"`},
		{"bad width", []string{"-width", "5"}, "invalid -width 5"},
		{"negative rate", []string{"-rate", "-1"}, "-rate must be non-negative"},
		{"mcrate above one", []string{"-mcrate", "2"}, "-mcrate must be in [0,1]"},
		{"mclocality above 100", []string{"-mclocality", "150"}, "-mclocality must be in [0,100]"},
		{"negative checkpoint-every", []string{"-checkpoint-every", "-1"}, "-checkpoint-every must be non-negative"},
		{"negative timeout", []string{"-timeout", "-1s"}, "-timeout must be non-negative"},
		{"resume without checkpoint", []string{"-resume"}, "-resume requires -checkpoint"},
		{"malformed kill-link", []string{"-kill-link", "nonsense"}, "nonsense"},
		{"malformed kill-band", []string{"-kill-band", "x@y"}, "x@y"},
		{"undefined flag", []string{"-no-such-flag"}, ""},
		{"unknown workload", []string{"-cycles", "10", "-workload", "doom"}, `unknown workload "doom"`},
		{"misroute rate above one", []string{"-misroute-rate", "2"}, "-misroute-rate must be in [0,1]"},
		{"misdeliver sans integrity", []string{"-misdeliver-rate", "0.1"}, "need -integrity"},
		{"duplicate sans integrity", []string{"-duplicate-rate", "0.1"}, "need -integrity"},
		{"malformed leak-credit", []string{"-leak-credit", "zap"}, "zap"},
		{"malformed stick-vc", []string{"-stick-vc", "7@2"}, "7@2"},
		{"negative soak", []string{"-soak", "-1"}, "-soak must be non-negative"},
		{"negative shrink budget", []string{"-shrink-budget", "-2"}, "-shrink-budget must be non-negative"},
		{"soak with shrink", []string{"-soak", "1", "-shrink", "x.json"}, "mutually exclusive"},
		{"missing repro file", []string{"-shrink", "/no/such/repro.json"}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errBuf bytes.Buffer
			code := realMain(tc.args, io.Discard, &errBuf)
			if code != exitBadFlags {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitBadFlags, errBuf.String())
			}
			if !strings.Contains(errBuf.String(), tc.want) {
				t.Errorf("stderr %q does not mention %q", errBuf.String(), tc.want)
			}
		})
	}
}

// TestValidateAccumulates: one pass reports every violation, not just
// the first.
func TestValidateAccumulates(t *testing.T) {
	f := simFlags{design: "bogus", multicast: "rf", width: 16, cycles: -1,
		window: 0, faultRate: 3, mcRate: 0.05}
	err := f.validate()
	if err == nil {
		t.Fatal("invalid flags accepted")
	}
	for _, want := range []string{"unknown design", "-cycles", "-window", "-fault-rate"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestGoodRunSmoke: a tiny run through the real entry point succeeds,
// including the checkpoint path, and a resumed run of a finished
// checkpoint reproduces the same report.
func TestGoodRunSmoke(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.bin")
	args := []string{"-cycles", "400", "-workload", "uniform", "-design", "static",
		"-checkpoint", ck, "-checkpoint-every", "100", "-seed", "9"}
	var out1, out2 bytes.Buffer
	if code := realMain(args, &out1, io.Discard); code != exitOK {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(out1.String(), "avg latency") {
		t.Errorf("report missing latency line:\n%s", out1.String())
	}
	// Resuming a completed run re-reports the same finished state.
	if code := realMain(append(args, "-resume"), &out2, io.Discard); code != exitOK {
		t.Fatalf("resume exit code = %d, want 0", code)
	}
	if out1.String() != out2.String() {
		t.Errorf("resumed report differs from original:\n--- first\n%s\n--- resumed\n%s", out1.String(), out2.String())
	}
}

// TestSelfHealingRunSmoke: adversarial fault modes plus integrity and
// the watchdog through the real entry point, with the new report
// sections present.
func TestSelfHealingRunSmoke(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-cycles", "2000", "-design", "static", "-integrity", "-watchdog",
		"-misroute-rate", "0.01", "-duplicate-rate", "0.05", "-misdeliver-rate", "0.05",
		"-leak-credit", "12-13@500", "-stick-vc", "45-0@800", "-seed", "3"}
	if code := realMain(args, &out, io.Discard); code != exitOK {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	for _, want := range []string{"integrity/recovery:", "drain:", "fault/recovery:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestSoakAndShrinkSmoke drives -soak through the real entry point and
// then replays a repro with -shrink.
func TestSoakAndShrinkSmoke(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if code := realMain([]string{"-soak", "1", "-seed", "11", "-soak-dir", dir}, &out, io.Discard); code != exitOK {
		t.Fatalf("healthy soak exit code = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "1/1 runs healthy") {
		t.Errorf("soak summary missing:\n%s", out.String())
	}

	// Write a failing repro by hand (sabotaged spec) and replay it.
	spec := experiments.RandomSoakSpec(7)
	spec.Sabotage = true
	path := filepath.Join(dir, "sab.repro.json")
	if err := experiments.WriteSoakRepro(path, experiments.SoakRepro{Spec: spec, Reason: "seeded"}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := realMain([]string{"-shrink", path}, &out, io.Discard); code != exitRunError {
		t.Fatalf("sabotaged repro replay exit code = %d, want %d\n%s", code, exitRunError, out.String())
	}
	if !strings.Contains(out.String(), "still fails") {
		t.Errorf("replay verdict missing:\n%s", out.String())
	}
}
