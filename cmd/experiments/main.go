// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -artifact fig1|fig7|fig8|table2|fig9|fig10a|fig10b|app|summary|ablations|all
//	            [-cycles N] [-rate R] [-seed S] [-format text|csv]
//
// Each artifact prints the same rows/series the paper reports, normalized
// the way the paper normalizes them. The default cycle budget favors
// iteration speed; use -cycles 1000000 to match the paper's trace length.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	artifact := flag.String("artifact", "all", "which artifact to regenerate (fig1, fig7, fig8, table2, fig9, fig10a, fig10b, app, summary, loadcurve, scaling, ablations, all)")
	cycles := flag.Int64("cycles", 60000, "injection cycles per run (paper: 1M)")
	rate := flag.Float64("rate", 0, "transaction injection rate per component per cycle (default per traffic.DefaultRate)")
	seed := flag.Int64("seed", 1, "random seed")
	format := flag.String("format", "text", "output format: text or csv (csv not supported for ablations)")
	hist := flag.Bool("hist", false, "collect latency histograms (adds p50/p99/max tail columns to -artifact app)")
	invCheck := flag.Bool("check", false, "attach an invariant checker to every simulation (panics on violation)")
	flag.Parse()
	csvOut := *format == "csv"
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	m := topology.New10x10()
	opts := experiments.Options{
		Cycles: *cycles, Rate: *rate, Seed: *seed,
		Histograms: *hist, Check: *invCheck,
	}

	check := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			os.Exit(1)
		}
	}
	run := func(name string) {
		switch name {
		case "fig1":
			r := experiments.Fig1(m, opts)
			if csvOut {
				check(experiments.WriteFig1CSV(os.Stdout, r))
				return
			}
			fmt.Println("== Figure 1: traffic locality by manhattan distance ==")
			fmt.Println(r.Render())
		case "fig7":
			r := experiments.Fig7(m, opts)
			if csvOut {
				check(experiments.WriteFig7CSV(os.Stdout, r))
				return
			}
			fmt.Println("== Figure 7: number of RF-enabled routers (16B mesh, normalized to baseline) ==")
			fmt.Println(r.Render())
		case "fig8":
			r := experiments.Fig8(m, opts)
			if csvOut {
				check(experiments.WriteFig7CSV(os.Stdout, r))
				return
			}
			fmt.Println("== Figure 8: mesh bandwidth reduction (normalized to 16B baseline) ==")
			fmt.Println(r.Render())
		case "table2":
			rows := experiments.Table2(m)
			if csvOut {
				check(experiments.WriteTable2CSV(os.Stdout, rows))
				return
			}
			fmt.Println("== Table 2: area of network designs (mm^2) ==")
			fmt.Println(experiments.RenderTable2(rows))
		case "fig9":
			r := experiments.Fig9(m, opts)
			if csvOut {
				check(experiments.WriteFig9CSV(os.Stdout, r))
				return
			}
			fmt.Println("== Figure 9: multicast power and performance (normalized to 16B baseline with unicast expansion) ==")
			fmt.Println(r.Render())
		case "fig10a":
			lines := experiments.Fig10a(m, opts)
			if csvOut {
				check(experiments.WriteFig10CSV(os.Stdout, lines))
				return
			}
			fmt.Println("== Figure 10a: unicast architectures, power vs performance ==")
			fmt.Println(experiments.RenderFig10(lines))
		case "fig10b":
			lines := experiments.Fig10b(m, opts)
			if csvOut {
				check(experiments.WriteFig10CSV(os.Stdout, lines))
				return
			}
			fmt.Println("== Figure 10b: multicast architectures, power vs performance ==")
			fmt.Println(experiments.RenderFig10(lines))
		case "app":
			rs := experiments.AppStudy(m, opts)
			if csvOut {
				check(experiments.WriteAppStudyCSV(os.Stdout, rs))
				return
			}
			fmt.Println("== Application traces: adaptive 4B vs 16B baseline ==")
			fmt.Println(experiments.RenderAppStudy(rs))
		case "summary":
			claims := experiments.Summary(m, opts)
			if csvOut {
				check(experiments.WriteSummaryCSV(os.Stdout, claims))
				return
			}
			fmt.Println("== Headline claims: paper vs measured ==")
			fmt.Println(experiments.RenderSummary(claims))
		case "scaling":
			rows := experiments.ScalingStudy([]int{8, 10, 12, 16}, opts)
			fmt.Println("== Scaling study: 16B baseline vs adaptive 4B overlay across mesh sizes ==")
			fmt.Println(experiments.RenderScaling(rows))
		case "loadcurve":
			curves := experiments.LoadLatency(m,
				experiments.LoadCurveDesigns(tech.Width4B), traffic.Uniform, nil, opts)
			fmt.Println("== Load-latency curves (uniform traffic, 4B mesh) ==")
			fmt.Println(experiments.RenderLoadCurves(curves))
		case "ablations":
			runAblations(m, opts)
		default:
			fmt.Fprintf(os.Stderr, "unknown artifact %q\n", name)
			os.Exit(2)
		}
	}

	if *artifact == "all" {
		for _, a := range []string{"fig1", "table2", "fig7", "fig8", "fig9", "fig10a", "fig10b", "app", "summary", "loadcurve", "scaling", "ablations"} {
			run(a)
		}
		return
	}
	run(*artifact)
}

func runAblations(m *topology.Mesh, opts experiments.Options) {
	fmt.Println("== Ablation: shortcut-selection heuristics (total pair cost; lower is better) ==")
	perm, maxc := experiments.AblationHeuristics(m, tech.ShortcutBudget)
	base := m.Graph().TotalPairCost()
	fmt.Printf("mesh baseline:        %d\n", base)
	fmt.Printf("permutation-graph:    %d (%.1f%% reduction)\n", perm, 100*(1-float64(perm)/float64(base)))
	fmt.Printf("max-cost:             %d (%.1f%% reduction)\n\n", maxc, 100*(1-float64(maxc)/float64(base)))

	fmt.Println("== Ablation: region-based vs pair-based adaptive selection (1Hotspot, 4B mesh, avg latency) ==")
	region, pair := experiments.AblationRegion(m, opts)
	fmt.Printf("region-based: %.2f cycles\npair-based:   %.2f cycles\n\n", region, pair)

	fmt.Println("== Ablation: escape-VC timeout (2Hotspot, 4B mesh + static shortcuts, avg latency) ==")
	times := []int64{4, 16, 64, 256}
	res := experiments.AblationEscapeVC(m, times, opts)
	for _, to := range times {
		fmt.Printf("timeout %4d: %.2f cycles\n", to, res[to])
	}
	fmt.Println()

	fmt.Println("== Ablation: VCs x buffer depth (2Hotspot, 4B mesh + static shortcuts, latency/flit) ==")
	vcs, depths := []int{1, 2, 4, 8}, []int{2, 4, 8}
	resv := experiments.AblationVCConfig(m, vcs, depths, opts)
	for _, v := range vcs {
		for _, dep := range depths {
			fmt.Printf("vcs=%d depth=%d: %.2f\n", v, dep, resv[[2]int{v, dep}])
		}
	}
	fmt.Println()

	fmt.Println("== Routing function: XY vs minimal-adaptive on the permutation suite (4B mesh) ==")
	fmt.Println(experiments.RenderRoutingStudy(experiments.RoutingStudy(m, opts)))

	fmt.Println("== Ablation: shortcut width under the fixed 256B RF-I budget (4B mesh, latency vs 4B baseline) ==")
	widths := []int{4, 8, 16, 32}
	resw := experiments.AblationShortcutWidth(m, widths, opts)
	var ws []int
	for w := range resw {
		ws = append(ws, w)
	}
	sort.Ints(ws)
	for _, w := range ws {
		fmt.Printf("%2dB shortcuts x%2d: %.3f\n", w, tech.RFIAggregateBytes/w, resw[w])
	}
}
