// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -artifact fig1|fig7|fig8|table2|fig9|fig10a|fig10b|app|summary|ablations|all
//	            [-cycles N] [-rate R] [-seed S] [-format text|csv]
//	experiments -supervise [-resume-dir DIR] [-retries N] [-workers N]
//	            [-cycles N] [-rate R] [-seed S]
//
// Each artifact prints the same rows/series the paper reports, normalized
// the way the paper normalizes them. The default cycle budget favors
// iteration speed; use -cycles 1000000 to match the paper's trace length.
//
// -supervise runs the design x workload sweep under the fault-isolating
// supervisor instead: points execute on a worker pool, a panicking or
// failing point is retried -retries times (resuming from its checkpoint
// in -resume-dir), and a point that keeps failing is recorded — with a
// crash dump in -resume-dir — while the rest of the sweep completes.
// Partial results are always printed; the exit code is 1 if any point
// ultimately failed and 0 otherwise. Bad flags exit with 2.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/experiments"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

type expFlags struct {
	artifact string
	cycles   int64
	rate     float64
	seed     int64
	format   string
	hist     bool
	invCheck bool

	supervise bool
	resumeDir string
	retries   int
	workers   int
}

var artifacts = []string{"fig1", "table2", "fig7", "fig8", "fig9", "fig10a", "fig10b", "app", "summary", "loadcurve", "scaling", "ablations"}

func (f *expFlags) validate() error {
	var errs []error
	fail := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if f.cycles <= 0 {
		fail("-cycles must be positive, got %d", f.cycles)
	}
	if f.rate < 0 {
		fail("-rate must be non-negative, got %g", f.rate)
	}
	if f.format != "text" && f.format != "csv" {
		fail("unknown format %q (want text or csv)", f.format)
	}
	if f.artifact != "all" && !f.supervise {
		known := false
		for _, a := range artifacts {
			known = known || a == f.artifact
		}
		if !known {
			fail("unknown artifact %q", f.artifact)
		}
	}
	if f.retries < 0 {
		fail("-retries must be non-negative, got %d", f.retries)
	}
	if f.workers < 0 {
		fail("-workers must be non-negative, got %d", f.workers)
	}
	if f.resumeDir != "" && !f.supervise {
		fail("-resume-dir only makes sense with -supervise")
	}
	return errors.Join(errs...)
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	var f expFlags
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&f.artifact, "artifact", "all", "which artifact to regenerate (fig1, fig7, fig8, table2, fig9, fig10a, fig10b, app, summary, loadcurve, scaling, ablations, all)")
	fs.Int64Var(&f.cycles, "cycles", 60000, "injection cycles per run (paper: 1M)")
	fs.Float64Var(&f.rate, "rate", 0, "transaction injection rate per component per cycle (default per traffic.DefaultRate)")
	fs.Int64Var(&f.seed, "seed", 1, "random seed")
	fs.StringVar(&f.format, "format", "text", "output format: text or csv (csv not supported for ablations)")
	fs.BoolVar(&f.hist, "hist", false, "collect latency histograms (adds p50/p99/max tail columns to -artifact app)")
	fs.BoolVar(&f.invCheck, "check", false, "attach an invariant checker to every simulation (panics on violation)")
	fs.BoolVar(&f.supervise, "supervise", false, "run the design x workload sweep under the fault-isolating supervisor")
	fs.StringVar(&f.resumeDir, "resume-dir", "", "directory for per-point checkpoints and crash dumps (supervised mode)")
	fs.IntVar(&f.retries, "retries", 1, "retry budget per failed sweep point (supervised mode)")
	fs.IntVar(&f.workers, "workers", 0, "supervisor worker pool size (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := f.validate(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	m := topology.New10x10()
	opts := experiments.Options{
		Cycles: f.cycles, Rate: f.rate, Seed: f.seed,
		Histograms: f.hist, Check: f.invCheck,
	}
	if f.supervise {
		return runSupervised(&f, m, opts, stdout, stderr)
	}

	csvOut := f.format == "csv"
	code := 0
	check := func(err error) {
		if err != nil {
			fmt.Fprintf(stderr, "csv: %v\n", err)
			code = 1
		}
	}
	run := func(name string) {
		switch name {
		case "fig1":
			r := experiments.Fig1(m, opts)
			if csvOut {
				check(experiments.WriteFig1CSV(stdout, r))
				return
			}
			fmt.Fprintln(stdout, "== Figure 1: traffic locality by manhattan distance ==")
			fmt.Fprintln(stdout, r.Render())
		case "fig7":
			r := experiments.Fig7(m, opts)
			if csvOut {
				check(experiments.WriteFig7CSV(stdout, r))
				return
			}
			fmt.Fprintln(stdout, "== Figure 7: number of RF-enabled routers (16B mesh, normalized to baseline) ==")
			fmt.Fprintln(stdout, r.Render())
		case "fig8":
			r := experiments.Fig8(m, opts)
			if csvOut {
				check(experiments.WriteFig7CSV(stdout, r))
				return
			}
			fmt.Fprintln(stdout, "== Figure 8: mesh bandwidth reduction (normalized to 16B baseline) ==")
			fmt.Fprintln(stdout, r.Render())
		case "table2":
			rows := experiments.Table2(m)
			if csvOut {
				check(experiments.WriteTable2CSV(stdout, rows))
				return
			}
			fmt.Fprintln(stdout, "== Table 2: area of network designs (mm^2) ==")
			fmt.Fprintln(stdout, experiments.RenderTable2(rows))
		case "fig9":
			r := experiments.Fig9(m, opts)
			if csvOut {
				check(experiments.WriteFig9CSV(stdout, r))
				return
			}
			fmt.Fprintln(stdout, "== Figure 9: multicast power and performance (normalized to 16B baseline with unicast expansion) ==")
			fmt.Fprintln(stdout, r.Render())
		case "fig10a":
			lines := experiments.Fig10a(m, opts)
			if csvOut {
				check(experiments.WriteFig10CSV(stdout, lines))
				return
			}
			fmt.Fprintln(stdout, "== Figure 10a: unicast architectures, power vs performance ==")
			fmt.Fprintln(stdout, experiments.RenderFig10(lines))
		case "fig10b":
			lines := experiments.Fig10b(m, opts)
			if csvOut {
				check(experiments.WriteFig10CSV(stdout, lines))
				return
			}
			fmt.Fprintln(stdout, "== Figure 10b: multicast architectures, power vs performance ==")
			fmt.Fprintln(stdout, experiments.RenderFig10(lines))
		case "app":
			rs := experiments.AppStudy(m, opts)
			if csvOut {
				check(experiments.WriteAppStudyCSV(stdout, rs))
				return
			}
			fmt.Fprintln(stdout, "== Application traces: adaptive 4B vs 16B baseline ==")
			fmt.Fprintln(stdout, experiments.RenderAppStudy(rs))
		case "summary":
			claims := experiments.Summary(m, opts)
			if csvOut {
				check(experiments.WriteSummaryCSV(stdout, claims))
				return
			}
			fmt.Fprintln(stdout, "== Headline claims: paper vs measured ==")
			fmt.Fprintln(stdout, experiments.RenderSummary(claims))
		case "scaling":
			rows := experiments.ScalingStudy([]int{8, 10, 12, 16}, opts)
			fmt.Fprintln(stdout, "== Scaling study: 16B baseline vs adaptive 4B overlay across mesh sizes ==")
			fmt.Fprintln(stdout, experiments.RenderScaling(rows))
		case "loadcurve":
			curves := experiments.LoadLatency(m,
				experiments.LoadCurveDesigns(tech.Width4B), traffic.Uniform, nil, opts)
			fmt.Fprintln(stdout, "== Load-latency curves (uniform traffic, 4B mesh) ==")
			fmt.Fprintln(stdout, experiments.RenderLoadCurves(curves))
		case "ablations":
			runAblations(stdout, m, opts)
		}
	}

	if f.artifact == "all" {
		for _, a := range artifacts {
			run(a)
		}
		return code
	}
	run(f.artifact)
	return code
}

// sweepGrid is the supervised sweep: the paper's headline design points
// under its probabilistic workloads, one point per (design, pattern).
func sweepGrid(m *topology.Mesh, opts experiments.Options) []experiments.SweepPoint {
	designs := []experiments.Design{
		{Kind: experiments.Baseline, Width: tech.Width16B},
		{Kind: experiments.Static, Width: tech.Width16B},
		{Kind: experiments.Static, Width: tech.Width4B},
		{Kind: experiments.Adaptive, Width: tech.Width4B, RFRouters: 50},
	}
	pats := []traffic.Pattern{traffic.Uniform, traffic.Hotspot2, traffic.BiDF}
	var pts []experiments.SweepPoint
	for _, d := range designs {
		for _, pat := range pats {
			d, pat := d, pat
			mkGen := func() traffic.Generator {
				return traffic.NewProbabilistic(m, pat, opts.WithDefaults().Rate, opts.Seed)
			}
			cfg := experiments.Build(m, d, mkGen(), opts.WithDefaults().ProfileCycles)
			id := fmt.Sprintf("%s-%s", d.Name(), pat)
			meta := map[string]string{
				"design":   d.Name(),
				"workload": pat.String(),
				"seed":     fmt.Sprint(opts.Seed),
			}
			pts = append(pts, experiments.NewSweepPoint(id, cfg, mkGen, opts, meta))
		}
	}
	return pts
}

func runSupervised(f *expFlags, m *topology.Mesh, opts experiments.Options, stdout, stderr io.Writer) int {
	if f.resumeDir != "" {
		if err := os.MkdirAll(f.resumeDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "resume dir: %v\n", err)
			return 1
		}
	}
	pts := sweepGrid(m, opts)
	outs, err := experiments.Supervise(context.Background(), experiments.SuperviseConfig{
		Workers: f.workers, Retries: f.retries,
		Dir: f.resumeDir, CheckpointEvery: 10000,
	}, pts)

	fmt.Fprintln(stdout, "== Supervised sweep: design x workload ==")
	fmt.Fprintf(stdout, "%-28s %10s %8s %8s %10s %s\n", "point", "lat/flit", "power W", "attempts", "drain", "status")
	for _, o := range outs {
		status := "ok"
		if o.Err != nil {
			status = "FAILED: " + o.Err.Error()
			if o.CrashDump != "" {
				status += " (crash dump: " + o.CrashDump + ")"
			}
			fmt.Fprintf(stdout, "%-28s %10s %8s %8d %10s %s\n", o.ID, "-", "-", o.Attempts, "-", status)
			continue
		}
		drain := fmt.Sprintf("%d", o.Result.Drain.CyclesUsed)
		if !o.Result.Drained {
			drain = fmt.Sprintf("STUCK:%d", o.Result.Drain.Stranded)
		}
		fmt.Fprintf(stdout, "%-28s %10.2f %8.3f %8d %10s %s\n",
			o.ID, o.Result.AvgLatency, o.Result.PowerW, o.Attempts, drain, status)
	}
	if err != nil {
		fmt.Fprintf(stderr, "supervised sweep: %v\n", err)
		return 1
	}
	return 0
}

func runAblations(w io.Writer, m *topology.Mesh, opts experiments.Options) {
	fmt.Fprintln(w, "== Ablation: shortcut-selection heuristics (total pair cost; lower is better) ==")
	perm, maxc := experiments.AblationHeuristics(m, tech.ShortcutBudget)
	base := m.Graph().TotalPairCost()
	fmt.Fprintf(w, "mesh baseline:        %d\n", base)
	fmt.Fprintf(w, "permutation-graph:    %d (%.1f%% reduction)\n", perm, 100*(1-float64(perm)/float64(base)))
	fmt.Fprintf(w, "max-cost:             %d (%.1f%% reduction)\n\n", maxc, 100*(1-float64(maxc)/float64(base)))

	fmt.Fprintln(w, "== Ablation: region-based vs pair-based adaptive selection (1Hotspot, 4B mesh, avg latency) ==")
	region, pair := experiments.AblationRegion(m, opts)
	fmt.Fprintf(w, "region-based: %.2f cycles\npair-based:   %.2f cycles\n\n", region, pair)

	fmt.Fprintln(w, "== Ablation: escape-VC timeout (2Hotspot, 4B mesh + static shortcuts, avg latency) ==")
	times := []int64{4, 16, 64, 256}
	res := experiments.AblationEscapeVC(m, times, opts)
	for _, to := range times {
		fmt.Fprintf(w, "timeout %4d: %.2f cycles\n", to, res[to])
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "== Ablation: VCs x buffer depth (2Hotspot, 4B mesh + static shortcuts, latency/flit) ==")
	vcs, depths := []int{1, 2, 4, 8}, []int{2, 4, 8}
	resv := experiments.AblationVCConfig(m, vcs, depths, opts)
	for _, v := range vcs {
		for _, dep := range depths {
			fmt.Fprintf(w, "vcs=%d depth=%d: %.2f\n", v, dep, resv[[2]int{v, dep}])
		}
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "== Routing function: XY vs minimal-adaptive on the permutation suite (4B mesh) ==")
	fmt.Fprintln(w, experiments.RenderRoutingStudy(experiments.RoutingStudy(m, opts)))

	fmt.Fprintln(w, "== Ablation: shortcut width under the fixed 256B RF-I budget (4B mesh, latency vs 4B baseline) ==")
	widths := []int{4, 8, 16, 32}
	resw := experiments.AblationShortcutWidth(m, widths, opts)
	var ws []int
	for w2 := range resw {
		ws = append(ws, w2)
	}
	sort.Ints(ws)
	for _, w2 := range ws {
		fmt.Fprintf(w, "%2dB shortcuts x%2d: %.3f\n", w2, tech.RFIAggregateBytes/w2, resw[w2])
	}
}
