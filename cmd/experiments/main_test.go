package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestBadFlagsExit2: malformed flags are rejected with exit code 2 and
// a diagnostic naming the flag.
func TestBadFlagsExit2(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero cycles", []string{"-cycles", "0"}, "-cycles must be positive"},
		{"negative cycles", []string{"-cycles", "-100"}, "-cycles must be positive"},
		{"negative rate", []string{"-rate", "-0.5"}, "-rate must be non-negative"},
		{"unknown format", []string{"-format", "xml"}, `unknown format "xml"`},
		{"unknown artifact", []string{"-artifact", "fig99"}, `unknown artifact "fig99"`},
		{"negative retries", []string{"-supervise", "-retries", "-1"}, "-retries must be non-negative"},
		{"negative workers", []string{"-supervise", "-workers", "-2"}, "-workers must be non-negative"},
		{"resume-dir without supervise", []string{"-resume-dir", "/tmp/x"}, "-resume-dir only makes sense with -supervise"},
		{"undefined flag", []string{"-bogus"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errBuf bytes.Buffer
			code := realMain(tc.args, io.Discard, &errBuf)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, errBuf.String())
			}
			if !strings.Contains(errBuf.String(), tc.want) {
				t.Errorf("stderr %q does not mention %q", errBuf.String(), tc.want)
			}
		})
	}
}

// TestSupervisedSweepSmoke runs the supervised grid at a tiny cycle
// budget end to end: all points succeed, the table prints, exit code 0.
func TestSupervisedSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("supervised sweep smoke is not -short")
	}
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	code := realMain([]string{"-supervise", "-cycles", "500",
		"-resume-dir", dir, "-retries", "0"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errBuf.String())
	}
	got := out.String()
	if !strings.Contains(got, "Supervised sweep") {
		t.Errorf("missing table header:\n%s", got)
	}
	for _, id := range []string{"Uniform", "2Hotspot", "BiDF"} {
		if !strings.Contains(got, id) {
			t.Errorf("sweep table missing %q rows:\n%s", id, got)
		}
	}
	if strings.Contains(got, "FAILED") {
		t.Errorf("unexpected failed point:\n%s", got)
	}
}
