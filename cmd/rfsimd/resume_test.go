package main

// Exactly-once delivery e2e tests (PR 9): a resuming rfclient driven
// through the netchaos proxy must deliver every point outcome exactly
// once and byte-identical to an uninterrupted run, across injected
// mid-stream resets at random byte offsets AND a daemon kill+restart
// over the same state directory; after the restart, cursor GETs must
// be answered from the durable result log with zero recomputation.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netchaos"
	"repro/internal/rfclient"
)

// refOutcomes runs req to completion on a pristine server and returns
// the raw result bytes per point index.
func refOutcomes(t *testing.T, req SweepRequest) map[int][]byte {
	t.Helper()
	_, ts := e2eServer(t, serverConfig{})
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	cl := rfclient.New(rfclient.Config{BaseURL: ts.URL, HTTP: ts.Client()})
	col := rfclient.NewCollector()
	sum, _, err := cl.Run(context.Background(), body, col.Add)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if sum.Failed != 0 {
		t.Fatalf("reference run failed %d points", sum.Failed)
	}
	ref := map[int][]byte{}
	for idx, o := range col.Outcomes() {
		ref[idx] = o.Result
	}
	return ref
}

// TestResumeExactlyOnceAcrossRestart is the acceptance property test,
// made deterministic: every proxied connection is cut (CutProb=1) at a
// random offset, and the daemon is killed the way kill -9 kills it —
// drain-cancel at the second fresh compute, journal accept left
// unpaired — then restarted over the same directory and WAL while the
// client is still retrying. The client must converge with every
// outcome delivered exactly once and byte-identical to the reference,
// and the restarted daemon must answer cursor GETs purely from the
// durable log.
func TestResumeExactlyOnceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "journal.wal")
	req := SweepRequest{Points: []PointSpec{
		{Workload: "uniform", Cycles: 20_000, Seed: 901},
		{Design: "static", Workload: "bidf", Cycles: 20_000, Seed: 902},
		{Design: "wire-static", Workload: "2hotspot", Cycles: 20_000, Seed: 903},
	}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ref := refOutcomes(t, req)

	// Daemon incarnation A, rigged to die mid-sweep: the drain context
	// is cancelled at the second fresh compute, so point results and a
	// journal accept are on disk but the job is unfinished.
	cfg := serverConfig{dir: dir, checkpointEvery: 1000, journalPath: wal}
	drainACtx, drainACancel := context.WithCancel(context.Background())
	defer drainACancel()
	srvA, err := newServer(drainACtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var computesA atomic.Int64
	killed := make(chan struct{})
	srvA.onCompute = func(string) {
		if computesA.Add(1) == 2 {
			close(killed)
		}
	}
	tsA := httptest.NewServer(srvA.handler())

	proxy, err := netchaos.New(netchaos.Config{
		Target:    strings.TrimPrefix(tsA.URL, "http://"),
		Seed:      5,
		CutProb:   1, // every connection dies at a random offset
		CutAfter:  2048,
		TruncProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// The controller: on the kill signal, tear daemon A down without
	// settling anything, bring daemon B up over the same state, point
	// the proxy at it, and replay the journal.
	var srvB *server
	var tsB *httptest.Server
	var computesB atomic.Int64
	restartDone := make(chan struct{})
	replayDone := make(chan struct{})
	go func() {
		defer close(restartDone)
		<-killed
		drainACancel()
		tsA.Close()
		srvA.close()

		var err error
		srvB, err = newServer(context.Background(), cfg)
		if err != nil {
			t.Errorf("restart: %v", err)
			close(replayDone)
			return
		}
		if len(srvB.replay) == 0 {
			t.Error("journal recovered no open jobs — the kill landed after settle")
		}
		srvB.onCompute = func(string) { computesB.Add(1) }
		tsB = httptest.NewServer(srvB.handler())
		proxy.SetTarget(strings.TrimPrefix(tsB.URL, "http://"))
		go func() {
			defer close(replayDone)
			srvB.replayJournal(context.Background())
		}()
	}()

	// The client, dialing only the proxy, resuming across every cut
	// and the restart.
	cl := rfclient.New(rfclient.Config{
		BaseURL:        "http://" + proxy.Addr(),
		IdempotencyKey: "e2e-restart",
		MaxAttempts:    40,
		BaseBackoff:    5 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
		StallTimeout:   10 * time.Second,
		Seed:           1,
	})
	col := rfclient.NewCollector()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sum, st, err := cl.Run(ctx, body, col.Add)
	if err != nil {
		t.Fatalf("client never converged: %v (stats %+v)", err, st)
	}
	if sum.Failed != 0 || sum.Error != "" {
		t.Fatalf("dirty summary: %+v", sum)
	}

	// Exactly-once, byte-identical.
	if d := col.Duplicates(); d != 0 {
		t.Errorf("%d outcomes delivered more than once", d)
	}
	got := col.Outcomes()
	if len(got) != len(req.Points) {
		t.Fatalf("%d outcomes delivered, want %d", len(got), len(req.Points))
	}
	for idx, want := range ref {
		if !bytes.Equal(got[idx].Result, want) {
			t.Errorf("point %d: delivered bytes diverge from the uninterrupted run\ngot:  %s\nwant: %s",
				idx, got[idx].Result, want)
		}
	}

	// The faults really fired and the client really survived them.
	if pst := proxy.Stats(); pst.Cuts == 0 {
		t.Error("the proxy never cut a connection")
	}
	if st.Posts+st.Resumes < 2 {
		t.Errorf("client stats %+v: the run was never interrupted", st)
	}

	select {
	case <-restartDone:
	case <-time.After(30 * time.Second):
		t.Fatal("restart never completed")
	}
	select {
	case <-replayDone:
	case <-time.After(60 * time.Second):
		t.Fatal("journal replay never finished")
	}
	if srvB == nil {
		t.Fatal("no restarted server")
	}
	defer srvB.close()
	defer tsB.Close()
	if open := srvB.journal.OpenJobs(); open != 0 {
		t.Fatalf("%d journal jobs still open after replay", open)
	}

	// GET after restart: the durable log answers from the cursor with
	// zero recomputation, byte-identical again.
	c0 := computesB.Load()
	resp, err := tsB.Client().Get(fmt.Sprintf("%s/v1/jobs/%s/results?from=1", tsB.URL, st.JobID))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d: %s", resp.StatusCode, blob)
	}
	if err := checkDurableStream(blob, ref); err != nil {
		t.Fatalf("durable replay: %v", err)
	}
	if c1 := computesB.Load(); c1 != c0 {
		t.Errorf("GET /v1/jobs/{id}/results recomputed %d points", c1-c0)
	}

	// Re-POSTing the same sweep is answered from the cache the replay
	// (and the client's resumed producer) rebuilt: cached:true on
	// every point, still zero fresh computes.
	resp2, body2 := postSweep(t, tsB, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("re-POST status %d: %s", resp2.StatusCode, body2)
	}
	for _, rec := range decodeStream(t, body2) {
		if rec.Type == "outcome" && !rec.Cached {
			t.Errorf("re-POST point %d not served from the replayed cache", rec.Index)
		}
	}
	if c2 := computesB.Load(); c2 != c0 {
		t.Errorf("re-POST recomputed %d points", c2-c0)
	}
}

func readAll(t *testing.T, resp *http.Response) ([]byte, error) {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestResumeStorm drives the full `-loadtest -resume-storm` harness:
// a client fleet with colliding idempotency keys, random cuts, stalls
// and truncations, a mid-storm daemon kill+restart, and every
// exactly-once and stranded-state invariant checked at the end.
func TestResumeStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("resume storm")
	}
	f := daemonFlags{
		queue: 16, active: 4, maxPoints: 8, cacheEntries: 4096,
		checkpointEvery: 500, retries: 1, intReserve: 4,
		quarFailures: 3, quarCooldown: time.Minute,
		readHeaderTimeout: 2 * time.Second,
		readTimeout:       30 * time.Second,
		idleTimeout:       30 * time.Second,
		resultsKeep:       5 * time.Minute, resultsSync: 16,
		loadtest: true, resumeStorm: true, chaosSeed: 11,
		requests: 24, clients: 6, unique: 4, ltCycles: 300,
	}
	var out bytes.Buffer
	if err := runResumeStorm(&f, &out, &out); err != nil {
		t.Fatalf("resume storm failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all invariants held") {
		t.Errorf("storm output missing the invariant verdict:\n%s", out.String())
	}
	t.Logf("\n%s", out.String())
}
