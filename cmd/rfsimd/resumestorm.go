package main

// The resume-storm harness behind `rfsimd -loadtest -resume-storm`:
// the end-to-end proof of the PR-9 exactly-once delivery contract. A
// fleet of rfclient.Client instances drives keyed sweeps at an
// in-process daemon through a netchaos proxy that cuts, truncates and
// stalls their streams at random byte offsets — and a third of the way
// through the storm the daemon itself is killed the way SIGKILL kills
// it (drain-cancel with no settle) and restarted over the same state
// directory and journal, with the proxy retargeted to the new listener
// the way a crashed daemon comes back behind a stable address.
//
// Invariants asserted at the end (exit 1 on any violation):
//
//   - every client run converges despite the faults and the restart,
//     with a clean terminal summary;
//   - delivery is exactly-once: no client hands an outcome to its
//     consumer twice (the collector counts, the cursor+index dedup
//     suppresses), and every point arrives;
//   - delivered result bytes are identical to an uninterrupted
//     reference run of the same specs on a pristine server;
//   - the faults really fired (proxy cuts > 0) and the resume path was
//     really exercised (cursor GETs > 0, keyed attaches > 0);
//   - after the storm the journal has no open jobs, and no queue
//     slot, admission slot, janitor pin or result-log entry is
//     stranded; the PR-7 queue bound held throughout;
//   - GET /v1/jobs/{id}/results on the restarted daemon serves
//     entirely from the durable result logs — zero recomputation —
//     and re-POSTing a journal-replayed spec is answered from the
//     cache the replay rebuilt, "cached":true on every point;
//   - no goroutine leaks, and the artifact directory ends under the
//     janitor's byte quota.
//
// Artifacts (resume_report.json) land under -lt-out for CI upload.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/janitor"
	"repro/internal/netchaos"
	"repro/internal/rfclient"
)

// stormPoints is the sweep width of every storm spec. Multi-point jobs
// make the cut-between-durable-frames window wide, so a deterministic
// fraction of connection cuts land after the client has banked a
// cursor — the resume path cannot go unexercised by timing luck.
const stormPoints = 3

// stormRun is one client Run's settled record.
type stormRun struct {
	item, unique int
	jobID        string
	summary      rfclient.Summary
	stats        rfclient.Stats
	outcomes     map[int]rfclient.Outcome
	redelivered  int
	err          error
}

// stormSpecs builds `unique` keyed sweep bodies of stormPoints points
// each, pairwise distinct by seed.
func stormSpecs(unique int, cycles int64) []ltSpec {
	designs := []string{"baseline", "static", "wire-static"}
	workloads := []string{"uniform", "bidf", "2hotspot"}
	specs := make([]ltSpec, unique)
	for u := 0; u < unique; u++ {
		req := SweepRequest{Points: make([]PointSpec, stormPoints)}
		for k := range req.Points {
			req.Points[k] = PointSpec{
				Design:   designs[(u+k)%len(designs)],
				Workload: workloads[(u/len(designs)+k)%len(workloads)],
				Seed:     int64(9000 + u*stormPoints + k),
				Cycles:   cycles,
			}
		}
		body, err := json.Marshal(req)
		if err != nil {
			panic(err) // specs are static; this cannot fail
		}
		specs[u] = ltSpec{unique: u, body: body}
	}
	return specs
}

// stormKey names spec u's job across every client and both daemon
// incarnations.
func stormKey(u int) string { return fmt.Sprintf("resume-storm-%03d", u) }

func runResumeStorm(f *daemonFlags, stdout, stderr io.Writer) error {
	baseline := runtime.NumGoroutine()

	dir := f.dir
	if dir == "" {
		if f.ltOut != "" {
			dir = filepath.Join(f.ltOut, "state")
		} else {
			var err error
			if dir, err = os.MkdirTemp("", "rfsimd-resume-"); err != nil {
				return fmt.Errorf("state dir: %w", err)
			}
			defer os.RemoveAll(dir)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("state dir: %w", err)
	}

	cfg := f.serverConfig()
	cfg.dir = dir
	if cfg.journalPath == "" {
		cfg.journalPath = filepath.Join(dir, "journal.wal")
	}

	specs := stormSpecs(f.unique, f.ltCycles)

	// Reference: the same specs, uninterrupted, on a pristine server.
	// Result bytes from the storm must match these exactly.
	ref, err := stormReference(f, specs)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	// Daemon incarnation A.
	drainACtx, drainACancel := context.WithCancel(context.Background())
	defer drainACancel()
	srvA, err := newServer(drainACtx, cfg)
	if err != nil {
		return err
	}

	// The mid-storm kill trigger, armed before the listener opens: it
	// fires from the compute seam midway through the first wave of
	// fresh points, so producers die mid-simulation with their journal
	// accepts still unpaired — the exact state kill -9 leaves behind.
	killComputes := int64(f.unique*stormPoints) / 2
	if killComputes < 1 {
		killComputes = 1
	}
	var computesA atomic.Int64
	var killOnce sync.Once
	killCh := make(chan struct{})
	srvA.onCompute = func(string) {
		if computesA.Add(1) == killComputes {
			killOnce.Do(func() { close(killCh) })
		}
	}

	tsA := startInProc(f, srvA)

	quota := f.gcMaxBytes
	if quota <= 0 {
		quota = 8 << 20
	}
	janA, err := janitor.New(janitor.Config{
		Dir:      dir,
		MaxBytes: quota,
		MaxAge:   f.gcMaxAge,
		Interval: 100 * time.Millisecond,
		Pinned:   srvA.artifactPinned,
	})
	if err != nil {
		return fmt.Errorf("janitor: %w", err)
	}
	srvA.jan = janA
	go janA.Run(drainACtx)

	// Cut offsets are drawn from [0, 2*CutAfter) per connection and
	// accumulate across keep-alive reuse, so with a span a few outcome
	// lines wide the cuts land everywhere: mid-line (no cursor banked,
	// the client re-POSTs) and between durable frames (cursor banked,
	// the client resumes with a GET).
	proxy, err := netchaos.New(netchaos.Config{
		Target:    strings.TrimPrefix(tsA.URL, "http://"),
		Seed:      f.chaosSeed,
		Latency:   time.Millisecond,
		CutProb:   0.35,
		CutAfter:  4096,
		TruncProb: 0.5,
		StallProb: 0.1,
		Stall:     25 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	var vioMu sync.Mutex
	var violations []error
	violate := func(format string, args ...interface{}) {
		vioMu.Lock()
		violations = append(violations, fmt.Errorf(format, args...))
		vioMu.Unlock()
	}

	fmt.Fprintf(stdout, "resume-storm: %d runs, %d clients, %d keyed jobs x %d points, proxy %s -> daemon (seed %d, quota %d bytes)\n",
		f.requests, f.clients, f.unique, stormPoints, proxy.Addr(), f.chaosSeed, quota)

	// Every client dials the proxy, never the daemon: connection reuse
	// accumulates downstream byte offsets toward each connection's
	// pre-drawn cut, so faults land mid-stream at arbitrary points.
	stormHTTP := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: f.clients,
		IdleConnTimeout:     2 * time.Second,
	}}

	var computes atomic.Int64
	restartDone := make(chan struct{})
	replayDone := make(chan struct{})
	drainBCtx, drainBCancel := context.WithCancel(context.Background())
	defer drainBCancel()
	var (
		srvB        *server
		tsB         *httptest.Server
		janB        *janitor.Janitor
		restartErr  error
		restartTook time.Duration
		replayKeys  []string
		queuePeakA  int64
	)
	restart := func() {
		defer close(restartDone)
		begin := time.Now()
		// The kill: drain-cancel first — in-flight computes abort with
		// their journal accepts unpaired, exactly the state kill -9
		// leaves behind — then tear down the listener and the process
		// state. The proxy keeps listening; its clients see resets and
		// refused dials, the shape a real restart has on the wire.
		queuePeakA = srvA.metrics.Snapshot().QueuePeak
		drainACancel()
		tsA.Close()
		srvA.close()

		srvB, restartErr = newServer(drainBCtx, cfg)
		if restartErr != nil {
			close(replayDone)
			return
		}
		for _, rj := range srvB.replay {
			replayKeys = append(replayKeys, rj.Key)
		}
		srvB.onCompute = func(string) { computes.Add(1) }
		janB, restartErr = janitor.New(janitor.Config{
			Dir:      dir,
			MaxBytes: quota,
			MaxAge:   f.gcMaxAge,
			Interval: 100 * time.Millisecond,
			Pinned:   srvB.artifactPinned,
		})
		if restartErr != nil {
			close(replayDone)
			return
		}
		srvB.jan = janB
		go janB.Run(drainBCtx)
		tsB = startInProc(f, srvB)
		proxy.SetTarget(strings.TrimPrefix(tsB.URL, "http://"))
		restartTook = time.Since(begin)
		go func() {
			defer close(replayDone)
			srvB.replayJournal(drainBCtx)
		}()
	}
	// killCh always closes: the first storm wave computes every fresh
	// point exactly once, and killComputes is strictly less than that.
	go func() {
		<-killCh
		restart()
	}()

	// The storm.
	results := make([]stormRun, f.requests)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < f.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = stormFire(proxy.Addr(), stormHTTP, f, specs, i)
			}
		}()
	}
	for i := 0; i < f.requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	stormElapsed := time.Since(start)

	select {
	case <-restartDone:
	case <-time.After(30 * time.Second):
		violate("mid-storm restart never completed")
	}
	if restartErr != nil {
		violate("mid-storm restart failed: %v", restartErr)
	}
	select {
	case <-replayDone:
	case <-time.After(60 * time.Second):
		violate("journal replay did not finish after the storm")
	}

	// Per-run verdicts: convergence, exactly-once, byte-identity.
	var totalPosts, totalResumes, totalDups, totalBackoffs int
	for i := range results {
		r := &results[i]
		totalPosts += r.stats.Posts
		totalResumes += r.stats.Resumes
		totalDups += r.stats.Duplicates
		totalBackoffs += r.stats.Backoffs
		if r.err != nil {
			violate("run %d (spec %d): %v", r.item, r.unique, r.err)
			continue
		}
		if r.summary.Failed != 0 || r.summary.Error != "" {
			violate("run %d (spec %d): dirty summary: failed=%d error=%q",
				r.item, r.unique, r.summary.Failed, r.summary.Error)
		}
		if r.redelivered != 0 {
			violate("run %d (spec %d): %d outcomes delivered more than once",
				r.item, r.unique, r.redelivered)
		}
		want := ref[r.unique]
		if len(r.outcomes) != len(want) {
			violate("run %d (spec %d): %d outcomes delivered, want %d",
				r.item, r.unique, len(r.outcomes), len(want))
			continue
		}
		for idx, blob := range want {
			got, ok := r.outcomes[idx]
			if !ok {
				violate("run %d (spec %d): point %d never delivered", r.item, r.unique, idx)
				continue
			}
			if !bytes.Equal(got.Result, blob) {
				violate("run %d (spec %d): point %d result bytes diverge from the uninterrupted reference",
					r.item, r.unique, idx)
			}
		}
	}

	// The faults must have actually bitten, or the run proves nothing.
	pst := proxy.Stats()
	if pst.Cuts == 0 {
		violate("the proxy never cut a stream — the storm was not a storm")
	}
	if totalResumes == 0 {
		violate("no client ever issued a cursor GET — the resume path went unexercised")
	}

	// Post-restart probes against daemon B, direct (no proxy): the
	// durable logs answer without recomputation.
	if srvB != nil && restartErr == nil {
		stormQuiesce(srvB, violate)
		probeDurableReads(tsB, srvB, &computes, results, ref, replayKeys, specs, violate, stdout)

		snapB := srvB.metrics.Snapshot()
		if snapB.QueueDepth != 0 || snapB.ActiveJobs != 0 {
			violate("stranded jobs: queue depth %d, active %d after drain", snapB.QueueDepth, snapB.ActiveJobs)
		}
		if d := srvB.adm.depthNow(); d != 0 {
			violate("stranded admission slots: depth %d after drain", d)
		}
		if p := srvB.pinCount(); p != 0 {
			violate("stranded janitor pins: %d after drain", p)
		}
		if n := srvB.jobs.liveEntries(); n != 0 {
			violate("stranded result-log entries: %d still live after drain", n)
		}
		if open := srvB.journal.OpenJobs(); open != 0 {
			violate("journal still holds %d open jobs after replay and drain", open)
		}
		maxQueue := int64(cfg.withDefaults().maxQueue)
		if queuePeakA > maxQueue || snapB.QueuePeak > maxQueue {
			violate("queue peak overshot the admission bound %d (A=%d, B=%d)",
				maxQueue, queuePeakA, snapB.QueuePeak)
		}
		if snapB.JobsAttached == 0 && f.requests > f.unique {
			violate("no keyed POST ever attached to an existing job")
		}
		fmt.Fprintf(stdout, "resume-storm: restart took %v, %d journaled jobs replayed\n",
			restartTook.Round(time.Millisecond), len(replayKeys))
		fmt.Fprintln(stdout, snapB.Render())
	}

	// Teardown, then the leak and disk-quota invariants.
	stormHTTP.CloseIdleConnections()
	proxy.Close()
	if tsB != nil {
		tsB.Close()
	}
	drainBCancel()
	if srvB != nil {
		srvB.close()
	}

	leakDeadline := time.Now().Add(15 * time.Second)
	for runtime.NumGoroutine() > baseline+8 {
		if time.Now().After(leakDeadline) {
			var buf bytes.Buffer
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			violate("goroutine leak: %d at start, %d after teardown\n%s",
				baseline, runtime.NumGoroutine(), buf.String())
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	if janB != nil {
		if rep := janB.Sweep(); rep.LiveBytes > quota {
			violate("disk quota violated after final sweep: %d live bytes > %d quota", rep.LiveBytes, quota)
		}
	}

	fmt.Fprintf(stdout, "resume-storm: %d runs in %v: %d posts, %d cursor resumes, %d duplicate frames suppressed, %d backoffs\n",
		f.requests, stormElapsed.Round(time.Millisecond), totalPosts, totalResumes, totalDups, totalBackoffs)
	fmt.Fprintf(stdout, "proxy: %d conns, %d cuts (%d torn), %d stalls, %d dial errors, %d bytes down\n",
		pst.Conns, pst.Cuts, pst.Truncs, pst.Stalls, pst.DialErrors, pst.BytesDown)

	if f.ltOut != "" {
		if err := writeStormReport(f.ltOut, violations, results, pst, restartTook, totalResumes, totalDups); err != nil {
			fmt.Fprintf(stderr, "resume-storm: writing artifacts: %v\n", err)
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d invariant violations:\n%w", len(violations), errors.Join(violations...))
	}
	fmt.Fprintln(stdout, "resume-storm: all invariants held")
	return nil
}

// stormReference runs every spec to completion on a pristine faultless
// server and returns the canonical result bytes per spec per point.
func stormReference(f *daemonFlags, specs []ltSpec) ([]map[int][]byte, error) {
	refDir, err := os.MkdirTemp("", "rfsimd-resume-ref-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(refDir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := f.serverConfig()
	cfg.dir = refDir
	cfg.journalPath = ""
	srv, err := newServer(ctx, cfg)
	if err != nil {
		return nil, err
	}
	defer srv.close()
	ts := startInProc(f, srv)
	defer ts.Close()

	cl := rfclient.New(rfclient.Config{BaseURL: ts.URL, HTTP: ts.Client(), Seed: f.chaosSeed})
	out := make([]map[int][]byte, len(specs))
	for u, s := range specs {
		col := rfclient.NewCollector()
		sum, _, err := cl.Run(context.Background(), s.body, col.Add)
		if err != nil {
			return nil, fmt.Errorf("spec %d: %w", u, err)
		}
		if sum.Failed != 0 {
			return nil, fmt.Errorf("spec %d: %d points failed on a faultless server", u, sum.Failed)
		}
		m := map[int][]byte{}
		for idx, o := range col.Outcomes() {
			m[idx] = o.Result
		}
		out[u] = m
	}
	return out, nil
}

// stormFire is one client run: submit spec item%unique under its
// stable idempotency key through the proxy and follow it to a terminal
// state, resuming across every cut and the daemon restart.
func stormFire(proxyAddr string, httpc *http.Client, f *daemonFlags, specs []ltSpec, item int) stormRun {
	u := item % len(specs)
	cl := rfclient.New(rfclient.Config{
		BaseURL:        "http://" + proxyAddr,
		HTTP:           httpc,
		IdempotencyKey: stormKey(u),
		MaxAttempts:    30,
		BaseBackoff:    10 * time.Millisecond,
		MaxBackoff:     250 * time.Millisecond,
		StallTimeout:   10 * time.Second,
		Seed:           f.chaosSeed + int64(item),
	})
	col := rfclient.NewCollector()
	sum, st, err := cl.Run(context.Background(), specs[u].body, col.Add)
	return stormRun{
		item: item, unique: u, jobID: st.JobID,
		summary: sum, stats: st,
		outcomes: col.Outcomes(), redelivered: col.Duplicates(),
		err: err,
	}
}

// stormQuiesce waits for the restarted daemon to finish every job the
// storm and the replay left in flight.
func stormQuiesce(srv *server, violate func(string, ...interface{})) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap := srv.metrics.Snapshot()
		if snap.QueueDepth == 0 && snap.ActiveJobs == 0 && srv.journal.OpenJobs() == 0 {
			return
		}
		if time.Now().After(deadline) {
			violate("storm never quiesced: queue %d, active %d, open journal jobs %d",
				snap.QueueDepth, snap.ActiveJobs, srv.journal.OpenJobs())
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// probeDurableReads asserts the restart left nothing that needs
// recomputing: every job's cursor GET replays the durable log
// byte-identically with zero computes, and a re-POST of a spec the
// journal replayed is answered from the rebuilt cache, cached:true on
// every point.
func probeDurableReads(ts *httptest.Server, srv *server, computes *atomic.Int64,
	results []stormRun, ref []map[int][]byte, replayKeys []string, specs []ltSpec,
	violate func(string, ...interface{}), stdout io.Writer) {

	jobIDs := map[int]string{}
	uniqueOf := map[string]int{}
	for _, r := range results {
		if r.jobID != "" {
			jobIDs[r.unique] = r.jobID
			uniqueOf[r.jobID] = r.unique
		}
	}
	cl := ts.Client()

	c0 := computes.Load()
	for u, id := range jobIDs {
		resp, err := cl.Get(fmt.Sprintf("%s/v1/jobs/%s/results?from=1", ts.URL, id))
		if err != nil {
			violate("job %d (%s): GET: %v", u, id, err)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			violate("job %d (%s): GET status %d: %s", u, id, resp.StatusCode, body)
			continue
		}
		if err := checkDurableStream(body, ref[u]); err != nil {
			violate("job %d (%s): durable replay: %v", u, id, err)
		}
	}
	if c1 := computes.Load(); c1 != c0 {
		violate("GET /v1/jobs/{id}/results recomputed %d points — reads must come from the durable log", c1-c0)
	}

	// Journal-replayed specs: the replay recomputed them into the
	// cache, so an unkeyed re-POST must be all cache hits.
	probed := 0
	for _, key := range replayKeys {
		u, ok := uniqueOf[key]
		if !ok {
			continue // a job no surviving client record names (e.g. its runs all failed)
		}
		c := computes.Load()
		resp, err := cl.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(specs[u].body))
		if err != nil {
			violate("replayed spec %d: re-POST: %v", u, err)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			violate("replayed spec %d: re-POST status %d: %s", u, resp.StatusCode, body)
			continue
		}
		if err := checkAllCached(body, ref[u]); err != nil {
			violate("replayed spec %d: re-POST not served from the replayed cache: %v", u, err)
		}
		if got := computes.Load(); got != c {
			violate("replayed spec %d: re-POST recomputed %d points", u, got-c)
		}
		probed++
	}
	if len(replayKeys) == 0 {
		// The kill can land in an instant with no open accepts (every
		// in-flight run attached to a done job). The surgical e2e test
		// pins this path deterministically; here it is only a note.
		fmt.Fprintln(stdout, "resume-storm: note: no journaled jobs were open at the kill; replay probe skipped")
	} else {
		fmt.Fprintf(stdout, "resume-storm: %d replayed specs re-served from cache with zero recomputation\n", probed)
	}
}

// checkDurableStream validates a cursor GET of a sealed job: job line,
// then every outcome with a durable seq and the reference bytes, then
// exactly one sealed summary.
func checkDurableStream(body []byte, want map[int][]byte) error {
	got := map[int][]byte{}
	summaries := 0
	if err := scanStorm(body, func(lineNo int, rec stormRec) error {
		switch rec.Type {
		case "job":
			if lineNo != 1 {
				return fmt.Errorf("line %d: stray job line", lineNo)
			}
		case "outcome":
			if rec.Seq <= 0 {
				return fmt.Errorf("line %d: log-replayed outcome without a durable seq", lineNo)
			}
			if rec.Error != "" {
				return fmt.Errorf("line %d: failed outcome in the durable log: %s", lineNo, rec.Error)
			}
			got[rec.Index] = append([]byte(nil), rec.Result...)
		case "summary":
			summaries++
			if rec.Seq <= 0 || rec.Error != "" || rec.Failed != 0 {
				return fmt.Errorf("line %d: summary is not the sealed durable record", lineNo)
			}
		case "idle":
			return fmt.Errorf("line %d: job reported idle — its log is incomplete", lineNo)
		default:
			return fmt.Errorf("line %d: unknown record type %q", lineNo, rec.Type)
		}
		return nil
	}); err != nil {
		return err
	}
	if summaries != 1 {
		return fmt.Errorf("%d summary lines, want 1", summaries)
	}
	return diffResults(got, want)
}

// checkAllCached validates a re-POST answered from the cache: every
// outcome cached:true with the reference bytes, one clean summary.
func checkAllCached(body []byte, want map[int][]byte) error {
	got := map[int][]byte{}
	summaries := 0
	if err := scanStorm(body, func(lineNo int, rec stormRec) error {
		switch rec.Type {
		case "job":
		case "outcome":
			if rec.Error != "" {
				return fmt.Errorf("line %d: failed outcome: %s", lineNo, rec.Error)
			}
			if !rec.Cached {
				return fmt.Errorf("line %d: point %d not marked cached", lineNo, rec.Index)
			}
			got[rec.Index] = append([]byte(nil), rec.Result...)
		case "summary":
			summaries++
			if rec.Error != "" || rec.Failed != 0 {
				return fmt.Errorf("line %d: dirty summary", lineNo)
			}
		default:
			return fmt.Errorf("line %d: unexpected record type %q", lineNo, rec.Type)
		}
		return nil
	}); err != nil {
		return err
	}
	if summaries != 1 {
		return fmt.Errorf("%d summary lines, want 1", summaries)
	}
	return diffResults(got, want)
}

// stormRec is the decode shape the storm probes read streams through;
// Result stays raw so byte-identity is checked on the wire bytes.
type stormRec struct {
	Type   string          `json:"type"`
	Seq    int64           `json:"seq"`
	Index  int             `json:"index"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error"`
	Failed int             `json:"failed"`
	Result json.RawMessage `json:"result"`
}

func scanStorm(body []byte, visit func(int, stormRec) error) error {
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		var rec stormRec
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("line %d: malformed NDJSON: %v", lineNo, err)
		}
		if err := visit(lineNo, rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

func diffResults(got, want map[int][]byte) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d outcomes, want %d", len(got), len(want))
	}
	for idx, blob := range want {
		if !bytes.Equal(got[idx], blob) {
			return fmt.Errorf("point %d: result bytes diverge from the reference", idx)
		}
	}
	return nil
}

// writeStormReport lands resume_report.json under -lt-out for CI.
func writeStormReport(dir string, violations []error, results []stormRun,
	pst netchaos.Stats, restartTook time.Duration, resumes, dups int) error {

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	type runView struct {
		Item     int    `json:"item"`
		Unique   int    `json:"unique"`
		JobID    string `json:"job_id"`
		Posts    int    `json:"posts"`
		Resumes  int    `json:"resumes"`
		Dups     int    `json:"duplicates_suppressed"`
		Backoffs int    `json:"backoffs"`
		Err      string `json:"error,omitempty"`
	}
	report := struct {
		Violations []string       `json:"violations"`
		Proxy      netchaos.Stats `json:"proxy"`
		RestartMS  int64          `json:"restart_ms"`
		Resumes    int            `json:"resumes"`
		Duplicates int            `json:"duplicates_suppressed"`
		Runs       []runView      `json:"runs"`
	}{Proxy: pst, RestartMS: restartTook.Milliseconds(), Resumes: resumes, Duplicates: dups}
	for _, v := range violations {
		report.Violations = append(report.Violations, v.Error())
	}
	for _, r := range results {
		rv := runView{Item: r.item, Unique: r.unique, JobID: r.jobID,
			Posts: r.stats.Posts, Resumes: r.stats.Resumes,
			Dups: r.stats.Duplicates, Backoffs: r.stats.Backoffs}
		if r.err != nil {
			rv.Err = r.err.Error()
		}
		report.Runs = append(report.Runs, rv)
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "resume_report.json"), append(blob, '\n'), 0o644)
}
