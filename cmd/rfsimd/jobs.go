package main

// The job registry: every sweep the service accepts is a job with a
// stable identity, an in-memory frame sequence, and (when -dir is set) a
// durable result log (resultlog.go) behind it. The registry is what
// turns the at-most-once NDJSON stream of PR 6 into exactly-once
// delivery:
//
//   - identity: an explicit Idempotency-Key header names the job
//     (sha256 of the key); without one the job is content-addressed
//     (sha256 over the compiled point fingerprints), so identical
//     re-POSTs resolve to the same log either way;
//   - frames: each point index is appended at most once, by whichever
//     producer (live handler, journal replay, keyed re-run) finishes it
//     first; the frame's 1-based seq is its position, and the bytes at
//     a given seq never change — the resume contract;
//   - visibility: streams see frames only up to the durable watermark
//     (synced to disk), so a crash can never retract a seq a client
//     has already consumed;
//   - completion: exactly one summary frame, appended only when every
//     index has a logged success. A run that is cancelled or fails
//     points leaves the job idle and incomplete; the next POST with the
//     same identity re-runs it through normal admission, resuming the
//     log where it stopped (and hitting the result cache / checkpoints
//     for the points already done);
//   - lifecycle: entries (and their *.results files, via resultPinned)
//     are pinned while a producer is active, a stream is attached, or
//     within the -results-keep window of the last touch; past that the
//     registry forgets them and the janitor may collect the file. A
//     later GET or keyed POST reloads the log from disk.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// contentIdentity derives the request's content fingerprint (and the
// default job ID) from the compiled points: their fingerprints already
// content-address every knob that shapes a result, in request order.
func contentIdentity(pts []experiments.SweepPoint) string {
	h := sha256.New()
	h.Write([]byte("rfsimd-job-v1\n"))
	for i := range pts {
		h.Write([]byte(pts[i].Fingerprint))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// jobIDFromKey derives the job ID for an explicit Idempotency-Key. The
// hash makes any key filename-safe and fixed-length.
func jobIDFromKey(key string) string {
	h := sha256.Sum256([]byte("rfsimd-idempotency-key\n" + key))
	return hex.EncodeToString(h[:])
}

// validJobID gates path-derived lookups: IDs are exactly the hex sha256
// form both derivations produce, so a crafted GET cannot escape the
// artifact directory or name foreign files.
func validJobID(id string) bool {
	if len(id) != 64 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// errJobConflict is the 409: an Idempotency-Key reused with a different
// request body.
var errJobConflict = errors.New("idempotency key was already used with a different sweep body")

// jobState classifies an entry for the attach decision.
type jobState int

const (
	jobIdle jobState = iota // no producer running, log incomplete
	jobLive                 // a producer is appending now
	jobDone                 // summary frame logged
)

// jobEntry is one job's in-memory state. lines is append-only and its
// elements are immutable, so a stream may hold a snapshot slice and
// write it outside the lock.
type jobEntry struct {
	id     string
	header resultLogHeader

	mu      sync.Mutex
	cond    *sync.Cond
	lines   [][]byte     // frame payloads (NDJSON sans newline); seq = index+1
	durable int          // frames covered by an fsync: the visible prefix
	seen    map[int]bool // point indices with a logged outcome
	done    bool
	active  int       // producers (handlers/replay) appending now
	readers int       // attached streams
	last    time.Time // last producer/reader activity, for the keep window
	log     *resultLog
	logErr  bool // an append failed; durability degraded to memory-only
}

func (e *jobEntry) broadcast() {
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// state classifies the entry now. Callers hold e.mu.
func (e *jobEntry) stateLocked() jobState {
	switch {
	case e.done:
		return jobDone
	case e.active > 0:
		return jobLive
	default:
		return jobIdle
	}
}

// lineIndex peeks the "index"/"type" of a logged frame to rebuild seen.
type lineIndex struct {
	Type  string `json:"type"`
	Index int    `json:"index"`
}

// absorb replaces the entry's frame state with a parsed log. Callers
// hold e.mu. Safe even with attached readers: the parsed prefix is
// byte-identical to what attach loaded (both stop at the first bad
// frame), so snapshot cursors stay aligned.
func (e *jobEntry) absorbLocked(d resultLogData) {
	e.lines = d.lines
	e.durable = len(d.lines) // everything on disk is synced
	e.done = d.done
	e.seen = make(map[int]bool, len(d.lines))
	for _, blob := range d.lines {
		var li lineIndex
		if json.Unmarshal(blob, &li) == nil && li.Type == "outcome" {
			e.seen[li.Index] = true
		}
	}
}

// jobRegistry owns every in-memory entry and the artifact-directory
// mapping. Safe for concurrent use.
type jobRegistry struct {
	dir       string        // "" = memory-only (no durable logs)
	keep      time.Duration // recently-touched pin/retention window
	syncEvery int
	metrics   *obs.ServiceMetrics
	now       func() time.Time

	mu      sync.Mutex
	entries map[string]*jobEntry
}

func newJobRegistry(dir string, keep time.Duration, syncEvery int, m *obs.ServiceMetrics) *jobRegistry {
	if keep <= 0 {
		keep = 5 * time.Minute
	}
	return &jobRegistry{
		dir:       dir,
		keep:      keep,
		syncEvery: syncEvery,
		metrics:   m,
		now:       time.Now,
		entries:   map[string]*jobEntry{},
	}
}

func (r *jobRegistry) path(id string) string {
	return filepath.Join(r.dir, id+resultLogSuffix)
}

// lookup returns the entry for id, reloading it from the artifact
// directory if the registry has forgotten it. nil means the job is
// unknown (404).
func (r *jobRegistry) lookup(id string) *jobEntry {
	if !validJobID(id) {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[id]; ok {
		return e
	}
	if r.dir == "" {
		return nil
	}
	d, err := loadResultLog(r.path(id))
	if err != nil || d.header.Job != id {
		return nil
	}
	e := r.newEntryLocked(id, d.header)
	e.absorbLocked(d)
	return e
}

// attach resolves (creating if needed) the entry for a POST. It is the
// conflict gate: a keyed request whose body fingerprint differs from
// the job's recorded one is refused. The returned state tells the
// handler whether to serve the existing job (live/done) or run it.
func (r *jobRegistry) attach(id, reqFP string, points int) (*jobEntry, jobState, error) {
	r.mu.Lock()
	e, ok := r.entries[id]
	if !ok && r.dir != "" {
		if d, err := loadResultLog(r.path(id)); err == nil && d.header.Job == id {
			e = r.newEntryLocked(id, d.header)
			e.absorbLocked(d)
			ok = true
		}
	}
	if !ok {
		e = r.newEntryLocked(id, resultLogHeader{Job: id, Req: reqFP, Points: points})
	}
	r.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.header.Req != reqFP {
		return nil, jobIdle, errJobConflict
	}
	e.last = r.now()
	return e, e.stateLocked(), nil
}

// newEntryLocked builds and registers a fresh entry. Callers hold r.mu.
func (r *jobRegistry) newEntryLocked(id string, hdr resultLogHeader) *jobEntry {
	e := &jobEntry{id: id, header: hdr, seen: map[int]bool{}, last: r.now()}
	e.cond = sync.NewCond(&e.mu)
	r.entries[id] = e
	return e
}

// startProducer registers a producer on the entry (a live handler past
// admission, or a journal replay) and opens the durable log if the
// artifact directory has one. The error path means the log exists but
// cannot be opened — the job has no durability and must be refused the
// way a journal write failure is.
func (r *jobRegistry) startProducer(e *jobEntry) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r.dir != "" && e.log == nil && !e.logErr {
		lg, d, err := openResultLog(r.path(e.id), e.header, r.syncEvery)
		if err != nil {
			return err
		}
		if d.torn > 0 {
			r.metrics.ResultTornTruncated()
		}
		e.absorbLocked(d) // disk is authoritative for resume state
		e.log = lg
	}
	e.active++
	e.last = r.now()
	return nil
}

// endProducer retires a producer; waiting streams re-evaluate (an idle
// incomplete job ends their tail with an "idle" line).
func (r *jobRegistry) endProducer(e *jobEntry) {
	e.mu.Lock()
	e.active--
	e.last = r.now()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// appendOutcome logs one successful point outcome, assigning its seq.
// Exactly the first producer to finish an index appends it; later
// producers get appended=false and stream their own (transient,
// seq-less) line instead. expose means the caller will put the returned
// blob on a client stream itself, so the frame must be synced before
// returning; without it, appends from an unattended producer (journal
// replay) may batch.
func (r *jobRegistry) appendOutcome(e *jobEntry, line outcomeLine, expose bool) (blob []byte, appended bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done || e.seen[line.Index] {
		return nil, false
	}
	line.Seq = int64(len(e.lines) + 1)
	blob, err := json.Marshal(line)
	if err != nil {
		return nil, false
	}
	e.appendLocked(resultFrameOutcome, blob, expose || e.readers > 0)
	e.seen[line.Index] = true
	r.metrics.ResultFrameAppended()
	return blob, true
}

// appendSummary seals a complete job: every index has a logged success.
// Incomplete or failed runs append nothing — the job stays idle and
// resumable.
func (r *jobRegistry) appendSummary(e *jobEntry, sum summaryLine, expose bool) (blob []byte, appended bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done || len(e.seen) < e.header.Points {
		return nil, false
	}
	sum.Seq = int64(len(e.lines) + 1)
	blob, err := json.Marshal(sum)
	if err != nil {
		return nil, false
	}
	e.appendLocked(resultFrameSummary, blob, expose || e.readers > 0)
	e.done = true
	r.metrics.ResultFrameAppended()
	return blob, true
}

// appendLocked writes one frame to memory and (when backed) to disk,
// advancing the durable watermark only once the frame is fsync'd. A
// disk append failure degrades the entry to memory-only durability —
// honest degraded service beats refusing results we already computed;
// the on-disk prefix stays valid for a later resume. Callers hold e.mu.
func (e *jobEntry) appendLocked(kind byte, blob []byte, force bool) {
	e.lines = append(e.lines, blob)
	if e.log != nil {
		// Group commit: sync immediately whenever a stream is waiting on
		// this frame (readers, the producer's own follower, or a direct
		// response about to carry it), batch otherwise (journal replay
		// with nobody attached).
		synced, err := e.log.Append(kind, blob, force)
		if err != nil {
			e.log.Close()
			e.log = nil
			e.logErr = true
		} else if !synced {
			// Batched: the frame is in memory but not yet durable; the
			// watermark advances at the next covering sync.
			return
		}
	}
	e.durable = len(e.lines)
	e.cond.Broadcast()
}

// syncEntry flushes batched append debt and publishes the frames.
func (r *jobRegistry) syncEntry(e *jobEntry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.log != nil {
		if err := e.log.Sync(); err != nil {
			e.log.Close()
			e.log = nil
			e.logErr = true
		}
	}
	e.durable = len(e.lines)
	e.cond.Broadcast()
}

// addReader / dropReader bracket one attached stream.
func (r *jobRegistry) addReader(e *jobEntry) {
	e.mu.Lock()
	e.readers++
	e.last = r.now()
	e.mu.Unlock()
}

func (r *jobRegistry) dropReader(e *jobEntry) {
	e.mu.Lock()
	e.readers--
	e.last = r.now()
	e.mu.Unlock()
}

// resultPinned is the janitor gate for <id>.results files: live,
// attached or recently-touched jobs must keep their logs.
func (r *jobRegistry) resultPinned(name string) bool {
	id := name[:len(name)-len(resultLogSuffix)]
	r.mu.Lock()
	e, ok := r.entries[id]
	r.mu.Unlock()
	if !ok {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.active > 0 || e.readers > 0 || r.now().Sub(e.last) < r.keep
}

// prune forgets idle entries past the keep window, closing their log
// handles. Runs under the janitor's cadence (the server's Compact hook)
// and on shutdown via closeAll.
func (r *jobRegistry) prune() {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, e := range r.entries {
		e.mu.Lock()
		idle := e.active == 0 && e.readers == 0 && now.Sub(e.last) >= r.keep
		if idle && e.log != nil {
			e.log.Sync()
			e.log.Close()
			e.log = nil
		}
		e.mu.Unlock()
		if idle {
			delete(r.entries, id)
		}
	}
}

// closeAll syncs and closes every open log handle (graceful shutdown;
// a crash, by definition, does not get to call it).
func (r *jobRegistry) closeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		e.mu.Lock()
		if e.log != nil {
			e.log.Sync()
			e.log.Close()
			e.log = nil
		}
		e.mu.Unlock()
	}
}

// liveEntries reports entries with an active producer or reader (a
// post-drain invariant for the chaos harness: zero).
func (r *jobRegistry) liveEntries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.entries {
		e.mu.Lock()
		if e.active > 0 || e.readers > 0 {
			n++
		}
		e.mu.Unlock()
	}
	return n
}

// jobSnapshot reads one consistent view of the streamable state.
type jobSnapshot struct {
	lines  [][]byte // full visible prefix (durable frames only)
	done   bool
	active int
	points int
}

// snapshotFrom returns the visible frames past cursor (a 0-based frame
// count already consumed) plus the state a stream needs to decide
// whether to wait, finish, or declare the job idle.
func (e *jobEntry) snapshotFrom(cursor int) jobSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := jobSnapshot{done: e.done, active: e.active, points: e.header.Points}
	if cursor < e.durable {
		s.lines = e.lines[cursor:e.durable]
	}
	return s
}

// waitChange blocks until the visible prefix grows past cursor, the job
// completes or goes idle, or the caller's context (bridged via
// broadcast) fires. It returns the fresh snapshot.
func (e *jobEntry) waitChange(cursor int, cancelled func() bool) jobSnapshot {
	e.mu.Lock()
	for cursor >= e.durable && !e.done && e.active > 0 && !cancelled() {
		e.cond.Wait()
	}
	e.mu.Unlock()
	return e.snapshotFrom(cursor)
}

// jobLine is the first NDJSON record of every job-aware stream: the ID
// the client resumes with and the point count it should expect.
type jobLine struct {
	Type   string `json:"type"` // "job"
	ID     string `json:"id"`
	Points int    `json:"points"`
}

// idleLine ends a stream whose job is incomplete with no producer: the
// client should re-POST (attach) to restart it rather than keep
// polling.
type idleLine struct {
	Type string `json:"type"` // "idle"
}

func mustMarshal(v interface{}) []byte {
	blob, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("marshal %T: %v", v, err))
	}
	return blob
}
