package main

// The durable per-job result log: every point outcome a job produces is
// appended, exactly once per point index, as a CRC64-framed record
// (internal/checkpoint framing — the same frame format the worker pipe
// speaks) in the artifact directory, followed by one summary frame when
// the job completes. The log is the server half of exactly-once
// delivery: GET /v1/jobs/{id}/results?from=<cursor> replays it from any
// cursor, so a client that lost its connection — or outlived a daemon
// restart — re-reads only what it missed, bit-identical.
//
// File layout (<dir>/<jobID>.results):
//
//	frame 'H'  resultLogHeader JSON   (job ID, request fingerprint, points)
//	frame 'O'  one outcome NDJSON line, carrying its 1-based "seq"
//	...
//	frame 'S'  the summary NDJSON line (present only when complete)
//
// Durability contract, shared with jobs.go:
//
//   - a frame's seq is exposed to a stream only AFTER the fsync covering
//     it returns, so a crash can tear off only frames no client has ever
//     seen — the resume cursor never moves backwards;
//   - appends are fsync-batched (-results-sync) only while nothing is
//     attached (journal replay); a live stream syncs every frame;
//   - a torn tail (crash mid-append) is truncated at reopen and counted,
//     like cmd/rfsimd/journal.go — losing the record the crash
//     interrupted is the crash-only contract, losing the log is not;
//   - the janitor GCs *.results under the disk quotas, but never while
//     the job is live or recently read (jobRegistry.resultPinned).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/checkpoint"
)

// Result-log frame kinds.
const (
	resultFrameHeader  = 'H'
	resultFrameOutcome = 'O'
	resultFrameSummary = 'S'
)

// defaultResultsSyncEvery is the unattached-append fsync batch size.
const defaultResultsSyncEvery = 16

// resultLogSuffix is the artifact-directory suffix the janitor matches
// and the registry pins.
const resultLogSuffix = ".results"

// resultLogHeader is the 'H' frame: enough identity to detect an
// Idempotency-Key reused with a different request body (409) across
// restarts, and the point count a resumed stream reports in its job
// line.
type resultLogHeader struct {
	Job    string `json:"job"`    // job ID (hex, also the file's base name)
	Req    string `json:"req"`    // request content fingerprint
	Points int    `json:"points"` // requested point count
}

// resultLogData is the parsed prefix of one log file.
type resultLogData struct {
	header resultLogHeader
	lines  [][]byte // 'O' and 'S' frame payloads in order; seq = index+1
	done   bool     // the last line is the summary frame
	torn   int64    // bytes of torn/corrupt tail beyond the good prefix
	good   int64    // byte length of the parseable prefix
}

// parseResultLog walks the frames of data, stopping at the first torn or
// corrupt frame (frames are not self-synchronizing, so everything past
// it is unreachable debt). An empty file parses to a zero value with
// header.Job == "".
func parseResultLog(data []byte) (resultLogData, error) {
	var d resultLogData
	if len(data) == 0 {
		return d, nil
	}
	r := bytes.NewReader(data)
	sawHeader := false
	for {
		kind, payload, err := checkpoint.ReadFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: keep the good prefix, count the rest.
			d.torn = int64(len(data)) - d.good
			break
		}
		switch {
		case !sawHeader:
			if kind != resultFrameHeader {
				return d, fmt.Errorf("result log: first frame is %q, want header", kind)
			}
			if err := json.Unmarshal(payload, &d.header); err != nil {
				return d, fmt.Errorf("result log: header: %w", err)
			}
			sawHeader = true
		case kind == resultFrameOutcome && !d.done:
			d.lines = append(d.lines, payload)
		case kind == resultFrameSummary && !d.done:
			d.lines = append(d.lines, payload)
			d.done = true
		default:
			return d, fmt.Errorf("result log: unexpected frame %q at seq %d", kind, len(d.lines)+1)
		}
		d.good = int64(len(data)) - int64(r.Len())
	}
	return d, nil
}

// loadResultLog reads a log without taking ownership: the GET/attach
// path uses it to serve completed (or abandoned) jobs that are no longer
// in memory. A missing file is (zero, os.ErrNotExist); a torn tail is
// simply not served (it was never exposed).
func loadResultLog(path string) (resultLogData, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return resultLogData{}, err
	}
	return parseResultLog(data)
}

// resultLog is an open-for-append handle. Callers (jobEntry) serialize
// access; the handle itself only tracks the fsync debt.
type resultLog struct {
	f         *os.File
	path      string
	syncEvery int
	pending   int // appended frames not yet covered by an fsync
}

// openResultLog opens (or creates) the log for appending: it parses the
// existing prefix, truncates any torn tail so the next append cannot
// fuse with a half-written frame, verifies (or writes) the header, and
// returns the handle positioned at the end. The parsed data is the
// authoritative resume state — the caller replaces its in-memory view
// with it.
func openResultLog(path string, hdr resultLogHeader, syncEvery int) (*resultLog, resultLogData, error) {
	if syncEvery <= 0 {
		syncEvery = defaultResultsSyncEvery
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, resultLogData{}, fmt.Errorf("result log: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, resultLogData{}, fmt.Errorf("result log: %w", err)
	}
	d, err := parseResultLog(data)
	if err != nil {
		f.Close()
		return nil, resultLogData{}, err
	}
	lg := &resultLog{f: f, path: path, syncEvery: syncEvery}
	if d.header.Job == "" {
		// Fresh (or wholly torn) log: start it with the header frame.
		if d.torn > 0 {
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, d, fmt.Errorf("result log: %w", err)
			}
			d.good = 0
		}
		blob, err := json.Marshal(hdr)
		if err != nil {
			f.Close()
			return nil, d, fmt.Errorf("result log: %w", err)
		}
		if err := checkpoint.WriteFrame(f, resultFrameHeader, blob); err != nil {
			f.Close()
			return nil, d, fmt.Errorf("result log: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, d, fmt.Errorf("result log: %w", err)
		}
		d.header = hdr
		return lg, d, nil
	}
	if d.header.Job != hdr.Job || d.header.Req != hdr.Req {
		f.Close()
		return nil, d, fmt.Errorf("result log %s: header names job %s req %s, want job %s req %s",
			path, d.header.Job, d.header.Req, hdr.Job, hdr.Req)
	}
	if d.torn > 0 {
		if err := f.Truncate(d.good); err != nil {
			f.Close()
			return nil, d, fmt.Errorf("result log: %w", err)
		}
	}
	if _, err := f.Seek(d.good, io.SeekStart); err != nil {
		f.Close()
		return nil, d, fmt.Errorf("result log: %w", err)
	}
	return lg, d, nil
}

// Append writes one frame. force (or a summary frame, or syncEvery of
// accumulated debt) fsyncs before returning; the caller must expose the
// frame's seq to streams only when synced is true.
func (lg *resultLog) Append(kind byte, payload []byte, force bool) (synced bool, err error) {
	if err := checkpoint.WriteFrame(lg.f, kind, payload); err != nil {
		return false, fmt.Errorf("result log: %w", err)
	}
	lg.pending++
	if !force && kind != resultFrameSummary && lg.pending < lg.syncEvery {
		return false, nil
	}
	if err := lg.f.Sync(); err != nil {
		return false, fmt.Errorf("result log: %w", err)
	}
	lg.pending = 0
	return true, nil
}

// Sync flushes any batched append debt.
func (lg *resultLog) Sync() error {
	if lg.pending == 0 {
		return nil
	}
	if err := lg.f.Sync(); err != nil {
		return fmt.Errorf("result log: %w", err)
	}
	lg.pending = 0
	return nil
}

// Close releases the handle without syncing batched debt — mirroring
// what a crash would do, which is the only other way a log handle dies.
func (lg *resultLog) Close() error {
	if lg.f == nil {
		return nil
	}
	err := lg.f.Close()
	lg.f = nil
	return err
}
