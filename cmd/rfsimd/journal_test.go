package main

// Unit tests of the job WAL: accept/done round-trips, replay ordering,
// torn-tail and mid-file corruption recovery, idempotent settling, and
// compaction (both boot-time and threshold-triggered).

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.wal")
}

func TestJournalAcceptDoneReplay(t *testing.T) {
	path := tempJournal(t)
	j, jobs, err := openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("fresh journal has %d replay jobs", len(jobs))
	}

	a, err := j.Accept("job-a", json.RawMessage(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := j.Accept("", json.RawMessage(`{"n":2}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := j.Accept("job-c", json.RawMessage(`{"n":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if a >= b || b >= c {
		t.Fatalf("sequence numbers not increasing: %d %d %d", a, b, c)
	}
	if err := j.Done(b, false); err != nil {
		t.Fatal(err)
	}
	if got := j.OpenJobs(); got != 2 {
		t.Fatalf("open jobs %d, want 2", got)
	}
	j.Close()

	// Reopen: only the unsettled accepts replay, oldest first.
	j2, jobs, err := openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(jobs) != 2 || jobs[0].ID != a || jobs[1].ID != c {
		t.Fatalf("replay jobs %+v, want IDs [%d %d]", jobs, a, c)
	}
	if string(jobs[0].Spec) != `{"n":1}` || string(jobs[1].Spec) != `{"n":3}` {
		t.Fatalf("replay specs corrupted: %s / %s", jobs[0].Spec, jobs[1].Spec)
	}
	// The result-log job key (PR 9) must round-trip so replay can
	// reattach to the same durable log.
	if jobs[0].Key != "job-a" || jobs[1].Key != "job-c" {
		t.Fatalf("replay keys %q / %q, want job-a / job-c", jobs[0].Key, jobs[1].Key)
	}
	// New accepts must not collide with replayed IDs.
	d, err := j2.Accept("", json.RawMessage(`{"n":4}`))
	if err != nil {
		t.Fatal(err)
	}
	if d <= c {
		t.Fatalf("sequence regressed across reopen: %d after %d", d, c)
	}
}

func TestJournalDoneIdempotent(t *testing.T) {
	j, _, err := openJournal(tempJournal(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	id, _ := j.Accept("", json.RawMessage(`{}`))
	if err := j.Done(id, true); err != nil {
		t.Fatal(err)
	}
	if err := j.Done(id, true); err != nil {
		t.Fatal(err)
	}
	if err := j.Done(id+99, false); err != nil {
		t.Fatal(err)
	}
	if got := j.Stats().Completed; got != 1 {
		t.Fatalf("completed %d after duplicate settles, want 1", got)
	}
}

// TestJournalTornTail: a crash mid-append leaves a final line with no
// newline; recovery must skip it, count it, and keep every record
// before it — including the one the torn line would have settled.
func TestJournalTornTail(t *testing.T) {
	path := tempJournal(t)
	j, _, err := openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := j.Accept("", json.RawMessage(`{"keep":true}`))
	j.Close()

	// The crash: a done record half-written (no newline, truncated JSON).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"done","job":` + "1,\"fail")
	f.Close()

	j2, jobs, err := openJournal(path, 0)
	if err != nil {
		t.Fatalf("torn tail must not be fatal: %v", err)
	}
	defer j2.Close()
	if len(jobs) != 1 || jobs[0].ID != id {
		t.Fatalf("replay jobs %+v, want the surviving accept %d", jobs, id)
	}
	if got := j2.Stats().TornSkipped; got != 1 {
		t.Fatalf("torn skipped %d, want 1", got)
	}
	// Boot compaction must have scrubbed the torn bytes so the next
	// append cannot fuse with them.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") || strings.Contains(string(data), "fail") {
		t.Fatalf("torn tail survived compaction: %q", data)
	}
}

// TestJournalMidFileGarbage: bit rot in the middle of the file loses
// that record only.
func TestJournalMidFileGarbage(t *testing.T) {
	path := tempJournal(t)
	lines := []string{
		`{"t":"accept","job":1,"spec":{"a":1}}`,
		`not json at all`,
		`{"t":"accept","job":2,"spec":{"b":2}}`,
		`{"t":"done","job":2}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, jobs, err := openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(jobs) != 1 || jobs[0].ID != 1 {
		t.Fatalf("replay jobs %+v, want just job 1", jobs)
	}
	if got := j.Stats().TornSkipped; got != 1 {
		t.Fatalf("torn skipped %d, want 1", got)
	}
}

// TestJournalCompaction: settled pairs past the threshold fold away,
// open accepts survive, and the file visibly shrinks.
func TestJournalCompaction(t *testing.T) {
	path := tempJournal(t)
	j, _, err := openJournal(path, 4) // compact once 4 records are settled
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	keep, _ := j.Accept("", json.RawMessage(`{"keep":true}`))
	if j.CompactIfNeeded() {
		t.Fatal("compacted with no settled debt")
	}
	for i := 0; i < 2; i++ {
		id, _ := j.Accept("", json.RawMessage(`{"churn":true}`))
		if err := j.Done(id, false); err != nil {
			t.Fatal(err)
		}
	}
	if !j.CompactIfNeeded() {
		t.Fatal("no compaction at threshold")
	}
	if got := j.Stats().Compactions; got != 1 {
		t.Fatalf("compactions %d, want 1", got)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "churn") {
		t.Fatalf("settled records survived compaction: %s", data)
	}
	if !strings.Contains(string(data), "keep") {
		t.Fatalf("open accept lost in compaction: %s", data)
	}

	// The compacted journal must still be a working WAL.
	id, err := j.Accept("", json.RawMessage(`{"after":true}`))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, jobs, err := openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(jobs) != 2 || jobs[0].ID != keep || jobs[1].ID != id {
		t.Fatalf("replay after compaction: %+v, want IDs [%d %d]", jobs, keep, id)
	}
}

// TestJournalCompactionRace: CompactIfNeeded folding the file while
// several goroutines churn Accept/Done pairs through it — the
// janitor's sweep cadence against live admission. Under -race this is
// the locking proof; structurally, no open accept may be lost, no
// line torn, and the journal must reopen clean.
func TestJournalCompactionRace(t *testing.T) {
	path := tempJournal(t)
	j, _, err := openJournal(path, 8) // low threshold: compact often mid-churn
	if err != nil {
		t.Fatal(err)
	}

	keep, err := j.Accept("pinned", json.RawMessage(`{"keep":true}`))
	if err != nil {
		t.Fatal(err)
	}

	// The compactor: hammered the way many overlapping janitor sweeps
	// would, racing the churn below.
	stop := make(chan struct{})
	var compactor sync.WaitGroup
	compactor.Add(1)
	go func() {
		defer compactor.Done()
		for {
			select {
			case <-stop:
				return
			default:
				j.CompactIfNeeded()
			}
		}
	}()

	const workers, perWorker = 4, 50
	var churn sync.WaitGroup
	for w := 0; w < workers; w++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for i := 0; i < perWorker; i++ {
				id, err := j.Accept("", json.RawMessage(`{"churn":true}`))
				if err != nil {
					t.Error(err)
					return
				}
				if err := j.Done(id, false); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	churn.Wait()
	close(stop)
	compactor.Wait()

	if got := j.OpenJobs(); got != 1 {
		t.Fatalf("open jobs %d after churn, want just the pinned accept", got)
	}
	if j.Stats().Compactions == 0 {
		t.Error("the compactor never fired against concurrent churn")
	}
	j.Close()

	// The raced file must reopen clean: exactly the pinned accept, no
	// torn lines.
	j2, jobs, err := openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(jobs) != 1 || jobs[0].ID != keep || jobs[0].Key != "pinned" {
		t.Fatalf("replay after racing compactions: %+v, want the pinned accept %d", jobs, keep)
	}
	if got := j2.Stats().TornSkipped; got != 0 {
		t.Fatalf("%d torn lines after racing compactions", got)
	}
}
