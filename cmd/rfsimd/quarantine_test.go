package main

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's timer deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestQuarantine(k int, cooldown time.Duration) (*quarantine, *fakeClock) {
	q := newQuarantine(k, cooldown)
	clk := &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	q.now = clk.now
	return q, clk
}

// TestQuarantineTripsAfterK: K-1 panics stay closed; the Kth opens the
// breaker and admit returns the crash-dump evidence.
func TestQuarantineTripsAfterK(t *testing.T) {
	q, _ := newTestQuarantine(3, time.Minute)
	const fp = "cfg-poison"

	for i := 0; i < 2; i++ {
		q.reportPanic(fp, "dump-early.json")
		if blocked, _, _ := q.admit(fp); blocked {
			t.Fatalf("blocked after %d panics, want open only at 3", i+1)
		}
	}
	q.reportPanic(fp, "dump-final.json")
	blocked, dump, retry := q.admit(fp)
	if !blocked {
		t.Fatal("not blocked after K panics")
	}
	if dump != "dump-final.json" {
		t.Errorf("dump = %q, want the last crash dump", dump)
	}
	if retry <= 0 || retry > time.Minute {
		t.Errorf("retryAfter = %v, want within the cooldown", retry)
	}
	if !q.quarantined(fp) {
		t.Error("quarantined() disagrees with admit()")
	}
}

// TestQuarantineHalfOpenSingleProbe: after the cooldown, exactly one
// request is admitted as the probe; concurrent requests stay blocked; a
// successful probe closes the breaker.
func TestQuarantineHalfOpenSingleProbe(t *testing.T) {
	q, clk := newTestQuarantine(1, time.Minute)
	const fp = "cfg"
	q.reportPanic(fp, "d.json")
	if blocked, _, _ := q.admit(fp); !blocked {
		t.Fatal("breaker did not trip at K=1")
	}

	clk.advance(61 * time.Second)
	if blocked, _, _ := q.admit(fp); blocked {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	// The probe is in flight: everyone else is still blocked.
	if blocked, _, _ := q.admit(fp); !blocked {
		t.Fatal("second caller admitted while the probe is in flight")
	}

	q.reportSuccess(fp)
	if blocked, _, _ := q.admit(fp); blocked {
		t.Fatal("breaker still open after a successful probe")
	}
	if q.quarantined(fp) {
		t.Error("quarantined() true after close")
	}
}

// TestQuarantineProbePanicReopens: a panicking probe re-trips the
// breaker with a fresh cooldown.
func TestQuarantineProbePanicReopens(t *testing.T) {
	q, clk := newTestQuarantine(1, time.Minute)
	const fp = "cfg"
	q.reportPanic(fp, "d1.json")
	clk.advance(61 * time.Second)
	if blocked, _, _ := q.admit(fp); blocked {
		t.Fatal("probe not admitted")
	}
	q.reportPanic(fp, "d2.json")

	blocked, dump, _ := q.admit(fp)
	if !blocked {
		t.Fatal("breaker did not reopen after the probe panicked")
	}
	if dump != "d2.json" {
		t.Errorf("dump = %q, want the probe's dump", dump)
	}
	// The cooldown restarted: 30s later it is still blocked, 61s later a
	// new probe goes through.
	clk.advance(30 * time.Second)
	if blocked, _, _ := q.admit(fp); !blocked {
		t.Fatal("reopened breaker let a request through mid-cooldown")
	}
	clk.advance(31 * time.Second)
	if blocked, _, _ := q.admit(fp); blocked {
		t.Fatal("second probe not admitted after the fresh cooldown")
	}
}

// TestQuarantineProbeAbort: a probe with no verdict (cancelled client)
// returns the breaker to OPEN; the next request probes again.
func TestQuarantineProbeAbort(t *testing.T) {
	q, clk := newTestQuarantine(1, time.Minute)
	const fp = "cfg"
	q.reportPanic(fp, "d.json")
	clk.advance(61 * time.Second)
	if blocked, _, _ := q.admit(fp); blocked {
		t.Fatal("probe not admitted")
	}
	q.reportAbort(fp)
	// Still past the cooldown, so the next caller becomes the new probe.
	if blocked, _, _ := q.admit(fp); blocked {
		t.Fatal("aborted probe blocked the next probe")
	}
}

// TestQuarantineSuccessForgives: failures below K are forgotten on the
// first success, so flaky-but-recovering configs never accumulate into
// a trip.
func TestQuarantineSuccessForgives(t *testing.T) {
	q, _ := newTestQuarantine(3, time.Minute)
	const fp = "cfg"
	q.reportPanic(fp, "")
	q.reportPanic(fp, "")
	q.reportSuccess(fp)
	q.reportPanic(fp, "")
	q.reportPanic(fp, "")
	if blocked, _, _ := q.admit(fp); blocked {
		t.Fatal("breaker counted failures across an intervening success")
	}
}

// TestQuarantineIsolatesKeys: one poisoned config never blocks another.
func TestQuarantineIsolatesKeys(t *testing.T) {
	q, _ := newTestQuarantine(1, time.Minute)
	q.reportPanic("bad", "d.json")
	if blocked, _, _ := q.admit("good"); blocked {
		t.Fatal("healthy config blocked by an unrelated breaker")
	}
	if blocked, _, _ := q.admit("bad"); !blocked {
		t.Fatal("poisoned config not blocked")
	}
}
