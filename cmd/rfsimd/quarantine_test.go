package main

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's timer deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestQuarantine(k int, cooldown time.Duration) (*quarantine, *fakeClock) {
	q := newQuarantine(k, cooldown)
	clk := &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	q.now = clk.now
	return q, clk
}

// TestQuarantineTripsAfterK: K-1 panics stay closed; the Kth opens the
// breaker and admit returns the crash-dump evidence.
func TestQuarantineTripsAfterK(t *testing.T) {
	q, _ := newTestQuarantine(3, time.Minute)
	const fp = "cfg-poison"

	for i := 0; i < 2; i++ {
		q.reportPanic(fp, "dump-early.json", false)
		if blocked, _, _, _ := q.admit(fp); blocked {
			t.Fatalf("blocked after %d panics, want open only at 3", i+1)
		}
	}
	q.reportPanic(fp, "dump-final.json", false)
	blocked, probe, dump, retry := q.admit(fp)
	if !blocked {
		t.Fatal("not blocked after K panics")
	}
	if probe {
		t.Error("a blocked request must never hold the probe claim")
	}
	if dump != "dump-final.json" {
		t.Errorf("dump = %q, want the last crash dump", dump)
	}
	if retry <= 0 || retry > time.Minute {
		t.Errorf("retryAfter = %v, want within the cooldown", retry)
	}
	if !q.quarantined(fp) {
		t.Error("quarantined() disagrees with admit()")
	}
}

// TestQuarantineHalfOpenSingleProbe: after the cooldown, exactly one
// request is admitted as the probe (and told so via the probe flag);
// concurrent requests stay blocked; a successful probe closes the
// breaker.
func TestQuarantineHalfOpenSingleProbe(t *testing.T) {
	q, clk := newTestQuarantine(1, time.Minute)
	const fp = "cfg"
	q.reportPanic(fp, "d.json", false)
	if blocked, _, _, _ := q.admit(fp); !blocked {
		t.Fatal("breaker did not trip at K=1")
	}

	clk.advance(61 * time.Second)
	blocked, probe, _, _ := q.admit(fp)
	if blocked {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if !probe {
		t.Fatal("the admitted probe was not told it holds the claim")
	}
	// The probe is in flight: everyone else is still blocked, claimless.
	blocked, probe, _, _ = q.admit(fp)
	if !blocked {
		t.Fatal("second caller admitted while the probe is in flight")
	}
	if probe {
		t.Fatal("blocked caller handed the probe claim")
	}

	q.reportSuccess(fp)
	if blocked, _, _, _ := q.admit(fp); blocked {
		t.Fatal("breaker still open after a successful probe")
	}
	if q.quarantined(fp) {
		t.Error("quarantined() true after close")
	}
}

// TestQuarantineProbePanicReopens: a panicking probe re-trips the
// breaker with a fresh cooldown.
func TestQuarantineProbePanicReopens(t *testing.T) {
	q, clk := newTestQuarantine(1, time.Minute)
	const fp = "cfg"
	q.reportPanic(fp, "d1.json", false)
	clk.advance(61 * time.Second)
	if blocked, probe, _, _ := q.admit(fp); blocked || !probe {
		t.Fatal("probe not admitted")
	}
	q.reportPanic(fp, "d2.json", true)

	blocked, _, dump, _ := q.admit(fp)
	if !blocked {
		t.Fatal("breaker did not reopen after the probe panicked")
	}
	if dump != "d2.json" {
		t.Errorf("dump = %q, want the probe's dump", dump)
	}
	// The cooldown restarted: 30s later it is still blocked, 61s later a
	// new probe goes through.
	clk.advance(30 * time.Second)
	if blocked, _, _, _ := q.admit(fp); !blocked {
		t.Fatal("reopened breaker let a request through mid-cooldown")
	}
	clk.advance(31 * time.Second)
	if blocked, _, _, _ := q.admit(fp); blocked {
		t.Fatal("second probe not admitted after the fresh cooldown")
	}
}

// TestQuarantineProbeAbort: a probe with no verdict (cancelled client)
// returns the breaker to OPEN; the next request probes again.
func TestQuarantineProbeAbort(t *testing.T) {
	q, clk := newTestQuarantine(1, time.Minute)
	const fp = "cfg"
	q.reportPanic(fp, "d.json", false)
	clk.advance(61 * time.Second)
	if blocked, probe, _, _ := q.admit(fp); blocked || !probe {
		t.Fatal("probe not admitted")
	}
	q.reportAbort(fp)
	// Still past the cooldown, so the next caller becomes the new probe.
	if blocked, _, _, _ := q.admit(fp); blocked {
		t.Fatal("aborted probe blocked the next probe")
	}
}

// TestQuarantineNonProbePanicKeepsProbe: a panic reported by a request
// that does NOT hold the probe claim (it was admitted before the trip)
// restarts the cooldown but must not release the in-flight probe —
// otherwise a second concurrent probe slips through.
func TestQuarantineNonProbePanicKeepsProbe(t *testing.T) {
	q, clk := newTestQuarantine(1, time.Minute)
	const fp = "cfg"
	q.reportPanic(fp, "d1.json", false)
	clk.advance(61 * time.Second)
	if blocked, probe, _, _ := q.admit(fp); blocked || !probe {
		t.Fatal("probe not admitted")
	}
	// A point admitted before the trip panics: not the claim holder.
	q.reportPanic(fp, "d2.json", false)
	if blocked, probe, _, _ := q.admit(fp); !blocked || probe {
		t.Fatal("non-probe panic released the probe claim: second concurrent probe admitted")
	}
	// The probe's own panic does release the claim, with a fresh cooldown.
	q.reportPanic(fp, "d3.json", true)
	clk.advance(61 * time.Second)
	if blocked, probe, _, _ := q.admit(fp); blocked || !probe {
		t.Fatal("no probe admitted after the probe's own panic and a fresh cooldown")
	}
}

// TestProbeClaimsOwnership: the server-side claim tracker releases only
// claims its request owns. A blocked bystander's cleanup is a no-op,
// and a settled claim is consumed exactly once so the end-of-request
// sweep cannot double-release.
func TestProbeClaimsOwnership(t *testing.T) {
	q, clk := newTestQuarantine(1, time.Minute)
	const fp = "cfg"
	q.reportPanic(fp, "d.json", false)
	clk.advance(61 * time.Second)

	holder, bystander := newProbeClaims(q), newProbeClaims(q)
	if blocked, probe, _, _ := q.admit(fp); blocked || !probe {
		t.Fatal("probe not admitted")
	}
	holder.add(fp)

	// The bystander was blocked (no claim); its exit cleanup must not
	// release the holder's probe.
	bystander.abortRemaining()
	if blocked, probe, _, _ := q.admit(fp); !blocked || probe {
		t.Fatal("a non-claimant's abortRemaining released the probe")
	}

	// Settle consumes the claim exactly once...
	if !holder.settle(fp) {
		t.Fatal("claim holder settle = false")
	}
	if holder.settle(fp) {
		t.Fatal("claim settled twice")
	}
	// ...so the holder's own end-of-request sweep no longer aborts it.
	holder.abortRemaining()
	if blocked, _, _, _ := q.admit(fp); !blocked {
		t.Fatal("abortRemaining after settle still released the probe")
	}
}

// TestQuarantineSuccessForgives: failures below K are forgotten on the
// first success, so flaky-but-recovering configs never accumulate into
// a trip.
func TestQuarantineSuccessForgives(t *testing.T) {
	q, _ := newTestQuarantine(3, time.Minute)
	const fp = "cfg"
	q.reportPanic(fp, "", false)
	q.reportPanic(fp, "", false)
	q.reportSuccess(fp)
	q.reportPanic(fp, "", false)
	q.reportPanic(fp, "", false)
	if blocked, _, _, _ := q.admit(fp); blocked {
		t.Fatal("breaker counted failures across an intervening success")
	}
}

// TestQuarantineIsolatesKeys: one poisoned config never blocks another.
func TestQuarantineIsolatesKeys(t *testing.T) {
	q, _ := newTestQuarantine(1, time.Minute)
	q.reportPanic("bad", "d.json", false)
	if blocked, _, _, _ := q.admit("good"); blocked {
		t.Fatal("healthy config blocked by an unrelated breaker")
	}
	if blocked, _, _, _ := q.admit("bad"); !blocked {
		t.Fatal("poisoned config not blocked")
	}
}
