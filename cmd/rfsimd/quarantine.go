package main

// The poison-config quarantine: a per-design circuit breaker that stops
// the service from burning its retry budget (and a worker goroutine,
// and a crash dump write) on every resubmission of a config that
// reliably panics the simulator.
//
// Keyed on noc.Config.Fingerprint() — the design's content address, NOT
// the point fingerprint — so a poison design is quarantined across
// seeds, cycle counts and workloads: a panic is (in every mode we have
// seen) a property of the configuration, not of the RNG stream.
//
// State machine, one entry per config fingerprint:
//
//	CLOSED --(K panicking point failures)--> OPEN --(cooldown elapses,
//	    ^                                      |      next request)
//	    |                                      v
//	    +--(probe succeeds)---------------- HALF-OPEN
//	                                           |
//	             (probe panics: re-OPEN, fresh cooldown)
//
// While OPEN, requests naming the config are answered 422 with the last
// crash dump's path — the evidence, not a re-run. HALF-OPEN admits
// exactly one probe job; concurrent requests for the same config stay
// blocked until the probe settles. A probe that fails for reasons other
// than a panic (client disconnect, deadline, cache hit) is a
// no-verdict: the breaker returns to OPEN with its original timer so
// the next request probes again.
//
// Probe claims are ownership-tracked: admit reports (probe=true) to
// exactly the caller it let through, and only that caller may release
// the claim — via reportAbort, or reportPanic with probe=true. Requests
// that were merely blocked, shed or cancelled hold no claim and must
// not report aborts, or they would free a probe slot another request is
// using and let a second concurrent probe through. The server tracks
// its claims per request with probeClaims.

import (
	"sync"
	"time"
)

// quarantine is the breaker set. Safe for concurrent use.
type quarantine struct {
	mu       sync.Mutex
	k        int           // panicking failures before the breaker opens
	cooldown time.Duration // open -> half-open delay
	now      func() time.Time

	entries map[string]*breakerEntry
}

type breakerEntry struct {
	fails    int       // consecutive panicking failures
	open     bool      // tripped
	probing  bool      // a half-open probe is in flight
	openedAt time.Time // when the breaker last tripped
	dump     string    // last crash dump path ("" when dumps are disabled)
}

func newQuarantine(k int, cooldown time.Duration) *quarantine {
	if k <= 0 {
		k = 3
	}
	if cooldown <= 0 {
		cooldown = time.Minute
	}
	return &quarantine{k: k, cooldown: cooldown, now: time.Now, entries: map[string]*breakerEntry{}}
}

// admit decides whether a config may run. blocked=true means the
// breaker is open (dump references the evidence; retryAfter is the
// remaining cooldown). When the cooldown has elapsed, admit lets
// exactly one caller through as the half-open probe and tells it so
// with probe=true: that caller — and only that caller — owns the claim
// and must settle it with reportSuccess, reportPanic(probe=true) or
// reportAbort.
func (q *quarantine) admit(fp string) (blocked, probe bool, dump string, retryAfter time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.entries[fp]
	if !ok || !e.open {
		return false, false, "", 0
	}
	if e.probing {
		return true, false, e.dump, q.cooldown
	}
	if remaining := q.cooldown - q.now().Sub(e.openedAt); remaining > 0 {
		return true, false, e.dump, remaining
	}
	e.probing = true // half-open: this caller claimed the probe
	return false, true, "", 0
}

// reportSuccess closes the breaker: the config produced a clean result,
// so its failure history is forgiven.
func (q *quarantine) reportSuccess(fp string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.entries, fp)
}

// reportPanic records one crash-dump-producing failure. K of them trip
// the breaker; a panicking half-open probe (probe=true: the caller
// holds the claim from admit) re-trips it with a fresh cooldown.
func (q *quarantine) reportPanic(fp, dump string, probe bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.entries[fp]
	if !ok {
		e = &breakerEntry{}
		q.entries[fp] = e
	}
	e.fails++
	if dump != "" {
		e.dump = dump
	}
	if e.open {
		// Another panic while open: stay open, restart the cooldown.
		// Only the probe's own verdict releases the probe claim — a
		// panic from a point admitted before the trip must not free a
		// probe slot a different request holds.
		if probe {
			e.probing = false
		}
		e.openedAt = q.now()
		return
	}
	if e.fails >= q.k {
		e.open = true
		e.openedAt = q.now()
	}
}

// reportAbort clears an unsettled probe (cancelled client, deadline,
// non-panic failure, cache hit): no verdict either way, so the breaker
// returns to plain OPEN and the next request may probe again. Only the
// claim holder (admit returned probe=true) may call it — anyone else
// would release a probe slot they never owned.
func (q *quarantine) reportAbort(fp string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if e, ok := q.entries[fp]; ok {
		e.probing = false
	}
}

// probeClaims tracks which half-open probes one request claimed via
// admit, so verdict handlers and cleanup paths release exactly the
// claims this request owns and never a claim held by a concurrent
// request for the same config. Safe for concurrent use (verdicts
// arrive from supervisor workers).
type probeClaims struct {
	q    *quarantine
	mu   sync.Mutex
	held map[string]bool
}

func newProbeClaims(q *quarantine) *probeClaims {
	return &probeClaims{q: q, held: map[string]bool{}}
}

// add records a claim admit granted this request.
func (c *probeClaims) add(fp string) {
	c.mu.Lock()
	c.held[fp] = true
	c.mu.Unlock()
}

// settle consumes the claim for fp, reporting whether this request held
// it. Each claim settles exactly once: the first verdict wins and the
// end-of-request sweep skips it.
func (c *probeClaims) settle(fp string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.held[fp] {
		return false
	}
	delete(c.held, fp)
	return true
}

// abortRemaining releases every claim no verdict settled — the job was
// shed, cancelled while queued, or its points never ran.
func (c *probeClaims) abortRemaining() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for fp := range c.held {
		c.q.reportAbort(fp)
	}
	clear(c.held)
}

// quarantined reports whether a config is currently blocked (for
// metrics/tests; admit is the authoritative gate).
func (q *quarantine) quarantined(fp string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.entries[fp]
	return ok && e.open
}
