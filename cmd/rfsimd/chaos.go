package main

// The service-chaos harness behind `rfsimd -loadtest -chaos`: the load
// soak re-run with deliberate service-level faults, checking not that
// everything succeeds but that the service *degrades* instead of
// wedging. Five fault kinds are injected:
//
//   - slow-loris clients: raw connections that dribble header bytes and
//     never finish; the http.Server read-header timeout must hang up.
//   - mid-body / mid-stream disconnects: clients that cut the
//     connection halfway through the request body, or walk away while
//     the NDJSON response is still streaming.
//   - simulated disk full: a fraction of points have their checkpoint
//     path redirected under a regular file (enospc.wall), so every
//     save fails the way ENOSPC would.
//   - worker panics: designated poison configs panic the simulator on
//     every attempt, driving crash dumps and the quarantine breaker.
//     Under -isolate the poison directives cross the process boundary
//     instead — one config panics its worker process, one allocates
//     past the worker memory limit, one stops heartbeating — and a
//     post-storm murder SIGKILLs a busy worker mid-point, proving the
//     daemon absorbs worker death without dying itself.
//   - cache corruption: cached result blobs are bit-flipped and the
//     spec re-requested; the supervisor must recover by recomputing.
//
// Invariants asserted at the end (exit 1 on any violation):
//
//   - every accepted (HTTP 200) request whose stream we read got a
//     terminal NDJSON summary line, faults notwithstanding;
//   - poison configs are answered 422 with the crash-dump reference
//     once the breaker trips, and are NOT re-simulated while open;
//   - corrupt cache entries degrade to a recompute, not an error;
//   - queue depth never overshot the admission bound, and at the end
//     no job, pin, admission slot or run slot is stranded;
//   - the checkpoint+crash-dump directory ends under the byte quota;
//   - no goroutine leaks: the count returns to its pre-storm baseline.
//
// Artifacts (failing responses + report.json) land under -lt-out for
// CI upload, like the plain loadtest.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/janitor"
)

// chaosKind labels the fault (or lack of one) assigned to a request.
type chaosKind int

const (
	kindNormal    chaosKind = iota
	kindBatch               // batch priority: may be shed by the interactive reserve
	kindDeadline            // carries a deadline_ms it will likely miss
	kindPoison              // names a config that always panics
	kindSlowLoris           // never finishes its headers
	kindMidBody             // cuts the connection mid-request or mid-stream
	kindCount
)

func (k chaosKind) String() string {
	return [...]string{"normal", "batch", "deadline", "poison", "slow-loris", "disconnect"}[k]
}

// chaosPool is the compiled spec pool: request bodies plus the
// fingerprints the fault seams and invariants key on.
type chaosPool struct {
	bodies   [][]byte
	pointFPs []string
	enospc   map[string]bool // point fingerprints whose saves fail

	poisonBodies [][]byte
	poisonCfgFPs []string // config fingerprints the panic seam targets
	poisonPtFPs  []string
}

func runChaos(f *daemonFlags, stdout, stderr io.Writer) error {
	// Direct construction (tests) may leave the HTTP timeouts zero;
	// the slow-loris fault is meaningless without a header timeout.
	if f.readHeaderTimeout <= 0 {
		f.readHeaderTimeout = 2 * time.Second
	}
	baseline := runtime.NumGoroutine()

	// State directory: checkpoints, crash dumps and the enospc wall.
	dir := f.dir
	if dir == "" {
		if f.ltOut != "" {
			dir = filepath.Join(f.ltOut, "state")
		} else {
			var err error
			if dir, err = os.MkdirTemp("", "rfsimd-chaos-"); err != nil {
				return fmt.Errorf("state dir: %w", err)
			}
			defer os.RemoveAll(dir)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("state dir: %w", err)
	}
	wall := filepath.Join(dir, enospcWall)
	if err := os.WriteFile(wall, []byte("chaos: simulated full disk\n"), 0o644); err != nil {
		return fmt.Errorf("enospc wall: %w", err)
	}
	defer os.Remove(wall)

	cfg := f.serverConfig()
	cfg.check = true
	cfg.dir = dir
	// The breaker must stay open for the rest of the run so "not
	// re-simulated while quarantined" is deterministic; half-open
	// probing is covered by the quarantine unit tests.
	cfg.quarCooldown = time.Hour

	// Isolate-mode chaos must bound the alloc fault: without a memory
	// limit the poisoned child would hoard until the host itself OOMs.
	if cfg.isolate && cfg.workerMem <= 0 {
		cfg.workerMem = 64 << 20
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := newServer(ctx, cfg)
	if err != nil {
		return err
	}
	defer srv.close()

	// Disk quota: tight enough that the storm's checkpoints overflow it
	// and the janitor visibly reclaims, sweeping fast enough to matter
	// in a short run.
	quota := f.gcMaxBytes
	if quota <= 0 {
		quota = 1 << 20
	}
	jan, err := janitor.New(janitor.Config{
		Dir:      dir,
		MaxBytes: quota,
		MaxAge:   f.gcMaxAge,
		Interval: 100 * time.Millisecond,
		Pinned:   srv.artifactPinned,
	})
	if err != nil {
		return fmt.Errorf("janitor: %w", err)
	}
	srv.jan = jan
	go jan.Run(ctx)

	// Compile the spec pool and pick the fault targets.
	rng := rand.New(rand.NewSource(f.chaosSeed))
	pool, err := buildChaosPool(f, srv, cfg, rng)
	if err != nil {
		return err
	}
	srv.chaosCheckpointFail = func(fp string) bool { return pool.enospc[fp] }
	if cfg.isolate {
		// Worker-hostile poison: each poison config gets a distinct way
		// to kill its worker *process* — a Go panic, an allocation storm
		// into the memory limit, a heartbeat-stopping hang — so the
		// crash-dump, OOM and kill paths are all exercised across the
		// process boundary, and all of them must still land in the same
		// quarantine breaker an in-process panic does.
		hostile := [...]string{"panic", "alloc", "hang"}
		fault := map[string]string{}
		for i, fp := range pool.poisonPtFPs {
			fault[fp] = hostile[i%len(hostile)]
		}
		srv.chaosWorkerJob = func(fp string) string { return fault[fp] }
	} else {
		poisonCfg := map[string]bool{}
		for _, fp := range pool.poisonCfgFPs {
			poisonCfg[fp] = true
		}
		srv.chaosPanic = func(cfgFP string) bool { return poisonCfg[cfgFP] }
	}

	// The exactly-once probe from the loadtest doubles as the
	// "quarantined configs are not re-simulated" probe here.
	var computeMu sync.Mutex
	computes := map[string]int{}
	srv.onCompute = func(fp string) {
		computeMu.Lock()
		computes[fp]++
		computeMu.Unlock()
	}
	computesOf := func(fp string) int {
		computeMu.Lock()
		defer computeMu.Unlock()
		return computes[fp]
	}

	ts := startInProc(f, srv)
	defer ts.Close()
	client := ts.Client()
	addr := strings.TrimPrefix(ts.URL, "http://")

	// Assign a fault kind to every request up front (deterministic in
	// -chaos-seed).
	kinds := make([]chaosKind, f.requests)
	counts := make([]int, kindCount)
	for i := range kinds {
		p := rng.Float64()
		switch {
		case p < 0.05:
			kinds[i] = kindSlowLoris
		case p < 0.10:
			kinds[i] = kindMidBody
		case p < 0.20:
			kinds[i] = kindPoison
		case p < 0.28:
			kinds[i] = kindDeadline
		case p < 0.50:
			kinds[i] = kindBatch
		default:
			kinds[i] = kindNormal
		}
		counts[kinds[i]]++
	}
	fmt.Fprintf(stdout, "chaos: %d requests, %d clients, %d unique specs, %d enospc points, %d poison configs, quota %d bytes\n",
		f.requests, f.clients, f.unique, len(pool.enospc), len(pool.poisonCfgFPs), quota)
	for k := chaosKind(0); k < kindCount; k++ {
		fmt.Fprintf(stdout, "chaos:   %-10s %d\n", k, counts[k])
	}

	// The storm.
	var vioMu sync.Mutex
	var violations []error
	violate := func(format string, args ...interface{}) {
		vioMu.Lock()
		violations = append(violations, fmt.Errorf(format, args...))
		vioMu.Unlock()
	}
	responses := make([]ltResponse, f.requests)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < f.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				responses[i] = fireChaosRequest(client, ts.URL, addr, f, pool, i, kinds[i], violate)
			}
		}()
	}
	for i := 0; i < f.requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	stormElapsed := time.Since(start)

	// Validate the settled streams: every accepted request we stayed
	// connected for must have exactly one terminal summary line, with
	// honest fault-induced failures allowed.
	for i := range responses {
		r := &responses[i]
		switch kinds[i] {
		case kindSlowLoris, kindMidBody:
			continue // connection-level faults: nothing accepted to validate
		}
		switch r.status {
		case http.StatusOK:
			if _, err := checkNDJSON(r.body, 1, true); err != nil {
				r.parseErr = err
				violate("request %d (%s): %v", i, kinds[i], err)
			}
		case http.StatusUnprocessableEntity:
			if kinds[i] != kindPoison {
				violate("request %d (%s): unexpected 422", i, kinds[i])
			}
		case http.StatusServiceUnavailable:
			if kinds[i] != kindDeadline {
				violate("request %d (%s): unexpected 503: %s", i, kinds[i], r.body)
			}
		default:
			violate("request %d (%s): final status %d (%v): %s", i, kinds[i], r.status, r.parseErr, r.body)
		}
	}

	// Poison verification: trip each breaker if the storm has not
	// already, then prove 422 + crash-dump evidence + no re-simulation.
	k := cfg.quarK
	if k <= 0 {
		k = 3 // the quarantine default
	}
	for pi, body := range pool.poisonBodies {
		var resp ltResponse
		tripped := false
		for attempt := 0; attempt < k+2; attempt++ {
			resp = chaosFire(client, ts.URL, body, nil)
			if resp.status == http.StatusUnprocessableEntity {
				tripped = true
				break
			}
			if resp.status != http.StatusOK {
				violate("poison config %d: status %d before trip: %s", pi, resp.status, resp.body)
			}
		}
		if !tripped {
			violate("poison config %d: breaker never tripped after %d panicking jobs", pi, k+2)
			continue
		}
		var envelope struct {
			Error     string `json:"error"`
			Config    string `json:"config"`
			CrashDump string `json:"crash_dump"`
		}
		if err := json.Unmarshal(resp.body, &envelope); err != nil {
			violate("poison config %d: 422 body not JSON: %v", pi, err)
		} else if envelope.CrashDump == "" {
			violate("poison config %d: 422 without a crash-dump reference", pi)
		}
		if !srv.quar.quarantined(pool.poisonCfgFPs[pi]) {
			violate("poison config %d: 422 served but breaker not open", pi)
		}
		before := computesOf(pool.poisonPtFPs[pi])
		again := chaosFire(client, ts.URL, body, nil)
		if again.status != http.StatusUnprocessableEntity {
			violate("poison config %d: quarantined config answered %d, want 422", pi, again.status)
		}
		if after := computesOf(pool.poisonPtFPs[pi]); after != before {
			violate("poison config %d: re-simulated while quarantined (%d -> %d computes)", pi, before, after)
		}
	}

	// Worker murder (isolate mode): SIGKILL a busy worker under a
	// dedicated long sweep. Run after the storm, against a config no
	// other request uses, so the collateral panic cannot help trip a
	// shared config's breaker. The pool must record the crash and the
	// daemon must still answer the request with a terminal summary.
	if cfg.isolate {
		spec := PointSpec{Design: "static", WidthBytes: 8, Workload: "uniform", Cycles: 100_000, Seed: 31_337}
		body, _ := json.Marshal(SweepRequest{Points: []PointSpec{spec}})
		done := make(chan ltResponse, 1)
		go func() { done <- chaosFire(client, ts.URL, body, nil) }()
		killed := false
		for i := 0; i < 500 && !killed; i++ {
			time.Sleep(5 * time.Millisecond)
			killed = srv.pool.KillOneBusy()
		}
		r := <-done
		if !killed {
			violate("worker murder: no busy worker appeared within the window")
		} else {
			if r.status != http.StatusOK {
				violate("worker murder: request answered %d, want 200: %s", r.status, r.body)
			} else if _, err := checkNDJSON(r.body, 1, true); err != nil {
				violate("worker murder: stream invalid after SIGKILL: %v", err)
			}
		}
		st := srv.pool.Stats()
		if st.Crashed == 0 {
			violate("worker murder: pool recorded no worker crashes")
		}
		if st.OOM == 0 {
			violate("isolate chaos: the alloc poison never tripped the worker memory limit")
		}
		if st.KilledHeartbeat == 0 {
			violate("isolate chaos: the hang poison was never killed for heartbeat loss")
		}
	}

	// Cost-ceiling verification piggybacks on chaos when a ceiling is
	// configured: an oversized sweep must bounce with 413.
	if cfg.maxJobCycles > 0 {
		huge := SweepRequest{Points: make([]PointSpec, 4)}
		for i := range huge.Points {
			huge.Points[i] = PointSpec{Workload: "uniform", Cycles: cfg.maxJobCycles, Seed: int64(7_000_000 + i)}
		}
		body, _ := json.Marshal(huge)
		if r := chaosFire(client, ts.URL, body, nil); r.status != http.StatusRequestEntityTooLarge {
			violate("oversized sweep answered %d, want 413", r.status)
		}
	}

	// Cache-corruption fault: flip cached blobs, re-request, demand a
	// clean recomputed answer (marked recovered in the stream).
	corrupted, recovered := 0, 0
	for i := range pool.bodies {
		if i%7 != 0 || pool.enospc[pool.pointFPs[i]] {
			continue
		}
		if !srv.cache.Corrupt(pool.pointFPs[i]) {
			continue // never landed in the cache (e.g. every request of it got 429+gave up)
		}
		corrupted++
		r := chaosFire(client, ts.URL, pool.bodies[i], nil)
		if r.status != http.StatusOK {
			violate("corrupt-cache request for spec %d: status %d", i, r.status)
			continue
		}
		if _, err := validateNDJSON(r.body, 1); err != nil {
			violate("corrupt-cache request for spec %d did not recover: %v", i, err)
			continue
		}
		if bytes.Contains(r.body, []byte(`"recovered":true`)) {
			recovered++
		}
	}
	if corrupted > 0 && recovered == 0 {
		violate("%d cache entries corrupted but no response was marked recovered", corrupted)
	}

	// Teardown, then the leak and stranded-state invariants. The pool
	// must be closed before the leak check: its per-worker reader
	// goroutines are real goroutines that only exit with their children.
	client.CloseIdleConnections()
	ts.Close()
	cancel()
	srv.close()

	leakDeadline := time.Now().Add(15 * time.Second)
	for runtime.NumGoroutine() > baseline+8 {
		if time.Now().After(leakDeadline) {
			var buf bytes.Buffer
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			violate("goroutine leak: %d at start, %d after teardown\n%s",
				baseline, runtime.NumGoroutine(), buf.String())
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	snap := srv.metrics.Snapshot()
	if snap.QueueDepth != 0 || snap.ActiveJobs != 0 {
		violate("stranded jobs: queue depth %d, active %d after drain", snap.QueueDepth, snap.ActiveJobs)
	}
	if d := srv.adm.depthNow(); d != 0 {
		violate("stranded admission slots: depth %d after drain", d)
	}
	if p := srv.pinCount(); p != 0 {
		violate("stranded janitor pins: %d after drain", p)
	}
	if snap.QueuePeak > int64(cfg.withDefaults().maxQueue) {
		violate("queue peak %d overshot the admission bound %d", snap.QueuePeak, cfg.withDefaults().maxQueue)
	}
	if snap.JobsAdmitted != snap.JobsCompleted+snap.JobsFailed {
		violate("job ledger does not balance: %d admitted != %d completed + %d failed",
			snap.JobsAdmitted, snap.JobsCompleted, snap.JobsFailed)
	}
	if snap.JobsQuarantined == 0 && len(pool.poisonCfgFPs) > 0 {
		violate("no request was ever answered from quarantine")
	}

	// Final sweep with zero pins: the artifact directory must fit the
	// quota.
	rep := jan.Sweep()
	if rep.LiveBytes > quota {
		violate("disk quota violated after final sweep: %d live bytes > %d quota", rep.LiveBytes, quota)
	}

	cstats := srv.cache.Stats()
	fmt.Fprintf(stdout, "chaos: storm done in %v; janitor freed %d bytes across %d deletions, %d live bytes remain\n",
		stormElapsed.Round(time.Millisecond), jan.Stats().FreedBytes, jan.Stats().Deleted, rep.LiveBytes)
	fmt.Fprintf(stdout, "chaos: %d cache corruptions injected, %d recoveries observed\n", corrupted, recovered)
	fmt.Fprintf(stdout, "cache: %d hits, %d misses, %d joins — hit rate %.1f%%\n",
		cstats.Hits, cstats.Misses, cstats.Joins, 100*cstats.HitRate())
	if srv.pool != nil {
		wst := srv.pool.Stats()
		fmt.Fprintf(stdout, "workers: %d spawned, %d crashed (%d oom, %d heartbeat, %d deadline), %d jobs dispatched\n",
			wst.Spawned, wst.Crashed, wst.OOM, wst.KilledHeartbeat, wst.KilledDeadline, wst.JobsDispatched)
	}
	fmt.Fprintln(stdout, snap.Render())

	if f.ltOut != "" {
		if err := writeArtifacts(f.ltOut, responses, violations, snap, cstats); err != nil {
			fmt.Fprintf(stderr, "chaos: writing artifacts: %v\n", err)
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d invariant violations:\n%w", len(violations), errors.Join(violations...))
	}
	fmt.Fprintln(stdout, "chaos: all invariants held")
	return nil
}

// buildChaosPool compiles the shared spec pool exactly the way the
// server will, so the harness's fingerprints match the service's, and
// designates the ENOSPC points and the poison configs.
func buildChaosPool(f *daemonFlags, srv *server, cfg serverConfig, rng *rand.Rand) (*chaosPool, error) {
	lim := specLimits{maxPoints: cfg.withDefaults().maxPoints, maxCycles: cfg.maxCycles}
	pool := &chaosPool{enospc: map[string]bool{}}
	for _, s := range buildLoadtestSpecs(f.unique, f.ltCycles) {
		var req SweepRequest
		if err := json.Unmarshal(s.body, &req); err != nil {
			return nil, fmt.Errorf("chaos pool: %w", err)
		}
		pts, err := compileRequest(req, srv.mesh, lim, cfg.check)
		if err != nil {
			return nil, fmt.Errorf("chaos pool: %w", err)
		}
		pool.bodies = append(pool.bodies, s.body)
		pool.pointFPs = append(pool.pointFPs, pts[0].Fingerprint)
		if rng.Float64() < 0.2 {
			pool.enospc[pts[0].Fingerprint] = true
		}
	}

	// Poison configs use the adaptive design, which the normal pool
	// never does — the panic seam keys on the config fingerprint, so
	// the designs must not collide.
	for i, spec := range []PointSpec{
		{Design: "adaptive", Workload: "uniform", Seed: 999_001, Cycles: f.ltCycles},
		{Design: "adaptive", RFRouters: 25, Workload: "bidf", Seed: 999_002, Cycles: f.ltCycles},
		{Design: "adaptive", RFRouters: 100, Workload: "2hotspot", Seed: 999_003, Cycles: f.ltCycles},
	} {
		req := SweepRequest{Points: []PointSpec{spec}}
		pts, err := compileRequest(req, srv.mesh, lim, cfg.check)
		if err != nil {
			return nil, fmt.Errorf("poison spec %d: %w", i, err)
		}
		body, _ := json.Marshal(req)
		pool.poisonBodies = append(pool.poisonBodies, body)
		pool.poisonCfgFPs = append(pool.poisonCfgFPs, pts[0].Meta["config"])
		pool.poisonPtFPs = append(pool.poisonPtFPs, pts[0].Fingerprint)
	}
	return pool, nil
}

// fireChaosRequest performs one storm request according to its fault
// kind, returning the settled response for stream validation (zero
// ltResponse for connection-level faults that never yield one).
func fireChaosRequest(client *http.Client, baseURL, addr string, f *daemonFlags,
	pool *chaosPool, i int, kind chaosKind, violate func(string, ...interface{})) ltResponse {

	switch kind {
	case kindSlowLoris:
		if err := slowLoris(addr, f.readHeaderTimeout); err != nil {
			violate("slow-loris %d: %v", i, err)
		}
		return ltResponse{request: i, status: -1}
	case kindMidBody:
		if i%2 == 0 {
			midBodyCut(addr)
		} else {
			midStreamCut(client, baseURL, i)
		}
		return ltResponse{request: i, status: -1}
	case kindPoison:
		r := chaosFire(client, baseURL, pool.poisonBodies[i%len(pool.poisonBodies)], nil)
		r.request = i
		return r
	case kindDeadline:
		body := withDeadline(pool.bodies[i%len(pool.bodies)], 3)
		r := chaosFire(client, baseURL, body, nil)
		r.request = i
		return r
	case kindBatch:
		r := chaosFire(client, baseURL, pool.bodies[i%len(pool.bodies)],
			map[string]string{"X-Priority": "batch"})
		r.request = i
		return r
	default:
		r := chaosFire(client, baseURL, pool.bodies[i%len(pool.bodies)], nil)
		r.request = i
		return r
	}
}

// withDeadline stamps deadline_ms onto an already-marshalled
// single-point request body.
func withDeadline(body []byte, ms int64) []byte {
	var req SweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return body
	}
	req.DeadlineMS = ms
	out, err := json.Marshal(req)
	if err != nil {
		return body
	}
	return out
}

// chaosFire posts one sweep with optional headers, absorbing 429s with
// backoff like the loadtest but bounded: a server that stops admitting
// forever is itself an invariant violation, surfaced as status -2.
func chaosFire(client *http.Client, baseURL string, body []byte, headers map[string]string) ltResponse {
	backoff := 2 * time.Millisecond
	transportErrs := 0
	for retries := 0; retries < 500; retries++ {
		req, err := http.NewRequest("POST", baseURL+"/v1/sweep", bytes.NewReader(body))
		if err != nil {
			return ltResponse{status: -1, retries: retries, parseErr: err}
		}
		req.Header.Set("Content-Type", "application/json")
		for k, v := range headers {
			req.Header.Set(k, v)
		}
		resp, err := client.Do(req)
		if err != nil {
			// Keep-alive race: the server may tear down an idle pooled
			// connection (idle timeout, or collateral from a
			// connection-level fault) at the instant we reuse it, and
			// the transport cannot always auto-retry. That is client
			// bad luck, not a service invariant violation — retry a few
			// times before declaring it one.
			if transportErrs++; transportErrs <= 3 {
				time.Sleep(backoff)
				if backoff < 100*time.Millisecond {
					backoff *= 2
				}
				continue
			}
			return ltResponse{status: -1, retries: retries, parseErr: err}
		}
		blob, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return ltResponse{status: -1, retries: retries, parseErr: err}
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				return ltResponse{status: resp.StatusCode, retries: retries,
					parseErr: errors.New("429 without Retry-After"), body: blob}
			}
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		return ltResponse{status: resp.StatusCode, retries: retries, body: blob}
	}
	return ltResponse{status: -2, parseErr: errors.New("request never admitted after 500 retries")}
}

// slowLoris dribbles a fragment of a request and waits for the server
// to enforce its read-header timeout. An error means the server kept
// the connection open past the budget.
func slowLoris(addr string, headerTimeout time.Duration) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	io.WriteString(conn, "POST /v1/sweep HTTP/1.1\r\n")
	io.WriteString(conn, "Host: chaos\r\n")
	io.WriteString(conn, "Content-Type: application/js") // ... and never finish
	grace := headerTimeout + 5*time.Second
	conn.SetReadDeadline(time.Now().Add(grace))
	buf := make([]byte, 512)
	for {
		if _, err := conn.Read(buf); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				return fmt.Errorf("server kept a slow-loris connection open past %v", grace)
			}
			return nil // EOF / reset: the timeout hung up on us, as it must
		}
	}
}

// midBodyCut opens a request announcing a body it never delivers, then
// slams the connection shut.
func midBodyCut(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	io.WriteString(conn,
		"POST /v1/sweep HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: 512\r\n\r\n{\"points\":[{")
	conn.Close()
}

// midStreamCut starts a long sweep and abandons it while the response
// is streaming; the server must cancel the simulation and checkpoint.
func midStreamCut(client *http.Client, baseURL string, i int) {
	spec := PointSpec{Workload: "uniform", Cycles: 100_000, Seed: int64(5_000_000 + i)}
	body, _ := json.Marshal(SweepRequest{Points: []PointSpec{spec}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", baseURL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
