package main

// The load-soak harness behind `rfsimd -loadtest`: an in-process
// service instance under deliberate overload. -requests sweeps are
// fired by -clients concurrent clients, colliding on -unique distinct
// (fingerprint, seed) specs (the default -unique of requests/10 makes
// ~90% of requests collide), with 429 rejections retried until every
// request lands. The harness then enforces the service invariants:
//
//   - every unique spec was simulated exactly ONCE (probed by the
//     server's onCompute hook, not inferred from cache stats);
//   - every response is well-formed NDJSON: each line parses, every
//     point gets an outcome line, exactly one summary line ends it;
//   - no point failed and every invariant checker stayed quiet
//     (loadtest always arms -check);
//   - admission never overshot: queue peak <= -queue.
//
// Failing responses (and any crash dumps) are written under -lt-out
// for CI artifact upload.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// ltSpec pairs a request body with the spec index it collides on.
type ltSpec struct {
	unique int
	body   []byte
}

// ltResponse is one settled request, kept for validation.
type ltResponse struct {
	request  int
	unique   int
	status   int
	retries  int // 429s absorbed before landing
	body     []byte
	parseErr error
}

func runLoadtest(f *daemonFlags, stdout, stderr io.Writer) error {
	cfg := f.serverConfig()
	cfg.check = true // the soak is pointless without the invariant checker
	if f.ltOut != "" {
		if err := os.MkdirAll(f.ltOut, 0o755); err != nil {
			return fmt.Errorf("artifact dir: %w", err)
		}
		if cfg.dir == "" {
			cfg.dir = filepath.Join(f.ltOut, "crash-dumps")
			if err := os.MkdirAll(cfg.dir, 0o755); err != nil {
				return fmt.Errorf("crash-dump dir: %w", err)
			}
		}
	}

	srv, err := newServer(context.Background(), cfg)
	if err != nil {
		return err
	}
	defer srv.close()

	// The exactly-once probe: every actual simulation run reports its
	// fingerprint here. Cache hits and single-flight joins never do.
	var computeMu sync.Mutex
	computes := map[string]int{}
	srv.onCompute = func(fp string) {
		computeMu.Lock()
		computes[fp]++
		computeMu.Unlock()
	}

	ts := startInProc(f, srv)
	defer ts.Close()
	client := ts.Client()

	specs := buildLoadtestSpecs(f.unique, f.ltCycles)
	fmt.Fprintf(stdout, "loadtest: %d requests, %d clients, %d unique specs (%.0f%% colliding), queue %d, active %d\n",
		f.requests, f.clients, f.unique,
		100*(1-float64(f.unique)/float64(f.requests)), cfg.maxQueue, cfg.maxActive)

	// Fire. Each client drains the work channel; a 429 backs off and
	// retries the same request until it lands.
	work := make(chan int)
	responses := make([]ltResponse, f.requests)
	var rejected atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < f.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range work {
				spec := specs[req%len(specs)]
				responses[req] = fireRequest(client, ts.URL, req, spec, &rejected)
			}
		}()
	}
	for req := 0; req < f.requests; req++ {
		work <- req
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	// Validate.
	var violations []error
	seen := map[string]bool{} // fingerprints observed across all outcomes
	for i := range responses {
		r := &responses[i]
		if r.status != http.StatusOK {
			violations = append(violations,
				fmt.Errorf("request %d: final status %d", r.request, r.status))
			continue
		}
		fps, err := validateNDJSON(r.body, 1)
		if err != nil {
			r.parseErr = err
			violations = append(violations, fmt.Errorf("request %d: %w", r.request, err))
			continue
		}
		for _, fp := range fps {
			seen[fp] = true
		}
	}

	computeMu.Lock()
	for fp, n := range computes {
		if n != 1 {
			violations = append(violations,
				fmt.Errorf("fingerprint %s simulated %d times, want exactly 1", fp, n))
		}
	}
	totalComputes := len(computes)
	computeMu.Unlock()
	if totalComputes != f.unique {
		violations = append(violations,
			fmt.Errorf("%d distinct fingerprints simulated, want %d", totalComputes, f.unique))
	}
	if len(seen) != f.unique {
		violations = append(violations,
			fmt.Errorf("outcomes cover %d distinct fingerprints, want %d", len(seen), f.unique))
	}

	snap := srv.metrics.Snapshot()
	if snap.QueuePeak > int64(cfg.maxQueue) {
		violations = append(violations,
			fmt.Errorf("queue peak %d overshot the admission bound %d", snap.QueuePeak, cfg.maxQueue))
	}
	if snap.PointsFailed != 0 {
		violations = append(violations, fmt.Errorf("%d points failed", snap.PointsFailed))
	}

	cstats := srv.cache.Stats()
	fmt.Fprintf(stdout, "loadtest: done in %v; %d requests ok, %d rejections absorbed\n",
		elapsed.Round(time.Millisecond), f.requests, rejected.Load())
	fmt.Fprintf(stdout, "cache: %d hits, %d misses, %d joins — hit rate %.1f%%\n",
		cstats.Hits, cstats.Misses, cstats.Joins, 100*cstats.HitRate())
	fmt.Fprintln(stdout, snap.Render())

	if f.ltOut != "" {
		if err := writeArtifacts(f.ltOut, responses, violations, snap, cstats); err != nil {
			fmt.Fprintf(stderr, "loadtest: writing artifacts: %v\n", err)
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d invariant violations:\n%w", len(violations), errors.Join(violations...))
	}
	fmt.Fprintln(stdout, "loadtest: all invariants held")
	return nil
}

// startInProc starts the in-process instance both harnesses drive,
// with the daemon's HTTP timeouts applied — the loadtest exercises the
// same slow-loris guard the real server ships with.
func startInProc(f *daemonFlags, srv *server) *httptest.Server {
	ts := httptest.NewUnstartedServer(srv.handler())
	ts.Config.ReadHeaderTimeout = f.readHeaderTimeout
	ts.Config.ReadTimeout = f.readTimeout
	ts.Config.IdleTimeout = f.idleTimeout
	ts.Start()
	client := ts.Client()
	if tr, ok := client.Transport.(*http.Transport); ok {
		tr.MaxIdleConnsPerHost = f.clients
		// Drop idle connections client-side before the server's idle
		// timeout can: a server hanging up exactly as the client reuses
		// a pooled connection surfaces as a spurious transport error
		// the transport cannot always retry.
		if f.idleTimeout > 0 {
			tr.IdleConnTimeout = f.idleTimeout / 2
		}
	}
	return ts
}

// buildLoadtestSpecs makes `unique` single-point sweep bodies with
// pairwise-distinct fingerprints: the seed always varies, and design
// and workload cycle through a small grid for shape diversity.
func buildLoadtestSpecs(unique int, cycles int64) []ltSpec {
	designs := []string{"baseline", "static", "wire-static"}
	workloads := []string{"uniform", "bidf", "2hotspot"}
	specs := make([]ltSpec, unique)
	for i := 0; i < unique; i++ {
		p := PointSpec{
			Design:   designs[i%len(designs)],
			Workload: workloads[(i/len(designs))%len(workloads)],
			Seed:     int64(1000 + i), // distinct seed => distinct fingerprint
			Cycles:   cycles,
		}
		body, err := json.Marshal(SweepRequest{Points: []PointSpec{p}})
		if err != nil {
			panic(err) // specs are static; this cannot fail
		}
		specs[i] = ltSpec{unique: i, body: body}
	}
	return specs
}

// fireRequest posts one sweep, absorbing 429s with backoff until the
// request lands or a non-retryable status arrives.
func fireRequest(client *http.Client, baseURL string, req int, spec ltSpec, rejected *atomic.Int64) ltResponse {
	backoff := 2 * time.Millisecond
	for retries := 0; ; retries++ {
		resp, err := client.Post(baseURL+"/v1/sweep", "application/json", bytes.NewReader(spec.body))
		if err != nil {
			return ltResponse{request: req, unique: spec.unique, status: -1,
				retries: retries, parseErr: err}
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return ltResponse{request: req, unique: spec.unique, status: -1,
				retries: retries, parseErr: err}
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected.Add(1)
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		return ltResponse{request: req, unique: spec.unique,
			status: resp.StatusCode, retries: retries, body: body}
	}
}

// validateNDJSON checks one response stream strictly: every line
// parses, every outcome is error-free, exactly one summary line closes
// the stream, and the outcome count matches the requested points.
// Returns the fingerprints of the outcomes.
func validateNDJSON(body []byte, wantPoints int) ([]string, error) {
	return checkNDJSON(body, wantPoints, false)
}

// checkNDJSON is the shared stream validator. With allowFailures (the
// chaos harness's mode, where injected faults make honest point
// failures expected), outcome errors and non-zero summary failure
// counts are tolerated — but the structural invariants still hold:
// every line parses, every point gets exactly one outcome, and exactly
// one summary line terminates the stream.
func checkNDJSON(body []byte, wantPoints int, allowFailures bool) ([]string, error) {
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var fps []string
	seenIdx := map[int]bool{}
	summaries, lineNo, failedOutcomes, jobLines := 0, 0, 0, 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			return nil, fmt.Errorf("line %d: empty NDJSON line", lineNo)
		}
		var rec streamLine
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("line %d: malformed NDJSON: %v", lineNo, err)
		}
		switch rec.Type {
		case "job":
			// The PR-9 stream preamble: the job's stable ID and point
			// count, exactly once, before anything else.
			jobLines++
			if lineNo != 1 || jobLines != 1 {
				return nil, fmt.Errorf("line %d: job line not the stream preamble", lineNo)
			}
			if rec.ID == "" {
				return nil, fmt.Errorf("line %d: job line without an id", lineNo)
			}
			if rec.Points != wantPoints {
				return nil, fmt.Errorf("line %d: job line announces %d points, want %d", lineNo, rec.Points, wantPoints)
			}
		case "outcome":
			if summaries > 0 {
				return nil, fmt.Errorf("line %d: outcome after summary", lineNo)
			}
			if rec.Error != "" {
				if !allowFailures {
					return nil, fmt.Errorf("line %d: point %d failed: %s", lineNo, rec.Index, rec.Error)
				}
				failedOutcomes++
			} else if rec.Result == nil {
				return nil, fmt.Errorf("line %d: outcome without result", lineNo)
			}
			if rec.Fingerprint == "" {
				return nil, fmt.Errorf("line %d: outcome without fingerprint", lineNo)
			}
			if rec.Index < 0 || rec.Index >= wantPoints {
				return nil, fmt.Errorf("line %d: outcome index %d outside [0,%d)", lineNo, rec.Index, wantPoints)
			}
			if seenIdx[rec.Index] {
				return nil, fmt.Errorf("line %d: duplicate outcome for index %d", lineNo, rec.Index)
			}
			seenIdx[rec.Index] = true
			fps = append(fps, rec.Fingerprint)
		case "summary":
			summaries++
			if rec.Error != "" && !allowFailures {
				return nil, fmt.Errorf("line %d: summary reports: %s", lineNo, rec.Error)
			}
			if rec.Failed != failedOutcomes {
				return nil, fmt.Errorf("line %d: summary reports %d failed points, stream shows %d",
					lineNo, rec.Failed, failedOutcomes)
			}
		default:
			return nil, fmt.Errorf("line %d: unknown record type %q", lineNo, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scanning response: %v", err)
	}
	if summaries != 1 {
		return nil, fmt.Errorf("%d summary lines, want exactly 1 (no terminal summary = a stranded stream)", summaries)
	}
	if len(fps) != wantPoints {
		return nil, fmt.Errorf("%d outcome lines, want %d", len(fps), wantPoints)
	}
	return fps, nil
}

// writeArtifacts dumps failing responses and a machine-readable report
// under dir for CI upload.
func writeArtifacts(dir string, responses []ltResponse, violations []error,
	snap interface{ Render() string }, cstats interface{ HitRate() float64 }) error {

	var errs []error
	for i := range responses {
		r := &responses[i]
		if r.status == http.StatusOK && r.parseErr == nil {
			continue
		}
		name := filepath.Join(dir, fmt.Sprintf("failed-req-%04d.ndjson", r.request))
		note := fmt.Sprintf("# request %d spec %d status %d retries %d parseErr %v\n",
			r.request, r.unique, r.status, r.retries, r.parseErr)
		if err := os.WriteFile(name, append([]byte(note), r.body...), 0o644); err != nil {
			errs = append(errs, err)
		}
	}
	report := struct {
		Violations []string `json:"violations"`
		Metrics    string   `json:"metrics"`
		HitRate    float64  `json:"cache_hit_rate"`
	}{Metrics: snap.Render(), HitRate: cstats.HitRate()}
	for _, v := range violations {
		report.Violations = append(report.Violations, v.Error())
	}
	blob, _ := json.MarshalIndent(report, "", "  ")
	if err := os.WriteFile(filepath.Join(dir, "report.json"), blob, 0o644); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
