// Command rfsimd serves RF-interconnect sweep simulations over
// HTTP/JSON as a long-running service.
//
// Usage:
//
//	rfsimd [-addr :8080] [-queue N] [-active N] [-workers N] [-retries N]
//	       [-point-timeout D] [-max-points N] [-max-cycles N]
//	       [-cache-entries N] [-dir DIR] [-checkpoint-every N] [-check]
//	rfsimd -loadtest [-requests N] [-clients N] [-unique N]
//	       [-lt-cycles N] [-lt-out DIR] ...
//
// Serve mode: clients POST sweep specs to /v1/sweep and read per-point
// outcomes back as an NDJSON stream while the sweep is still running.
// Admission control bounds the job queue at -queue (excess requests get
// 429), at most -active sweeps run at once, and each sweep fans its
// points across a -workers supervisor pool. Results are memoized in a
// content-addressed cache keyed by design fingerprint + seed: a repeat
// point is a cache hit, and colliding in-flight points are computed
// exactly once (single flight). GET /v1/metrics reports service and
// cache counters; SIGINT/SIGTERM drains running points to checkpoints
// in -dir before exiting, so a restarted server resumes them.
//
// Loadtest mode: spins up an in-process instance and slams it with
// -requests sweeps from -clients concurrent clients, ~90% of them
// colliding on -unique distinct (fingerprint, seed) specs, then checks
// the service invariants — every unique spec simulated exactly once,
// every response well-formed NDJSON, no failed points — and reports the
// cache hit rate. Exit 1 on any violation, 2 on bad flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

type daemonFlags struct {
	addr            string
	queue           int
	active          int
	workers         int
	retries         int
	pointTimeout    time.Duration
	maxPoints       int
	maxCycles       int64
	cacheEntries    int
	dir             string
	checkpointEvery int64
	check           bool

	loadtest bool
	requests int
	clients  int
	unique   int
	ltCycles int64
	ltOut    string
}

func (f *daemonFlags) validate() error {
	var errs []error
	fail := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if f.queue <= 0 {
		fail("-queue must be positive, got %d", f.queue)
	}
	if f.active <= 0 {
		fail("-active must be positive, got %d", f.active)
	}
	if f.workers < 0 {
		fail("-workers must be non-negative, got %d", f.workers)
	}
	if f.retries < 0 {
		fail("-retries must be non-negative, got %d", f.retries)
	}
	if f.pointTimeout < 0 {
		fail("-point-timeout must be non-negative, got %v", f.pointTimeout)
	}
	if f.maxPoints <= 0 {
		fail("-max-points must be positive, got %d", f.maxPoints)
	}
	if f.maxCycles < 0 {
		fail("-max-cycles must be non-negative, got %d", f.maxCycles)
	}
	if f.cacheEntries < 0 {
		fail("-cache-entries must be non-negative, got %d", f.cacheEntries)
	}
	if f.checkpointEvery < 0 {
		fail("-checkpoint-every must be non-negative, got %d", f.checkpointEvery)
	}
	if f.loadtest {
		if f.requests <= 0 {
			fail("-requests must be positive, got %d", f.requests)
		}
		if f.clients <= 0 {
			fail("-clients must be positive, got %d", f.clients)
		}
		if f.unique <= 0 {
			fail("-unique must be positive, got %d", f.unique)
		}
		if f.ltCycles <= 0 {
			fail("-lt-cycles must be positive, got %d", f.ltCycles)
		}
	}
	return errors.Join(errs...)
}

func (f *daemonFlags) serverConfig() serverConfig {
	return serverConfig{
		maxQueue:        f.queue,
		maxActive:       f.active,
		workers:         f.workers,
		retries:         f.retries,
		pointTimeout:    f.pointTimeout,
		checkpointEvery: f.checkpointEvery,
		dir:             f.dir,
		maxPoints:       f.maxPoints,
		maxCycles:       f.maxCycles,
		cacheEntries:    f.cacheEntries,
		check:           f.check,
	}
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	var f daemonFlags
	fs := flag.NewFlagSet("rfsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&f.addr, "addr", ":8080", "listen address")
	fs.IntVar(&f.queue, "queue", 32, "admission bound: max queued-or-running jobs before 429")
	fs.IntVar(&f.active, "active", 2, "max concurrently running sweeps")
	fs.IntVar(&f.workers, "workers", 0, "supervisor worker pool size per sweep (0 = default)")
	fs.IntVar(&f.retries, "retries", 1, "retry budget per failed sweep point")
	fs.DurationVar(&f.pointTimeout, "point-timeout", 0, "wall-clock budget per point attempt (0 = none)")
	fs.IntVar(&f.maxPoints, "max-points", 256, "max points in one sweep request")
	fs.Int64Var(&f.maxCycles, "max-cycles", 0, "max cycles a point may request (0 = unlimited)")
	fs.IntVar(&f.cacheEntries, "cache-entries", 4096, "result cache capacity in entries (0 = unbounded)")
	fs.StringVar(&f.dir, "dir", "", "directory for checkpoints and crash dumps (empty = disabled)")
	fs.Int64Var(&f.checkpointEvery, "checkpoint-every", 10000, "auto-checkpoint cadence in cycles")
	fs.BoolVar(&f.check, "check", false, "attach an invariant checker to every simulation")
	fs.BoolVar(&f.loadtest, "loadtest", false, "run the load-soak harness against an in-process instance")
	fs.IntVar(&f.requests, "requests", 1000, "loadtest: total sweep requests")
	fs.IntVar(&f.clients, "clients", 64, "loadtest: concurrent client goroutines")
	fs.IntVar(&f.unique, "unique", 0, "loadtest: distinct specs (0 = requests/10, ~90% collisions)")
	fs.Int64Var(&f.ltCycles, "lt-cycles", 300, "loadtest: injection cycles per point")
	fs.StringVar(&f.ltOut, "lt-out", "", "loadtest: directory for NDJSON response artifacts (empty = discard)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if f.unique == 0 {
		f.unique = f.requests / 10
		if f.unique == 0 {
			f.unique = 1
		}
	}
	if err := f.validate(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if f.loadtest {
		if err := runLoadtest(&f, stdout, stderr); err != nil {
			fmt.Fprintf(stderr, "loadtest: %v\n", err)
			return 1
		}
		return 0
	}
	if err := serve(&f, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "rfsimd: %v\n", err)
		return 1
	}
	return 0
}

// serve runs the HTTP service until SIGINT/SIGTERM, then drains:
// in-flight points checkpoint to -dir and the server shuts down
// gracefully.
func serve(f *daemonFlags, stdout, stderr io.Writer) error {
	if f.dir != "" {
		if err := os.MkdirAll(f.dir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}

	// drainCtx cancels on the first signal; running points see it and
	// checkpoint.
	drainCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := newServer(drainCtx, f.serverConfig())
	httpSrv := &http.Server{Addr: f.addr, Handler: srv.handler()}

	ln, err := net.Listen("tcp", f.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "rfsimd listening on %s (queue %d, active %d, cache %d entries)\n",
		ln.Addr(), srv.cfg.maxQueue, srv.cfg.maxActive, srv.cfg.cacheEntries)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-drainCtx.Done():
	}
	srv.draining.Store(true)
	fmt.Fprintln(stdout, "rfsimd draining: checkpointing running points...")

	// Give in-flight responses time to finish writing their summary
	// lines (the cancelled drainCtx already interrupted the
	// simulations), then close.
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(stdout, srv.metrics.Snapshot().Render())
	return nil
}
