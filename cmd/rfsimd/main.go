// Command rfsimd serves RF-interconnect sweep simulations over
// HTTP/JSON as a long-running service.
//
// Usage:
//
//	rfsimd [-addr :8080] [-queue N] [-active N] [-workers N] [-retries N]
//	       [-point-timeout D] [-max-points N] [-max-cycles N]
//	       [-max-deadline D] [-max-job-cycles N] [-interactive-reserve N]
//	       [-quarantine-failures K] [-quarantine-cooldown D]
//	       [-cache-entries N] [-dir DIR] [-checkpoint-every N] [-check]
//	       [-read-header-timeout D] [-read-timeout D] [-idle-timeout D]
//	       [-gc-max-bytes N] [-gc-max-age D] [-gc-interval D]
//	       [-isolate] [-worker-mem N] [-worker-deadline D] [-journal FILE]
//	rfsimd -loadtest [-requests N] [-clients N] [-unique N]
//	       [-lt-cycles N] [-lt-out DIR] ...
//	rfsimd -loadtest -chaos [-chaos-seed N] ...
//	rfsimd -worker   (internal: spawned by the daemon under -isolate)
//
// Serve mode: clients POST sweep specs to /v1/sweep and read per-point
// outcomes back as an NDJSON stream while the sweep is still running.
// Admission control bounds the job queue at -queue (excess requests get
// 429 with a load-derived Retry-After); batch-priority jobs are shed
// earlier, once only the -interactive-reserve tail of the queue
// remains. At most -active sweeps run at once, each fanning its points
// across a -workers supervisor pool. Per-request deadlines (spec
// deadline_ms or the X-Sweep-Deadline-Ms header, capped by
// -max-deadline) cancel overdue jobs; -max-job-cycles rejects oversized
// sweeps with 413 at admission. Configs that keep panicking the
// simulator are quarantined by a per-config circuit breaker
// (-quarantine-failures panics trip it, -quarantine-cooldown later a
// single probe retries) and answered 422 with the crash-dump reference.
// Results are memoized in a content-addressed cache keyed by design
// fingerprint + seed. When -dir is set, a background janitor enforces
// -gc-max-bytes / -gc-max-age quotas over checkpoints and crash dumps
// (oldest first, in-flight points never deleted). GET /v1/metrics
// reports service, cache and janitor counters; GET /readyz turns 503
// before the queue saturates; SIGINT/SIGTERM drains running points to
// checkpoints in -dir before exiting, so a restarted server resumes
// them.
//
// Crash-only mode: with -isolate every simulation attempt runs in a
// supervised child process (this executable re-exec'd with -worker)
// that heartbeats over a framed pipe; the daemon SIGKILLs workers that
// stop heartbeating or overrun -worker-deadline, and a worker whose
// heap passes -worker-mem self-terminates with an OOM crash dump — so
// a pathological config kills a disposable child, never the service.
// With -journal, every accepted sweep is fsync'd to an append-only WAL
// before it runs and settled when it finishes; a daemon that dies
// mid-job (even kill -9) replays the unfinished jobs at next boot,
// resuming from -dir checkpoints, so an accepted job is eventually
// simulated exactly once even across crashes.
//
// Loadtest mode: spins up an in-process instance and slams it with
// -requests sweeps from -clients concurrent clients, ~90% of them
// colliding on -unique distinct (fingerprint, seed) specs, then checks
// the service invariants — every unique spec simulated exactly once,
// every response well-formed NDJSON, no failed points — and reports the
// cache hit rate. With -chaos, the harness instead injects service-level
// faults (slow-loris clients, mid-body disconnects, simulated disk
// full, worker panics, cache corruption) and asserts the self-protection
// invariants: bounded queue and disk, zero stranded jobs or goroutines,
// a terminal NDJSON summary on every accepted request, and 422 for
// quarantined configs. Exit 1 on any violation, 2 on bad flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/janitor"
)

type daemonFlags struct {
	addr            string
	queue           int
	active          int
	workers         int
	retries         int
	pointTimeout    time.Duration
	maxPoints       int
	maxCycles       int64
	cacheEntries    int
	dir             string
	checkpointEvery int64
	check           bool

	// Self-protection knobs (PR 7).
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	idleTimeout       time.Duration
	maxDeadline       time.Duration
	maxJobCycles      int64
	intReserve        int
	quarFailures      int
	quarCooldown      time.Duration
	gcMaxBytes        int64
	gcMaxAge          time.Duration
	gcInterval        time.Duration

	// Crash-only knobs (PR 8).
	worker         bool
	isolate        bool
	workerMem      int64
	workerDeadline time.Duration
	journalPath    string

	// Exactly-once delivery knobs (PR 9).
	resultsKeep time.Duration
	resultsSync int

	// Test seams, not flags: the worker argv and extra environment
	// (tests re-exec the test binary gated by RFSIMD_TEST_WORKER=1;
	// production resolves this executable + "-worker").
	workerCommand []string
	workerEnv     []string

	loadtest  bool
	requests  int
	clients   int
	unique    int
	ltCycles  int64
	ltOut     string
	chaos     bool
	chaosSeed int64
	// resumeStorm drives a fleet of resuming rfclients through a
	// fault-injecting TCP proxy, killing and restarting the daemon
	// mid-storm, and asserts exactly-once delivery end to end.
	resumeStorm bool
}

func (f *daemonFlags) validate() error {
	var errs []error
	fail := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if f.queue <= 0 {
		fail("-queue must be positive, got %d", f.queue)
	}
	if f.active <= 0 {
		fail("-active must be positive, got %d", f.active)
	}
	if f.workers < 0 {
		fail("-workers must be non-negative, got %d", f.workers)
	}
	if f.retries < 0 {
		fail("-retries must be non-negative, got %d", f.retries)
	}
	if f.pointTimeout < 0 {
		fail("-point-timeout must be non-negative, got %v", f.pointTimeout)
	}
	if f.maxPoints <= 0 {
		fail("-max-points must be positive, got %d", f.maxPoints)
	}
	if f.maxCycles < 0 {
		fail("-max-cycles must be non-negative, got %d", f.maxCycles)
	}
	if f.cacheEntries < 0 {
		fail("-cache-entries must be non-negative, got %d", f.cacheEntries)
	}
	if f.checkpointEvery < 0 {
		fail("-checkpoint-every must be non-negative, got %d", f.checkpointEvery)
	}
	if f.readHeaderTimeout < 0 {
		fail("-read-header-timeout must be non-negative, got %v", f.readHeaderTimeout)
	}
	if f.readTimeout < 0 {
		fail("-read-timeout must be non-negative, got %v", f.readTimeout)
	}
	if f.idleTimeout < 0 {
		fail("-idle-timeout must be non-negative, got %v", f.idleTimeout)
	}
	if f.maxDeadline < 0 {
		fail("-max-deadline must be non-negative, got %v", f.maxDeadline)
	}
	if f.maxJobCycles < 0 {
		fail("-max-job-cycles must be non-negative, got %d", f.maxJobCycles)
	}
	if f.intReserve >= f.queue && f.queue > 0 {
		fail("-interactive-reserve %d must be smaller than -queue %d", f.intReserve, f.queue)
	}
	if f.quarFailures <= 0 {
		fail("-quarantine-failures must be positive, got %d", f.quarFailures)
	}
	if f.quarCooldown <= 0 {
		fail("-quarantine-cooldown must be positive, got %v", f.quarCooldown)
	}
	if f.gcMaxBytes < 0 {
		fail("-gc-max-bytes must be non-negative, got %d", f.gcMaxBytes)
	}
	if f.gcMaxAge < 0 {
		fail("-gc-max-age must be non-negative, got %v", f.gcMaxAge)
	}
	if f.gcInterval <= 0 {
		fail("-gc-interval must be positive, got %v", f.gcInterval)
	}
	if f.workerMem < 0 {
		fail("-worker-mem must be non-negative, got %d", f.workerMem)
	}
	if f.workerDeadline < 0 {
		fail("-worker-deadline must be non-negative, got %v", f.workerDeadline)
	}
	if f.workerMem > 0 && !f.isolate {
		fail("-worker-mem requires -isolate (there is no worker process to limit)")
	}
	if f.workerDeadline > 0 && !f.isolate {
		fail("-worker-deadline requires -isolate (there is no worker process to kill)")
	}
	if f.resultsKeep < 0 {
		fail("-results-keep must be non-negative, got %v", f.resultsKeep)
	}
	if f.resultsSync < 0 {
		fail("-results-sync must be non-negative, got %d", f.resultsSync)
	}
	if f.chaos && !f.loadtest {
		fail("-chaos requires -loadtest (it extends the load harness)")
	}
	if f.resumeStorm && !f.loadtest {
		fail("-resume-storm requires -loadtest (it extends the load harness)")
	}
	if f.loadtest {
		if f.requests <= 0 {
			fail("-requests must be positive, got %d", f.requests)
		}
		if f.clients <= 0 {
			fail("-clients must be positive, got %d", f.clients)
		}
		if f.unique <= 0 {
			fail("-unique must be positive, got %d", f.unique)
		}
		if f.ltCycles <= 0 {
			fail("-lt-cycles must be positive, got %d", f.ltCycles)
		}
	}
	return errors.Join(errs...)
}

func (f *daemonFlags) serverConfig() serverConfig {
	return serverConfig{
		maxQueue:           f.queue,
		interactiveReserve: f.intReserve,
		maxActive:          f.active,
		workers:            f.workers,
		retries:            f.retries,
		pointTimeout:       f.pointTimeout,
		maxDeadline:        f.maxDeadline,
		maxJobCycles:       f.maxJobCycles,
		checkpointEvery:    f.checkpointEvery,
		dir:                f.dir,
		maxPoints:          f.maxPoints,
		maxCycles:          f.maxCycles,
		cacheEntries:       f.cacheEntries,
		quarK:              f.quarFailures,
		quarCooldown:       f.quarCooldown,
		check:              f.check,
		isolate:            f.isolate,
		workerMem:          f.workerMem,
		workerDeadline:     f.workerDeadline,
		workerCommand:      f.workerCommand,
		workerEnv:          f.workerEnv,
		journalPath:        f.journalPath,
		resultsKeep:        f.resultsKeep,
		resultsSync:        f.resultsSync,
	}
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	var f daemonFlags
	fs := flag.NewFlagSet("rfsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&f.addr, "addr", ":8080", "listen address")
	fs.IntVar(&f.queue, "queue", 32, "admission bound: max queued-or-running jobs before 429")
	fs.IntVar(&f.active, "active", 2, "max concurrently running sweeps")
	fs.IntVar(&f.workers, "workers", 0, "supervisor worker pool size per sweep (0 = default)")
	fs.IntVar(&f.retries, "retries", 1, "retry budget per failed sweep point")
	fs.DurationVar(&f.pointTimeout, "point-timeout", 0, "wall-clock budget per point attempt (0 = none)")
	fs.IntVar(&f.maxPoints, "max-points", 256, "max points in one sweep request")
	fs.Int64Var(&f.maxCycles, "max-cycles", 0, "max cycles a point may request (0 = unlimited)")
	fs.IntVar(&f.cacheEntries, "cache-entries", 4096, "result cache capacity in entries (0 = unbounded)")
	fs.StringVar(&f.dir, "dir", "", "directory for checkpoints and crash dumps (empty = disabled)")
	fs.Int64Var(&f.checkpointEvery, "checkpoint-every", 10000, "auto-checkpoint cadence in cycles")
	fs.BoolVar(&f.check, "check", false, "attach an invariant checker to every simulation")
	fs.DurationVar(&f.readHeaderTimeout, "read-header-timeout", 5*time.Second, "http: time budget for reading request headers (slow-loris guard)")
	fs.DurationVar(&f.readTimeout, "read-timeout", 0, "http: time budget for reading one request's headers+body (0 = none); the server clears the deadline once the body is decoded, so sweeps may stream longer than this")
	fs.DurationVar(&f.idleTimeout, "idle-timeout", 2*time.Minute, "http: keep-alive idle connection timeout")
	fs.DurationVar(&f.maxDeadline, "max-deadline", 0, "cap on (and default for) per-request deadlines (0 = none)")
	fs.Int64Var(&f.maxJobCycles, "max-job-cycles", 0, "per-job cost ceiling in estimated simulated cycles; oversized sweeps get 413 (0 = unlimited)")
	fs.IntVar(&f.intReserve, "interactive-reserve", -1, "queue slots reserved for interactive jobs; batch is shed past queue-reserve (-1 = queue/4, 0 = none)")
	fs.IntVar(&f.quarFailures, "quarantine-failures", 3, "panicking failures before a config's circuit breaker opens")
	fs.DurationVar(&f.quarCooldown, "quarantine-cooldown", time.Minute, "open-breaker cooldown before a half-open probe is admitted")
	fs.Int64Var(&f.gcMaxBytes, "gc-max-bytes", 0, "janitor: byte quota over checkpoints+crash dumps in -dir (0 = no byte quota)")
	fs.DurationVar(&f.gcMaxAge, "gc-max-age", 0, "janitor: delete artifacts older than this (0 = no age quota)")
	fs.DurationVar(&f.gcInterval, "gc-interval", 30*time.Second, "janitor: sweep cadence")
	fs.BoolVar(&f.loadtest, "loadtest", false, "run the load-soak harness against an in-process instance")
	fs.IntVar(&f.requests, "requests", 1000, "loadtest: total sweep requests")
	fs.IntVar(&f.clients, "clients", 64, "loadtest: concurrent client goroutines")
	fs.IntVar(&f.unique, "unique", 0, "loadtest: distinct specs (0 = requests/10, ~90% collisions)")
	fs.Int64Var(&f.ltCycles, "lt-cycles", 300, "loadtest: injection cycles per point")
	fs.StringVar(&f.ltOut, "lt-out", "", "loadtest: directory for NDJSON response artifacts (empty = discard)")
	fs.BoolVar(&f.chaos, "chaos", false, "loadtest: inject service-level faults and check the self-protection invariants")
	fs.Int64Var(&f.chaosSeed, "chaos-seed", 1, "chaos: RNG seed for fault assignment")
	fs.BoolVar(&f.worker, "worker", false, "run as a sweep worker child process (internal: the daemon re-execs itself with this flag)")
	fs.BoolVar(&f.isolate, "isolate", false, "run every simulation attempt in a supervised worker process (crash-only mode)")
	fs.Int64Var(&f.workerMem, "worker-mem", 0, "per-worker soft memory limit in bytes; over it the worker self-terminates with an OOM crash dump (0 = none, requires -isolate)")
	fs.DurationVar(&f.workerDeadline, "worker-deadline", 0, "hard wall-clock budget per worker attempt before SIGKILL (0 = none, requires -isolate)")
	fs.StringVar(&f.journalPath, "journal", "", "durable job journal (WAL) path; accepted sweeps survive a crash and replay at boot (empty = disabled)")
	fs.DurationVar(&f.resultsKeep, "results-keep", 5*time.Minute, "how long an idle job's result log stays pinned after its last producer or reader (0 = default 5m)")
	fs.IntVar(&f.resultsSync, "results-sync", 16, "fsync batch for result-log appends nobody is streaming; live streams sync every frame (0 = default 16)")
	fs.BoolVar(&f.resumeStorm, "resume-storm", false, "loadtest: drive resuming clients through a fault-injecting TCP proxy with a mid-storm daemon restart, asserting exactly-once delivery")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if f.worker {
		// Worker mode: speak the frame protocol on stdin/stdout until EOF.
		// Everything else about the flag set is irrelevant in the child.
		return experiments.WorkerMain(os.Stdin, stdout, stderr)
	}
	if f.unique == 0 {
		f.unique = f.requests / 10
		if f.unique == 0 {
			f.unique = 1
		}
	}
	if err := f.validate(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if f.resumeStorm {
		if err := runResumeStorm(&f, stdout, stderr); err != nil {
			fmt.Fprintf(stderr, "resume-storm: %v\n", err)
			return 1
		}
		return 0
	}
	if f.chaos {
		if err := runChaos(&f, stdout, stderr); err != nil {
			fmt.Fprintf(stderr, "chaos: %v\n", err)
			return 1
		}
		return 0
	}
	if f.loadtest {
		if err := runLoadtest(&f, stdout, stderr); err != nil {
			fmt.Fprintf(stderr, "loadtest: %v\n", err)
			return 1
		}
		return 0
	}
	if err := serve(&f, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "rfsimd: %v\n", err)
		return 1
	}
	return 0
}

// serve runs the HTTP service until SIGINT/SIGTERM, then drains:
// in-flight points checkpoint to -dir and the server shuts down
// gracefully.
func serve(f *daemonFlags, stdout, stderr io.Writer) error {
	if f.dir != "" {
		if err := os.MkdirAll(f.dir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}

	// drainCtx cancels on the first signal; running points see it and
	// checkpoint.
	drainCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv, err := newServer(drainCtx, f.serverConfig())
	if err != nil {
		return err
	}
	defer srv.close()

	// The disk-quota janitor runs whenever there is a directory to
	// protect and at least one quota to enforce. In-flight points are
	// pinned through the server's refcounts; the journal compacts under
	// the janitor's cadence.
	if f.dir != "" && (f.gcMaxBytes > 0 || f.gcMaxAge > 0) {
		jan, jerr := janitor.New(janitor.Config{
			Dir:      f.dir,
			MaxBytes: f.gcMaxBytes,
			MaxAge:   f.gcMaxAge,
			Interval: f.gcInterval,
			Pinned:   srv.artifactPinned,
			Compact:  srv.compactJournal,
		})
		if jerr != nil {
			return fmt.Errorf("janitor: %w", jerr)
		}
		srv.jan = jan
		go jan.Run(drainCtx)
	}

	// Replay the journal's unfinished jobs concurrently with serving:
	// they take run slots through the same bound as live traffic, so a
	// busy boot interleaves recovery with new work instead of blocking
	// the listener.
	if srv.journal != nil {
		if n := len(srv.replay); n > 0 {
			fmt.Fprintf(stdout, "rfsimd journal: replaying %d unfinished job(s)\n", n)
		}
		go srv.replayJournal(drainCtx)
	}

	// The header and idle timeouts are the slow-loris guard: a client
	// that dribbles header bytes (or none) can no longer hold a
	// connection — and its admission slot — forever. ReadTimeout
	// defaults to 0 (off) because net/http arms it at request start and
	// a long-running sweep legitimately streams NDJSON far past any
	// sane read budget; when an operator sets it, the handler clears
	// the deadline as soon as the request body is decoded
	// (ResponseController.SetReadDeadline), so it bounds only the
	// header+body read and never aborts a stream mid-sweep.
	httpSrv := &http.Server{
		Addr:              f.addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: f.readHeaderTimeout,
		ReadTimeout:       f.readTimeout,
		IdleTimeout:       f.idleTimeout,
	}

	ln, err := net.Listen("tcp", f.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "rfsimd listening on %s (queue %d, active %d, cache %d entries)\n",
		ln.Addr(), srv.cfg.maxQueue, srv.cfg.maxActive, srv.cfg.cacheEntries)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-drainCtx.Done():
	}
	srv.draining.Store(true)
	fmt.Fprintln(stdout, "rfsimd draining: checkpointing running points...")

	// Give in-flight responses time to finish writing their summary
	// lines (the cancelled drainCtx already interrupted the
	// simulations), then close.
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(stdout, srv.metrics.Snapshot().Render())
	return nil
}
