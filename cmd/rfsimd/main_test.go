package main

// TestMain doubles the test binary as a sweep worker: the isolate-mode
// e2e tests point the worker pool's Command at os.Args[0] with
// RFSIMD_TEST_WORKER=1 in the environment, and this gate diverts the
// re-exec'd child into the worker loop before the testing framework
// takes over.

import (
	"os"
	"testing"

	"repro/internal/experiments"
)

func TestMain(m *testing.M) {
	if os.Getenv("RFSIMD_TEST_WORKER") == "1" {
		os.Exit(experiments.WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}
