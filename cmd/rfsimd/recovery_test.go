package main

// Crash-only e2e tests: isolated (out-of-process) sweeps produce
// bit-identical results, a daemon "kill -9" between WAL accept and
// completion is healed by boot replay, and the chaos harness holds its
// invariants with worker-hostile faults crossing the process boundary.
// The worker child in all of these is this test binary re-exec'd with
// RFSIMD_TEST_WORKER=1 (see TestMain).

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// isolateConfig points the worker pool at the test binary's worker gate.
func isolateConfig(cfg serverConfig) serverConfig {
	cfg.isolate = true
	cfg.workerCommand = []string{os.Args[0]}
	cfg.workerEnv = []string{"RFSIMD_TEST_WORKER=1"}
	return cfg
}

// resultBlobs decodes a sweep stream into canonical result bytes per
// point index, failing the test on any failed outcome.
func resultBlobs(t *testing.T, body []byte) map[int][]byte {
	t.Helper()
	out := map[int][]byte{}
	for _, rec := range decodeStream(t, body) {
		if rec.Type != "outcome" {
			continue
		}
		if rec.Error != "" {
			t.Fatalf("point %d failed: %s", rec.Index, rec.Error)
		}
		blob, err := experiments.MarshalResult(*rec.Result)
		if err != nil {
			t.Fatalf("marshal result %d: %v", rec.Index, err)
		}
		out[rec.Index] = blob
	}
	return out
}

// TestSweepIsolatedBitIdentical: the same sweep run in-process and
// through worker processes must produce byte-for-byte identical results
// — process isolation must not perturb the simulation, or the
// content-addressed cache would silently mix divergent answers.
func TestSweepIsolatedBitIdentical(t *testing.T) {
	req := SweepRequest{Points: []PointSpec{
		{Workload: "uniform", Cycles: 300, Seed: 61},
		{Design: "wire-static", Workload: "bidf", Cycles: 300, Seed: 62},
	}}

	_, tsRef := e2eServer(t, serverConfig{})
	refResp, refBody := postSweep(t, tsRef, req)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("reference sweep status %d: %s", refResp.StatusCode, refBody)
	}
	ref := resultBlobs(t, refBody)

	srvIso, tsIso := e2eServer(t, isolateConfig(serverConfig{}))
	resp, body := postSweep(t, tsIso, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("isolated sweep status %d: %s", resp.StatusCode, body)
	}
	iso := resultBlobs(t, body)

	for i, want := range ref {
		if !bytes.Equal(iso[i], want) {
			t.Errorf("point %d: isolated result diverges from in-process\nisolated:   %s\nin-process: %s", i, iso[i], want)
		}
	}
	st := srvIso.pool.Stats()
	if st.JobsDispatched < int64(len(req.Points)) {
		t.Errorf("pool dispatched %d jobs, want >= %d — the sweep did not actually cross the process boundary", st.JobsDispatched, len(req.Points))
	}
	if st.Crashed != 0 {
		t.Errorf("pool stats %+v: clean sweep crashed workers", st)
	}
}

// TestJournalCrashRecovery is the durability property test: a daemon
// killed between a job's fsync'd WAL accept and its completion must,
// on restart over the same state directory, replay the job to
// completion and then serve the re-submitted request from the cache
// with a result bit-identical to an uninterrupted run.
func TestJournalCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "journal.wal")
	req := SweepRequest{Points: []PointSpec{{Workload: "uniform", Cycles: 20_000, Seed: 77}}}

	// Reference: an uninterrupted run on an unrelated server.
	_, tsRef := e2eServer(t, serverConfig{})
	refResp, refBody := postSweep(t, tsRef, req)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("reference sweep status %d: %s", refResp.StatusCode, refBody)
	}
	ref := resultBlobs(t, refBody)

	// The crash: server B journals the accept, then its drain context is
	// cancelled the instant the simulation starts — the same order of
	// events kill -9 produces (accept fsync'd, no done record) — and its
	// in-memory state is discarded.
	drainCtx, drainCancel := context.WithCancel(context.Background())
	defer drainCancel()
	srvB, err := newServer(drainCtx, serverConfig{dir: dir, checkpointEvery: 1000, journalPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	srvB.onCompute = func(string) { drainCancel() }
	tsB := httptest.NewServer(srvB.handler())
	respB, bodyB := postSweep(t, tsB, req)
	tsB.Close()
	srvB.close()
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("interrupted sweep status %d: %s", respB.StatusCode, bodyB)
	}
	if js := srvB.journal.Stats(); js.Accepted != 1 || js.Completed != 0 {
		t.Fatalf("journal before restart: %+v, want 1 accepted, 0 completed", js)
	}

	// Restart: server C over the same directory and WAL recovers the
	// open job and replays it to completion.
	srvC, tsC := e2eServer(t, serverConfig{dir: dir, checkpointEvery: 1000, journalPath: wal})
	if n := len(srvC.replay); n != 1 {
		t.Fatalf("journal recovered %d jobs, want 1", n)
	}
	srvC.replayJournal(context.Background())
	if got := srvC.journal.OpenJobs(); got != 0 {
		t.Fatalf("%d jobs still open after replay", got)
	}

	// The re-submitted request is a cache hit with the reference bytes.
	resp, body := postSweep(t, tsC, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery sweep status %d: %s", resp.StatusCode, body)
	}
	for _, rec := range decodeStream(t, body) {
		if rec.Type == "outcome" && !rec.Cached {
			t.Errorf("post-recovery point %d not served from the replayed cache", rec.Index)
		}
	}
	got := resultBlobs(t, body)
	for i, want := range ref {
		if !bytes.Equal(got[i], want) {
			t.Errorf("point %d: recovered result diverges from uninterrupted run\nrecovered: %s\nreference: %s", i, got[i], want)
		}
	}
}

// TestJournalReplaySkipsSettledWork: a job whose done record made it to
// disk must NOT replay — replay is exactly the open set.
func TestJournalReplaySkipsSettledWork(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "journal.wal")
	req := SweepRequest{Points: []PointSpec{{Workload: "uniform", Cycles: 300, Seed: 78}}}

	srvA, tsA := e2eServer(t, serverConfig{dir: dir, journalPath: wal})
	if resp, body := postSweep(t, tsA, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	if js := srvA.journal.Stats(); js.Accepted != 1 || js.Completed != 1 {
		t.Fatalf("journal after clean run: %+v, want 1 accepted, 1 completed", js)
	}
	srvA.close()

	srvB, _ := e2eServer(t, serverConfig{dir: dir, journalPath: wal})
	if n := len(srvB.replay); n != 0 {
		t.Fatalf("settled job replayed: %d recovered jobs, want 0", n)
	}
}

// TestServiceChaosIsolate is the worker-hostile chaos run: the full
// storm with the poison directives crossing the process boundary
// (worker panic, memory-limit OOM, heartbeat-stopping hang) plus the
// post-storm SIGKILL of a busy worker. Every self-protection invariant
// must still hold.
func TestServiceChaosIsolate(t *testing.T) {
	if testing.Short() {
		t.Skip("service chaos")
	}
	f := daemonFlags{
		queue: 16, active: 2, maxPoints: 8, cacheEntries: 4096,
		checkpointEvery: 500, retries: 1, intReserve: 4,
		quarFailures: 2, maxJobCycles: 500_000,
		readHeaderTimeout: 500 * time.Millisecond,
		readTimeout:       30 * time.Second,
		idleTimeout:       30 * time.Second,
		loadtest:          true, chaos: true, chaosSeed: 11,
		requests: 80, clients: 8, unique: 12, ltCycles: 200,
		isolate:       true,
		workerCommand: []string{os.Args[0]},
		workerEnv:     []string{"RFSIMD_TEST_WORKER=1"},
	}
	var out bytes.Buffer
	if err := runChaos(&f, &out, &out); err != nil {
		t.Fatalf("isolate chaos failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all invariants held") {
		t.Errorf("chaos output missing the invariant verdict:\n%s", out.String())
	}
	t.Logf("\n%s", out.String())
}
