package main

// The wire format of the sweep service: a SweepRequest is a list of
// PointSpecs, each naming one design point and workload the way the
// rfsim CLI does (design kind + width + workload name), plus the run
// knobs that shape results. Every spec compiles to an
// experiments.SweepPoint whose fingerprint is the service's cache key.

import (
	"errors"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/noc"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// SweepRequest is the POST /v1/sweep body.
type SweepRequest struct {
	Points []PointSpec `json:"points"`

	// DeadlineMS bounds the whole job's wall-clock time in
	// milliseconds, queue wait included; past it the job is cancelled
	// and running points checkpoint. Zero falls back to the
	// X-Sweep-Deadline-Ms header, then to the server's -max-deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// Priority selects the admission class: "interactive" (the
	// default) may use the whole queue, "batch" is shed once only the
	// interactive reserve remains. Falls back to the X-Priority header.
	Priority string `json:"priority,omitempty"`
}

// PointSpec names one simulation. Zero-valued knobs take the same
// defaults as the CLIs (16B width, uniform workload defaults via
// experiments.Options.WithDefaults).
type PointSpec struct {
	// Design selects the shortcut provisioning: baseline, static,
	// wire-static or adaptive. Default baseline.
	Design string `json:"design,omitempty"`

	// WidthBytes is the mesh link width: 4, 8 or 16 (default).
	WidthBytes int `json:"width_bytes,omitempty"`

	// RFRouters is the access-point count for adaptive designs (25, 50
	// or 100; default 50).
	RFRouters int `json:"rf_routers,omitempty"`

	// Multicast selects delivery for multicast messages: none (default,
	// unicast expansion), vct or rf. Any value other than none augments
	// the workload with multicast traffic.
	Multicast string `json:"multicast,omitempty"`

	// MulticastRate and MulticastLocality shape the augmented multicast
	// traffic (defaults 0.05 and 50).
	MulticastRate     float64 `json:"multicast_rate,omitempty"`
	MulticastLocality int     `json:"multicast_locality,omitempty"`

	// Workload names a probabilistic trace (uniform, unidf, bidf,
	// hotbidf, 1hotspot, 2hotspot, 4hotspot) or an application trace
	// (x264, bodytrack, fluidanimate, streamcluster, specjbb). Default
	// uniform.
	Workload string `json:"workload,omitempty"`

	// Rate is the injection rate per component per cycle (default
	// traffic.DefaultRate).
	Rate float64 `json:"rate,omitempty"`

	// Seed makes the run reproducible and is part of the cache key.
	Seed int64 `json:"seed,omitempty"`

	// Cycles is the measured injection window (default 60000); the
	// server caps it at -max-cycles.
	Cycles int64 `json:"cycles,omitempty"`

	// DrainCycles bounds post-injection draining (default 400000).
	DrainCycles int64 `json:"drain_cycles,omitempty"`

	// Histograms adds p50/p90/p99/max latency digests to the result (and
	// to the cache key, since they change the Result payload).
	Histograms bool `json:"histograms,omitempty"`

	// Low-level overrides, passed straight into noc.Config and validated
	// by Config.Validate.
	VCsPerClass   int     `json:"vcs_per_class,omitempty"`
	BufDepth      int     `json:"buf_depth,omitempty"`
	EscapeTimeout int64   `json:"escape_timeout,omitempty"`
	MeshBER       float64 `json:"mesh_ber,omitempty"`
	RFBER         float64 `json:"rf_ber,omitempty"`
	FaultSeed     int64   `json:"fault_seed,omitempty"`
	Integrity     bool    `json:"integrity,omitempty"`
	Watchdog      bool    `json:"watchdog,omitempty"`
}

// specLimits are the server-side caps a spec must respect; they bound
// the work one request can demand.
type specLimits struct {
	maxPoints int
	maxCycles int64
}

// compile turns one spec into a runnable sweep point. All validation
// errors — spec-level and noc.Config.Validate — are accumulated and
// joined, so a bad request names every problem at once.
func (p PointSpec) compile(m *topology.Mesh, lim specLimits, check bool) (experiments.SweepPoint, error) {
	var errs []error
	fail := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	design := p.Design
	if design == "" {
		design = "baseline"
	}
	var kind experiments.DesignKind
	switch design {
	case "baseline":
		kind = experiments.Baseline
	case "static":
		kind = experiments.Static
	case "wire-static":
		kind = experiments.WireStatic
	case "adaptive":
		kind = experiments.Adaptive
	default:
		fail("unknown design %q (want baseline, static, wire-static or adaptive)", design)
	}

	width := p.WidthBytes
	if width == 0 {
		width = 16
	}
	if !tech.LinkWidth(width).Valid() {
		fail("invalid width_bytes %d (want 16, 8 or 4)", width)
	}

	mcName := p.Multicast
	if mcName == "" {
		mcName = "none"
	}
	var mode noc.MulticastMode
	switch mcName {
	case "none", "expand":
		mode = noc.MulticastExpand
	case "vct":
		mode = noc.MulticastVCT
	case "rf":
		mode = noc.MulticastRF
	default:
		fail("unknown multicast mode %q (want none, expand, vct or rf)", mcName)
	}

	workload := p.Workload
	if workload == "" {
		workload = traffic.Uniform.String()
	}
	if _, err := workloadFactory(m, workload); err != nil {
		errs = append(errs, err)
	}

	if p.Rate < 0 {
		fail("rate must be non-negative, got %g", p.Rate)
	}
	if p.Cycles < 0 {
		fail("cycles must be non-negative, got %d", p.Cycles)
	}
	if lim.maxCycles > 0 && p.Cycles > lim.maxCycles {
		fail("cycles %d exceeds the server cap %d", p.Cycles, lim.maxCycles)
	}
	if p.DrainCycles < 0 {
		fail("drain_cycles must be non-negative, got %d", p.DrainCycles)
	}
	if p.MulticastRate < 0 || p.MulticastRate > 1 {
		fail("multicast_rate must be in [0,1], got %g", p.MulticastRate)
	}
	if p.MulticastLocality < 0 || p.MulticastLocality > 100 {
		fail("multicast_locality must be in [0,100], got %d", p.MulticastLocality)
	}

	opts := experiments.Options{
		Cycles:        p.Cycles,
		DrainCycles:   p.DrainCycles,
		Rate:          p.Rate,
		MulticastRate: p.MulticastRate,
		Seed:          p.Seed,
		Histograms:    p.Histograms,
		Check:         check,
	}

	if len(errs) > 0 {
		return experiments.SweepPoint{}, errors.Join(errs...)
	}

	locality := p.MulticastLocality
	if locality == 0 {
		locality = 50
	}
	// The generator is described as data (GenSpec) rather than a
	// closure, so the compiled point is portable: under -isolate the
	// daemon ships it to a worker process, which rebuilds the exact
	// generator from the post-default parameters.
	def := opts.WithDefaults()
	gen := experiments.GenSpec{
		Workload: workload,
		Rate:     def.Rate,
		Seed:     def.Seed,
	}
	if mode != noc.MulticastExpand {
		gen.Multicast = true
		gen.MulticastRate = def.MulticastRate
		gen.MulticastLocality = locality
	}
	mkGen := func() traffic.Generator {
		g, err := gen.Build(m)
		if err != nil {
			// The workload name was validated above; Build cannot fail.
			panic(err)
		}
		return g
	}

	d := experiments.Design{
		Kind: kind, Width: tech.LinkWidth(width),
		RFRouters: p.RFRouters, Multicast: mode,
	}
	if mode == noc.MulticastRF && kind == experiments.Adaptive {
		d.ShortcutBudget = tech.ShortcutBudget - 1 // one band for multicast
	}
	var profile traffic.Generator
	if kind == experiments.Adaptive {
		profile = mkGen()
	}
	cfg := experiments.Build(m, d, profile, 0)
	cfg.VCsPerClass = p.VCsPerClass
	cfg.BufDepth = p.BufDepth
	cfg.EscapeTimeout = p.EscapeTimeout
	cfg.Fault.MeshBER = p.MeshBER
	cfg.Fault.RFBER = p.RFBER
	cfg.Fault.Seed = p.FaultSeed
	cfg.Integrity = p.Integrity
	if p.Watchdog {
		cfg.Watchdog = noc.WatchdogConfig{Enabled: true}
	}
	if err := cfg.Validate(); err != nil {
		return experiments.SweepPoint{}, err
	}

	meta := map[string]string{
		"design":   d.Name(),
		"workload": mkGen().Name(),
		"seed":     fmt.Sprint(opts.WithDefaults().Seed),
		// The design's content address keys the poison-config
		// quarantine: a panic is a property of the configuration, so the
		// breaker must aggregate across seeds and workloads.
		"config": cfg.Fingerprint(),
	}
	// The fingerprint doubles as the point ID (NewPortableSweepPoint sets
	// both), so checkpoint files are keyed by content — a restarted
	// server resumes any client's interrupted point, and colliding
	// clients share one file.
	return experiments.NewPortableSweepPoint(cfg, gen, opts, meta)
}

// workloadFactory resolves a workload name to a generator constructor.
// The registry lives in internal/experiments (LookupWorkload) because
// worker processes resolve the same names from a GenSpec; this wrapper
// keeps the spec layer's call sites.
func workloadFactory(m *topology.Mesh, name string) (func(rate float64, seed int64) traffic.Generator, error) {
	return experiments.LookupWorkload(m, name)
}

// compileRequest compiles every point, joining all per-point errors
// (prefixed with the point index) into one 400-able error.
func compileRequest(req SweepRequest, m *topology.Mesh, lim specLimits, check bool) ([]experiments.SweepPoint, error) {
	if len(req.Points) == 0 {
		return nil, errors.New("sweep has no points")
	}
	if lim.maxPoints > 0 && len(req.Points) > lim.maxPoints {
		return nil, fmt.Errorf("sweep has %d points, server cap is %d", len(req.Points), lim.maxPoints)
	}
	var errs []error
	pts := make([]experiments.SweepPoint, 0, len(req.Points))
	for i, spec := range req.Points {
		pt, err := spec.compile(m, lim, check)
		if err != nil {
			errs = append(errs, fmt.Errorf("point %d: %w", i, err))
			continue
		}
		pts = append(pts, pt)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return pts, nil
}
