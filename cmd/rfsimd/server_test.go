package main

// End-to-end tests of the sweep service over real HTTP (httptest):
// happy-path streaming, spec validation, admission control under a full
// queue, mid-stream client disconnect cancelling the simulation, and
// resume-after-restart from the checkpoint directory.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/noc"
)

func e2eServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(context.Background(), cfg)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postSweep(t *testing.T, ts *httptest.Server, req SweepRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweep: %v", err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, blob
}

func fetchMetrics(t *testing.T, ts *httptest.Server) (snap struct {
	Service struct {
		JobsAdmitted int64 `json:"jobs_admitted"`
		JobsRejected int64 `json:"jobs_rejected"`
		JobsFailed   int64 `json:"jobs_failed"`
		QueueDepth   int64 `json:"queue_depth"`
		ActiveJobs   int64 `json:"active_jobs"`
	} `json:"service"`
}) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	return snap
}

// TestSweepHappyPath: a two-point sweep streams one well-formed outcome
// per point plus a summary; a repeat request is served from the cache.
func TestSweepHappyPath(t *testing.T) {
	_, ts := e2eServer(t, serverConfig{})
	req := SweepRequest{Points: []PointSpec{
		{Workload: "uniform", Cycles: 300, Seed: 7},
		{Design: "static", Workload: "bidf", Cycles: 300, Seed: 8},
	}}

	resp, body := postSweep(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	fps, err := validateNDJSON(body, len(req.Points))
	if err != nil {
		t.Fatalf("first response: %v\n%s", err, body)
	}
	if fps[0] == fps[1] {
		t.Errorf("distinct specs share fingerprint %s", fps[0])
	}

	// Decode the outcomes for content checks.
	var first []streamLine
	for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var rec streamLine
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("unmarshal %s: %v", line, err)
		}
		if rec.Type == "outcome" {
			if rec.Cached {
				t.Errorf("point %d cached on a cold cache", rec.Index)
			}
			if rec.Result.Stats.FlitsEjected == 0 {
				t.Errorf("point %d delivered no flits", rec.Index)
			}
			first = append(first, rec)
		}
	}

	// Repeat: everything is a hit with identical results.
	resp2, body2 := postSweep(t, ts, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	if _, err := validateNDJSON(body2, len(req.Points)); err != nil {
		t.Fatalf("repeat response: %v", err)
	}
	for _, line := range bytes.Split(bytes.TrimSpace(body2), []byte("\n")) {
		var rec streamLine
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Type != "outcome" {
			continue
		}
		if !rec.Cached || rec.Attempts != 0 {
			t.Errorf("repeat point %d not cached (cached=%v attempts=%d)", rec.Index, rec.Cached, rec.Attempts)
		}
		for _, f := range first {
			if f.Index == rec.Index && !reflect.DeepEqual(f.Result, rec.Result) {
				t.Errorf("repeat point %d result diverges from the computed one", rec.Index)
			}
		}
	}

	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %v status %v", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestSweepBadRequest: malformed specs get a 400 naming every problem at
// once (joined Config.Validate and spec errors), and unknown JSON fields
// are rejected.
func TestSweepBadRequest(t *testing.T) {
	_, ts := e2eServer(t, serverConfig{maxCycles: 1000})

	decodeErr := func(body []byte) string {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("error body %s not JSON: %v", body, err)
		}
		return e.Error
	}

	resp, body := postSweep(t, ts, SweepRequest{Points: []PointSpec{{
		Design:   "quantum",  // unknown design
		Workload: "webscale", // unknown workload
		Cycles:   9999,       // over the server cap
		Rate:     -1,         // negative
		BufDepth: -3,         // rejected by noc.Config.Validate
	}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
	msg := decodeErr(body)
	for _, want := range []string{"quantum", "webscale", "cycles 9999", "rate must be non-negative"} {
		if !strings.Contains(msg, want) {
			t.Errorf("400 error %q does not name %q", msg, want)
		}
	}

	// The config-level error (negative BufDepth) surfaces once the
	// spec-level fields parse.
	resp, body = postSweep(t, ts, SweepRequest{Points: []PointSpec{{Cycles: 300, BufDepth: -3}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
	if msg := decodeErr(body); !strings.Contains(msg, "buffer depth") && !strings.Contains(msg, "BufDepth") {
		t.Errorf("400 error %q does not mention the invalid buffer depth", msg)
	}

	// Empty sweeps and unknown fields are 400s too.
	resp, body = postSweep(t, ts, SweepRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sweep: status %d, want 400", resp.StatusCode)
	}
	if msg := decodeErr(body); !strings.Contains(msg, "no points") {
		t.Errorf("empty-sweep error %q", msg)
	}
	raw := bytes.NewReader([]byte(`{"points":[{"wrokload":"uniform"}]}`))
	resp2, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", raw)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("misspelled field: status %d, want 400", resp2.StatusCode)
	}
}

// TestSweepQueueFull429: with the queue at capacity, a further request
// is rejected with 429 + Retry-After and the queued jobs still complete.
func TestSweepQueueFull429(t *testing.T) {
	srv, ts := e2eServer(t, serverConfig{maxQueue: 2, maxActive: 1})

	gate := make(chan struct{})
	var entered, released sync.Once
	enteredCh := make(chan struct{})
	release := func() { released.Do(func() { close(gate) }) }
	defer release()
	srv.onCompute = func(string) {
		entered.Do(func() { close(enteredCh) })
		<-gate
	}

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(seed int64) {
			resp, _ := postSweep(t, ts, SweepRequest{Points: []PointSpec{
				{Cycles: 300, Seed: seed},
			}})
			results <- resp.StatusCode
		}(int64(100 + i))
	}

	// Wait until one job is computing (holding the run slot) and both
	// hold queue tokens.
	<-enteredCh
	deadline := time.Now().Add(5 * time.Second)
	for fetchMetrics(t, ts).Service.JobsAdmitted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second job never admitted")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, body := postSweep(t, ts, SweepRequest{Points: []PointSpec{{Cycles: 300, Seed: 999}}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue status %d, want 429; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if m := fetchMetrics(t, ts); m.Service.JobsRejected != 1 {
		t.Errorf("jobs_rejected %d, want 1", m.Service.JobsRejected)
	}

	release()
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("queued job finished with status %d", code)
		}
	}
}

// TestSweepClientDisconnectCancels: dropping the connection mid-sweep
// cancels the simulation through the request context; the interrupted
// point checkpoints to disk and the job is accounted as failed.
func TestSweepClientDisconnectCancels(t *testing.T) {
	dir := t.TempDir()
	srv, ts := e2eServer(t, serverConfig{dir: dir, checkpointEvery: 1000})

	spec := PointSpec{Cycles: 2_000_000, Seed: 42} // far longer than the test
	body, _ := json.Marshal(SweepRequest{Points: []PointSpec{spec}})
	pts, err := compileRequest(SweepRequest{Points: []PointSpec{spec}}, srv.mesh, specLimits{}, false)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	fp := pts[0].Fingerprint

	started := make(chan struct{})
	srv.onCompute = func(string) { close(started) }

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep", bytes.NewReader(body))
	done := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()

	<-started
	cancel() // client walks away mid-simulation

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("request did not settle after cancellation")
	}

	// The server notices, fails the job and checkpoints the point.
	ckpt := filepath.Join(dir, fp+".ckpt")
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := fetchMetrics(t, ts)
		if _, err := os.Stat(ckpt); err == nil &&
			m.Service.JobsFailed == 1 && m.Service.QueueDepth == 0 && m.Service.ActiveJobs == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancellation never drained: metrics %+v, checkpoint err %v", m, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSweepResumeAfterRestart: a checkpoint left by an interrupted run
// is picked up by a freshly started server for the same spec, and the
// resumed result is bit-identical to an uninterrupted run.
func TestSweepResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	mesh := newServer(context.Background(), serverConfig{}).mesh
	spec := PointSpec{Workload: "uniform", Cycles: 6000, Seed: 5}
	req := SweepRequest{Points: []PointSpec{spec}}
	pts, err := compileRequest(req, mesh, specLimits{}, false)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	pt := pts[0]
	ckpt := filepath.Join(dir, pt.Fingerprint+".ckpt")

	// Interrupt a run deterministically mid-flight: an observer cancels
	// the context at cycle 2000, and RunCheckpointed saves on the way
	// out.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := pt.Run(ctx, experiments.CheckpointSpec{
		Path: ckpt, Every: 1000, Resume: true,
		OnNetwork: func(n *noc.Network) {
			n.AttachObserver(&cancelAt{cancel: cancel, cycle: 2000})
		},
	})
	if err == nil || !res.Interrupted {
		t.Fatalf("priming run: err=%v interrupted=%v, want an interruption", err, res.Interrupted)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after interruption: %v", err)
	}

	// "Restart": a brand-new server over the same checkpoint dir
	// completes the point from the checkpoint.
	_, ts := e2eServer(t, serverConfig{dir: dir, checkpointEvery: 1000})
	resp, body := postSweep(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed sweep status %d: %s", resp.StatusCode, body)
	}
	if _, err := validateNDJSON(body, 1); err != nil {
		t.Fatalf("resumed response: %v\n%s", err, body)
	}

	// The checkpoint contract: resumed == uninterrupted, bit for bit.
	fresh, err := pt.Run(context.Background(), experiments.CheckpointSpec{})
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	freshBlob, _ := experiments.MarshalResult(fresh)
	for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var rec streamLine
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Type != "outcome" {
			continue
		}
		gotBlob, _ := experiments.MarshalResult(*rec.Result)
		if !bytes.Equal(gotBlob, freshBlob) {
			t.Errorf("resumed result diverges from an uninterrupted run\nresumed: %s\nfresh:   %s",
				gotBlob, freshBlob)
		}
	}
}

// cancelAt cancels a context once the simulation reaches a cycle.
type cancelAt struct {
	noc.BaseObserver
	cancel context.CancelFunc
	cycle  int64
	fired  bool
}

func (c *cancelAt) FlitSent(router, outPort int, now int64) {
	if !c.fired && now >= c.cycle {
		c.fired = true
		c.cancel()
	}
}

// TestRealMainFlagValidation: bad flags exit 2 and name the problem.
func TestRealMainFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-queue", "0"}, "-queue must be positive"},
		{[]string{"-active", "-1"}, "-active must be positive"},
		{[]string{"-retries", "-2"}, "-retries must be non-negative"},
		{[]string{"-max-points", "0"}, "-max-points must be positive"},
		{[]string{"-loadtest", "-requests", "0"}, "-requests must be positive"},
		{[]string{"-loadtest", "-lt-cycles", "0"}, "-lt-cycles must be positive"},
		{[]string{"-nonsense"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if code := realMain(tc.args, &out, &errb); code != 2 {
			t.Errorf("realMain(%v) = %d, want 2", tc.args, code)
		}
		if !strings.Contains(errb.String(), tc.want) {
			t.Errorf("realMain(%v) stderr %q does not contain %q", tc.args, errb.String(), tc.want)
		}
	}
}

// TestLoadSoak is the in-test load soak: hundreds of colliding requests
// against an in-process instance, every invariant checked. The CI
// rfsimd-soak job runs the binary flavor with the full 1000-request
// budget.
func TestLoadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("load soak")
	}
	f := daemonFlags{
		queue: 16, active: 2, maxPoints: 8, cacheEntries: 4096,
		checkpointEvery: 10000,
		loadtest:        true, requests: 300, clients: 32, unique: 30, ltCycles: 200,
	}
	var out bytes.Buffer
	if err := runLoadtest(&f, &out, &out); err != nil {
		t.Fatalf("load soak failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all invariants held") {
		t.Errorf("soak output missing the invariant verdict:\n%s", out.String())
	}
	t.Logf("\n%s", out.String())
}
