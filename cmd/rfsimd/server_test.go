package main

// End-to-end tests of the sweep service over real HTTP (httptest):
// happy-path streaming, spec validation, admission control under a full
// queue, mid-stream client disconnect cancelling the simulation, and
// resume-after-restart from the checkpoint directory.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/noc"
)

func e2eServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(context.Background(), cfg)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	t.Cleanup(srv.close)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postSweep(t *testing.T, ts *httptest.Server, req SweepRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweep: %v", err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, blob
}

func fetchMetrics(t *testing.T, ts *httptest.Server) (snap struct {
	Service struct {
		JobsAdmitted    int64 `json:"jobs_admitted"`
		JobsRejected    int64 `json:"jobs_rejected"`
		JobsShedBatch   int64 `json:"jobs_shed_batch"`
		JobsQuarantined int64 `json:"jobs_quarantined"`
		JobsCompleted   int64 `json:"jobs_completed"`
		JobsFailed      int64 `json:"jobs_failed"`
		QueueDepth      int64 `json:"queue_depth"`
		ActiveJobs      int64 `json:"active_jobs"`
	} `json:"service"`
}) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	return snap
}

// TestSweepHappyPath: a two-point sweep streams one well-formed outcome
// per point plus a summary; a repeat request is served from the cache.
func TestSweepHappyPath(t *testing.T) {
	_, ts := e2eServer(t, serverConfig{})
	req := SweepRequest{Points: []PointSpec{
		{Workload: "uniform", Cycles: 300, Seed: 7},
		{Design: "static", Workload: "bidf", Cycles: 300, Seed: 8},
	}}

	resp, body := postSweep(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	fps, err := validateNDJSON(body, len(req.Points))
	if err != nil {
		t.Fatalf("first response: %v\n%s", err, body)
	}
	if fps[0] == fps[1] {
		t.Errorf("distinct specs share fingerprint %s", fps[0])
	}

	// Decode the outcomes for content checks.
	var first []streamLine
	for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var rec streamLine
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("unmarshal %s: %v", line, err)
		}
		if rec.Type == "outcome" {
			if rec.Cached {
				t.Errorf("point %d cached on a cold cache", rec.Index)
			}
			if rec.Result.Stats.FlitsEjected == 0 {
				t.Errorf("point %d delivered no flits", rec.Index)
			}
			first = append(first, rec)
		}
	}

	// Repeat: everything is a hit with identical results.
	resp2, body2 := postSweep(t, ts, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	if _, err := validateNDJSON(body2, len(req.Points)); err != nil {
		t.Fatalf("repeat response: %v", err)
	}
	for _, line := range bytes.Split(bytes.TrimSpace(body2), []byte("\n")) {
		var rec streamLine
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Type != "outcome" {
			continue
		}
		if !rec.Cached || rec.Attempts != 0 {
			t.Errorf("repeat point %d not cached (cached=%v attempts=%d)", rec.Index, rec.Cached, rec.Attempts)
		}
		for _, f := range first {
			if f.Index == rec.Index && !reflect.DeepEqual(f.Result, rec.Result) {
				t.Errorf("repeat point %d result diverges from the computed one", rec.Index)
			}
		}
	}

	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %v status %v", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestSweepBadRequest: malformed specs get a 400 naming every problem at
// once (joined Config.Validate and spec errors), and unknown JSON fields
// are rejected.
func TestSweepBadRequest(t *testing.T) {
	_, ts := e2eServer(t, serverConfig{maxCycles: 1000})

	decodeErr := func(body []byte) string {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("error body %s not JSON: %v", body, err)
		}
		return e.Error
	}

	resp, body := postSweep(t, ts, SweepRequest{Points: []PointSpec{{
		Design:   "quantum",  // unknown design
		Workload: "webscale", // unknown workload
		Cycles:   9999,       // over the server cap
		Rate:     -1,         // negative
		BufDepth: -3,         // rejected by noc.Config.Validate
	}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
	msg := decodeErr(body)
	for _, want := range []string{"quantum", "webscale", "cycles 9999", "rate must be non-negative"} {
		if !strings.Contains(msg, want) {
			t.Errorf("400 error %q does not name %q", msg, want)
		}
	}

	// The config-level error (negative BufDepth) surfaces once the
	// spec-level fields parse.
	resp, body = postSweep(t, ts, SweepRequest{Points: []PointSpec{{Cycles: 300, BufDepth: -3}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
	if msg := decodeErr(body); !strings.Contains(msg, "buffer depth") && !strings.Contains(msg, "BufDepth") {
		t.Errorf("400 error %q does not mention the invalid buffer depth", msg)
	}

	// Empty sweeps and unknown fields are 400s too.
	resp, body = postSweep(t, ts, SweepRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sweep: status %d, want 400", resp.StatusCode)
	}
	if msg := decodeErr(body); !strings.Contains(msg, "no points") {
		t.Errorf("empty-sweep error %q", msg)
	}
	raw := bytes.NewReader([]byte(`{"points":[{"wrokload":"uniform"}]}`))
	resp2, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", raw)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("misspelled field: status %d, want 400", resp2.StatusCode)
	}
}

// TestSweepQueueFull429: with the queue at capacity, a further request
// is rejected with 429 + Retry-After and the queued jobs still complete.
func TestSweepQueueFull429(t *testing.T) {
	srv, ts := e2eServer(t, serverConfig{maxQueue: 2, maxActive: 1})

	gate := make(chan struct{})
	var entered, released sync.Once
	enteredCh := make(chan struct{})
	release := func() { released.Do(func() { close(gate) }) }
	defer release()
	srv.onCompute = func(string) {
		entered.Do(func() { close(enteredCh) })
		<-gate
	}

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(seed int64) {
			resp, _ := postSweep(t, ts, SweepRequest{Points: []PointSpec{
				{Cycles: 300, Seed: seed},
			}})
			results <- resp.StatusCode
		}(int64(100 + i))
	}

	// Wait until one job is computing (holding the run slot) and both
	// hold queue tokens.
	<-enteredCh
	deadline := time.Now().Add(5 * time.Second)
	for fetchMetrics(t, ts).Service.JobsAdmitted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second job never admitted")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, body := postSweep(t, ts, SweepRequest{Points: []PointSpec{{Cycles: 300, Seed: 999}}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue status %d, want 429; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if m := fetchMetrics(t, ts); m.Service.JobsRejected != 1 {
		t.Errorf("jobs_rejected %d, want 1", m.Service.JobsRejected)
	}

	release()
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("queued job finished with status %d", code)
		}
	}
}

// TestSweepClientDisconnectCancels: dropping the connection mid-sweep
// cancels the simulation through the request context; the interrupted
// point checkpoints to disk and the job is accounted as failed.
func TestSweepClientDisconnectCancels(t *testing.T) {
	dir := t.TempDir()
	srv, ts := e2eServer(t, serverConfig{dir: dir, checkpointEvery: 1000})

	spec := PointSpec{Cycles: 2_000_000, Seed: 42} // far longer than the test
	body, _ := json.Marshal(SweepRequest{Points: []PointSpec{spec}})
	pts, err := compileRequest(SweepRequest{Points: []PointSpec{spec}}, srv.mesh, specLimits{}, false)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	fp := pts[0].Fingerprint

	started := make(chan struct{})
	srv.onCompute = func(string) { close(started) }

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep", bytes.NewReader(body))
	done := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()

	<-started
	cancel() // client walks away mid-simulation

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("request did not settle after cancellation")
	}

	// The server notices, fails the job and checkpoints the point.
	ckpt := filepath.Join(dir, fp+".ckpt")
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := fetchMetrics(t, ts)
		if _, err := os.Stat(ckpt); err == nil &&
			m.Service.JobsFailed == 1 && m.Service.QueueDepth == 0 && m.Service.ActiveJobs == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancellation never drained: metrics %+v, checkpoint err %v", m, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSweepResumeAfterRestart: a checkpoint left by an interrupted run
// is picked up by a freshly started server for the same spec, and the
// resumed result is bit-identical to an uninterrupted run.
func TestSweepResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	meshSrv, err := newServer(context.Background(), serverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mesh := meshSrv.mesh
	spec := PointSpec{Workload: "uniform", Cycles: 6000, Seed: 5}
	req := SweepRequest{Points: []PointSpec{spec}}
	pts, err := compileRequest(req, mesh, specLimits{}, false)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	pt := pts[0]
	ckpt := filepath.Join(dir, pt.Fingerprint+".ckpt")

	// Interrupt a run deterministically mid-flight: an observer cancels
	// the context at cycle 2000, and RunCheckpointed saves on the way
	// out.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := pt.Run(ctx, experiments.CheckpointSpec{
		Path: ckpt, Every: 1000, Resume: true,
		OnNetwork: func(n *noc.Network) {
			n.AttachObserver(&cancelAt{cancel: cancel, cycle: 2000})
		},
	})
	if err == nil || !res.Interrupted {
		t.Fatalf("priming run: err=%v interrupted=%v, want an interruption", err, res.Interrupted)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after interruption: %v", err)
	}

	// "Restart": a brand-new server over the same checkpoint dir
	// completes the point from the checkpoint.
	_, ts := e2eServer(t, serverConfig{dir: dir, checkpointEvery: 1000})
	resp, body := postSweep(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed sweep status %d: %s", resp.StatusCode, body)
	}
	if _, err := validateNDJSON(body, 1); err != nil {
		t.Fatalf("resumed response: %v\n%s", err, body)
	}

	// The checkpoint contract: resumed == uninterrupted, bit for bit.
	fresh, err := pt.Run(context.Background(), experiments.CheckpointSpec{})
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	freshBlob, _ := experiments.MarshalResult(fresh)
	for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var rec streamLine
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Type != "outcome" {
			continue
		}
		gotBlob, _ := experiments.MarshalResult(*rec.Result)
		if !bytes.Equal(gotBlob, freshBlob) {
			t.Errorf("resumed result diverges from an uninterrupted run\nresumed: %s\nfresh:   %s",
				gotBlob, freshBlob)
		}
	}
}

// cancelAt cancels a context once the simulation reaches a cycle.
type cancelAt struct {
	noc.BaseObserver
	cancel context.CancelFunc
	cycle  int64
	fired  bool
}

func (c *cancelAt) FlitSent(router, outPort int, now int64) {
	if !c.fired && now >= c.cycle {
		c.fired = true
		c.cancel()
	}
}

// TestRealMainFlagValidation: bad flags exit 2 and name the problem.
func TestRealMainFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-queue", "0"}, "-queue must be positive"},
		{[]string{"-active", "-1"}, "-active must be positive"},
		{[]string{"-retries", "-2"}, "-retries must be non-negative"},
		{[]string{"-max-points", "0"}, "-max-points must be positive"},
		{[]string{"-loadtest", "-requests", "0"}, "-requests must be positive"},
		{[]string{"-loadtest", "-lt-cycles", "0"}, "-lt-cycles must be positive"},
		{[]string{"-nonsense"}, "flag provided but not defined"},
		{[]string{"-read-header-timeout", "-1s"}, "-read-header-timeout must be non-negative"},
		{[]string{"-read-timeout", "-1s"}, "-read-timeout must be non-negative"},
		{[]string{"-idle-timeout", "-1s"}, "-idle-timeout must be non-negative"},
		{[]string{"-max-deadline", "-1s"}, "-max-deadline must be non-negative"},
		{[]string{"-max-job-cycles", "-1"}, "-max-job-cycles must be non-negative"},
		{[]string{"-interactive-reserve", "32"}, "-interactive-reserve 32 must be smaller than -queue 32"},
		{[]string{"-quarantine-failures", "0"}, "-quarantine-failures must be positive"},
		{[]string{"-quarantine-cooldown", "0s"}, "-quarantine-cooldown must be positive"},
		{[]string{"-gc-max-bytes", "-1"}, "-gc-max-bytes must be non-negative"},
		{[]string{"-gc-max-age", "-1s"}, "-gc-max-age must be non-negative"},
		{[]string{"-gc-interval", "0s"}, "-gc-interval must be positive"},
		{[]string{"-chaos"}, "-chaos requires -loadtest"},
		{[]string{"-worker-mem", "-1"}, "-worker-mem must be non-negative"},
		{[]string{"-worker-deadline", "-1s"}, "-worker-deadline must be non-negative"},
		{[]string{"-worker-mem", "1048576"}, "-worker-mem requires -isolate"},
		{[]string{"-worker-deadline", "30s"}, "-worker-deadline requires -isolate"},
		{[]string{"-results-keep", "-1s"}, "-results-keep must be non-negative"},
		{[]string{"-results-sync", "-1"}, "-results-sync must be non-negative"},
		{[]string{"-resume-storm"}, "-resume-storm requires -loadtest"},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if code := realMain(tc.args, &out, &errb); code != 2 {
			t.Errorf("realMain(%v) = %d, want 2", tc.args, code)
		}
		if !strings.Contains(errb.String(), tc.want) {
			t.Errorf("realMain(%v) stderr %q does not contain %q", tc.args, errb.String(), tc.want)
		}
	}
}

// TestLoadSoak is the in-test load soak: hundreds of colliding requests
// against an in-process instance, every invariant checked. The CI
// rfsimd-soak job runs the binary flavor with the full 1000-request
// budget.
func TestLoadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("load soak")
	}
	f := daemonFlags{
		queue: 16, active: 2, maxPoints: 8, cacheEntries: 4096,
		checkpointEvery: 10000,
		loadtest:        true, requests: 300, clients: 32, unique: 30, ltCycles: 200,
	}
	var out bytes.Buffer
	if err := runLoadtest(&f, &out, &out); err != nil {
		t.Fatalf("load soak failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all invariants held") {
		t.Errorf("soak output missing the invariant verdict:\n%s", out.String())
	}
	t.Logf("\n%s", out.String())
}

// decodeStream splits an NDJSON body into records for content checks.
func decodeStream(t *testing.T, body []byte) []streamLine {
	t.Helper()
	var recs []streamLine
	for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var rec streamLine
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("unmarshal %s: %v", line, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestSweepDeadline: a request-level deadline (spec field or header)
// interrupts a long sweep — the stream still terminates with a summary
// naming the deadline, and the slots drain.
func TestSweepDeadline(t *testing.T) {
	_, ts := e2eServer(t, serverConfig{})
	long := PointSpec{Cycles: 2_000_000, Seed: 42}

	// Spec field.
	resp, body := postSweep(t, ts, SweepRequest{Points: []PointSpec{long}, DeadlineMS: 50})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (stream already started)", resp.StatusCode)
	}
	var sawSummary bool
	for _, rec := range decodeStream(t, body) {
		switch rec.Type {
		case "outcome":
			if rec.Error == "" {
				t.Errorf("2M-cycle point finished under a 50ms deadline?")
			}
		case "summary":
			sawSummary = true
			if !strings.Contains(rec.Error, "deadline") {
				t.Errorf("summary error %q does not name the deadline", rec.Error)
			}
		}
	}
	if !sawSummary {
		t.Fatal("deadline-expired stream has no terminal summary line")
	}

	// Header fallback.
	blob, _ := json.Marshal(SweepRequest{Points: []PointSpec{{Cycles: 2_000_000, Seed: 43}}})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sweep", bytes.NewReader(blob))
	req.Header.Set("X-Sweep-Deadline-Ms", "50")
	hr, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || !bytes.Contains(hbody, []byte("deadline")) {
		t.Errorf("header deadline: status %d, body %s", hr.StatusCode, hbody)
	}

	// Negative deadlines are a client error.
	resp, _ = postSweep(t, ts, SweepRequest{Points: []PointSpec{long}, DeadlineMS: -5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative deadline: status %d, want 400", resp.StatusCode)
	}

	// No stranded state once the deadline fired.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := fetchMetrics(t, ts)
		if m.Service.QueueDepth == 0 && m.Service.ActiveJobs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slots not drained after deadline expiry: %+v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSweepMaxDeadlineClamp: the server-side -max-deadline bounds even
// requests that asked for no deadline at all.
func TestSweepMaxDeadlineClamp(t *testing.T) {
	_, ts := e2eServer(t, serverConfig{maxDeadline: 50 * time.Millisecond})
	resp, body := postSweep(t, ts, SweepRequest{Points: []PointSpec{{Cycles: 2_000_000, Seed: 44}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("deadline")) {
		t.Errorf("undated request not clamped by -max-deadline:\n%s", body)
	}
}

// TestSweepPriorityShed: batch jobs are shed once only the interactive
// reserve remains, while interactive jobs still get in; /readyz flips
// unready at the same watermark.
func TestSweepPriorityShed(t *testing.T) {
	srv, ts := e2eServer(t, serverConfig{maxQueue: 2, interactiveReserve: 1, maxActive: 1})

	gate := make(chan struct{})
	var entered, released sync.Once
	enteredCh := make(chan struct{})
	release := func() { released.Do(func() { close(gate) }) }
	defer release()
	srv.onCompute = func(string) {
		entered.Do(func() { close(enteredCh) })
		<-gate
	}

	readyz := func() int {
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatalf("GET /readyz: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := readyz(); code != http.StatusOK {
		t.Fatalf("idle readyz = %d, want 200", code)
	}

	// One interactive job occupies the batch headroom (batchMax = 1).
	results := make(chan int, 2)
	go func() {
		resp, _ := postSweep(t, ts, SweepRequest{Points: []PointSpec{{Cycles: 300, Seed: 201}}})
		results <- resp.StatusCode
	}()
	<-enteredCh

	if code := readyz(); code != http.StatusServiceUnavailable {
		t.Errorf("readyz at the batch watermark = %d, want 503", code)
	}

	// Batch is shed with a Retry-After; interactive still gets the
	// reserved slot.
	resp, body := postSweep(t, ts, SweepRequest{Points: []PointSpec{{Cycles: 300, Seed: 202}}, Priority: "batch"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch at watermark: status %d, want 429; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("batch 429 without Retry-After")
	}
	if m := fetchMetrics(t, ts); m.Service.JobsShedBatch != 1 {
		t.Errorf("jobs_shed_batch = %d, want 1", m.Service.JobsShedBatch)
	}

	go func() {
		resp, _ := postSweep(t, ts, SweepRequest{Points: []PointSpec{{Cycles: 300, Seed: 203}}})
		results <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for fetchMetrics(t, ts).Service.JobsAdmitted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("interactive job not admitted into the reserve")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Now the queue is truly full: even interactive is rejected.
	resp, _ = postSweep(t, ts, SweepRequest{Points: []PointSpec{{Cycles: 300, Seed: 204}}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("interactive past the full queue: status %d, want 429", resp.StatusCode)
	}

	release()
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("admitted job finished with status %d", code)
		}
	}
	if code := readyz(); code != http.StatusOK {
		t.Errorf("drained readyz = %d, want 200", code)
	}

	// Unknown priorities are a client error, and the header works too.
	resp, _ = postSweep(t, ts, SweepRequest{Points: []PointSpec{{Cycles: 300, Seed: 205}}, Priority: "urgent"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("priority 'urgent': status %d, want 400", resp.StatusCode)
	}
	blob, _ := json.Marshal(SweepRequest{Points: []PointSpec{{Cycles: 300, Seed: 206}}})
	hreq, _ := http.NewRequest("POST", ts.URL+"/v1/sweep", bytes.NewReader(blob))
	hreq.Header.Set("X-Priority", "batch")
	hresp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("idle batch via X-Priority: status %d, want 200", hresp.StatusCode)
	}
}

// TestSweepCostCeiling: the summed admission-time cost estimate gates
// oversized sweeps with 413 before they claim any slot.
func TestSweepCostCeiling(t *testing.T) {
	_, ts := e2eServer(t, serverConfig{maxJobCycles: 2000})

	// One 300-cycle point estimates ~1.4k cycles: under the ceiling.
	resp, body := postSweep(t, ts, SweepRequest{Points: []PointSpec{{Cycles: 300, Seed: 301}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small sweep: status %d, body %s", resp.StatusCode, body)
	}

	// Two of them overflow it.
	resp, body = postSweep(t, ts, SweepRequest{Points: []PointSpec{
		{Cycles: 300, Seed: 302}, {Cycles: 300, Seed: 303},
	}})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized sweep: status %d, want 413; body %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("ceiling")) {
		t.Errorf("413 body does not name the ceiling: %s", body)
	}
	if m := fetchMetrics(t, ts); m.Service.JobsAdmitted != 1 {
		t.Errorf("rejected sweep consumed an admission slot: admitted %d, want 1", m.Service.JobsAdmitted)
	}
}

// TestSweepQuarantine: K panicking jobs trip the config's breaker; the
// next request is answered 422 with the crash-dump evidence and is NOT
// re-simulated; after the cooldown a probe closes the breaker again.
func TestSweepQuarantine(t *testing.T) {
	dir := t.TempDir()
	srv, ts := e2eServer(t, serverConfig{
		dir: dir, retries: 0, quarK: 2, quarCooldown: 200 * time.Millisecond,
	})

	spec := PointSpec{Cycles: 300, Seed: 401}
	pts, err := compileRequest(SweepRequest{Points: []PointSpec{spec}}, srv.mesh, specLimits{}, false)
	if err != nil {
		t.Fatal(err)
	}
	cfgFP, pointFP := pts[0].Meta["config"], pts[0].Fingerprint
	if cfgFP == "" {
		t.Fatal("compiled point carries no config fingerprint")
	}

	var panicOn atomic.Bool
	panicOn.Store(true)
	srv.chaosPanic = func(fp string) bool { return panicOn.Load() && fp == cfgFP }
	var computes atomic.Int64
	srv.onCompute = func(string) { computes.Add(1) }

	req := SweepRequest{Points: []PointSpec{spec}}
	for i := 0; i < 2; i++ {
		resp, body := postSweep(t, ts, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("panicking job %d: status %d (stream should still open)", i, resp.StatusCode)
		}
		var sawDump bool
		for _, rec := range decodeStream(t, body) {
			if rec.Type == "outcome" {
				if rec.Error == "" {
					t.Fatalf("panicking job %d reported success", i)
				}
				sawDump = rec.CrashDump != ""
			}
		}
		if !sawDump {
			t.Errorf("panicking job %d has no crash-dump reference", i)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, pointFP+".crash.json")); err != nil {
		t.Errorf("crash dump not on disk: %v", err)
	}

	// Tripped: 422 with the evidence, no recompute.
	before := computes.Load()
	resp, body := postSweep(t, ts, req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined config: status %d, want 422; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("422 without Retry-After")
	}
	var envelope struct {
		Error     string `json:"error"`
		Config    string `json:"config"`
		CrashDump string `json:"crash_dump"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("422 body not JSON: %v", err)
	}
	if envelope.Config != cfgFP || envelope.CrashDump == "" {
		t.Errorf("422 evidence incomplete: %+v", envelope)
	}
	if got := computes.Load(); got != before {
		t.Errorf("quarantined request re-simulated: %d -> %d computes", before, got)
	}
	if m := fetchMetrics(t, ts); m.Service.JobsQuarantined != 1 {
		t.Errorf("jobs_quarantined = %d, want 1", m.Service.JobsQuarantined)
	}

	// After the cooldown the config is healthy again (the panic seam is
	// off): the single probe closes the breaker and results flow.
	panicOn.Store(false)
	time.Sleep(250 * time.Millisecond)
	resp, body = postSweep(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("half-open probe: status %d, body %s", resp.StatusCode, body)
	}
	if _, err := validateNDJSON(body, 1); err != nil {
		t.Fatalf("probe response: %v\n%s", err, body)
	}
	if srv.quar.quarantined(cfgFP) {
		t.Error("breaker still open after a successful probe")
	}
	resp, body = postSweep(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-recovery request: status %d, body %s", resp.StatusCode, body)
	}
}

// TestReadyzDraining: both health endpoints go 503 when the server
// drains.
func TestReadyzDraining(t *testing.T) {
	srv, ts := e2eServer(t, serverConfig{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := ts.Client().Get(ts.URL + ep)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s before drain: %v %v", ep, err, resp.StatusCode)
		}
		resp.Body.Close()
	}
	srv.draining.Store(true)
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := ts.Client().Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s while draining = %d, want 503", ep, resp.StatusCode)
		}
	}
}

// TestServiceChaos is the in-test service-chaos run: all five fault
// kinds over an in-process instance, every self-protection invariant
// checked. The CI rfsimd-chaos job runs the binary flavor with the
// full 500-request budget.
func TestServiceChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("service chaos")
	}
	f := daemonFlags{
		queue: 16, active: 2, maxPoints: 8, cacheEntries: 4096,
		checkpointEvery: 500, retries: 1, intReserve: 4,
		quarFailures: 2, maxJobCycles: 500_000,
		readHeaderTimeout: 500 * time.Millisecond,
		readTimeout:       30 * time.Second,
		idleTimeout:       30 * time.Second,
		loadtest:          true, chaos: true, chaosSeed: 7,
		requests: 150, clients: 16, unique: 20, ltCycles: 200,
	}
	var out bytes.Buffer
	if err := runChaos(&f, &out, &out); err != nil {
		t.Fatalf("service chaos failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all invariants held") {
		t.Errorf("chaos output missing the invariant verdict:\n%s", out.String())
	}
	t.Logf("\n%s", out.String())
}
