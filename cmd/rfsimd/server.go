package main

// The HTTP layer of the sweep service. One POST /v1/sweep call is one
// job: it passes admission control (bounded queue, 429 past the bound),
// waits for a run slot, fans its points across the checkpoint-backed
// supervisor worker pool, and streams per-point outcomes back as NDJSON
// while later points are still running. The content-addressed result
// cache (internal/sweepcache) is shared by all jobs, so colliding
// points — the common case at service scale — are computed once and
// single-flighted while in flight.
//
// Admission/queue state machine (see DESIGN.md "Sweep as a service"):
//
//	request --(queue token free)--> QUEUED --(run slot free)--> RUNNING
//	    \--(queue full)--> 429                 |
//	                                           v
//	             DONE (summary line) <--- streaming outcomes
//
// A client disconnect or server drain cancels the job's context at any
// state; running points checkpoint and the queue/run tokens are
// released.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sweepcache"
	"repro/internal/topology"
)

// serverConfig tunes one service instance.
type serverConfig struct {
	// maxQueue bounds admitted-but-unfinished jobs (queued + running);
	// requests past it get 429.
	maxQueue int
	// maxActive bounds concurrently running sweeps; admitted jobs past
	// it wait in the queue.
	maxActive int
	// workers is the supervisor pool size per running sweep (0 = package
	// default).
	workers int
	// retries is the per-point retry budget.
	retries int
	// pointTimeout bounds each point attempt (0 = none).
	pointTimeout time.Duration
	// checkpointEvery is the auto-checkpoint cadence in cycles.
	checkpointEvery int64
	// dir holds checkpoints and crash dumps ("" disables both).
	dir string
	// maxPoints and maxCycles cap one request's demand.
	maxPoints int
	maxCycles int64
	// cacheEntries bounds the result cache (0 = unbounded).
	cacheEntries int
	// check arms the invariant checker on every point.
	check bool
}

func (c serverConfig) withDefaults() serverConfig {
	if c.maxQueue <= 0 {
		c.maxQueue = 32
	}
	if c.maxActive <= 0 {
		c.maxActive = 2
	}
	if c.maxPoints <= 0 {
		c.maxPoints = 256
	}
	if c.checkpointEvery == 0 {
		c.checkpointEvery = 10000
	}
	return c
}

// server is one service instance: shared cache, metrics and admission
// tokens over a mesh topology.
type server struct {
	cfg     serverConfig
	mesh    *topology.Mesh
	cache   *sweepcache.Cache
	metrics *obs.ServiceMetrics

	queueTok chan struct{} // admission bound: queued + running jobs
	runTok   chan struct{} // concurrency bound: running jobs

	// drainCtx is cancelled on graceful shutdown: running points
	// checkpoint and return Interrupted, and new requests are refused.
	drainCtx context.Context
	draining atomic.Bool

	// onCompute, when non-nil, observes every actual simulation attempt
	// with the point's fingerprint — the load-test harness's
	// exactly-once probe.
	onCompute func(fingerprint string)
}

func newServer(drainCtx context.Context, cfg serverConfig) *server {
	cfg = cfg.withDefaults()
	return &server{
		cfg:      cfg,
		mesh:     topology.New10x10(),
		cache:    sweepcache.New(cfg.cacheEntries),
		metrics:  obs.NewServiceMetrics(),
		queueTok: make(chan struct{}, cfg.maxQueue),
		runTok:   make(chan struct{}, cfg.maxActive),
		drainCtx: drainCtx,
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// outcomeLine and summaryLine are the two NDJSON record shapes of a
// sweep response: one "outcome" per requested point, in completion
// order, then exactly one "summary". streamLine is their decode-side
// union (the loadtest harness and tests read responses through it).
type outcomeLine struct {
	Type        string              `json:"type"` // "outcome"
	Index       int                 `json:"index"`
	ID          string              `json:"id"`
	Fingerprint string              `json:"fingerprint"`
	Cached      bool                `json:"cached"`
	Attempts    int                 `json:"attempts"`
	Error       string              `json:"error,omitempty"`
	CrashDump   string              `json:"crash_dump,omitempty"`
	Result      *experiments.Result `json:"result,omitempty"`
}

type summaryLine struct {
	Type         string  `json:"type"` // "summary"
	Points       int     `json:"points"`
	Failed       int     `json:"failed"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	ElapsedMS    int64   `json:"elapsed_ms"`
	Error        string  `json:"error,omitempty"`
}

type streamLine struct {
	Type        string              `json:"type"`
	Index       int                 `json:"index"`
	ID          string              `json:"id"`
	Fingerprint string              `json:"fingerprint"`
	Cached      bool                `json:"cached"`
	Attempts    int                 `json:"attempts"`
	Error       string              `json:"error"`
	CrashDump   string              `json:"crash_dump"`
	Result      *experiments.Result `json:"result"`
	Points      int                 `json:"points"`
	Failed      int                 `json:"failed"`
}

// httpError is the JSON error envelope for non-streaming failures.
func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Service obs.ServiceSnapshot `json:"service"`
		Cache   sweepcache.Stats    `json:"cache"`
	}{s.metrics.Snapshot(), s.cache.Stats()})
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid sweep request: %v", err)
		return
	}
	pts, err := compileRequest(req, s.mesh,
		specLimits{maxPoints: s.cfg.maxPoints, maxCycles: s.cfg.maxCycles}, s.cfg.check)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid sweep spec: %v", err)
		return
	}

	// Admission control: a free queue token or a 429, never blocking.
	select {
	case s.queueTok <- struct{}{}:
	default:
		s.metrics.JobRejected()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "job queue full (%d queued or running)", s.cfg.maxQueue)
		return
	}
	s.metrics.JobAdmitted()
	defer func() { <-s.queueTok }()

	// The job dies with the client connection or a server drain,
	// whichever comes first; either way running points checkpoint.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.drainCtx, cancel)
	defer stop()

	// Queued: wait for a run slot.
	select {
	case s.runTok <- struct{}{}:
	case <-ctx.Done():
		s.metrics.JobDone(false, true)
		httpError(w, http.StatusServiceUnavailable, "cancelled while queued: %v", ctx.Err())
		return
	}
	s.metrics.JobStarted()
	defer func() { <-s.runTok }()

	failed := s.streamSweep(ctx, w, pts)
	s.metrics.JobDone(true, failed)
}

// streamSweep runs the admitted job and streams NDJSON outcomes.
// Returns whether any point failed.
func (s *server) streamSweep(ctx context.Context, w http.ResponseWriter, pts []experiments.SweepPoint) bool {
	start := time.Now()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var mu sync.Mutex // serializes stream writes from supervisor workers
	enc := json.NewEncoder(w)
	emit := func(line interface{}) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Per-point wall clocks, written by the instrumented Run wrappers
	// (cache hits never run, so their latency stays 0 — honest: a hit
	// costs nothing).
	walls := make([]atomic.Int64, len(pts))
	for i := range pts {
		i, orig := i, pts[i].Run
		fp := pts[i].Fingerprint
		pts[i].Run = func(ctx context.Context, spec experiments.CheckpointSpec) (experiments.Result, error) {
			if s.onCompute != nil {
				s.onCompute(fp)
			}
			t0 := time.Now()
			res, err := orig(ctx, spec)
			walls[i].Store(int64(time.Since(t0)))
			return res, err
		}
	}

	var failures atomic.Int64
	sc := experiments.SuperviseConfig{
		Workers:         s.cfg.workers,
		Retries:         s.cfg.retries,
		PointTimeout:    s.cfg.pointTimeout,
		Dir:             s.cfg.dir,
		CheckpointEvery: s.cfg.checkpointEvery,
		Cache:           s.cache,
		OnOutcome: func(i int, o experiments.PointOutcome) {
			s.metrics.PointDone(o.Cached, o.Err != nil, time.Duration(walls[i].Load()))
			line := outcomeLine{
				Type:        "outcome",
				Index:       i,
				ID:          o.ID,
				Fingerprint: o.Fingerprint,
				Cached:      o.Cached,
				Attempts:    o.Attempts,
				CrashDump:   o.CrashDump,
			}
			if o.Err != nil {
				failures.Add(1)
				line.Error = o.Err.Error()
			} else {
				line.Result = &o.Result
			}
			emit(line)
		},
	}
	_, err := experiments.Supervise(ctx, sc, pts)

	summary := summaryLine{
		Type:         "summary",
		Points:       len(pts),
		Failed:       int(failures.Load()),
		CacheHitRate: s.cache.Stats().HitRate(),
		ElapsedMS:    time.Since(start).Milliseconds(),
	}
	if err != nil && errors.Is(err, ctx.Err()) && ctx.Err() != nil {
		summary.Error = fmt.Sprintf("sweep interrupted: %v", err)
	}
	emit(summary)
	return err != nil
}
