package main

// The HTTP layer of the sweep service. One POST /v1/sweep call is one
// job: it passes admission control (priority-aware bounded queue, 429
// past the bound), waits for a run slot, fans its points across the
// checkpoint-backed supervisor worker pool, and streams per-point
// outcomes back as NDJSON while later points are still running. The
// content-addressed result cache (internal/sweepcache) is shared by all
// jobs, so colliding points — the common case at service scale — are
// computed once and single-flighted while in flight.
//
// Admission/queue state machine (see DESIGN.md "Sweep as a service"):
//
//	request --(admission slot free)--> QUEUED --(run slot free)--> RUNNING
//	    \--(queue full / batch shed)--> 429            |
//	    \--(cost over ceiling)--> 413                  v
//	    \--(config quarantined)--> 422    DONE (summary line) <--- streaming
//
// Self-protection layers added on top of plain admission:
//
//   - Two admission classes. Interactive jobs (the default) may use the
//     whole queue; batch jobs stop at maxQueue-interactiveReserve, so a
//     flood of bulk sweeps can never displace interactive traffic.
//     Every 429 carries a Retry-After derived from the live latency
//     digest (queue depth x p50 point latency / run slots), not a
//     constant.
//   - Per-request deadlines (spec field deadline_ms, falling back to
//     the X-Sweep-Deadline-Ms header, clamped to -max-deadline) wrap
//     the job context before the queue wait, so queue time counts
//     against the budget and an expired job frees its slot instead of
//     simulating for a client that stopped caring.
//   - A per-job simulated-cycle cost ceiling (-max-job-cycles) checked
//     at admission from the points' cost estimates: one giant sweep
//     cannot starve the pool, and the client learns via 413 instead of
//     a stall.
//   - The poison-config quarantine (quarantine.go): configs that keep
//     panicking the simulator are answered 422 with the crash-dump
//     reference instead of being re-run.
//   - In-flight checkpoint/crash-dump pinning, so the disk-quota
//     janitor (internal/janitor) never deletes state a running point is
//     about to save or resume from.
//
// A client disconnect, deadline expiry or server drain cancels the
// job's context at any state; running points checkpoint and the
// admission/run slots are released.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/janitor"
	"repro/internal/obs"
	"repro/internal/sweepcache"
	"repro/internal/topology"
)

// serverConfig tunes one service instance.
type serverConfig struct {
	// maxQueue bounds admitted-but-unfinished jobs (queued + running);
	// requests past it get 429.
	maxQueue int
	// interactiveReserve is the tail of the queue only interactive jobs
	// may use: batch jobs are shed once maxQueue-interactiveReserve
	// slots are taken. Negative means the default (maxQueue/4); zero
	// disables the reserve.
	interactiveReserve int
	// maxActive bounds concurrently running sweeps; admitted jobs past
	// it wait in the queue.
	maxActive int
	// workers is the supervisor pool size per running sweep (0 = package
	// default).
	workers int
	// retries is the per-point retry budget.
	retries int
	// pointTimeout bounds each point attempt (0 = none).
	pointTimeout time.Duration
	// maxDeadline caps (and, when a request names none, imposes) the
	// per-request deadline. Zero leaves undated requests unbounded.
	maxDeadline time.Duration
	// maxJobCycles caps one request's summed cost estimate in simulated
	// cycles (0 = unlimited); requests over it get 413.
	maxJobCycles int64
	// checkpointEvery is the auto-checkpoint cadence in cycles.
	checkpointEvery int64
	// dir holds checkpoints and crash dumps ("" disables both).
	dir string
	// maxPoints and maxCycles cap one request's demand.
	maxPoints int
	maxCycles int64
	// cacheEntries bounds the result cache (0 = unbounded).
	cacheEntries int
	// quarK and quarCooldown tune the poison-config breaker (zero
	// values take the quarantine defaults: 3 failures, 1 minute).
	quarK        int
	quarCooldown time.Duration
	// check arms the invariant checker on every point.
	check bool

	// Crash-only knobs (PR 8).
	//
	// isolate runs every simulation attempt in a supervised child
	// process instead of the daemon's own address space, so an OOM,
	// livelock or runtime corruption in one point kills a worker the
	// pool restarts, never the daemon.
	isolate bool
	// workerMem is the per-worker soft Go memory limit in bytes; a
	// worker whose live heap exceeds it self-terminates with an OOM
	// outcome (0 = no limit).
	workerMem int64
	// workerDeadline is the hard per-attempt wall clock after which a
	// worker is SIGKILLed regardless of heartbeats (0 = none).
	workerDeadline time.Duration
	// workerCommand and workerEnv override the worker argv and extra
	// environment. Empty command means re-exec this executable with
	// -worker; tests point it at the test binary gated by
	// RFSIMD_TEST_WORKER=1.
	workerCommand []string
	workerEnv     []string
	// journalPath enables the durable job journal ("" disables it);
	// journalCompactAt tunes its compaction threshold (0 = default).
	journalPath      string
	journalCompactAt int

	// Exactly-once delivery knobs (PR 9).
	//
	// resultsKeep is how long an idle job's result log stays pinned (and
	// its entry in memory) after the last producer or reader touched it;
	// past it the janitor may collect the log (0 = 5 minutes).
	resultsKeep time.Duration
	// resultsSync is the fsync batch for result-log appends nobody is
	// streaming (journal replay); live streams sync every frame (0 = 16).
	resultsSync int
}

func (c serverConfig) withDefaults() serverConfig {
	if c.maxQueue <= 0 {
		c.maxQueue = 32
	}
	if c.maxActive <= 0 {
		c.maxActive = 2
	}
	if c.maxPoints <= 0 {
		c.maxPoints = 256
	}
	if c.checkpointEvery == 0 {
		c.checkpointEvery = 10000
	}
	if c.interactiveReserve < 0 {
		c.interactiveReserve = c.maxQueue / 4
	}
	if c.interactiveReserve >= c.maxQueue {
		c.interactiveReserve = c.maxQueue - 1
	}
	return c
}

// admission is the priority-aware queue bound: depth counts
// queued-or-running jobs, interactive jobs may fill the whole queue,
// batch jobs only up to batchMax. A channel cannot express two
// watermarks over one counter, so this is a plain mutex-guarded gate.
type admission struct {
	mu       sync.Mutex
	depth    int
	maxQueue int
	batchMax int
}

// tryAdmit claims a slot without blocking; false means shed (429).
func (a *admission) tryAdmit(batch bool) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	limit := a.maxQueue
	if batch {
		limit = a.batchMax
	}
	if a.depth >= limit {
		return false
	}
	a.depth++
	return true
}

func (a *admission) release() {
	a.mu.Lock()
	a.depth--
	a.mu.Unlock()
}

func (a *admission) depthNow() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.depth
}

// server is one service instance: shared cache, metrics, quarantine and
// admission state over a mesh topology.
type server struct {
	cfg     serverConfig
	mesh    *topology.Mesh
	cache   *sweepcache.Cache
	metrics *obs.ServiceMetrics
	quar    *quarantine
	adm     *admission

	// jan, when non-nil, is the disk-quota janitor whose stats are
	// exported via /v1/metrics; its Pinned callback is artifactPinned.
	jan *janitor.Janitor

	// pool, when non-nil (-isolate), executes every point attempt in a
	// supervised worker process.
	pool *experiments.WorkerPool

	// journal, when non-nil (-journal), is the durable job WAL; replay
	// holds the jobs recovered at open until replayJournal drains them.
	journal *journal
	replay  []replayJob

	// jobs is the per-job result-log registry behind exactly-once
	// delivery: stable job IDs, durable outcome frames, cursor resume.
	jobs *jobRegistry

	runTok chan struct{} // concurrency bound: running jobs

	// pins refcounts the point IDs (fingerprints) of admitted jobs, so
	// the janitor never deletes a checkpoint or crash dump an in-flight
	// point may resume from or is about to write.
	pinsMu sync.Mutex
	pins   map[string]int

	// drainCtx is cancelled on graceful shutdown: running points
	// checkpoint and return Interrupted, and new requests are refused.
	drainCtx context.Context
	draining atomic.Bool

	// onCompute, when non-nil, observes every actual simulation attempt
	// with the point's fingerprint — the load-test harness's
	// exactly-once probe.
	onCompute func(fingerprint string)

	// chaosPanic and chaosCheckpointFail are the chaos harness's fault
	// seams, nil in production. chaosPanic(configFingerprint) panics the
	// attempt before the simulator starts (a worker-crash fault);
	// chaosCheckpointFail(pointFingerprint) redirects the checkpoint
	// path under a regular file so every save fails like a full disk.
	chaosPanic          func(configFingerprint string) bool
	chaosCheckpointFail func(pointFingerprint string) bool

	// chaosWorkerJob, when non-nil under -isolate, tags dispatched
	// points with a worker-hostile fault directive ("panic", "alloc",
	// "hang") by point fingerprint.
	chaosWorkerJob func(pointFingerprint string) string
}

func newServer(drainCtx context.Context, cfg serverConfig) (*server, error) {
	cfg = cfg.withDefaults()
	s := &server{
		cfg:     cfg,
		mesh:    topology.New10x10(),
		cache:   sweepcache.New(cfg.cacheEntries),
		metrics: obs.NewServiceMetrics(),
		quar:    newQuarantine(cfg.quarK, cfg.quarCooldown),
		adm: &admission{
			maxQueue: cfg.maxQueue,
			batchMax: cfg.maxQueue - cfg.interactiveReserve,
		},
		runTok:   make(chan struct{}, cfg.maxActive),
		pins:     map[string]int{},
		drainCtx: drainCtx,
	}
	s.jobs = newJobRegistry(cfg.dir, cfg.resultsKeep, cfg.resultsSync, s.metrics)
	if cfg.isolate {
		cmd := cfg.workerCommand
		if len(cmd) == 0 {
			exe, err := os.Executable()
			if err != nil {
				return nil, fmt.Errorf("resolving worker executable: %w", err)
			}
			cmd = []string{exe, "-worker"}
		}
		// Pool size: enough children to feed every run slot's supervisor
		// workers, bounded so -active x -workers cannot fork-bomb the box.
		per := cfg.workers
		if per <= 0 {
			per = runtime.GOMAXPROCS(0)
		}
		n := cfg.maxActive * per
		if n > 16 {
			n = 16
		}
		if n < 1 {
			n = 1
		}
		pool, err := experiments.NewWorkerPool(experiments.WorkerPoolConfig{
			Command:  cmd,
			Env:      cfg.workerEnv,
			Workers:  n,
			MemLimit: cfg.workerMem,
			Deadline: cfg.workerDeadline,
			OnEvent:  s.workerEvent,
			ChaosJob: func(_ *experiments.PointPayload, fp string) string {
				if s.chaosWorkerJob == nil {
					return ""
				}
				return s.chaosWorkerJob(fp)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("worker pool: %w", err)
		}
		s.pool = pool
	}
	if cfg.journalPath != "" {
		j, jobs, err := openJournal(cfg.journalPath, cfg.journalCompactAt)
		if err != nil {
			if s.pool != nil {
				s.pool.Close()
			}
			return nil, err
		}
		s.journal = j
		s.replay = jobs
		for i := int64(0); i < j.Stats().TornSkipped; i++ {
			s.metrics.JournalTornSkipped()
		}
	}
	return s, nil
}

// workerEvent bridges pool lifecycle events into the service metrics.
func (s *server) workerEvent(e experiments.WorkerEvent) {
	switch e {
	case experiments.WorkerSpawned:
		s.metrics.WorkerSpawned()
	case experiments.WorkerCrashed:
		s.metrics.WorkerCrashed()
	case experiments.WorkerKilledHeartbeat:
		s.metrics.WorkerKilledHeartbeat()
	case experiments.WorkerKilledDeadline:
		s.metrics.WorkerKilledDeadline()
	case experiments.WorkerOOM:
		s.metrics.WorkerOOM()
	case experiments.WorkerRestartBackoff:
		s.metrics.WorkerRestartBackoff()
	}
}

// compactJournal is the janitor's Compact hook: fold the WAL once
// enough settled records accumulate, and forget idle job entries past
// the keep window (their *.results files then unpin for the sweep that
// follows).
func (s *server) compactJournal() {
	s.jobs.prune()
	if s.journal == nil {
		return
	}
	if s.journal.CompactIfNeeded() {
		s.metrics.JournalCompacted()
	}
}

// close releases the server's process-level resources (worker pool,
// journal handle, result-log handles). Open journal entries and result
// logs stay on disk for replay and resume.
func (s *server) close() {
	if s.pool != nil {
		s.pool.Close()
	}
	if s.journal != nil {
		s.journal.Close()
	}
	s.jobs.closeAll()
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// pinArtifacts pins the given point IDs for the janitor and returns the
// matching unpin.
func (s *server) pinArtifacts(ids []string) (unpin func()) {
	s.pinsMu.Lock()
	for _, id := range ids {
		s.pins[id]++
	}
	s.pinsMu.Unlock()
	return func() {
		s.pinsMu.Lock()
		for _, id := range ids {
			if s.pins[id]--; s.pins[id] <= 0 {
				delete(s.pins, id)
			}
		}
		s.pinsMu.Unlock()
	}
}

// artifactPinned is the janitor's Pinned callback: a checkpoint or
// crash dump whose base name is an in-flight point ID must survive, and
// a result log must survive while its job is live or recently read.
func (s *server) artifactPinned(name string) bool {
	if strings.HasSuffix(name, resultLogSuffix) {
		return s.jobs.resultPinned(name)
	}
	id := strings.TrimSuffix(strings.TrimSuffix(name, ".ckpt"), ".crash.json")
	s.pinsMu.Lock()
	defer s.pinsMu.Unlock()
	return s.pins[id] > 0
}

// pinCount reports live pins (a post-drain invariant: zero).
func (s *server) pinCount() int {
	s.pinsMu.Lock()
	defer s.pinsMu.Unlock()
	return len(s.pins)
}

// outcomeLine and summaryLine are the two NDJSON record shapes of a
// sweep response: one "outcome" per requested point, in completion
// order, then exactly one "summary". Since PR 9 a stream may also open
// with a "job" line (jobLine) and end with an "idle" line (idleLine),
// and durable lines carry a seq — the 1-based position of the frame in
// the job's result log, the cursor a client resumes from. A line with
// no seq is transient (a failure, or a duplicate computation's view)
// and will not replay on a resumed GET. streamLine is the decode-side
// union (the loadtest harness and tests read responses through it).
type outcomeLine struct {
	Type        string              `json:"type"` // "outcome"
	Seq         int64               `json:"seq,omitempty"`
	Index       int                 `json:"index"`
	ID          string              `json:"id"`
	Fingerprint string              `json:"fingerprint"`
	Cached      bool                `json:"cached"`
	Recovered   bool                `json:"recovered,omitempty"`
	Attempts    int                 `json:"attempts"`
	Error       string              `json:"error,omitempty"`
	CrashDump   string              `json:"crash_dump,omitempty"`
	Result      *experiments.Result `json:"result,omitempty"`
}

type summaryLine struct {
	Type         string  `json:"type"` // "summary"
	Seq          int64   `json:"seq,omitempty"`
	Points       int     `json:"points"`
	Failed       int     `json:"failed"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	ElapsedMS    int64   `json:"elapsed_ms"`
	Error        string  `json:"error,omitempty"`
}

type streamLine struct {
	Type        string              `json:"type"`
	Seq         int64               `json:"seq"`
	Index       int                 `json:"index"`
	ID          string              `json:"id"`
	Fingerprint string              `json:"fingerprint"`
	Cached      bool                `json:"cached"`
	Recovered   bool                `json:"recovered"`
	Attempts    int                 `json:"attempts"`
	Error       string              `json:"error"`
	CrashDump   string              `json:"crash_dump"`
	Result      *experiments.Result `json:"result"`
	Points      int                 `json:"points"`
	Failed      int                 `json:"failed"`
}

// httpError is the JSON error envelope for non-streaming failures.
func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Write([]byte("ok\n"))
}

// handleReadyz is the load-balancer signal: it turns unready while the
// server still has interactive headroom, so upstream traffic shifts
// away before clients start seeing 429s.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	depth, batchMax := s.adm.depthNow(), s.adm.batchMax
	if depth >= batchMax {
		httpError(w, http.StatusServiceUnavailable,
			"saturating: queue depth %d at batch threshold %d (interactive reserve only)", depth, batchMax)
		return
	}
	w.Write([]byte("ready\n"))
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		Service obs.ServiceSnapshot           `json:"service"`
		Cache   sweepcache.Stats              `json:"cache"`
		Janitor *janitor.Stats                `json:"janitor,omitempty"`
		Workers *experiments.WorkerPoolStats  `json:"workers,omitempty"`
		Journal *journalStats                 `json:"journal,omitempty"`
	}{Service: s.metrics.Snapshot(), Cache: s.cache.Stats()}
	if s.jan != nil {
		st := s.jan.Stats()
		resp.Janitor = &st
	}
	if s.pool != nil {
		st := s.pool.Stats()
		resp.Workers = &st
	}
	if s.journal != nil {
		st := s.journal.Stats()
		resp.Journal = &st
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// retryAfterSeconds derives the Retry-After value from live load: the
// queue-drain estimate of the latency digest, clamped to [1,300]
// seconds. A cold digest estimates 0 and clamps to the floor, so the
// header is always present and always positive.
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

func (s *server) setRetryAfter(w http.ResponseWriter, d time.Duration) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(d)))
}

// parsePriority resolves the admission class: the spec field wins over
// the X-Priority header; empty means interactive.
func parsePriority(spec, header string) (batch bool, err error) {
	p := spec
	if p == "" {
		p = header
	}
	switch p {
	case "", "interactive":
		return false, nil
	case "batch":
		return true, nil
	default:
		return false, fmt.Errorf("unknown priority %q (want interactive or batch)", p)
	}
}

// parseDeadline resolves the request deadline: the spec field wins over
// the X-Sweep-Deadline-Ms header; zero means none requested.
func parseDeadline(specMS int64, header string) (time.Duration, error) {
	ms := specMS
	if ms == 0 && header != "" {
		v, err := strconv.ParseInt(header, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("invalid X-Sweep-Deadline-Ms %q: %v", header, err)
		}
		ms = v
	}
	if ms < 0 {
		return 0, fmt.Errorf("deadline must be non-negative, got %dms", ms)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid sweep request: %v", err)
		return
	}
	// The request is fully read: clear the connection read deadline a
	// nonzero -read-timeout armed, so it bounds only the header+body
	// read and can never abort a sweep whose NDJSON stream outlives it.
	// (Some transports don't support this; an error just means there is
	// no deadline to clear.)
	http.NewResponseController(w).SetReadDeadline(time.Time{})
	batch, err := parsePriority(req.Priority, r.Header.Get("X-Priority"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid sweep request: %v", err)
		return
	}
	deadline, err := parseDeadline(req.DeadlineMS, r.Header.Get("X-Sweep-Deadline-Ms"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid sweep request: %v", err)
		return
	}
	if s.cfg.maxDeadline > 0 && (deadline == 0 || deadline > s.cfg.maxDeadline) {
		deadline = s.cfg.maxDeadline
	}
	pts, err := compileRequest(req, s.mesh,
		specLimits{maxPoints: s.cfg.maxPoints, maxCycles: s.cfg.maxCycles}, s.cfg.check)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid sweep spec: %v", err)
		return
	}

	// Job identity: an explicit Idempotency-Key names the job, otherwise
	// it is content-addressed from the compiled points. Either way the
	// body's fingerprint is recorded so a reused key with a different
	// body is a 409, never a silent wrong answer.
	reqFP := contentIdentity(pts)
	jobKey := reqFP
	keyed := false
	if k := r.Header.Get("Idempotency-Key"); k != "" {
		jobKey = jobIDFromKey(k)
		keyed = true
	}
	ent, state, err := s.jobs.attach(jobKey, reqFP, len(pts))
	if err != nil {
		httpError(w, http.StatusConflict, "job %s: %v", jobKey, err)
		return
	}
	if keyed && state != jobIdle {
		// Exactly-once attach: the keyed job is already running or done.
		// Serve its result log — tailing a live producer — instead of
		// recomputing; no admission slot, no journal record, no
		// simulation. (Unkeyed re-POSTs keep the pre-PR-9 behaviour of
		// re-running through the result cache.)
		s.metrics.JobAttached()
		s.serveJobStream(r.Context(), w, ent, 1)
		return
	}

	// Cost ceiling: the summed admission-time estimate of simulated
	// cycles. Checked before any slot is claimed, so an oversized sweep
	// costs the service nothing but the decode.
	if s.cfg.maxJobCycles > 0 {
		var cost int64
		for i := range pts {
			cost += pts[i].Cost
		}
		if cost > s.cfg.maxJobCycles {
			httpError(w, http.StatusRequestEntityTooLarge,
				"job cost estimate %d simulated cycles exceeds the server ceiling %d", cost, s.cfg.maxJobCycles)
			return
		}
	}

	// Poison-config quarantine: any point naming a quarantined config
	// blocks the whole job with the crash-dump evidence. Half-open probe
	// claims are ownership-tracked per request: admit tells exactly one
	// caller it is the probe, claims records it, and every exit path —
	// blocked on a later config, shed, cancelled while queued, or points
	// that never delivered a verdict — releases only the claims THIS
	// request holds, never a probe a concurrent request is running.
	var configs []string
	seenCfg := map[string]bool{}
	for i := range pts {
		cfgFP := pts[i].Meta["config"]
		if cfgFP == "" || seenCfg[cfgFP] {
			continue
		}
		seenCfg[cfgFP] = true
		configs = append(configs, cfgFP)
	}
	claims := newProbeClaims(s.quar)
	defer claims.abortRemaining()
	for _, cfgFP := range configs {
		blocked, probe, dump, retry := s.quar.admit(cfgFP)
		if probe {
			claims.add(cfgFP)
		}
		if !blocked {
			continue
		}
		s.metrics.JobQuarantined()
		s.setRetryAfter(w, retry)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(map[string]string{
			"error": fmt.Sprintf("config %s is quarantined: it panicked the simulator %d+ times; see the crash dump instead of re-running",
				cfgFP, s.quar.k),
			"config":     cfgFP,
			"crash_dump": dump,
		})
		return
	}

	// Admission control: a free slot in the job's class or a 429, never
	// blocking. Batch jobs are shed earlier (the interactive reserve).
	if !s.adm.tryAdmit(batch) {
		s.metrics.JobRejected(batch)
		s.setRetryAfter(w, s.metrics.EstimateWait(s.cfg.maxActive))
		limit := s.adm.maxQueue
		kind := "job queue full"
		if batch {
			limit = s.adm.batchMax
			kind = "batch admission full (interactive reserve held back)"
		}
		httpError(w, http.StatusTooManyRequests, "%s (%d queued or running)", kind, limit)
		return
	}
	s.metrics.JobAdmitted()
	defer s.adm.release()

	// Durability point: the accept record is fsync'd before any
	// simulation starts, so from here on a daemon crash leaves the job
	// in the journal for the next boot to replay. A job we cannot
	// journal is a job we cannot promise, so a WAL write failure refuses
	// the request. settle pairs the accept with a done record at every
	// terminal exit — except a server drain, which deliberately leaves
	// the job open so the restarted daemon finishes it.
	jobID := int64(-1)
	if s.journal != nil {
		raw, err := json.Marshal(req)
		if err == nil {
			jobID, err = s.journal.Accept(jobKey, raw)
		}
		if err != nil {
			s.metrics.JobDone(false, true)
			httpError(w, http.StatusServiceUnavailable, "job journal write failed: %v", err)
			return
		}
		s.metrics.JournalAccepted()
	}
	settle := func(failed bool) {
		if s.journal == nil || jobID < 0 || s.drainCtx.Err() != nil {
			return
		}
		if s.journal.Done(jobID, failed) == nil {
			s.metrics.JournalCompleted()
		}
	}

	// Producer claim: opens (or resumes) the job's durable result log.
	// From here every successful outcome is fsync'd into the log before
	// its seq reaches a client, so a crash can never retract a frame a
	// client consumed. A job whose log will not open has no exactly-once
	// story — refuse it the way a journal write failure is refused.
	if err := s.jobs.startProducer(ent); err != nil {
		s.metrics.JobDone(false, true)
		settle(true)
		httpError(w, http.StatusServiceUnavailable, "result log open failed: %v", err)
		return
	}

	// Pin this job's artifacts for the janitor while it is in flight:
	// a queued job may resume from a checkpoint the janitor would
	// otherwise see as cold.
	ids := make([]string, len(pts))
	for i := range pts {
		ids[i] = pts[i].ID
	}
	defer s.pinArtifacts(ids)()

	// The job dies with the client connection, its deadline or a server
	// drain, whichever comes first; either way running points
	// checkpoint. The deadline wraps the context *before* the queue
	// wait, so time spent queued counts against the budget.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	stop := context.AfterFunc(s.drainCtx, cancel)
	defer stop()

	// Queued: wait for a run slot.
	select {
	case s.runTok <- struct{}{}:
	case <-ctx.Done():
		s.jobs.endProducer(ent)
		s.metrics.JobDone(false, true)
		settle(true)
		httpError(w, http.StatusServiceUnavailable, "cancelled while queued: %v", ctx.Err())
		return
	}
	s.metrics.JobStarted()
	defer func() { <-s.runTok }()

	failed := s.streamSweep(ctx, w, pts, claims, ent)
	s.jobs.endProducer(ent)
	s.metrics.JobDone(true, failed)
	settle(failed)
}

// streamSweep runs the admitted job and streams NDJSON outcomes,
// teeing every successful one into the job's durable result log: the
// line a client reads off this response carries the seq its fsync'd
// frame got, so a disconnect at any byte can resume via
// GET /v1/jobs/{id}/results?from=<seq+1> without losing or repeating a
// point. claims holds the half-open probe claims this request owns;
// verdicts settle them as points finish. Returns whether any point
// failed.
func (s *server) streamSweep(ctx context.Context, w http.ResponseWriter, pts []experiments.SweepPoint, claims *probeClaims, ent *jobEntry) bool {
	start := time.Now()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Flush through the ResponseController, which unwraps middleware
	// ResponseWriter wrappers; the old direct http.Flusher assertion
	// panicked under any non-flushing wrapper. A transport that truly
	// cannot flush just buffers — degraded, not dead.
	rc := http.NewResponseController(w)

	var mu sync.Mutex // serializes stream writes from supervisor workers
	newline := []byte{'\n'}
	emitBlob := func(blob []byte) {
		mu.Lock()
		defer mu.Unlock()
		w.Write(blob)
		w.Write(newline)
		rc.Flush()
	}
	emit := func(line interface{}) {
		blob, err := json.Marshal(line)
		if err != nil {
			return
		}
		emitBlob(blob)
	}

	// Every stream opens by naming the job: the ID (and cursor protocol)
	// the client resumes with after a disconnect.
	emit(jobLine{Type: "job", ID: ent.id, Points: ent.header.Points})

	// Per-point wall clocks, written by the instrumented Run wrappers
	// (cache hits never run, so their latency stays 0 — honest: a hit
	// costs nothing). The wrappers also host the chaos fault seams:
	// injected panics exercise the crash-dump + quarantine path, and
	// checkpoint-path poisoning makes every save fail like a full disk.
	walls := make([]atomic.Int64, len(pts))
	for i := range pts {
		i, orig := i, pts[i].Run
		fp := pts[i].Fingerprint
		cfgFP := pts[i].Meta["config"]
		pts[i].Run = func(ctx context.Context, spec experiments.CheckpointSpec) (experiments.Result, error) {
			if s.onCompute != nil {
				s.onCompute(fp)
			}
			if s.chaosCheckpointFail != nil && spec.Path != "" && s.chaosCheckpointFail(fp) {
				// Redirect the checkpoint under a regular file
				// (<dir>/enospc.wall) so CreateTemp fails the way a full
				// disk would; the simulation then fails honestly at save.
				spec.Path = filepath.Join(s.cfg.dir, enospcWall, filepath.Base(spec.Path))
			}
			if s.chaosPanic != nil && s.chaosPanic(cfgFP) {
				panic(fmt.Sprintf("chaos: injected simulator panic (config %s)", cfgFP))
			}
			t0 := time.Now()
			res, err := orig(ctx, spec)
			walls[i].Store(int64(time.Since(t0)))
			return res, err
		}
	}

	var failures atomic.Int64
	sc := experiments.SuperviseConfig{
		Workers:         s.cfg.workers,
		Retries:         s.cfg.retries,
		PointTimeout:    s.cfg.pointTimeout,
		Dir:             s.cfg.dir,
		CheckpointEvery: s.cfg.checkpointEvery,
		Cache:           s.cache,
		OnOutcome: func(i int, o experiments.PointOutcome) {
			s.metrics.PointDone(o.Cached, o.Err != nil, time.Duration(walls[i].Load()))
			// Feed the quarantine verdict-by-verdict: a computed success
			// forgives the config, a panic counts toward the trip, and
			// anything else — cancellation, checkpoint I/O, or a cache
			// hit that never re-ran the simulator — is no verdict: it
			// settles only this request's own probe claim, if it held
			// one, and never touches a probe another request is running.
			if cfgFP := pts[i].Meta["config"]; cfgFP != "" {
				probe := claims.settle(cfgFP)
				switch {
				case o.Err == nil && !o.Cached:
					s.quar.reportSuccess(cfgFP)
				case o.Panicked:
					s.quar.reportPanic(cfgFP, o.CrashDump, probe)
				default:
					if probe {
						s.quar.reportAbort(cfgFP)
					}
				}
			}
			line := outcomeLine{
				Type:        "outcome",
				Index:       i,
				ID:          o.ID,
				Fingerprint: o.Fingerprint,
				Cached:      o.Cached,
				Recovered:   o.Recovered,
				Attempts:    o.Attempts,
				CrashDump:   o.CrashDump,
			}
			if o.Err != nil {
				// Failures are transient (no seq, never logged): the job
				// stays incomplete and a later POST re-runs just the
				// failed indices through the cache.
				failures.Add(1)
				line.Error = o.Err.Error()
				emit(line)
				return
			}
			line.Result = &o.Result
			// Tee into the durable log. First producer to finish the
			// index owns its frame and streams the logged bytes (with
			// their seq, fsync'd before emitBlob runs); a collision —
			// an index an earlier run already logged — streams its own
			// transient view instead.
			if blob, appended := s.jobs.appendOutcome(ent, line, true); appended {
				emitBlob(blob)
			} else {
				emit(line)
			}
		},
	}
	if s.pool != nil {
		// A concrete nil must never land in the interface field, or the
		// supervisor would "dispatch" every point into a nil deref.
		sc.Exec = s.pool
	}
	_, err := experiments.Supervise(ctx, sc, pts)

	summary := summaryLine{
		Type:         "summary",
		Points:       len(pts),
		Failed:       int(failures.Load()),
		CacheHitRate: s.cache.Stats().HitRate(),
		ElapsedMS:    time.Since(start).Milliseconds(),
	}
	if err != nil && errors.Is(err, ctx.Err()) && ctx.Err() != nil {
		summary.Error = fmt.Sprintf("sweep interrupted: %v", err)
	}
	// A clean, failure-free run seals the job: the summary frame is the
	// durable terminal a resumed GET ends on. Interrupted or failing
	// runs emit only a transient summary — the job stays idle and
	// resumable, and the client knows to re-POST.
	if err == nil && summary.Failed == 0 && summary.Error == "" {
		if blob, appended := s.jobs.appendSummary(ent, summary, true); appended {
			emitBlob(blob)
			return false
		}
	}
	emit(summary)
	return err != nil
}

// serveJobStream streams a job's durable frames from a 1-based cursor,
// tails a live producer, and terminates with either the logged summary
// frame (complete job) or an "idle" line (no producer, incomplete —
// the client should re-POST to restart the run). Both the request
// context and a server drain end the tail.
func (s *server) serveJobStream(ctx context.Context, w http.ResponseWriter, ent *jobEntry, from int64) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(s.drainCtx, cancel)
	defer stop()
	// A cancelled stream must fall out of the cond wait: bridge the
	// context into the entry's broadcast.
	wake := context.AfterFunc(ctx, ent.broadcast)
	defer wake()

	s.jobs.addReader(ent)
	defer s.jobs.dropReader(ent)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	newline := []byte{'\n'}
	write := func(blob []byte) bool {
		if _, err := w.Write(blob); err != nil {
			return false
		}
		if _, err := w.Write(newline); err != nil {
			return false
		}
		rc.Flush()
		return true
	}

	if !write(mustMarshal(jobLine{Type: "job", ID: ent.id, Points: ent.header.Points})) {
		return
	}
	cursor := int(from - 1)
	for {
		if ctx.Err() != nil {
			return
		}
		snap := ent.waitChange(cursor, func() bool { return ctx.Err() != nil })
		for _, blob := range snap.lines {
			if ctx.Err() != nil || !write(blob) {
				return
			}
			cursor++
		}
		if snap.done {
			// The summary frame is always the last durable frame, so the
			// loop above just wrote it (or the cursor was already past).
			return
		}
		if len(snap.lines) == 0 && ctx.Err() == nil && snap.active == 0 {
			write(mustMarshal(idleLine{Type: "idle"}))
			return
		}
	}
}

// handleJobResults is the resume endpoint: replay the job's durable
// result log from a cursor and tail it live. ?from=<seq> names the
// first frame wanted (default 1); a client that consumed through seq N
// resumes with from=N+1 and sees no duplicates.
func (s *server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.setRetryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	from := int64(1)
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "invalid from cursor %q: want a positive frame seq", v)
			return
		}
		from = n
	}
	ent := s.jobs.lookup(r.PathValue("id"))
	if ent == nil {
		httpError(w, http.StatusNotFound, "unknown job (expired, collected, or never accepted)")
		return
	}
	s.metrics.ResumeRead()
	s.serveJobStream(r.Context(), w, ent, from)
}

// enospcWall is the regular file the ENOSPC chaos fault hides the
// checkpoint directory behind: CreateTemp under a non-directory fails
// every save, which is the closest portable stand-in for a full disk.
const enospcWall = "enospc.wall"

// replayJournal drains the jobs the journal recovered at boot: each is
// recompiled from its journaled SweepRequest and re-run through the
// same run-slot, pinning and cache machinery a live request uses — no
// HTTP response, the results land in the cache and checkpoint dir where
// the re-submitting client will find them. Admission control is
// bypassed on purpose (these jobs were already admitted, and a full
// queue at boot must not orphan them), but the metrics job ledger still
// balances: every replay counts as admitted and done. A drain during
// replay leaves the remaining jobs journaled for the next boot.
func (s *server) replayJournal(ctx context.Context) {
	jobs := s.replay
	s.replay = nil
	for _, rj := range jobs {
		if ctx.Err() != nil {
			return
		}
		s.replayOne(ctx, rj)
	}
}

func (s *server) replayOne(ctx context.Context, rj replayJob) {
	var req SweepRequest
	var pts []experiments.SweepPoint
	if err := json.Unmarshal(rj.Spec, &req); err == nil {
		pts, err = compileRequest(req, s.mesh,
			specLimits{maxPoints: s.cfg.maxPoints, maxCycles: s.cfg.maxCycles}, s.cfg.check)
		if err != nil {
			pts = nil
		}
	}
	if len(pts) == 0 {
		// The journaled spec no longer compiles (caps tightened across
		// the restart, or the record predates a format change). Settle it
		// as failed so it cannot replay forever.
		if s.journal.Done(rj.ID, true) == nil {
			s.metrics.JournalCompleted()
		}
		return
	}
	s.metrics.JournalReplayed()
	s.metrics.JobAdmitted()

	select {
	case s.runTok <- struct{}{}:
	case <-ctx.Done():
		// Drained before the replay started: the job stays open in the
		// journal; only the metrics ledger settles.
		s.metrics.JobDone(false, true)
		return
	}
	s.metrics.JobStarted()
	defer func() { <-s.runTok }()

	// Reattach the job's durable result log so replayed outcomes resume
	// it exactly where the crashed run stopped: a client that was
	// mid-stream re-reads the missed frames via GET instead of
	// re-submitting. Old journals (pre-PR 9) carry no key — the job is
	// content-addressed, same as an unkeyed POST. Appends batch
	// (-results-sync) unless a resumed reader is already tailing.
	reqFP := contentIdentity(pts)
	id := rj.Key
	if !validJobID(id) {
		id = reqFP
	}
	ent, _, attachErr := s.jobs.attach(id, reqFP, len(pts))
	if attachErr == nil {
		if err := s.jobs.startProducer(ent); err != nil {
			ent = nil
		}
	} else {
		ent = nil
	}

	ids := make([]string, len(pts))
	for i := range pts {
		ids[i] = pts[i].ID
	}
	defer s.pinArtifacts(ids)()

	var failures atomic.Int64
	sc := experiments.SuperviseConfig{
		Workers:         s.cfg.workers,
		Retries:         s.cfg.retries,
		PointTimeout:    s.cfg.pointTimeout,
		Dir:             s.cfg.dir,
		CheckpointEvery: s.cfg.checkpointEvery,
		Cache:           s.cache,
		OnOutcome: func(i int, o experiments.PointOutcome) {
			s.metrics.PointDone(o.Cached, o.Err != nil, 0)
			if o.Err != nil {
				failures.Add(1)
				return
			}
			if ent != nil {
				line := outcomeLine{
					Type:        "outcome",
					Index:       i,
					ID:          o.ID,
					Fingerprint: o.Fingerprint,
					Cached:      o.Cached,
					Recovered:   o.Recovered,
					Attempts:    o.Attempts,
					Result:      &o.Result,
				}
				s.jobs.appendOutcome(ent, line, false)
			}
		},
	}
	if s.pool != nil {
		sc.Exec = s.pool
	}
	start := time.Now()
	_, err := experiments.Supervise(ctx, sc, pts)
	failed := err != nil || failures.Load() > 0
	if ent != nil {
		if !failed {
			s.jobs.appendSummary(ent, summaryLine{
				Type:         "summary",
				Points:       len(pts),
				CacheHitRate: s.cache.Stats().HitRate(),
				ElapsedMS:    time.Since(start).Milliseconds(),
			}, false)
		}
		s.jobs.syncEntry(ent)
		s.jobs.endProducer(ent)
	}
	s.metrics.JobDone(true, failed)
	if ctx.Err() != nil {
		// Drained mid-replay: running points checkpointed; leave the job
		// open so the next boot resumes from those checkpoints.
		return
	}
	if s.journal.Done(rj.ID, failed) == nil {
		s.metrics.JournalCompleted()
	}
}
