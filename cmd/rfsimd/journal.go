package main

// The durable job journal: an append-only, fsync'd NDJSON write-ahead
// log that makes accepted sweeps survive a daemon crash. Every job that
// passes admission appends an "accept" record carrying its raw
// SweepRequest before any simulation starts; every job that reaches a
// terminal state appends a "done" record. A job interrupted by a server
// drain (or a SIGKILL) writes no "done" — deliberately — so a restarted
// daemon finds the accept unpaired and replays it against the
// checkpoint directory and result cache, finishing the work the crash
// abandoned.
//
// Record shapes (one JSON object per line):
//
//	{"t":"accept","job":7,"spec":{...raw SweepRequest...}}
//	{"t":"done","job":7,"failed":true}
//
// Recovery rules, applied when the file is opened:
//
//   - an accept with no matching done is an open job: returned for
//     replay, in acceptance order;
//   - a torn final line (the crash landed mid-append: no trailing
//     newline, or unparseable JSON) is skipped and counted, never
//     fatal — losing the record the crash interrupted is the crash-only
//     contract, losing the whole journal is not;
//   - any other unparseable line (bit rot, manual edits) is likewise
//     skipped and counted;
//   - settled accept/done pairs and skipped garbage are compacted away
//     at open by rewriting the file with only the open accepts.
//
// Compaction also runs during service via the janitor's sweep hook once
// enough settled records accumulate, so the journal's disk footprint is
// bounded by the open-job count, not by service uptime. The journal
// file must NOT match the janitor's artifact filter (*.ckpt,
// *.crash.json) or the janitor would garbage-collect the very log that
// guarantees durability; the conventional name is "journal.wal".

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// defaultJournalCompactAt is the settled-record debt that triggers an
// in-service compaction.
const defaultJournalCompactAt = 256

// openJournaled is one accepted-but-unfinished job's journaled state.
type openJournaled struct {
	key  string
	spec json.RawMessage
}

// journalRecord is one WAL line. Key (PR 9) is the job's stable result
// identity — the ID of its durable result log — so a boot replay
// continues appending to the same log the crashed run started, and a
// client's cursor survives the restart. Records written before the
// field existed decode with Key "" and the replay derives the content
// identity from the spec instead.
type journalRecord struct {
	T      string          `json:"t"`   // "accept" or "done"
	Job    int64           `json:"job"` // acceptance sequence number
	Key    string          `json:"key,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Failed bool            `json:"failed,omitempty"`
}

// replayJob is one accepted-but-unfinished job recovered at open.
type replayJob struct {
	ID   int64
	Key  string // result-log job ID ("" on pre-PR-9 records)
	Spec json.RawMessage
}

// journalStats is the /v1/metrics view of one journal.
type journalStats struct {
	Accepted    int64 `json:"accepted"`  // accepts appended this process
	Completed   int64 `json:"completed"` // dones appended this process
	OpenJobs    int   `json:"open_jobs"`
	TornSkipped int64 `json:"torn_skipped"` // corrupt/torn lines skipped at open
	Compactions int64 `json:"compactions"`
}

// journal is the WAL handle. All methods are safe for concurrent use;
// appends are serialized and fsync'd one record at a time, so the
// strongest thing a crash can tear is the single record being written.
type journal struct {
	mu        sync.Mutex
	path      string
	f         *os.File
	seq       int64                   // highest sequence number ever issued
	open      map[int64]openJournaled // accepted, not yet done
	settled   int                       // records a compaction could fold away
	compactAt int
	stats     journalStats
}

// openJournal opens (or creates) the WAL at path, scans it under the
// recovery rules, compacts away any settled or torn debt, and returns
// the handle plus the open jobs to replay, oldest first.
func openJournal(path string, compactAt int) (*journal, []replayJob, error) {
	if compactAt <= 0 {
		compactAt = defaultJournalCompactAt
	}
	j := &journal{
		path:      path,
		open:      map[int64]openJournaled{},
		compactAt: compactAt,
	}

	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.scan(data)

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f

	// Fold boot-time debt away immediately: settled pairs, torn lines,
	// and — critically — a torn tail that a plain append would otherwise
	// fuse with the next record, corrupting it too.
	if j.settled > 0 || j.stats.TornSkipped > 0 {
		if err := j.compactLocked(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}

	jobs := make([]replayJob, 0, len(j.open))
	for id, rec := range j.open {
		jobs = append(jobs, replayJob{ID: id, Key: rec.key, Spec: rec.spec})
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	return j, jobs, nil
}

// scan replays the raw file contents into open/seq/settled/torn state.
func (j *journal) scan(data []byte) {
	for len(data) > 0 {
		nl := -1
		for i, b := range data {
			if b == '\n' {
				nl = i
				break
			}
		}
		var line []byte
		torn := false
		if nl < 0 {
			// No trailing newline: the final append was interrupted.
			line, data, torn = data, nil, true
		} else {
			line, data = data[:nl], data[nl+1:]
		}
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || (rec.T != "accept" && rec.T != "done") {
			j.stats.TornSkipped++
			continue
		}
		if torn {
			// Parsed, but the record never got its newline: the fsync
			// cannot have completed before the crash, so the writer never
			// acted on it. Drop it like any other torn line.
			j.stats.TornSkipped++
			continue
		}
		if rec.Job > j.seq {
			j.seq = rec.Job
		}
		switch rec.T {
		case "accept":
			j.open[rec.Job] = openJournaled{key: rec.Key, spec: rec.Spec}
		case "done":
			if _, ok := j.open[rec.Job]; ok {
				delete(j.open, rec.Job)
				j.settled += 2 // the pair folds away
			} else {
				j.settled++ // orphan done (its accept was torn away)
			}
		}
	}
}

// Accept journals one admitted job and returns its sequence number. key
// is the job's result-log identity, carried so a boot replay reattaches
// to the same log. The record is on disk (fsync'd) before Accept
// returns; an error means the job has no durability and must be
// refused.
func (j *journal) Accept(key string, spec json.RawMessage) (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	id := j.seq
	if err := j.appendLocked(journalRecord{T: "accept", Job: id, Key: key, Spec: spec}); err != nil {
		return 0, err
	}
	j.open[id] = openJournaled{key: key, spec: spec}
	j.stats.Accepted++
	return id, nil
}

// Done journals a job's terminal state. Idempotent: settling a job that
// is not open (already settled, or never accepted) is a no-op.
func (j *journal) Done(id int64, failed bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.open[id]; !ok {
		return nil
	}
	if err := j.appendLocked(journalRecord{T: "done", Job: id, Failed: failed}); err != nil {
		return err
	}
	delete(j.open, id)
	j.settled += 2
	j.stats.Completed++
	return nil
}

// appendLocked writes one record and fsyncs. Callers hold j.mu.
func (j *journal) appendLocked(rec journalRecord) error {
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Write(append(blob, '\n')); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// CompactIfNeeded folds the journal when enough settled records have
// accumulated; it reports whether a compaction ran. The janitor calls
// it at the end of every sweep.
func (j *journal) CompactIfNeeded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.settled < j.compactAt {
		return false
	}
	return j.compactLocked() == nil
}

// compactLocked rewrites the file with only the open accepts, via a
// fsync'd temp file renamed into place — the same crash-safe dance the
// checkpoint writer uses. Callers hold j.mu (or own j exclusively).
func (j *journal) compactLocked() error {
	ids := make([]int64, 0, len(j.open))
	for id := range j.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })

	tmp, err := os.CreateTemp(filepath.Dir(j.path), filepath.Base(j.path)+".compact-*")
	if err != nil {
		return fmt.Errorf("journal compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	for _, id := range ids {
		rec := j.open[id]
		blob, err := json.Marshal(journalRecord{T: "accept", Job: id, Key: rec.key, Spec: rec.spec})
		if err != nil {
			tmp.Close()
			return fmt.Errorf("journal compact: %w", err)
		}
		if _, err := tmp.Write(append(blob, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("journal compact: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal compact: %w", err)
	}
	// The old handle points at the unlinked inode; swap in a fresh one.
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal compact: %w", err)
	}
	if j.f != nil {
		j.f.Close()
	}
	j.f = f
	j.settled = 0
	j.stats.Compactions++
	return nil
}

// OpenJobs reports the accepted-but-unfinished job count.
func (j *journal) OpenJobs() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.open)
}

// Stats snapshots the journal counters.
func (j *journal) Stats() journalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.stats
	s.OpenJobs = len(j.open)
	return s
}

// Close releases the file handle. Open jobs stay journaled — that is
// the point.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
