package main

import (
	"path/filepath"
	"testing"
)

func TestBenchLineParsing(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   string
	}{
		{"BenchmarkStepIdle-4   \t 4333453\t       275.3 ns/op\t       0 B/op\t       0 allocs/op", "BenchmarkStepIdle", "275.3"},
		{"BenchmarkStepBaseline16B \t 100000 \t 2924 ns/op \t 0 B/op \t 0 allocs/op", "BenchmarkStepBaseline16B", "2924"},
		{"BenchmarkFig9Multicast-1 \t 1 \t 14288971487 ns/op \t 559072488 B/op \t 12518835 allocs/op", "BenchmarkFig9Multicast", "14288971487"},
		{"ok  \trepro\t14.3s", "", ""},
		{"PASS", "", ""},
	}
	for _, c := range cases {
		m := benchLine.FindStringSubmatch(c.line)
		if c.name == "" {
			if m != nil {
				t.Errorf("line %q: unexpectedly matched %q", c.line, m[1])
			}
			continue
		}
		if m == nil {
			t.Errorf("line %q: no match", c.line)
			continue
		}
		if m[1] != c.name || m[2] != c.ns {
			t.Errorf("line %q: got (%q, %q), want (%q, %q)", c.line, m[1], m[2], c.name, c.ns)
		}
	}
}

func TestMedian(t *testing.T) {
	odd := [][3]float64{{5, 0, 0}, {1, 0, 0}, {3, 0, 0}}
	if got := median(odd, 0); got != 3 {
		t.Errorf("odd median = %g, want 3", got)
	}
	even := [][3]float64{{4, 0, 0}, {1, 0, 0}, {3, 0, 0}, {2, 0, 0}}
	if got := median(even, 0); got != 2.5 {
		t.Errorf("even median = %g, want 2.5", got)
	}
}

func TestArtifactNumbering(t *testing.T) {
	for path, want := range map[string]int{
		"BENCH_5.json":                5,
		"x/y/BENCH_12.json":           12,
		"BENCH_ci.json":               -1,
		"BENCH_5.json.bak":            -1,
		"NOTBENCH_5.json":             -1,
		"BENCH_-3.json":               -1,
		filepath.Join("BENCH_0.json"): 0,
	} {
		if got := artifactNum(path); got != want {
			t.Errorf("artifactNum(%q) = %d, want %d", path, got, want)
		}
	}
	dir := t.TempDir()
	if got := nextArtifactName(dir); got != "BENCH_1.json" {
		t.Errorf("empty dir next artifact = %q, want BENCH_1.json", got)
	}
}

func TestCompare(t *testing.T) {
	base := report{Benchmarks: []benchResult{
		{Name: "BenchmarkStepIdle", Pkg: "./internal/noc", NsOp: 100},
		{Name: "BenchmarkStepBaseline16B", Pkg: "./internal/noc", NsOp: 3000},
		{Name: "BenchmarkRetired", Pkg: ".", NsOp: 50},
	}}
	cur := report{Benchmarks: []benchResult{
		{Name: "BenchmarkStepIdle", Pkg: "./internal/noc", NsOp: 109},         // +9%: under threshold
		{Name: "BenchmarkStepBaseline16B", Pkg: "./internal/noc", NsOp: 3600}, // +20%: regression
		{Name: "BenchmarkNew", Pkg: ".", NsOp: 999},                           // no baseline: skipped
	}}
	regs := compare(cur, base, 0.10)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions (%v), want 1", len(regs), regs)
	}
}
