// Command bench runs the repository's pinned benchmark suite and turns
// it into a regression gate. It executes the BenchmarkStep* hot-path
// benchmarks (internal/noc), the BenchmarkFig* figure-reproduction
// benchmarks (root package) and the BenchmarkSweepThroughput isolation
// overhead benchmark (internal/experiments) -count times each, takes the per-benchmark
// median of ns/op, B/op and allocs/op, and writes the result as a
// BENCH_<n>.json artifact. When a previous BENCH_*.json exists in -dir,
// the run is compared against the newest one and any benchmark whose
// median ns/op regressed by more than -threshold fails the gate — or,
// with -soft, emits a GitHub Actions "::warning ::" annotation and
// exits 0 (CI uses soft mode so noisy shared runners cannot block a
// merge on their own).
//
// Usage:
//
//	go run ./cmd/bench [-out BENCH_5.json] [-count 5] [-threshold 0.10]
//	      [-soft] [-dir .] [-steptime 1s] [-skip-compare]
//
// The zero-alloc gate is hard in both modes: any BenchmarkStep*
// benchmark with a non-zero steady-state allocs/op median fails the
// run, because the hot path is designed (and tested) to recycle every
// packet and scratch buffer it touches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type benchResult struct {
	Name     string  `json:"name"`
	Pkg      string  `json:"pkg"`
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	Runs     int     `json:"runs"`
}

type report struct {
	Schema     int           `json:"schema"`
	GoVersion  string        `json:"go"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPU        string        `json:"cpu,omitempty"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Count      int           `json:"count"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// suite is one pinned `go test -bench` invocation.
type suite struct {
	pkg       string
	regex     string
	benchtime string // empty: go's default
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("out", "", "output JSON file (default BENCH_<next>.json in -dir)")
	count := fs.Int("count", 5, "runs per benchmark; medians are reported")
	threshold := fs.Float64("threshold", 0.10, "relative ns/op regression that fails the gate")
	soft := fs.Bool("soft", false, "report regressions as ::warning :: annotations and exit 0")
	dir := fs.String("dir", ".", "repository root: where BENCH_*.json artifacts live")
	steptime := fs.String("steptime", "1s", "benchtime for the BenchmarkStep* suite")
	skipCompare := fs.Bool("skip-compare", false, "write the artifact without comparing to a baseline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *count < 1 {
		fmt.Fprintln(os.Stderr, "bench: -count must be at least 1")
		return 2
	}

	suites := []suite{
		// Hot-path microbenchmarks: many fast iterations, bounded time.
		{pkg: "./internal/noc", regex: "^BenchmarkStep", benchtime: *steptime},
		// Figure reproductions do a fixed sweep per iteration: one is enough.
		{pkg: ".", regex: "^BenchmarkFig", benchtime: "1x"},
		// Sweep throughput, in-process vs worker-process isolation: pins
		// the subprocess tax so -isolate overhead regressions fail the gate.
		{pkg: "./internal/experiments", regex: "^BenchmarkSweepThroughput", benchtime: "1x"},
	}

	rep := report{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Count:      *count,
	}
	for _, s := range suites {
		results, cpu, err := runSuite(*dir, s, *count)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", s.pkg, err)
			return 1
		}
		if rep.CPU == "" {
			rep.CPU = cpu
		}
		rep.Benchmarks = append(rep.Benchmarks, results...)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		if rep.Benchmarks[i].Pkg != rep.Benchmarks[j].Pkg {
			return rep.Benchmarks[i].Pkg < rep.Benchmarks[j].Pkg
		}
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmarks matched the pinned suite")
		return 1
	}

	baseline, basePath := newestBaseline(*dir)
	outPath := *out
	if outPath == "" {
		outPath = filepath.Join(*dir, nextArtifactName(*dir))
	}
	if err := writeJSON(outPath, rep); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s (%d benchmarks, count=%d)\n", outPath, len(rep.Benchmarks), *count)

	bad := false
	// Hard gate: the hot path must not allocate in steady state.
	for _, b := range rep.Benchmarks {
		if strings.HasPrefix(b.Name, "BenchmarkStep") && b.AllocsOp > 0 {
			fmt.Printf("FAIL %s: %g allocs/op (hot path must be allocation-free)\n", b.Name, b.AllocsOp)
			bad = true
		}
	}

	if *skipCompare || baseline == nil {
		if baseline == nil && !*skipCompare {
			fmt.Println("no prior BENCH_*.json baseline; skipping comparison")
		}
	} else {
		fmt.Printf("comparing against %s (threshold %+.0f%% ns/op)\n", basePath, *threshold*100)
		regressions := compare(rep, *baseline, *threshold)
		for _, line := range regressions {
			if *soft {
				fmt.Printf("::warning ::bench regression: %s\n", line)
			} else {
				fmt.Printf("FAIL %s\n", line)
				bad = true
			}
		}
		if len(regressions) == 0 {
			fmt.Println("no ns/op regressions above threshold")
		}
	}
	if bad {
		return 1
	}
	return 0
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkStepIdle-4   4333453   275.3 ns/op   0 B/op   0 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func runSuite(dir string, s suite, count int) ([]benchResult, string, error) {
	args := []string{"test", s.pkg, "-run", "^$", "-bench", s.regex,
		"-benchmem", "-count", strconv.Itoa(count)}
	if s.benchtime != "" {
		args = append(args, "-benchtime", s.benchtime)
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	outB, err := cmd.CombinedOutput()
	out := string(outB)
	if err != nil {
		return nil, "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	samples := map[string][][3]float64{}
	var order []string
	var cpu string
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		bop, _ := strconv.ParseFloat(m[3], 64)
		aop, _ := strconv.ParseFloat(m[4], 64)
		if _, seen := samples[m[1]]; !seen {
			order = append(order, m[1])
		}
		samples[m[1]] = append(samples[m[1]], [3]float64{ns, bop, aop})
	}
	var results []benchResult
	for _, name := range order {
		runs := samples[name]
		results = append(results, benchResult{
			Name: name, Pkg: s.pkg,
			NsOp:     median(runs, 0),
			BOp:      median(runs, 1),
			AllocsOp: median(runs, 2),
			Runs:     len(runs),
		})
	}
	return results, cpu, nil
}

func median(runs [][3]float64, k int) float64 {
	vals := make([]float64, len(runs))
	for i, r := range runs {
		vals[i] = r[k]
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// artifactNum extracts the numeric suffix of a BENCH_<n>.json path, or
// -1 when the name does not follow the convention.
func artifactNum(path string) int {
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "BENCH_") || !strings.HasSuffix(base, ".json") {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json"))
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// newestBaseline loads the highest-numbered BENCH_<n>.json in dir.
func newestBaseline(dir string) (*report, string) {
	paths, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	best, bestNum := "", -1
	for _, p := range paths {
		if n := artifactNum(p); n > bestNum {
			best, bestNum = p, n
		}
	}
	if best == "" {
		return nil, ""
	}
	data, err := os.ReadFile(best)
	if err != nil {
		return nil, ""
	}
	var rep report
	if json.Unmarshal(data, &rep) != nil {
		return nil, ""
	}
	return &rep, best
}

// nextArtifactName picks BENCH_<max+1>.json for dir.
func nextArtifactName(dir string) string {
	paths, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	next := 1
	for _, p := range paths {
		if n := artifactNum(p); n >= next {
			next = n + 1
		}
	}
	return fmt.Sprintf("BENCH_%d.json", next)
}

// compare returns one description per benchmark whose median ns/op
// regressed beyond the threshold relative to the baseline. Benchmarks
// missing from either side are skipped (new benchmarks have no
// baseline; retired ones no longer gate).
func compare(cur, base report, threshold float64) []string {
	baseBy := map[string]benchResult{}
	for _, b := range base.Benchmarks {
		baseBy[b.Pkg+" "+b.Name] = b
	}
	var out []string
	for _, b := range cur.Benchmarks {
		old, ok := baseBy[b.Pkg+" "+b.Name]
		if !ok || old.NsOp <= 0 {
			continue
		}
		rel := (b.NsOp - old.NsOp) / old.NsOp
		if rel > threshold {
			out = append(out, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)",
				b.Name, old.NsOp, b.NsOp, rel*100))
		}
	}
	return out
}

func writeJSON(path string, rep report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
