package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServiceMetricsLifecycle(t *testing.T) {
	m := NewServiceMetrics()

	m.JobAdmitted()
	m.JobAdmitted()
	m.JobRejected(false)
	m.JobRejected(true) // a batch job shed by the interactive reserve
	m.JobQuarantined()
	if s := m.Snapshot(); s.QueueDepth != 2 || s.QueuePeak != 2 || s.JobsRejected != 2 ||
		s.JobsShedBatch != 1 || s.JobsQuarantined != 1 {
		t.Fatalf("after admissions: %+v", s)
	}

	m.JobStarted()
	m.PointDone(false, false, 120*time.Microsecond)
	m.PointDone(true, false, 3*time.Microsecond)
	m.PointDone(false, true, 50*time.Millisecond)
	m.JobDone(true, false)
	m.JobDone(false, true) // rejected client bailed while still queued

	s := m.Snapshot()
	if s.QueueDepth != 0 || s.ActiveJobs != 0 {
		t.Errorf("queue depth %d active %d, want 0/0", s.QueueDepth, s.ActiveJobs)
	}
	if s.JobsCompleted != 1 || s.JobsFailed != 1 {
		t.Errorf("completed %d failed %d, want 1/1", s.JobsCompleted, s.JobsFailed)
	}
	if s.PointsCompleted != 3 || s.PointsCached != 1 || s.PointsFailed != 1 {
		t.Errorf("points %d/%d cached/%d failed, want 3/1/1", s.PointsCompleted, s.PointsCached, s.PointsFailed)
	}
	if s.PointLatencyUS.Count != 3 || s.PointLatencyUS.Max < 50000 {
		t.Errorf("latency digest %+v", s.PointLatencyUS)
	}
	if s.QueuePeak != 2 {
		t.Errorf("queue peak %d, want 2", s.QueuePeak)
	}
}

func TestServiceMetricsConcurrent(t *testing.T) {
	m := NewServiceMetrics()
	const G, per = 16, 50
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.JobAdmitted()
				m.JobStarted()
				m.PointDone(i%2 == 0, false, time.Duration(i)*time.Microsecond)
				m.JobDone(true, false)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.JobsAdmitted != G*per || s.JobsCompleted != G*per {
		t.Errorf("admitted %d completed %d, want %d", s.JobsAdmitted, s.JobsCompleted, G*per)
	}
	if s.QueueDepth != 0 || s.ActiveJobs != 0 {
		t.Errorf("residual queue %d active %d", s.QueueDepth, s.ActiveJobs)
	}
	if s.PointsCompleted != G*per || s.PointLatencyUS.Count != G*per {
		t.Errorf("points %d latency count %d, want %d", s.PointsCompleted, s.PointLatencyUS.Count, G*per)
	}
}

// TestEstimateWait: the Retry-After derivation scales with queue depth
// and the live p50, is zero on a cold digest, and never divides by a
// non-positive slot count.
func TestEstimateWait(t *testing.T) {
	m := NewServiceMetrics()
	if got := m.EstimateWait(4); got != 0 {
		t.Fatalf("cold EstimateWait = %v, want 0", got)
	}

	// 3 queued jobs, p50 point latency ~200ms, 2 run slots.
	for i := 0; i < 3; i++ {
		m.JobAdmitted()
	}
	for i := 0; i < 5; i++ {
		m.PointDone(false, false, 200*time.Millisecond)
	}
	got := m.EstimateWait(2)
	// 3 jobs x ~200ms / 2 slots = ~300ms (histogram bucketing is ~3%
	// coarse, so accept a band).
	if got < 200*time.Millisecond || got > 400*time.Millisecond {
		t.Errorf("EstimateWait = %v, want ~300ms", got)
	}
	if deeper := m.EstimateWait(1); deeper <= got {
		t.Errorf("fewer slots should estimate a longer wait: %v vs %v", deeper, got)
	}
	if m.EstimateWait(0) <= 0 {
		t.Error("slots=0 should clamp to 1, not return 0 or panic")
	}

	// Draining the queue shrinks the estimate to zero.
	for i := 0; i < 3; i++ {
		m.JobDone(false, false)
	}
	if got := m.EstimateWait(2); got != 0 {
		t.Errorf("empty-queue EstimateWait = %v, want 0", got)
	}
}

func TestServiceSnapshotRenderAndJSON(t *testing.T) {
	m := NewServiceMetrics()
	m.JobAdmitted()
	m.JobStarted()
	m.PointDone(true, false, time.Millisecond)
	m.JobDone(true, false)

	s := m.Snapshot()
	out := s.Render()
	for _, want := range []string{"jobs: 1 admitted", "points: 1 completed (1 cached", "point latency:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back ServiceSnapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != s {
		t.Errorf("snapshot JSON round-trip diverged: %+v vs %+v", back, s)
	}
}

// TestServiceMetricsWorkerJournalCounters: the isolation-era counters
// accumulate independently and show up in both snapshot and render.
func TestServiceMetricsWorkerJournalCounters(t *testing.T) {
	m := NewServiceMetrics()
	m.WorkerSpawned()
	m.WorkerSpawned()
	m.WorkerCrashed()
	m.WorkerKilledHeartbeat()
	m.WorkerKilledDeadline()
	m.WorkerOOM()
	m.WorkerRestartBackoff()
	m.JournalAccepted()
	m.JournalAccepted()
	m.JournalCompleted()
	m.JournalReplayed()
	m.JournalTornSkipped()
	m.JournalCompacted()

	s := m.Snapshot()
	if s.WorkersSpawned != 2 || s.WorkersCrashed != 1 || s.WorkersKilledHeartbeat != 1 ||
		s.WorkersKilledDeadline != 1 || s.WorkersOOM != 1 || s.WorkerRestartBackoffs != 1 {
		t.Errorf("worker counters wrong: %+v", s)
	}
	if s.JournalAccepted != 2 || s.JournalCompleted != 1 || s.JournalReplayed != 1 ||
		s.JournalTornSkipped != 1 || s.JournalCompactions != 1 {
		t.Errorf("journal counters wrong: %+v", s)
	}
	out := s.Render()
	for _, want := range []string{"workers: 2 spawned", "journal: 2 accepted", "1 torn skipped"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// A service that never isolates or journals keeps its render clean.
	clean := NewServiceMetrics().Snapshot().Render()
	if strings.Contains(clean, "workers:") || strings.Contains(clean, "journal:") {
		t.Errorf("idle render shows isolation lines:\n%s", clean)
	}
}
