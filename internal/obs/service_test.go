package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServiceMetricsLifecycle(t *testing.T) {
	m := NewServiceMetrics()

	m.JobAdmitted()
	m.JobAdmitted()
	m.JobRejected()
	if s := m.Snapshot(); s.QueueDepth != 2 || s.QueuePeak != 2 || s.JobsRejected != 1 {
		t.Fatalf("after admissions: %+v", s)
	}

	m.JobStarted()
	m.PointDone(false, false, 120*time.Microsecond)
	m.PointDone(true, false, 3*time.Microsecond)
	m.PointDone(false, true, 50*time.Millisecond)
	m.JobDone(true, false)
	m.JobDone(false, true) // rejected client bailed while still queued

	s := m.Snapshot()
	if s.QueueDepth != 0 || s.ActiveJobs != 0 {
		t.Errorf("queue depth %d active %d, want 0/0", s.QueueDepth, s.ActiveJobs)
	}
	if s.JobsCompleted != 1 || s.JobsFailed != 1 {
		t.Errorf("completed %d failed %d, want 1/1", s.JobsCompleted, s.JobsFailed)
	}
	if s.PointsCompleted != 3 || s.PointsCached != 1 || s.PointsFailed != 1 {
		t.Errorf("points %d/%d cached/%d failed, want 3/1/1", s.PointsCompleted, s.PointsCached, s.PointsFailed)
	}
	if s.PointLatencyUS.Count != 3 || s.PointLatencyUS.Max < 50000 {
		t.Errorf("latency digest %+v", s.PointLatencyUS)
	}
	if s.QueuePeak != 2 {
		t.Errorf("queue peak %d, want 2", s.QueuePeak)
	}
}

func TestServiceMetricsConcurrent(t *testing.T) {
	m := NewServiceMetrics()
	const G, per = 16, 50
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.JobAdmitted()
				m.JobStarted()
				m.PointDone(i%2 == 0, false, time.Duration(i)*time.Microsecond)
				m.JobDone(true, false)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.JobsAdmitted != G*per || s.JobsCompleted != G*per {
		t.Errorf("admitted %d completed %d, want %d", s.JobsAdmitted, s.JobsCompleted, G*per)
	}
	if s.QueueDepth != 0 || s.ActiveJobs != 0 {
		t.Errorf("residual queue %d active %d", s.QueueDepth, s.ActiveJobs)
	}
	if s.PointsCompleted != G*per || s.PointLatencyUS.Count != G*per {
		t.Errorf("points %d latency count %d, want %d", s.PointsCompleted, s.PointLatencyUS.Count, G*per)
	}
}

func TestServiceSnapshotRenderAndJSON(t *testing.T) {
	m := NewServiceMetrics()
	m.JobAdmitted()
	m.JobStarted()
	m.PointDone(true, false, time.Millisecond)
	m.JobDone(true, false)

	s := m.Snapshot()
	out := s.Render()
	for _, want := range []string{"jobs: 1 admitted", "points: 1 completed (1 cached", "point latency:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back ServiceSnapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != s {
		t.Errorf("snapshot JSON round-trip diverged: %+v vs %+v", back, s)
	}
}
