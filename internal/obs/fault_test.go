package obs

import (
	"strings"
	"testing"

	"repro/internal/noc"
	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// TestFaultRecorderMetrics drives the recorder with a synthetic event
// stream and checks every derived metric: retransmission rate, MTTR, and
// the pre/post-fault latency split.
func TestFaultRecorderMetrics(t *testing.T) {
	r := NewFaultRecorder()

	// Two link-crossing flits, one local ejection, one retransmission.
	r.FlitSent(0, noc.PortRF, 10)
	r.FlitSent(0, noc.PortRF, 11)
	r.FlitSent(0, noc.PortLocal, 12)
	r.Retransmit(0, noc.PortRF, 1, 11)
	r.FlitCorrupted(0, noc.PortRF, 11)
	if got := r.RetransmissionRate(); got != 0.5 {
		t.Errorf("retransmission rate = %v, want 0.5 (1 retransmit / 2 link flits)", got)
	}
	if r.Corrupted != 1 || r.Retransmits != 1 {
		t.Errorf("counters corrupted=%d retransmits=%d, want 1/1", r.Corrupted, r.Retransmits)
	}

	// Delivered before any failure: counts toward the pre-fault mean.
	r.PacketDelivered(noc.Message{Inject: 10}, 30, 0)

	// Failures at 100 and 200, repair (replan) at 260.
	r.LinkFailed(0, noc.PortRF, 100)
	r.LinkFailed(1, noc.PortRF, 200)
	if r.LinkFailures != 2 {
		t.Errorf("link failures = %d, want 2", r.LinkFailures)
	}

	// Injected between the failures: belongs to neither window.
	r.PacketDelivered(noc.Message{Inject: 150}, 180, 0)
	// Injected after the last failure: post-fault.
	r.PacketDelivered(noc.Message{Inject: 220}, 260, 0)

	r.Replanned(3, 260)
	if r.Replans != 1 {
		t.Errorf("replans = %d, want 1", r.Replans)
	}
	// MTTR covers the oldest open fault (cycle 100) to the replan (260).
	if got := r.MTTR(); got != 160 {
		t.Errorf("MTTR = %v, want 160", got)
	}

	pre, post, delta, ok := r.LatencyDelta()
	if !ok {
		t.Fatal("latency delta unavailable despite traffic on both sides")
	}
	if pre != 20 || post != 40 || delta != 20 {
		t.Errorf("latency delta pre=%v post=%v delta=%v, want 20/40/+20", pre, post, delta)
	}

	out := r.Render()
	for _, want := range []string{"retransmits 1", "link failures 2", "MTTR 160", "delta +20.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

// TestFaultRecorderAvailability exercises the band-cycle accounting
// against a real network config: with one of two shortcut bands dead for
// half the observed cycles, availability is 0.75.
func TestFaultRecorderAvailability(t *testing.T) {
	m := topology.New(6, 6)
	n := noc.New(noc.Config{
		Mesh:      m,
		Width:     tech.Width16B,
		Shortcuts: shortcut.SelectMaxCost(m.Graph(), shortcut.Params{Budget: 2}),
	})

	r := NewFaultRecorder()
	if got := r.Availability(); got != 1 {
		t.Errorf("availability before any cycle = %v, want 1", got)
	}
	for i := 0; i < 10; i++ {
		r.CycleEnd(n)
	}
	r.LinkFailed(5, noc.PortRF, 10)
	for i := 0; i < 10; i++ {
		r.CycleEnd(n)
	}
	if got := r.Availability(); got != 0.75 {
		t.Errorf("availability = %v, want 0.75 (1 of 2 bands dead for 10 of 20 cycles)", got)
	}

	// A replan revives the shortcut bands; availability recovers.
	r.Replanned(2, 20)
	for i := 0; i < 20; i++ {
		r.CycleEnd(n)
	}
	if got := r.Availability(); got != 0.875 {
		t.Errorf("availability after replan = %v, want 0.875", got)
	}
}
