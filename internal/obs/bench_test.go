package obs_test

import (
	"math/rand"
	"testing"

	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/tech"
	"repro/internal/topology"
)

// benchStep mirrors the simulator core benchmark in internal/noc
// (BenchmarkStepBaseline16B): steady 0.8 random unicast load on the
// paper's 10x10 mesh at 16 B, with the given observers attached.
//
// BenchmarkObserverOverhead/none is the acceptance gate for the observer
// seam: it must stay within 2% of BenchmarkStepBaseline16B, since with
// no observer attached every hook reduces to one slice-length check.
func benchStep(b *testing.B, observers ...noc.Observer) {
	n := noc.New(noc.Config{Mesh: topology.New10x10(), Width: tech.Width16B})
	for _, o := range observers {
		n.AttachObserver(o)
	}
	rng := rand.New(rand.NewSource(1))
	step := func() {
		if rng.Float64() < 0.8 {
			src, dst := rng.Intn(100), rng.Intn(100)
			if src != dst {
				n.Inject(noc.Message{Src: src, Dst: dst, Class: noc.Data, Inject: n.Now()})
			}
		}
		n.Step()
	}
	for i := 0; i < 2000; i++ {
		step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()
	if !n.Drain(5_000_000) {
		b.Fatal("drain failed")
	}
}

// noopObserver subscribes to every event but does nothing: the cost of
// the dispatch loop itself when an observer is attached.
type noopObserver struct{ noc.BaseObserver }

func BenchmarkObserverOverhead(b *testing.B) {
	b.Run("none", func(b *testing.B) { benchStep(b) })
	b.Run("noop", func(b *testing.B) { benchStep(b, &noopObserver{}) })
	b.Run("latency", func(b *testing.B) { benchStep(b, obs.NewLatencyRecorder()) })
	b.Run("timeline", func(b *testing.B) { benchStep(b, obs.NewLinkTimeline(1000)) })
	b.Run("invariant", func(b *testing.B) { benchStep(b, obs.NewInvariantChecker()) })
	b.Run("all", func(b *testing.B) {
		benchStep(b, obs.NewLatencyRecorder(), obs.NewLinkTimeline(1000), obs.NewInvariantChecker())
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h obs.Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 1023))
	}
}
