package obs

import (
	"fmt"

	"repro/internal/noc"
)

// IntegrityRecorder is an Observer that condenses the adversarial-fault
// and self-healing event streams into a run-level health report:
//
//   - adversarial faults observed: misroutes, misdeliveries (RF band
//     mis-tunes detected by the integrity layer), duplicates injected
//     by band re-triggers, credit leaks and stuck VCs;
//   - integrity-layer outcomes: duplicates dropped at the receiver,
//     end-to-end retransmissions, packets abandoned after the retry
//     budget;
//   - watchdog recoveries by stage (1 = credit repair / VC unstick,
//     2 = escape drain, 3 = scrub and re-inject) with the cycle of the
//     last escalation.
//
// Memory is O(1); attach alongside a fault.Injector or on any run with
// FaultConfig rates set.
type IntegrityRecorder struct {
	noc.BaseObserver

	Misroutes     int64
	Misdeliveries int64
	DupsInjected  int64
	CreditLeaks   int64
	StuckVCs      int64

	DupsDropped int64
	Retransmits int64
	Lost        int64

	// Recoveries[s] counts watchdog escalations that fired stage s+1;
	// RecoveryActions[s] sums the repairs each stage reported.
	Recoveries      [3]int64
	RecoveryActions [3]int64
	LastRecoveryAt  int64
}

// NewIntegrityRecorder returns an empty recorder.
func NewIntegrityRecorder() *IntegrityRecorder {
	return &IntegrityRecorder{LastRecoveryAt: -1}
}

// PacketMisrouted implements noc.Observer.
func (r *IntegrityRecorder) PacketMisrouted(_, _ int, _ int64) { r.Misroutes++ }

// PacketMisdelivered implements noc.Observer.
func (r *IntegrityRecorder) PacketMisdelivered(_ int, _ noc.Message, _ int64) {
	r.Misdeliveries++
}

// DuplicateInjected implements noc.Observer.
func (r *IntegrityRecorder) DuplicateInjected(_ int, _ int64) { r.DupsInjected++ }

// DuplicateDropped implements noc.Observer.
func (r *IntegrityRecorder) DuplicateDropped(_ int, _ noc.Message, _ int64) {
	r.DupsDropped++
}

// IntegrityRetransmit implements noc.Observer.
func (r *IntegrityRecorder) IntegrityRetransmit(_, _, _ int, _ int64) { r.Retransmits++ }

// PacketLost implements noc.Observer.
func (r *IntegrityRecorder) PacketLost(_ noc.Message, _ int64) { r.Lost++ }

// CreditLeaked implements noc.Observer.
func (r *IntegrityRecorder) CreditLeaked(_, _ int, _ int64) { r.CreditLeaks++ }

// VCStuck implements noc.Observer.
func (r *IntegrityRecorder) VCStuck(_, _ int, _ int64) { r.StuckVCs++ }

// WatchdogRecovery implements noc.Observer.
func (r *IntegrityRecorder) WatchdogRecovery(stage, actions int, now int64) {
	if stage >= 1 && stage <= 3 {
		r.Recoveries[stage-1]++
		r.RecoveryActions[stage-1] += int64(actions)
	}
	r.LastRecoveryAt = now
}

// TotalRecoveries sums watchdog escalations across stages.
func (r *IntegrityRecorder) TotalRecoveries() int64 {
	return r.Recoveries[0] + r.Recoveries[1] + r.Recoveries[2]
}

// Render reports the health metrics.
func (r *IntegrityRecorder) Render() string {
	s := fmt.Sprintf(
		"adversarial: misroutes %d, misdeliveries %d, duplicates %d, credit leaks %d, stuck VCs %d\n"+
			"integrity: duplicates dropped %d, retransmits %d, packets lost %d",
		r.Misroutes, r.Misdeliveries, r.DupsInjected, r.CreditLeaks, r.StuckVCs,
		r.DupsDropped, r.Retransmits, r.Lost)
	if n := r.TotalRecoveries(); n > 0 {
		s += fmt.Sprintf("\nwatchdog: %d recoveries (stage1 %d/%d repairs, stage2 %d/%d escapes, stage3 %d/%d scrubs), last at cycle %d",
			n,
			r.Recoveries[0], r.RecoveryActions[0],
			r.Recoveries[1], r.RecoveryActions[1],
			r.Recoveries[2], r.RecoveryActions[2],
			r.LastRecoveryAt)
	}
	return s
}
