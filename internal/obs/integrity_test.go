package obs

import (
	"strings"
	"testing"

	"repro/internal/noc"
)

func TestHorizonForDrainBudget(t *testing.T) {
	cases := []struct{ drain, want int64 }{
		{0, 200_000},       // degenerate budget keeps the floor
		{100_000, 200_000}, // short test budgets never tighten below the floor
		{400_000, 200_000}, // the default drain budget reproduces the default horizon
		{1_000_000, 500_000},
		{10_000_000, 5_000_000},
	}
	for _, tc := range cases {
		if got := HorizonForDrainBudget(tc.drain); got != tc.want {
			t.Errorf("HorizonForDrainBudget(%d) = %d, want %d", tc.drain, got, tc.want)
		}
	}
	c := NewInvariantCheckerForDrain(1_000_000)
	if c.DeadlockHorizon != 500_000 || c.Every != 1024 {
		t.Errorf("derived checker misconfigured: %+v", c)
	}
}

func TestIntegrityRecorderCountsAndRender(t *testing.T) {
	r := NewIntegrityRecorder()
	if r.LastRecoveryAt != -1 {
		t.Fatalf("fresh recorder claims a recovery at %d", r.LastRecoveryAt)
	}
	msg := noc.Message{Src: 1, Dst: 2}
	r.PacketMisrouted(3, 1, 10)
	r.PacketMisdelivered(4, msg, 11)
	r.DuplicateInjected(5, 12)
	r.DuplicateDropped(2, msg, 13)
	r.IntegrityRetransmit(1, 2, 1, 14)
	r.PacketLost(msg, 15)
	r.CreditLeaked(6, 7, 16)
	r.VCStuck(8, 0, 17)
	r.WatchdogRecovery(1, 3, 100)
	r.WatchdogRecovery(3, 1, 200)
	r.WatchdogRecovery(0, 9, 300) // out-of-range stage: counted nowhere
	if r.Misroutes != 1 || r.Misdeliveries != 1 || r.DupsInjected != 1 ||
		r.DupsDropped != 1 || r.Retransmits != 1 || r.Lost != 1 ||
		r.CreditLeaks != 1 || r.StuckVCs != 1 {
		t.Errorf("event counts wrong: %+v", r)
	}
	if r.TotalRecoveries() != 2 || r.Recoveries[0] != 1 || r.Recoveries[2] != 1 {
		t.Errorf("recovery staging wrong: %+v", r.Recoveries)
	}
	if r.LastRecoveryAt != 300 {
		t.Errorf("LastRecoveryAt = %d, want 300", r.LastRecoveryAt)
	}
	out := r.Render()
	for _, want := range []string{"misroutes 1", "duplicates dropped 1", "2 recoveries", "last at cycle 300"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
