package obs

import (
	"math/rand"
	"sort"
	"testing"
)

// Buckets below 64 are exact: quantiles on small samples must be exact.
func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 64; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
	if got := h.Quantile(0.5); got != 32 {
		t.Errorf("p50 = %d, want 32", got)
	}
	if got := h.Max(); got != 63 {
		t.Errorf("max = %d, want 63", got)
	}
	if got := h.Mean(); got != 31.5 {
		t.Errorf("mean = %f, want 31.5", got)
	}
}

// Above the linear range quantiles must stay within the documented ~3%
// relative error of the exact order statistics.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	samples := make([]int64, 20000)
	for i := range samples {
		// Log-uniform latencies spanning 1..1M cycles.
		v := int64(1) << uint(rng.Intn(20))
		v += rng.Int63n(v)
		samples[i] = v
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)))]
		got := h.Quantile(q)
		relErr := float64(got-exact) / float64(exact)
		if relErr < -0.05 || relErr > 0.01 {
			// The estimate is a bucket lower bound: it may undershoot by
			// one bucket width (1/32 ≈ 3%) but never overshoot past the
			// next sample.
			t.Errorf("q%.2f = %d, exact %d (rel err %.3f)", q, got, exact, relErr)
		}
	}
	if h.Count() != int64(len(samples)) {
		t.Errorf("count = %d, want %d", h.Count(), len(samples))
	}
	if h.Max() != samples[len(samples)-1] {
		t.Errorf("max = %d, want %d", h.Max(), samples[len(samples)-1])
	}
}

// Every representable value must map to a bucket whose bounds contain
// it, and bucket lower bounds must be monotonically increasing.
func TestHistogramBucketMapping(t *testing.T) {
	for i := 1; i < histBuckets; i++ {
		if bucketLow(i) <= bucketLow(i-1) {
			t.Fatalf("bucketLow not monotonic at %d: %d <= %d", i, bucketLow(i), bucketLow(i-1))
		}
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100000; i++ {
		v := rng.Int63() >> uint(rng.Intn(62))
		b := bucketOf(v)
		if lo := bucketLow(b); v < lo {
			t.Fatalf("value %d below its bucket %d lower bound %d", v, b, lo)
		}
		if b+1 < histBuckets {
			if hi := bucketLow(b + 1); v >= hi {
				t.Fatalf("value %d at/above next bucket bound %d", v, hi)
			}
		}
	}
}

// Negative samples clamp to zero rather than corrupting the histogram.
func TestHistogramNegativeClamp(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Errorf("negative sample mishandled: %+v", h.Summary())
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(20)
	if s := h.Summary().String(); s == "" {
		t.Error("empty summary string")
	}
	if s := h.Render(40); s == "" {
		t.Error("empty render")
	}
}
