package obs

// ServiceMetrics instruments the long-running sweep service
// (cmd/rfsimd): admission-control decisions, queue depth, cache
// effectiveness and per-point latency. It reuses the log-linear
// Histogram underlying LatencyRecorder, so the service reports the same
// p50/p90/p99/max digests as the simulator's own latency figures.
//
// All methods are safe for concurrent use; the service calls them from
// request handlers and supervisor worker goroutines simultaneously.

import (
	"fmt"
	"sync"
	"time"
)

// ServiceMetrics accumulates service-level counters. Use
// NewServiceMetrics.
type ServiceMetrics struct {
	mu sync.Mutex

	jobsAdmitted    int64
	jobsRejected    int64
	jobsShedBatch   int64
	jobsQuarantined int64
	jobsCompleted   int64
	jobsFailed      int64
	queueDepth      int64
	queuePeak       int64
	active          int64

	pointsCompleted int64
	pointsFailed    int64
	pointsCached    int64

	workersSpawned         int64
	workersCrashed         int64
	workersKilledHeartbeat int64
	workersKilledDeadline  int64
	workersOOM             int64
	workerRestartBackoffs  int64

	journalAccepted    int64
	journalCompleted   int64
	journalReplayed    int64
	journalTornSkipped int64
	journalCompactions int64

	jobsAttached        int64
	resumeReads         int64
	resultFrames        int64
	resultTornTruncated int64

	pointLatencyUS Histogram // wall-clock per settled point, microseconds
}

// NewServiceMetrics builds an empty metrics set.
func NewServiceMetrics() *ServiceMetrics { return &ServiceMetrics{} }

// JobAdmitted records a sweep passing admission control and entering the
// queue.
func (m *ServiceMetrics) JobAdmitted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsAdmitted++
	m.queueDepth++
	if m.queueDepth > m.queuePeak {
		m.queuePeak = m.queueDepth
	}
}

// JobRejected records an admission-control rejection (HTTP 429). batch
// marks a batch-class job shed while interactive headroom remained —
// the load-shedding path, counted separately so operators can tell
// "queue full" from "batch traffic displaced by interactive reserve".
func (m *ServiceMetrics) JobRejected(batch bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsRejected++
	if batch {
		m.jobsShedBatch++
	}
}

// JobQuarantined records a request refused (HTTP 422) because a config
// it names is quarantined by the poison-config breaker.
func (m *ServiceMetrics) JobQuarantined() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsQuarantined++
}

// EstimateWait projects how long a rejected client should wait before
// retrying: the jobs ahead of it (queue depth) each cost roughly the
// live p50 per-point wall latency, spread across slots concurrent run
// slots. It is deliberately coarse — jobs have varying point counts —
// but it scales Retry-After with actual load instead of a constant.
// Returns 0 when the latency digest is still empty (cold service).
func (m *ServiceMetrics) EstimateWait(slots int) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if slots <= 0 {
		slots = 1
	}
	if m.pointLatencyUS.Count() == 0 {
		return 0
	}
	p50 := m.pointLatencyUS.Quantile(0.5)
	if p50 <= 0 {
		return 0
	}
	est := time.Duration(m.queueDepth) * time.Duration(p50) * time.Microsecond / time.Duration(slots)
	if est < 0 {
		est = 0
	}
	return est
}

// JobStarted moves a queued job onto a run slot.
func (m *ServiceMetrics) JobStarted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.active++
}

// JobDone retires a job (started or still queued — both hold a queue
// token), releasing its queue slot.
func (m *ServiceMetrics) JobDone(started, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueDepth--
	if started {
		m.active--
	}
	if failed {
		m.jobsFailed++
	} else {
		m.jobsCompleted++
	}
}

// PointDone records one settled sweep point: whether it was served from
// the cache, whether it ultimately failed, and its wall-clock latency.
func (m *ServiceMetrics) PointDone(cached, failed bool, wall time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pointsCompleted++
	if cached {
		m.pointsCached++
	}
	if failed {
		m.pointsFailed++
	}
	m.pointLatencyUS.Observe(wall.Microseconds())
}

// WorkerSpawned through WorkerRestartBackoff mirror the worker pool's
// lifecycle events into the service's own counter set, so one /v1/metrics
// read tells the whole isolation story.

// WorkerSpawned records a worker child process starting.
func (m *ServiceMetrics) WorkerSpawned() { m.bump(&m.workersSpawned) }

// WorkerCrashed records a worker dying (or being killed) mid-job.
func (m *ServiceMetrics) WorkerCrashed() { m.bump(&m.workersCrashed) }

// WorkerKilledHeartbeat records a SIGKILL for heartbeat loss.
func (m *ServiceMetrics) WorkerKilledHeartbeat() { m.bump(&m.workersKilledHeartbeat) }

// WorkerKilledDeadline records a SIGKILL for hard-deadline overrun.
func (m *ServiceMetrics) WorkerKilledDeadline() { m.bump(&m.workersKilledDeadline) }

// WorkerOOM records a worker self-terminating at its memory limit.
func (m *ServiceMetrics) WorkerOOM() { m.bump(&m.workersOOM) }

// WorkerRestartBackoff records a respawn delayed by crash backoff.
func (m *ServiceMetrics) WorkerRestartBackoff() { m.bump(&m.workerRestartBackoffs) }

// JournalAccepted records one accept record appended to the job WAL.
func (m *ServiceMetrics) JournalAccepted() { m.bump(&m.journalAccepted) }

// JournalCompleted records one done record appended to the job WAL.
func (m *ServiceMetrics) JournalCompleted() { m.bump(&m.journalCompleted) }

// JournalReplayed records one unfinished job re-enqueued at boot.
func (m *ServiceMetrics) JournalReplayed() { m.bump(&m.journalReplayed) }

// JournalTornSkipped records a torn or corrupt WAL record skipped
// during replay.
func (m *ServiceMetrics) JournalTornSkipped() { m.bump(&m.journalTornSkipped) }

// JournalCompacted records one journal compaction.
func (m *ServiceMetrics) JournalCompacted() { m.bump(&m.journalCompactions) }

// JobAttached records a POST served from an existing job (live tail or
// completed result log) instead of recomputation — the idempotent
// re-submit path.
func (m *ServiceMetrics) JobAttached() { m.bump(&m.jobsAttached) }

// ResumeRead records one GET /v1/jobs/{id}/results cursor replay.
func (m *ServiceMetrics) ResumeRead() { m.bump(&m.resumeReads) }

// ResultFrameAppended records one outcome or summary frame appended to
// a per-job result log.
func (m *ServiceMetrics) ResultFrameAppended() { m.bump(&m.resultFrames) }

// ResultTornTruncated records a result log whose torn tail (crash
// mid-append) was truncated at reopen.
func (m *ServiceMetrics) ResultTornTruncated() { m.bump(&m.resultTornTruncated) }

func (m *ServiceMetrics) bump(c *int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	*c++
}

// ServiceSnapshot is a point-in-time JSON-able view of the counters.
type ServiceSnapshot struct {
	JobsAdmitted    int64 `json:"jobs_admitted"`
	JobsRejected    int64 `json:"jobs_rejected"`
	JobsShedBatch   int64 `json:"jobs_shed_batch"`
	JobsQuarantined int64 `json:"jobs_quarantined"`
	JobsCompleted   int64 `json:"jobs_completed"`
	JobsFailed      int64 `json:"jobs_failed"`
	QueueDepth      int64 `json:"queue_depth"`
	QueuePeak       int64 `json:"queue_peak"`
	ActiveJobs      int64 `json:"active_jobs"`

	PointsCompleted int64 `json:"points_completed"`
	PointsFailed    int64 `json:"points_failed"`
	PointsCached    int64 `json:"points_cached"`

	WorkersSpawned         int64 `json:"workers_spawned,omitempty"`
	WorkersCrashed         int64 `json:"workers_crashed,omitempty"`
	WorkersKilledHeartbeat int64 `json:"workers_killed_heartbeat,omitempty"`
	WorkersKilledDeadline  int64 `json:"workers_killed_deadline,omitempty"`
	WorkersOOM             int64 `json:"workers_oom,omitempty"`
	WorkerRestartBackoffs  int64 `json:"worker_restart_backoffs,omitempty"`

	JournalAccepted    int64 `json:"journal_accepted,omitempty"`
	JournalCompleted   int64 `json:"journal_completed,omitempty"`
	JournalReplayed    int64 `json:"journal_replayed,omitempty"`
	JournalTornSkipped int64 `json:"journal_torn_skipped,omitempty"`
	JournalCompactions int64 `json:"journal_compactions,omitempty"`

	JobsAttached        int64 `json:"jobs_attached,omitempty"`
	ResumeReads         int64 `json:"resume_reads,omitempty"`
	ResultFrames        int64 `json:"result_frames,omitempty"`
	ResultTornTruncated int64 `json:"result_torn_truncated,omitempty"`

	// PointLatencyUS digests per-point wall latency in microseconds.
	PointLatencyUS Summary `json:"point_latency_us"`
}

// Snapshot captures the current counters.
func (m *ServiceMetrics) Snapshot() ServiceSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ServiceSnapshot{
		JobsAdmitted:    m.jobsAdmitted,
		JobsRejected:    m.jobsRejected,
		JobsShedBatch:   m.jobsShedBatch,
		JobsQuarantined: m.jobsQuarantined,
		JobsCompleted:   m.jobsCompleted,
		JobsFailed:      m.jobsFailed,
		QueueDepth:      m.queueDepth,
		QueuePeak:       m.queuePeak,
		ActiveJobs:      m.active,
		PointsCompleted: m.pointsCompleted,
		PointsFailed:    m.pointsFailed,
		PointsCached:    m.pointsCached,

		WorkersSpawned:         m.workersSpawned,
		WorkersCrashed:         m.workersCrashed,
		WorkersKilledHeartbeat: m.workersKilledHeartbeat,
		WorkersKilledDeadline:  m.workersKilledDeadline,
		WorkersOOM:             m.workersOOM,
		WorkerRestartBackoffs:  m.workerRestartBackoffs,

		JournalAccepted:    m.journalAccepted,
		JournalCompleted:   m.journalCompleted,
		JournalReplayed:    m.journalReplayed,
		JournalTornSkipped: m.journalTornSkipped,
		JournalCompactions: m.journalCompactions,

		JobsAttached:        m.jobsAttached,
		ResumeReads:         m.resumeReads,
		ResultFrames:        m.resultFrames,
		ResultTornTruncated: m.resultTornTruncated,

		PointLatencyUS: m.pointLatencyUS.Summary(),
	}
}

// Render formats the snapshot as the service's human-readable status
// block.
func (s ServiceSnapshot) Render() string {
	out := fmt.Sprintf(
		"jobs: %d admitted, %d rejected (%d batch shed, %d quarantined), %d completed, %d failed (queue %d, peak %d, active %d)\n"+
			"points: %d completed (%d cached, %d failed)\n"+
			"point latency: %s",
		s.JobsAdmitted, s.JobsRejected, s.JobsShedBatch, s.JobsQuarantined, s.JobsCompleted, s.JobsFailed,
		s.QueueDepth, s.QueuePeak, s.ActiveJobs,
		s.PointsCompleted, s.PointsCached, s.PointsFailed,
		s.PointLatencyUS)
	if s.WorkersSpawned > 0 || s.WorkersCrashed > 0 {
		out += fmt.Sprintf(
			"\nworkers: %d spawned, %d crashed (%d heartbeat kills, %d deadline kills, %d oom), %d restart backoffs",
			s.WorkersSpawned, s.WorkersCrashed, s.WorkersKilledHeartbeat, s.WorkersKilledDeadline,
			s.WorkersOOM, s.WorkerRestartBackoffs)
	}
	if s.JournalAccepted > 0 || s.JournalReplayed > 0 || s.JournalTornSkipped > 0 {
		out += fmt.Sprintf(
			"\njournal: %d accepted, %d completed, %d replayed, %d torn skipped, %d compactions",
			s.JournalAccepted, s.JournalCompleted, s.JournalReplayed, s.JournalTornSkipped, s.JournalCompactions)
	}
	if s.ResultFrames > 0 || s.JobsAttached > 0 || s.ResumeReads > 0 {
		out += fmt.Sprintf(
			"\ndelivery: %d result frames, %d attaches, %d resume reads, %d torn logs truncated",
			s.ResultFrames, s.JobsAttached, s.ResumeReads, s.ResultTornTruncated)
	}
	return out
}
