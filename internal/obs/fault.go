package obs

import (
	"fmt"

	"repro/internal/noc"
)

// FaultRecorder is an Observer that condenses the fault-injection event
// stream into recovery metrics:
//
//   - raw counts of corruptions, retransmissions, link failures,
//     degraded reroutes and replans;
//   - the retransmission rate (link-layer retransmissions per flit
//     crossing a link — the fault model's effective overhead);
//   - MTTR: mean cycles from a link failure to the replan that restores
//     the overlay (faults still unrepaired when the run ends are not
//     counted);
//   - RF band availability: the fraction of band-cycles the overlay's
//     bands (shortcuts plus the multicast band) were alive;
//   - the post-fault latency delta: mean packet latency after the last
//     failure versus before the first, isolating what degradation
//     actually cost delivered traffic.
//
// Memory is O(1); attach alongside an Injector (internal/fault) or any
// other kill site.
type FaultRecorder struct {
	noc.BaseObserver

	Corrupted    int64
	Retransmits  int64
	LinkFailures int64
	Reroutes     int64
	Replans      int64

	flitsSent int64

	// MTTR bookkeeping: openFaultAt is the cycle of the oldest failure
	// not yet covered by a replan (-1 when none).
	openFaultAt int64
	repairSum   int64
	repairs     int64

	// Band availability: dead shortcut bands accumulate per cycle until
	// a replan restores the overlay; a dead multicast band never comes
	// back.
	cycles         int64
	deadBandCycles int64
	deadShortcuts  int
	mcDead         bool
	totalBands     int

	// Latency before the first failure vs after the last one.
	firstFailureAt int64
	lastFailureAt  int64
	preSum         int64
	preCount       int64
	postSum        int64
	postCount      int64
}

// NewFaultRecorder returns an empty recorder.
func NewFaultRecorder() *FaultRecorder {
	return &FaultRecorder{openFaultAt: -1, firstFailureAt: -1, lastFailureAt: -1}
}

// FlitSent implements noc.Observer (the retransmission-rate denominator:
// flits leaving through non-local ports).
func (r *FaultRecorder) FlitSent(_, outPort int, _ int64) {
	if outPort != noc.PortLocal {
		r.flitsSent++
	}
}

// FlitCorrupted implements noc.Observer.
func (r *FaultRecorder) FlitCorrupted(_, _ int, _ int64) { r.Corrupted++ }

// Retransmit implements noc.Observer.
func (r *FaultRecorder) Retransmit(_, _, _ int, _ int64) { r.Retransmits++ }

// LinkFailed implements noc.Observer.
func (r *FaultRecorder) LinkFailed(router, outPort int, now int64) {
	r.LinkFailures++
	if r.openFaultAt < 0 {
		r.openFaultAt = now
	}
	if r.firstFailureAt < 0 {
		r.firstFailureAt = now
	}
	r.lastFailureAt = now
	if router < 0 {
		r.mcDead = true
	} else if outPort == noc.PortRF {
		r.deadShortcuts++
	}
}

// DegradedReroute implements noc.Observer.
func (r *FaultRecorder) DegradedReroute(_, _ int, _ int64) { r.Reroutes++ }

// Replanned implements noc.Observer: the overlay's shortcut bands are
// restored (the dead multicast band stays dead) and any open fault
// window closes.
func (r *FaultRecorder) Replanned(_ int, now int64) {
	r.Replans++
	r.deadShortcuts = 0
	if r.openFaultAt >= 0 {
		r.repairSum += now - r.openFaultAt
		r.repairs++
		r.openFaultAt = -1
	}
}

// PacketDelivered implements noc.Observer.
func (r *FaultRecorder) PacketDelivered(msg noc.Message, at int64, _ int) {
	r.observeLatency(msg, at)
}

// MulticastDelivered implements noc.Observer.
func (r *FaultRecorder) MulticastDelivered(msg noc.Message, at int64) {
	r.observeLatency(msg, at)
}

func (r *FaultRecorder) observeLatency(msg noc.Message, at int64) {
	lat := at - msg.Inject
	switch {
	case r.firstFailureAt < 0 || msg.Inject < r.firstFailureAt:
		r.preSum += lat
		r.preCount++
	case msg.Inject >= r.lastFailureAt:
		r.postSum += lat
		r.postCount++
	}
}

// CycleEnd implements noc.Observer: accumulates band-availability time.
func (r *FaultRecorder) CycleEnd(n *noc.Network) {
	if r.totalBands == 0 {
		cfg := n.Config()
		r.totalBands = len(cfg.Shortcuts)
		if cfg.Multicast == noc.MulticastRF {
			r.totalBands++
		}
	}
	r.cycles++
	dead := r.deadShortcuts
	if r.mcDead {
		dead++
	}
	r.deadBandCycles += int64(dead)
}

// RetransmissionRate returns link-layer retransmissions per flit sent
// over a link (0 when nothing was sent).
func (r *FaultRecorder) RetransmissionRate() float64 {
	if r.flitsSent == 0 {
		return 0
	}
	return float64(r.Retransmits) / float64(r.flitsSent)
}

// MTTR returns the mean cycles from a link failure to the replan that
// repaired the overlay, over closed fault windows (0 when none closed).
func (r *FaultRecorder) MTTR() float64 {
	if r.repairs == 0 {
		return 0
	}
	return float64(r.repairSum) / float64(r.repairs)
}

// Availability returns the fraction of band-cycles the RF overlay's
// bands were alive (1 for a design with no bands, or before any cycles
// elapsed).
func (r *FaultRecorder) Availability() float64 {
	total := int64(r.totalBands) * r.cycles
	if total == 0 {
		return 1
	}
	return 1 - float64(r.deadBandCycles)/float64(total)
}

// LatencyDelta returns mean packet latencies for traffic injected before
// the first failure and after the last one, and their difference — the
// steady-state cost of running degraded. Counts are zero when no failure
// occurred or no traffic straddled it.
func (r *FaultRecorder) LatencyDelta() (pre, post, delta float64, ok bool) {
	if r.preCount == 0 || r.postCount == 0 {
		return 0, 0, 0, false
	}
	pre = float64(r.preSum) / float64(r.preCount)
	post = float64(r.postSum) / float64(r.postCount)
	return pre, post, post - pre, true
}

// Render reports the recovery metrics.
func (r *FaultRecorder) Render() string {
	s := fmt.Sprintf(
		"corrupted %d, retransmits %d (rate %.4g/flit), link failures %d, reroutes %d, replans %d\n"+
			"band availability %.4f, MTTR %.0f cycles",
		r.Corrupted, r.Retransmits, r.RetransmissionRate(),
		r.LinkFailures, r.Reroutes, r.Replans,
		r.Availability(), r.MTTR())
	if pre, post, delta, ok := r.LatencyDelta(); ok {
		s += fmt.Sprintf("\npacket latency pre-fault %.1f, post-fault %.1f (delta %+.1f cycles)",
			pre, post, delta)
	}
	return s
}
