// Package obs provides the production observers for the flit-level
// simulator: a latency recorder (bucketed p50/p90/p99/max histograms of
// packet and per-flit latency), a link-utilization timeline (windowed
// per-port occupancy with CSV/JSON export), and an invariant checker
// (flit conservation, VC credit sanity, forward progress). All three
// implement noc.Observer and attach with Network.AttachObserver; with no
// observer attached the simulator's hot path is unchanged.
package obs

import (
	"fmt"
	"math/bits"
	"strings"
)

// histogram bucket layout: values below 2^histLinearBits land in their
// own unit-width bucket; above that, each power-of-two octave splits
// into histSubBuckets log-linear buckets. Worst-case relative error is
// 1/histSubBuckets (~3%), memory is a fixed ~1.9k counters.
const (
	histLinearBits = 6 // exact buckets for values < 64
	histSubBuckets = 32
	// Octaves cover top bits histLinearBits..62 (the largest int64 has
	// top bit 62, so 63 would overflow bucket bounds).
	histOctaves = 63 - histLinearBits
	histBuckets = (1 << histLinearBits) + histOctaves*histSubBuckets
)

// Histogram is a fixed-memory log-linear histogram of non-negative
// int64 samples (latencies in cycles). The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]int64
	count  int64
	sum    int64
	max    int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v < 1<<histLinearBits {
		return int(v)
	}
	top := bits.Len64(uint64(v)) - 1 // >= histLinearBits
	sub := int(v>>(uint(top)-5)) & (histSubBuckets - 1)
	return 1<<histLinearBits + (top-histLinearBits)*histSubBuckets + sub
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) int64 {
	if i < 1<<histLinearBits {
		return int64(i)
	}
	i -= 1 << histLinearBits
	top := histLinearBits + i/histSubBuckets
	sub := int64(i % histSubBuckets)
	return 1<<uint(top) + sub<<(uint(top)-5)
}

// Observe records one sample. Negative samples clamp to zero (they can
// only arise from clock-skew bugs; the invariant checker flags those
// separately).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the exact arithmetic mean of the samples (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the exact maximum sample (0 if empty).
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1): the
// lower bound of the bucket holding the ceil(q*count)-th sample. Exact
// below 64 cycles, within ~3% above.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			if lo := bucketLow(i); lo < h.max {
				return lo
			}
			return h.max
		}
	}
	return h.max
}

// Summary condenses the histogram into the percentile digest the
// experiment harness and cmd/rfsim report.
type Summary struct {
	Count int64
	Mean  float64
	P50   int64
	P90   int64
	P99   int64
	Max   int64
}

// Summary computes the digest.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.max,
	}
}

// String renders the digest on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%d p90=%d p99=%d max=%d",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// Buckets returns the non-empty buckets as (low bound, count) pairs in
// ascending order, for exporting the full distribution.
func (h *Histogram) Buckets() (lows []int64, counts []int64) {
	for i, c := range h.counts {
		if c != 0 {
			lows = append(lows, bucketLow(i))
			counts = append(counts, c)
		}
	}
	return lows, counts
}

// Render draws the distribution as an ASCII chart, one row per
// non-empty bucket, scaled to maxWidth characters.
func (h *Histogram) Render(maxWidth int) string {
	lows, counts := h.Buckets()
	var peak int64 = 1
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, lo := range lows {
		n := int(counts[i] * int64(maxWidth) / peak)
		fmt.Fprintf(&b, "%8d |%s %d\n", lo, strings.Repeat("#", n), counts[i])
	}
	return b.String()
}
