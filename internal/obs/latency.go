package obs

import (
	"fmt"

	"repro/internal/noc"
)

// LatencyRecorder is an Observer that builds latency distributions:
// packet latency (message creation to tail ejection, including multicast
// deliveries — the population behind the paper's "average network
// latency") and per-flit latency (each flit timestamped at its own
// injection cycle, the paper's latency/flit metric). Memory is O(1):
// two fixed-size log-linear histograms.
type LatencyRecorder struct {
	noc.BaseObserver
	Packets Histogram
	Flits   Histogram
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// PacketDelivered implements noc.Observer.
func (r *LatencyRecorder) PacketDelivered(msg noc.Message, at int64, _ int) {
	r.Packets.Observe(at - msg.Inject)
}

// MulticastDelivered implements noc.Observer: each destination served
// counts as one delivery, matching Stats.AvgPacketLatency's population.
func (r *LatencyRecorder) MulticastDelivered(msg noc.Message, at int64) {
	r.Packets.Observe(at - msg.Inject)
}

// FlitEjected implements noc.Observer.
func (r *LatencyRecorder) FlitEjected(_ int, lat int64) {
	r.Flits.Observe(lat)
}

// Render reports both distributions with their percentile digests.
func (r *LatencyRecorder) Render() string {
	return fmt.Sprintf("packet latency: %s\nflit latency:   %s",
		r.Packets.Summary(), r.Flits.Summary())
}
