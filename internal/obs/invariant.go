package obs

import (
	"fmt"

	"repro/internal/noc"
)

// InvariantChecker is an Observer that audits the network every Every
// cycles and fails loudly when a structural invariant breaks:
//
//   - flit conservation: injected == ejected + buffered + on-links;
//   - VC credit sanity: no VC's occupancy bookkeeping is negative or
//     exceeds its buffer capacity;
//   - packet accounting: the in-flight packet count never goes negative;
//   - forward progress: no head flit has occupied a VC for more than
//     DeadlockHorizon cycles (with escape VCs the network must be
//     deadlock-free, so an ancient head flit means a stuck router).
//
// On violation it calls Fail with a description that includes a dump of
// the implicated router's state; the default Fail panics, so a seeded
// fault or a regression stops the simulation at the first bad audit
// rather than corrupting results silently. experiments.Run attaches a
// checker automatically when running under "go test".
type InvariantChecker struct {
	noc.BaseObserver

	// Every is the audit period in cycles.
	Every int64

	// DeadlockHorizon is the maximum tolerated head-flit age. It must
	// comfortably exceed worst-case queueing at saturation — the default
	// is 200k cycles, far above any legitimate wait yet finite.
	DeadlockHorizon int64

	// Fail reports a violation; defaults to panicking with the message.
	// Tests may replace it to capture violations.
	Fail func(format string, args ...any)

	// Violations counts Fail invocations (useful when Fail is replaced
	// with a non-panicking recorder).
	Violations int64

	// Audits counts completed audit passes.
	Audits int64
}

// NewInvariantChecker returns a checker with the default period (1024
// cycles), horizon (200k cycles) and panicking Fail.
func NewInvariantChecker() *InvariantChecker {
	return &InvariantChecker{Every: 1024, DeadlockHorizon: 200_000}
}

// HorizonForDrainBudget derives a deadlock horizon from a run's drain
// budget: half the budget, floored at the 200k-cycle default. A run that
// legitimately needs its whole drain budget must not trip the checker
// mid-drain, but a head flit older than half the budget can no longer
// drain in time anyway — it is dead, and failing early names the stuck
// router instead of a generic drain timeout. The floor keeps short test
// budgets from turning routine congestion into violations.
func HorizonForDrainBudget(drainCycles int64) int64 {
	h := drainCycles / 2
	if h < 200_000 {
		return 200_000
	}
	return h
}

// NewInvariantCheckerForDrain returns a checker whose horizon is derived
// from the run's drain budget via HorizonForDrainBudget.
func NewInvariantCheckerForDrain(drainCycles int64) *InvariantChecker {
	return &InvariantChecker{Every: 1024, DeadlockHorizon: HorizonForDrainBudget(drainCycles)}
}

func (c *InvariantChecker) fail(format string, args ...any) {
	c.Violations++
	if c.Fail != nil {
		c.Fail(format, args...)
		return
	}
	panic(fmt.Sprintf("obs: invariant violation: "+format, args...))
}

// CycleEnd implements noc.Observer.
func (c *InvariantChecker) CycleEnd(n *noc.Network) {
	every := c.Every
	if every <= 0 {
		every = 1024
	}
	if n.Now()%every != 0 {
		return
	}
	c.Check(n)
}

// Check runs one audit pass immediately (CycleEnd calls it on period
// boundaries; tests and drain loops may call it directly).
func (c *InvariantChecker) Check(n *noc.Network) {
	c.Audits++
	rep := n.Audit()
	if err := rep.ConservationError(); err != 0 {
		c.fail("flit conservation broken at cycle %d: injected %d != ejected %d + buffered %d + on-links %d (error %+d)",
			rep.Now, rep.FlitsInjected, rep.FlitsEjected, rep.FlitsBuffered, rep.FlitsOnLinks, err)
	}
	if rep.CreditViolations > 0 {
		c.fail("%d VC credit violations at cycle %d", rep.CreditViolations, rep.Now)
	}
	if rep.PacketsInFlight < 0 {
		c.fail("negative in-flight packet count %d at cycle %d", rep.PacketsInFlight, rep.Now)
	}
	horizon := c.DeadlockHorizon
	if horizon <= 0 {
		horizon = 200_000
	}
	if rep.OldestHeadAge > horizon {
		c.fail("no forward progress: head flit stuck %d cycles (> horizon %d) at router %d port %s vc %d\n%s",
			rep.OldestHeadAge, horizon, rep.OldestRouter,
			noc.PortName(rep.OldestPort), rep.OldestVC, n.DumpRouter(rep.OldestRouter))
	}
}
