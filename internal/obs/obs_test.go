package obs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/tech"
	"repro/internal/topology"
)

// drive runs uniform random unicast traffic against a fresh network
// with the given observers attached and drains it.
func drive(t *testing.T, cfg noc.Config, cycles int, rate float64, seed int64, observers ...noc.Observer) *noc.Network {
	t.Helper()
	n := noc.New(cfg)
	for _, o := range observers {
		n.AttachObserver(o)
	}
	rng := rand.New(rand.NewSource(seed))
	N := cfg.Mesh.N()
	for i := 0; i < cycles; i++ {
		if rng.Float64() < rate {
			src, dst := rng.Intn(N), rng.Intn(N)
			if src != dst {
				n.Inject(noc.Message{Src: src, Dst: dst, Class: noc.Data, Inject: n.Now()})
			}
		}
		n.Step()
	}
	if !n.Drain(500000) {
		t.Fatal("network failed to drain")
	}
	return n
}

func cfg10x10() noc.Config {
	return noc.Config{Mesh: topology.New10x10(), Width: tech.Width8B}
}

// The latency recorder's histogram totals must agree with the network's
// own latency counters: identical populations, identical sums.
func TestLatencyRecorderMatchesStats(t *testing.T) {
	rec := obs.NewLatencyRecorder()
	n := drive(t, cfg10x10(), 6000, 0.5, 11, rec)
	s := n.Stats()
	if rec.Packets.Count() != s.PacketsEjected {
		t.Errorf("packet samples = %d, stats = %d", rec.Packets.Count(), s.PacketsEjected)
	}
	if rec.Flits.Count() != s.FlitsEjected {
		t.Errorf("flit samples = %d, stats = %d", rec.Flits.Count(), s.FlitsEjected)
	}
	if got, want := rec.Flits.Mean(), s.AvgFlitLatency(); got != want {
		t.Errorf("flit mean = %f, stats mean = %f", got, want)
	}
	sum := rec.Packets.Summary()
	if !(sum.P50 <= sum.P90 && sum.P90 <= sum.P99 && sum.P99 <= sum.Max) {
		t.Errorf("percentiles out of order: %+v", sum)
	}
	if sum.P50 < 5 {
		t.Errorf("implausible p50 %d: minimum head latency is 5 cycles/hop", sum.P50)
	}
	if rec.Render() == "" {
		t.Error("empty render")
	}
}

// The timeline's per-window flit totals must sum to the network's
// router-traversal counter, and both export formats must round-trip.
func TestLinkTimelineWindowsAndExport(t *testing.T) {
	tl := obs.NewLinkTimeline(500)
	n := drive(t, cfg10x10(), 2600, 0.4, 5, tl)

	var csvBuf bytes.Buffer
	if err := tl.WriteCSV(&csvBuf, n.Now()); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	samples := tl.Samples()
	if len(samples) < 5 {
		t.Fatalf("expected >= 5 windows, got %d", len(samples))
	}
	for i, s := range samples {
		if i > 0 && s.Start != samples[i-1].End {
			t.Errorf("window %d not contiguous: starts %d after end %d", i, s.Start, samples[i-1].End)
		}
	}
	var total int64
	for _, s := range samples {
		for r := range s.Flits {
			for p := 0; p < noc.NumPorts; p++ {
				total += s.Flits[r][p]
			}
		}
	}
	if total != n.Stats().RouterTraversals {
		t.Errorf("timeline total %d != router traversals %d", total, n.Stats().RouterTraversals)
	}

	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if lines[0] != "window_start,window_end,router,port,flits,utilization" {
		t.Errorf("bad CSV header: %q", lines[0])
	}
	if len(lines) < 100 {
		t.Errorf("suspiciously small CSV: %d rows", len(lines))
	}

	var jsonBuf bytes.Buffer
	if err := tl.WriteJSON(&jsonBuf, n.Now()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Window  int64              `json:"window_cycles"`
		Ports   []string           `json:"ports"`
		Samples []obs.WindowSample `json:"samples"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if doc.Window != 500 || len(doc.Ports) != noc.NumPorts || len(doc.Samples) != len(samples) {
		t.Errorf("JSON doc mismatch: window=%d ports=%d samples=%d", doc.Window, len(doc.Ports), len(doc.Samples))
	}

	_, _, _, util := tl.PeakUtilization()
	if util <= 0 || util > float64(cfg10x10().Mesh.N()) {
		t.Errorf("implausible peak utilization %f", util)
	}
}

// A healthy network must pass every audit.
func TestInvariantCheckerCleanRun(t *testing.T) {
	chk := obs.NewInvariantChecker()
	chk.Every = 64
	chk.Fail = func(format string, args ...any) {
		t.Fatalf("unexpected violation: "+format, args...)
	}
	n := drive(t, cfg10x10(), 4000, 0.6, 23, chk)
	chk.Check(n)
	if chk.Audits < 60 {
		t.Errorf("expected >= 60 audits, got %d", chk.Audits)
	}
	if chk.Violations != 0 {
		t.Errorf("violations on a healthy run: %d", chk.Violations)
	}
}

// Negative test: a deliberately corrupted flit counter must be caught
// at the next audit, with a conservation message.
func TestInvariantCheckerDetectsSeededCorruption(t *testing.T) {
	chk := obs.NewInvariantChecker()
	chk.Every = 32
	var got string
	chk.Fail = func(format string, args ...any) { got = fmt.Sprintf(format, args...) }

	n := noc.New(cfg10x10())
	n.AttachObserver(chk)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if src, dst := rng.Intn(100), rng.Intn(100); src != dst {
			n.Inject(noc.Message{Src: src, Dst: dst, Class: noc.Data, Inject: n.Now()})
		}
		n.Step()
	}
	if chk.Violations != 0 {
		t.Fatalf("violation before fault injection: %q", got)
	}
	n.CorruptFlitCounter(+3) // seeded fault: 3 flits appear from nowhere
	for i := 0; i < 64 && chk.Violations == 0; i++ {
		n.Step()
	}
	if chk.Violations == 0 {
		t.Fatal("checker missed the seeded counter corruption")
	}
	if !strings.Contains(got, "conservation") || !strings.Contains(got, "+3") {
		t.Errorf("unexpected violation message: %q", got)
	}
}

// The default Fail must panic so corrupted simulations cannot publish
// results silently.
func TestInvariantCheckerPanicsByDefault(t *testing.T) {
	chk := obs.NewInvariantChecker()
	n := noc.New(cfg10x10())
	n.AttachObserver(chk)
	n.Inject(noc.Message{Src: 0, Dst: 42, Class: noc.Request, Inject: 0})
	n.CorruptFlitCounter(-1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on violation")
		}
		if !strings.Contains(fmt.Sprint(r), "invariant violation") {
			t.Errorf("unexpected panic payload: %v", r)
		}
	}()
	n.Run(noc.NumPorts) // short: first audit is at the checker's Check of cycle 1024
	chk.Check(n)
}

// A stalled head flit beyond the horizon must trip the forward-progress
// check and include the stuck router's dump.
func TestInvariantCheckerForwardProgress(t *testing.T) {
	chk := obs.NewInvariantChecker()
	chk.Every = 16
	chk.DeadlockHorizon = 8 // absurdly tight: any in-flight packet trips it
	var got string
	chk.Fail = func(format string, args ...any) { got = fmt.Sprintf(format, args...) }

	n := noc.New(cfg10x10())
	n.AttachObserver(chk)
	// One long packet crossing the whole mesh keeps a head in flight
	// well past 8 cycles.
	n.Inject(noc.Message{Src: 0, Dst: 99, Class: noc.MemLine, Inject: 0})
	n.Run(64)
	if chk.Violations == 0 {
		t.Fatal("tight horizon not tripped by an in-flight packet")
	}
	if !strings.Contains(got, "forward progress") || !strings.Contains(got, "router") {
		t.Errorf("unexpected message: %q", got)
	}
}
