package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/noc"
)

// LinkTimeline is an Observer that samples per-port link occupancy in
// fixed cycle windows: for every router output port (the four mesh
// directions, the local NI port, and the RF shortcut band) it records
// how many flits departed during each window. The result is a
// congestion timeline — which links saturate, when, and how much load
// the shortcut overlay absorbs — exportable as CSV or JSON.
type LinkTimeline struct {
	noc.BaseObserver

	// Window is the sample window in cycles (fixed at construction).
	Window int64

	cur     [][noc.NumPorts]int64
	start   int64
	samples []WindowSample
}

// WindowSample is one completed window: Flits[r][p] flits left router r
// through port p during [Start, End).
type WindowSample struct {
	Start int64     `json:"start"`
	End   int64     `json:"end"`
	Flits [][]int64 `json:"flits"`
}

// NewLinkTimeline builds a timeline sampling every window cycles
// (default 1000 if window <= 0).
func NewLinkTimeline(window int64) *LinkTimeline {
	if window <= 0 {
		window = 1000
	}
	return &LinkTimeline{Window: window}
}

// FlitSent implements noc.Observer.
func (t *LinkTimeline) FlitSent(router, outPort int, _ int64) {
	if router >= len(t.cur) {
		grown := make([][noc.NumPorts]int64, router+1)
		copy(grown, t.cur)
		t.cur = grown
	}
	t.cur[router][outPort]++
}

// CycleEnd implements noc.Observer: closes the window on its boundary.
func (t *LinkTimeline) CycleEnd(n *noc.Network) {
	if now := n.Now(); now-t.start >= t.Window {
		t.flush(now)
	}
}

// flush closes the current window at cycle end (exclusive).
func (t *LinkTimeline) flush(end int64) {
	if end == t.start {
		return
	}
	s := WindowSample{Start: t.start, End: end, Flits: make([][]int64, len(t.cur))}
	for r := range t.cur {
		s.Flits[r] = append([]int64(nil), t.cur[r][:]...)
		t.cur[r] = [noc.NumPorts]int64{}
	}
	t.samples = append(t.samples, s)
	t.start = end
}

// Samples returns the completed windows (excluding the in-progress one).
func (t *LinkTimeline) Samples() []WindowSample { return t.samples }

// Utilization returns the busy fraction of the link leaving router r
// through port p during sample s (flits per cycle; 1.0 saturates a mesh
// link).
func (s WindowSample) Utilization(r, p int) float64 {
	if r >= len(s.Flits) || s.End == s.Start {
		return 0
	}
	return float64(s.Flits[r][p]) / float64(s.End-s.Start)
}

// WriteCSV exports the timeline as tidy rows — window_start,
// window_end, router, port, flits, utilization — omitting idle links.
// The in-progress window is flushed first using atCycle as its end.
func (t *LinkTimeline) WriteCSV(w io.Writer, atCycle int64) error {
	t.flush(atCycle)
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"window_start", "window_end", "router", "port", "flits", "utilization"}); err != nil {
		return err
	}
	for _, s := range t.samples {
		for r := range s.Flits {
			for p := 0; p < noc.NumPorts; p++ {
				if s.Flits[r][p] == 0 {
					continue
				}
				if err := cw.Write([]string{
					strconv.FormatInt(s.Start, 10),
					strconv.FormatInt(s.End, 10),
					strconv.Itoa(r),
					noc.PortName(p),
					strconv.FormatInt(s.Flits[r][p], 10),
					strconv.FormatFloat(s.Utilization(r, p), 'f', 4, 64),
				}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// timelineJSON is the JSON export envelope.
type timelineJSON struct {
	Window int64          `json:"window_cycles"`
	Ports  []string       `json:"ports"`
	Sample []WindowSample `json:"samples"`
}

// WriteJSON exports the timeline (all windows, including zero entries)
// as one JSON document. The in-progress window is flushed first using
// atCycle as its end.
func (t *LinkTimeline) WriteJSON(w io.Writer, atCycle int64) error {
	t.flush(atCycle)
	ports := make([]string, noc.NumPorts)
	for p := range ports {
		ports[p] = noc.PortName(p)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(timelineJSON{Window: t.Window, Ports: ports, Sample: t.samples})
}

// PeakUtilization returns the most-loaded (router, port, window) triple
// seen so far and its utilization, for quick congestion summaries.
func (t *LinkTimeline) PeakUtilization() (router, port int, window WindowSample, util float64) {
	for _, s := range t.samples {
		for r := range s.Flits {
			for p := 0; p < noc.NumPorts; p++ {
				if u := s.Utilization(r, p); u > util {
					router, port, window, util = r, p, s, u
				}
			}
		}
	}
	return router, port, window, util
}

// String summarizes the timeline.
func (t *LinkTimeline) String() string {
	r, p, s, u := t.PeakUtilization()
	return fmt.Sprintf("%d windows of %d cycles; peak link (%d).%s %.3f flits/cycle in [%d,%d)",
		len(t.samples), t.Window, r, noc.PortName(p), u, s.Start, s.End)
}
