package rng

import (
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverge at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different-seed streams collide %d/1000 times", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.s == [4]uint64{} {
		t.Fatal("seed 0 produced the invalid all-zero state")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("only %d distinct values in 100 draws", len(seen))
	}
}

func TestMarshalRoundTripMidStream(t *testing.T) {
	r := New(7)
	for i := 0; i < 137; i++ {
		r.Uint64()
	}
	blob, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored Rand
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if got, want := restored.Uint64(), r.Uint64(); got != want {
			t.Fatalf("restored stream diverges at draw %d: %d != %d", i, got, want)
		}
	}
}

func TestUnmarshalRejectsBadBlobs(t *testing.T) {
	var r Rand
	cases := [][]byte{
		nil,
		{},
		{1, 2, 3},
		make([]byte, stateSize),                // version 0, all-zero state
		append([]byte{9}, make([]byte, 32)...), // unknown version
		append([]byte{1}, make([]byte, 32)...), // all-zero state
	}
	for i, blob := range cases {
		if err := r.UnmarshalBinary(blob); err == nil {
			t.Errorf("case %d: bad blob accepted", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %v suspiciously far from 0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < n/7-1000 || c > n/7+1000 {
			t.Fatalf("Intn(7): value %d drawn %d times, want ~%d", v, c, n/7)
		}
	}
}

func TestPerm(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 17, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has %d entries", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	r := New(1)
	for _, fn := range []func(){
		func() { r.Intn(0) },
		func() { r.Int63n(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on non-positive bound")
				}
			}()
			fn()
		}()
	}
}
