// Package rng provides the simulator's pseudo-random number generator:
// xoshiro256** seeded through splitmix64. Unlike math/rand's default
// source, its entire state is four words that marshal to a small,
// versioned binary blob, which is what makes deterministic
// checkpoint/restore of traffic generators and the fault injector
// possible (internal/checkpoint): a generator restored mid-stream
// continues with exactly the draw sequence the uninterrupted run would
// have produced.
//
// The generator is not safe for concurrent use; every simulation
// component owns its own instance, like math/rand.Rand.
package rng

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Rand is a deterministic, serializable PRNG (xoshiro256**).
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed. Distinct seeds yield
// uncorrelated streams (splitmix64 expansion); equal seeds yield
// identical streams.
func New(seed int64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream defined by seed.
func (r *Rand) Seed(seed int64) {
	x := uint64(seed)
	for i := range r.s {
		// splitmix64: guarantees a non-zero state even for seed 0.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit random integer.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Int63n returns a uniform random integer in [0, n). Panics if n <= 0,
// matching math/rand.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	if n&(n-1) == 0 { // power of two
		return r.Int63() & (n - 1)
	}
	// Rejection sampling for exact uniformity.
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Intn returns a uniform random integer in [0, n). Panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Int63n(int64(n)))
}

// Float64 returns a uniform random float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// state blob layout: version byte followed by the four state words,
// little-endian.
const (
	stateVersion = 1
	stateSize    = 1 + 4*8
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (r *Rand) MarshalBinary() ([]byte, error) {
	out := make([]byte, stateSize)
	out[0] = stateVersion
	for i, w := range r.s {
		binary.LittleEndian.PutUint64(out[1+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. A restored
// generator continues the marshaled stream exactly.
func (r *Rand) UnmarshalBinary(data []byte) error {
	if len(data) != stateSize {
		return fmt.Errorf("rng: state blob is %d bytes, want %d", len(data), stateSize)
	}
	if data[0] != stateVersion {
		return fmt.Errorf("rng: unsupported state version %d", data[0])
	}
	var s [4]uint64
	allZero := true
	for i := range s {
		s[i] = binary.LittleEndian.Uint64(data[1+8*i:])
		if s[i] != 0 {
			allZero = false
		}
	}
	if allZero {
		return fmt.Errorf("rng: all-zero state is invalid")
	}
	r.s = s
	return nil
}
