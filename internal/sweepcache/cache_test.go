package sweepcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoComputesOnceThenHits(t *testing.T) {
	c := New(0)
	var runs atomic.Int64
	compute := func() ([]byte, error) {
		runs.Add(1)
		return []byte("result"), nil
	}
	blob, hit, err := c.Do(context.Background(), "k", compute)
	if err != nil || hit || string(blob) != "result" {
		t.Fatalf("first Do: blob=%q hit=%v err=%v", blob, hit, err)
	}
	blob, hit, err = c.Do(context.Background(), "k", compute)
	if err != nil || !hit || string(blob) != "result" {
		t.Fatalf("second Do: blob=%q hit=%v err=%v", blob, hit, err)
	}
	if runs.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", runs.Load())
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Joins != 0 || s.Entries != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 miss / 0 joins / 1 entry", s)
	}
}

// TestDoSingleFlight is the core exactly-once property: 100 goroutines
// racing on the same key run the computation exactly once and all see
// the same bytes.
func TestDoSingleFlight(t *testing.T) {
	c := New(0)
	var runs atomic.Int64
	gate := make(chan struct{})
	compute := func() ([]byte, error) {
		runs.Add(1)
		<-gate // hold the flight open until every goroutine has joined
		return []byte("shared"), nil
	}

	const N = 100
	var wg sync.WaitGroup
	started := make(chan struct{}, N)
	results := make([][]byte, N)
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			results[i], _, errs[i] = c.Do(context.Background(), "hot", compute)
		}(i)
	}
	for i := 0; i < N; i++ {
		<-started
	}
	close(gate)
	wg.Wait()

	if runs.Load() != 1 {
		t.Fatalf("compute ran %d times under %d racing callers, want exactly 1", runs.Load(), N)
	}
	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], []byte("shared")) {
			t.Fatalf("caller %d got %q", i, results[i])
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1", s.Misses)
	}
	if s.Hits+s.Joins != N-1 {
		t.Errorf("hits+joins = %d, want %d", s.Hits+s.Joins, N-1)
	}
}

// TestDoDistinctKeysNeverCollide: concurrent flights on distinct keys
// each compute their own value and never observe another key's bytes.
func TestDoDistinctKeysNeverCollide(t *testing.T) {
	c := New(0)
	const K, per = 20, 10
	var wg sync.WaitGroup
	for k := 0; k < K; k++ {
		key := fmt.Sprintf("key-%d", k)
		want := []byte(fmt.Sprintf("value-%d", k))
		for j := 0; j < per; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				blob, _, err := c.Do(context.Background(), key, func() ([]byte, error) {
					return want, nil
				})
				if err != nil {
					t.Errorf("%s: %v", key, err)
					return
				}
				if !bytes.Equal(blob, want) {
					t.Errorf("%s returned %q, want %q", key, blob, want)
				}
			}()
		}
	}
	wg.Wait()
	if s := c.Stats(); s.Entries != K {
		t.Errorf("entries = %d, want %d", s.Entries, K)
	}
}

// TestDoErrorNotCached: a failed computation must not poison the key —
// the next Do runs compute again.
func TestDoErrorNotCached(t *testing.T) {
	c := New(0)
	var runs atomic.Int64
	boom := errors.New("boom")
	_, _, err := c.Do(context.Background(), "k", func() ([]byte, error) {
		runs.Add(1)
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	blob, hit, err := c.Do(context.Background(), "k", func() ([]byte, error) {
		runs.Add(1)
		return []byte("ok"), nil
	})
	if err != nil || hit || string(blob) != "ok" {
		t.Fatalf("retry: blob=%q hit=%v err=%v", blob, hit, err)
	}
	if runs.Load() != 2 {
		t.Fatalf("runs = %d, want 2", runs.Load())
	}
}

// TestDoFollowerTakesOverOnLeaderCancel: when the leader's computation
// dies of its own context cancellation, a follower with a live context
// must re-run the computation instead of inheriting someone else's
// cancel.
func TestDoFollowerTakesOverOnLeaderCancel(t *testing.T) {
	c := New(0)
	leaderIn := make(chan struct{})
	followerJoined := make(chan struct{})

	go func() {
		c.Do(context.Background(), "k", func() ([]byte, error) {
			close(leaderIn)
			<-followerJoined
			return nil, context.Canceled // leader's client went away
		})
	}()
	<-leaderIn
	// Join the flight, then signal the leader to fail. The follower must
	// loop, become the new leader and compute the real value.
	done := make(chan struct{})
	var blob []byte
	var err error
	go func() {
		defer close(done)
		blob, _, err = c.Do(context.Background(), "k", func() ([]byte, error) {
			return []byte("recovered"), nil
		})
	}()
	// The follower registers as a join before we release the leader; a
	// brief send-once handshake keeps this deterministic.
	for c.Stats().Joins == 0 {
		runtime.Gosched()
	}
	close(followerJoined)
	<-done
	if err != nil || string(blob) != "recovered" {
		t.Fatalf("takeover: blob=%q err=%v", blob, err)
	}
}

// TestDoFollowerCancelled: a follower whose own ctx dies while waiting
// returns its context error without disturbing the flight.
func TestDoFollowerCancelled(t *testing.T) {
	c := New(0)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), "k", func() ([]byte, error) {
			close(leaderIn)
			<-release
			return []byte("late"), nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() ([]byte, error) {
		t.Error("cancelled follower ran compute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	// The leader's result must still land.
	for i := 0; ; i++ {
		if blob, ok := c.Get("k"); ok {
			if string(blob) != "late" {
				t.Fatalf("entry = %q, want late", blob)
			}
			return
		}
		if i > 1e7 {
			t.Fatal("leader result never cached")
		}
		runtime.Gosched()
	}
}

// TestEvictionFIFO: the entry bound holds and evicts oldest-first.
func TestEvictionFIFO(t *testing.T) {
	c := New(2)
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		c.Do(context.Background(), key, func() ([]byte, error) {
			return []byte(key), nil
		})
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 2 {
		t.Fatalf("stats %+v, want 2 entries / 2 evictions", s)
	}
	if _, ok := c.Get("k0"); ok {
		t.Error("oldest entry k0 survived eviction")
	}
	if _, ok := c.Get("k3"); !ok {
		t.Error("newest entry k3 was evicted")
	}
}

// TestEvictionRacesConcurrentDo: a tiny cache under heavy concurrent
// Do traffic — keys are constantly evicted while other flights for the
// same keys are leading or joining. The invariants: no panic, every
// caller sees its key's bytes (never another key's), and a key is
// computed at most once per *generation* (single flight holds even
// when the completed entry under it was just evicted).
func TestEvictionRacesConcurrentDo(t *testing.T) {
	c := New(1) // every insert evicts the previous key
	const K, iters, G = 8, 50, 16
	var computes [K]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % K
				key := fmt.Sprintf("k%d", k)
				want := []byte(fmt.Sprintf("v%d", k))
				blob, _, err := c.Do(context.Background(), key, func() ([]byte, error) {
					computes[k].Add(1)
					return want, nil
				})
				if err != nil {
					t.Errorf("%s: %v", key, err)
					return
				}
				if !bytes.Equal(blob, want) {
					t.Errorf("%s returned %q, want %q", key, blob, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	s := c.Stats()
	if s.Entries > 1 {
		t.Errorf("entries = %d, want <= 1 (bound violated)", s.Entries)
	}
	var total int64
	for k := range computes {
		total += computes[k].Load()
	}
	// Every compute corresponds to a recorded miss: eviction may force
	// recomputation, but never a duplicated flight.
	if total != s.Misses {
		t.Errorf("%d computes vs %d misses — a flight ran outside the miss path", total, s.Misses)
	}
	if s.Hits+s.Joins+s.Misses != K*iters*G/K {
		t.Errorf("lookups %d, want %d", s.Hits+s.Joins+s.Misses, iters*G)
	}
}

// TestEvictedWhileLeading: the leader's key is evicted (by other
// inserts overflowing the bound) while its computation is still in
// flight. The landing result must still be returned to the leader and
// its followers, and nothing double-computes.
func TestEvictedWhileLeading(t *testing.T) {
	c := New(1)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int64

	done := make(chan struct{})
	var blob []byte
	var err error
	go func() {
		defer close(done)
		blob, _, err = c.Do(context.Background(), "victim", func() ([]byte, error) {
			runs.Add(1)
			close(leaderIn)
			<-release
			return []byte("landed"), nil
		})
	}()
	<-leaderIn

	// While the victim flight is open, churn the cache: these inserts
	// evict each other (and, once victim lands, will evict it too).
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("churn%d", i)
		if _, _, err := c.Do(context.Background(), key, func() ([]byte, error) {
			return []byte(key), nil
		}); err != nil {
			t.Fatalf("churn %d: %v", i, err)
		}
	}

	// A follower joins the still-open victim flight.
	followerDone := make(chan struct{})
	var fblob []byte
	go func() {
		defer close(followerDone)
		fblob, _, _ = c.Do(context.Background(), "victim", func() ([]byte, error) {
			runs.Add(1)
			return []byte("wrong-double-compute"), nil
		})
	}()
	for c.Stats().Joins == 0 {
		runtime.Gosched()
	}
	close(release)
	<-done
	<-followerDone

	if err != nil || string(blob) != "landed" {
		t.Fatalf("leader: blob=%q err=%v", blob, err)
	}
	if string(fblob) != "landed" {
		t.Fatalf("follower: blob=%q, want the leader's bytes", fblob)
	}
	if runs.Load() != 1 {
		t.Fatalf("victim computed %d times, want 1", runs.Load())
	}
	if s := c.Stats(); s.Entries > 1 {
		t.Errorf("entries = %d, want <= 1", s.Entries)
	}
}

// TestInvalidate: dropping an entry forces a recompute; unknown keys
// are no-ops; in-flight computations are untouched.
func TestInvalidate(t *testing.T) {
	c := New(0)
	var runs atomic.Int64
	compute := func() ([]byte, error) {
		runs.Add(1)
		return []byte("v"), nil
	}
	c.Do(context.Background(), "k", compute)
	c.Invalidate("nope") // no-op
	c.Invalidate("k")
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived Invalidate")
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("entries = %d, want 0", s.Entries)
	}
	if _, hit, _ := c.Do(context.Background(), "k", compute); hit {
		t.Fatal("invalidated key still hit")
	}
	if runs.Load() != 2 {
		t.Fatalf("runs = %d, want 2", runs.Load())
	}
	// The re-inserted entry must still evict cleanly (order bookkeeping
	// survived the invalidate).
	c2 := New(2)
	for _, k := range []string{"a", "b"} {
		k := k
		c2.Do(context.Background(), k, func() ([]byte, error) { return []byte(k), nil })
	}
	c2.Invalidate("a")
	for _, k := range []string{"c", "d"} {
		k := k
		c2.Do(context.Background(), k, func() ([]byte, error) { return []byte(k), nil })
	}
	if s := c2.Stats(); s.Entries != 2 {
		t.Fatalf("entries = %d, want 2", s.Entries)
	}
	if _, ok := c2.Get("b"); ok {
		t.Error("b should have been evicted (oldest surviving entry)")
	}
	if _, ok := c2.Get("d"); !ok {
		t.Error("d (newest) was evicted")
	}
}

// TestCorrupt: the chaos seam flips cached bytes without disturbing
// earlier readers' copies, and reports absent keys.
func TestCorrupt(t *testing.T) {
	c := New(0)
	if c.Corrupt("absent") {
		t.Fatal("Corrupt on an absent key reported success")
	}
	c.Do(context.Background(), "k", func() ([]byte, error) {
		return []byte("good"), nil
	})
	before, _ := c.Get("k")
	snapshot := string(before)
	if !c.Corrupt("k") {
		t.Fatal("Corrupt on a present key failed")
	}
	after, ok := c.Get("k")
	if !ok {
		t.Fatal("corrupted entry vanished")
	}
	if bytes.Equal(after, []byte("good")) {
		t.Fatal("entry not corrupted")
	}
	if snapshot != "good" {
		t.Fatal("earlier reader's bytes were mutated in place")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
	s = Stats{Hits: 6, Joins: 3, Misses: 1}
	if got := s.HitRate(); got != 0.9 {
		t.Errorf("hit rate = %v, want 0.9", got)
	}
}
