// Package sweepcache is a content-addressed result cache with
// single-flight deduplication, the scaling lever of the sweep service:
// most user-submitted design points collide, so each unique
// (fingerprint, seed) key is computed once and every later — or
// concurrent — request for it is served from memory.
//
// Values are opaque byte blobs (the service stores canonical-JSON
// results), so cache correctness is bit-level: a hit returns exactly the
// bytes the computation produced. Keys are caller-supplied content
// addresses; the cache never inspects them.
package sweepcache

import (
	"context"
	"errors"
	"sync"
)

// Stats is a point-in-time counter snapshot. Hits + Joins measure saved
// computations; Misses counts leader flights actually run.
type Stats struct {
	// Hits are lookups served from a completed entry.
	Hits int64 `json:"hits"`
	// Misses are lookups that found nothing and ran the computation.
	Misses int64 `json:"misses"`
	// Joins are lookups that found the key already in flight and waited
	// for the leader instead of recomputing.
	Joins int64 `json:"joins"`
	// Entries is the current number of completed cached results.
	Entries int64 `json:"entries"`
	// Evictions counts entries dropped to honor MaxEntries.
	Evictions int64 `json:"evictions"`
}

// HitRate is the fraction of lookups that avoided a computation.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Joins + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Joins) / float64(total)
}

// flight is one in-progress computation; followers block on done.
type flight struct {
	done chan struct{}
	blob []byte
	err  error
}

// Cache memoizes computations by key. The zero value is not usable; use
// New. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	entries  map[string][]byte
	order    []string // insertion order, for FIFO eviction
	inflight map[string]*flight
	stats    Stats
	max      int
}

// New builds a cache. maxEntries bounds resident completed results
// (FIFO eviction past the bound); zero or negative means unbounded.
func New(maxEntries int) *Cache {
	return &Cache{
		entries:  map[string][]byte{},
		inflight: map[string]*flight{},
		max:      maxEntries,
	}
}

// Get returns the cached blob for key, if present. The returned slice is
// shared — callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	blob, ok := c.entries[key]
	if ok {
		c.stats.Hits++
	}
	return blob, ok
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Do returns the cached result for key, computing it via compute on a
// miss. Concurrent Do calls with the same key are single-flighted: one
// caller (the leader) runs compute, the rest wait and share its result,
// so each unique key is computed at most once no matter how many
// requests collide.
//
// hit reports whether this caller avoided running compute (a cached
// entry or a joined flight). A failed computation is not cached — the
// error is shared with the followers of that flight, and the next Do
// starts fresh. If the leader fails with a context error (its client
// went away) while this caller's ctx is still live, the caller retries
// the flight rather than inheriting a cancellation that was never its
// own; exactly-once still holds for successful computations, because a
// cancelled flight never produced a result.
func (c *Cache) Do(ctx context.Context, key string, compute func() ([]byte, error)) (blob []byte, hit bool, err error) {
	for {
		c.mu.Lock()
		if blob, ok := c.entries[key]; ok {
			c.stats.Hits++
			c.mu.Unlock()
			return blob, true, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.stats.Joins++
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				return f.blob, true, nil
			}
			if isContextErr(f.err) && ctx.Err() == nil {
				continue // leader was cancelled, not us: take over
			}
			return nil, true, f.err
		}
		// Leader: register the flight and compute outside the lock.
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.stats.Misses++
		c.mu.Unlock()

		f.blob, f.err = compute()

		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.insertLocked(key, f.blob)
		}
		c.mu.Unlock()
		close(f.done)
		return f.blob, false, f.err
	}
}

// Invalidate drops a completed entry, if present. It does not touch an
// in-flight computation for the same key — the leader will re-insert
// its (fresh) result when it lands. The supervisor calls this when a
// cached blob fails to deserialize: dropping the poisoned entry lets
// the next request recompute instead of failing forever.
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		return
	}
	delete(c.entries, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.stats.Entries = int64(len(c.entries))
}

// Corrupt flips the first byte of a completed entry's blob, in place on
// a copy (the original slice may still be held by earlier readers).
// It is a chaos seam: the service-chaos harness uses it to prove that a
// corrupted cache entry degrades to a recompute, never to a wrong or
// failed response. Returns false if the key has no completed entry.
func (c *Cache) Corrupt(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	blob, ok := c.entries[key]
	if !ok || len(blob) == 0 {
		return false
	}
	bad := make([]byte, len(blob))
	copy(bad, blob)
	bad[0] ^= 0xFF
	c.entries[key] = bad
	return true
}

// insertLocked stores a completed result, evicting the oldest entries
// past the bound. Caller holds c.mu.
func (c *Cache) insertLocked(key string, blob []byte) {
	if _, exists := c.entries[key]; !exists {
		c.order = append(c.order, key)
	}
	c.entries[key] = blob
	c.stats.Entries = int64(len(c.entries))
	for c.max > 0 && len(c.entries) > c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
		c.stats.Evictions++
		c.stats.Entries = int64(len(c.entries))
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
