package fault

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

func TestFaultParseLinkKill(t *testing.T) {
	e, err := ParseLinkKill("12-13@5000")
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if want := (Event{Cycle: 5000, Kind: KillMeshLink, A: 12, B: 13}); e != want {
		t.Errorf("parsed %+v, want %+v", e, want)
	}
	for _, bad := range []string{"", "12-13", "12@5000", "a-b@5", "1-2@-3", "1-2@x"} {
		if _, err := ParseLinkKill(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestFaultParseBandKill(t *testing.T) {
	e, err := ParseBandKill("3@5000")
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if want := (Event{Cycle: 5000, Kind: KillBand, A: 3}); e != want {
		t.Errorf("parsed %+v, want %+v", e, want)
	}
	for _, bad := range []string{"", "3", "@5", "-1@5", "x@5"} {
		if _, err := ParseBandKill(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestFaultRandomScheduleDeterministic(t *testing.T) {
	a := RandomSchedule(42, 8, 5, 10000)
	b := RandomSchedule(42, 8, 5, 10000)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different schedules")
	}
	if len(a) != 5 {
		t.Fatalf("schedule has %d events, want 5", len(a))
	}
	seen := map[int]bool{}
	for i, e := range a {
		if e.Kind != KillBand || e.A < 0 || e.A >= 8 || e.Cycle < 1 || e.Cycle > 10000 {
			t.Errorf("event %d out of range: %+v", i, e)
		}
		if seen[e.A] {
			t.Errorf("band %d killed twice", e.A)
		}
		seen[e.A] = true
		if i > 0 && a[i-1].Cycle > e.Cycle {
			t.Error("schedule not cycle-ordered")
		}
	}
	if got := RandomSchedule(1, 4, 9, 100); len(got) != 4 {
		t.Errorf("kills not clamped to bands: %d", len(got))
	}
}

// testConfig is a small shortcut design for injector tests.
func testConfig() noc.Config {
	m := topology.New(6, 6)
	return noc.Config{
		Mesh:      m,
		Width:     tech.Width16B,
		Shortcuts: shortcut.SelectMaxCost(m.Graph(), shortcut.Params{Budget: 4}),
	}
}

func TestFaultInjectorAppliesAndSkips(t *testing.T) {
	cfg := testConfig()
	sched := Schedule{
		{Cycle: 50, Kind: KillBand, A: 0},
		{Cycle: 60, Kind: KillBand, A: 99},                        // no such band
		{Cycle: 70, Kind: KillShortcut, A: cfg.Shortcuts[0].From}, // already dead
		{Cycle: 80, Kind: KillMeshLink, A: 0, B: 2},               // not adjacent
	}
	inj := NewInjector(sched)
	n := noc.New(cfg)
	n.AttachObserver(inj)
	n.Run(100)

	if got := inj.Applied(); len(got) != 1 || got[0] != sched[0] {
		t.Errorf("applied %v, want [%v]", got, sched[0])
	}
	if got := inj.Skipped(); len(got) != 3 {
		t.Errorf("skipped %d events, want 3: %v", len(got), got)
	}
	if !inj.Done() {
		t.Error("injector not done after all events consumed")
	}
	if got := n.FailedShortcuts(); len(got) != 1 || got[0] != cfg.Shortcuts[0] {
		t.Errorf("failed shortcuts %v, want [%v]", got, cfg.Shortcuts[0])
	}
}

func TestFaultInjectorAutoReplan(t *testing.T) {
	cfg := testConfig()
	dead := cfg.Shortcuts[0]
	inj := NewInjector(Schedule{{Cycle: 200, Kind: KillShortcut, A: dead.From}})
	inj.AutoReplan = true
	rec := obs.NewFaultRecorder()

	n := noc.New(cfg)
	n.AttachObserver(inj)
	n.AttachObserver(rec)

	// Traffic before the kill populates the frequency matrix the replan
	// selects over; after the kill the network drains and the injector
	// must reconfigure exactly once.
	rng := rand.New(rand.NewSource(3))
	N := cfg.Mesh.N()
	for i := 0; i < 400; i++ {
		if rng.Float64() < 0.2 {
			if src, dst := rng.Intn(N), rng.Intn(N); src != dst {
				n.Inject(noc.Message{Src: src, Dst: dst, Class: noc.Data, Inject: n.Now()})
			}
		}
		n.Step()
	}
	if !n.Drain(100000) {
		t.Fatal("failed to drain")
	}
	// The drain loop's CycleEnd fires with InFlight()==0, triggering the
	// pending replan.
	if inj.Replans() != 1 {
		t.Fatalf("replans = %d, want 1 (skipped: %v)", inj.Replans(), inj.Skipped())
	}
	if rec.Replans != 1 {
		t.Errorf("recorder saw %d Replanned events, want 1", rec.Replans)
	}
	for _, e := range n.Config().Shortcuts {
		if e.From == dead.From {
			t.Errorf("replanned set still transmits from failed router %d", dead.From)
		}
		if e.To == dead.To {
			t.Errorf("replanned set still receives at failed router %d", dead.To)
		}
	}
	if len(n.Config().Shortcuts) == 0 {
		t.Error("replan selected no shortcuts")
	}
}

// FuzzFaultSchedule is the fault-model fuzz target: arbitrary failure
// schedules (band, shortcut and mesh-link kills at arbitrary cycles,
// with an arbitrary corruption rate) must never break exactly-once
// delivery, flit conservation, or draining.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(int64(1), uint16(0), []byte{0, 1, 10})
	f.Add(int64(2), uint16(50), []byte{2, 0, 5, 1, 1, 8, 0, 12, 20})
	f.Add(int64(3), uint16(1000), []byte{1, 3, 0, 1, 3, 1, 2, 255, 255})

	f.Fuzz(func(t *testing.T, seed int64, berRaw uint16, raw []byte) {
		m := topology.New(6, 6)
		cfg := noc.Config{
			Mesh:      m,
			Width:     tech.Width16B,
			Shortcuts: shortcut.SelectMaxCost(m.Graph(), shortcut.Params{Budget: 4}),
		}
		if berRaw != 0 {
			cfg.Fault = noc.FaultConfig{
				MeshBER: float64(berRaw%100) / 2000,  // up to ~5%
				RFBER:   float64(berRaw%1000) / 5000, // up to 20%
				Seed:    seed,
			}
		}

		// Decode byte triples (kind, victim, cycle) into a schedule.
		var sched Schedule
		for i := 0; i+2 < len(raw) && len(sched) < 12; i += 3 {
			cycle := int64(raw[i+2]) * 8
			switch raw[i] % 3 {
			case 0:
				sched = append(sched, Event{Cycle: cycle, Kind: KillBand, A: int(raw[i+1]) % (len(cfg.Shortcuts) + 1)})
			case 1:
				sched = append(sched, Event{Cycle: cycle, Kind: KillShortcut, A: int(raw[i+1]) % m.N()})
			case 2:
				r := int(raw[i+1]) % m.N()
				c := m.Coord(r)
				if c.X+1 < m.W {
					sched = append(sched, Event{Cycle: cycle, Kind: KillMeshLink, A: r, B: m.ID(c.X+1, c.Y)})
				}
			}
		}

		inj := NewInjector(sched)
		chk := obs.NewInvariantChecker()
		chk.Every = 64
		chk.Fail = func(format string, args ...any) { t.Fatalf(format, args...) }

		n := noc.New(cfg)
		n.AttachObserver(inj)
		n.AttachObserver(chk)

		rng := rand.New(rand.NewSource(seed))
		injected := 0
		delivered := map[[3]int64]int{}
		tap := deliveryCounter{delivered: delivered}
		n.AttachObserver(&tap)
		seen := map[[3]int64]bool{}
		for i := 0; i < 2200; i++ {
			if rng.Float64() < 0.25 {
				src, dst := rng.Intn(m.N()), rng.Intn(m.N())
				if src != dst {
					k := [3]int64{n.Now(), int64(src), int64(dst)}
					if !seen[k] {
						seen[k] = true
						injected++
						n.Inject(noc.Message{Src: src, Dst: dst, Class: noc.Data, Inject: n.Now()})
					}
				}
			}
			n.Step()
		}
		if !n.Drain(500000) {
			t.Fatal("failed to drain under fault schedule")
		}
		chk.Check(n)
		if len(delivered) != injected {
			t.Fatalf("delivered %d distinct messages, injected %d", len(delivered), injected)
		}
		for k, c := range delivered {
			if c != 1 {
				t.Fatalf("message %v delivered %d times", k, c)
			}
		}
		if rep := n.Audit(); rep.ConservationError() != 0 || rep.FlitsBuffered != 0 {
			t.Fatalf("drained network not clean: %+v", rep)
		}
	})
}

type deliveryCounter struct {
	noc.BaseObserver
	delivered map[[3]int64]int
}

func (d *deliveryCounter) PacketDelivered(msg noc.Message, _ int64, _ int) {
	d.delivered[[3]int64{msg.Inject, int64(msg.Src), int64(msg.Dst)}]++
}

func TestFaultScheduleStrings(t *testing.T) {
	cases := map[string]Event{
		"12-13@5000":   {Cycle: 5000, Kind: KillMeshLink, A: 12, B: 13},
		"band3@77":     {Cycle: 77, Kind: KillBand, A: 3},
		"shortcut9@10": {Cycle: 10, Kind: KillShortcut, A: 9},
	}
	for want, e := range cases {
		if got := e.String(); got != want {
			t.Errorf("%+v renders %q, want %q", e, got, want)
		}
	}
	for _, k := range []Kind{KillShortcut, KillMeshLink, KillBand} {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}

func TestFaultParseLeakCredit(t *testing.T) {
	e, err := ParseLeakCredit("12-13@5000")
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if want := (Event{Cycle: 5000, Kind: LeakCredit, A: 12, B: 13}); e != want {
		t.Errorf("parsed %+v, want %+v", e, want)
	}
	for _, bad := range []string{"", "12-13", "12@5000", "a-b@5", "1-2@-3", "-1-2@5"} {
		if _, err := ParseLeakCredit(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestFaultParseStickVC(t *testing.T) {
	e, err := ParseStickVC("7-2@900")
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if want := (Event{Cycle: 900, Kind: StickVC, A: 7, B: 2}); e != want {
		t.Errorf("parsed %+v, want %+v", e, want)
	}
	for _, bad := range []string{"", "7-2", "7@900", "x-2@9", "7-2@"} {
		if _, err := ParseStickVC(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestFaultRandomChaosScheduleDeterministic(t *testing.T) {
	a := RandomChaosSchedule(42, 6, 6, 4, 12, 10000)
	b := RandomChaosSchedule(42, 6, 6, 4, 12, 10000)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different chaos schedules")
	}
	if len(a) != 12 {
		t.Fatalf("schedule has %d events, want 12", len(a))
	}
	for i, e := range a {
		if e.Cycle < 1 || e.Cycle > 10000 {
			t.Errorf("event %d cycle out of window: %+v", i, e)
		}
		if i > 0 && a[i-1].Cycle > e.Cycle {
			t.Error("chaos schedule not cycle-ordered")
		}
		switch e.Kind {
		case KillMeshLink, LeakCredit:
			if e.A < 0 || e.A >= 36 || e.B < 0 || e.B >= 36 {
				t.Errorf("event %d targets off-mesh routers: %+v", i, e)
			}
		case KillBand:
			if e.A < 0 || e.A >= 4 {
				t.Errorf("event %d targets unknown band: %+v", i, e)
			}
		case StickVC:
			if e.A < 0 || e.A >= 36 || e.B < 0 || e.B > 3 {
				t.Errorf("event %d targets bad router/port: %+v", i, e)
			}
		default:
			t.Errorf("event %d has unexpected kind %v", i, e.Kind)
		}
	}
	// With no bands, the draw must remap away from KillBand.
	for _, e := range RandomChaosSchedule(7, 6, 6, 0, 20, 5000) {
		if e.Kind == KillBand {
			t.Fatalf("bandless mesh drew a band kill: %+v", e)
		}
	}
	if got := RandomChaosSchedule(1, 6, 6, 2, 0, 100); got != nil {
		t.Errorf("zero events should yield nil, got %v", got)
	}
}

func TestFaultInjectorAppliesChaosKinds(t *testing.T) {
	cfg := testConfig()
	cfg.Integrity = true
	sched := Schedule{
		{Cycle: 40, Kind: LeakCredit, A: 14, B: 15},
		{Cycle: 50, Kind: StickVC, A: 21, B: 1},
		{Cycle: 60, Kind: LeakCredit, A: 0, B: 35}, // not adjacent
		{Cycle: 70, Kind: StickVC, A: 21, B: 99},   // no such port
	}
	inj := NewInjector(sched)
	n := noc.New(cfg)
	n.AttachObserver(inj)
	rec := obs.NewIntegrityRecorder()
	n.AttachObserver(rec)
	n.Run(100)

	if got := inj.Applied(); len(got) != 2 {
		t.Fatalf("applied %v, want the two valid chaos events", got)
	}
	if got := inj.Skipped(); len(got) != 2 {
		t.Errorf("skipped %d events, want 2: %v", len(got), got)
	}
	s := n.Stats()
	if s.CreditLeaks != 1 || s.StuckVCs == 0 {
		t.Errorf("chaos events not reflected in stats: leaks %d, stuck %d", s.CreditLeaks, s.StuckVCs)
	}
	if rec.CreditLeaks != 1 || rec.StuckVCs != s.StuckVCs {
		t.Errorf("recorder out of sync: %+v vs stats %+v", rec, s)
	}
}
