package fault

import (
	"reflect"
	"testing"

	"repro/internal/noc"
	"repro/internal/shortcut"
	"repro/internal/topology"
)

func snapNetwork(t *testing.T) *noc.Network {
	t.Helper()
	return noc.New(noc.Config{
		Mesh:      topology.New10x10(),
		Shortcuts: []shortcut.Edge{{From: 0, To: 99}, {From: 90, To: 9}},
	})
}

// snapSchedule mixes applied and skipped events: two real band kills,
// one mesh-link kill, and one kill naming a band the plan doesn't have
// (which the network refuses and the injector records as skipped).
func snapSchedule() Schedule {
	return Schedule{
		{Cycle: 40, Kind: KillBand, A: 0},
		{Cycle: 60, Kind: KillBand, A: 7},
		{Cycle: 80, Kind: KillMeshLink, A: 12, B: 13},
		{Cycle: 160, Kind: KillShortcut, A: 90},
	}
}

func runWith(t *testing.T, in *Injector, n *noc.Network, cycles int64) {
	t.Helper()
	n.AttachObserver(in)
	n.Run(cycles)
	n.DetachObserver(in)
}

// TestInjectorSnapshotRoundTrip: an injector checkpointed mid-schedule
// and restored into a fresh instance over the same schedule reports the
// same applied/skipped/progress state as the uninterrupted one.
func TestInjectorSnapshotRoundTrip(t *testing.T) {
	ref := NewInjector(snapSchedule())
	runWith(t, ref, snapNetwork(t), 200)

	live := NewInjector(snapSchedule())
	nlive := snapNetwork(t)
	runWith(t, live, nlive, 100)
	blob, err := live.CheckpointState()
	if err != nil {
		t.Fatalf("CheckpointState: %v", err)
	}
	if len(live.Applied()) == 0 || len(live.Skipped()) == 0 {
		t.Fatalf("test scenario too weak: applied=%d skipped=%d at cut", len(live.Applied()), len(live.Skipped()))
	}

	restored := NewInjector(snapSchedule())
	if err := restored.RestoreCheckpointState(blob); err != nil {
		t.Fatalf("RestoreCheckpointState: %v", err)
	}
	if !reflect.DeepEqual(restored.Applied(), live.Applied()) {
		t.Errorf("restored Applied %v, want %v", restored.Applied(), live.Applied())
	}
	if restored.Done() != live.Done() {
		t.Errorf("restored Done %v, want %v", restored.Done(), live.Done())
	}

	// Continue the restored injector on a network with matching history
	// (the network itself is restored separately in real runs; here we
	// rebuild the same mid-run state by replaying).
	nrest := snapNetwork(t)
	cont := NewInjector(snapSchedule())
	runWith(t, cont, nrest, 100)
	runWith(t, restored, nrest, 100)
	if !reflect.DeepEqual(restored.Applied(), ref.Applied()) {
		t.Errorf("final Applied %v, want %v", restored.Applied(), ref.Applied())
	}
	if got, want := len(restored.Skipped()), len(ref.Skipped()); got != want {
		t.Errorf("final Skipped count %d, want %d", got, want)
	}
	for i, sk := range restored.Skipped() {
		want := ref.Skipped()[i]
		if sk.Event != want.Event || sk.Err.Error() != want.Err.Error() {
			t.Errorf("skip %d: got {%v %v}, want {%v %v}", i, sk.Event, sk.Err, want.Event, want.Err)
		}
	}
	if !restored.Done() {
		t.Error("restored injector not Done after full schedule")
	}
}

// TestInjectorSnapshotScheduleMismatch: restoring under a different
// schedule must be refused — the cursor would index the wrong events.
func TestInjectorSnapshotScheduleMismatch(t *testing.T) {
	in := NewInjector(snapSchedule())
	runWith(t, in, snapNetwork(t), 100)
	blob, err := in.CheckpointState()
	if err != nil {
		t.Fatalf("CheckpointState: %v", err)
	}

	shorter := NewInjector(snapSchedule()[:2])
	if err := shorter.RestoreCheckpointState(blob); err == nil {
		t.Error("restore under shorter schedule accepted")
	}
	altered := snapSchedule()
	altered[1].Cycle = 81
	other := NewInjector(altered)
	if err := other.RestoreCheckpointState(blob); err == nil {
		t.Error("restore under altered schedule accepted")
	}
	if len(other.Applied()) != 0 || len(other.Skipped()) != 0 {
		t.Error("failed restore mutated the injector")
	}
}

// TestInjectorSnapshotRejectsCorruption: truncations error, never panic.
func TestInjectorSnapshotRejectsCorruption(t *testing.T) {
	in := NewInjector(snapSchedule())
	runWith(t, in, snapNetwork(t), 200)
	blob, err := in.CheckpointState()
	if err != nil {
		t.Fatalf("CheckpointState: %v", err)
	}
	victim := NewInjector(snapSchedule())
	for cut := 0; cut < len(blob); cut++ {
		if err := victim.RestoreCheckpointState(blob[:cut]); err == nil {
			t.Errorf("truncation at %d/%d accepted", cut, len(blob))
		}
	}
	bad := append([]byte{}, blob...)
	bad[0] = 0xEE
	if err := victim.RestoreCheckpointState(bad); err == nil {
		t.Error("bad version byte accepted")
	}
}
