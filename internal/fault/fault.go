// Package fault provides the scheduling and orchestration layer over the
// fault-injection mechanics built into internal/noc: deterministic,
// seedable schedules of permanent failures (RF-I shortcut bands, mesh
// links, the multicast band), an Observer that applies them at the
// scheduled cycles during a live run, and optional automatic replanning
// of the shortcut overlay around failed RF endpoints.
//
// The split mirrors the rest of the tree: package noc owns the pipeline
// mechanics (CRC/retransmission, link death, degraded routing) and stays
// dependency-free; this package owns policy — when links die and what to
// do about the lost bandwidth.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/noc"
	"repro/internal/rng"
	"repro/internal/shortcut"
)

// Kind is a category of permanent failure.
type Kind int

const (
	// KillShortcut fails the outbound RF-I shortcut band at router A.
	KillShortcut Kind = iota

	// KillMeshLink fails the physical mesh link between adjacent
	// routers A and B (both directions).
	KillMeshLink

	// KillBand fails RF band index A of the current plan: indices below
	// the shortcut count map to that shortcut's band, and the next index
	// is the multicast band (when configured). Resolution happens at
	// apply time against the network's then-current configuration.
	KillBand

	// LeakCredit destroys one flow-control credit on the mesh link from
	// router A to adjacent router B (the downstream buffer slot is never
	// returned until a watchdog stage-1 repair).
	LeakCredit

	// StickVC wedges every normal-class virtual channel at input port B
	// of router A out of arbitration until a watchdog stage-1 repair.
	// B is a mesh port index (0=N, 1=E, 2=S, 3=W, 4=local, 5=RF).
	StickVC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KillShortcut:
		return "kill-shortcut"
	case KillMeshLink:
		return "kill-mesh-link"
	case KillBand:
		return "kill-band"
	case LeakCredit:
		return "leak-credit"
	case StickVC:
		return "stick-vc"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled permanent failure.
type Event struct {
	// Cycle is when the failure strikes (applied at the end of the first
	// cycle with Now >= Cycle).
	Cycle int64
	Kind  Kind
	// A and B identify the victim: a source router (KillShortcut), a
	// router pair (KillMeshLink), or a band index (KillBand, A only).
	A, B int
}

// String renders the event in the CLI flag syntax.
func (e Event) String() string {
	switch e.Kind {
	case KillMeshLink:
		return fmt.Sprintf("%d-%d@%d", e.A, e.B, e.Cycle)
	case KillBand:
		return fmt.Sprintf("band%d@%d", e.A, e.Cycle)
	case LeakCredit:
		return fmt.Sprintf("leak%d-%d@%d", e.A, e.B, e.Cycle)
	case StickVC:
		return fmt.Sprintf("stick%d.%d@%d", e.A, e.B, e.Cycle)
	}
	return fmt.Sprintf("shortcut%d@%d", e.A, e.Cycle)
}

// Schedule is a set of failure events. Order does not matter; the
// Injector applies events in cycle order.
type Schedule []Event

// sorted returns a cycle-ordered copy (stable, so same-cycle events keep
// their schedule order).
func (s Schedule) sorted() Schedule {
	out := append(Schedule(nil), s...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}

// RandomSchedule draws a reproducible schedule that kills `kills`
// distinct bands of a plan with `bands` total bands (shortcuts first,
// then optionally the multicast band — the KillBand index convention),
// at cycles uniform in [1, window]. kills is clamped to bands.
func RandomSchedule(seed int64, bands, kills int, window int64) Schedule {
	if kills > bands {
		kills = bands
	}
	if kills <= 0 || window < 1 {
		return nil
	}
	r := rng.New(seed)
	var s Schedule
	for _, i := range r.Perm(bands)[:kills] {
		s = append(s, Event{
			Cycle: 1 + r.Int63n(window),
			Kind:  KillBand,
			A:     i,
		})
	}
	return s.sorted()
}

// RandomChaosSchedule draws a reproducible mixed-fault schedule for
// chaos soaking: `events` faults at cycles uniform in [1, window], each
// drawn among mesh-link kills, RF band kills, credit leaks and stuck
// VCs on a meshW×meshH row-major mesh with `bands` RF bands (the
// KillBand index convention). Events the network refuses at apply time
// (a link kill that would disconnect the mesh, a doomed band already
// dead) are recorded as skips by the Injector — that, too, is chaos.
func RandomChaosSchedule(seed int64, meshW, meshH, bands, events int, window int64) Schedule {
	if events <= 0 || window < 1 || meshW < 2 || meshH < 2 {
		return nil
	}
	r := rng.New(seed)
	adjacent := func() (int, int) {
		a := r.Intn(meshW * meshH)
		x, y := a%meshW, a/meshW
		horizontal := r.Intn(2) == 0
		switch {
		case horizontal && x+1 < meshW:
			return a, a + 1
		case y+1 < meshH:
			return a, a + meshW
		case x+1 < meshW:
			return a, a + 1
		default: // top-right corner
			return a, a - meshW
		}
	}
	var s Schedule
	for i := 0; i < events; i++ {
		e := Event{Cycle: 1 + r.Int63n(window)}
		pick := r.Intn(4)
		if bands == 0 && pick == 1 {
			pick = 3
		}
		switch pick {
		case 0:
			e.Kind = KillMeshLink
			e.A, e.B = adjacent()
		case 1:
			e.Kind = KillBand
			e.A = r.Intn(bands)
		case 2:
			e.Kind = LeakCredit
			e.A, e.B = adjacent()
		default:
			e.Kind = StickVC
			e.A = r.Intn(meshW * meshH)
			e.B = r.Intn(4) // mesh input ports N/E/S/W
		}
		s = append(s, e)
	}
	return s.sorted()
}

// ParseLinkKill parses the -kill-link flag syntax "A-B@CYCLE" (e.g.
// "12-13@5000"): fail the mesh link between routers A and B at CYCLE.
func ParseLinkKill(s string) (Event, error) {
	spec, cycle, err := splitAt(s)
	if err != nil {
		return Event{}, fmt.Errorf("fault: bad link kill %q: %v", s, err)
	}
	a, b, ok := strings.Cut(spec, "-")
	if !ok {
		return Event{}, fmt.Errorf("fault: bad link kill %q: want A-B@CYCLE", s)
	}
	av, err1 := strconv.Atoi(a)
	bv, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil {
		return Event{}, fmt.Errorf("fault: bad link kill %q: non-numeric router", s)
	}
	return Event{Cycle: cycle, Kind: KillMeshLink, A: av, B: bv}, nil
}

// ParseBandKill parses the -kill-band flag syntax "I@CYCLE" (e.g.
// "3@5000"): fail band index I at CYCLE.
func ParseBandKill(s string) (Event, error) {
	spec, cycle, err := splitAt(s)
	if err != nil {
		return Event{}, fmt.Errorf("fault: bad band kill %q: %v", s, err)
	}
	i, err := strconv.Atoi(spec)
	if err != nil || i < 0 {
		return Event{}, fmt.Errorf("fault: bad band kill %q: want I@CYCLE", s)
	}
	return Event{Cycle: cycle, Kind: KillBand, A: i}, nil
}

// ParseLeakCredit parses the -leak-credit flag syntax "A-B@CYCLE" (e.g.
// "12-13@5000"): destroy one credit on the link from router A to
// adjacent router B at CYCLE.
func ParseLeakCredit(s string) (Event, error) {
	e, err := parsePair(s, "leak credit")
	e.Kind = LeakCredit
	return e, err
}

// ParseStickVC parses the -stick-vc flag syntax "R-P@CYCLE" (e.g.
// "12-3@5000"): wedge the normal-class VCs at input port P of router R
// at CYCLE. Ports: 0=N, 1=E, 2=S, 3=W, 4=local, 5=RF.
func ParseStickVC(s string) (Event, error) {
	e, err := parsePair(s, "stick VC")
	e.Kind = StickVC
	return e, err
}

func parsePair(s, what string) (Event, error) {
	spec, cycle, err := splitAt(s)
	if err != nil {
		return Event{}, fmt.Errorf("fault: bad %s %q: %v", what, s, err)
	}
	a, b, ok := strings.Cut(spec, "-")
	if !ok {
		return Event{}, fmt.Errorf("fault: bad %s %q: want A-B@CYCLE", what, s)
	}
	av, err1 := strconv.Atoi(a)
	bv, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || av < 0 || bv < 0 {
		return Event{}, fmt.Errorf("fault: bad %s %q: non-numeric pair", what, s)
	}
	return Event{Cycle: cycle, A: av, B: bv}, nil
}

func splitAt(s string) (spec string, cycle int64, err error) {
	spec, at, ok := strings.Cut(s, "@")
	if !ok {
		return "", 0, fmt.Errorf("missing @CYCLE")
	}
	cycle, err = strconv.ParseInt(at, 10, 64)
	if err != nil || cycle < 0 {
		return "", 0, fmt.Errorf("bad cycle %q", at)
	}
	return spec, cycle, nil
}

// Skip records a scheduled event that could not be applied, with the
// reason the network gave.
type Skip struct {
	Event Event
	Err   error
}

// Injector is an Observer that applies a failure Schedule to a live
// network at the scheduled cycles, and — when AutoReplan is set —
// retunes the shortcut overlay around the failed hardware at the next
// quiesced point. Attach it before the run starts; it must be the kill
// site (never call the network's Kill* methods directly while an
// Injector drives the same schedule).
type Injector struct {
	noc.BaseObserver

	// AutoReplan, when set, re-runs shortcut selection (max-cost over the
	// frequency matrix observed since the last replan, excluding failed
	// RF endpoints) and calls Network.Reconfigure once the network next
	// drains after a shortcut loss. The reconfiguration stall
	// (rfi.ReconfigurationCycles) is paid inside Reconfigure.
	AutoReplan bool

	// Budget is the shortcut budget for replans. Zero means "as many as
	// the current plan", shrinking as endpoints fail.
	Budget int

	schedule Schedule
	next     int

	replanPending bool
	busy          bool // reentrancy guard: Reconfigure steps the network

	skipped []Skip
	applied []Event
	replans int
}

// NewInjector builds an Injector over a schedule (copied and sorted).
func NewInjector(s Schedule) *Injector {
	return &Injector{schedule: s.sorted()}
}

// Skipped lists the events the network refused (unknown victims, kills
// that would disconnect the mesh, already-dead links).
func (in *Injector) Skipped() []Skip { return in.skipped }

// Applied lists the events that took effect, in application order.
func (in *Injector) Applied() []Event { return in.applied }

// Replans counts successful automatic reconfigurations.
func (in *Injector) Replans() int { return in.replans }

// Done reports whether every scheduled event has been consumed (applied
// or skipped) and no replan is pending.
func (in *Injector) Done() bool {
	return in.next >= len(in.schedule) && !in.replanPending
}

// CycleEnd applies due events. Reconfigure internally steps the network
// to pay the table-update stall, which re-enters CycleEnd; the busy
// guard makes those nested calls no-ops.
func (in *Injector) CycleEnd(n *noc.Network) {
	if in.busy {
		return
	}
	in.busy = true
	defer func() { in.busy = false }()

	now := n.Now()
	for in.next < len(in.schedule) && in.schedule[in.next].Cycle <= now {
		e := in.schedule[in.next]
		in.next++
		if err := in.apply(n, e); err != nil {
			in.skipped = append(in.skipped, Skip{Event: e, Err: err})
			continue
		}
		in.applied = append(in.applied, e)
	}
	if in.replanPending && in.AutoReplan && n.InFlight() == 0 {
		in.replanPending = false
		if err := in.replan(n); err != nil {
			in.skipped = append(in.skipped, Skip{
				Event: Event{Cycle: now, Kind: KillBand, A: -1},
				Err:   fmt.Errorf("fault: replan failed: %v", err),
			})
		} else {
			in.replans++
		}
	}
}

// apply resolves and executes one event against the network's current
// configuration.
func (in *Injector) apply(n *noc.Network, e Event) error {
	switch e.Kind {
	case KillShortcut:
		return in.killShortcut(n, e.A)
	case KillMeshLink:
		return n.KillMeshLink(e.A, e.B)
	case KillBand:
		shortcuts := n.Config().Shortcuts
		if e.A < len(shortcuts) {
			return in.killShortcut(n, shortcuts[e.A].From)
		}
		if e.A == len(shortcuts) && n.MulticastBandAlive() {
			return n.KillMulticastBand()
		}
		return fmt.Errorf("fault: no band %d in the current plan", e.A)
	case LeakCredit:
		return n.LeakLinkCredit(e.A, e.B)
	case StickVC:
		return n.StickVC(e.A, e.B)
	}
	return fmt.Errorf("fault: unknown event kind %d", int(e.Kind))
}

func (in *Injector) killShortcut(n *noc.Network, from int) error {
	if err := n.KillShortcut(from); err != nil {
		return err
	}
	if in.AutoReplan {
		in.replanPending = true
	}
	return nil
}

// replan selects a fresh shortcut set over the observed traffic,
// excluding every failed RF endpoint, and installs it. Called only on a
// drained network (Reconfigure requires quiescence).
func (in *Injector) replan(n *noc.Network) error {
	cfg := n.Config()
	budget := in.Budget
	if budget == 0 {
		budget = len(cfg.Shortcuts)
	}
	eligible := eligibleSet(n, cfg)
	params := shortcut.Params{
		Budget:   budget,
		Eligible: eligible,
		Freq:     n.ObservedFrequency(),
		MeshW:    cfg.Mesh.W,
		MeshH:    cfg.Mesh.H,
	}
	edges := shortcut.SelectMaxCost(cfg.Mesh.Graph(), params)
	if len(edges) == 0 {
		// The observed matrix had no traffic between surviving eligible
		// pairs (short profiling window, or the hot flows used the dead
		// band); fall back to the architecture-specific objective rather
		// than running with no overlay at all.
		params.Freq = nil
		edges = shortcut.SelectMaxCost(cfg.Mesh.Graph(), params)
	}
	if err := n.Reconfigure(edges); err != nil {
		return err
	}
	n.ResetObservedFrequency()
	return nil
}

// eligibleSet restricts replan endpoints to the design's access points
// (RFEnabled, or the current plan's endpoints for static designs) minus
// routers whose RF hardware has failed. A router with only a failed
// transmitter could still receive (and vice versa), but the selector has
// a single eligibility notion, so a failed endpoint is excluded from
// both roles — the conservative choice.
func eligibleSet(n *noc.Network, cfg noc.Config) func(int) bool {
	allowed := map[int]bool{}
	if len(cfg.RFEnabled) > 0 {
		for _, r := range cfg.RFEnabled {
			allowed[r] = true
		}
	} else {
		for _, e := range cfg.Shortcuts {
			allowed[e.From] = true
			allowed[e.To] = true
		}
		for _, e := range n.FailedShortcuts() {
			allowed[e.From] = true
			allowed[e.To] = true
		}
	}
	return func(id int) bool {
		if !allowed[id] {
			return false
		}
		tx, rx := n.FailedRFEndpoint(id)
		return !tx && !rx
	}
}
