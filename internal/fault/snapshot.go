package fault

import (
	"errors"
	"fmt"

	"repro/internal/checkpoint"
)

// injectorSnapshotVersion tags the Injector blob layout; unknown versions
// are refused, never migrated.
const injectorSnapshotVersion = 1

func encodeEvent(e *checkpoint.Encoder, ev Event) {
	e.I64(ev.Cycle)
	e.Int(int(ev.Kind))
	e.Int(ev.A)
	e.Int(ev.B)
}

func decodeEvent(d *checkpoint.Decoder) Event {
	var ev Event
	ev.Cycle = d.I64()
	ev.Kind = Kind(d.Int())
	ev.A = d.Int()
	ev.B = d.Int()
	return ev
}

// CheckpointState implements checkpoint.State: the schedule cursor, the
// pending-replan flag, the applied/skipped records and the replan count.
// The (sorted) schedule itself is encoded too, as a fingerprint: restore
// refuses a snapshot taken under a different schedule, since the cursor
// would then point at the wrong events.
func (in *Injector) CheckpointState() ([]byte, error) {
	e := checkpoint.NewEncoder()
	e.Byte(injectorSnapshotVersion)
	e.Int(len(in.schedule))
	for _, ev := range in.schedule {
		encodeEvent(e, ev)
	}
	e.Int(in.next)
	e.Bool(in.replanPending)
	e.Int(in.replans)
	e.Int(len(in.applied))
	for _, ev := range in.applied {
		encodeEvent(e, ev)
	}
	e.Int(len(in.skipped))
	for _, sk := range in.skipped {
		encodeEvent(e, sk.Event)
		e.String(sk.Err.Error())
	}
	return e.Bytes()
}

// RestoreCheckpointState implements checkpoint.State. The Injector must
// have been built over the same schedule as the one checkpointed; on
// error it is left unchanged. Skip errors come back as opaque strings —
// the message survives, the original error value does not.
func (in *Injector) RestoreCheckpointState(data []byte) error {
	d := checkpoint.NewDecoder(data)
	if v := d.Byte(); d.Err() == nil && v != injectorSnapshotVersion {
		return fmt.Errorf("fault: unsupported injector snapshot version %d (want %d)", v, injectorSnapshotVersion)
	}
	ns := d.Length(32, "fault: schedule")
	if d.Err() == nil && ns != len(in.schedule) {
		return fmt.Errorf("fault: snapshot schedule has %d events, injector has %d", ns, len(in.schedule))
	}
	for i := 0; i < ns; i++ {
		ev := decodeEvent(d)
		if d.Err() == nil && ev != in.schedule[i] {
			return fmt.Errorf("fault: snapshot schedule event %d is %v, injector has %v", i, ev, in.schedule[i])
		}
	}
	next := d.Int()
	replanPending := d.Bool()
	replans := d.Int()
	na := d.Length(32, "fault: applied events")
	applied := make([]Event, 0, na)
	for i := 0; i < na; i++ {
		applied = append(applied, decodeEvent(d))
	}
	nk := d.Length(33, "fault: skipped events")
	skipped := make([]Skip, 0, nk)
	for i := 0; i < nk; i++ {
		ev := decodeEvent(d)
		skipped = append(skipped, Skip{Event: ev, Err: errors.New(d.String())})
	}
	if err := d.Finish(); err != nil {
		return err
	}
	if next < 0 || next > len(in.schedule) {
		return fmt.Errorf("fault: snapshot cursor %d outside schedule of %d events", next, len(in.schedule))
	}
	if replans < 0 {
		return fmt.Errorf("fault: negative replan count %d", replans)
	}
	if len(applied) == 0 {
		applied = nil
	}
	if len(skipped) == 0 {
		skipped = nil
	}
	in.next = next
	in.replanPending = replanPending
	in.replans = replans
	in.applied = applied
	in.skipped = skipped
	return nil
}
