// Package shortcut implements the paper's RF-I shortcut-selection
// algorithms (Section 3.2):
//
//   - the permutation-graph greedy heuristic of Figure 3(a), which tries
//     every candidate edge against the full objective (O(B*V^4) with the
//     incremental-distance trick, O(B*V^5) naively as the paper states);
//   - the max-cost heuristic of Figure 3(b), which repeatedly adds the
//     most expensive remaining pair (O(B*V^3));
//   - application-specific variants of both, which weight the objective by
//     inter-router communication frequency F(x,y) (Section 3.2.2);
//   - the region-based selector that alternates pair placement with
//     region-to-region placement over 3x3 sub-meshes, so that several
//     shortcuts can serve one communication hotspot.
//
// All selectors respect the paper's port constraints: at most one inbound
// and one outbound shortcut per router, and no shortcut may start or end
// on an ineligible router (the four memory corners, and -- for adaptive
// configurations -- any router that is not RF-enabled).
package shortcut

import (
	"fmt"

	"repro/internal/graph"
)

// Edge is a selected unidirectional shortcut.
type Edge struct {
	From, To int
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("%d->%d", e.From, e.To) }

// Params configures a selection run.
type Params struct {
	// Budget is the number of unidirectional shortcuts to select
	// (B = 16 in the paper: 256 B of RF-I bandwidth at 16 B per shortcut).
	Budget int

	// Eligible reports whether a router may be a shortcut endpoint.
	// Nil means every router is eligible. The paper excludes the four
	// memory corners always, and restricts endpoints to RF-enabled
	// routers in adaptive configurations.
	Eligible func(id int) bool

	// Freq is the inter-router communication-frequency matrix F(x,y)
	// (number of messages sent from x to y). Nil selects the
	// architecture-specific objective, which weights every pair equally.
	Freq [][]int64

	// MeshW and MeshH give the mesh dimensions, needed only by the
	// region-based selector to enumerate 3x3 sub-mesh regions.
	MeshW, MeshH int

	// MinDistance is the minimum current shortest-path distance between a
	// candidate's endpoints; pairs closer than this gain nothing from a
	// single-cycle shortcut. Defaults to 2.
	MinDistance int
}

func (p Params) minDist() int {
	if p.MinDistance <= 0 {
		return 2
	}
	return p.MinDistance
}

func (p Params) eligible(id int) bool {
	return p.Eligible == nil || p.Eligible(id)
}

// used tracks the one-inbound/one-outbound port constraint.
type used struct {
	src, dst map[int]bool
}

func newUsed() *used {
	return &used{src: map[int]bool{}, dst: map[int]bool{}}
}

func (u *used) ok(p Params, i, j int) bool {
	return i != j && !u.src[i] && !u.dst[j] && p.eligible(i) && p.eligible(j)
}

func (u *used) take(e Edge) {
	u.src[e.From] = true
	u.dst[e.To] = true
}

// SelectMaxCost implements the Figure 3(b) heuristic on the
// architecture-specific objective: repeatedly add a weight-1 edge between
// the pair with the maximum current shortest-path cost, recomputing
// distances after every addition, until the budget is exhausted. If
// p.Freq is non-nil the cost of a pair is F(x,y)*W(x,y) instead of W(x,y)
// (the Section 3.2.2 application-specific objective).
//
// The input graph is not modified; the augmented graph can be obtained
// with Apply.
func SelectMaxCost(g *graph.Digraph, p Params) []Edge {
	work := g.Clone()
	u := newUsed()
	var out []Edge
	for len(out) < p.Budget {
		apsp := work.AllPairs()
		best, ok := bestPair(apsp, p, u, nil)
		if !ok {
			break
		}
		out = append(out, best)
		u.take(best)
		work.AddEdge(best.From, best.To, 1)
	}
	return out
}

// bestPair scans all eligible unused pairs and returns the one with the
// highest cost under p's objective. restrict, when non-nil, limits
// candidates to pairs with restrict[i] and restrict[j] both true... it is
// keyed (srcSet, dstSet).
func bestPair(apsp [][]int, p Params, u *used, restrict *pairRestrict) (Edge, bool) {
	var best Edge
	var bestCost int64 = -1
	n := len(apsp)
	for i := 0; i < n; i++ {
		if u.src[i] || !p.eligible(i) {
			continue
		}
		if restrict != nil && !restrict.src[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if !u.ok(p, i, j) {
				continue
			}
			if restrict != nil && !restrict.dst[j] {
				continue
			}
			w := apsp[i][j]
			if w < p.minDist() || w >= graph.Infinity {
				continue
			}
			cost := int64(w)
			if p.Freq != nil {
				f := freqAt(p.Freq, i, j)
				if f == 0 {
					continue
				}
				cost = f * int64(w)
			}
			if cost > bestCost {
				bestCost = cost
				best = Edge{From: i, To: j}
			}
		}
	}
	return best, bestCost >= 0
}

type pairRestrict struct {
	src, dst map[int]bool
}

func freqAt(freq [][]int64, i, j int) int64 {
	if i >= len(freq) || freq[i] == nil || j >= len(freq[i]) {
		return 0
	}
	return freq[i][j]
}

// SelectGreedyPermutation implements the Figure 3(a) heuristic: for every
// candidate edge (i,j), evaluate the total objective of the permutation
// graph G' = G + (i,j) and keep the candidate with the best improvement;
// repeat until the budget is exhausted. The objective is the sum over all
// pairs of W(x,y), or of F(x,y)*W(x,y) when p.Freq is non-nil.
//
// Rather than recomputing APSP for every candidate (the paper's O(B*V^5)
// bound), we use the standard incremental identity
//
//	d'(x,y) = min( d(x,y), d(x,i) + 1 + d(j,y) )
//
// which evaluates one candidate in O(V^2), for O(B*V^4) overall.
func SelectGreedyPermutation(g *graph.Digraph, p Params) []Edge {
	work := g.Clone()
	u := newUsed()
	var out []Edge
	for len(out) < p.Budget {
		apsp := work.AllPairs()
		base := objective(apsp, p)
		var best Edge
		bestTotal := base // only accept strict improvements
		found := false
		n := work.N()
		for i := 0; i < n; i++ {
			if u.src[i] || !p.eligible(i) {
				continue
			}
			for j := 0; j < n; j++ {
				if !u.ok(p, i, j) || apsp[i][j] < p.minDist() {
					continue
				}
				t := objectiveWith(apsp, p, i, j)
				if t < bestTotal {
					bestTotal = t
					best = Edge{From: i, To: j}
					found = true
				}
			}
		}
		if !found {
			break
		}
		out = append(out, best)
		u.take(best)
		work.AddEdge(best.From, best.To, 1)
	}
	return out
}

// objective computes the current total cost.
func objective(apsp [][]int, p Params) int64 {
	if p.Freq != nil {
		return graph.WeightedCost(apsp, p.Freq)
	}
	return graph.TotalCost(apsp)
}

// objectiveWith computes the total cost of the permutation graph with a
// weight-1 edge (i,j) added, using the incremental distance identity.
func objectiveWith(apsp [][]int, p Params, i, j int) int64 {
	var total int64
	n := len(apsp)
	if p.Freq == nil {
		for x := 0; x < n; x++ {
			dxi := apsp[x][i]
			rowX := apsp[x]
			rowJ := apsp[j]
			for y := 0; y < n; y++ {
				if x == y {
					continue
				}
				d := rowX[y]
				if via := dxi + 1 + rowJ[y]; via < d {
					d = via
				}
				total += int64(d)
			}
		}
		return total
	}
	for x := 0; x < n && x < len(p.Freq); x++ {
		row := p.Freq[x]
		if row == nil {
			continue
		}
		dxi := apsp[x][i]
		rowX := apsp[x]
		rowJ := apsp[j]
		for y, f := range row {
			if f == 0 || x == y {
				continue
			}
			d := rowX[y]
			if via := dxi + 1 + rowJ[y]; via < d {
				d = via
			}
			total += f * int64(d)
		}
	}
	return total
}

// Region is a 3x3 sub-mesh, identified by its lower-left corner.
type Region struct {
	X0, Y0 int
	ids    []int
}

// RegionSize is the side of the square communication regions the paper's
// region-based selector uses.
const RegionSize = 3

// regions enumerates all 3x3 windows of a WxH mesh.
func regions(w, h int) []Region {
	var out []Region
	for y := 0; y+RegionSize <= h; y++ {
		for x := 0; x+RegionSize <= w; x++ {
			r := Region{X0: x, Y0: y}
			for dy := 0; dy < RegionSize; dy++ {
				for dx := 0; dx < RegionSize; dx++ {
					r.ids = append(r.ids, (y+dy)*w+(x+dx))
				}
			}
			out = append(out, r)
		}
	}
	return out
}

// overlaps reports whether two regions share any router.
func (r Region) overlaps(o Region) bool {
	return abs(r.X0-o.X0) < RegionSize && abs(r.Y0-o.Y0) < RegionSize
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// regionCost computes C_Region(A,B) = sum over x in A, y in B of
// F(x,y) * W(x,y). Traffic counts regardless of whether the routers'
// shortcut ports are taken -- that is exactly the point of region-based
// selection: a hotspot with an occupied port still attracts shortcuts to
// its neighbors.
func regionCost(apsp [][]int, p Params, a, b Region) int64 {
	var total int64
	for _, x := range a.ids {
		for _, y := range b.ids {
			if x == y {
				continue
			}
			f := freqAt(p.Freq, x, y)
			if f == 0 {
				continue
			}
			total += f * int64(apsp[x][y])
		}
	}
	return total
}

// SelectRegionBased implements the Section 3.2.2 application-specific
// selector: it alternates between placing a pair shortcut (the max-F*W
// pair, as in SelectMaxCost) and placing a region shortcut. A region step
// picks the pair of non-overlapping 3x3 regions (I,J) maximizing
// C_Region(I,J), then adds the best eligible edge (i,j) with i in I and
// j in J. This lets multiple shortcuts serve a single hotspot by placing
// their endpoints at routers near the hotspot, which pure pair selection
// forbids via the one-port-per-router rule.
//
// p.Freq must be non-nil and p.MeshW/p.MeshH must be set.
func SelectRegionBased(g *graph.Digraph, p Params) []Edge {
	if p.Freq == nil {
		panic("shortcut: SelectRegionBased requires a frequency matrix")
	}
	if p.MeshW < RegionSize || p.MeshH < RegionSize {
		panic("shortcut: SelectRegionBased requires mesh dimensions")
	}
	regs := regions(p.MeshW, p.MeshH)
	work := g.Clone()
	u := newUsed()
	var out []Edge
	for len(out) < p.Budget {
		apsp := work.AllPairs()
		var e Edge
		var ok bool
		if len(out)%2 == 0 {
			e, ok = bestPair(apsp, p, u, nil)
			if !ok {
				e, ok = bestRegionEdge(apsp, p, u, regs)
			}
		} else {
			e, ok = bestRegionEdge(apsp, p, u, regs)
			if !ok {
				// No region pair has remaining frequency; fall back to
				// pair placement so the budget is not wasted.
				e, ok = bestPair(apsp, p, u, nil)
			}
		}
		if !ok {
			break
		}
		out = append(out, e)
		u.take(e)
		work.AddEdge(e.From, e.To, 1)
	}
	return out
}

// bestRegionEdge finds the max-C_Region non-overlapping region pair and
// returns the best edge inside it. Region pairs with zero cost are
// skipped; if the best region pair yields no eligible edge the next best
// pair is tried.
//
// Within the chosen region pair (I,J) the edge endpoints are picked by
// traffic proximity: the source i in I (with a free outbound port)
// closest to I's heavy senders and the destination j in J (free inbound
// port) closest to J's heavy receivers, weighted by message counts. This
// is what lets a second or third shortcut serve a hotspot whose own
// inbound port is already taken: the edge lands on an unused neighbor.
func bestRegionEdge(apsp [][]int, p Params, u *used, regs []Region) (Edge, bool) {
	type scored struct {
		a, b Region
		c    int64
	}
	var pairs []scored
	for ai := range regs {
		for bi := range regs {
			if ai == bi || regs[ai].overlaps(regs[bi]) {
				continue
			}
			c := regionCost(apsp, p, regs[ai], regs[bi])
			if c > 0 {
				pairs = append(pairs, scored{regs[ai], regs[bi], c})
			}
		}
	}
	// Sort descending by cost (insertion sort keeps this dependency-free
	// and pairs lists are small: at most 64*63).
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].c > pairs[j-1].c; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	for _, pr := range pairs {
		if e, ok := regionPairEdge(apsp, p, u, pr.a, pr.b); ok {
			return e, true
		}
	}
	return Edge{}, false
}

// regionPairEdge picks the concrete edge (i,j), i in A, j in B, for a
// region step. Endpoint scores weight each flow (x in A) -> (y in B) by
// 1/(1+dist(candidate, flow endpoint)), so candidates sitting on or next
// to the traffic score highest.
func regionPairEdge(apsp [][]int, p Params, u *used, a, b Region) (Edge, bool) {
	bestSrc, bestDst := -1, -1
	var bestSrcScore, bestDstScore float64 = -1, -1
	for _, i := range a.ids {
		if u.src[i] || !p.eligible(i) {
			continue
		}
		var s float64
		for _, x := range a.ids {
			for _, y := range b.ids {
				if f := freqAt(p.Freq, x, y); f != 0 && x != y {
					s += float64(f) * float64(apsp[x][y]) / float64(1+apsp[i][x])
				}
			}
		}
		if s > bestSrcScore {
			bestSrcScore, bestSrc = s, i
		}
	}
	for _, j := range b.ids {
		if u.dst[j] || !p.eligible(j) {
			continue
		}
		var s float64
		for _, x := range a.ids {
			for _, y := range b.ids {
				if f := freqAt(p.Freq, x, y); f != 0 && x != y {
					s += float64(f) * float64(apsp[x][y]) / float64(1+apsp[j][y])
				}
			}
		}
		if s > bestDstScore {
			bestDstScore, bestDst = s, j
		}
	}
	if bestSrc < 0 || bestDst < 0 || bestSrc == bestDst {
		return Edge{}, false
	}
	if apsp[bestSrc][bestDst] < p.minDist() {
		return Edge{}, false
	}
	return Edge{From: bestSrc, To: bestDst}, true
}

// Apply returns a clone of g augmented with the selected shortcuts as
// weight-1 edges.
func Apply(g *graph.Digraph, edges []Edge) *graph.Digraph {
	out := g.Clone()
	for _, e := range edges {
		out.AddEdge(e.From, e.To, 1)
	}
	return out
}

// Validate checks that a shortcut set satisfies the paper's constraints:
// within budget, unique source and destination ports, eligible endpoints.
// It returns a descriptive error for the first violation found.
func Validate(edges []Edge, p Params) error {
	if len(edges) > p.Budget {
		return fmt.Errorf("shortcut: %d edges exceed budget %d", len(edges), p.Budget)
	}
	srcs := map[int]bool{}
	dsts := map[int]bool{}
	for _, e := range edges {
		if e.From == e.To {
			return fmt.Errorf("shortcut: self edge at %d", e.From)
		}
		if !p.eligible(e.From) {
			return fmt.Errorf("shortcut: ineligible source %d", e.From)
		}
		if !p.eligible(e.To) {
			return fmt.Errorf("shortcut: ineligible destination %d", e.To)
		}
		if srcs[e.From] {
			return fmt.Errorf("shortcut: router %d has two outbound shortcuts", e.From)
		}
		if dsts[e.To] {
			return fmt.Errorf("shortcut: router %d has two inbound shortcuts", e.To)
		}
		srcs[e.From] = true
		dsts[e.To] = true
	}
	return nil
}
