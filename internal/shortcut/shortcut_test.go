package shortcut

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/topology"
)

func meshParams(budget int) (g *graph.Digraph, p Params, m *topology.Mesh) {
	m = topology.New10x10()
	g = m.Graph()
	p = Params{
		Budget:   budget,
		Eligible: m.ShortcutEligible,
		MeshW:    m.W,
		MeshH:    m.H,
	}
	return g, p, m
}

func TestMaxCostRespectsBudgetAndPorts(t *testing.T) {
	g, p, _ := meshParams(16)
	edges := SelectMaxCost(g, p)
	if len(edges) != 16 {
		t.Fatalf("selected %d edges, want 16", len(edges))
	}
	if err := Validate(edges, p); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCostReducesDiameterAndCost(t *testing.T) {
	g, p, _ := meshParams(16)
	before, _, _ := g.Diameter()
	costBefore := g.TotalPairCost()
	edges := SelectMaxCost(g, p)
	aug := Apply(g, edges)
	after, _, _ := aug.Diameter()
	costAfter := aug.TotalPairCost()
	if after >= before {
		t.Errorf("diameter not reduced: %d -> %d", before, after)
	}
	if costAfter >= costBefore {
		t.Errorf("total cost not reduced: %d -> %d", costBefore, costAfter)
	}
	// 16 cross-chip shortcuts should cut mean distance substantially
	// (the paper sees ~20%+ latency gains from the static set).
	if float64(costAfter) > 0.9*float64(costBefore) {
		t.Errorf("cost reduction too small: %d -> %d", costBefore, costAfter)
	}
}

func TestMaxCostAvoidsCorners(t *testing.T) {
	g, p, m := meshParams(16)
	for _, e := range SelectMaxCost(g, p) {
		if m.IsCorner(e.From) || m.IsCorner(e.To) {
			t.Errorf("edge %v touches a memory corner", e)
		}
	}
}

func TestMaxCostFirstEdgeSpansDiameter(t *testing.T) {
	// On a fresh mesh with eligibility, the first max-cost pair must be at
	// the graph's eligible diameter: 16 hops between opposite near-corner
	// routers (corners themselves are excluded).
	g, p, m := meshParams(1)
	edges := SelectMaxCost(g, p)
	if len(edges) != 1 {
		t.Fatal("no edge selected")
	}
	if d := m.Manhattan(edges[0].From, edges[0].To); d != 16 {
		t.Errorf("first shortcut spans %d hops, want 16", d)
	}
}

func TestGreedyPermutationOnSmallGrid(t *testing.T) {
	g := graph.Grid(5, 5)
	p := Params{Budget: 4}
	edges := SelectGreedyPermutation(g, p)
	if len(edges) != 4 {
		t.Fatalf("selected %d edges, want 4", len(edges))
	}
	if err := Validate(edges, p); err != nil {
		t.Fatal(err)
	}
	if Apply(g, edges).TotalPairCost() >= g.TotalPairCost() {
		t.Error("greedy permutation selection did not improve cost")
	}
}

func TestGreedyBeatsOrMatchesMaxCostOnObjective(t *testing.T) {
	// The permutation-graph heuristic optimizes the objective directly,
	// so it can never end up worse than max-cost *on the first step*. Over
	// several steps both should land within a few percent of each other
	// (the paper found them comparable and kept the cheaper one).
	g := graph.Grid(6, 6)
	p := Params{Budget: 4}
	cg := Apply(g, SelectGreedyPermutation(g, p)).TotalPairCost()
	cm := Apply(g, SelectMaxCost(g, p)).TotalPairCost()
	if float64(cg) > 1.10*float64(cm) {
		t.Errorf("greedy objective %d much worse than max-cost %d", cg, cm)
	}
}

func TestApplicationSpecificPrefersHotPairs(t *testing.T) {
	g, p, m := meshParams(4)
	// Build a frequency matrix with one dominant flow: (1,1) -> (8,8).
	freq := make([][]int64, g.N())
	hotSrc, hotDst := m.ID(1, 1), m.ID(8, 8)
	freq[hotSrc] = make([]int64, g.N())
	freq[hotSrc][hotDst] = 1000
	other := m.ID(2, 2)
	freq[other] = make([]int64, g.N())
	freq[other][m.ID(3, 3)] = 1
	p.Freq = freq
	edges := SelectMaxCost(g, p)
	if len(edges) == 0 {
		t.Fatal("no edges selected")
	}
	if edges[0].From != hotSrc || edges[0].To != hotDst {
		t.Errorf("first app-specific edge = %v, want %d->%d", edges[0], hotSrc, hotDst)
	}
}

func TestApplicationSpecificIgnoresZeroFreqPairs(t *testing.T) {
	g, p, m := meshParams(16)
	freq := make([][]int64, g.N())
	a, b := m.ID(1, 2), m.ID(8, 7)
	freq[a] = make([]int64, g.N())
	freq[a][b] = 5
	p.Freq = freq
	edges := SelectMaxCost(g, p)
	// Only one pair has traffic, so only one shortcut can be placed.
	if len(edges) != 1 {
		t.Fatalf("selected %d edges, want 1 (only one nonzero pair)", len(edges))
	}
	if edges[0].From != a || edges[0].To != b {
		t.Errorf("edge = %v, want %d->%d", edges[0], a, b)
	}
}

func TestRegionBasedServesHotspot(t *testing.T) {
	g, p, m := meshParams(8)
	// Hotspot: the cache at (7,0), as in the paper's Figure 2(c). Many
	// cores send to it.
	hot := m.ID(7, 0)
	freq := make([][]int64, g.N())
	for _, src := range []int{m.ID(1, 8), m.ID(2, 7), m.ID(3, 8), m.ID(1, 6), m.ID(4, 7), m.ID(2, 5)} {
		freq[src] = make([]int64, g.N())
		freq[src][hot] = 500
	}
	p.Freq = freq
	edges := SelectRegionBased(g, p)
	if err := Validate(edges, p); err != nil {
		t.Fatal(err)
	}
	if len(edges) < 2 {
		t.Fatalf("selected %d edges, want >= 2", len(edges))
	}
	// Pure pair selection can place at most ONE shortcut ending at the
	// hotspot router. Region-based selection must land several shortcut
	// destinations within 2 hops of the hotspot.
	near := 0
	for _, e := range edges {
		if m.Manhattan(e.To, hot) <= 2 {
			near++
		}
	}
	if near < 2 {
		t.Errorf("only %d shortcut destinations near hotspot, want >= 2 (edges: %v)", near, edges)
	}
}

func TestRegionBasedRequiresFreq(t *testing.T) {
	g, p, _ := meshParams(4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic without Freq")
		}
	}()
	SelectRegionBased(g, p)
}

func TestRegionsEnumeration(t *testing.T) {
	regs := regions(10, 10)
	if len(regs) != 64 {
		t.Fatalf("regions = %d, want 64", len(regs))
	}
	for _, r := range regs {
		if len(r.ids) != 9 {
			t.Fatalf("region has %d cells, want 9", len(r.ids))
		}
	}
	// Overlap logic: adjacent windows overlap, distant ones do not.
	if !regs[0].overlaps(regs[1]) {
		t.Error("adjacent regions should overlap")
	}
	a := Region{X0: 0, Y0: 0}
	b := Region{X0: 3, Y0: 0}
	if a.overlaps(b) {
		t.Error("regions 3 apart should not overlap")
	}
	if !a.overlaps(a) {
		t.Error("a region overlaps itself")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	p := Params{Budget: 2}
	if err := Validate([]Edge{{1, 2}, {3, 4}, {5, 6}}, p); err == nil {
		t.Error("over budget not caught")
	}
	p.Budget = 10
	if err := Validate([]Edge{{1, 1}}, p); err == nil {
		t.Error("self edge not caught")
	}
	if err := Validate([]Edge{{1, 2}, {1, 3}}, p); err == nil {
		t.Error("duplicate source not caught")
	}
	if err := Validate([]Edge{{1, 2}, {3, 2}}, p); err == nil {
		t.Error("duplicate destination not caught")
	}
	p.Eligible = func(id int) bool { return id != 7 }
	if err := Validate([]Edge{{7, 2}}, p); err == nil {
		t.Error("ineligible source not caught")
	}
	if err := Validate([]Edge{{2, 7}}, p); err == nil {
		t.Error("ineligible destination not caught")
	}
	if err := Validate([]Edge{{1, 2}}, p); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}

func TestEligibilityRestrictsToRFRouters(t *testing.T) {
	g, p, m := meshParams(16)
	aps := map[int]bool{}
	for _, id := range m.RFPlacement(50) {
		aps[id] = true
	}
	p.Eligible = func(id int) bool { return aps[id] && m.ShortcutEligible(id) }
	edges := SelectMaxCost(g, p)
	if len(edges) != 16 {
		t.Fatalf("selected %d edges, want 16", len(edges))
	}
	for _, e := range edges {
		if !aps[e.From] || !aps[e.To] {
			t.Errorf("edge %v uses a non-RF-enabled router", e)
		}
	}
}

// Property: for random sparse frequency matrices, region-based selection
// always returns a valid shortcut set that never exceeds budget and whose
// weighted objective is no worse than the unaugmented mesh.
func TestPropertyRegionBasedValid(t *testing.T) {
	m := topology.New10x10()
	g := m.Graph()
	f := func(seeds [6]uint16) bool {
		freq := make([][]int64, g.N())
		for _, s := range seeds {
			a := int(s) % g.N()
			b := int(s>>8) % g.N()
			if a == b {
				continue
			}
			if freq[a] == nil {
				freq[a] = make([]int64, g.N())
			}
			freq[a][b] += int64(s%97) + 1
		}
		p := Params{
			Budget:   6,
			Eligible: m.ShortcutEligible,
			Freq:     freq,
			MeshW:    m.W, MeshH: m.H,
		}
		edges := SelectRegionBased(g, p)
		if Validate(edges, p) != nil {
			return false
		}
		before := graph.WeightedCost(g.AllPairs(), freq)
		after := graph.WeightedCost(Apply(g, edges).AllPairs(), freq)
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSelectionStopsWhenEligibilityExhausted(t *testing.T) {
	// Only four eligible routers -> at most 4 sources and 4 dests, but
	// the one-in/one-out rule and self-edge ban cap the yield below the
	// budget; selection must stop gracefully instead of spinning.
	g := graph.Grid(6, 6)
	allowed := map[int]bool{0: true, 5: true, 30: true, 35: true}
	p := Params{Budget: 16, Eligible: func(id int) bool { return allowed[id] }}
	edges := SelectMaxCost(g, p)
	if len(edges) == 0 || len(edges) > 4 {
		t.Fatalf("selected %d edges, want 1..4", len(edges))
	}
	if err := Validate(edges, p); err != nil {
		t.Fatal(err)
	}
}

func TestMinDistanceFiltersNearPairs(t *testing.T) {
	g := graph.Grid(4, 4)
	// With MinDistance 6, only the corner-to-corner pairs qualify on a
	// 4x4 grid (max distance 6).
	p := Params{Budget: 16, MinDistance: 6}
	edges := SelectMaxCost(g, p)
	for _, e := range edges {
		d := abs(e.From%4-e.To%4) + abs(e.From/4-e.To/4)
		if d < 6 {
			t.Fatalf("edge %v spans %d < MinDistance 6", e, d)
		}
	}
	if len(edges) == 0 {
		t.Fatal("no edges selected")
	}
}

func TestGreedyPermutationRespectsEligibility(t *testing.T) {
	g := graph.Grid(6, 6)
	banned := 14
	p := Params{Budget: 3, Eligible: func(id int) bool { return id != banned }}
	for _, e := range SelectGreedyPermutation(g, p) {
		if e.From == banned || e.To == banned {
			t.Fatalf("edge %v uses banned router", e)
		}
	}
}
