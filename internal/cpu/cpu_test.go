package cpu

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/noc"
	"repro/internal/tech"
	"repro/internal/topology"
)

func TestClosedLoopConservation(t *testing.T) {
	m := topology.New10x10()
	n := noc.New(noc.Config{Mesh: m, Width: tech.Width16B})
	s := New(m, Params{}, 1)
	if !RunClosedLoop(s, n, 10000) {
		t.Fatal("closed loop did not drain")
	}
	st := s.Stats()
	if st.Issued == 0 {
		t.Fatal("no operations issued")
	}
	if st.Completed != st.Issued {
		t.Errorf("completed %d != issued %d after drain", st.Completed, st.Issued)
	}
	for ci := range m.Cores() {
		if s.Outstanding(ci) != 0 {
			t.Fatalf("core %d still has outstanding requests", ci)
		}
	}
	if st.AvgRoundTrip() < 20 {
		t.Errorf("round trip %.1f implausibly low", st.AvgRoundTrip())
	}
}

func TestMSHRLimitBoundsOutstanding(t *testing.T) {
	m := topology.New10x10()
	n := noc.New(noc.Config{Mesh: m, Width: tech.Width4B})
	s := New(m, Params{MSHRs: 4, IssueRate: 1.0}, 2)
	s.Attach(n)
	for now := int64(0); now < 3000; now++ {
		s.Tick(now, n.Inject)
		n.Step()
		for ci := range m.Cores() {
			if s.Outstanding(ci) > 4 {
				t.Fatalf("core %d exceeded MSHR limit: %d", ci, s.Outstanding(ci))
			}
		}
	}
	if s.Stats().StallCycles == 0 {
		t.Error("issue rate 1.0 with 4 MSHRs should stall")
	}
}

func TestClosedLoopThrottlesOnCongestion(t *testing.T) {
	// The whole point of closed-loop modeling: a slower network must
	// complete fewer operations, not just delay the same count.
	m := topology.New10x10()
	run := func(w tech.LinkWidth) (float64, float64) {
		n := noc.New(noc.Config{Mesh: m, Width: w})
		s := New(m, Params{IssueRate: 0.5, MSHRs: 4}, 3)
		if !RunClosedLoop(s, n, 15000) {
			t.Fatal("no drain")
		}
		st := s.Stats()
		return st.Throughput(15000, 64), st.AvgRoundTrip()
	}
	tput16, rt16 := run(tech.Width16B)
	tput4, rt4 := run(tech.Width4B)
	if tput4 >= tput16 {
		t.Errorf("4B throughput (%.4f) should trail 16B (%.4f)", tput4, tput16)
	}
	if rt4 <= rt16 {
		t.Errorf("4B round trip (%.1f) should exceed 16B (%.1f)", rt4, rt16)
	}
}

func TestAdaptiveOverlayRecoversClosedLoopThroughput(t *testing.T) {
	// System-level version of the paper's headline: on the narrow mesh,
	// the adaptive overlay must recover most of the lost operation
	// throughput under a hot-bank workload.
	m := topology.New10x10()
	params := Params{IssueRate: 0.5, MSHRs: 8, HotBankFraction: 0.08}
	run := func(cfg noc.Config) float64 {
		n := noc.New(cfg)
		s := New(m, params, 4)
		if !RunClosedLoop(s, n, 15000) {
			t.Fatal("no drain")
		}
		return s.Stats().Throughput(15000, 64)
	}
	base16 := run(noc.Config{Mesh: m, Width: tech.Width16B})
	base4 := run(noc.Config{Mesh: m, Width: tech.Width4B})

	// Profile the same workload open-loop-ish for selection.
	profile := New(m, params, 4)
	pn := noc.New(noc.Config{Mesh: m, Width: tech.Width16B})
	RunClosedLoop(profile, pn, 8000)
	freq := pn.ObservedFrequency()
	rf := m.RFPlacement(50)
	edges := experiments.AdaptiveShortcuts(m, rf, freq, tech.ShortcutBudget)
	adapt4 := run(noc.Config{Mesh: m, Width: tech.Width4B, Shortcuts: edges, RFEnabled: rf})

	if base4 >= base16 {
		t.Skip("narrow mesh not throughput-bound at this rate")
	}
	recovered := (adapt4 - base4) / (base16 - base4)
	if recovered < 0.25 {
		t.Errorf("adaptive overlay recovered only %.0f%% of closed-loop throughput (16B=%.4f 4B=%.4f adaptive=%.4f)",
			100*recovered, base16, base4, adapt4)
	}
}

func TestMissesGoToMemory(t *testing.T) {
	m := topology.New10x10()
	n := noc.New(noc.Config{Mesh: m, Width: tech.Width16B})
	s := New(m, Params{MissFraction: 1.0, IssueRate: 0.05}, 5)
	if !RunClosedLoop(s, n, 5000) {
		t.Fatal("no drain")
	}
	// Every request misses: memory traffic must flow and round trips
	// must include the memory service latency.
	if s.Stats().AvgRoundTrip() < float64(s.params.MemServiceCycles) {
		t.Errorf("round trip %.1f should include memory service", s.Stats().AvgRoundTrip())
	}
}
