// Package cpu is a closed-loop workload model: 64 simple cores that
// issue memory requests against the cache banks, bounded by per-core
// MSHRs (outstanding-miss registers). Unlike the open-loop trace
// generators in internal/traffic — which inject on schedule no matter
// how congested the network is — a closed-loop core stalls when its
// MSHRs fill, so network latency feeds back into offered load exactly as
// it does in the full-system simulations the paper captured its traces
// from. The model reports end-to-end request round-trips and a
// throughput proxy (completed operations per cycle), which is how NoC
// improvements become system-level speedups.
package cpu

import (
	"container/heap"
	"math/rand"

	"repro/internal/noc"
	"repro/internal/topology"
)

// Params configures the core model.
type Params struct {
	// MSHRs bounds outstanding requests per core. Default 8.
	MSHRs int

	// IssueRate is the probability per cycle that a core with a free
	// MSHR issues a memory operation. Default 0.25 (a memory-intensive
	// phase).
	IssueRate float64

	// CacheServiceCycles is the bank lookup latency between a request's
	// arrival and its reply's injection. Default 6 (cache at 4 GHz,
	// network at 2 GHz: a 12-core-cycle bank pipeline).
	CacheServiceCycles int64

	// MissFraction of requests also fetch a line from memory before the
	// reply (adding a cache<->memory round trip). Default 0.1.
	MissFraction float64

	// MemServiceCycles is the memory service latency. Default 50.
	MemServiceCycles int64

	// HotBankFraction of requests target a single hot bank (0 spreads
	// uniformly). Default 0.
	HotBankFraction float64
	// HotBank is the router id of the hot bank (defaults to the paper's
	// (7,0) when HotBankFraction > 0).
	HotBank int
}

func (p Params) withDefaults(m *topology.Mesh) Params {
	if p.MSHRs == 0 {
		p.MSHRs = 8
	}
	if p.IssueRate == 0 {
		p.IssueRate = 0.25
	}
	if p.CacheServiceCycles == 0 {
		p.CacheServiceCycles = 6
	}
	if p.MissFraction == 0 {
		p.MissFraction = 0.1
	}
	if p.MemServiceCycles == 0 {
		p.MemServiceCycles = 50
	}
	if p.HotBankFraction > 0 && p.HotBank == 0 {
		p.HotBank = m.ID(7, 0)
	}
	return p
}

// Stats summarizes closed-loop behaviour.
type Stats struct {
	Issued    int64
	Completed int64
	// RoundTripSum is the total request-to-reply latency over completed
	// operations.
	RoundTripSum int64
	// StallCycles counts core-cycles spent with all MSHRs full.
	StallCycles int64
}

// AvgRoundTrip returns mean operation latency in network cycles.
func (s Stats) AvgRoundTrip() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.RoundTripSum) / float64(s.Completed)
}

// Throughput returns completed operations per cycle per core.
func (s Stats) Throughput(cycles int64, cores int) float64 {
	if cycles == 0 || cores == 0 {
		return 0
	}
	return float64(s.Completed) / float64(cycles) / float64(cores)
}

// System is the closed-loop workload; it implements traffic.Generator
// and must be attached to the network before simulation so replies can
// retire MSHRs.
type System struct {
	mesh   *topology.Mesh
	params Params
	rng    *rand.Rand

	cores       []int
	caches      []int
	mems        []int
	coreOf      map[int]int // router -> core index
	outstanding []int
	inflight    [][]int64 // per-core FIFO of issue cycles

	pending eventQueue
	stats   Stats
	now     int64
	// draining disables new issues while outstanding traffic retires.
	draining bool
}

// New builds the system.
func New(m *topology.Mesh, p Params, seed int64) *System {
	s := &System{
		mesh:   m,
		params: p.withDefaults(m),
		rng:    rand.New(rand.NewSource(seed)),
		cores:  m.Cores(),
		caches: m.Caches(),
		mems:   m.Memories(),
		coreOf: map[int]int{},
	}
	s.outstanding = make([]int, len(s.cores))
	s.inflight = make([][]int64, len(s.cores))
	for i, r := range s.cores {
		s.coreOf[r] = i
	}
	return s
}

// Name implements traffic.Generator.
func (s *System) Name() string { return "closed-loop-cores" }

// Stats returns the model's counters.
func (s *System) Stats() Stats { return s.stats }

// Outstanding returns core ci's in-flight request count.
func (s *System) Outstanding(ci int) int { return s.outstanding[ci] }

// Attach registers the reply path on a network. Must be called once
// before simulation.
func (s *System) Attach(n *noc.Network) {
	n.SetDeliveryHook(func(msg noc.Message, at int64) {
		s.onDeliver(n, msg, at)
	})
}

// Tick implements traffic.Generator: issues new requests and injects
// scheduled replies.
func (s *System) Tick(now int64, inject func(noc.Message)) {
	s.now = now
	for s.pending.Len() > 0 && s.pending[0].at <= now {
		e := heap.Pop(&s.pending).(event)
		e.msg.Inject = now
		inject(e.msg)
	}
	if s.draining {
		return
	}
	for ci, router := range s.cores {
		if s.outstanding[ci] >= s.params.MSHRs {
			s.stats.StallCycles++
			continue
		}
		if s.rng.Float64() >= s.params.IssueRate {
			continue
		}
		bank := s.pickBank()
		s.outstanding[ci]++
		s.inflight[ci] = append(s.inflight[ci], now)
		s.stats.Issued++
		inject(noc.Message{Src: router, Dst: bank, Class: noc.Request, Inject: now})
	}
}

func (s *System) pickBank() int {
	if s.params.HotBankFraction > 0 && s.rng.Float64() < s.params.HotBankFraction {
		return s.params.HotBank
	}
	return s.caches[s.rng.Intn(len(s.caches))]
}

// onDeliver reacts to message arrivals: requests get serviced into
// replies (with an occasional memory fetch first), and replies retire
// the issuing core's oldest MSHR.
func (s *System) onDeliver(n *noc.Network, msg noc.Message, at int64) {
	switch {
	case msg.Class == noc.Request && s.mesh.Kind(msg.Dst) == topology.Cache:
		reply := noc.Message{Src: msg.Dst, Dst: msg.Src, Class: noc.Data}
		delay := s.params.CacheServiceCycles
		if s.rng.Float64() < s.params.MissFraction {
			// Fetch the line first: bank <-> nearest memory port.
			mem := s.nearestMem(msg.Dst)
			heap.Push(&s.pending, event{at: at + delay, msg: noc.Message{
				Src: msg.Dst, Dst: mem, Class: noc.MemLine,
			}})
			delay += s.params.MemServiceCycles
		}
		heap.Push(&s.pending, event{at: at + delay, msg: reply})
	case msg.Class == noc.MemLine && s.mesh.Kind(msg.Dst) == topology.Memory:
		// Memory returns the line to the requesting bank.
		heap.Push(&s.pending, event{at: at + s.params.MemServiceCycles, msg: noc.Message{
			Src: msg.Dst, Dst: msg.Src, Class: noc.MemLine,
		}})
	case msg.Class == noc.Data:
		ci, ok := s.coreOf[msg.Dst]
		if !ok || s.outstanding[ci] == 0 {
			return
		}
		s.outstanding[ci]--
		issued := s.inflight[ci][0]
		s.inflight[ci] = s.inflight[ci][1:]
		s.stats.Completed++
		s.stats.RoundTripSum += at - issued
	}
	_ = n
}

func (s *System) nearestMem(from int) int {
	best, bestD := s.mems[0], 1<<30
	for _, mm := range s.mems {
		if d := s.mesh.Manhattan(from, mm); d < bestD {
			best, bestD = mm, d
		}
	}
	return best
}

// Pending reports scheduled-but-uninjected replies; the system is fully
// drained only when this is zero and the network is empty.
func (s *System) Pending() int { return s.pending.Len() }

// event is a scheduled injection.
type event struct {
	at  int64
	msg noc.Message
}

type eventQueue []event

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// RunClosedLoop drives the system against a network for the given
// cycles, then drains both (injecting any replies that become due during
// the drain). Returns false on a drain failure.
func RunClosedLoop(s *System, n *noc.Network, cycles int64) bool {
	s.Attach(n)
	for now := int64(0); now < cycles; now++ {
		s.Tick(now, n.Inject)
		n.Step()
	}
	s.draining = true
	defer func() { s.draining = false }()
	// Drain: keep servicing replies until the pipeline empties.
	for guard := 0; guard < 64; guard++ {
		if !n.Drain(500000) {
			return false
		}
		if s.Pending() == 0 {
			return true
		}
		for i := 0; i < 256 && s.Pending() > 0; i++ {
			s.Tick(n.Now(), n.Inject)
			n.Step()
		}
	}
	return n.Drain(500000) && s.Pending() == 0
}
