package tech

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestRouterAreaMatchesTable2Baselines(t *testing.T) {
	// Table 2: 100 plain 5-port routers.
	cases := []struct {
		w    LinkWidth
		want float64 // total router area of the baseline mesh, mm^2
	}{
		{Width16B, 30.21},
		{Width8B, 9.34},
		{Width4B, 3.23},
	}
	for _, c := range cases {
		got := 100 * RouterArea(c.w, 0)
		if !almostEqual(got, c.want, 0.01) {
			t.Errorf("baseline router area at %v = %.3f, want %.2f", c.w, got, c.want)
		}
	}
}

func TestRouterAreaMatchesTable2ArchSpecific(t *testing.T) {
	// Arch-specific designs add 32 unidirectional RF ports
	// (16 Tx routers + 16 Rx routers).
	cases := []struct {
		w    LinkWidth
		want float64
	}{
		{Width16B, 32.06},
		{Width8B, 9.86},
		{Width4B, 3.39},
	}
	for _, c := range cases {
		got := 100*RouterArea(c.w, 0) + 32*(RouterArea(c.w, 1)-RouterArea(c.w, 0))
		if !almostEqual(got, c.want, 0.01) {
			t.Errorf("arch-specific router area at %v = %.3f, want %.2f", c.w, got, c.want)
		}
	}
}

func TestRouterAreaMatchesTable2FiftyAPs(t *testing.T) {
	// 50 access points, each with both a Tx and an Rx port (2 RF ports).
	cases := []struct {
		w    LinkWidth
		want float64
	}{
		{Width16B, 35.99},
		{Width8B, 10.97},
		{Width4B, 3.73},
	}
	for _, c := range cases {
		got := 50*RouterArea(c.w, 0) + 50*RouterArea(c.w, 2)
		if !almostEqual(got, c.want, 0.01) {
			t.Errorf("50-AP router area at %v = %.3f, want %.2f", c.w, got, c.want)
		}
	}
}

func TestRFIAreaMatchesTable2(t *testing.T) {
	// 16 shortcuts (16 Tx + 16 Rx endpoints) at 16 B => 0.51 mm^2.
	per := RFIEndpointArea(ShortcutBandwidthGbps(ShortcutWidthBytes))
	if got := 32 * per; !almostEqual(got, 0.51, 0.01) {
		t.Errorf("arch-specific RF-I area = %.4f, want 0.51", got)
	}
	// 50 access points (50 Tx + 50 Rx) => 1.59 mm^2.
	if got := 100 * per; !almostEqual(got, 1.59, 0.01) {
		t.Errorf("50-AP RF-I area = %.4f, want 1.59", got)
	}
}

func TestShortcutBandwidth(t *testing.T) {
	// A 16 B shortcut at 2 GHz carries 256 Gbps.
	if got := ShortcutBandwidthGbps(16); !almostEqual(got, 256, 1e-9) {
		t.Errorf("ShortcutBandwidthGbps(16) = %v, want 256", got)
	}
	// The 256 B aggregate budget is 4096 Gbps.
	if got := ShortcutBandwidthGbps(RFIAggregateBytes); !almostEqual(got, 4096, 1e-9) {
		t.Errorf("aggregate bandwidth = %v, want 4096", got)
	}
}

func TestAggregateNeedsFortyThreeLines(t *testing.T) {
	lines := math.Ceil(ShortcutBandwidthGbps(RFIAggregateBytes) / RFILineBandwidthGbps)
	if int(lines) != RFITransmissionLines {
		t.Errorf("lines needed = %v, want %d", lines, RFITransmissionLines)
	}
}

func TestRouterEnergyMonotonicInWidth(t *testing.T) {
	e4 := RouterDynamicEnergyPerFlit(Width4B)
	e8 := RouterDynamicEnergyPerFlit(Width8B)
	e16 := RouterDynamicEnergyPerFlit(Width16B)
	if !(e4 < e8 && e8 < e16) {
		t.Errorf("per-flit energy not monotonic: %g %g %g", e4, e8, e16)
	}
	// Wider routers must be more energy-efficient per byte (sub-linear
	// energy-per-byte growth is what makes narrow meshes win on power only
	// through leakage/area): E16/16 < 2*E8/8 must NOT hold -- instead the
	// quadratic crossbar term makes energy super-linear in width.
	if e16 >= 4*e8 {
		t.Errorf("energy grows too fast with width: e16=%g e8=%g", e16, e8)
	}
	if e16 <= 2*e8-routerEnergyConst {
		t.Errorf("energy should be super-linear in width: e16=%g e8=%g", e16, e8)
	}
}

func TestLeakageProportionalToArea(t *testing.T) {
	for _, w := range Widths() {
		base := RouterLeakagePower(w, 0)
		withRF := RouterLeakagePower(w, 2)
		if withRF <= base {
			t.Errorf("leakage with RF ports should exceed base at %v", w)
		}
		ratio := withRF / base
		areaRatio := RouterArea(w, 2) / RouterArea(w, 0)
		if !almostEqual(ratio, areaRatio, 1e-12) {
			t.Errorf("leakage/area proportionality broken at %v", w)
		}
	}
}

func TestOptimalRepeaterValuesPositive(t *testing.T) {
	k := OptimalRepeaterSize()
	h := OptimalRepeaterSpacing()
	if k <= 1 {
		t.Errorf("k_opt = %v, want > 1 (repeaters are upsized)", k)
	}
	if h <= 0 || h > DieSideMM {
		t.Errorf("h_opt = %v mm, want within (0, die side]", h)
	}
}

func TestLinkWidthHelpers(t *testing.T) {
	if Width16B.Bits() != 128 || Width4B.Bytes() != 4 {
		t.Fatal("LinkWidth bit/byte conversions wrong")
	}
	if Width8B.String() != "8B" {
		t.Errorf("String() = %q", Width8B.String())
	}
	if LinkWidth(5).Valid() {
		t.Error("5B should not be a calibrated width")
	}
	for _, w := range Widths() {
		if !w.Valid() {
			t.Errorf("%v should be valid", w)
		}
	}
}

func TestUncalibratedWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for uncalibrated width")
		}
	}()
	RouterArea(LinkWidth(3), 0)
}
