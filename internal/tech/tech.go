// Package tech holds the 32 nm technology parameters and calibration
// constants used by the power, area and timing models.
//
// The values mirror the paper's Figure 6(a) technology table and the RF-I
// projections from Chang et al. (0.75 pJ/bit, 124 um^2/Gbps). Router
// area/leakage constants are calibrated so that the analytic model
// reproduces the paper's Table 2 NoC area breakdown exactly at the three
// evaluated link widths (16 B, 8 B, 4 B).
package tech

import (
	"fmt"
	"math"
)

// Physical and architectural constants shared across the models. All
// energies are in joules, areas in mm^2, lengths in mm, times in seconds
// unless a name says otherwise.
const (
	// VDD is the 32 nm supply voltage in volts.
	VDD = 0.9

	// NetworkClockHz is the interconnect clock (2 GHz in the paper).
	NetworkClockHz = 2.0e9

	// CoreClockHz is the core/cache clock (4 GHz in the paper).
	CoreClockHz = 4.0e9

	// NetworkCyclePeriod is the duration of one network cycle in seconds.
	NetworkCyclePeriod = 1.0 / NetworkClockHz

	// DieAreaMM2 is the die size the paper assumes (400 mm^2, 20 mm side).
	DieAreaMM2 = 400.0

	// DieSideMM is the die edge length in mm.
	DieSideMM = 20.0

	// RouterSpacingMM is the distance D between adjacent routers on the
	// 10x10 mesh of a 20 mm die.
	RouterSpacingMM = DieSideMM / 10.0

	// RFIEnergyPerBit is the projected RF-I energy per transmitted bit at
	// 32 nm: 0.75 pJ.
	RFIEnergyPerBit = 0.75e-12

	// RFIAreaPerGbps is the projected RF-I active-layer silicon area per
	// Gbps of bandwidth: 124 um^2 expressed in mm^2.
	RFIAreaPerGbps = 124.0e-6

	// RFILineBandwidthGbps is the bandwidth carried by one RF-I
	// transmission line (96 Gbps in the paper).
	RFILineBandwidthGbps = 96.0

	// RFIAggregateBytes is the total RF-I bandwidth budget per network
	// cycle (256 B/cycle = 4096 Gbps at 2 GHz).
	RFIAggregateBytes = 256

	// RFITransmissionLines is the number of parallel transmission lines
	// needed for the aggregate budget (43 in the paper).
	RFITransmissionLines = 43

	// ShortcutWidthBytes is the width of one RF-I shortcut (16 B).
	ShortcutWidthBytes = 16

	// ShortcutBudget is the number of unidirectional shortcuts the
	// aggregate RF-I bandwidth affords (B = 16).
	ShortcutBudget = 16
)

// Wire-level RC parameters from the paper's Figure 6(a). They feed the
// CosiNoC/IPEM-style link model in internal/power.
const (
	// R0 is the output resistance of a minimum-sized repeater (ohms).
	R0 = 10.0e3

	// C0 is the input capacitance of a repeater stage (farads).
	C0 = 10.0e-15

	// Cp is the output parasitic capacitance of a repeater stage (F).
	Cp = 5.0e-15

	// RWire is the wire resistance per mm (ohms/mm) for a minimum-width
	// global wire at 32 nm.
	RWire = 1.2e3

	// CWire is the wire capacitance per mm (farads/mm).
	CWire = 0.25e-12

	// IOff is the off-state (leakage) current per transistor-width of a
	// minimum-width device (amps per um of width).
	IOff = 150.0e-9

	// WMin is the minimum repeater transistor width (um).
	WMin = 0.045
)

// OptimalRepeaterSize returns k_opt, the delay-optimal repeater upsizing
// factor for a repeated global wire:
//
//	k_opt = sqrt( r0 * c_wire / (r_wire * (c0 + cp)) )
//
// which is the first equation of the paper's Figure 6(b).
func OptimalRepeaterSize() float64 {
	return math.Sqrt(R0 * CWire / (RWire * (C0 + Cp)))
}

// OptimalRepeaterSpacing returns h_opt in mm, the delay-optimal distance
// between repeaters. The paper obtains it from IPEM; we use the classical
// closed form that IPEM's buffer-insertion converges to:
//
//	h_opt = sqrt( 2 * r0 * (c0 + cp) / (r_wire * c_wire) )
func OptimalRepeaterSpacing() float64 {
	return math.Sqrt(2.0 * R0 * (C0 + Cp) / (RWire * CWire))
}

// LinkWidth enumerates the mesh link widths evaluated by the paper.
type LinkWidth int

// The evaluated inter-router link widths in bytes.
const (
	Width4B  LinkWidth = 4
	Width8B  LinkWidth = 8
	Width16B LinkWidth = 16
)

// Bytes returns the link width in bytes.
func (w LinkWidth) Bytes() int { return int(w) }

// Bits returns the link width in bits.
func (w LinkWidth) Bits() int { return int(w) * 8 }

// String implements fmt.Stringer ("16B", "8B", "4B").
func (w LinkWidth) String() string { return fmt.Sprintf("%dB", int(w)) }

// Valid reports whether w is one of the calibrated widths.
func (w LinkWidth) Valid() bool {
	switch w {
	case Width4B, Width8B, Width16B:
		return true
	}
	return false
}

// routerCal holds per-width calibration data fitted to the paper's
// Table 2. Areas are mm^2.
type routerCal struct {
	// fiveportArea is the area of one 5-port mesh router.
	fivePortArea float64
	// rfPortArea is the incremental router area for one unidirectional
	// RF-I port (a 6th input or output port). Table 2 shows this adder is
	// the same whether the port is a Tx or an Rx attachment.
	rfPortArea float64
	// dynEnergyPerFlit is the Orion-style router dynamic energy consumed
	// by one flit traversing one router (buffer write + read, crossbar,
	// arbitration), in joules.
	dynEnergyPerFlit float64
	// leakagePower is the leakage power of one 5-port router in watts.
	leakagePower float64
}

// Calibration table. Areas reproduce Table 2 exactly:
//
//	width  5-port router  RF port adder   (100 routers => Table 2 row)
//	16B    0.3021         0.0578          30.21 / +1.85 per 32 ports
//	 8B    0.0934         0.01625          9.34 / +0.52
//	 4B    0.0323         0.0050           3.23 / +0.16
//
// Dynamic energy per flit follows an Orion-like decomposition
// E = E_const + E_buf(w) + E_xbar(w^2) evaluated at each width; leakage is
// proportional to area. The absolute scale of the energy terms was chosen
// so that, at the default injection rates used in the experiments, the
// dynamic/leakage split at 16 B is roughly 70/30 -- which reproduces the
// paper's reported power reductions for 8 B and 4 B meshes to within a few
// percent (see EXPERIMENTS.md for measured-vs-paper numbers).
var routerCals = map[LinkWidth]routerCal{
	Width16B: {
		fivePortArea:     0.3021,
		rfPortArea:       0.0578,
		dynEnergyPerFlit: routerDynEnergy(16),
		leakagePower:     leakagePerArea * 0.3021,
	},
	Width8B: {
		fivePortArea:     0.0934,
		rfPortArea:       0.01625,
		dynEnergyPerFlit: routerDynEnergy(8),
		leakagePower:     leakagePerArea * 0.0934,
	},
	Width4B: {
		fivePortArea:     0.0323,
		rfPortArea:       0.0050,
		dynEnergyPerFlit: routerDynEnergy(4),
		leakagePower:     leakagePerArea * 0.0323,
	},
}

// Energy model coefficients (joules). See routerCals for the rationale.
const (
	// routerEnergyConst is the width-independent per-flit energy
	// (arbitration, control).
	routerEnergyConst = 0.5e-12
	// routerEnergyPerByte is the linear (buffer read+write) term.
	routerEnergyPerByte = 0.3e-12
	// routerEnergyPerByteSq is the quadratic (crossbar) term.
	routerEnergyPerByteSq = 0.12e-12
	// leakagePerArea converts router area (mm^2) to leakage power
	// (W/mm^2). Chosen so the 16 B baseline's leakage is roughly a third
	// of its total NoC power at the default injection rates, the split
	// under which the paper's 8 B and 4 B savings percentages emerge.
	leakagePerArea = 0.12

	// RFIStaticPerEndpoint is the standing power in watts of one RF-I
	// transmitter or receiver (carrier generation, mixer, LPF bias). This
	// is the "overhead incurred for supporting RF-I" that makes the
	// adaptive 50-AP design cost ~24% extra power at 16 B while the
	// 32-endpoint static design costs ~11% (Section 5.1.1).
	RFIStaticPerEndpoint = 7.0e-3
)

// routerDynEnergy evaluates the Orion-style per-flit router energy at a
// link width of w bytes.
func routerDynEnergy(w float64) float64 {
	return routerEnergyConst + routerEnergyPerByte*w + routerEnergyPerByteSq*w*w
}

// RouterArea returns the active-layer area in mm^2 of one router with the
// given link width and rfPorts additional unidirectional RF-I ports
// (0 for a plain mesh router, 1 for a Tx-only or Rx-only attachment,
// 2 for a router with both an RF transmitter and receiver).
func RouterArea(w LinkWidth, rfPorts int) float64 {
	c := mustCal(w)
	return c.fivePortArea + float64(rfPorts)*c.rfPortArea
}

// RouterDynamicEnergyPerFlit returns the dynamic energy in joules consumed
// by a single flit traversing a single router at link width w.
func RouterDynamicEnergyPerFlit(w LinkWidth) float64 {
	return mustCal(w).dynEnergyPerFlit
}

// RouterLeakagePower returns the leakage power in watts of one router at
// link width w with rfPorts extra unidirectional RF ports. Leakage scales
// with area.
func RouterLeakagePower(w LinkWidth, rfPorts int) float64 {
	return leakagePerArea * RouterArea(w, rfPorts)
}

// RFIEndpointArea returns the silicon area in mm^2 of a single RF-I
// endpoint (one transmitter or one receiver) sized for bandwidthGbps.
// A 16 B shortcut at 2 GHz moves 256 Gbps; at 124 um^2/Gbps the
// transmitter and receiver each account for half the 0.0317 mm^2 of the
// full shortcut, matching Table 2's per-access-point increments.
func RFIEndpointArea(bandwidthGbps float64) float64 {
	return RFIAreaPerGbps * bandwidthGbps / 2.0
}

// ShortcutBandwidthGbps returns the bandwidth in Gbps of one shortcut of
// widthBytes at the network clock.
func ShortcutBandwidthGbps(widthBytes int) float64 {
	return float64(widthBytes*8) * NetworkClockHz / 1e9
}

func mustCal(w LinkWidth) routerCal {
	c, ok := routerCals[w]
	if !ok {
		panic(fmt.Sprintf("tech: uncalibrated link width %d bytes", int(w)))
	}
	return c
}

// Widths lists the calibrated link widths from widest to narrowest, the
// order the paper's sweeps use.
func Widths() []LinkWidth { return []LinkWidth{Width16B, Width8B, Width4B} }
