package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestComponentCounts(t *testing.T) {
	m := New10x10()
	if got := len(m.Cores()); got != NumCores {
		t.Errorf("cores = %d, want %d", got, NumCores)
	}
	if got := len(m.Caches()); got != NumCaches {
		t.Errorf("caches = %d, want %d", got, NumCaches)
	}
	if got := len(m.Memories()); got != NumMemory {
		t.Errorf("memories = %d, want %d", got, NumMemory)
	}
	if m.N() != NumRouters {
		t.Errorf("routers = %d, want %d", m.N(), NumRouters)
	}
}

func TestMemoryAtCorners(t *testing.T) {
	m := New10x10()
	for _, c := range []Coord{{0, 0}, {9, 0}, {0, 9}, {9, 9}} {
		id := m.ID(c.X, c.Y)
		if m.Kind(id) != Memory {
			t.Errorf("corner (%d,%d) kind = %v, want memory", c.X, c.Y, m.Kind(id))
		}
		if !m.IsCorner(id) {
			t.Errorf("corner (%d,%d) not recognized as corner", c.X, c.Y)
		}
		if m.ShortcutEligible(id) {
			t.Errorf("corner (%d,%d) should be shortcut-ineligible", c.X, c.Y)
		}
	}
}

func TestPaperHotspotCacheAt70(t *testing.T) {
	// The paper's Figure 2(c) identifies the router at (7,0) as a cache
	// bank (the 1Hotspot hotspot). Our floorplan must reproduce that.
	m := New10x10()
	if m.Kind(m.ID(7, 0)) != Cache {
		t.Errorf("router (7,0) kind = %v, want cache", m.Kind(m.ID(7, 0)))
	}
}

func TestCacheClusters(t *testing.T) {
	m := New10x10()
	clusters := m.CacheClusters()
	if len(clusters) != NumCacheClusters {
		t.Fatalf("clusters = %d, want %d", len(clusters), NumCacheClusters)
	}
	seen := map[int]bool{}
	for ci, cl := range clusters {
		if len(cl) != 8 {
			t.Errorf("cluster %d has %d banks, want 8", ci, len(cl))
		}
		for _, id := range cl {
			if m.Kind(id) != Cache {
				t.Errorf("cluster %d member %d is %v, not cache", ci, id, m.Kind(id))
			}
			if m.ClusterOf(id) != ci {
				t.Errorf("ClusterOf(%d) = %d, want %d", id, m.ClusterOf(id), ci)
			}
			if seen[id] {
				t.Errorf("bank %d appears in two clusters", id)
			}
			seen[id] = true
		}
		// Central bank must belong to its own cluster.
		central := m.CentralBank(ci)
		if m.ClusterOf(central) != ci {
			t.Errorf("central bank %d of cluster %d not in cluster", central, ci)
		}
	}
	if len(seen) != NumCaches {
		t.Errorf("clusters cover %d banks, want %d", len(seen), NumCaches)
	}
	// Non-cache routers report cluster -1.
	if m.ClusterOf(m.ID(0, 0)) != -1 || m.ClusterOf(m.ID(5, 5)) != -1 {
		t.Error("non-cache routers should report cluster -1")
	}
}

func TestCoordIDRoundTrip(t *testing.T) {
	m := New10x10()
	for id := 0; id < m.N(); id++ {
		c := m.Coord(id)
		if m.ID(c.X, c.Y) != id {
			t.Fatalf("round trip failed for id %d", id)
		}
	}
}

func TestManhattan(t *testing.T) {
	m := New10x10()
	if d := m.Manhattan(m.ID(0, 0), m.ID(9, 9)); d != 18 {
		t.Errorf("corner-to-corner = %d, want 18", d)
	}
	if d := m.Manhattan(m.ID(3, 4), m.ID(3, 4)); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
	if d := m.Manhattan(m.ID(2, 3), m.ID(5, 1)); d != 5 {
		t.Errorf("distance = %d, want 5", d)
	}
}

func TestRFPlacementSizes(t *testing.T) {
	m := New10x10()
	cases := []struct{ n, want int }{{25, 25}, {50, 50}, {100, 96}}
	for _, c := range cases {
		got := m.RFPlacement(c.n)
		if len(got) != c.want {
			t.Errorf("RFPlacement(%d) has %d routers, want %d", c.n, len(got), c.want)
		}
		seen := map[int]bool{}
		for _, id := range got {
			if m.IsCorner(id) {
				t.Errorf("RFPlacement(%d) includes corner %d", c.n, id)
			}
			if seen[id] {
				t.Errorf("RFPlacement(%d) duplicates router %d", c.n, id)
			}
			seen[id] = true
		}
	}
}

func TestRFPlacementStaggerCoverage(t *testing.T) {
	m := New10x10()
	// With 50 access points every router must be within 1 hop of one;
	// with 25, within 2 hops.
	cases := []struct{ n, maxDist int }{{50, 1}, {25, 2}}
	for _, c := range cases {
		aps := m.RFPlacement(c.n)
		for id := 0; id < m.N(); id++ {
			best := 1 << 30
			for _, ap := range aps {
				if d := m.Manhattan(id, ap); d < best {
					best = d
				}
			}
			if best > c.maxDist {
				t.Errorf("router %d is %d hops from nearest of %d APs, want <= %d",
					id, best, c.n, c.maxDist)
			}
		}
	}
}

func TestRFPlacementPanicsOnUnknownSize(t *testing.T) {
	m := New10x10()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.RFPlacement(37)
}

func TestSerpentineVisitsAllOnce(t *testing.T) {
	m := New10x10()
	s := m.Serpentine()
	if len(s) != m.N() {
		t.Fatalf("serpentine visits %d routers, want %d", len(s), m.N())
	}
	seen := map[int]bool{}
	for i, id := range s {
		if seen[id] {
			t.Fatalf("serpentine revisits router %d", id)
		}
		seen[id] = true
		// Consecutive routers must be mesh neighbors.
		if i > 0 && m.Manhattan(s[i-1], id) != 1 {
			t.Fatalf("serpentine jump %d->%d is not a neighbor hop", s[i-1], id)
		}
	}
	if got := m.SerpentineLengthMM(2.0); got != 198.0 {
		t.Errorf("serpentine length = %v mm, want 198", got)
	}
}

func TestGraphMatchesMesh(t *testing.T) {
	m := New10x10()
	g := m.Graph()
	if g.N() != m.N() {
		t.Fatalf("graph has %d vertices, want %d", g.N(), m.N())
	}
	apsp := g.AllPairs()
	for u := 0; u < m.N(); u++ {
		for v := 0; v < m.N(); v++ {
			if apsp[u][v] != m.Manhattan(u, v) {
				t.Fatalf("graph dist(%d,%d)=%d != manhattan %d",
					u, v, apsp[u][v], m.Manhattan(u, v))
			}
		}
	}
}

func TestGraphIsFreshCopy(t *testing.T) {
	m := New10x10()
	g1 := m.Graph()
	g1.AddEdge(0, 99, 1)
	g2 := m.Graph()
	if g2.HasEdge(0, 99) {
		t.Error("Graph() returned a shared instance")
	}
}

func TestNodeKindString(t *testing.T) {
	if Core.String() != "core" || Cache.String() != "cache" || Memory.String() != "memory" {
		t.Error("NodeKind strings wrong")
	}
	if NodeKind(42).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}

// Property: Manhattan distance is a metric on the mesh (symmetry and
// triangle inequality).
func TestPropertyManhattanMetric(t *testing.T) {
	m := New10x10()
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%100, int(b)%100, int(c)%100
		if m.Manhattan(x, y) != m.Manhattan(y, x) {
			return false
		}
		return m.Manhattan(x, z) <= m.Manhattan(x, y)+m.Manhattan(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every pair of distinct routers is connected in the mesh graph
// with distance >= 1.
func TestPropertyMeshConnected(t *testing.T) {
	m := New10x10()
	g := m.Graph()
	f := func(a, b uint8) bool {
		u, v := int(a)%100, int(b)%100
		d := g.ShortestFrom(u)[v]
		if u == v {
			return d == 0
		}
		return d >= 1 && d < graph.Infinity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
