package topology

import (
	"testing"
)

func TestGenericMeshComposition(t *testing.T) {
	cases := []struct {
		side                int
		caches, cores, mems int
	}{
		{6, 16, 16, 4},
		{8, 24, 36, 4},
		{10, 32, 64, 4},
		{12, 40, 100, 4},
		{16, 56, 196, 4},
	}
	for _, c := range cases {
		m := New(c.side, c.side)
		if got := len(m.Caches()); got != c.caches {
			t.Errorf("%dx%d caches = %d, want %d", c.side, c.side, got, c.caches)
		}
		if got := len(m.Cores()); got != c.cores {
			t.Errorf("%dx%d cores = %d, want %d", c.side, c.side, got, c.cores)
		}
		if got := len(m.Memories()); got != c.mems {
			t.Errorf("%dx%d memories = %d, want %d", c.side, c.side, got, c.mems)
		}
		// Four clusters, equal size, each with a central bank inside it.
		cl := m.CacheClusters()
		if len(cl) != 4 {
			t.Fatalf("%dx%d clusters = %d", c.side, c.side, len(cl))
		}
		for ci, banks := range cl {
			if len(banks) != c.caches/4 {
				t.Errorf("%dx%d cluster %d size = %d, want %d",
					c.side, c.side, ci, len(banks), c.caches/4)
			}
			if m.ClusterOf(m.CentralBank(ci)) != ci {
				t.Errorf("%dx%d central bank of cluster %d misplaced", c.side, c.side, ci)
			}
		}
	}
}

func TestGenericMatchesPaperAt10x10(t *testing.T) {
	a, b := New10x10(), New(10, 10)
	for id := 0; id < a.N(); id++ {
		if a.Kind(id) != b.Kind(id) {
			t.Fatalf("kind mismatch at %d: %v vs %v", id, a.Kind(id), b.Kind(id))
		}
	}
	for ci := 0; ci < 4; ci++ {
		if a.CentralBank(ci) != b.CentralBank(ci) {
			t.Fatalf("central bank %d differs", ci)
		}
	}
}

func TestNewRejectsBadSizes(t *testing.T) {
	for _, c := range []struct{ w, h int }{{5, 10}, {10, 5}, {4, 4}, {7, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", c.w, c.h)
				}
			}()
			New(c.w, c.h)
		}()
	}
}

func TestRFStaggerCoverage(t *testing.T) {
	for _, side := range []int{8, 12, 16} {
		m := New(side, side)
		half := m.RFStagger(2)
		quarter := m.RFStagger(4)
		all := m.RFStagger(1)
		if len(all) != m.N()-4 {
			t.Errorf("%dx%d density-1 = %d, want %d", side, side, len(all), m.N()-4)
		}
		if len(half) <= len(quarter) {
			t.Errorf("%dx%d density-2 (%d) should exceed density-4 (%d)",
				side, side, len(half), len(quarter))
		}
		// Coverage bound: every router within 1 hop of a density-2 AP and
		// 2 hops of a density-4 AP. Corner (memory) routers are exempt:
		// they never carry RF hardware and may sit one hop further out
		// when their stagger-parity neighbors are excluded with them.
		check := func(aps []int, maxD int) {
			for id := 0; id < m.N(); id++ {
				if m.IsCorner(id) {
					continue
				}
				best := 1 << 30
				for _, ap := range aps {
					if d := m.Manhattan(id, ap); d < best {
						best = d
					}
				}
				if best > maxD {
					t.Errorf("%dx%d: router %d is %d hops from an AP (bound %d)",
						side, side, id, best, maxD)
				}
			}
		}
		check(half, 1)
		check(quarter, 2)
		for _, id := range append(append([]int{}, half...), quarter...) {
			if m.IsCorner(id) {
				t.Errorf("stagger includes corner %d", id)
			}
		}
	}
}

func TestRFStaggerRejectsBadDensity(t *testing.T) {
	m := New10x10()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.RFStagger(3)
}

func TestRenderFloorplan(t *testing.T) {
	m := New10x10()
	plain := m.Render(nil)
	lines := 0
	for _, c := range plain {
		if c == '\n' {
			lines++
		}
	}
	if lines != 10 {
		t.Fatalf("render has %d lines, want 10", lines)
	}
	// Corners are memory: the first rune of the top row is 'M'.
	if plain[0] != 'M' {
		t.Errorf("top-left rune = %q, want M", plain[0])
	}
	// Marker override wins.
	marked := m.Render(func(id int) rune {
		if id == m.ID(0, 9) {
			return 'X'
		}
		return 0
	})
	if marked[0] != 'X' {
		t.Errorf("override not applied: %q", marked[0])
	}
}
