// Package topology describes the paper's 10x10 mesh floorplan: 64
// processor cores, 32 cache banks in four clusters, and 4 memory ports on
// the corners, plus the staggered placements of RF-enabled routers and the
// serpentine RF-I transmission-line bundle.
package topology

import (
	"fmt"

	"repro/internal/graph"
)

// NodeKind classifies the component attached to a router's local port.
type NodeKind int

// Component kinds, in the paper's color coding: cores are white squares,
// caches gray, memory controllers black.
const (
	Core NodeKind = iota
	Cache
	Memory
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case Core:
		return "core"
	case Cache:
		return "cache"
	case Memory:
		return "memory"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Coord is a router position on the mesh; (0,0) is the bottom-left corner.
type Coord struct{ X, Y int }

// Mesh is the 2D mesh floorplan. Router ids are dense: id = Y*W + X.
type Mesh struct {
	W, H     int
	kinds    []NodeKind
	clusters [][]int // cache router ids per cluster
	central  []int   // designated central (multicast Tx) bank per cluster
	cluster  []int   // router id -> cluster index, -1 for non-cache
}

// Standard dimensions of the paper's network.
const (
	MeshWidth        = 10
	MeshHeight       = 10
	NumRouters       = MeshWidth * MeshHeight
	NumCores         = 64
	NumCaches        = 32
	NumMemory        = 4
	NumCacheClusters = 4
)

// New10x10 builds the paper's 10x10 floorplan:
//
//   - the four corner routers host memory controllers (the paper forbids
//     shortcuts from starting or ending there, since corners only talk to
//     nearby cache banks);
//   - the 32 cache banks form four 4x2 clusters hugging the bottom and top
//     edges next to the memory corners (the paper's Figure 2(c) identifies
//     the router at (7,0) as a cache bank, which this layout reproduces);
//   - the remaining 64 routers host cores.
//
// One bank per cluster is designated "central": it is the cluster's RF-I
// multicast transmitter (Section 3.3).
func New10x10() *Mesh { return New(MeshWidth, MeshHeight) }

// New generalizes the paper's floorplan recipe to a WxH mesh (both even,
// at least 6x6), for scaling studies: memory controllers on the four
// corners, four cache clusters of (W-2)/2 x 2 banks hugging the bottom
// and top edges beside the corners (4(W-2) banks total, 32 on the
// paper's 10x10), cores everywhere else. Die area scales with the router
// count so the per-hop link length stays tech.RouterSpacingMM.
func New(w, h int) *Mesh {
	if w < 6 || h < 6 || w%2 != 0 || h%2 != 0 {
		panic(fmt.Sprintf("topology: unsupported mesh %dx%d (want even, >= 6x6)", w, h))
	}
	m := &Mesh{
		W:       w,
		H:       h,
		kinds:   make([]NodeKind, w*h),
		cluster: make([]int, w*h),
	}
	for i := range m.kinds {
		m.kinds[i] = Core
		m.cluster[i] = -1
	}
	for _, c := range []Coord{{0, 0}, {w - 1, 0}, {0, h - 1}, {w - 1, h - 1}} {
		m.kinds[m.ID(c.X, c.Y)] = Memory
	}
	// Four kx2 cache clusters, k = (w-2)/2: bottom-left, bottom-right,
	// top-left, top-right.
	k := (w - 2) / 2
	blocks := []struct{ x0, y0 int }{{1, 0}, {1 + k, 0}, {1, h - 2}, {1 + k, h - 2}}
	m.clusters = make([][]int, len(blocks))
	m.central = make([]int, len(blocks))
	for ci, b := range blocks {
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < k; dx++ {
				id := m.ID(b.x0+dx, b.y0+dy)
				m.kinds[id] = Cache
				m.cluster[id] = ci
				m.clusters[ci] = append(m.clusters[ci], id)
			}
		}
		// Central bank: the inner-row, center-column bank of the block.
		m.central[ci] = m.ID(b.x0+k/2, b.y0+boolToInt(b.y0 == 0))
	}
	return m
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ID converts a coordinate to a router id.
func (m *Mesh) ID(x, y int) int {
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		panic(fmt.Sprintf("topology: coordinate (%d,%d) out of range", x, y))
	}
	return y*m.W + x
}

// Coord converts a router id to its coordinate.
func (m *Mesh) Coord(id int) Coord {
	if id < 0 || id >= m.W*m.H {
		panic(fmt.Sprintf("topology: router id %d out of range", id))
	}
	return Coord{X: id % m.W, Y: id / m.W}
}

// N returns the number of routers.
func (m *Mesh) N() int { return m.W * m.H }

// Kind returns the component kind attached to router id.
func (m *Mesh) Kind(id int) NodeKind { return m.kinds[id] }

// Cores returns the router ids hosting cores, in id order.
func (m *Mesh) Cores() []int { return m.byKind(Core) }

// Caches returns the router ids hosting cache banks, in id order.
func (m *Mesh) Caches() []int { return m.byKind(Cache) }

// Memories returns the router ids hosting memory controllers, in id order.
func (m *Mesh) Memories() []int { return m.byKind(Memory) }

func (m *Mesh) byKind(k NodeKind) []int {
	var out []int
	for id, kk := range m.kinds {
		if kk == k {
			out = append(out, id)
		}
	}
	return out
}

// CacheClusters returns the cache router ids of each of the four
// clusters.
func (m *Mesh) CacheClusters() [][]int { return m.clusters }

// ClusterOf returns the cache-cluster index of router id, or -1 if the
// router does not host a cache bank.
func (m *Mesh) ClusterOf(id int) int { return m.cluster[id] }

// CentralBank returns the designated multicast-transmitter bank of
// cluster ci.
func (m *Mesh) CentralBank(ci int) int { return m.central[ci] }

// IsCorner reports whether id is one of the four corner routers (which
// host memory interfaces and are excluded from shortcut placement).
func (m *Mesh) IsCorner(id int) bool {
	c := m.Coord(id)
	return (c.X == 0 || c.X == m.W-1) && (c.Y == 0 || c.Y == m.H-1)
}

// ShortcutEligible reports whether a shortcut may start or end at router
// id (everything except the memory corners).
func (m *Mesh) ShortcutEligible(id int) bool { return !m.IsCorner(id) }

// Manhattan returns the hop distance between two routers on the mesh.
func (m *Mesh) Manhattan(a, b int) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Graph returns the mesh connectivity as a unit-weight digraph. The
// returned graph is fresh; callers may add shortcut edges freely.
func (m *Mesh) Graph() *graph.Digraph { return graph.Grid(m.W, m.H) }

// RFPlacement returns the ids of the RF-enabled routers for the three
// design points the paper evaluates:
//
//	100 - every non-corner router is RF-enabled (the "maximal" case; the
//	      four memory corners never carry RF hardware since shortcuts may
//	      not start or end there, so this set has 96 routers);
//	 50 - a staggered (checkerboard) pattern, so every router is at most
//	      one hop from an RF access point; the two corners that fall on the
//	      RF parity are substituted by their inward neighbors to keep the
//	      count at exactly 50;
//	 25 - a sparser stagger (every other router of the 50-point pattern),
//	      so every router is at most two hops from an access point, again
//	      padded to exactly 25 with a corner substitute.
func (m *Mesh) RFPlacement(n int) []int {
	var keep func(c Coord) bool
	var subs []Coord
	switch n {
	case 100:
		keep = func(c Coord) bool { return true }
	case 50:
		keep = func(c Coord) bool { return (c.X+c.Y)%2 == 1 }
		// Corners (9,0) and (0,9) have odd parity; substitute their
		// inward neighbors (8,0) and (1,9), which have even parity.
		subs = []Coord{{8, 0}, {1, 9}}
	case 25:
		keep = func(c Coord) bool { return c.X%2 == 1 && c.Y%2 == 0 }
		// Corner (9,0) matches the pattern; substitute (7,1).
		subs = []Coord{{7, 1}}
	default:
		panic(fmt.Sprintf("topology: unsupported RF placement size %d (want 25, 50 or 100)", n))
	}
	var out []int
	for id := 0; id < m.N(); id++ {
		if m.IsCorner(id) {
			continue
		}
		if keep(m.Coord(id)) {
			out = append(out, id)
		}
	}
	for _, s := range subs {
		out = append(out, m.ID(s.X, s.Y))
	}
	sortInts(out)
	return out
}

// RFStagger returns a staggered RF-enabled placement for any mesh size:
// density 2 keeps every other router (checkerboard; at most one hop to an
// access point), density 4 every fourth (at most two hops). Corners are
// always excluded. For the paper's exact 25/50-router sets on the 10x10
// mesh use RFPlacement.
func (m *Mesh) RFStagger(density int) []int {
	var keep func(c Coord) bool
	switch density {
	case 1:
		keep = func(c Coord) bool { return true }
	case 2:
		keep = func(c Coord) bool { return (c.X+c.Y)%2 == 1 }
	case 4:
		keep = func(c Coord) bool { return c.X%2 == 1 && c.Y%2 == 0 }
	default:
		panic(fmt.Sprintf("topology: unsupported stagger density %d (want 1, 2 or 4)", density))
	}
	var out []int
	for id := 0; id < m.N(); id++ {
		if m.IsCorner(id) {
			continue
		}
		if keep(m.Coord(id)) {
			out = append(out, id)
		}
	}
	return out
}

func sortInts(xs []int) {
	// Insertion sort: placements are tiny and this keeps imports lean.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Serpentine returns the order in which the RF-I transmission-line bundle
// visits the routers as it winds boustrophedon across the die (the thick
// winding line of the paper's Figure 2(a)). Its length in millimeters,
// together with the router spacing, sizes the physical bundle.
func (m *Mesh) Serpentine() []int {
	out := make([]int, 0, m.N())
	for y := 0; y < m.H; y++ {
		if y%2 == 0 {
			for x := 0; x < m.W; x++ {
				out = append(out, m.ID(x, y))
			}
		} else {
			for x := m.W - 1; x >= 0; x-- {
				out = append(out, m.ID(x, y))
			}
		}
	}
	return out
}

// SerpentineLengthMM returns the bundle length in mm given the
// inter-router spacing in mm.
func (m *Mesh) SerpentineLengthMM(spacingMM float64) float64 {
	return float64(m.N()-1) * spacingMM
}

// Render draws the floorplan as a character grid, one rune per router,
// with row 0 at the bottom (the papers' orientation). mark, when
// non-nil, may override the default glyphs ('.' core, 'c' cache,
// 'M' memory) by returning a non-zero rune for a router id.
func (m *Mesh) Render(mark func(id int) rune) string {
	var b []byte
	for y := m.H - 1; y >= 0; y-- {
		for x := 0; x < m.W; x++ {
			id := m.ID(x, y)
			ch := '.'
			switch m.Kind(id) {
			case Cache:
				ch = 'c'
			case Memory:
				ch = 'M'
			}
			if mark != nil {
				if r := mark(id); r != 0 {
					ch = r
				}
			}
			b = append(b, byte(ch), ' ')
		}
		b = append(b, '\n')
	}
	return string(b)
}
