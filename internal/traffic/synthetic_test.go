package traffic

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/tech"
	"repro/internal/topology"
)

func TestPermutationsAreBijections(t *testing.T) {
	for _, p := range Permutations() {
		seen := map[int]bool{}
		for i := 0; i < 64; i++ {
			d := p.partner(i)
			if d < 0 || d > 63 {
				t.Fatalf("%v: partner(%d) = %d out of range", p, i, d)
			}
			if seen[d] {
				t.Fatalf("%v: partner %d hit twice", p, d)
			}
			seen[d] = true
		}
	}
}

func TestPermutationDefinitions(t *testing.T) {
	// Transpose: core (1,2) -> (2,1): index 2*8+1=17 -> 1*8+2=10.
	if got := Transpose.partner(17); got != 10 {
		t.Errorf("transpose(17) = %d, want 10", got)
	}
	// Bit complement of 0 is 63.
	if got := BitComplement.partner(0); got != 63 {
		t.Errorf("bitcomplement(0) = %d, want 63", got)
	}
	// Bit reverse of 000001 is 100000 = 32.
	if got := BitReverse.partner(1); got != 32 {
		t.Errorf("bitreverse(1) = %d, want 32", got)
	}
	// Shuffle of 32 (100000) is 000001 = 1.
	if got := Shuffle.partner(32); got != 1 {
		t.Errorf("shuffle(32) = %d, want 1", got)
	}
}

func TestSyntheticGeneratorSendsToPartners(t *testing.T) {
	m := topology.New10x10()
	for _, p := range Permutations() {
		g := NewSynthetic(m, p, 0.05, 3)
		coreIdx := map[int]int{}
		for i, r := range m.Cores() {
			coreIdx[r] = i
		}
		n := 0
		for now := int64(0); now < 2000; now++ {
			g.Tick(now, func(msg noc.Message) {
				n++
				si, ok1 := coreIdx[msg.Src]
				di, ok2 := coreIdx[msg.Dst]
				if !ok1 || !ok2 {
					t.Fatalf("%v: message between non-cores", p)
				}
				if p.partner(si) != di {
					t.Fatalf("%v: core %d sent to %d, want %d", p, si, di, p.partner(si))
				}
			})
		}
		if n == 0 {
			t.Fatalf("%v: no traffic", p)
		}
	}
}

func TestTransposePunishesXYAndAdaptiveRecovers(t *testing.T) {
	// The classic result: transpose concentrates XY traffic on the
	// diagonal corner turns; minimal-adaptive routing spreads it.
	m := topology.New10x10()
	run := func(adaptive bool) float64 {
		cfg := noc.Config{Mesh: m, Width: tech.Width4B, AdaptiveRouting: adaptive}
		n := noc.New(cfg)
		g := NewSynthetic(m, Transpose, 0.03, 5)
		for now := int64(0); now < 15000; now++ {
			g.Tick(now, n.Inject)
			n.Step()
		}
		if !n.Drain(2000000) {
			t.Fatal("no drain")
		}
		s := n.Stats()
		return s.AvgFlitLatency()
	}
	det, ad := run(false), run(true)
	if ad >= det {
		t.Errorf("adaptive (%.1f) should beat XY (%.1f) on transpose", ad, det)
	}
}

func TestAppTracesOnScaledMesh(t *testing.T) {
	// Application profiles generalize to scaled floorplans: hotspot
	// coordinates must land on cache banks everywhere.
	for _, side := range []int{8, 12} {
		m := topology.New(side, side)
		for _, a := range Apps() {
			g := NewAppTrace(m, a, 0.01, 1)
			n := 0
			g.Tick(0, func(msg noc.Message) { n++ })
			for _, c := range profileFor(a, m).hotspots {
				if m.Kind(m.ID(c.X, c.Y)) != topology.Cache {
					t.Errorf("%dx%d %v: hotspot (%d,%d) is %v, want cache",
						side, side, a, c.X, c.Y, m.Kind(m.ID(c.X, c.Y)))
				}
			}
		}
	}
}
