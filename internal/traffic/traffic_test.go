package traffic

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/noc"
	"repro/internal/topology"
)

func collect(g Generator, cycles int64) []noc.Message {
	var out []noc.Message
	for now := int64(0); now < cycles; now++ {
		g.Tick(now, func(m noc.Message) { out = append(out, m) })
	}
	return out
}

func TestProbabilisticRateRoughlyHonored(t *testing.T) {
	m := topology.New10x10()
	g := NewProbabilistic(m, Uniform, 0.01, 1)
	msgs := collect(g, 20000)
	// 96 components x 0.01 transactions/cycle x 20000 cycles, with most
	// transactions emitting 2 messages (request+reply or mem pair):
	// expect within [1x, 2.2x] of the transaction count.
	tx := 96 * 0.01 * 20000
	if float64(len(msgs)) < tx || float64(len(msgs)) > 2.2*tx {
		t.Errorf("got %d messages for ~%.0f transactions", len(msgs), tx)
	}
}

func TestMessagesAreValid(t *testing.T) {
	m := topology.New10x10()
	for _, pat := range Patterns() {
		g := NewProbabilistic(m, pat, 0.02, 2)
		for _, msg := range collect(g, 3000) {
			if msg.Src == msg.Dst {
				t.Fatalf("%v: self message at router %d", pat, msg.Src)
			}
			if msg.Src < 0 || msg.Src >= m.N() || msg.Dst < 0 || msg.Dst >= m.N() {
				t.Fatalf("%v: out of range message %+v", pat, msg)
			}
			// Memory routers only exchange 132B lines with caches.
			sk, dk := m.Kind(msg.Src), m.Kind(msg.Dst)
			if sk == topology.Memory || dk == topology.Memory {
				if msg.Class != noc.MemLine {
					t.Fatalf("%v: memory message with class %v", pat, msg.Class)
				}
				if sk == topology.Memory && dk != topology.Cache ||
					dk == topology.Memory && sk != topology.Cache {
					t.Fatalf("%v: memory talks only to caches, got %v->%v", pat, sk, dk)
				}
			}
		}
	}
}

func TestHotspotTraceConcentratesTraffic(t *testing.T) {
	m := topology.New10x10()
	g := NewProbabilistic(m, Hotspot1, 0.02, 3)
	hot := m.ID(7, 0)
	msgs := collect(g, 10000)
	at := 0
	for _, msg := range msgs {
		if msg.Src == hot || msg.Dst == hot {
			at++
		}
	}
	frac := float64(at) / float64(len(msgs))
	// hotFraction of the non-memory transactions touch the hotspot;
	// replies included. Expect many times the uniform share (~2%).
	if frac < 0.12 {
		t.Errorf("hotspot traffic fraction = %.2f, want >= 0.12", frac)
	}
	// Uniform trace should spread far thinner.
	gu := NewProbabilistic(m, Uniform, 0.02, 3)
	atU := 0
	msgsU := collect(gu, 10000)
	for _, msg := range msgsU {
		if msg.Src == hot || msg.Dst == hot {
			atU++
		}
	}
	if fU := float64(atU) / float64(len(msgsU)); fU > frac/3 {
		t.Errorf("uniform hotspot share %.3f vs hotspot trace %.3f", fU, frac)
	}
}

func TestDataflowLocality(t *testing.T) {
	m := topology.New10x10()
	g := NewProbabilistic(m, UniDF, 0.02, 4)
	local, neighbor, far := 0, 0, 0
	for _, msg := range collect(g, 10000) {
		if msg.Class == noc.MemLine {
			continue
		}
		gs := m.Coord(msg.Src).X / 2
		gd := m.Coord(msg.Dst).X / 2
		switch d := gs - gd; {
		case d == 0:
			local++
		case d == -1 || d == 1:
			neighbor++
		default:
			far++
		}
	}
	tot := local + neighbor + far
	if far > tot/10 {
		t.Errorf("dataflow trace has %d/%d far-group messages", far, tot)
	}
	if local == 0 || neighbor == 0 {
		t.Error("dataflow trace missing local or neighbor traffic")
	}
}

func TestAppProfilesDiffer(t *testing.T) {
	m := topology.New10x10()
	// Figure 1's contrast: bodytrack is single-hop dominated, x264 much
	// less so.
	hist := func(a App) (frac1 float64) {
		g := NewAppTrace(m, a, 0.02, 5)
		var n1, n int
		for _, msg := range collect(g, 15000) {
			if msg.Class == noc.MemLine {
				continue
			}
			if m.Manhattan(msg.Src, msg.Dst) == 1 {
				n1++
			}
			n++
		}
		return float64(n1) / float64(n)
	}
	x, b := hist(X264), hist(Bodytrack)
	if b <= 1.5*x {
		t.Errorf("bodytrack 1-hop fraction (%.2f) should far exceed x264's (%.2f)", b, x)
	}
}

func TestAppHotspots(t *testing.T) {
	m := topology.New10x10()
	g := NewAppTrace(m, Bodytrack, 0.02, 6)
	counts := map[int]int{}
	for _, msg := range collect(g, 15000) {
		counts[msg.Src]++
		counts[msg.Dst]++
	}
	h1, h2 := m.ID(7, 0), m.ID(2, 9)
	avg := 0
	for _, c := range counts {
		avg += c
	}
	avgF := float64(avg) / float64(len(counts))
	if float64(counts[h1]) < 3*avgF || float64(counts[h2]) < 3*avgF {
		t.Errorf("bodytrack hotspots not hot: %d, %d vs avg %.0f", counts[h1], counts[h2], avgF)
	}
}

func TestFrequencyMatrix(t *testing.T) {
	m := topology.New10x10()
	g := NewProbabilistic(m, Hotspot1, 0.02, 7)
	freq := FrequencyMatrix(g, m.N(), 5000)
	hot := m.ID(7, 0)
	var toHot, total int64
	for s := range freq {
		if freq[s] == nil {
			continue
		}
		for d, f := range freq[s] {
			total += f
			if d == hot {
				toHot += f
			}
		}
	}
	if total == 0 {
		t.Fatal("empty frequency matrix")
	}
	if float64(toHot)/float64(total) < 0.04 {
		t.Errorf("hotspot receives %.3f of traffic, want >= 0.04", float64(toHot)/float64(total))
	}
}

func TestGeneratorsDeterministicBySeed(t *testing.T) {
	m := topology.New10x10()
	a := collect(NewProbabilistic(m, BiDF, 0.02, 42), 2000)
	b := collect(NewProbabilistic(m, BiDF, 0.02, 42), 2000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := collect(NewProbabilistic(m, BiDF, 0.02, 43), 2000)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestMulticastLocality(t *testing.T) {
	m := topology.New10x10()
	for _, pct := range []int{20, 50} {
		base := NewProbabilistic(m, Uniform, 0.001, 8)
		a := NewMulticastAugment(m, base, 0.5, pct, 8)
		var mcs int
		for now := int64(0); now < 20000; now++ {
			a.Tick(now, func(msg noc.Message) {
				if msg.Multicast {
					mcs++
					if m.Kind(msg.Src) != topology.Cache {
						t.Fatal("multicast from non-cache")
					}
					if msg.DBV == 0 {
						t.Fatal("empty DBV")
					}
				}
			})
		}
		if mcs == 0 {
			t.Fatal("no multicasts generated")
		}
		got := float64(a.DistinctPairs()) / float64(a.Sent())
		want := float64(pct) / 100
		if math.Abs(got-want) > 0.05 {
			t.Errorf("locality %d%%: distinct fraction = %.3f, want ~%.2f", pct, got, want)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	m := topology.New10x10()
	base := NewProbabilistic(m, Hotspot2, 0.01, 9)
	g := NewMulticastAugment(m, base, 0.1, 20, 9)
	var buf bytes.Buffer
	count, err := WriteTrace(&buf, g, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("empty trace written")
	}
	rp, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Len() != count {
		t.Fatalf("read %d records, wrote %d", rp.Len(), count)
	}
	if !strings.Contains(rp.Name(), "2Hotspot") {
		t.Errorf("replay name = %q", rp.Name())
	}
	// Replaying must reproduce the same message stream.
	g2 := NewMulticastAugment(m, NewProbabilistic(m, Hotspot2, 0.01, 9), 0.1, 20, 9)
	orig := collect(g2, 2000)
	replayed := collect(rp, 2000)
	if len(orig) != len(replayed) {
		t.Fatalf("replay length %d != original %d", len(replayed), len(orig))
	}
	for i := range orig {
		o, r := orig[i], replayed[i]
		o.Inject, r.Inject = 0, 0 // Replay re-stamps inject cycles
		if o != r {
			t.Fatalf("record %d differs: %+v vs %+v", i, o, r)
		}
	}
	// Rewind allows a second replay.
	rp.Rewind()
	if got := collect(rp, 2000); len(got) != count {
		t.Errorf("rewound replay produced %d records, want %d", len(got), count)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"U 1 2 3\n",              // too few fields
		"X 1 2 3 4\n",            // unknown record
		"U a 2 3 4\n",            // bad cycle
		"M 1 2 zz 4\n",           // bad dbv
		"U 5 1 2 3\nU 4 1 2 3\n", // non-monotonic
	} {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestPatternStrings(t *testing.T) {
	want := []string{"Uniform", "UniDF", "BiDF", "HotBiDF", "1Hotspot", "2Hotspot", "4Hotspot"}
	for i, p := range Patterns() {
		if p.String() != want[i] {
			t.Errorf("pattern %d = %q, want %q", i, p.String(), want[i])
		}
	}
	if len(Apps()) != 5 {
		t.Error("want 5 application traces")
	}
}
