// Package traffic generates the network workloads of the paper's Section
// 4: the seven probabilistic traces of Table 1 (uniform, unidirectional
// and bidirectional dataflow, hot bidirectional dataflow, and 1/2/4
// hotspot), synthetic application traces standing in for the
// Simics-captured PARSEC and SPECjbb2005 injection traces, multicast
// augmentation with controlled destination-set reuse, and a trace file
// format for capture and replay.
//
// Transactions, not bare messages, are generated: a core->cache
// transaction injects a 7 B request and schedules the 39 B data reply; a
// cache<->memory transaction moves 132 B lines both ways; core->core
// communication is a single 39 B data message. This reproduces the
// message-size mix of the paper's Figure 5(a).
package traffic

import (
	"container/heap"
	"fmt"

	"repro/internal/noc"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Generator produces messages cycle by cycle.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Tick emits the messages injected at cycle now.
	Tick(now int64, inject func(noc.Message))
}

// Pattern enumerates the probabilistic traces of Table 1.
type Pattern int

const (
	Uniform Pattern = iota
	UniDF
	BiDF
	HotBiDF
	Hotspot1
	Hotspot2
	Hotspot4
)

// Patterns lists all seven probabilistic traces in the paper's order.
func Patterns() []Pattern {
	return []Pattern{Uniform, UniDF, BiDF, HotBiDF, Hotspot1, Hotspot2, Hotspot4}
}

// String implements fmt.Stringer using the paper's trace names.
func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "Uniform"
	case UniDF:
		return "UniDF"
	case BiDF:
		return "BiDF"
	case HotBiDF:
		return "HotBiDF"
	case Hotspot1:
		return "1Hotspot"
	case Hotspot2:
		return "2Hotspot"
	case Hotspot4:
		return "4Hotspot"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// DefaultRate is the default transaction injection rate per component per
// cycle. It puts the 16 B baseline at a comfortable fraction of
// saturation while loading the 4 B mesh heavily, the regime the paper's
// bandwidth-reduction study operates in, and keeps the hotspot traces'
// hot banks below their local-port service rate.
const DefaultRate = 0.008

// replyDelay is the fixed service latency, in network cycles, between a
// request's arrival epoch and its reply's injection.
const replyDelay = 12

// memFraction is the probability that a transaction is a cache<->memory
// line transfer rather than inter-core/cache communication.
const memFraction = 0.08

// hotFraction is the share of traffic directed at the hotspot(s) in the
// hotspot traces. A single hot bank at this share receives ~15x its
// uniform share: its outbound replies (~1.2 narrow flits/cycle on a 4 B
// mesh) stress the few mesh links around it hard without exceeding what
// the RF-I overlay can drain -- the regime in which the paper's adaptive
// 4 B design beats even the 16 B baseline on hotspot traces.
const hotFraction = 0.10

// Prob is the probabilistic trace generator.
type Prob struct {
	mesh    *topology.Mesh
	pattern Pattern
	rate    float64
	rng     *rng.Rand

	comps    []int // all non-memory components (cores + caches)
	cores    []int
	caches   []int
	mems     []int
	groups   [][]int // dataflow groups (non-memory components by column band)
	groupOf  []int
	hotspots []int

	future futureQueue
}

var _ Generator = (*Prob)(nil)

// NewProbabilistic builds a Table 1 trace generator. rate is the
// transaction injection probability per component per cycle (DefaultRate
// if <= 0).
func NewProbabilistic(m *topology.Mesh, pat Pattern, rate float64, seed int64) *Prob {
	if rate <= 0 {
		rate = DefaultRate
	}
	p := &Prob{
		mesh:    m,
		pattern: pat,
		rate:    rate,
		rng:     rng.New(seed),
		cores:   m.Cores(),
		caches:  m.Caches(),
		mems:    m.Memories(),
	}
	p.comps = append(append([]int{}, p.cores...), p.caches...)
	// Dataflow groups: two-column bands across the die (five on the
	// paper's 10x10), a functional pipeline layout (Table 1's
	// "components clustered into groups").
	p.groups = make([][]int, (m.W+1)/2)
	p.groupOf = make([]int, m.N())
	for _, id := range p.comps {
		g := m.Coord(id).X / 2
		p.groups[g] = append(p.groups[g], id)
		p.groupOf[id] = g
	}
	// Hotspots: the paper's 1Hotspot centers on the cache bank at (7,0)
	// -- (W-3, 0) in general -- 2Hotspot adds a diagonally-opposite bank,
	// and 4Hotspot uses one bank per cache cluster (the central banks).
	switch pat {
	case Hotspot1:
		p.hotspots = []int{m.ID(m.W-3, 0)}
	case Hotspot2:
		p.hotspots = []int{m.ID(m.W-3, 0), m.ID(2, m.H-1)}
	case Hotspot4:
		for ci := 0; ci < len(m.CacheClusters()); ci++ {
			p.hotspots = append(p.hotspots, m.CentralBank(ci))
		}
	}
	return p
}

// Name implements Generator.
func (p *Prob) Name() string { return p.pattern.String() }

// Tick implements Generator.
func (p *Prob) Tick(now int64, inject func(noc.Message)) {
	p.future.drain(now, inject)
	for range p.comps {
		if p.rng.Float64() < p.rate {
			p.transaction(now, inject)
		}
	}
}

// transaction draws one transaction per the pattern and injects its
// messages (scheduling replies through the future queue).
func (p *Prob) transaction(now int64, inject func(noc.Message)) {
	if p.rng.Float64() < memFraction {
		// Cache<->memory line transfer: write-back out, fill back.
		cache := p.caches[p.rng.Intn(len(p.caches))]
		mem := p.nearestMem(cache)
		inject(noc.Message{Src: cache, Dst: mem, Class: noc.MemLine, Inject: now})
		p.future.push(event{at: now + replyDelay, msg: noc.Message{
			Src: mem, Dst: cache, Class: noc.MemLine,
		}})
		return
	}
	src, dst := p.pair()
	p.emit(now, src, dst, inject)
}

// emit issues the messages of one inter-component transaction.
func (p *Prob) emit(now int64, src, dst int, inject func(noc.Message)) {
	sk, dk := p.mesh.Kind(src), p.mesh.Kind(dst)
	switch {
	case sk == topology.Core && dk == topology.Cache:
		inject(noc.Message{Src: src, Dst: dst, Class: noc.Request, Inject: now})
		p.future.push(event{at: now + replyDelay, msg: noc.Message{
			Src: dst, Dst: src, Class: noc.Data,
		}})
	case sk == topology.Cache && dk == topology.Core:
		inject(noc.Message{Src: src, Dst: dst, Class: noc.Data, Inject: now})
	default: // core->core or cache->cache
		inject(noc.Message{Src: src, Dst: dst, Class: noc.Data, Inject: now})
	}
}

// pair draws a (src, dst) component pair per the pattern.
func (p *Prob) pair() (int, int) {
	switch p.pattern {
	case Uniform:
		return p.uniformPair()
	case UniDF:
		return p.dataflowPair(false, false)
	case BiDF:
		return p.dataflowPair(true, false)
	case HotBiDF:
		return p.dataflowPair(true, true)
	default:
		return p.hotspotPair()
	}
}

func (p *Prob) uniformPair() (int, int) {
	for {
		src := p.comps[p.rng.Intn(len(p.comps))]
		dst := p.comps[p.rng.Intn(len(p.comps))]
		if src != dst {
			return src, dst
		}
	}
}

// dataflowPair biases communication within a group and toward
// neighboring groups, one-sided for unidirectional dataflow and
// two-sided for bidirectional. With hot set, the pipeline's middle group
// sends/receives a disproportionate share (HotBiDF).
func (p *Prob) dataflowPair(bi, hot bool) (int, int) {
	const pLocal = 0.5
	g := p.rng.Intn(len(p.groups))
	if hot && p.rng.Float64() < 0.35 {
		// Unbalanced pipeline stage: the middle group is the hot stage.
		g = len(p.groups) / 2
	}
	tg := g
	if p.rng.Float64() >= pLocal {
		if bi && p.rng.Float64() < 0.5 {
			tg = g - 1
		} else {
			tg = g + 1
		}
		if tg < 0 {
			tg = g + 1
		}
		if tg >= len(p.groups) {
			tg = g - 1
		}
	}
	for {
		src := p.groups[g][p.rng.Intn(len(p.groups[g]))]
		dst := p.groups[tg][p.rng.Intn(len(p.groups[tg]))]
		if src != dst {
			return src, dst
		}
	}
}

// hotspotPair directs hotFraction of traffic at the hotspot caches.
func (p *Prob) hotspotPair() (int, int) {
	if p.rng.Float64() < hotFraction {
		hs := p.hotspots[p.rng.Intn(len(p.hotspots))]
		core := p.cores[p.rng.Intn(len(p.cores))]
		if p.rng.Float64() < 0.5 {
			return core, hs // request to the hot bank (reply comes back)
		}
		return hs, core // data pushed from the hot bank
	}
	return p.uniformPair()
}

func (p *Prob) nearestMem(from int) int {
	best, bestD := p.mems[0], 1<<30
	for _, m := range p.mems {
		if d := p.mesh.Manhattan(from, m); d < bestD {
			best, bestD = m, d
		}
	}
	return best
}

// event is a scheduled future injection (a reply).
type event struct {
	at  int64
	msg noc.Message
}

// futureQueue is a min-heap of scheduled injections.
type futureQueue []event

func (q futureQueue) Len() int            { return len(q) }
func (q futureQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q futureQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *futureQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *futureQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

func (q *futureQueue) push(e event) { heap.Push(q, e) }

func (q *futureQueue) drain(now int64, inject func(noc.Message)) {
	for q.Len() > 0 && (*q)[0].at <= now {
		e := heap.Pop(q).(event)
		e.msg.Inject = now
		inject(e.msg)
	}
}

// Pending reports scheduled-but-not-yet-injected replies; generators are
// fully drained only when this is zero.
func (p *Prob) Pending() int { return p.future.Len() }
