package traffic

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/rng"
	"repro/internal/topology"
)

// App enumerates the synthetic application traces standing in for the
// paper's Simics-captured injection traces (Section 4.2). Each profile is
// constructed from the communication characterization the paper gives:
// Figure 1 shows x264 with one network hotspot and a comparatively flat
// hop-distance profile, and bodytrack with two hotspots, heavy single-hop
// locality and almost no 14-hop traffic; fluidanimate's particle exchange
// is nearest-neighbor dominated, streamcluster is a master/worker medoid
// search (one hot center), and SPECjbb2005 is a commercial workload with
// broadly uniform warehouse-to-warehouse communication.
type App int

const (
	X264 App = iota
	Bodytrack
	Fluidanimate
	Streamcluster
	SPECjbb
)

// Apps lists the five application traces the paper evaluates.
func Apps() []App { return []App{X264, Bodytrack, Fluidanimate, Streamcluster, SPECjbb} }

// String implements fmt.Stringer.
func (a App) String() string {
	switch a {
	case X264:
		return "x264"
	case Bodytrack:
		return "bodytrack"
	case Fluidanimate:
		return "fluidanimate"
	case Streamcluster:
		return "streamcluster"
	case SPECjbb:
		return "specjbb2005"
	}
	return fmt.Sprintf("App(%d)", int(a))
}

// appProfile mixes elementary pair-selection behaviours.
type appProfile struct {
	// Mixture weights (normalized at use): probability that a
	// transaction is nearest-neighbor, hotspot-directed, group-local, or
	// uniform.
	neighbor, hotspot, group, uniform float64
	// hotspots are the cache banks acting as communication centers.
	hotspots []topology.Coord
}

func profileFor(a App, m *topology.Mesh) appProfile {
	// Hotspot coordinates generalize the paper's 10x10 positions to any
	// floorplan built by topology.New: (W-3, 0) is a bottom-right-cluster
	// bank (the paper's (7,0)), (2, H-1) a top-left-cluster bank, and the
	// remaining two sit on the inner cache rows.
	brBank := topology.Coord{X: m.W - 3, Y: 0}
	tlBank := topology.Coord{X: 2, Y: m.H - 1}
	midBank := topology.Coord{X: m.W / 2, Y: 1}
	leftBank := topology.Coord{X: 3, Y: 1}
	switch a {
	case X264:
		// One hotspot; flatter distance profile (much long-range traffic
		// between pipeline stages operating on distant frames). The hot
		// share keeps the single bank's reply stream inside its link
		// service rate on a 4 B mesh (a ~12x uniform share).
		return appProfile{neighbor: 0.15, hotspot: 0.12, group: 0.18, uniform: 0.55,
			hotspots: []topology.Coord{brBank}}
	case Bodytrack:
		// Two hotspots and strong single-hop locality; the hot share is
		// split across both banks.
		return appProfile{neighbor: 0.50, hotspot: 0.20, group: 0.12, uniform: 0.18,
			hotspots: []topology.Coord{brBank, tlBank}}
	case Fluidanimate:
		// Spatially decomposed particle simulation: overwhelmingly
		// nearest-neighbor halo exchange.
		return appProfile{neighbor: 0.70, hotspot: 0.0, group: 0.20, uniform: 0.10}
	case Streamcluster:
		// Master/worker clustering around one coordinator bank.
		return appProfile{neighbor: 0.10, hotspot: 0.12, group: 0.08, uniform: 0.70,
			hotspots: []topology.Coord{midBank}}
	case SPECjbb:
		// Commercial throughput workload: near-uniform cache traffic.
		return appProfile{neighbor: 0.10, hotspot: 0.06, group: 0.14, uniform: 0.70,
			hotspots: []topology.Coord{leftBank}}
	}
	panic("traffic: unknown app")
}

// AppTrace generates a synthetic application workload.
type AppTrace struct {
	prob    *Prob // reuse the probabilistic machinery
	app     App
	profile appProfile
	hot     []int
	rng     *rng.Rand
}

var _ Generator = (*AppTrace)(nil)

// NewAppTrace builds the synthetic injection trace for app.
func NewAppTrace(m *topology.Mesh, app App, rate float64, seed int64) *AppTrace {
	t := &AppTrace{
		prob:    NewProbabilistic(m, Uniform, rate, seed),
		app:     app,
		profile: profileFor(app, m),
		rng:     rng.New(seed ^ 0x5eed),
	}
	for _, c := range t.profile.hotspots {
		t.hot = append(t.hot, m.ID(c.X, c.Y))
	}
	return t
}

// Name implements Generator.
func (t *AppTrace) Name() string { return t.app.String() }

// Tick implements Generator.
func (t *AppTrace) Tick(now int64, inject func(noc.Message)) {
	p := t.prob
	p.future.drain(now, inject)
	for range p.comps {
		if p.rng.Float64() < p.rate {
			t.transaction(now, inject)
		}
	}
}

func (t *AppTrace) transaction(now int64, inject func(noc.Message)) {
	p := t.prob
	if p.rng.Float64() < memFraction {
		cache := p.caches[p.rng.Intn(len(p.caches))]
		mem := p.nearestMem(cache)
		inject(noc.Message{Src: cache, Dst: mem, Class: noc.MemLine, Inject: now})
		p.future.push(event{at: now + replyDelay, msg: noc.Message{
			Src: mem, Dst: cache, Class: noc.MemLine,
		}})
		return
	}
	src, dst := t.pair()
	p.emit(now, src, dst, inject)
}

// pair draws per the application's mixture profile.
func (t *AppTrace) pair() (int, int) {
	p := t.prob
	pr := t.profile
	total := pr.neighbor + pr.hotspot + pr.group + pr.uniform
	r := t.rng.Float64() * total
	switch {
	case r < pr.neighbor:
		return t.neighborPair()
	case r < pr.neighbor+pr.hotspot && len(t.hot) > 0:
		hs := t.hot[t.rng.Intn(len(t.hot))]
		core := p.cores[t.rng.Intn(len(p.cores))]
		if t.rng.Float64() < 0.5 {
			return core, hs
		}
		return hs, core
	case r < pr.neighbor+pr.hotspot+pr.group:
		g := t.rng.Intn(len(p.groups))
		for {
			a := p.groups[g][t.rng.Intn(len(p.groups[g]))]
			b := p.groups[g][t.rng.Intn(len(p.groups[g]))]
			if a != b {
				return a, b
			}
		}
	default:
		return p.uniformPair()
	}
}

// neighborPair picks a component and one of its mesh neighbors
// (single-hop traffic).
func (t *AppTrace) neighborPair() (int, int) {
	p := t.prob
	m := p.mesh
	for {
		src := p.comps[t.rng.Intn(len(p.comps))]
		c := m.Coord(src)
		cand := make([]int, 0, 4)
		for _, d := range []topology.Coord{{X: c.X + 1, Y: c.Y}, {X: c.X - 1, Y: c.Y}, {X: c.X, Y: c.Y + 1}, {X: c.X, Y: c.Y - 1}} {
			if d.X < 0 || d.X >= m.W || d.Y < 0 || d.Y >= m.H {
				continue
			}
			id := m.ID(d.X, d.Y)
			if m.Kind(id) != topology.Memory {
				cand = append(cand, id)
			}
		}
		if len(cand) > 0 {
			return src, cand[t.rng.Intn(len(cand))]
		}
	}
}

// Pending reports scheduled replies not yet injected.
func (t *AppTrace) Pending() int { return t.prob.future.Len() }

// FrequencyMatrix estimates the inter-router message-frequency matrix
// F(x,y) of a generator by dry-running it for the given number of cycles.
// This is the profile the paper assumes is "readily collected by event
// counters in our network" and feeds to application-specific shortcut
// selection. The generator is consumed; construct a fresh one (same seed)
// for the actual simulation.
func FrequencyMatrix(g Generator, n int, cycles int64) [][]int64 {
	freq := make([][]int64, n)
	for now := int64(0); now < cycles; now++ {
		g.Tick(now, func(m noc.Message) {
			if m.Multicast {
				return
			}
			if freq[m.Src] == nil {
				freq[m.Src] = make([]int64, n)
			}
			freq[m.Src][m.Dst]++
		})
	}
	return freq
}
