package traffic

import (
	"fmt"
	"math/bits"

	"repro/internal/noc"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Permutation is one of the classic NoC synthetic patterns (Dally &
// Towles): each core sends to a fixed partner determined by an address
// permutation over the 64-core index space. These are not in the paper's
// Table 1 — they are the standard kit for stressing routing functions
// (transpose famously punishes dimension-ordered routing) and are
// included as extension workloads for the adaptive-routing study.
type Permutation int

const (
	// Transpose sends core (i,j) to core (j,i) in the logical 8x8 core
	// grid — all traffic crosses the diagonal.
	Transpose Permutation = iota
	// BitComplement sends core i to core ^i (mod 64) — everything
	// crosses the center.
	BitComplement
	// BitReverse sends core i to the 6-bit reversal of i.
	BitReverse
	// Shuffle sends core i to (i << 1) mod 64 with wraparound (a perfect
	// shuffle).
	Shuffle
)

// Permutations lists the classic patterns.
func Permutations() []Permutation {
	return []Permutation{Transpose, BitComplement, BitReverse, Shuffle}
}

// String implements fmt.Stringer.
func (p Permutation) String() string {
	switch p {
	case Transpose:
		return "transpose"
	case BitComplement:
		return "bitcomplement"
	case BitReverse:
		return "bitreverse"
	case Shuffle:
		return "shuffle"
	}
	return fmt.Sprintf("Permutation(%d)", int(p))
}

// partner maps a core index through the permutation (64-core space).
func (p Permutation) partner(i int) int {
	switch p {
	case Transpose:
		// 8x8 logical core grid.
		return (i%8)*8 + i/8
	case BitComplement:
		return (^i) & 63
	case BitReverse:
		return int(bits.Reverse8(uint8(i)) >> 2) // 6-bit reversal
	case Shuffle:
		return ((i << 1) | (i >> 5)) & 63
	}
	panic("traffic: unknown permutation")
}

// Synthetic generates permutation traffic: each cycle, each core sends a
// data message to its fixed partner with probability rate.
type Synthetic struct {
	mesh  *topology.Mesh
	perm  Permutation
	rate  float64
	rng   *rng.Rand
	cores []int
}

var _ Generator = (*Synthetic)(nil)

// NewSynthetic builds a permutation-traffic generator. The mesh must
// have exactly 64 cores (the paper's CMP). rate defaults to DefaultRate.
func NewSynthetic(m *topology.Mesh, p Permutation, rate float64, seed int64) *Synthetic {
	cores := m.Cores()
	if len(cores) != 64 {
		panic(fmt.Sprintf("traffic: permutation patterns need 64 cores, mesh has %d", len(cores)))
	}
	if rate <= 0 {
		rate = DefaultRate
	}
	return &Synthetic{
		mesh: m, perm: p, rate: rate,
		rng: rng.New(seed), cores: cores,
	}
}

// Name implements Generator.
func (s *Synthetic) Name() string { return s.perm.String() }

// Tick implements Generator.
func (s *Synthetic) Tick(now int64, inject func(noc.Message)) {
	for i, router := range s.cores {
		if s.rng.Float64() >= s.rate {
			continue
		}
		dst := s.cores[s.perm.partner(i)]
		if dst == router {
			continue // fixed points send nothing
		}
		inject(noc.Message{Src: router, Dst: dst, Class: noc.Data, Inject: now})
	}
}
