package traffic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/noc"
)

// Trace file format: one record per line, '#' comments allowed.
//
//	U <cycle> <src> <dst> <class>       unicast message
//	M <cycle> <src> <dbv-hex> <class>   multicast message
//
// Class is the noc.Class integer. The format is what cmd/tracegen emits
// and what Replay consumes, letting workloads be captured once and
// re-simulated across design points exactly as the paper replays its
// Simics-captured traces across Garnet configurations.

// WriteTrace runs a generator for the given number of cycles and writes
// every injected message as a trace record. Returns the message count.
func WriteTrace(w io.Writer, g Generator, cycles int64) (int, error) {
	bw := bufio.NewWriter(w)
	count := 0
	var err error
	if _, err = fmt.Fprintf(bw, "# workload: %s cycles: %d\n", g.Name(), cycles); err != nil {
		return 0, err
	}
	for now := int64(0); now < cycles && err == nil; now++ {
		g.Tick(now, func(m noc.Message) {
			if err != nil {
				return
			}
			count++
			if m.Multicast {
				_, err = fmt.Fprintf(bw, "M %d %d %x %d\n", now, m.Src, m.DBV, int(m.Class))
			} else {
				_, err = fmt.Fprintf(bw, "U %d %d %d %d\n", now, m.Src, m.Dst, int(m.Class))
			}
		})
	}
	if err != nil {
		return count, err
	}
	return count, bw.Flush()
}

// Replay feeds a recorded trace back into the network, preserving
// injection cycles.
type Replay struct {
	name string
	msgs []noc.Message
	next int
}

var _ Generator = (*Replay)(nil)

// ReadTrace parses a trace stream into a Replay generator.
func ReadTrace(r io.Reader) (*Replay, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rp := &Replay{name: "replay"}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if i := strings.Index(line, "workload:"); i >= 0 {
				fields := strings.Fields(line[i:])
				if len(fields) >= 2 {
					rp.name = fields[1]
				}
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) != 5 {
			return nil, fmt.Errorf("traffic: line %d: want 5 fields, got %d", lineNo, len(f))
		}
		cycle, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: line %d: bad cycle: %v", lineNo, err)
		}
		src, err := strconv.Atoi(f[2])
		if err != nil {
			return nil, fmt.Errorf("traffic: line %d: bad src: %v", lineNo, err)
		}
		class, err := strconv.Atoi(f[4])
		if err != nil {
			return nil, fmt.Errorf("traffic: line %d: bad class: %v", lineNo, err)
		}
		msg := noc.Message{Src: src, Class: noc.Class(class), Inject: cycle}
		switch f[0] {
		case "U":
			dst, err := strconv.Atoi(f[3])
			if err != nil {
				return nil, fmt.Errorf("traffic: line %d: bad dst: %v", lineNo, err)
			}
			msg.Dst = dst
		case "M":
			dbv, err := strconv.ParseUint(f[3], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("traffic: line %d: bad dbv: %v", lineNo, err)
			}
			msg.Multicast = true
			msg.DBV = dbv
		default:
			return nil, fmt.Errorf("traffic: line %d: unknown record %q", lineNo, f[0])
		}
		if len(rp.msgs) > 0 && msg.Inject < rp.msgs[len(rp.msgs)-1].Inject {
			return nil, fmt.Errorf("traffic: line %d: cycles not monotonic", lineNo)
		}
		rp.msgs = append(rp.msgs, msg)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rp, nil
}

// Name implements Generator.
func (r *Replay) Name() string { return r.name }

// Tick implements Generator.
func (r *Replay) Tick(now int64, inject func(noc.Message)) {
	for r.next < len(r.msgs) && r.msgs[r.next].Inject <= now {
		m := r.msgs[r.next]
		m.Inject = now
		inject(m)
		r.next++
	}
}

// Len reports the total number of recorded messages.
func (r *Replay) Len() int { return len(r.msgs) }

// Rewind resets the replay to the beginning.
func (r *Replay) Rewind() { r.next = 0 }
