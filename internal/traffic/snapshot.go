package traffic

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/noc"
)

// This file makes every generator in the package a checkpoint.State so
// interrupted runs resume with bit-identical injection streams. A
// generator's dynamic state is its RNG position plus whatever bookkeeping
// feeds back into future draws (scheduled replies, the multicast reuse
// pool, a replay cursor); static shape (mesh, pattern, rates) is
// reconstructed by building the generator the same way before restoring.

const genSnapshotVersion = 1

func encodeMessage(e *checkpoint.Encoder, m noc.Message) {
	e.Int(m.Src)
	e.Int(m.Dst)
	e.Int(int(m.Class))
	e.I64(m.Inject)
	e.Bool(m.Multicast)
	e.U64(m.DBV)
}

func decodeMessage(d *checkpoint.Decoder) noc.Message {
	var m noc.Message
	m.Src = d.Int()
	m.Dst = d.Int()
	m.Class = noc.Class(d.Int())
	m.Inject = d.I64()
	m.Multicast = d.Bool()
	m.DBV = d.U64()
	return m
}

// genHeader starts a generator blob: version byte plus the RNG stream.
func genHeader(e *checkpoint.Encoder, r interface{ MarshalBinary() ([]byte, error) }) error {
	e.Byte(genSnapshotVersion)
	blob, err := r.MarshalBinary()
	if err != nil {
		return err
	}
	e.BytesField(blob)
	return nil
}

// decodeGenHeader checks the version byte and returns the RNG blob; the
// caller applies it last, after all other decoding has validated, so a
// failed restore leaves the generator untouched.
func decodeGenHeader(d *checkpoint.Decoder) ([]byte, error) {
	if v := d.Byte(); d.Err() == nil && v != genSnapshotVersion {
		return nil, fmt.Errorf("traffic: unsupported generator snapshot version %d (want %d)", v, genSnapshotVersion)
	}
	blob := d.BytesField()
	return blob, d.Err()
}

// CheckpointState implements checkpoint.State: the RNG stream and the
// scheduled-reply queue (serialized in heap layout, which restoring
// preserves verbatim).
func (p *Prob) CheckpointState() ([]byte, error) {
	e := checkpoint.NewEncoder()
	if err := genHeader(e, p.rng); err != nil {
		return nil, err
	}
	e.Int(len(p.future))
	for _, ev := range p.future {
		e.I64(ev.at)
		encodeMessage(e, ev.msg)
	}
	return e.Bytes()
}

// RestoreCheckpointState implements checkpoint.State. The generator must
// have been constructed with the same mesh, pattern, rate and seed as the
// one checkpointed.
func (p *Prob) RestoreCheckpointState(data []byte) error {
	d := checkpoint.NewDecoder(data)
	rngBlob, err := decodeGenHeader(d)
	if err != nil {
		return err
	}
	n := d.Length(9, "traffic: reply queue")
	future := make(futureQueue, 0, n)
	for i := 0; i < n; i++ {
		at := d.I64()
		future = append(future, event{at: at, msg: decodeMessage(d)})
	}
	if err := d.Finish(); err != nil {
		return err
	}
	if err := p.rng.UnmarshalBinary(rngBlob); err != nil {
		return err
	}
	p.future = future
	return nil
}

// CheckpointState implements checkpoint.State: the nested base
// generator's blob, this wrapper's RNG, the destination-set reuse pool
// and the sent counter. The base generator must itself be checkpointable.
func (a *MulticastAugment) CheckpointState() ([]byte, error) {
	base, ok := a.Base.(checkpoint.State)
	if !ok {
		return nil, fmt.Errorf("traffic: base generator %s does not support checkpointing", a.Base.Name())
	}
	baseBlob, err := base.CheckpointState()
	if err != nil {
		return nil, err
	}
	e := checkpoint.NewEncoder()
	if err := genHeader(e, a.rng); err != nil {
		return nil, err
	}
	e.BytesField(baseBlob)
	e.Int(a.sent)
	e.Int(len(a.pool))
	for _, p := range a.pool {
		e.Int(p.src)
		e.U64(p.dbv)
	}
	return e.Bytes()
}

// RestoreCheckpointState implements checkpoint.State.
func (a *MulticastAugment) RestoreCheckpointState(data []byte) error {
	base, ok := a.Base.(checkpoint.State)
	if !ok {
		return fmt.Errorf("traffic: base generator %s does not support checkpointing", a.Base.Name())
	}
	d := checkpoint.NewDecoder(data)
	rngBlob, err := decodeGenHeader(d)
	if err != nil {
		return err
	}
	baseBlob := d.BytesField()
	sent := d.Int()
	n := d.Length(9, "traffic: multicast pool")
	pool := make([]mcPair, 0, n)
	for i := 0; i < n; i++ {
		src := d.Int()
		pool = append(pool, mcPair{src: src, dbv: d.U64()})
	}
	if err := d.Finish(); err != nil {
		return err
	}
	if sent < 0 {
		return fmt.Errorf("traffic: negative multicast sent count %d", sent)
	}
	if err := base.RestoreCheckpointState(baseBlob); err != nil {
		return err
	}
	if err := a.rng.UnmarshalBinary(rngBlob); err != nil {
		return err
	}
	a.sent = sent
	a.pool = pool
	return nil
}

// CheckpointState implements checkpoint.State: this trace's own RNG plus
// the embedded probabilistic machinery (whose RNG drives issue decisions
// and whose queue holds scheduled replies).
func (t *AppTrace) CheckpointState() ([]byte, error) {
	probBlob, err := t.prob.CheckpointState()
	if err != nil {
		return nil, err
	}
	e := checkpoint.NewEncoder()
	if err := genHeader(e, t.rng); err != nil {
		return nil, err
	}
	e.BytesField(probBlob)
	return e.Bytes()
}

// RestoreCheckpointState implements checkpoint.State.
func (t *AppTrace) RestoreCheckpointState(data []byte) error {
	d := checkpoint.NewDecoder(data)
	rngBlob, err := decodeGenHeader(d)
	if err != nil {
		return err
	}
	probBlob := d.BytesField()
	if err := d.Finish(); err != nil {
		return err
	}
	if err := t.prob.RestoreCheckpointState(probBlob); err != nil {
		return err
	}
	return t.rng.UnmarshalBinary(rngBlob)
}

// CheckpointState implements checkpoint.State: the RNG stream is the
// only dynamic state of a permutation generator.
func (s *Synthetic) CheckpointState() ([]byte, error) {
	e := checkpoint.NewEncoder()
	if err := genHeader(e, s.rng); err != nil {
		return nil, err
	}
	return e.Bytes()
}

// RestoreCheckpointState implements checkpoint.State.
func (s *Synthetic) RestoreCheckpointState(data []byte) error {
	d := checkpoint.NewDecoder(data)
	rngBlob, err := decodeGenHeader(d)
	if err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}
	return s.rng.UnmarshalBinary(rngBlob)
}

// CheckpointState implements checkpoint.State: a replay's only dynamic
// state is its cursor.
func (r *Replay) CheckpointState() ([]byte, error) {
	e := checkpoint.NewEncoder()
	e.Byte(genSnapshotVersion)
	e.Int(r.next)
	e.Int(len(r.msgs)) // shape check: the restored trace must match
	return e.Bytes()
}

// RestoreCheckpointState implements checkpoint.State. The Replay must
// hold the same trace the checkpointed one did.
func (r *Replay) RestoreCheckpointState(data []byte) error {
	d := checkpoint.NewDecoder(data)
	if v := d.Byte(); d.Err() == nil && v != genSnapshotVersion {
		return fmt.Errorf("traffic: unsupported generator snapshot version %d (want %d)", v, genSnapshotVersion)
	}
	next := d.Int()
	total := d.Int()
	if err := d.Finish(); err != nil {
		return err
	}
	if total != len(r.msgs) {
		return fmt.Errorf("traffic: replay snapshot recorded %d messages, trace has %d", total, len(r.msgs))
	}
	if next < 0 || next > len(r.msgs) {
		return fmt.Errorf("traffic: replay cursor %d outside trace of %d messages", next, len(r.msgs))
	}
	r.next = next
	return nil
}
