package traffic

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/noc"
	"repro/internal/topology"
)

// collect ticks a generator for [from, to) and returns every message it
// injects, tagged with the cycle it appeared.
type taggedMsg struct {
	at  int64
	msg noc.Message
}

func collectTagged(g Generator, from, to int64) []taggedMsg {
	var out []taggedMsg
	for now := from; now < to; now++ {
		g.Tick(now, func(m noc.Message) {
			out = append(out, taggedMsg{at: now, msg: m})
		})
	}
	return out
}

// genCase builds a fresh generator; the factory must be deterministic so
// two calls produce identical generators.
type genCase struct {
	name string
	make func() Generator
}

func snapshotCases(t *testing.T) []genCase {
	t.Helper()
	m := topology.New10x10()
	traceText := func() string {
		var sb strings.Builder
		if _, err := WriteTrace(&sb, NewProbabilistic(m, Uniform, 0.02, 5), 400); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		return sb.String()
	}()
	return []genCase{
		{"prob-uniform", func() Generator { return NewProbabilistic(m, Uniform, 0.02, 11) }},
		{"prob-hotspot2", func() Generator { return NewProbabilistic(m, Hotspot2, 0.02, 12) }},
		{"prob-bidf", func() Generator { return NewProbabilistic(m, BiDF, 0.02, 13) }},
		{"mcast-over-prob", func() Generator {
			return NewMulticastAugment(m, NewProbabilistic(m, Uniform, 0.015, 14), 0.05, 20, 14)
		}},
		{"apptrace-bodytrack", func() Generator { return NewAppTrace(m, Bodytrack, 0.02, 15) }},
		{"synthetic-transpose", func() Generator { return NewSynthetic(m, Transpose, 0.02, 16) }},
		{"replay", func() Generator {
			rp, err := ReadTrace(strings.NewReader(traceText))
			if err != nil {
				t.Fatalf("ReadTrace: %v", err)
			}
			return rp
		}},
	}
}

// TestGeneratorSnapshotRoundTrip checks that a generator checkpointed at
// an arbitrary cycle and restored into a freshly constructed instance
// emits exactly the message stream the uninterrupted generator would
// have.
func TestGeneratorSnapshotRoundTrip(t *testing.T) {
	const cut, total = 137, 400
	for _, tc := range snapshotCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.make()
			want := collectTagged(ref, 0, total)

			live := tc.make()
			head := collectTagged(live, 0, cut)
			st, ok := live.(checkpoint.State)
			if !ok {
				t.Fatalf("%T does not implement checkpoint.State", live)
			}
			blob, err := st.CheckpointState()
			if err != nil {
				t.Fatalf("CheckpointState: %v", err)
			}

			restored := tc.make()
			if err := restored.(checkpoint.State).RestoreCheckpointState(blob); err != nil {
				t.Fatalf("RestoreCheckpointState: %v", err)
			}

			liveTail := collectTagged(live, cut, total)
			restTail := collectTagged(restored, cut, total)
			got := append(append([]taggedMsg{}, head...), restTail...)
			if !reflect.DeepEqual(liveTail, restTail) {
				t.Fatalf("restored tail diverges from checkpointed generator (%d vs %d messages)", len(restTail), len(liveTail))
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("restored stream diverges from uninterrupted run (%d vs %d messages)", len(got), len(want))
			}
		})
	}
}

// TestGeneratorSnapshotRejectsCorruption: truncated blobs must error,
// never panic, and must leave the generator able to continue unchanged.
func TestGeneratorSnapshotRejectsCorruption(t *testing.T) {
	for _, tc := range snapshotCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.make()
			collectTagged(g, 0, 100)
			blob, err := g.(checkpoint.State).CheckpointState()
			if err != nil {
				t.Fatalf("CheckpointState: %v", err)
			}
			victim := tc.make()
			for cut := 0; cut < len(blob); cut += 1 + len(blob)/17 {
				if err := victim.(checkpoint.State).RestoreCheckpointState(blob[:cut]); err == nil {
					t.Errorf("truncation at %d/%d accepted", cut, len(blob))
				}
			}
			// Bad version byte.
			bad := append([]byte{}, blob...)
			bad[0] = 0xFF
			if err := victim.(checkpoint.State).RestoreCheckpointState(bad); err == nil {
				t.Error("bad version byte accepted")
			}
		})
	}
}

// TestMulticastAugmentRequiresCheckpointableBase: wrapping a base that
// cannot checkpoint must fail cleanly at save time, not at restore.
func TestMulticastAugmentRequiresCheckpointableBase(t *testing.T) {
	m := topology.New10x10()
	a := NewMulticastAugment(m, opaqueGen{}, 0.05, 20, 1)
	if _, err := a.CheckpointState(); err == nil {
		t.Fatal("CheckpointState over non-checkpointable base succeeded")
	}
	if err := a.RestoreCheckpointState(nil); err == nil {
		t.Fatal("RestoreCheckpointState over non-checkpointable base succeeded")
	}
}

type opaqueGen struct{}

func (opaqueGen) Name() string                  { return "opaque" }
func (opaqueGen) Tick(int64, func(noc.Message)) {}
