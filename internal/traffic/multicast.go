package traffic

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/rng"
	"repro/internal/topology"
)

// MulticastAugment wraps a base generator and adds coherence multicasts
// (invalidates and fills from cache banks to sets of cores), with
// controlled destination-set reuse as in the paper's Section 5.2: with
// LocalityPct = 20, only 20% of the multicast messages use distinct
// (source, destination-set) pairs -- the high-locality configuration; 50
// is the moderate-locality one.
type MulticastAugment struct {
	Base Generator

	// Rate is the multicast injection probability per cycle.
	Rate float64

	// LocalityPct is the percentage of distinct source-to-destination-set
	// pairs among all multicast messages (20 or 50 in the paper).
	LocalityPct int

	// MinDests/MaxDests bound the (uniform) destination-set size.
	MinDests, MaxDests int

	mesh *topology.Mesh
	rng  *rng.Rand
	pool []mcPair
	sent int
}

type mcPair struct {
	src int
	dbv uint64
}

var _ Generator = (*MulticastAugment)(nil)

// NewMulticastAugment wraps base with multicast traffic.
func NewMulticastAugment(m *topology.Mesh, base Generator, rate float64, localityPct int, seed int64) *MulticastAugment {
	if localityPct <= 0 || localityPct > 100 {
		panic(fmt.Sprintf("traffic: locality %d%% out of range", localityPct))
	}
	return &MulticastAugment{
		Base: base, Rate: rate, LocalityPct: localityPct,
		MinDests: 4, MaxDests: 16,
		mesh: m, rng: rng.New(seed ^ 0x6ca57),
	}
}

// Name implements Generator.
func (a *MulticastAugment) Name() string {
	return fmt.Sprintf("%s+mc%d", a.Base.Name(), a.LocalityPct)
}

// Tick implements Generator.
func (a *MulticastAugment) Tick(now int64, inject func(noc.Message)) {
	a.Base.Tick(now, inject)
	if a.rng.Float64() >= a.Rate {
		return
	}
	pair := a.nextPair()
	class := noc.Invalidate
	if a.rng.Float64() < 0.5 {
		class = noc.Fill
	}
	inject(noc.Message{
		Src: pair.src, Class: class, Inject: now,
		Multicast: true, DBV: pair.dbv,
	})
	a.sent++
}

// nextPair maintains the reuse pool so that the fraction of distinct
// pairs among sent messages tracks LocalityPct.
func (a *MulticastAugment) nextPair() mcPair {
	distinctTarget := (a.sent+1)*a.LocalityPct/100 + 1
	if len(a.pool) < distinctTarget {
		p := a.freshPair()
		a.pool = append(a.pool, p)
		return p
	}
	return a.pool[a.rng.Intn(len(a.pool))]
}

func (a *MulticastAugment) freshPair() mcPair {
	caches := a.mesh.Caches()
	src := caches[a.rng.Intn(len(caches))]
	k := a.MinDests + a.rng.Intn(a.MaxDests-a.MinDests+1)
	var dbv uint64
	for i := 0; i < k; i++ {
		dbv |= 1 << uint(a.rng.Intn(64))
	}
	return mcPair{src: src, dbv: dbv}
}

// DistinctPairs reports how many distinct multicast pairs have been used.
func (a *MulticastAugment) DistinctPairs() int { return len(a.pool) }

// Sent reports how many multicast messages have been injected.
func (a *MulticastAugment) Sent() int { return a.sent }

// Pending proxies the base generator's reply queue if it exposes one.
func (a *MulticastAugment) Pending() int {
	if p, ok := a.Base.(interface{ Pending() int }); ok {
		return p.Pending()
	}
	return 0
}
