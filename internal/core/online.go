package core

import (
	"repro/internal/noc"
	"repro/internal/traffic"
)

// OnlineAdapter implements the runtime flavor of the paper's dynamic
// bandwidth allocation ("frequency bands can be allocated dynamically
// ... at compile time or runtime"): instead of reconfiguring once per
// application from an offline profile, it watches the network's own
// frequency counters and re-selects shortcuts every Window cycles. Each
// boundary quiesces the network (injection pauses, in-flight traffic
// drains — a context-switch point), retunes, and pays the routing-table
// update cost inside the simulation.
type OnlineAdapter struct {
	// Window is the observation interval in cycles between
	// reconfigurations. Longer windows amortize the reconfiguration cost
	// over more traffic; shorter windows track phase changes faster.
	Window int64

	// DrainBound caps quiesce time per boundary.
	DrainBound int64

	// MinMessages gates reconfiguration: a window with fewer observed
	// messages keeps the current overlay (not enough signal).
	MinMessages int64

	ctl *Controller
	net *noc.Network

	stats OnlineStats
}

// OnlineStats summarizes an adaptive run.
type OnlineStats struct {
	Windows          int64
	Reconfigurations int64
	QuiesceCycles    int64
	// SkippedQuiet counts windows that kept the overlay for lack of
	// traffic.
	SkippedQuiet int64
}

// NewOnlineAdapter wraps a controller and the network built from its
// first state. Reconfigure the controller once (e.g. with a uniform
// profile) before constructing the adapter.
func NewOnlineAdapter(ctl *Controller, net *noc.Network) *OnlineAdapter {
	return &OnlineAdapter{
		Window:      20000,
		DrainBound:  200000,
		MinMessages: 500,
		ctl:         ctl,
		net:         net,
	}
}

// Stats returns the adapter's accumulated statistics.
func (a *OnlineAdapter) Stats() OnlineStats { return a.stats }

// Network returns the adapted network (for stats inspection).
func (a *OnlineAdapter) Network() *noc.Network { return a.net }

// Run drives gen for total injection cycles, reconfiguring at each
// window boundary. The generator is ticked on the network's own clock so
// message timestamps stay consistent across the quiesce and table-update
// cycles a boundary consumes. It returns false if a quiesce failed to
// drain within DrainBound (which would indicate a deadlock).
func (a *OnlineAdapter) Run(gen traffic.Generator, total int64) bool {
	injected := int64(0)
	for injected < total {
		window := a.Window
		if total-injected < window {
			window = total - injected
		}
		for i := int64(0); i < window; i++ {
			gen.Tick(a.net.Now(), a.net.Inject)
			a.net.Step()
		}
		injected += window
		a.stats.Windows++
		if injected >= total {
			break
		}
		if !a.boundary() {
			return false
		}
	}
	return true
}

// boundary quiesces, re-selects from the observed counters, and retunes.
func (a *OnlineAdapter) boundary() bool {
	before := a.net.Now()
	if !a.net.Drain(a.DrainBound) {
		return false
	}
	a.stats.QuiesceCycles += a.net.Now() - before

	freq := a.net.ObservedFrequency()
	var observed int64
	for _, row := range freq {
		for _, f := range row {
			observed += f
		}
	}
	a.net.ResetObservedFrequency()
	if observed < a.MinMessages {
		a.stats.SkippedQuiet++
		return true
	}
	st, err := a.ctl.ReconfigureForProfile(freq)
	if err != nil {
		return false
	}
	if err := a.net.Reconfigure(st.Shortcuts); err != nil {
		return false
	}
	a.stats.Reconfigurations++
	return true
}

// PhasedWorkload switches between generators at fixed phase boundaries,
// modeling an application whose communication pattern changes (the
// scenario runtime adaptation exists for). It implements
// traffic.Generator.
type PhasedWorkload struct {
	Phases      []traffic.Generator
	PhaseCycles int64
}

// Name implements traffic.Generator.
func (p *PhasedWorkload) Name() string { return "phased" }

// Tick implements traffic.Generator.
func (p *PhasedWorkload) Tick(now int64, inject func(noc.Message)) {
	idx := (now / p.PhaseCycles) % int64(len(p.Phases))
	p.Phases[idx].Tick(now, inject)
}
