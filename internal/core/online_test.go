package core

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestOnlineAdapterReconfigures(t *testing.T) {
	m := topology.New10x10()
	ctl := NewController(m, tech.Width4B, 50)
	st, err := ctl.ReconfigureForWorkload(traffic.NewProbabilistic(m, traffic.Uniform, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	net := noc.New(st.Config)
	a := NewOnlineAdapter(ctl, net)
	a.Window = 8000

	// A phased workload: hotspot then dataflow, alternating.
	gen := &PhasedWorkload{
		Phases: []traffic.Generator{
			traffic.NewProbabilistic(m, traffic.Hotspot1, 0, 2),
			traffic.NewProbabilistic(m, traffic.UniDF, 0, 2),
		},
		PhaseCycles: 8000,
	}
	if !a.Run(gen, 32000) {
		t.Fatal("online run failed (drain or reconfigure)")
	}
	s := a.Stats()
	if s.Windows != 4 {
		t.Errorf("windows = %d, want 4", s.Windows)
	}
	if s.Reconfigurations < 2 {
		t.Errorf("reconfigurations = %d, want >= 2", s.Reconfigurations)
	}
	ns := net.Stats()
	if ns.Reconfigurations != s.Reconfigurations {
		t.Errorf("network saw %d reconfigurations, adapter %d", ns.Reconfigurations, s.Reconfigurations)
	}
	if ns.ReconfigUpdateCycles != 99*ns.Reconfigurations {
		t.Errorf("update cycles = %d, want %d", ns.ReconfigUpdateCycles, 99*ns.Reconfigurations)
	}
	if !net.Drain(200000) {
		t.Fatal("network did not drain after run")
	}
}

func TestOnlineAdapterSkipsQuietWindows(t *testing.T) {
	m := topology.New10x10()
	ctl := NewController(m, tech.Width16B, 50)
	st, err := ctl.ReconfigureForWorkload(traffic.NewProbabilistic(m, traffic.Uniform, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	net := noc.New(st.Config)
	a := NewOnlineAdapter(ctl, net)
	a.Window = 5000
	// Nearly silent workload: fewer messages than MinMessages per window.
	gen := traffic.NewProbabilistic(m, traffic.Uniform, 0.00001, 3)
	if !a.Run(gen, 15000) {
		t.Fatal("run failed")
	}
	s := a.Stats()
	if s.Reconfigurations != 0 {
		t.Errorf("quiet workload reconfigured %d times", s.Reconfigurations)
	}
	if s.SkippedQuiet == 0 {
		t.Error("expected skipped quiet windows")
	}
}

func TestNetworkReconfigureRejectsInFlight(t *testing.T) {
	m := topology.New10x10()
	n := noc.New(noc.Config{Mesh: m, Width: tech.Width16B})
	n.Inject(noc.Message{Src: m.ID(1, 1), Dst: m.ID(8, 8), Class: noc.Data, Inject: 0})
	n.Step()
	if err := n.Reconfigure(nil); err == nil {
		t.Error("reconfigure with in-flight traffic should fail")
	}
	if !n.Drain(10000) {
		t.Fatal("no drain")
	}
	if err := n.Reconfigure(nil); err != nil {
		t.Errorf("drained reconfigure failed: %v", err)
	}
}

func TestNetworkReconfigureSwapsShortcuts(t *testing.T) {
	m := topology.New10x10()
	n := noc.New(noc.Config{Mesh: m, Width: tech.Width16B})
	send := func() int64 {
		before := n.Stats().RFShortcutBits
		n.Inject(noc.Message{Src: m.ID(1, 1), Dst: m.ID(8, 8), Class: noc.Request, Inject: n.Now()})
		if !n.Drain(10000) {
			t.Fatal("no drain")
		}
		return n.Stats().RFShortcutBits - before
	}
	if bits := send(); bits != 0 {
		t.Fatalf("baseline used RF: %d bits", bits)
	}
	if err := n.Reconfigure([]shortcut.Edge{{From: m.ID(1, 1), To: m.ID(8, 8)}}); err != nil {
		t.Fatal(err)
	}
	if bits := send(); bits == 0 {
		t.Error("reconfigured shortcut unused")
	}
}
