// Package core implements the paper's primary contribution as a single
// component: the adaptive, reconfigurable RF-I network-on-chip. A
// Controller owns the RF-enabled router placement and walks the paper's
// three-step reconfiguration for each application:
//
//  1. Shortcut Selection — application-specific shortcuts are chosen
//     from the profiled communication-frequency matrix (Section 3.2.2);
//  2. Transmitter/Receiver Tuning — the frequency-band plan assigns each
//     selected shortcut (and optionally the multicast channel) a band
//     and retunes the access-point mixers (internal/rfi);
//  3. Routing Table Updates — a simulator configuration with rebuilt
//     shortest-path tables, charged the paper's parallel-update cost
//     (99 cycles on the 100-router mesh, overlapped with the context
//     switch).
//
// The Controller accumulates reconfiguration statistics (plans built,
// mixers retuned, table-update cycles) so studies can charge the
// adaptivity overhead explicitly.
package core

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/rfi"
	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Controller manages the adaptive RF-I overlay for one CMP.
type Controller struct {
	mesh      *topology.Mesh
	rfEnabled []int
	width     tech.LinkWidth

	// Multicast, when true, reserves one band for the broadcast channel
	// and reduces the shortcut budget accordingly (the paper's MC+SC).
	Multicast bool

	// ShortcutWidthBytes is the per-band width (16 B default).
	ShortcutWidthBytes int

	// ProfileCycles is the dry-run length used to collect F(x,y).
	ProfileCycles int64

	current *State
	stats   Stats
}

// State is the outcome of one reconfiguration.
type State struct {
	Shortcuts []shortcut.Edge
	Plan      *rfi.Plan
	Tuning    rfi.Tuning
	Config    noc.Config
	// UpdateCycles is the routing-table rewrite cost charged for this
	// reconfiguration.
	UpdateCycles int64
	// Retunes is how many mixers changed bands from the previous state.
	Retunes int
}

// Stats accumulates controller activity.
type Stats struct {
	Reconfigurations  int64
	TotalRetunes      int64
	TotalUpdateCycles int64
}

// NewController builds a controller for rfRouters access points (25, 50
// or 100) on a mesh of the given link width.
func NewController(m *topology.Mesh, width tech.LinkWidth, rfRouters int) *Controller {
	return &Controller{
		mesh:               m,
		rfEnabled:          m.RFPlacement(rfRouters),
		width:              width,
		ShortcutWidthBytes: tech.ShortcutWidthBytes,
		ProfileCycles:      20000,
	}
}

// RFEnabled returns the access-point placement.
func (c *Controller) RFEnabled() []int { return c.rfEnabled }

// Stats returns accumulated reconfiguration statistics.
func (c *Controller) Stats() Stats { return c.stats }

// Current returns the active state (nil before the first
// reconfiguration).
func (c *Controller) Current() *State { return c.current }

// Budget returns the shortcut budget under the aggregate-bandwidth
// constraint, accounting for the multicast band when enabled.
func (c *Controller) Budget() int {
	b := tech.RFIAggregateBytes / c.ShortcutWidthBytes
	if c.Multicast {
		b--
	}
	return b
}

// ReconfigureForProfile runs the full reconfiguration flow against a
// communication-frequency matrix and returns the new state.
func (c *Controller) ReconfigureForProfile(freq [][]int64) (*State, error) {
	edges := adaptiveSelect(c.mesh, c.rfEnabled, freq, c.Budget())
	var mcRx []int
	if c.Multicast {
		taken := map[int]bool{}
		for _, e := range edges {
			taken[e.To] = true
		}
		for _, id := range c.rfEnabled {
			if !taken[id] {
				mcRx = append(mcRx, id)
			}
		}
	}
	plan, err := rfi.NewPlan(edges, c.ShortcutWidthBytes, mcRx)
	if err != nil {
		return nil, fmt.Errorf("core: band allocation failed: %w", err)
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid band plan: %w", err)
	}
	tuning := rfi.TuningFor(plan)

	cfg := noc.Config{
		Mesh:               c.mesh,
		Width:              c.width,
		Shortcuts:          edges,
		RFEnabled:          c.rfEnabled,
		ShortcutWidthBytes: c.ShortcutWidthBytes,
	}
	if c.Multicast {
		cfg.Multicast = noc.MulticastRF
		cfg.MulticastReceivers = mcRx
	}

	st := &State{
		Shortcuts:    edges,
		Plan:         plan,
		Tuning:       tuning,
		Config:       cfg,
		UpdateCycles: rfi.ReconfigurationCycles(c.mesh.N()),
	}
	if c.current != nil {
		st.Retunes = rfi.Retunes(c.current.Tuning, tuning)
	} else {
		st.Retunes = rfi.Retunes(rfi.Tuning{TxBand: map[int]int{}, RxBand: map[int]int{}}, tuning)
	}
	c.current = st
	c.stats.Reconfigurations++
	c.stats.TotalRetunes += int64(st.Retunes)
	c.stats.TotalUpdateCycles += st.UpdateCycles
	return st, nil
}

// ReconfigureForWorkload profiles a fresh instance of the workload and
// reconfigures for it — the per-application flow of Section 3.2.
func (c *Controller) ReconfigureForWorkload(profile traffic.Generator) (*State, error) {
	freq := traffic.FrequencyMatrix(profile, c.mesh.N(), c.ProfileCycles)
	return c.ReconfigureForProfile(freq)
}

// adaptiveSelect mirrors experiments.AdaptiveShortcuts without importing
// it (experiments sits above core): both Figure 3 heuristics under the
// F*W objective, keeping the better set.
func adaptiveSelect(m *topology.Mesh, rfEnabled []int, freq [][]int64, budget int) []shortcut.Edge {
	rf := map[int]bool{}
	for _, id := range rfEnabled {
		rf[id] = true
	}
	p := shortcut.Params{
		Budget:   budget,
		Eligible: func(id int) bool { return rf[id] && m.ShortcutEligible(id) },
		Freq:     freq,
		MeshW:    m.W,
		MeshH:    m.H,
	}
	g := m.Graph()
	region := shortcut.SelectRegionBased(g, p)
	greedy := shortcut.SelectGreedyPermutation(g, p)
	if weightedCost(m, region, freq) <= weightedCost(m, greedy, freq) {
		return region
	}
	return greedy
}

func weightedCost(m *topology.Mesh, edges []shortcut.Edge, freq [][]int64) int64 {
	g := shortcut.Apply(m.Graph(), edges)
	apsp := g.AllPairs()
	var total int64
	for s, row := range freq {
		if row == nil {
			continue
		}
		for d, f := range row {
			if f == 0 || s == d {
				continue
			}
			total += f * int64(apsp[s][d])
		}
	}
	return total
}
