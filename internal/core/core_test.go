package core

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestControllerReconfigureFlow(t *testing.T) {
	m := topology.New10x10()
	c := NewController(m, tech.Width4B, 50)
	if got := c.Budget(); got != 16 {
		t.Fatalf("budget = %d, want 16", got)
	}
	profile := traffic.NewProbabilistic(m, traffic.Hotspot1, 0, 1)
	st, err := c.ReconfigureForWorkload(profile)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shortcuts) != 16 {
		t.Errorf("shortcuts = %d, want 16", len(st.Shortcuts))
	}
	if st.UpdateCycles != 99 {
		t.Errorf("update cycles = %d, want 99", st.UpdateCycles)
	}
	if st.Retunes != 32 {
		t.Errorf("initial retunes = %d, want 32 (16 Tx + 16 Rx from cold)", st.Retunes)
	}
	if err := st.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// The config must actually simulate.
	n := noc.New(st.Config)
	gen := traffic.NewProbabilistic(m, traffic.Hotspot1, 0, 1)
	for now := int64(0); now < 4000; now++ {
		gen.Tick(now, n.Inject)
		n.Step()
	}
	if !n.Drain(200000) {
		t.Fatal("controller config did not drain")
	}
	if n.Stats().RFShortcutBits == 0 {
		t.Error("adaptive shortcuts unused")
	}
}

func TestControllerTracksRetunesAcrossWorkloads(t *testing.T) {
	m := topology.New10x10()
	c := NewController(m, tech.Width16B, 50)
	if _, err := c.ReconfigureForWorkload(traffic.NewProbabilistic(m, traffic.Hotspot1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	st2, err := c.ReconfigureForWorkload(traffic.NewProbabilistic(m, traffic.UniDF, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Retunes == 0 {
		t.Error("switching workloads should retune some mixers")
	}
	s := c.Stats()
	if s.Reconfigurations != 2 {
		t.Errorf("reconfigurations = %d, want 2", s.Reconfigurations)
	}
	if s.TotalUpdateCycles != 198 {
		t.Errorf("total update cycles = %d, want 198", s.TotalUpdateCycles)
	}
	// Reconfiguring for the same profile twice changes nothing.
	freq := traffic.FrequencyMatrix(traffic.NewProbabilistic(m, traffic.UniDF, 0, 1), m.N(), c.ProfileCycles)
	a, err := c.ReconfigureForProfile(freq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.ReconfigureForProfile(freq)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Shortcuts) != len(b.Shortcuts) {
		t.Fatal("same profile selected different sizes")
	}
	if b.Retunes != 0 {
		t.Errorf("identical reconfiguration retuned %d mixers", b.Retunes)
	}
}

func TestControllerMulticastReservesBand(t *testing.T) {
	m := topology.New10x10()
	c := NewController(m, tech.Width4B, 50)
	c.Multicast = true
	if got := c.Budget(); got != 15 {
		t.Fatalf("MC+SC budget = %d, want 15", got)
	}
	st, err := c.ReconfigureForWorkload(traffic.NewProbabilistic(m, traffic.Hotspot2, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shortcuts) != 15 {
		t.Errorf("shortcuts = %d, want 15", len(st.Shortcuts))
	}
	if len(st.Plan.Bands) != 16 {
		t.Errorf("bands = %d, want 16 (15 shortcuts + multicast)", len(st.Plan.Bands))
	}
	if st.Config.Multicast != noc.MulticastRF {
		t.Error("config should enable RF multicast")
	}
	if len(st.Config.MulticastReceivers) != 35 {
		t.Errorf("multicast receivers = %d, want 35", len(st.Config.MulticastReceivers))
	}
}

func TestControllerNarrowBands(t *testing.T) {
	m := topology.New10x10()
	c := NewController(m, tech.Width4B, 100)
	c.ShortcutWidthBytes = 8
	if got := c.Budget(); got != 32 {
		t.Fatalf("8B-band budget = %d, want 32", got)
	}
	st, err := c.ReconfigureForWorkload(traffic.NewProbabilistic(m, traffic.Uniform, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shortcuts) == 0 || len(st.Shortcuts) > 32 {
		t.Errorf("shortcuts = %d, want in (0, 32]", len(st.Shortcuts))
	}
	if st.Plan.AggregateBytes() > tech.RFIAggregateBytes {
		t.Error("plan exceeds aggregate bandwidth")
	}
}
