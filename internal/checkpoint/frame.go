package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
)

// Frame layer: a minimal length-prefixed, checksummed message format for
// streaming protocols (the rfsimd worker pipe). Each frame is
//
//	u32 LE body length | body | u64 LE CRC64-ECMA(body)
//
// where body is an Encoder blob holding one kind byte and one
// length-prefixed payload. The CRC shares crcTable with the container
// format. Frames are independent: a reader can resynchronize only by
// closing the stream, which is the intended failure mode — a corrupt
// frame on a worker pipe means the worker is unusable and gets killed.

// MaxFramePayload bounds a single frame payload. Worker outcomes carry a
// JSON-encoded Result (histograms included), which stays far below this.
const MaxFramePayload = 64 << 20

// WriteFrame writes one frame. It performs a single Write call for the
// whole frame, so concurrent writers serialized by a mutex never
// interleave partial frames.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("checkpoint: frame payload %d bytes exceeds the limit %d", len(payload), MaxFramePayload)
	}
	e := NewEncoder()
	e.Byte(kind)
	e.BytesField(payload)
	body, err := e.Bytes()
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 4+len(body)+8)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint64(buf, crc64.Checksum(body, crcTable))
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame. A clean EOF before the first header byte is
// returned as io.EOF; truncation anywhere else is io.ErrUnexpectedEOF.
// Corrupt lengths and checksum mismatches yield descriptive errors and
// never a huge allocation.
func ReadFrame(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("checkpoint: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	// Body is kind byte + length prefix + payload.
	if n < 1+8 || n > MaxFramePayload+16 {
		return 0, nil, fmt.Errorf("checkpoint: implausible frame body length %d", n)
	}
	body, err := readCapped(r, int(n))
	if err != nil {
		return 0, nil, fmt.Errorf("checkpoint: reading frame body: %w", err)
	}
	var sum [8]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return 0, nil, fmt.Errorf("checkpoint: reading frame checksum: %w", err)
	}
	if got, want := binary.LittleEndian.Uint64(sum[:]), crc64.Checksum(body, crcTable); got != want {
		return 0, nil, fmt.Errorf("checkpoint: frame checksum mismatch (stream %016x, computed %016x)", got, want)
	}
	d := NewDecoder(body)
	kind = d.Byte()
	payload = d.BytesField()
	if err := d.Finish(); err != nil {
		return 0, nil, fmt.Errorf("checkpoint: malformed frame body: %w", err)
	}
	return kind, payload, nil
}
