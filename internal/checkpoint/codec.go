package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder builds a component state blob. Appends are infallible; the
// sticky error only ever comes from a caller-flagged condition via
// Fail, so most snapshot code can encode straight-line and check once.
type Encoder struct {
	buf []byte
	err error
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Fail records an error; Bytes will return it.
func (e *Encoder) Fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Bytes returns the encoded blob, or the first recorded error.
func (e *Encoder) Bytes() ([]byte, error) {
	if e.err != nil {
		return nil, e.err
	}
	return e.buf, nil
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends an int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int.
func (e *Encoder) Int(v int) { e.U64(uint64(int64(v))) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// Byte appends one byte.
func (e *Encoder) Byte(v byte) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// F64 appends a float64 by bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) BytesField(b []byte) {
	e.Int(len(b))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Int(len(s))
	e.buf = append(e.buf, s...)
}

// I64Slice appends a length-prefixed []int64.
func (e *Encoder) I64Slice(v []int64) {
	e.Int(len(v))
	for _, x := range v {
		e.I64(x)
	}
}

// IntSlice appends a length-prefixed []int.
func (e *Encoder) IntSlice(v []int) {
	e.Int(len(v))
	for _, x := range v {
		e.Int(x)
	}
}

// Decoder reads a component state blob written by Encoder. Every read
// is bounds-checked against the remaining input; after the first
// failure the decoder is sticky-errored and subsequent reads return
// zero values, so snapshot restore code can decode straight-line and
// check Err once. Decoders never panic on corrupt input.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a blob.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Err returns the first decode failure, if any.
func (d *Decoder) Err() error { return d.err }

// Fail records an error (for caller-side validation of decoded values).
func (d *Decoder) Fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Remaining reports how many bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish errors unless the blob was consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("checkpoint: %d trailing bytes after decode", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.err = fmt.Errorf("checkpoint: truncated blob reading %s (%d bytes left, need %d)", what, d.Remaining(), n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8, "uint64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int. It errors if the stored value does not fit the
// platform int (always fits on 64-bit).
func (d *Decoder) Int() int {
	v := d.I64()
	if int64(int(v)) != v {
		d.Fail(fmt.Errorf("checkpoint: int value %d overflows platform int", v))
		return 0
	}
	return int(v)
}

// U32 reads a uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4, "uint32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Byte reads one byte.
func (d *Decoder) Byte() byte {
	b := d.take(1, "byte")
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool, rejecting bytes other than 0 and 1.
func (d *Decoder) Bool() bool {
	switch d.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Fail(fmt.Errorf("checkpoint: invalid bool byte"))
		return false
	}
}

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// len reads a length prefix and validates it against at least minWidth
// bytes per element of remaining input, so corrupt lengths fail fast
// instead of driving a giant allocation.
func (d *Decoder) length(minWidth int, what string) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || (minWidth > 0 && n > d.Remaining()/minWidth) {
		d.Fail(fmt.Errorf("checkpoint: implausible %s length %d (%d bytes left)", what, n, d.Remaining()))
		return 0
	}
	return n
}

// Length reads a collection-length prefix, validating it against at
// least minWidth bytes per element of remaining input (what names the
// collection in the error). Use it before decoding variable-length
// collections element by element so corrupt counts fail fast instead of
// driving giant allocations.
func (d *Decoder) Length(minWidth int, what string) int {
	return d.length(minWidth, what)
}

// BytesField reads a length-prefixed byte slice (copied).
func (d *Decoder) BytesField() []byte {
	n := d.length(1, "bytes")
	b := d.take(n, "bytes body")
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.length(1, "string")
	b := d.take(n, "string body")
	return string(b)
}

// I64Slice reads a length-prefixed []int64.
func (d *Decoder) I64Slice() []int64 {
	n := d.length(8, "[]int64")
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	return out
}

// IntSlice reads a length-prefixed []int.
func (d *Decoder) IntSlice() []int {
	n := d.length(8, "[]int")
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}
