package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatalf("WriteFrame(%d): %v", i, err)
		}
	}
	for i, p := range payloads {
		kind, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame(%d): %v", i, err)
		}
		if kind != byte(i+1) {
			t.Errorf("frame %d: kind = %d, want %d", i, kind, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame %d: payload %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("ReadFrame at end = %v, want io.EOF", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 7, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("ReadFrame of %d/%d bytes succeeded", cut, len(full))
		}
		if err == io.EOF {
			t.Fatalf("ReadFrame of %d/%d bytes returned clean io.EOF", cut, len(full))
		}
	}
}

func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 7, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip one bit in every byte position; every variant must fail (or,
	// for the length header, fail or report truncation) — never succeed.
	for i := range full {
		mut := bytes.Clone(full)
		mut[i] ^= 0x40
		if _, _, err := ReadFrame(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestFrameImplausibleLength(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(MaxFramePayload)+64)
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]))
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("oversized frame length: err = %v, want descriptive error", err)
	}
}
