// Package checkpoint implements deterministic snapshot and restore of a
// running simulation: a versioned, checksummed binary container holding
// one named state blob per component (the network, the traffic
// generator, the fault injector, the run loop), written atomically so a
// crash mid-save never corrupts the previous checkpoint.
//
// The container knows nothing about what the blobs mean; each component
// serializes itself through the State interface and owns its blob's
// inner format and versioning (see DESIGN.md for the compatibility
// policy). A run restored from a checkpoint taken at cycle N finishes
// bit-identical to the uninterrupted run — the property
// internal/experiments' round-trip tests pin.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
)

// State is implemented by every component that participates in a
// checkpoint. CheckpointState captures the component's complete dynamic
// state; RestoreCheckpointState reinstalls it on a freshly constructed
// component with the identical static configuration. Restore must
// return an error — never panic — on blobs it cannot decode.
type State interface {
	CheckpointState() ([]byte, error)
	RestoreCheckpointState(data []byte) error
}

// Part binds a component to its section name inside the container.
type Part struct {
	Name  string
	State State
}

// Container limits, far above any real simulation but tight enough that
// a corrupt length field cannot drive allocation.
const (
	maxSections    = 1024
	maxNameLen     = 256
	maxSectionSize = 1 << 30
)

// Format: magic, format version, section count, sections (name and
// blob, both length-prefixed), then a CRC64-ECMA of everything before
// the trailer. All integers little-endian.
var magic = [8]byte{'R', 'F', 'N', 'O', 'C', 'K', 'P', 'T'}

const formatVersion = 1

var crcTable = crc64.MakeTable(crc64.ECMA)

// Section is one named state blob.
type Section struct {
	Name string
	Data []byte
}

// Write serializes sections into the container format.
func Write(w io.Writer, sections []Section) error {
	if len(sections) > maxSections {
		return fmt.Errorf("checkpoint: %d sections exceed the limit %d", len(sections), maxSections)
	}
	h := crc64.New(crcTable)
	mw := io.MultiWriter(w, h)
	if _, err := mw.Write(magic[:]); err != nil {
		return err
	}
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := mw.Write(scratch[:4])
		return err
	}
	if err := writeU32(formatVersion); err != nil {
		return err
	}
	if err := writeU32(uint32(len(sections))); err != nil {
		return err
	}
	for _, s := range sections {
		if len(s.Name) == 0 || len(s.Name) > maxNameLen {
			return fmt.Errorf("checkpoint: bad section name %q", s.Name)
		}
		if len(s.Data) > maxSectionSize {
			return fmt.Errorf("checkpoint: section %q is %d bytes, limit %d", s.Name, len(s.Data), maxSectionSize)
		}
		if err := writeU32(uint32(len(s.Name))); err != nil {
			return err
		}
		if _, err := io.WriteString(mw, s.Name); err != nil {
			return err
		}
		if err := writeU32(uint32(len(s.Data))); err != nil {
			return err
		}
		if _, err := mw.Write(s.Data); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(scratch[:], h.Sum64())
	_, err := w.Write(scratch[:])
	return err
}

// Read parses and verifies a container. Corrupt or truncated input
// yields an error, never a panic, and never a huge allocation.
func Read(r io.Reader) ([]Section, error) {
	h := crc64.New(crcTable)
	tr := io.TeeReader(r, h)
	var hdr [8]byte
	if _, err := io.ReadFull(tr, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q (not a checkpoint file)", hdr[:])
	}
	readU32 := func(what string) (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(tr, b[:]); err != nil {
			return 0, fmt.Errorf("checkpoint: reading %s: %w", what, err)
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	ver, err := readU32("version")
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("checkpoint: format version %d not supported (want %d)", ver, formatVersion)
	}
	count, err := readU32("section count")
	if err != nil {
		return nil, err
	}
	if count > maxSections {
		return nil, fmt.Errorf("checkpoint: section count %d exceeds the limit %d", count, maxSections)
	}
	sections := make([]Section, 0, count)
	for i := uint32(0); i < count; i++ {
		nameLen, err := readU32("section name length")
		if err != nil {
			return nil, err
		}
		if nameLen == 0 || nameLen > maxNameLen {
			return nil, fmt.Errorf("checkpoint: section %d: bad name length %d", i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(tr, name); err != nil {
			return nil, fmt.Errorf("checkpoint: section %d: reading name: %w", i, err)
		}
		dataLen, err := readU32("section data length")
		if err != nil {
			return nil, err
		}
		if dataLen > maxSectionSize {
			return nil, fmt.Errorf("checkpoint: section %q: data length %d exceeds the limit", name, dataLen)
		}
		data, err := readCapped(tr, int(dataLen))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: section %q: reading data: %w", name, err)
		}
		sections = append(sections, Section{Name: string(name), Data: data})
	}
	want := h.Sum64()
	var sum [8]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint64(sum[:]); got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (file %016x, computed %016x): corrupt or truncated", got, want)
	}
	return sections, nil
}

// readCapped reads exactly n bytes without trusting n for a single
// up-front allocation (a corrupt length field on a short file must fail
// cheaply, not allocate a gigabyte first).
func readCapped(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		next := min(n-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, next)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Save captures every part and writes one container.
func Save(w io.Writer, parts ...Part) error {
	sections := make([]Section, 0, len(parts))
	for _, p := range parts {
		data, err := p.State.CheckpointState()
		if err != nil {
			return fmt.Errorf("checkpoint: capturing %q: %w", p.Name, err)
		}
		sections = append(sections, Section{Name: p.Name, Data: data})
	}
	return Write(w, sections)
}

// Load parses a container and restores every part. All parts must be
// present; unknown extra sections are an error (a name mismatch means
// the checkpoint was taken by a differently-configured run).
func Load(r io.Reader, parts ...Part) error {
	sections, err := Read(r)
	if err != nil {
		return err
	}
	byName := make(map[string][]byte, len(sections))
	for _, s := range sections {
		if _, dup := byName[s.Name]; dup {
			return fmt.Errorf("checkpoint: duplicate section %q", s.Name)
		}
		byName[s.Name] = s.Data
	}
	for _, p := range parts {
		data, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("checkpoint: missing section %q", p.Name)
		}
		delete(byName, p.Name)
		if err := p.State.RestoreCheckpointState(data); err != nil {
			return fmt.Errorf("checkpoint: restoring %q: %w", p.Name, err)
		}
	}
	for name := range byName {
		return fmt.Errorf("checkpoint: unexpected section %q (checkpoint from a different run shape)", name)
	}
	return nil
}

// SaveFile writes a checkpoint atomically: the container lands in a
// temporary file that is fsynced and renamed over path, so an existing
// checkpoint is replaced only by a complete new one.
func SaveFile(path string, parts ...Part) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = Save(tmp, parts...); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile restores every part from a checkpoint file.
func LoadFile(path string, parts ...Part) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Load(f, parts...)
}
