package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// kv is a trivial State for container tests: its blob is its value.
type kv struct {
	val  []byte
	fail error
}

func (k *kv) CheckpointState() ([]byte, error) {
	if k.fail != nil {
		return nil, k.fail
	}
	return append([]byte(nil), k.val...), nil
}

func (k *kv) RestoreCheckpointState(data []byte) error {
	if k.fail != nil {
		return k.fail
	}
	k.val = append([]byte(nil), data...)
	return nil
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a := &kv{val: []byte("network state")}
	b := &kv{val: []byte{}}
	c := &kv{val: bytes.Repeat([]byte{0xAB}, 3<<20)} // multi-chunk in readCapped
	var buf bytes.Buffer
	if err := Save(&buf, Part{"a", a}, Part{"b", b}, Part{"c", c}); err != nil {
		t.Fatal(err)
	}
	ra, rb, rc := &kv{}, &kv{}, &kv{}
	if err := Load(bytes.NewReader(buf.Bytes()), Part{"a", ra}, Part{"b", rb}, Part{"c", rc}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra.val, a.val) || !bytes.Equal(rb.val, b.val) || !bytes.Equal(rc.val, c.val) {
		t.Fatal("restored values differ")
	}
}

func TestSaveFileAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.bin")
	if err := SaveFile(path, Part{"x", &kv{val: []byte("v1")}}); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second checkpoint; the old one must be replaced.
	if err := SaveFile(path, Part{"x", &kv{val: []byte("v2")}}); err != nil {
		t.Fatal(err)
	}
	got := &kv{}
	if err := LoadFile(path, Part{"x", got}); err != nil {
		t.Fatal(err)
	}
	if string(got.val) != "v2" {
		t.Fatalf("loaded %q, want v2", got.val)
	}
	// No leftover temp files.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestSaveFileFailureLeavesOldCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.bin")
	if err := SaveFile(path, Part{"x", &kv{val: []byte("good")}}); err != nil {
		t.Fatal(err)
	}
	err := SaveFile(path, Part{"x", &kv{fail: errors.New("boom")}})
	if err == nil {
		t.Fatal("save with failing part succeeded")
	}
	got := &kv{}
	if err := LoadFile(path, Part{"x", got}); err != nil {
		t.Fatal(err)
	}
	if string(got.val) != "good" {
		t.Fatalf("old checkpoint clobbered: %q", got.val)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, Part{"x", &kv{val: []byte("payload payload payload")}}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Any single-byte flip must be rejected (checksum or structure).
	for i := range good {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0x01
		if err := Load(bytes.NewReader(mut), Part{"x", &kv{}}); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
	// Every truncation must be rejected.
	for n := 0; n < len(good); n++ {
		if err := Load(bytes.NewReader(good[:n]), Part{"x", &kv{}}); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage after the checksum is ignored by Read (stream
	// framing is the caller's concern), but the container itself loads.
	if err := Load(bytes.NewReader(append(append([]byte(nil), good...), 0xFF)), Part{"x", &kv{}}); err != nil {
		t.Fatalf("trailing byte after container broke load: %v", err)
	}
}

func TestLoadSectionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, Part{"a", &kv{val: []byte("1")}}, Part{"b", &kv{val: []byte("2")}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if err := Load(bytes.NewReader(data), Part{"a", &kv{}}); err == nil {
		t.Fatal("extra section accepted")
	}
	if err := Load(bytes.NewReader(data), Part{"a", &kv{}}, Part{"b", &kv{}}, Part{"c", &kv{}}); err == nil {
		t.Fatal("missing section accepted")
	}
	if err := Load(bytes.NewReader(data), Part{"a", &kv{}}, Part{"zzz", &kv{}}); err == nil {
		t.Fatal("wrong section name accepted")
	}
}

func TestWriteRejectsBadSections(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Section{{Name: "", Data: nil}}); err == nil {
		t.Fatal("empty section name accepted")
	}
	if err := Write(&buf, []Section{{Name: string(make([]byte, maxNameLen+1))}}); err == nil {
		t.Fatal("oversized section name accepted")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.U64(0xdeadbeefcafef00d)
	e.I64(-42)
	e.Int(123456789)
	e.U32(7)
	e.Byte(0xFE)
	e.Bool(true)
	e.Bool(false)
	e.F64(3.14159)
	e.BytesField([]byte{1, 2, 3})
	e.BytesField(nil)
	e.String("hello")
	e.I64Slice([]int64{-1, 0, 1 << 40})
	e.IntSlice([]int{5, 6})
	e.IntSlice(nil)
	blob, err := e.Bytes()
	if err != nil {
		t.Fatal(err)
	}

	d := NewDecoder(blob)
	if v := d.U64(); v != 0xdeadbeefcafef00d {
		t.Fatalf("U64 = %x", v)
	}
	if v := d.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.Int(); v != 123456789 {
		t.Fatalf("Int = %d", v)
	}
	if v := d.U32(); v != 7 {
		t.Fatalf("U32 = %d", v)
	}
	if v := d.Byte(); v != 0xFE {
		t.Fatalf("Byte = %x", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if v := d.F64(); v != 3.14159 {
		t.Fatalf("F64 = %v", v)
	}
	if v := d.BytesField(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("BytesField = %v", v)
	}
	if v := d.BytesField(); len(v) != 0 {
		t.Fatalf("empty BytesField = %v", v)
	}
	if v := d.String(); v != "hello" {
		t.Fatalf("String = %q", v)
	}
	if v := d.I64Slice(); len(v) != 3 || v[0] != -1 || v[2] != 1<<40 {
		t.Fatalf("I64Slice = %v", v)
	}
	if v := d.IntSlice(); len(v) != 2 || v[1] != 6 {
		t.Fatalf("IntSlice = %v", v)
	}
	if v := d.IntSlice(); v != nil {
		t.Fatalf("nil IntSlice = %v", v)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderStickyErrors(t *testing.T) {
	d := NewDecoder([]byte{1, 2}) // too short for anything interesting
	_ = d.U64()
	if d.Err() == nil {
		t.Fatal("truncated U64 not flagged")
	}
	// Subsequent reads return zero values, no panic.
	if d.I64() != 0 || d.Int() != 0 || d.Bool() || d.String() != "" {
		t.Fatal("sticky-errored reads returned non-zero")
	}
	if d.Finish() == nil {
		t.Fatal("Finish ignored the sticky error")
	}

	// Implausible length must be rejected before allocating.
	e := NewEncoder()
	e.Int(1 << 40)
	blob, _ := e.Bytes()
	d = NewDecoder(blob)
	if d.I64Slice() != nil || d.Err() == nil {
		t.Fatal("huge slice length accepted")
	}

	// Bad bool byte.
	d = NewDecoder([]byte{7})
	_ = d.Bool()
	if d.Err() == nil {
		t.Fatal("bool byte 7 accepted")
	}

	// Trailing bytes are an error at Finish.
	d = NewDecoder([]byte{0, 0})
	_ = d.Byte()
	if d.Finish() == nil {
		t.Fatal("trailing byte accepted")
	}
}

func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	_ = Save(&buf, Part{"net", &kv{val: []byte("state blob")}}, Part{"gen", &kv{val: make([]byte, 300)}})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(magic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic and never allocate absurdly; errors are fine.
		sections, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		total := 0
		for _, s := range sections {
			total += len(s.Data)
		}
		if total > len(data) {
			t.Fatalf("sections claim %d bytes from a %d-byte input", total, len(data))
		}
	})
}
