// Package coherence implements the lightweight directory cache-coherence
// substrate behind the paper's multicast experiments. The paper's two
// multicast message types are exactly this protocol's:
//
//   - invalidates, sent from a cache bank's directory to every core
//     sharing a block when some core requests write permission, and
//   - fills, sent from a cache bank to a set of requesting cores.
//
// Cores issue reads and writes against a block space whose popularity is
// skewed (a small hot set absorbs most accesses, the way locks and shared
// data structures behave); each block's home is a cache bank chosen by
// address hash. The directory tracks a 64-bit sharer vector per block —
// the same bit-vector shape as the network's multicast DBV — and emits
// request, data, invalidate and fill messages onto the network. Because
// hot blocks keep similar sharer sets, the generated multicasts exhibit
// the destination-set reuse the paper's Section 5.2 parameterizes.
package coherence

import (
	"fmt"
	"sort"

	"repro/internal/noc"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Workload parameterizes the memory-access stream.
type Workload struct {
	// ReadRate and WriteRate are per-core per-cycle issue probabilities.
	ReadRate, WriteRate float64

	// Blocks is the shared-address-space size in cache blocks.
	Blocks int

	// HotBlocks is the size of the hot set; HotFraction of accesses go
	// to it (synchronization variables, shared counters and the like).
	HotBlocks   int
	HotFraction float64

	// CoalesceWindow is how long (cycles) a home bank collects readers of
	// a block before answering them with one multicast fill. Zero
	// disables coalescing (every read gets a unicast data reply).
	CoalesceWindow int64
}

// withDefaults fills zero fields.
func (w Workload) withDefaults() Workload {
	if w.ReadRate == 0 {
		w.ReadRate = 0.004
	}
	if w.WriteRate == 0 {
		w.WriteRate = 0.001
	}
	if w.Blocks == 0 {
		w.Blocks = 4096
	}
	if w.HotBlocks == 0 {
		w.HotBlocks = 32
	}
	if w.HotFraction == 0 {
		w.HotFraction = 0.5
	}
	if w.CoalesceWindow == 0 {
		w.CoalesceWindow = 24
	}
	return w
}

// entry is one directory entry.
type entry struct {
	sharers uint64 // bit per core
	// pendingReaders are cores awaiting a coalesced fill, with the cycle
	// the window opened.
	pendingReaders uint64
	windowStart    int64
}

// Stats counts protocol activity.
type Stats struct {
	Reads, Writes      int64
	UnicastFills       int64
	MulticastFills     int64
	Invalidates        int64 // multicast invalidate messages
	InvalidatedSharers int64 // total sharer bits cleared by invalidates
	CoalescedReaders   int64
}

// Protocol is the directory engine; it implements traffic.Generator.
type Protocol struct {
	mesh *topology.Mesh
	w    Workload
	rng  *rng.Rand

	cores []int
	dir   map[int]*entry
	stats Stats
}

// New builds a protocol instance.
func New(m *topology.Mesh, w Workload, seed int64) *Protocol {
	return &Protocol{
		mesh:  m,
		w:     w.withDefaults(),
		rng:   rng.New(seed),
		cores: m.Cores(),
		dir:   map[int]*entry{},
	}
}

// Name implements traffic.Generator.
func (p *Protocol) Name() string { return "directory-coherence" }

// Stats returns protocol counters.
func (p *Protocol) Stats() Stats { return p.stats }

// home returns the cache bank owning a block.
func (p *Protocol) home(block int) int {
	caches := p.mesh.Caches()
	return caches[block%len(caches)]
}

// block draws a block id with hot-set skew.
func (p *Protocol) block() int {
	if p.rng.Float64() < p.w.HotFraction {
		return p.rng.Intn(p.w.HotBlocks)
	}
	return p.w.HotBlocks + p.rng.Intn(p.w.Blocks-p.w.HotBlocks)
}

// Tick implements traffic.Generator: issues core memory operations and
// flushes coalescing windows.
func (p *Protocol) Tick(now int64, inject func(noc.Message)) {
	for ci := range p.cores {
		r := p.rng.Float64()
		switch {
		case r < p.w.ReadRate:
			p.read(now, ci, p.block(), inject)
		case r < p.w.ReadRate+p.w.WriteRate:
			p.write(now, ci, p.block(), inject)
		}
	}
	p.flushWindows(now, inject)
}

// read handles a core load: a request to the home bank, and either an
// immediate unicast data reply or enrollment in the coalescing window.
func (p *Protocol) read(now int64, core, block int, inject func(noc.Message)) {
	p.stats.Reads++
	home := p.home(block)
	coreRouter := p.cores[core]
	if coreRouter != home {
		inject(noc.Message{Src: coreRouter, Dst: home, Class: noc.Request, Inject: now})
	}
	e := p.entry(block)
	if p.w.CoalesceWindow > 0 {
		if e.pendingReaders == 0 {
			e.windowStart = now
		}
		e.pendingReaders |= 1 << uint(core)
		return
	}
	e.sharers |= 1 << uint(core)
	if home != coreRouter {
		inject(noc.Message{Src: home, Dst: coreRouter, Class: noc.Data, Inject: now})
		p.stats.UnicastFills++
	}
}

// write handles a core store: write permission requires invalidating all
// other sharers — the paper's multicast invalidate — then the directory
// grants ownership.
func (p *Protocol) write(now int64, core, block int, inject func(noc.Message)) {
	p.stats.Writes++
	home := p.home(block)
	coreRouter := p.cores[core]
	if coreRouter != home {
		inject(noc.Message{Src: coreRouter, Dst: home, Class: noc.Request, Inject: now})
	}
	e := p.entry(block)
	others := e.sharers &^ (1 << uint(core))
	if others != 0 {
		inject(noc.Message{
			Src: home, Class: noc.Invalidate, Inject: now,
			Multicast: true, DBV: others,
		})
		p.stats.Invalidates++
		p.stats.InvalidatedSharers += int64(noc.DBVCount(others))
	}
	e.sharers = 1 << uint(core)
	if home != coreRouter {
		inject(noc.Message{Src: home, Dst: coreRouter, Class: noc.Data, Inject: now})
	}
}

// flushWindows answers expired coalescing windows with multicast fills.
// Expired blocks are flushed in ascending block order — iterating the
// directory map directly would emit fills in a different order each run,
// and injection order changes VC allocation downstream, breaking
// replay/restore determinism.
func (p *Protocol) flushWindows(now int64, inject func(noc.Message)) {
	var due []int
	for block, e := range p.dir {
		if e.pendingReaders == 0 || now-e.windowStart < p.w.CoalesceWindow {
			continue
		}
		due = append(due, block)
	}
	sort.Ints(due)
	for _, block := range due {
		e := p.dir[block]
		home := p.home(block)
		readers := e.pendingReaders
		e.sharers |= readers
		e.pendingReaders = 0
		if n := noc.DBVCount(readers); n == 1 {
			core := noc.DBVCores(readers)[0]
			if p.cores[core] != home {
				inject(noc.Message{Src: home, Dst: p.cores[core], Class: noc.Data, Inject: now})
				p.stats.UnicastFills++
			}
		} else {
			inject(noc.Message{
				Src: home, Class: noc.Fill, Inject: now,
				Multicast: true, DBV: readers,
			})
			p.stats.MulticastFills++
			p.stats.CoalescedReaders += int64(n)
		}
	}
}

func (p *Protocol) entry(block int) *entry {
	e, ok := p.dir[block]
	if !ok {
		e = &entry{}
		p.dir[block] = e
	}
	return e
}

// Sharers exposes a block's sharer vector (tests and invariants).
func (p *Protocol) Sharers(block int) uint64 { return p.entry(block).sharers }

// Validate checks protocol invariants and returns an error describing the
// first violation: sharer vectors must only name existing cores.
func (p *Protocol) Validate() error {
	limit := uint(len(p.cores))
	for b, e := range p.dir {
		for _, c := range noc.DBVCores(e.sharers | e.pendingReaders) {
			if uint(c) >= limit {
				return fmt.Errorf("coherence: block %d names core %d beyond %d", b, c, limit)
			}
		}
	}
	return nil
}
