package coherence

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/noc"
)

// protocolSnapshotVersion tags the Protocol blob layout; unknown versions
// are refused, never migrated.
const protocolSnapshotVersion = 1

// CheckpointState implements checkpoint.State: the RNG stream, every
// directory entry (in ascending block order, so identical protocol states
// produce identical blobs), and the activity counters.
func (p *Protocol) CheckpointState() ([]byte, error) {
	e := checkpoint.NewEncoder()
	e.Byte(protocolSnapshotVersion)
	blob, err := p.rng.MarshalBinary()
	if err != nil {
		return nil, err
	}
	e.BytesField(blob)
	blocks := make([]int, 0, len(p.dir))
	for b := range p.dir {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	e.Int(len(blocks))
	for _, b := range blocks {
		ent := p.dir[b]
		e.Int(b)
		e.U64(ent.sharers)
		e.U64(ent.pendingReaders)
		e.I64(ent.windowStart)
	}
	e.I64(p.stats.Reads)
	e.I64(p.stats.Writes)
	e.I64(p.stats.UnicastFills)
	e.I64(p.stats.MulticastFills)
	e.I64(p.stats.Invalidates)
	e.I64(p.stats.InvalidatedSharers)
	e.I64(p.stats.CoalescedReaders)
	return e.Bytes()
}

// RestoreCheckpointState implements checkpoint.State. The Protocol must
// have been built with the same mesh, workload and seed as the one
// checkpointed; on error it is left unchanged.
func (p *Protocol) RestoreCheckpointState(data []byte) error {
	d := checkpoint.NewDecoder(data)
	if v := d.Byte(); d.Err() == nil && v != protocolSnapshotVersion {
		return fmt.Errorf("coherence: unsupported protocol snapshot version %d (want %d)", v, protocolSnapshotVersion)
	}
	rngBlob := d.BytesField()
	n := d.Length(25, "coherence: directory")
	dir := make(map[int]*entry, n)
	for i := 0; i < n; i++ {
		b := d.Int()
		ent := &entry{
			sharers:        d.U64(),
			pendingReaders: d.U64(),
			windowStart:    d.I64(),
		}
		if d.Err() != nil {
			break
		}
		if b < 0 || b >= p.w.Blocks {
			return fmt.Errorf("coherence: snapshot names block %d outside the %d-block space", b, p.w.Blocks)
		}
		if _, dup := dir[b]; dup {
			return fmt.Errorf("coherence: snapshot names block %d twice", b)
		}
		for _, c := range noc.DBVCores(ent.sharers | ent.pendingReaders) {
			if c >= len(p.cores) {
				return fmt.Errorf("coherence: snapshot block %d names core %d beyond %d", b, c, len(p.cores))
			}
		}
		dir[b] = ent
	}
	var st Stats
	st.Reads = d.I64()
	st.Writes = d.I64()
	st.UnicastFills = d.I64()
	st.MulticastFills = d.I64()
	st.Invalidates = d.I64()
	st.InvalidatedSharers = d.I64()
	st.CoalescedReaders = d.I64()
	if err := d.Finish(); err != nil {
		return err
	}
	if err := p.rng.UnmarshalBinary(rngBlob); err != nil {
		return err
	}
	p.dir = dir
	p.stats = st
	return nil
}
