package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/noc"
	"repro/internal/topology"
)

func drive(p *Protocol, cycles int64) []noc.Message {
	var msgs []noc.Message
	for now := int64(0); now < cycles; now++ {
		p.Tick(now, func(m noc.Message) { msgs = append(msgs, m) })
	}
	return msgs
}

func TestProtocolEmitsBothMulticastKinds(t *testing.T) {
	m := topology.New10x10()
	p := New(m, Workload{}, 1)
	msgs := drive(p, 20000)
	var inv, fill int
	for _, msg := range msgs {
		if !msg.Multicast {
			continue
		}
		switch msg.Class {
		case noc.Invalidate:
			inv++
		case noc.Fill:
			fill++
		default:
			t.Fatalf("unexpected multicast class %v", msg.Class)
		}
		if m.Kind(msg.Src) != topology.Cache {
			t.Fatalf("multicast from non-cache router %d", msg.Src)
		}
		if msg.DBV == 0 {
			t.Fatal("empty multicast DBV")
		}
	}
	if inv == 0 || fill == 0 {
		t.Errorf("want both invalidates (%d) and multicast fills (%d)", inv, fill)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := topology.New10x10()
	p := New(m, Workload{}, 2)
	p.w.CoalesceWindow = 0 // direct unicast replies for this test
	var msgs []noc.Message
	inject := func(msg noc.Message) { msgs = append(msgs, msg) }
	// Three cores read block 7, then core 5 writes it.
	for _, c := range []int{1, 2, 3} {
		p.read(0, c, 7, inject)
	}
	if got := noc.DBVCount(p.Sharers(7)); got != 3 {
		t.Fatalf("sharers = %d, want 3", got)
	}
	msgs = nil
	p.write(1, 5, 7, inject)
	var inv *noc.Message
	for i := range msgs {
		if msgs[i].Multicast {
			inv = &msgs[i]
		}
	}
	if inv == nil {
		t.Fatal("write to shared block did not multicast invalidates")
	}
	if inv.Class != noc.Invalidate {
		t.Errorf("class = %v, want invalidate", inv.Class)
	}
	if want := uint64(1<<1 | 1<<2 | 1<<3); inv.DBV != want {
		t.Errorf("DBV = %x, want %x", inv.DBV, want)
	}
	if p.Sharers(7) != 1<<5 {
		t.Errorf("after write, sharers = %x, want only core 5", p.Sharers(7))
	}
}

func TestWriterDoesNotInvalidateItself(t *testing.T) {
	m := topology.New10x10()
	p := New(m, Workload{}, 3)
	p.w.CoalesceWindow = 0
	var msgs []noc.Message
	inject := func(msg noc.Message) { msgs = append(msgs, msg) }
	p.read(0, 9, 11, inject)
	msgs = nil
	p.write(1, 9, 11, inject)
	for _, msg := range msgs {
		if msg.Multicast {
			t.Errorf("sole sharer writing should not invalidate (DBV %x)", msg.DBV)
		}
	}
}

func TestCoalescedFillCoversAllReaders(t *testing.T) {
	m := topology.New10x10()
	p := New(m, Workload{CoalesceWindow: 10}, 4)
	var msgs []noc.Message
	inject := func(msg noc.Message) { msgs = append(msgs, msg) }
	for _, c := range []int{10, 20, 30, 40} {
		p.read(0, c, 3, inject)
	}
	p.flushWindows(5, inject) // window not yet expired
	for _, msg := range msgs {
		if msg.Class == noc.Fill {
			t.Fatal("fill sent before window expired")
		}
	}
	p.flushWindows(10, inject)
	var fill *noc.Message
	for i := range msgs {
		if msgs[i].Multicast && msgs[i].Class == noc.Fill {
			fill = &msgs[i]
		}
	}
	if fill == nil {
		t.Fatal("no multicast fill after window expiry")
	}
	want := uint64(1<<10 | 1<<20 | 1<<30 | 1<<40)
	if fill.DBV != want {
		t.Errorf("fill DBV = %x, want %x", fill.DBV, want)
	}
	if p.Sharers(3)&want != want {
		t.Error("readers not recorded as sharers after fill")
	}
}

func TestSingleReaderGetsUnicast(t *testing.T) {
	m := topology.New10x10()
	p := New(m, Workload{CoalesceWindow: 5}, 5)
	var msgs []noc.Message
	inject := func(msg noc.Message) { msgs = append(msgs, msg) }
	p.read(0, 12, 99, inject)
	p.flushWindows(5, inject)
	for _, msg := range msgs {
		if msg.Multicast {
			t.Error("single reader should get a unicast fill")
		}
	}
	if p.stats.UnicastFills != 1 {
		t.Errorf("unicast fills = %d, want 1", p.stats.UnicastFills)
	}
}

func TestHotSetSkew(t *testing.T) {
	m := topology.New10x10()
	p := New(m, Workload{Blocks: 1000, HotBlocks: 10, HotFraction: 0.6}, 6)
	hot := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if p.block() < 10 {
			hot++
		}
	}
	frac := float64(hot) / draws
	if frac < 0.55 || frac > 0.65 {
		t.Errorf("hot fraction = %.3f, want ~0.6", frac)
	}
}

func TestDrivesNetworkEndToEnd(t *testing.T) {
	m := topology.New10x10()
	cfg := noc.Config{Mesh: m, Multicast: noc.MulticastRF, RFEnabled: m.RFPlacement(50)}
	n := noc.New(cfg)
	p := New(m, Workload{}, 7)
	for now := int64(0); now < 8000; now++ {
		p.Tick(now, n.Inject)
		n.Step()
	}
	if !n.Drain(200000) {
		t.Fatal("network did not drain under coherence traffic")
	}
	s := n.Stats()
	if s.MulticastMessages == 0 || s.MulticastDeliveries == 0 {
		t.Error("coherence traffic produced no multicast deliveries")
	}
	if s.PacketsEjected == 0 {
		t.Error("no unicast coherence traffic delivered")
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

// Property: after any sequence of reads and writes, a block's sharer set
// always contains the last writer and never exceeds the core count.
func TestPropertySharerInvariants(t *testing.T) {
	m := topology.New10x10()
	f := func(ops []uint16) bool {
		p := New(m, Workload{CoalesceWindow: 0}, 8)
		p.w.CoalesceWindow = 0
		lastWriter := -1
		inject := func(noc.Message) {}
		for i, op := range ops {
			core := int(op) % 64
			if op%3 == 0 {
				p.write(int64(i), core, 5, inject)
				lastWriter = core
			} else {
				p.read(int64(i), core, 5, inject)
			}
		}
		if p.Validate() != nil {
			return false
		}
		if lastWriter >= 0 && p.Sharers(5)&(1<<uint(lastWriter)) == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
