package coherence

import (
	"reflect"
	"testing"

	"repro/internal/noc"
	"repro/internal/topology"
)

type taggedMsg struct {
	at  int64
	msg noc.Message
}

func driveTagged(p *Protocol, from, to int64) []taggedMsg {
	var out []taggedMsg
	for now := from; now < to; now++ {
		p.Tick(now, func(m noc.Message) {
			out = append(out, taggedMsg{at: now, msg: m})
		})
	}
	return out
}

// TestProtocolSnapshotRoundTrip: a protocol checkpointed mid-run and
// restored into a fresh instance must emit exactly the message stream of
// the uninterrupted run — including coalesced multicast fills, whose
// flush order depends on directory state.
func TestProtocolSnapshotRoundTrip(t *testing.T) {
	const cut, total = 173, 500
	m := topology.New10x10()
	w := Workload{ReadRate: 0.01, WriteRate: 0.004, HotBlocks: 16, HotFraction: 0.6}
	build := func() *Protocol { return New(m, w, 99) }

	ref := build()
	want := driveTagged(ref, 0, total)

	live := build()
	head := driveTagged(live, 0, cut)
	blob, err := live.CheckpointState()
	if err != nil {
		t.Fatalf("CheckpointState: %v", err)
	}

	restored := build()
	if err := restored.RestoreCheckpointState(blob); err != nil {
		t.Fatalf("RestoreCheckpointState: %v", err)
	}
	if got, want := restored.Stats(), live.Stats(); got != want {
		t.Fatalf("restored stats %+v, want %+v", got, want)
	}

	got := append(head, driveTagged(restored, cut, total)...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored stream diverges from uninterrupted run (%d vs %d messages)", len(got), len(want))
	}
	if gs, ws := restored.Stats(), ref.Stats(); gs != ws {
		t.Fatalf("final stats %+v, want %+v", gs, ws)
	}
	if err := restored.Validate(); err != nil {
		t.Fatalf("restored protocol invalid: %v", err)
	}
}

// TestProtocolTickDeterministic: two identical protocols must emit
// identical streams — this is what the sorted flushWindows guarantees
// (map-order flushing would diverge between runs).
func TestProtocolTickDeterministic(t *testing.T) {
	m := topology.New10x10()
	w := Workload{ReadRate: 0.02, WriteRate: 0.005, HotBlocks: 8, HotFraction: 0.8, CoalesceWindow: 8}
	a := driveTagged(New(m, w, 7), 0, 400)
	b := driveTagged(New(m, w, 7), 0, 400)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical protocols emitted different streams")
	}
	mc := 0
	for _, tm := range a {
		if tm.msg.Multicast {
			mc++
		}
	}
	if mc == 0 {
		t.Fatal("workload produced no multicasts; determinism check is vacuous")
	}
}

// TestProtocolSnapshotRejectsCorruption: truncated or versioned-wrong
// blobs error without mutating the protocol.
func TestProtocolSnapshotRejectsCorruption(t *testing.T) {
	m := topology.New10x10()
	p := New(m, Workload{}, 3)
	driveTagged(p, 0, 200)
	blob, err := p.CheckpointState()
	if err != nil {
		t.Fatalf("CheckpointState: %v", err)
	}
	victim := New(m, Workload{}, 3)
	for cut := 0; cut < len(blob); cut += 1 + len(blob)/23 {
		if err := victim.RestoreCheckpointState(blob[:cut]); err == nil {
			t.Errorf("truncation at %d/%d accepted", cut, len(blob))
		}
	}
	bad := append([]byte{}, blob...)
	bad[0] = 0x7F
	if err := victim.RestoreCheckpointState(bad); err == nil {
		t.Error("bad version byte accepted")
	}
	if got := victim.Stats(); got != (Stats{}) {
		t.Errorf("failed restores mutated stats: %+v", got)
	}
}
