package rfclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptServer replays a scripted sequence of responses: each incoming
// request consumes the next step. A step writes whatever it wants
// (stream lines, an error status) and may abort the connection.
type scriptServer struct {
	t  *testing.T
	mu sync.Mutex
	// steps maps "<METHOD> <path>" expectations to the response.
	steps []scriptStep
	seen  []string
}

type scriptStep struct {
	wantMethod string // "" = any
	wantPath   string // substring match, "" = any
	respond    func(w http.ResponseWriter, r *http.Request)
}

func (s *scriptServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.seen = append(s.seen, r.Method+" "+r.URL.RequestURI())
	if len(s.steps) == 0 {
		s.mu.Unlock()
		s.t.Errorf("unscripted request %s %s", r.Method, r.URL)
		w.WriteHeader(http.StatusTeapot)
		return
	}
	step := s.steps[0]
	s.steps = s.steps[1:]
	s.mu.Unlock()
	if step.wantMethod != "" && step.wantMethod != r.Method {
		s.t.Errorf("request %s %s, script expected method %s", r.Method, r.URL, step.wantMethod)
	}
	if step.wantPath != "" && !strings.Contains(r.URL.RequestURI(), step.wantPath) {
		s.t.Errorf("request %s %s, script expected path containing %q", r.Method, r.URL, step.wantPath)
	}
	step.respond(w, r)
}

func (s *scriptServer) remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.steps)
}

func streamLines(lines ...string) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	}
}

// cutAfter streams lines then kills the connection without a terminal
// record (http.ErrAbortHandler resets rather than closing cleanly).
func cutAfter(lines ...string) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
}

const jobID = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"

func jobLine(points int) string {
	return fmt.Sprintf(`{"type":"job","id":%q,"points":%d}`, jobID, points)
}

func outcome(seq int64, index int, result string) string {
	s := ""
	if seq > 0 {
		s = fmt.Sprintf(`"seq":%d,`, seq)
	}
	return fmt.Sprintf(`{"type":"outcome",%s"index":%d,"id":"pt%d","fingerprint":"fp%d","attempts":1,"result":{"v":%q}}`,
		s, index, index, index, result)
}

func durableSummary(seq int64, points int) string {
	return fmt.Sprintf(`{"type":"summary","seq":%d,"points":%d,"failed":0,"cache_hit_rate":0.5,"elapsed_ms":1}`, seq, points)
}

func newTestClient(ts *httptest.Server, key string) *Client {
	return New(Config{
		BaseURL:        ts.URL,
		HTTP:           ts.Client(),
		IdempotencyKey: key,
		MaxAttempts:    4,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		StallTimeout:   2 * time.Second,
		Seed:           1,
	})
}

func TestHappyPath(t *testing.T) {
	ss := &scriptServer{t: t, steps: []scriptStep{
		{wantMethod: "POST", wantPath: "/v1/sweep", respond: streamLines(
			jobLine(2), outcome(1, 0, "a"), outcome(2, 1, "b"), durableSummary(3, 2),
		)},
	}}
	ts := httptest.NewServer(ss)
	defer ts.Close()

	col := NewCollector()
	sum, stats, err := newTestClient(ts, "k").Run(context.Background(), []byte(`{}`), col.Add)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.Seq != 3 || sum.Points != 2 {
		t.Errorf("summary %+v", sum)
	}
	if got := col.Outcomes(); len(got) != 2 || col.Duplicates() != 0 {
		t.Errorf("delivered %d outcomes, %d dups", len(got), col.Duplicates())
	}
	if stats.Posts != 1 || stats.Resumes != 0 || stats.Cursor != 3 {
		t.Errorf("stats %+v", stats)
	}
}

// TestCutThenResume: the POST stream dies after one durable frame; the
// client resumes with GET from=2 and sees each outcome exactly once.
func TestCutThenResume(t *testing.T) {
	ss := &scriptServer{t: t, steps: []scriptStep{
		{wantMethod: "POST", respond: cutAfter(jobLine(2), outcome(1, 0, "a"))},
		{wantMethod: "GET", wantPath: "/v1/jobs/" + jobID + "/results?from=2", respond: streamLines(
			jobLine(2), outcome(2, 1, "b"), durableSummary(3, 2),
		)},
	}}
	ts := httptest.NewServer(ss)
	defer ts.Close()

	col := NewCollector()
	sum, stats, err := newTestClient(ts, "k").Run(context.Background(), []byte(`{}`), col.Add)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if col.Duplicates() != 0 || len(col.Outcomes()) != 2 {
		t.Errorf("delivered %d outcomes, %d dups", len(col.Outcomes()), col.Duplicates())
	}
	if stats.Posts != 1 || stats.Resumes != 1 {
		t.Errorf("stats %+v", stats)
	}
	if sum.Points != 2 {
		t.Errorf("summary %+v", sum)
	}
}

// TestResumeReplaysDuplicates: a resume that replays frames the client
// already consumed (server restarted from the log start) suppresses
// them by seq.
func TestResumeReplaysDuplicates(t *testing.T) {
	ss := &scriptServer{t: t, steps: []scriptStep{
		{wantMethod: "POST", respond: cutAfter(jobLine(2), outcome(1, 0, "a"), outcome(2, 1, "b"))},
		// Keyed re-POST attach path: the server replays from seq 1.
		{wantMethod: "GET", respond: streamLines(
			jobLine(2), outcome(1, 0, "a"), outcome(2, 1, "b"), durableSummary(3, 2),
		)},
	}}
	ts := httptest.NewServer(ss)
	defer ts.Close()

	col := NewCollector()
	_, stats, err := newTestClient(ts, "k").Run(context.Background(), []byte(`{}`), col.Add)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(col.Outcomes()) != 2 || col.Duplicates() != 0 {
		t.Errorf("delivered %d outcomes, %d collector dups", len(col.Outcomes()), col.Duplicates())
	}
	if stats.Duplicates != 2 {
		t.Errorf("client suppressed %d duplicates, want 2", stats.Duplicates)
	}
}

// Test404FallsBackToPost: a resume hitting 404 (log collected) re-POSTs
// and index-dedup keeps delivery exactly-once across the seq reset.
func Test404FallsBackToPost(t *testing.T) {
	ss := &scriptServer{t: t, steps: []scriptStep{
		{wantMethod: "POST", respond: cutAfter(jobLine(2), outcome(1, 0, "a"))},
		{wantMethod: "GET", respond: func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":"unknown job"}`, http.StatusNotFound)
		}},
		// Fresh run: index 0 replays with a NEW seq timeline.
		{wantMethod: "POST", respond: streamLines(
			jobLine(2), outcome(1, 0, "a"), outcome(2, 1, "b"), durableSummary(3, 2),
		)},
	}}
	ts := httptest.NewServer(ss)
	defer ts.Close()

	col := NewCollector()
	_, stats, err := newTestClient(ts, "k").Run(context.Background(), []byte(`{}`), col.Add)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(col.Outcomes()) != 2 || col.Duplicates() != 0 {
		t.Errorf("delivered %d outcomes, %d dups (index dedup must survive a seq reset)",
			len(col.Outcomes()), col.Duplicates())
	}
	if stats.Posts != 2 {
		t.Errorf("stats %+v, want 2 posts", stats)
	}
}

// TestIdleForcesRepost: a resume ending in an idle line re-POSTs.
func TestIdleForcesRepost(t *testing.T) {
	ss := &scriptServer{t: t, steps: []scriptStep{
		{wantMethod: "POST", respond: cutAfter(jobLine(1), outcome(1, 0, "a"))},
		{wantMethod: "GET", respond: streamLines(jobLine(1), `{"type":"idle"}`)},
		{wantMethod: "POST", respond: streamLines(jobLine(1), durableSummary(2, 1))},
	}}
	ts := httptest.NewServer(ss)
	defer ts.Close()

	col := NewCollector()
	_, stats, err := newTestClient(ts, "k").Run(context.Background(), []byte(`{}`), col.Add)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Posts != 2 || len(col.Outcomes()) != 1 {
		t.Errorf("stats %+v, outcomes %d", stats, len(col.Outcomes()))
	}
}

func TestPermanentRefusal(t *testing.T) {
	for _, code := range []int{http.StatusBadRequest, http.StatusConflict, http.StatusRequestEntityTooLarge} {
		ss := &scriptServer{t: t, steps: []scriptStep{
			{respond: func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, `{"error":"no"}`, code)
			}},
		}}
		ts := httptest.NewServer(ss)
		_, stats, err := newTestClient(ts, "").Run(context.Background(), []byte(`{}`), nil)
		ts.Close()
		var perm *PermanentError
		if !errors.As(err, &perm) || perm.Status != code {
			t.Errorf("code %d: err %v, want PermanentError", code, err)
		}
		if stats.Posts != 1 {
			t.Errorf("code %d: %d posts, want 1 (no retry on permanent errors)", code, stats.Posts)
		}
	}
}

// TestRetryAfterHonored: a 429 with Retry-After delays the next attempt
// by at least that long.
func TestRetryAfterHonored(t *testing.T) {
	ss := &scriptServer{t: t, steps: []scriptStep{
		{respond: func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
		}},
		{respond: streamLines(jobLine(1), outcome(1, 0, "a"), durableSummary(2, 1))},
	}}
	ts := httptest.NewServer(ss)
	defer ts.Close()

	start := time.Now()
	_, stats, err := newTestClient(ts, "").Run(context.Background(), []byte(`{}`), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d := time.Since(start); d < time.Second {
		t.Errorf("completed in %v, want >= the 1s Retry-After", d)
	}
	if stats.Backoffs != 1 {
		t.Errorf("stats %+v", stats)
	}
}

// TestAttemptBudget: persistent server errors exhaust MaxAttempts.
func TestAttemptBudget(t *testing.T) {
	var hits int
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	_, _, err := newTestClient(ts, "").Run(context.Background(), []byte(`{}`), nil)
	if !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("err %v, want ErrAttemptsExhausted", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 4 {
		t.Errorf("%d attempts, want MaxAttempts=4", hits)
	}
}

// TestProgressResetsBudget: attempts that bank durable frames never
// exhaust the budget even when every stream dies.
func TestProgressResetsBudget(t *testing.T) {
	// 6 cut streams, each delivering one new frame, with MaxAttempts 4:
	// only a no-progress streak counts.
	var steps []scriptStep
	for i := 0; i < 6; i++ {
		lines := []string{jobLine(6), outcome(int64(i+1), i, "x")}
		steps = append(steps, scriptStep{respond: cutAfter(lines...)})
	}
	steps = append(steps, scriptStep{respond: streamLines(jobLine(6), durableSummary(7, 6))})
	ss := &scriptServer{t: t, steps: steps}
	ts := httptest.NewServer(ss)
	defer ts.Close()

	col := NewCollector()
	_, stats, err := newTestClient(ts, "k").Run(context.Background(), []byte(`{}`), col.Add)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(col.Outcomes()) != 6 || col.Duplicates() != 0 {
		t.Errorf("delivered %d, dups %d", len(col.Outcomes()), col.Duplicates())
	}
	if ss.remaining() != 0 {
		t.Errorf("%d scripted steps unconsumed", ss.remaining())
	}
	_ = stats
}

// TestStallWatchdog: a stream that hangs mid-body is cut by the
// watchdog and retried, not waited out.
func TestStallWatchdog(t *testing.T) {
	release := make(chan struct{})
	ss := &scriptServer{t: t, steps: []scriptStep{
		{respond: func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, jobLine(1))
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			<-release // hang until the test ends
		}},
		{respond: streamLines(jobLine(1), outcome(1, 0, "a"), durableSummary(2, 1))},
	}}
	ts := httptest.NewServer(ss)
	defer ts.Close()
	defer close(release)

	c := New(Config{
		BaseURL: ts.URL, HTTP: ts.Client(), MaxAttempts: 4,
		BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		StallTimeout: 100 * time.Millisecond, Seed: 1,
	})
	start := time.Now()
	_, _, err := c.Run(context.Background(), []byte(`{}`), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("run took %v; the watchdog should have cut the stall at ~100ms", d)
	}
}

// TestTransientSummaryFailedPoints: a clean run with failures is
// terminal with ErrPointsFailed — the failure is reported, not retried.
func TestTransientSummaryFailedPoints(t *testing.T) {
	ss := &scriptServer{t: t, steps: []scriptStep{
		{respond: streamLines(
			jobLine(2), outcome(1, 0, "a"),
			`{"type":"outcome","index":1,"id":"pt1","fingerprint":"fp1","attempts":2,"error":"sim blew up"}`,
			`{"type":"summary","points":2,"failed":1,"cache_hit_rate":0,"elapsed_ms":3}`,
		)},
	}}
	ts := httptest.NewServer(ss)
	defer ts.Close()

	col := NewCollector()
	sum, _, err := newTestClient(ts, "").Run(context.Background(), []byte(`{}`), col.Add)
	if !errors.Is(err, ErrPointsFailed) {
		t.Fatalf("err %v, want ErrPointsFailed", err)
	}
	if !strings.Contains(err.Error(), "sim blew up") {
		t.Errorf("error %v does not carry the point failure", err)
	}
	if sum.Failed != 1 {
		t.Errorf("summary %+v", sum)
	}
	if len(col.Outcomes()) != 1 {
		t.Errorf("failed outcomes must not be delivered; got %d", len(col.Outcomes()))
	}
}

func TestParseRetryAfter(t *testing.T) {
	for in, want := range map[string]time.Duration{
		"": 0, "3": 3 * time.Second, "0": 0, "-1": 0, "junk": 0,
	} {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ss := &scriptServer{t: t, steps: []scriptStep{
		{respond: func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "30")
			http.Error(w, "busy", http.StatusTooManyRequests)
		}},
	}}
	ts := httptest.NewServer(ss)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, _, err := newTestClient(ts, "").Run(ctx, []byte(`{}`), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want DeadlineExceeded (ctx must preempt Retry-After waits)", err)
	}
}
