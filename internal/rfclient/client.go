// Package rfclient is the fault-tolerant sweep client: submit a sweep
// to an rfsimd daemon and follow its NDJSON stream to completion, no
// matter how many times the connection dies in between. It is the
// client half of exactly-once delivery (the server half is the durable
// per-job result log behind GET /v1/jobs/{id}/results):
//
//   - every POST carries the caller's Idempotency-Key (when set), so a
//     retried submit attaches to the running or finished job instead of
//     recomputing it;
//   - the stream's "job" preamble names the job ID, and every durable
//     line carries its seq — the client tracks the highest seq consumed
//     and resumes a broken stream with GET ?from=cursor+1, re-reading
//     only what it missed;
//   - outcomes are delivered to the caller exactly once per point
//     index (dedup by index survives even a timeline reset, e.g. the
//     janitor collecting an idle log between attempts), bit-identical
//     to an uninterrupted run because the server streams the logged
//     frame bytes;
//   - transient failures back off exponentially with seeded jitter,
//     429/422/503 honor the server's Retry-After, and a per-line stall
//     watchdog aborts attempts that hang mid-body (a stalled proxy, a
//     half-dead NAT) so the budget is spent on reconnects, not waits;
//   - the attempt budget counts consecutive attempts WITHOUT progress:
//     as long as frames keep arriving the client keeps going, so a
//     slow flaky link does not exhaust a fixed retry count.
//
// Terminal states: a durable summary (the job sealed complete) returns
// nil; a clean run with failed points returns ErrPointsFailed with the
// summary (re-running is the caller's policy call); a permanent HTTP
// refusal (400/409/413) returns PermanentError.
package rfclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Config tunes one Run. Zero values take the noted defaults.
type Config struct {
	// BaseURL is the daemon (or chaos-proxy) root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport (default http.DefaultClient). The client
	// never sets request timeouts on it — per-attempt bounds come from
	// StallTimeout and the Run context.
	HTTP *http.Client
	// IdempotencyKey names the job across retries and restarts. Empty
	// means content-addressed identity (the server derives it; resume
	// still works via the job line's ID).
	IdempotencyKey string
	// MaxAttempts bounds consecutive attempts that make no progress
	// (no new durable frame, no new job state). 0 = 12.
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the exponential backoff between
	// failed attempts. 0 = 50ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// StallTimeout is the per-line watchdog: an attempt whose stream
	// delivers nothing for this long is cut and retried. 0 = 30s.
	StallTimeout time.Duration
	// Seed drives the backoff jitter (deterministic for tests).
	Seed int64
}

// Outcome is one delivered point result. Result holds the raw JSON of
// the experiments.Result — raw so byte-identity survives the trip.
type Outcome struct {
	Seq         int64           `json:"seq,omitempty"`
	Index       int             `json:"index"`
	ID          string          `json:"id"`
	Fingerprint string          `json:"fingerprint"`
	Cached      bool            `json:"cached"`
	Recovered   bool            `json:"recovered,omitempty"`
	Attempts    int             `json:"attempts"`
	Error       string          `json:"error,omitempty"`
	CrashDump   string          `json:"crash_dump,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

// Summary is the terminal record of a run.
type Summary struct {
	Seq          int64   `json:"seq,omitempty"`
	Points       int     `json:"points"`
	Failed       int     `json:"failed"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	ElapsedMS    int64   `json:"elapsed_ms"`
	Error        string  `json:"error,omitempty"`
}

// Stats counts what one Run survived — the storm harness asserts the
// faults actually bit (Resumes > 0) and measures delivery overhead.
type Stats struct {
	Posts      int   // POST /v1/sweep attempts
	Resumes    int   // GET ?from= attempts
	Duplicates int   // durable frames re-read and suppressed by dedup
	Backoffs   int   // waits between attempts (backoff or Retry-After)
	JobID      string
	Cursor     int64 // highest seq consumed
}

// PermanentError wraps an HTTP refusal retrying cannot fix.
type PermanentError struct {
	Status int
	Body   string
}

func (e *PermanentError) Error() string {
	return fmt.Sprintf("permanent HTTP %d: %s", e.Status, e.Body)
}

// ErrPointsFailed: the sweep ran to completion but some points failed;
// the returned Summary has the count. The job is left idle server-side
// and a re-Run would retry just the failed points through the cache.
var ErrPointsFailed = errors.New("sweep completed with failed points")

// ErrAttemptsExhausted: MaxAttempts consecutive attempts made no
// progress.
var ErrAttemptsExhausted = errors.New("attempt budget exhausted without progress")

// Client is a reusable handle: one Config, many Runs.
type Client struct {
	cfg Config
}

func New(cfg Config) *Client {
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 12
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 30 * time.Second
	}
	return &Client{cfg: cfg}
}

// run is one Run's mutable state.
type run struct {
	c         *Client
	body      []byte
	onOutcome func(Outcome)

	jobID     string
	points    int
	cursor    int64        // highest durable seq consumed
	delivered map[int]bool // point indices handed to onOutcome
	stats     Stats
	rng       *rand.Rand

	// terminal state, set by one attempt's stream
	summary  *Summary
	lastErr  error
	failures string // last failed-outcome error text, for diagnostics
}

// Run submits body (a SweepRequest JSON) and follows it to a terminal
// state, delivering each successful point outcome to onOutcome exactly
// once. It returns the terminal summary; see the package doc for the
// error contract. onOutcome runs on the streaming goroutine — keep it
// cheap or hand off.
func (c *Client) Run(ctx context.Context, body []byte, onOutcome func(Outcome)) (Summary, Stats, error) {
	r := &run{
		c: c, body: body, onOutcome: onOutcome,
		delivered: map[int]bool{},
		rng:       rand.New(rand.NewSource(c.cfg.Seed)),
	}
	noProgress := 0
	backoffN := 0
	for {
		if err := ctx.Err(); err != nil {
			return Summary{}, r.stats, err
		}
		progressed, retryAfter, err := r.attempt(ctx)
		if r.summary != nil {
			r.stats.JobID, r.stats.Cursor = r.jobID, r.cursor
			if r.summary.Failed > 0 || r.summary.Error != "" {
				terr := ErrPointsFailed
				if r.summary.Error != "" {
					terr = fmt.Errorf("%w: %s", ErrPointsFailed, r.summary.Error)
				} else if r.failures != "" {
					terr = fmt.Errorf("%w: last error: %s", ErrPointsFailed, r.failures)
				}
				return *r.summary, r.stats, terr
			}
			return *r.summary, r.stats, nil
		}
		var perm *PermanentError
		if errors.As(err, &perm) {
			r.stats.JobID, r.stats.Cursor = r.jobID, r.cursor
			return Summary{}, r.stats, err
		}
		if progressed {
			noProgress, backoffN = 0, 0
		} else {
			noProgress++
			if noProgress >= c.cfg.MaxAttempts {
				r.stats.JobID, r.stats.Cursor = r.jobID, r.cursor
				last := r.lastErr
				if last == nil {
					last = err
				}
				return Summary{}, r.stats, fmt.Errorf("%w after %d attempts (last: %v)", ErrAttemptsExhausted, noProgress, last)
			}
		}
		// Wait out the server's Retry-After when it gave one, otherwise
		// back off exponentially with jitter so a reconnecting fleet
		// does not synchronize into a thundering herd.
		wait := retryAfter
		if wait <= 0 {
			wait = c.backoff(backoffN, r.rng)
			backoffN++
		}
		r.stats.Backoffs++
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return Summary{}, r.stats, ctx.Err()
		}
	}
}

func (c *Client) backoff(n int, rng *rand.Rand) time.Duration {
	d := c.cfg.BaseBackoff << uint(n)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	// Full jitter on the upper half: [d/2, d).
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// attempt makes one HTTP round: a resume GET when the job and cursor
// are known, otherwise a POST. It reports whether the attempt made
// progress and any Retry-After the server supplied.
func (r *run) attempt(ctx context.Context) (progressed bool, retryAfter time.Duration, err error) {
	var req *http.Request
	if r.jobID != "" && r.resumable() {
		r.stats.Resumes++
		url := fmt.Sprintf("%s/v1/jobs/%s/results?from=%d", r.c.cfg.BaseURL, r.jobID, r.cursor+1)
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	} else {
		r.stats.Posts++
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, r.c.cfg.BaseURL+"/v1/sweep", bytes.NewReader(r.body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
			if r.c.cfg.IdempotencyKey != "" {
				req.Header.Set("Idempotency-Key", r.c.cfg.IdempotencyKey)
			}
		}
	}
	if err != nil {
		return false, 0, err
	}

	// The stall watchdog cancels this attempt (only) if the stream goes
	// quiet; every line read rearms it.
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	watchdog := time.AfterFunc(r.c.cfg.StallTimeout, cancel)
	defer watchdog.Stop()
	req = req.WithContext(actx)

	resp, err := r.c.cfg.HTTP.Do(req)
	if err != nil {
		r.lastErr = err
		return false, 0, err
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		return r.consume(resp.Body, watchdog)
	case http.StatusNotFound:
		// The job is gone (log collected, or the daemon lost it): fall
		// back to a fresh POST. The index-dedup map keeps delivery
		// exactly-once even though the new run's seqs restart.
		r.forgetJob()
		r.lastErr = fmt.Errorf("job expired server-side (404)")
		return false, 0, r.lastErr
	case http.StatusTooManyRequests, http.StatusUnprocessableEntity, http.StatusServiceUnavailable:
		ra := parseRetryAfter(resp.Header.Get("Retry-After"))
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		r.lastErr = fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		return false, ra, r.lastErr
	case http.StatusBadRequest, http.StatusConflict, http.StatusRequestEntityTooLarge:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, 0, &PermanentError{Status: resp.StatusCode, Body: string(bytes.TrimSpace(body))}
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		r.lastErr = fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		return false, 0, r.lastErr
	}
}

// resumable reports whether a GET can finish the job from here: only
// once a durable frame was consumed (cursor > 0) is the resume endpoint
// guaranteed to know the job. Before that, re-POSTing is both correct
// (idempotent identity) and necessary (the job may never have been
// accepted).
func (r *run) resumable() bool { return r.cursor > 0 }

func (r *run) forgetJob() {
	r.jobID = ""
	r.cursor = 0
}

// wireLine is the decode union of every stream record.
type wireLine struct {
	Type string `json:"type"`
	// job
	ID     string `json:"id"`
	Points int    `json:"points"`
	// outcome + summary (Outcome's fields are a superset; ID overlaps)
	Seq          int64           `json:"seq"`
	Index        int             `json:"index"`
	Fingerprint  string          `json:"fingerprint"`
	Cached       bool            `json:"cached"`
	Recovered    bool            `json:"recovered"`
	Attempts     int             `json:"attempts"`
	Error        string          `json:"error"`
	CrashDump    string          `json:"crash_dump"`
	Result       json.RawMessage `json:"result"`
	Failed       int             `json:"failed"`
	CacheHitRate float64         `json:"cache_hit_rate"`
	ElapsedMS    int64           `json:"elapsed_ms"`
}

// consume reads one NDJSON stream to its end: durable summary or a
// clean transient one is terminal, an idle line forces a re-POST, and
// a cut stream returns with whatever progress was banked.
func (r *run) consume(body io.Reader, watchdog *time.Timer) (progressed bool, retryAfter time.Duration, err error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	sawTerminal := false
	for sc.Scan() {
		watchdog.Reset(r.c.cfg.StallTimeout)
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec wireLine
		if uerr := json.Unmarshal(line, &rec); uerr != nil {
			// A torn line: the connection died mid-write. Everything
			// before it was consumed; resume picks up from the cursor.
			r.lastErr = fmt.Errorf("torn stream line: %v", uerr)
			return progressed, 0, r.lastErr
		}
		switch rec.Type {
		case "job":
			if r.jobID != "" && r.jobID != rec.ID {
				// The identity moved (should not happen): restart dedup'd.
				r.forgetJob()
			}
			// Learning the ID the first time is progress (resume is now
			// possible); re-reading it on every reconnect is not, or a
			// link dying right after the preamble could spin forever.
			if r.jobID == "" {
				progressed = true
			}
			r.jobID, r.points = rec.ID, rec.Points
		case "outcome":
			if rec.Seq > 0 {
				if rec.Seq <= r.cursor {
					r.stats.Duplicates++
					continue // already consumed on an earlier attempt
				}
				r.cursor = rec.Seq
				progressed = true
			}
			if rec.Error != "" {
				r.failures = rec.Error
				continue // failures are summarized, not delivered
			}
			if r.delivered[rec.Index] {
				if rec.Seq == 0 {
					r.stats.Duplicates++
				}
				continue
			}
			r.delivered[rec.Index] = true
			if r.onOutcome != nil {
				r.onOutcome(Outcome{
					Seq: rec.Seq, Index: rec.Index, ID: rec.ID,
					Fingerprint: rec.Fingerprint, Cached: rec.Cached,
					Recovered: rec.Recovered, Attempts: rec.Attempts,
					CrashDump: rec.CrashDump,
					Result:    append(json.RawMessage(nil), rec.Result...),
				})
			}
		case "summary":
			if rec.Seq > 0 {
				if rec.Seq > r.cursor {
					r.cursor = rec.Seq
				}
				// Durable: the job is sealed complete. Terminal.
				r.summary = &Summary{Seq: rec.Seq, Points: rec.Points, Failed: rec.Failed,
					CacheHitRate: rec.CacheHitRate, ElapsedMS: rec.ElapsedMS, Error: rec.Error}
				return true, 0, nil
			}
			// Transient: the run ended without sealing. A clean-but-
			// failing run is terminal (re-running is the caller's call);
			// an interrupted one (deadline, drain) retries.
			sawTerminal = true
			if rec.Error == "" {
				r.summary = &Summary{Points: rec.Points, Failed: rec.Failed,
					CacheHitRate: rec.CacheHitRate, ElapsedMS: rec.ElapsedMS}
				return true, 0, nil
			}
			// No new durable frames means no progress: a job that can
			// never finish (e.g. under a too-tight server deadline) must
			// exhaust the budget, not loop.
			r.lastErr = fmt.Errorf("sweep interrupted server-side: %s", rec.Error)
		case "idle":
			// The job is incomplete with no producer: only a fresh POST
			// restarts the run. Clearing the ID forces one; the cursor
			// and the delivered map survive, so nothing replays twice.
			sawTerminal = true
			r.lastErr = errors.New("job idle and incomplete; re-submitting")
			r.jobID = ""
		default:
			// Unknown record types are forward-compatible noise.
		}
	}
	if serr := sc.Err(); serr != nil {
		r.lastErr = serr
		return progressed, 0, serr
	}
	if !sawTerminal {
		// EOF without a terminal line: the connection was cut cleanly
		// enough to look like end-of-stream. Retry from the cursor.
		r.lastErr = errors.New("stream ended without a terminal record")
	}
	return progressed, 0, r.lastErr
}

// parseRetryAfter reads the delay-seconds form (the only one rfsimd
// emits).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// CollectOutcomes is a convenience onOutcome: gather results by index,
// concurrency-safe.
type CollectOutcomes struct {
	mu  sync.Mutex
	m   map[int]Outcome
	dup int
}

func NewCollector() *CollectOutcomes {
	return &CollectOutcomes{m: map[int]Outcome{}}
}

// Add records one outcome; a second delivery for an index is counted —
// the exactly-once violation the harness asserts never happens.
func (c *CollectOutcomes) Add(o Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[o.Index]; ok {
		c.dup++
		return
	}
	c.m[o.Index] = o
}

// Outcomes returns the collected map; Duplicates the violations.
func (c *CollectOutcomes) Outcomes() map[int]Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]Outcome, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

func (c *CollectOutcomes) Duplicates() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dup
}
