package netchaos

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// blobServer listens on loopback and answers every connection with the
// same payload after draining one line of request.
func blobServer(t *testing.T, payload []byte) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1)
				for {
					if _, err := c.Read(buf); err != nil || buf[0] == '\n' {
						break
					}
				}
				c.Write(payload)
			}(c)
		}
	}()
	return ln
}

func fetchVia(t *testing.T, addr string) ([]byte, error) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if _, err := c.Write([]byte("go\n")); err != nil {
		return nil, err
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	return io.ReadAll(c)
}

// TestFaithfulForwarding: a zero-config proxy is a wire.
func TestFaithfulForwarding(t *testing.T) {
	payload := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB
	ln := blobServer(t, payload)
	defer ln.Close()

	p, err := New(Config{Target: ln.Addr().String(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got, err := fetchVia(t, p.Addr())
	if err != nil {
		t.Fatalf("fetch through proxy: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("proxied payload differs: got %d bytes, want %d", len(got), len(payload))
	}
	st := p.Stats()
	if st.Conns != 1 || st.Cuts != 0 {
		t.Errorf("stats %+v, want 1 conn, 0 cuts", st)
	}
	if st.BytesDown != int64(len(payload)) {
		t.Errorf("BytesDown %d, want %d", st.BytesDown, len(payload))
	}
}

// TestMidStreamCut: CutProb=1 resets every connection partway; the
// client sees a short read ending in an error, never the full payload.
func TestMidStreamCut(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 1<<20)
	ln := blobServer(t, payload)
	defer ln.Close()

	p, err := New(Config{Target: ln.Addr().String(), Seed: 7, CutProb: 1, CutAfter: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	sawErr := false
	for i := 0; i < 8; i++ {
		got, err := fetchVia(t, p.Addr())
		if len(got) >= len(payload) {
			t.Fatalf("conn %d: full payload arrived through a CutProb=1 proxy", i)
		}
		if err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("no connection surfaced a reset error")
	}
	if st := p.Stats(); st.Cuts < 8 {
		t.Errorf("Cuts %d, want >= 8", st.Cuts)
	}
}

// TestCutDeterminism: the same seed cuts the same connection index at
// the same byte offset.
func TestCutDeterminism(t *testing.T) {
	p := &Proxy{cfg: Config{Seed: 42, CutProb: 1, CutAfter: 1000, StallProb: 0.5, Stall: time.Millisecond}}
	a, b := p.drawFate(3), p.drawFate(3)
	if a != b {
		t.Fatalf("fate not deterministic: %+v vs %+v", a, b)
	}
	c := p.drawFate(4)
	if a == c {
		t.Errorf("distinct connections drew identical fates %+v", a)
	}
}

// TestSetTargetRetargets: new connections follow the new target; a dead
// old target surfaces as a reset, not a hang.
func TestSetTargetRetargets(t *testing.T) {
	oldLn := blobServer(t, []byte("old"))
	newLn := blobServer(t, []byte("new"))
	defer newLn.Close()

	p, err := New(Config{Target: oldLn.Addr().String(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if got, _ := fetchVia(t, p.Addr()); string(got) != "old" {
		t.Fatalf("before retarget: %q", got)
	}

	// Kill the old server (the restart window): dials fail fast.
	oldLn.Close()
	if _, err := fetchVia(t, p.Addr()); err == nil {
		t.Fatal("fetch against a dead target succeeded")
	}

	p.SetTarget(newLn.Addr().String())
	if got, _ := fetchVia(t, p.Addr()); string(got) != "new" {
		t.Fatalf("after retarget: %q", got)
	}
	if st := p.Stats(); st.DialErrors == 0 {
		t.Error("dead-target dial not counted")
	}
}

// TestStall: a stalled connection delivers eventually, and counts.
func TestStall(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 64<<10)
	ln := blobServer(t, payload)
	defer ln.Close()

	p, err := New(Config{Target: ln.Addr().String(), Seed: 3, StallProb: 1, Stall: 50 * time.Millisecond, CutAfter: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	start := time.Now()
	got, err := fetchVia(t, p.Addr())
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("stalled fetch: err=%v, %d bytes", err, len(got))
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Error("stall did not delay the stream")
	}
	if st := p.Stats(); st.Stalls != 1 {
		t.Errorf("Stalls %d, want 1", st.Stalls)
	}
}

// TestCloseTearsDownLiveConns: Close while a stream is mid-flight
// resets it promptly (no leaked pumps waiting on a dead peer).
func TestCloseTearsDownLiveConns(t *testing.T) {
	// A server that writes slowly forever.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					if _, err := c.Write([]byte(strings.Repeat("z", 128))); err != nil {
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
			}(c)
		}
	}()

	p, err := New(Config{Target: ln.Addr().String(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 256)
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("first read: %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- p.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a live connection")
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		if _, err := c.Read(buf); err != nil {
			break // reset or EOF — either way the stream died with the proxy
		}
	}
}
