// Package netchaos is a fault-injecting TCP proxy for exercising
// clients against hostile networks: injected latency, mid-stream
// connection resets, truncated writes and stalls, all drawn
// deterministically from a seed so a failing storm replays. It sits
// between a client fleet and a server (the rfsimd resume storm wires it
// in front of the daemon) and the faults it injects are exactly the
// ones a flaky WAN delivers: a response cut at a random byte offset, a
// long stall mid-body, a write that arrives half-finished before the
// peer vanishes.
//
// The proxy is deliberately dumb about protocols — it forwards bytes —
// so the client under test cannot tell a chaos fault from a real
// network failure. SetTarget retargets new connections at runtime,
// which is how a harness emulates a server restart behind a stable
// address.
package netchaos

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes one proxy instance. Probabilities are per-connection
// and independent; a connection can draw latency, a stall and a cut at
// once. The zero value forwards faithfully (no faults).
type Config struct {
	// Target is the upstream address new connections dial. SetTarget
	// replaces it at runtime.
	Target string
	// Seed makes the fault assignment deterministic per accepted
	// connection: connection n draws its fate from Seed+n.
	Seed int64
	// Latency is added once before the first downstream byte and then
	// every LatencyEvery chunks (0 = none).
	Latency time.Duration
	// CutProb is the probability a connection is reset (RST, not FIN)
	// mid-stream, after a random number of downstream bytes drawn
	// uniformly from [0, 2*CutAfter).
	CutProb  float64
	CutAfter int64
	// StallProb is the probability the downstream pump freezes once for
	// Stall at a random byte offset in [0, 2*CutAfter) before resuming.
	StallProb float64
	Stall     time.Duration
	// TruncProb is the probability the cut (when drawn) truncates the
	// in-flight chunk to half before resetting — a torn write, the
	// nastiest shape a resuming client has to survive.
	TruncProb float64
}

// Stats counts what the proxy actually did — a harness asserts faults
// really fired (Cuts > 0) so a green run cannot mean "the proxy was
// configured out of the data path".
type Stats struct {
	Conns      int64 `json:"conns"`
	Cuts       int64 `json:"cuts"`
	Truncs     int64 `json:"truncs"`
	Stalls     int64 `json:"stalls"`
	DialErrors int64 `json:"dial_errors"`
	BytesDown  int64 `json:"bytes_down"`
	BytesUp    int64 `json:"bytes_up"`
}

// Proxy is one listening fault injector. Close stops the listener and
// tears down every live connection.
type Proxy struct {
	cfg    Config
	ln     net.Listener
	target atomic.Value // string

	conns  atomic.Int64
	cuts   atomic.Int64
	truncs atomic.Int64
	stalls atomic.Int64
	dialEr atomic.Int64
	down   atomic.Int64
	up     atomic.Int64

	mu     sync.Mutex
	live   map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New starts a proxy on a fresh loopback port.
func New(cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netchaos: %w", err)
	}
	p := &Proxy{cfg: cfg, ln: ln, live: map[net.Conn]struct{}{}}
	p.target.Store(cfg.Target)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial instead of the real server.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetTarget retargets connections accepted from now on — the harness's
// "same address, new server" restart emulation. Live connections keep
// their old upstream (and die with it, as they would in production).
func (p *Proxy) SetTarget(addr string) { p.target.Store(addr) }

// Stats snapshots the fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:      p.conns.Load(),
		Cuts:       p.cuts.Load(),
		Truncs:     p.truncs.Load(),
		Stalls:     p.stalls.Load(),
		DialErrors: p.dialEr.Load(),
		BytesDown:  p.down.Load(),
		BytesUp:    p.up.Load(),
	}
}

// Close stops accepting, resets every live connection and waits for
// the pumps to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.live {
		rst(c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		n := p.conns.Add(1)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			rst(c)
			return
		}
		p.live[c] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serve(c, n-1)
	}
}

// fate is one connection's pre-drawn fault assignment.
type fate struct {
	latency time.Duration
	cutAt   int64 // downstream byte offset of the reset; -1 = never
	trunc   bool  // the cut tears the chunk in half first
	stallAt int64 // downstream byte offset of the stall; -1 = never
	stall   time.Duration
}

func (p *Proxy) drawFate(conn int64) fate {
	rng := rand.New(rand.NewSource(p.cfg.Seed + conn))
	f := fate{latency: p.cfg.Latency, cutAt: -1, stallAt: -1}
	span := p.cfg.CutAfter
	if span <= 0 {
		span = 4096
	}
	if rng.Float64() < p.cfg.CutProb {
		f.cutAt = rng.Int63n(2 * span)
		f.trunc = rng.Float64() < p.cfg.TruncProb
	}
	if rng.Float64() < p.cfg.StallProb {
		f.stallAt = rng.Int63n(2 * span)
		f.stall = p.cfg.Stall
	}
	return f
}

func (p *Proxy) serve(client net.Conn, conn int64) {
	defer p.wg.Done()
	defer p.forget(client)
	f := p.drawFate(conn)

	upstream, err := net.DialTimeout("tcp", p.target.Load().(string), 5*time.Second)
	if err != nil {
		// The server is down (mid-restart in a storm): the client sees
		// a refused connection, exactly what production delivers.
		p.dialEr.Add(1)
		rst(client)
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		rst(upstream)
		rst(client)
		return
	}
	p.live[upstream] = struct{}{}
	p.mu.Unlock()
	defer p.forget(upstream)

	// Upstream pump (client->server): faithful. The faults live on the
	// response path, where the expensive bytes are.
	done := make(chan struct{}, 2)
	go func() {
		n, _ := io.Copy(upstream, client)
		p.up.Add(n)
		// Half-close toward the server so a finished request body still
		// lets the response flow.
		if tc, ok := upstream.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()

	// Downstream pump (server->client): latency, stall, cut, truncation.
	go func() {
		defer func() { done <- struct{}{} }()
		if f.latency > 0 {
			time.Sleep(f.latency)
		}
		var sent int64
		stalled := false
		buf := make([]byte, 4096)
		for {
			n, rerr := upstream.Read(buf)
			if n > 0 {
				chunk := buf[:n]
				if !stalled && f.stallAt >= 0 && sent+int64(n) > f.stallAt {
					stalled = true
					p.stalls.Add(1)
					time.Sleep(f.stall)
				}
				if f.cutAt >= 0 && sent+int64(n) > f.cutAt {
					// The fault: deliver the prefix (or half of it, torn),
					// then reset both sides.
					keep := f.cutAt - sent
					if f.trunc {
						keep /= 2
						p.truncs.Add(1)
					}
					if keep > 0 {
						m, _ := client.Write(chunk[:keep])
						p.down.Add(int64(m))
					}
					p.cuts.Add(1)
					rst(client)
					rst(upstream)
					return
				}
				m, werr := client.Write(chunk)
				p.down.Add(int64(m))
				sent += int64(m)
				if werr != nil {
					rst(upstream)
					return
				}
			}
			if rerr != nil {
				if tc, ok := client.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
				return
			}
		}
	}()
	<-done
	<-done
	client.Close()
	upstream.Close()
}

func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.live, c)
	p.mu.Unlock()
}

// rst closes the connection with an RST instead of a graceful FIN:
// SetLinger(0) discards unsent data and makes the peer's next read
// fail with a reset — a vanished peer, not a polite end-of-stream.
func rst(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}
