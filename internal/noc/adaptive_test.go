package noc

import (
	"math/rand"
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// TestAdaptiveRoutingStaysMinimal: adaptive candidates are restricted to
// minimal ports, so packet hop counts must equal shortest-path distances
// even when every hop picks a different port.
func TestAdaptiveRoutingStaysMinimal(t *testing.T) {
	m := topology.New10x10()
	cfg := Config{Mesh: m, Width: tech.Width16B, AdaptiveRouting: true}
	n := New(cfg)
	rng := rand.New(rand.NewSource(5))
	type pair struct{ src, dst int }
	var pairs []pair
	for i := 0; i < 200; i++ {
		src, dst := rng.Intn(100), rng.Intn(100)
		if src == dst {
			continue
		}
		pairs = append(pairs, pair{src, dst})
		n.Inject(Message{Src: src, Dst: dst, Class: Request, Inject: n.Now()})
		n.Run(3)
	}
	if !n.Drain(100000) {
		t.Fatal("no drain")
	}
	want := int64(0)
	for _, p := range pairs {
		want += int64(m.Manhattan(p.src, p.dst))
	}
	if got := n.Stats().HopSum; got != want {
		t.Errorf("hop sum = %d, want %d (adaptive routing must stay minimal)", got, want)
	}
}

// TestAdaptiveRoutingMinimalWithShortcuts: with shortcuts, hop counts
// must match augmented-graph distances.
func TestAdaptiveRoutingMinimalWithShortcuts(t *testing.T) {
	m := topology.New10x10()
	edges := []shortcut.Edge{{From: m.ID(1, 1), To: m.ID(8, 8)}, {From: m.ID(8, 1), To: m.ID(1, 8)}}
	cfg := Config{Mesh: m, Width: tech.Width16B, Shortcuts: edges, AdaptiveRouting: true}
	n := New(cfg)
	g := m.Graph()
	for _, e := range edges {
		g.AddEdge(e.From, e.To, 1)
	}
	apsp := g.AllPairs()
	src, dst := m.ID(0, 1), m.ID(9, 8)
	n.Inject(Message{Src: src, Dst: dst, Class: Data, Inject: 0})
	if !n.Drain(10000) {
		t.Fatal("no drain")
	}
	if got := n.Stats().HopSum; got != int64(apsp[src][dst]) {
		t.Errorf("hops = %d, want %d", got, apsp[src][dst])
	}
}

// TestAdaptiveRoutingRelievesContention: convergecast onto one interior
// router. X-first routing funnels all distant traffic through the
// destination's north and south inbound links; adaptive routing also
// exploits the east and west approaches and must cut latency once those
// two links saturate.
func TestAdaptiveRoutingRelievesContention(t *testing.T) {
	m := topology.New10x10()
	dst := m.ID(5, 5)
	run := func(adaptive bool) float64 {
		n := New(Config{Mesh: m, Width: tech.Width4B, AdaptiveRouting: adaptive})
		rng := rand.New(rand.NewSource(9))
		for cyc := 0; cyc < 15000; cyc++ {
			if rng.Float64() < 0.30 {
				src := rng.Intn(100)
				if src == dst {
					continue
				}
				n.Inject(Message{Src: src, Dst: dst, Class: Data, Inject: n.Now()})
			}
			n.Step()
		}
		if !n.Drain(2000000) {
			t.Fatal("no drain")
		}
		st := n.Stats()
		return st.AvgPacketLatency()
	}
	det, ad := run(false), run(true)
	if ad >= det {
		t.Errorf("adaptive latency (%.1f) should beat deterministic (%.1f) under contention", ad, det)
	}
}

// TestAdaptiveRoutingDeadlockFree: adaptive routing over a shortcut
// topology at heavy load must still drain (escape VCs are the Duato
// escape class).
func TestAdaptiveRoutingDeadlockFree(t *testing.T) {
	m := topology.New10x10()
	edges := shortcut.SelectMaxCost(m.Graph(), shortcut.Params{
		Budget: 16, Eligible: m.ShortcutEligible,
	})
	n := New(Config{Mesh: m, Width: tech.Width4B, Shortcuts: edges, AdaptiveRouting: true})
	rng := rand.New(rand.NewSource(17))
	injected := 0
	for cyc := 0; cyc < 6000; cyc++ {
		for k := 0; k < 3; k++ {
			if rng.Float64() < 0.6 {
				src, dst := rng.Intn(100), rng.Intn(100)
				if src != dst {
					n.Inject(Message{Src: src, Dst: dst, Class: Data, Inject: n.Now()})
					injected++
				}
			}
		}
		n.Step()
	}
	if !n.Drain(1000000) {
		t.Fatalf("deadlock under adaptive routing: %d stuck", n.InFlight())
	}
	if got := n.Stats().PacketsEjected; got != int64(injected) {
		t.Errorf("ejected %d, want %d", got, injected)
	}
}

// TestAdaptiveCandidatesEnumeration checks the candidate sets directly.
func TestAdaptiveCandidatesEnumeration(t *testing.T) {
	m := topology.New10x10()
	n := New(Config{Mesh: m, Width: tech.Width16B, AdaptiveRouting: true})
	// Interior diagonal pair: both E and N are minimal.
	cands := n.adaptiveCandidates(m.ID(3, 3), m.ID(6, 6), nil)
	if len(cands) != 2 {
		t.Fatalf("diagonal candidates = %v, want 2 ports", cands)
	}
	seen := map[int8]bool{}
	for _, c := range cands {
		seen[c] = true
	}
	if !seen[portNorth] || !seen[portEast] {
		t.Errorf("candidates = %v, want {N, E}", cands)
	}
	// Aligned pair: single candidate.
	cands = n.adaptiveCandidates(m.ID(3, 3), m.ID(7, 3), nil)
	if len(cands) != 1 || cands[0] != portEast {
		t.Errorf("aligned candidates = %v, want {E}", cands)
	}
	// With a shortcut, the RF port appears when it shortens distance.
	n2 := New(Config{
		Mesh: m, Width: tech.Width16B, AdaptiveRouting: true,
		Shortcuts: []shortcut.Edge{{From: m.ID(3, 3), To: m.ID(8, 8)}},
	})
	cands = n2.adaptiveCandidates(m.ID(3, 3), m.ID(8, 8), nil)
	if len(cands) != 1 || cands[0] != portRF {
		t.Errorf("shortcut candidates = %v, want {RF}", cands)
	}
}

// TestDeterministicUnaffectedByFlag: with one minimal path there is no
// adaptivity; latencies must match the deterministic router exactly.
func TestDeterministicUnaffectedByFlag(t *testing.T) {
	m := topology.New10x10()
	for _, adaptive := range []bool{false, true} {
		n := New(Config{Mesh: m, Width: tech.Width16B, AdaptiveRouting: adaptive})
		n.Inject(Message{Src: m.ID(2, 5), Dst: m.ID(8, 5), Class: Request, Inject: 0})
		if !n.Drain(10000) {
			t.Fatal("no drain")
		}
		if got := n.Stats().PacketLatency; got != 35 {
			t.Errorf("adaptive=%v: latency = %d, want 35 (5*(6+1) + 1 flit - 1)", adaptive, got)
		}
	}
}
