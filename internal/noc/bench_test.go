package noc

import (
	"math/rand"
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// benchStep measures cycles/second of the simulator core under steady
// random load for a configuration. ReportAllocs is the zero-alloc
// gate: with the packet freelist and hoisted scratch, steady-state
// stepping must run at 0 allocs/op (cmd/bench enforces it).
func benchStep(b *testing.B, cfg Config, rate float64) {
	n := New(cfg)
	rng := rand.New(rand.NewSource(1))
	// Warm to steady state (and populate the packet freelist).
	for i := 0; i < 2000; i++ {
		stepOnce(n, rng, rate)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepOnce(n, rng, rate)
	}
	b.StopTimer()
	if !n.Drain(5_000_000) {
		b.Fatal("drain failed")
	}
}

func stepOnce(n *Network, rng *rand.Rand, rate float64) {
	if rng.Float64() < rate {
		src, dst := rng.Intn(100), rng.Intn(100)
		if src != dst {
			n.Inject(Message{Src: src, Dst: dst, Class: Data, Inject: n.Now()})
		}
	}
	n.Step()
}

func BenchmarkStepBaseline16B(b *testing.B) {
	benchStep(b, Config{Mesh: topology.New10x10(), Width: tech.Width16B}, 0.8)
}

func BenchmarkStepBaseline4B(b *testing.B) {
	benchStep(b, Config{Mesh: topology.New10x10(), Width: tech.Width4B}, 0.8)
}

func BenchmarkStepShortcuts4B(b *testing.B) {
	m := topology.New10x10()
	edges := shortcut.SelectMaxCost(m.Graph(), shortcut.Params{
		Budget: 16, Eligible: m.ShortcutEligible,
	})
	benchStep(b, Config{Mesh: m, Width: tech.Width4B, Shortcuts: edges}, 0.8)
}

func BenchmarkStepAdaptiveRouting4B(b *testing.B) {
	benchStep(b, Config{Mesh: topology.New10x10(), Width: tech.Width4B, AdaptiveRouting: true}, 0.8)
}

func BenchmarkStepIdle(b *testing.B) {
	// The active-list optimization should make idle cycles nearly free.
	benchStep(b, Config{Mesh: topology.New10x10(), Width: tech.Width16B}, 0.0)
}

func BenchmarkStepBaseline16BWorkers4(b *testing.B) {
	benchStep(b, Config{Mesh: topology.New10x10(), Width: tech.Width16B, StepWorkers: 4}, 0.8)
}

func BenchmarkStepBaseline4BWorkers4(b *testing.B) {
	benchStep(b, Config{Mesh: topology.New10x10(), Width: tech.Width4B, StepWorkers: 4}, 0.8)
}

func BenchmarkStepShortcuts4BWorkers4(b *testing.B) {
	m := topology.New10x10()
	edges := shortcut.SelectMaxCost(m.Graph(), shortcut.Params{
		Budget: 16, Eligible: m.ShortcutEligible,
	})
	benchStep(b, Config{Mesh: m, Width: tech.Width4B, Shortcuts: edges, StepWorkers: 4}, 0.8)
}

func BenchmarkBuildRoutes(b *testing.B) {
	m := topology.New10x10()
	edges := shortcut.SelectMaxCost(m.Graph(), shortcut.Params{
		Budget: 16, Eligible: m.ShortcutEligible,
	})
	cfg := Config{Mesh: m, Width: tech.Width16B, Shortcuts: edges}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := New(cfg)
		if n.routes == nil {
			b.Fatal("no routes")
		}
	}
}

func BenchmarkInjectEject(b *testing.B) {
	// Round-trip cost of one short message on an idle mesh.
	m := topology.New10x10()
	n := New(Config{Mesh: m, Width: tech.Width16B})
	src, dst := m.ID(4, 4), m.ID(5, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Inject(Message{Src: src, Dst: dst, Class: Request, Inject: n.Now()})
		for j := 0; j < 12; j++ {
			n.Step()
		}
	}
	b.StopTimer()
	if !n.Drain(100000) {
		b.Fatal("drain failed")
	}
}
