package noc

import (
	"fmt"
	"strings"
)

// This file defines the simulator's observability seam: a typed event
// interface fired synchronously from the router pipeline, plus the
// consistency-audit primitives the invariant checker builds on. With no
// observer attached every hook site costs one predictable branch on a
// nil slice, keeping the hot path at seed speed (see
// BenchmarkObserverOverhead); implementations live in internal/obs so
// this package stays dependency-free.

// Observer receives simulation events. All methods are called
// synchronously from the simulation loop, in cycle order; an observer
// must not mutate the network (except via the documented read-only
// accessors on the *Network it receives in CycleEnd).
//
// Embed BaseObserver to implement only the events you care about.
type Observer interface {
	// PacketInjected fires once per unicast packet entering a router's
	// NI injection queue (multicasts fire it per expanded/forked child
	// as children enter NI queues).
	PacketInjected(msg Message, now int64)

	// FlitSent fires for every flit granted through a crossbar, with
	// the router it leaves and the output port it takes (PortName names
	// ports; Local is an ejection, RF a shortcut band).
	FlitSent(router, outPort int, now int64)

	// FlitEjected fires for every plain-unicast flit leaving through a
	// local port, with its per-flit latency (the paper's latency/flit
	// metric: each flit timestamped at its own injection cycle).
	FlitEjected(router int, lat int64)

	// PacketDelivered fires on every plain-unicast tail ejection with
	// the original message, the completion cycle, and the hop count.
	PacketDelivered(msg Message, at int64, hops int)

	// MulticastDelivered fires once per destination served by a
	// multicast, with the original message and the delivery cycle.
	MulticastDelivered(msg Message, at int64)

	// FlitCorrupted fires when a transmitted flit fails its CRC at the
	// far side of a link (transient fault model): the flit stays at the
	// sender and will be retransmitted or the link declared dead.
	FlitCorrupted(router, outPort int, now int64)

	// Retransmit fires when the link layer schedules a retransmission
	// of a corrupted flit, with the consecutive-attempt count charged
	// against the link's retry budget.
	Retransmit(router, outPort, attempt int, now int64)

	// LinkFailed fires when a link is declared permanently dead: an RF-I
	// shortcut band (outPort PortRF), a mesh link (a mesh port), or the
	// RF multicast band (router -1, outPort PortRF).
	LinkFailed(router, outPort int, now int64)

	// DegradedReroute fires for every in-flight packet whose committed
	// output was invalidated by a link failure and was sent back to
	// route computation over the surviving topology.
	DegradedReroute(router, outPort int, now int64)

	// Replanned fires when Network.Reconfigure installs a new shortcut
	// plan (including post-failure replans), after the routing-table
	// update stall has been paid.
	Replanned(edges int, now int64)

	// PacketMisrouted fires when the adversarial misroute fault diverts a
	// whole packet to a wrong-but-live output port at route computation
	// (the next router re-routes it toward the true destination).
	PacketMisrouted(router, outPort int, now int64)

	// PacketMisdelivered fires when a packet ejects at the wrong router
	// (RF band mis-tune) and the integrity layer detects the destination
	// mismatch at the receiver.
	PacketMisdelivered(router int, msg Message, now int64)

	// DuplicateInjected fires when an RF band re-trigger spawns a second
	// copy of a packet at the shortcut's destination router.
	DuplicateInjected(router int, now int64)

	// DuplicateDropped fires when receiver-side dedup discards a copy of
	// a packet whose sequence number was already delivered.
	DuplicateDropped(router int, msg Message, now int64)

	// IntegrityRetransmit fires when the integrity layer schedules a
	// NACK-style source retransmission of a misdelivered, corrupted or
	// scrubbed packet, with the end-to-end attempt count.
	IntegrityRetransmit(src, dst, attempt int, now int64)

	// PacketLost fires when a packet's end-to-end retry budget runs out
	// and the integrity layer abandons it (counted in Stats.PacketsLost;
	// the exactly-once ledger then closes as injected = delivered + lost).
	PacketLost(msg Message, now int64)

	// CreditLeaked fires when the credit-leak fault silently removes one
	// credit from a VC buffer (router and input port of the leaking VC).
	CreditLeaked(router, port int, now int64)

	// VCStuck fires when the stuck-VC fault wedges a VC out of
	// arbitration (router and input port of the victim).
	VCStuck(router, port int, now int64)

	// WatchdogRecovery fires when the watchdog escalates a recovery
	// stage: 1 repairs credits and unsticks VCs, 2 forces the oldest
	// blocked wormholes onto the escape class, 3 scrubs the oldest
	// stalled packet and re-injects it at the source. actions counts the
	// repairs/escapes/re-injections the stage performed.
	WatchdogRecovery(stage, actions int, now int64)

	// CycleEnd fires after every Step, once the cycle's arrivals,
	// injections and arbitration have all completed. The network is in
	// a consistent state; Audit and the Stats accessors are safe here.
	CycleEnd(n *Network)
}

// BaseObserver is a no-op Observer for embedding.
type BaseObserver struct{}

func (BaseObserver) PacketInjected(Message, int64)       {}
func (BaseObserver) FlitSent(int, int, int64)            {}
func (BaseObserver) FlitEjected(int, int64)              {}
func (BaseObserver) PacketDelivered(Message, int64, int) {}
func (BaseObserver) MulticastDelivered(Message, int64)   {}
func (BaseObserver) FlitCorrupted(int, int, int64)       {}
func (BaseObserver) Retransmit(int, int, int, int64)     {}
func (BaseObserver) LinkFailed(int, int, int64)          {}
func (BaseObserver) DegradedReroute(int, int, int64)     {}
func (BaseObserver) Replanned(int, int64)                {}
func (BaseObserver) PacketMisrouted(int, int, int64)     {}
func (BaseObserver) PacketMisdelivered(int, Message, int64) {}
func (BaseObserver) DuplicateInjected(int, int64)           {}
func (BaseObserver) DuplicateDropped(int, Message, int64)   {}
func (BaseObserver) IntegrityRetransmit(int, int, int, int64) {}
func (BaseObserver) PacketLost(Message, int64)                {}
func (BaseObserver) CreditLeaked(int, int, int64)             {}
func (BaseObserver) VCStuck(int, int, int64)                  {}
func (BaseObserver) WatchdogRecovery(int, int, int64)         {}
func (BaseObserver) CycleEnd(*Network)                        {}

// NumPorts is the per-router port count (N, E, S, W, Local, RF), the
// width of per-port observer dimensions.
const NumPorts = numPorts

// Port indices, exported for observers that filter by port.
const (
	PortNorth = portNorth
	PortEast  = portEast
	PortSouth = portSouth
	PortWest  = portWest
	PortLocal = portLocal
	PortRF    = portRF
)

// PortName renders a port index ("N", "E", "S", "W", "L", "RF").
func PortName(p int) string { return portName(p) }

// AttachObserver registers an observer; events fire in attachment
// order. Attaching during a run is allowed and takes effect at the next
// event.
func (n *Network) AttachObserver(o Observer) {
	if o == nil {
		panic("noc: nil observer")
	}
	n.observers = append(n.observers, o)
}

// DetachObserver removes a previously attached observer (identity
// comparison). It is a no-op if o is not attached.
func (n *Network) DetachObserver(o Observer) {
	for i, cur := range n.observers {
		if cur == o {
			n.observers = append(n.observers[:i], n.observers[i+1:]...)
			return
		}
	}
}

// AuditReport is a consistency snapshot of the network's internal
// state, computed by Audit. The invariant checker (internal/obs)
// evaluates it every K cycles; tests can also assert on it directly.
type AuditReport struct {
	Now int64

	// Flit conservation: every flit counted injected must be ejected,
	// buffered in some VC, in flight on a link (the arrival wheel), or
	// scrubbed out of the fabric by a watchdog stage-3 recovery.
	FlitsInjected int64
	FlitsEjected  int64
	FlitsBuffered int64 // sum of VC buffer occupancy
	FlitsOnLinks  int64 // flits scheduled on links, not yet arrived
	FlitsScrubbed int64 // flits removed by watchdog scrub-and-reinject

	// PacketsInFlight is the packet-level in-flight count (injected
	// minus retired, including multicast children); it must never go
	// negative.
	PacketsInFlight int64

	// CreditViolations counts VCs whose occupancy bookkeeping is out of
	// range (negative counts, or buffered+incoming+leaked exceeding
	// capacity — i.e. a credit went negative). Intentionally leaked
	// credits (the credit-leak fault) are accounted, not violations.
	CreditViolations int

	// LeakedCredits is the total credits currently leaked across all VCs
	// (capacity the fabric has silently lost; watchdog stage 1 repairs
	// it).
	LeakedCredits int64

	// StuckVCs is the number of VCs currently wedged out of arbitration.
	StuckVCs int64

	// Forward progress: the oldest head flit still occupying a VC.
	// OldestHeadAge is Now minus its arrival cycle (0 when the network
	// is empty); OldestRouter/OldestPort/OldestVC locate it.
	OldestHeadAge int64
	OldestRouter  int
	OldestPort    int
	OldestVC      int
}

// ConservationError returns injected - ejected - buffered - on-links -
// scrubbed; any non-zero value means flits were created or destroyed.
func (a AuditReport) ConservationError() int64 {
	return a.FlitsInjected - a.FlitsEjected - a.FlitsBuffered - a.FlitsOnLinks - a.FlitsScrubbed
}

// Audit computes a consistency snapshot. It is O(routers x ports x VCs)
// and allocation-free; safe to call between cycles (e.g. from
// Observer.CycleEnd), not from inside a Step.
func (n *Network) Audit() AuditReport {
	rep := AuditReport{
		Now:             n.now,
		FlitsInjected:   n.stats.FlitsInjected,
		FlitsEjected:    n.stats.FlitsEjected,
		FlitsScrubbed:   n.stats.FlitsScrubbed,
		PacketsInFlight: n.inFlightPackets,
		OldestRouter:    -1,
		OldestPort:      -1,
		OldestVC:        -1,
	}
	for slot := range n.wheel {
		rep.FlitsOnLinks += int64(len(n.wheel[slot]))
	}
	for r := range n.routers {
		rs := &n.routers[r]
		for p := 0; p < numPorts; p++ {
			for _, vc := range rs.vcs[p] {
				rep.FlitsBuffered += int64(vc.count)
				rep.LeakedCredits += int64(vc.leaked)
				if vc.stuck {
					rep.StuckVCs++
				}
				if vc.count < 0 || vc.incoming < 0 || vc.leaked < 0 ||
					vc.count+vc.incoming+vc.leaked > cap(vc.buf) {
					rep.CreditViolations++
				}
				if vc.pkt != nil {
					if age := n.now - vc.arrivedAt; age > rep.OldestHeadAge {
						rep.OldestHeadAge = age
						rep.OldestRouter, rep.OldestPort, rep.OldestVC = r, p, vc.idx
					}
				}
			}
		}
	}
	return rep
}

// DumpRouter renders one router's live state (occupied VCs, their
// phases, ages and routes, plus NI queue depths) for deadlock and
// conservation post-mortems.
func (n *Network) DumpRouter(r int) string {
	rs := &n.routers[r]
	c := n.cfg.Mesh.Coord(r)
	var b strings.Builder
	fmt.Fprintf(&b, "router %d (%d,%d) @cycle %d: queue=%d reinject=%d feedings=%d\n",
		r, c.X, c.Y, n.now, len(rs.queue)-rs.qhead, len(rs.reinject)-rs.rhead, len(rs.feedings))
	phases := [...]string{"idle", "RC", "VA", "active"}
	for p := 0; p < numPorts; p++ {
		for _, vc := range rs.vcs[p] {
			if vc.pkt == nil && vc.count == 0 && vc.incoming == 0 && !vc.reserved {
				continue
			}
			fmt.Fprintf(&b, "  %s.vc%d class=%d phase=%s buf=%d incoming=%d reserved=%v",
				portName(p), vc.idx, vc.class, phases[vc.phase], vc.count, vc.incoming, vc.reserved)
			if vc.pkt != nil {
				fmt.Fprintf(&b, " pkt %d->%d flits=%d age=%d out=%s",
					vc.pkt.msg.Src, vc.pkt.msg.Dst, vc.pkt.numFlits,
					n.now-vc.arrivedAt, portName(vc.outPort))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CorruptFlitCounter perturbs the injected-flit counter by delta. It
// exists solely for fault-injection tests validating that the invariant
// checker detects conservation violations; never call it otherwise.
func (n *Network) CorruptFlitCounter(delta int64) {
	n.stats.FlitsInjected += delta
}
