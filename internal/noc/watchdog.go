package noc

// This file implements the self-healing watchdog (Config.Watchdog):
// every CheckEvery cycles it audits forward progress, and when the
// oldest head flit has occupied a VC for StallHorizon cycles or more it
// escalates through three recovery stages, waiting Grace cycles between
// escalations for the previous stage to take effect:
//
//	stage 1 — credit re-audit/repair: every leaked credit is restored
//	          and every stuck VC is released back into arbitration
//	          (repairs the two fault modes that wedge the fabric
//	          without breaking any protocol invariant);
//	stage 2 — escape drain: the oldest blocked wormholes that have not
//	          yet moved a flit are forced onto the escape class
//	          (deadlock-free XY or up*/down* tree routing), the same
//	          fallback the EscapeTimeout mechanism uses, applied
//	          forcibly;
//	stage 3 — scrub and re-inject: the single oldest stalled packet is
//	          removed from the fabric entirely (every buffered and
//	          in-flight flit accounted in Stats.FlitsScrubbed, a term
//	          of the conservation identity) and re-injected at its
//	          source from the sender-side outstanding table — the
//	          state the PR-3 checkpoint container persists — charging
//	          the end-to-end retry budget; a packet whose budget is
//	          exhausted is abandoned and counted in Stats.PacketsLost.
//
// The stage resets to zero as soon as the oldest head age falls back
// under the horizon. Exactly-once delivery is preserved throughout: a
// scrub removes every copy of the packet before the re-injection, and
// under Config.Integrity the receiver's dedup catches any race with an
// in-flight duplicate.

// WatchdogConfig tunes stall recovery. The zero value disables it.
type WatchdogConfig struct {
	// Enabled turns the watchdog on.
	Enabled bool

	// CheckEvery is the audit period in cycles. Default 1024.
	CheckEvery int64

	// StallHorizon is the head-flit age that counts as a stall. It
	// should sit well under the invariant checker's deadlock horizon so
	// recovery fires (and can finish) before the checker declares the
	// run dead. Default 25,000 cycles.
	StallHorizon int64

	// Grace is the minimum wait between escalation stages, giving the
	// previous stage time to restore progress. Default 2,048 cycles.
	Grace int64
}

// withDefaults fills the zero knobs of an enabled config.
func (w WatchdogConfig) withDefaults() WatchdogConfig {
	if !w.Enabled {
		return w
	}
	if w.CheckEvery == 0 {
		w.CheckEvery = 1024
	}
	if w.StallHorizon == 0 {
		w.StallHorizon = 25_000
	}
	if w.Grace == 0 {
		w.Grace = 2_048
	}
	return w
}

// watchdogState is the escalation position between checks.
type watchdogState struct {
	stage      int   // last stage fired; 0 = healthy
	lastAction int64 // cycle of the last escalation
}

// escapeDrainBatch bounds how many blocked wormholes one stage-2
// escalation forces onto the escape class.
const escapeDrainBatch = 8

// watchdogStep runs the periodic stall check. Called from Step at the
// end-of-cycle safe point (after arbitration, like applyPendingKills).
func (n *Network) watchdogStep() {
	cfg := n.cfg.Watchdog
	if n.now == 0 || n.now%cfg.CheckEvery != 0 {
		return
	}
	rep := n.Audit()
	if rep.OldestHeadAge < cfg.StallHorizon {
		n.wd.stage = 0
		return
	}
	if n.wd.stage > 0 && n.now-n.wd.lastAction < cfg.Grace {
		return
	}
	stage := n.wd.stage + 1
	if stage > 3 {
		stage = 3
	}
	n.wd.stage = stage
	n.wd.lastAction = n.now
	var actions int
	switch stage {
	case 1:
		actions = n.recoverCreditsAndVCs()
	case 2:
		actions = n.recoverForceEscape()
	case 3:
		actions = n.recoverScrubReinject()
	}
	n.stats.WatchdogRecoveries++
	for _, o := range n.observers {
		o.WatchdogRecovery(stage, actions, n.now)
	}
}

// recoverCreditsAndVCs is stage 1: restore every leaked credit and
// release every stuck VC. Returns the number of repairs.
func (n *Network) recoverCreditsAndVCs() int {
	actions := 0
	for r := range n.routers {
		rs := &n.routers[r]
		for p := 0; p < numPorts; p++ {
			for _, vc := range rs.vcs[p] {
				if vc.leaked > 0 {
					n.stats.RecoveryCreditRepairs += int64(vc.leaked)
					actions += vc.leaked
					vc.leaked = 0
				}
				if vc.stuck {
					vc.stuck = false
					n.stats.RecoveryVCUnsticks++
					actions++
				}
			}
		}
	}
	return actions
}

// recoverForceEscape is stage 2: the oldest normal-class wormholes that
// are stalled past the horizon and have not yet moved a flit (sent == 0,
// so diverting them cannot shear the packet) are forced onto the escape
// class, releasing any downstream reservation they hold. Returns the
// number of packets diverted.
func (n *Network) recoverForceEscape() int {
	horizon := n.cfg.Watchdog.StallHorizon
	var victims [escapeDrainBatch]*vcState
	nv := 0
	for r := range n.routers {
		rs := &n.routers[r]
		for p := 0; p < numPorts; p++ {
			for _, vc := range rs.vcs[p] {
				pkt := vc.pkt
				if pkt == nil || pkt.class != vcClassNormal ||
					pkt.destSet != nil || pkt.mcFwd != nil {
					continue
				}
				if vc.sent > 0 || (vc.phase != phaseVA && vc.phase != phaseActive) {
					continue
				}
				if n.now-vc.arrivedAt < horizon {
					continue
				}
				// Keep the batch sorted oldest-first (insertion sort over
				// a constant-size array).
				i := nv
				if i == len(victims) {
					i--
					if victims[i] != nil && n.now-victims[i].arrivedAt >= n.now-vc.arrivedAt {
						continue
					}
				} else {
					nv++
				}
				for i > 0 && n.now-victims[i-1].arrivedAt < n.now-vc.arrivedAt {
					victims[i] = victims[i-1]
					i--
				}
				victims[i] = vc
			}
		}
	}
	for _, vc := range victims[:nv] {
		if vc.outVC != nil {
			vc.outVC.reserved = false
			vc.outVC = nil
		}
		vc.pkt.class = vcClassEscape
		vc.outPort = n.escapeRoute(vc.router.id, vc.pkt.msg.Dst)
		vc.cands = vc.cands[:0]
		vc.phase = phaseVA
		vc.vaFirstFail = n.now
		n.stats.RecoveryEscapes++
		n.stats.EscapeSwitches++
	}
	return nv
}

// recoverScrubReinject is stage 3: the oldest stalled plain unicast is
// scrubbed out of the fabric (all its buffered and in-flight flits
// removed and accounted) and re-injected at its source, charging the
// end-to-end retry budget. Returns 1 when a packet was scrubbed.
func (n *Network) recoverScrubReinject() int {
	var victim *vcState
	var victimAge int64 = -1
	for r := range n.routers {
		rs := &n.routers[r]
		for p := 0; p < numPorts; p++ {
			for _, vc := range rs.vcs[p] {
				if vc.pkt == nil || !vc.pkt.integrityEligible() {
					continue
				}
				if age := n.now - vc.arrivedAt; age > victimAge {
					victim, victimAge = vc, age
				}
			}
		}
	}
	if victim == nil {
		return 0
	}
	p := victim.pkt
	n.stats.FlitsScrubbed += int64(n.scrubPacket(p))
	// The scrub removed every fabric reference to p; recycle it on the
	// way out (any re-injection below is a fresh copy).
	defer n.freePacket(p)

	fs := n.ensureFaults()
	attempt := p.attempt + 1
	if n.integ != nil && p.hasSeq {
		key := integrityKey{src: p.msg.Src, seq: p.seq}
		msg, ok := n.integ.outstanding[key]
		if !ok {
			// Already delivered (this stalled copy was a duplicate) or
			// already abandoned: the scrub alone is the recovery.
			return 1
		}
		if attempt > fs.cfg.RetryLimit {
			delete(n.integ.outstanding, key)
			n.stats.PacketsLost++
			for _, o := range n.observers {
				o.PacketLost(msg, n.now)
			}
			return 1
		}
		n.stats.RecoveryReinjections++
		n.integ.pending = append(n.integ.pending, pendingRetx{
			at: n.now + fs.backoff(attempt), msg: msg, seq: p.seq, attempt: attempt,
		})
		return 1
	}
	if attempt > fs.cfg.RetryLimit {
		n.stats.PacketsLost++
		for _, o := range n.observers {
			o.PacketLost(p.msg, n.now)
		}
		return 1
	}
	n.stats.RecoveryReinjections++
	retry := n.newPacket()
	retry.msg = p.msg
	retry.numFlits = p.numFlits
	retry.hasSeq = p.hasSeq
	retry.seq = p.seq
	retry.sum = p.sum
	retry.attempt = attempt
	n.enqueue(p.msg.Src, retry)
	return 1
}

// scrubPacket removes every trace of packet p from the fabric: its
// buffered flits, its flits in flight on the wheel, its NI feeding, and
// every VC occupancy and downstream reservation it holds. Returns the
// number of flits removed (they were counted injected but will never
// eject; the caller accounts them in Stats.FlitsScrubbed so the
// conservation identity still balances). The packet retires without
// delivery (in-flight count drops by one); re-injection is the caller's
// decision.
func (n *Network) scrubPacket(p *packet) int {
	// Collect every VC the packet occupies plus every VC it has
	// reserved downstream. Reservations are exclusive, so any flit in
	// flight toward a VC in this set belongs to p.
	vcSet := map[*vcState]bool{}
	for r := range n.routers {
		rs := &n.routers[r]
		for pt := 0; pt < numPorts; pt++ {
			for _, vc := range rs.vcs[pt] {
				if vc.pkt == p {
					vcSet[vc] = true
					if vc.outVC != nil {
						vcSet[vc.outVC] = true
					}
				}
			}
		}
	}
	for slot := range n.wheel {
		for _, t := range n.wheel[slot] {
			if t.pkt == p {
				vcSet[t.to] = true
			}
		}
	}
	scrubbed := 0
	for slot := range n.wheel {
		keep := n.wheel[slot][:0]
		for _, t := range n.wheel[slot] {
			if vcSet[t.to] {
				t.to.incoming--
				scrubbed++
				continue
			}
			keep = append(keep, t)
		}
		n.wheel[slot] = keep
	}
	// An NI still feeding p stops; flits it never fed were never counted
	// injected.
	for r := range n.routers {
		rs := &n.routers[r]
		keep := rs.feedings[:0]
		for _, f := range rs.feedings {
			if !vcSet[f.vc] {
				keep = append(keep, f)
			}
		}
		rs.feedings = keep
	}
	for vc := range vcSet {
		scrubbed += vc.count
		vc.head, vc.count = 0, 0
		vc.pkt = nil
		vc.reserved = false
		vc.phase = phaseIdle
		vc.outVC = nil
		vc.outPort = 0
		vc.vaFirstFail = -1
		vc.cands = vc.cands[:0]
		vc.sent, vc.retries = 0, 0
		// leaked/stuck are independent faults; stage 1 owns them.
	}
	n.inFlightPackets--
	return scrubbed
}
