package noc

import (
	"strings"
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// TestConfigValidate drives the construction-time validation surface:
// every user-reachable misconfiguration must come back as an error
// naming the offending knob, and a healthy config must pass.
func TestConfigValidate(t *testing.T) {
	base := func() Config {
		return Config{Mesh: topology.New10x10()}
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the error; "" means must validate
	}{
		{"default ok", func(c *Config) {}, ""},
		{"zero value ok", func(c *Config) { c.Mesh = nil }, ""},
		{"bad width", func(c *Config) { c.Width = 5 }, "invalid link width 5"},
		{"negative vcs", func(c *Config) { c.VCsPerClass = -1 }, "VCs per class"},
		{"negative depth", func(c *Config) { c.BufDepth = -2 }, "buffer depth"},
		{"negative escape timeout", func(c *Config) { c.EscapeTimeout = -1 }, "escape timeout"},
		{"negative epoch", func(c *Config) { c.MulticastEpoch = -8 }, "multicast epoch"},
		{"negative vct table", func(c *Config) { c.VCTTableSize = -1 }, "VCT table size"},
		{"negative wire velocity", func(c *Config) { c.WireMMPerCycle = -0.5 }, "wire signal velocity"},
		{"negative local speedup", func(c *Config) { c.LocalSpeedup = -3 }, "local speedup"},
		{"unknown multicast mode", func(c *Config) { c.Multicast = MulticastMode(42) }, "unknown multicast mode 42"},
		{"mesh BER above one", func(c *Config) { c.Fault.MeshBER = 1.5 }, "mesh flit-error rate"},
		{"RF BER negative", func(c *Config) { c.Fault.RFBER = -0.1 }, "RF flit-error rate"},
		{"rf-enabled out of range", func(c *Config) { c.RFEnabled = []int{0, 100} }, "RF-enabled router 100"},
		{"receiver out of range", func(c *Config) { c.MulticastReceivers = []int{-1} }, "multicast receiver router -1"},
		{"shortcut out of range", func(c *Config) {
			c.Shortcuts = []shortcut.Edge{{From: 0, To: 200}}
		}, "unknown router index 200"},
		{"shortcut self-loop", func(c *Config) {
			c.Shortcuts = []shortcut.Edge{{From: 7, To: 7}}
		}, "self-loop shortcut at router 7"},
		{"duplicate shortcut source", func(c *Config) {
			c.Shortcuts = []shortcut.Edge{{From: 3, To: 90}, {From: 3, To: 95}}
		}, "two outbound shortcuts"},
		{"duplicate shortcut destination", func(c *Config) {
			c.Shortcuts = []shortcut.Edge{{From: 3, To: 90}, {From: 5, To: 90}}
		}, "two inbound shortcuts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestConfigValidateAccumulates checks that Validate reports every
// violation at once instead of stopping at the first.
func TestConfigValidateAccumulates(t *testing.T) {
	cfg := Config{
		Mesh:      topology.New10x10(),
		Width:     tech.LinkWidth(3),
		BufDepth:  -1,
		Shortcuts: []shortcut.Edge{{From: 2, To: 2}},
	}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate() = nil, want joined errors")
	}
	for _, want := range []string{"invalid link width", "buffer depth", "self-loop"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Validate() error %v missing %q", err, want)
		}
	}
}

// TestNewChecked verifies the error-returning constructor and that the
// legacy New panics (with the same message) on a bad config.
func TestNewChecked(t *testing.T) {
	good := Config{Mesh: topology.New10x10()}
	n, err := NewChecked(good)
	if err != nil || n == nil {
		t.Fatalf("NewChecked(good) = %v, %v", n, err)
	}

	bad := good
	bad.Shortcuts = []shortcut.Edge{{From: 1, To: 50}, {From: 1, To: 60}}
	if _, err := NewChecked(bad); err == nil {
		t.Fatal("NewChecked(duplicate shortcut source) = nil error")
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New(bad config) did not panic")
		}
		if e, ok := r.(error); !ok || !strings.Contains(e.Error(), "two outbound shortcuts") {
			t.Fatalf("New(bad config) panicked with %v", r)
		}
	}()
	New(bad)
}

// TestInjectChecked covers the runtime injection validation: unknown
// routers and (under RF multicast delivery) non-cache senders must be
// rejected without mutating network state or statistics.
func TestInjectChecked(t *testing.T) {
	mesh := topology.New10x10()
	core := mesh.Cores()[0]
	bank := mesh.CacheClusters()[0][0]

	t.Run("unknown routers", func(t *testing.T) {
		n := New(Config{Mesh: mesh})
		cases := []Message{
			{Src: -1, Dst: 5},
			{Src: mesh.N(), Dst: 5},
			{Src: 5, Dst: -3},
			{Src: 5, Dst: mesh.N() + 7},
		}
		for _, msg := range cases {
			if err := n.InjectChecked(msg); err == nil {
				t.Errorf("InjectChecked(%+v) = nil error", msg)
			}
		}
		if got := n.Stats().PacketsInjected; got != 0 {
			t.Errorf("rejected injects counted: PacketsInjected = %d", got)
		}
		if got := n.InFlight(); got != 0 {
			t.Errorf("rejected injects left %d packets in flight", got)
		}
	})

	t.Run("rf multicast from non-cache router", func(t *testing.T) {
		n := New(Config{Mesh: mesh, Multicast: MulticastRF})
		err := n.InjectChecked(Message{Src: core, Multicast: true, DBV: 1})
		if err == nil || !strings.Contains(err.Error(), "not a cache bank") {
			t.Fatalf("InjectChecked(core multicast) = %v", err)
		}
		if got := n.Stats().MulticastMessages; got != 0 {
			t.Errorf("rejected multicast counted: MulticastMessages = %d", got)
		}
		if err := n.InjectChecked(Message{Src: bank, Multicast: true, DBV: 1}); err != nil {
			t.Fatalf("InjectChecked(bank multicast) = %v", err)
		}
		if got := n.Stats().MulticastMessages; got != 1 {
			t.Errorf("MulticastMessages = %d, want 1", got)
		}
	})

	t.Run("valid unicast succeeds", func(t *testing.T) {
		n := New(Config{Mesh: mesh})
		if err := n.InjectChecked(Message{Src: 0, Dst: 42}); err != nil {
			t.Fatalf("InjectChecked(valid) = %v", err)
		}
		if got := n.Stats().PacketsInjected; got != 1 {
			t.Errorf("PacketsInjected = %d, want 1", got)
		}
	})
}
