package noc

import (
	"testing"

	"repro/internal/shortcut"
	"repro/internal/topology"
)

// fuzzMesh maps two fuzz bytes to a supported mesh (even dims >= 6,
// capped to keep per-input cost bounded).
func fuzzMesh(wb, hb byte) *topology.Mesh {
	w := 6 + 2*int(wb%4) // 6, 8, 10, 12
	h := 6 + 2*int(hb%4)
	return topology.New(w, h)
}

// fuzzShortcuts decodes byte pairs into a legal shortcut set: distinct
// endpoints, no memory corners, at most one outbound per source and one
// inbound per destination (the constraints Network.New enforces).
func fuzzShortcuts(m *topology.Mesh, raw []byte) []shortcut.Edge {
	n := m.N()
	corner := map[int]bool{0: true, m.W - 1: true, n - m.W: true, n - 1: true}
	fromTaken := map[int]bool{}
	toTaken := map[int]bool{}
	var out []shortcut.Edge
	for i := 0; i+1 < len(raw) && len(out) < 16; i += 2 {
		from, to := int(raw[i])%n, int(raw[i+1])%n
		if from == to || corner[from] || corner[to] || fromTaken[from] || toTaken[to] {
			continue
		}
		fromTaken[from] = true
		toTaken[to] = true
		out = append(out, shortcut.Edge{From: from, To: to})
	}
	return out
}

// FuzzRoute checks, for arbitrary meshes, shortcut sets and (src, dst)
// pairs, that the deterministic routing table walks from src to dst
// without ever leaving the mesh, that every adaptive candidate port is
// minimal and on-mesh, and that the walk terminates in exactly the
// shortest-path distance (so no packet can exceed a deadlock horizon in
// an uncontended network).
func FuzzRoute(f *testing.F) {
	f.Add(byte(2), byte(2), uint16(0), uint16(99), []byte{5, 90, 17, 60})
	f.Add(byte(0), byte(0), uint16(7), uint16(29), []byte{})
	f.Add(byte(1), byte(3), uint16(100), uint16(1), []byte{1, 2, 3, 4, 5, 6})

	f.Fuzz(func(t *testing.T, wb, hb byte, srcRaw, dstRaw uint16, scRaw []byte) {
		m := fuzzMesh(wb, hb)
		n := New(Config{Mesh: m, Shortcuts: fuzzShortcuts(m, scRaw)})
		N := m.N()
		src, dst := int(srcRaw)%N, int(dstRaw)%N

		r := src
		dist := n.routes.dist[dst]
		for hops := 0; r != dst; hops++ {
			if hops > 2*N {
				t.Fatalf("routing loop: %d -> %d not reached after %d hops", src, dst, hops)
			}
			p := int(n.routes.port[r][dst])
			var next int
			switch {
			case p == portLocal:
				t.Fatalf("local port at router %d but dst is %d", r, dst)
				return
			case p == portRF:
				next = n.shortcutFrom[r]
				if next < 0 {
					t.Fatalf("router %d routes to RF port with no outbound shortcut", r)
				}
			case p >= portNorth && p <= portWest:
				next = neighborThrough(n, r, p)
				if next < 0 {
					t.Fatalf("router %d port %s exits the %dx%d mesh", r, portName(p), m.W, m.H)
				}
			default:
				t.Fatalf("router %d has invalid port %d toward %d", r, p, dst)
				return
			}
			if dist[next] != dist[r]-1 {
				t.Fatalf("hop %d->%d not minimal: dist %d -> %d", r, next, dist[r], dist[next])
			}
			r = next
		}
		if int(n.routes.port[dst][dst]) != portLocal {
			t.Fatalf("router %d does not deliver to itself", dst)
		}

		// Adaptive candidates at every router on any minimal path must
		// themselves be minimal and stay on-mesh.
		var buf []int8
		for rr := 0; rr < N; rr++ {
			if rr == dst {
				continue
			}
			buf = n.adaptiveCandidates(rr, dst, buf)
			if len(buf) == 0 {
				t.Fatalf("router %d has no minimal port toward %d", rr, dst)
			}
			for _, p8 := range buf {
				p := int(p8)
				if p == portRF {
					if sc := n.shortcutFrom[rr]; sc < 0 || dist[sc] != dist[rr]-1 {
						t.Fatalf("router %d: RF candidate not minimal", rr)
					}
					continue
				}
				nb := neighborThrough(n, rr, p)
				if nb < 0 || dist[nb] != dist[rr]-1 {
					t.Fatalf("router %d: candidate %s off-mesh or non-minimal", rr, portName(p))
				}
			}
		}
	})
}
