package noc

// This file implements deterministic checkpoint/restore of a running
// Network (internal/checkpoint's State interface). The snapshot captures
// every bit of dynamic state that influences future cycles — router and
// VC occupancy (including round-robin arbitration order and the active
// lists), in-flight wormholes on the timing wheel, NI queues and feeding
// streams, the RF multicast channel, the VCT tree table, the fault
// bookkeeping including its RNG stream, the currently installed shortcut
// plan, and all statistics — such that a restored network continues
// bit-identical to the uninterrupted run.
//
// Derived state is rebuilt rather than serialized: routing tables, the
// escape spanning tree, and the multicast receiver assignment all
// recompute deterministically from the configuration plus the restored
// fault record. Observers are NOT part of the snapshot; re-attach them
// after restoring (obs recorders resume from the restore point with
// empty histories).
//
// A snapshot carries a fingerprint of the static configuration
// (everything except the runtime-mutable shortcut plan, which is
// serialized as state); restoring into a differently-configured network
// is refused. Restore targets a freshly constructed New(cfg) network;
// on error the target is left in an undefined state and must be
// discarded.

import (
	"fmt"
	"hash/crc64"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/shortcut"
)

// snapshotVersion is the Network blob's format version. Bump on any
// layout change; old versions are refused, not migrated (the
// compatibility policy in DESIGN.md).
const snapshotVersion = 2

var fpTable = crc64.MakeTable(crc64.ECMA)

// fingerprint hashes the static configuration a snapshot is only valid
// for. The shortcut plan is excluded: Reconfigure mutates it at runtime,
// so the installed plan travels as state instead.
func (n *Network) fingerprint() uint64 {
	e := checkpoint.NewEncoder()
	c := n.cfg
	e.Int(c.Mesh.W)
	e.Int(c.Mesh.H)
	e.Int(int(c.Width))
	e.Int(c.VCsPerClass)
	e.Int(c.BufDepth)
	e.I64(c.EscapeTimeout)
	e.Bool(c.WireShortcuts)
	e.IntSlice(c.RFEnabled)
	e.Int(int(c.Multicast))
	e.IntSlice(c.MulticastReceivers)
	e.I64(c.MulticastEpoch)
	e.Int(c.VCTTableSize)
	e.F64(c.WireMMPerCycle)
	e.Int(c.LocalSpeedup)
	e.Int(c.ShortcutWidthBytes)
	e.F64(c.Fault.MeshBER)
	e.F64(c.Fault.RFBER)
	e.Int(c.Fault.RetryLimit)
	e.I64(c.Fault.BackoffBase)
	e.I64(c.Fault.BackoffMax)
	e.I64(c.Fault.Seed)
	e.F64(c.Fault.MisrouteRate)
	e.F64(c.Fault.MisdeliverRate)
	e.F64(c.Fault.DuplicateRate)
	e.F64(c.Fault.CreditLeakRate)
	e.F64(c.Fault.StuckVCRate)
	e.Bool(c.Integrity)
	e.Bool(c.Watchdog.Enabled)
	e.I64(c.Watchdog.CheckEvery)
	e.I64(c.Watchdog.StallHorizon)
	e.I64(c.Watchdog.Grace)
	e.Bool(c.AdaptiveRouting)
	blob, _ := e.Bytes()
	return crc64.Checksum(blob, fpTable)
}

// CheckpointState implements checkpoint.State.
func (n *Network) CheckpointState() ([]byte, error) {
	e := checkpoint.NewEncoder()
	e.Byte(snapshotVersion)
	e.U64(n.fingerprint())
	e.I64(n.now)
	e.I64(n.inFlightPackets)
	e.Bool(n.mcDead)
	encodeStats(e, &n.stats)

	// The installed shortcut plan (may differ from the construction-time
	// plan after Reconfigure).
	e.Int(len(n.cfg.Shortcuts))
	for _, edge := range n.cfg.Shortcuts {
		e.Int(edge.From)
		e.Int(edge.To)
	}

	for _, row := range n.freq {
		e.Bool(row != nil)
		if row != nil {
			e.I64Slice(row)
		}
	}
	for r := range n.linkUse {
		for p := 0; p < numPorts; p++ {
			e.I64(n.linkUse[r][p])
		}
	}

	// Deduplicated packet table: shared *packet references (a VC and a
	// wheel transfer naming the same wormhole) serialize once and restore
	// to one object, preserving pointer identity.
	table, index := n.collectPackets()
	e.Int(len(table))
	for _, p := range table {
		encodePacket(e, p)
	}

	pktIdx := func(p *packet) int {
		if p == nil {
			return -1
		}
		return index[p]
	}
	for r := range n.routers {
		rs := &n.routers[r]
		// The NI queues pop by head index; only the live window
		// serializes (restore resets the head to zero), keeping the byte
		// format identical to pre-head-index snapshots.
		q := rs.queue[rs.qhead:]
		e.Int(len(q))
		for _, p := range q {
			e.Int(pktIdx(p))
		}
		rq := rs.reinject[rs.rhead:]
		e.Int(len(rq))
		for _, p := range rq {
			e.Int(pktIdx(p))
		}
		e.Int(rs.rrOffset)
		e.Int(len(rs.feedings))
		for _, f := range rs.feedings {
			e.Int(f.vc.port)
			e.Int(f.vc.idx)
			e.Int(f.fed)
		}
		// The active list in order: round-robin switch allocation walks
		// it, so its order is determinism-bearing.
		e.Int(len(rs.active))
		for _, vc := range rs.active {
			e.Int(vc.port)
			e.Int(vc.idx)
		}
		for p := 0; p < numPorts; p++ {
			for _, vc := range rs.vcs[p] {
				encodeVC(e, vc, pktIdx)
			}
		}
	}

	// The timing wheel, slot order preserved (arrival processing order
	// feeds the active lists).
	for s := 0; s < wheelSize; s++ {
		slot := n.wheel[s]
		e.Int(len(slot))
		for _, t := range slot {
			e.Int(t.to.router.id)
			e.Int(t.to.port)
			e.Int(t.to.idx)
			e.Int(pktIdx(t.pkt))
			e.Bool(t.isHead)
			e.Bool(t.isTail)
		}
	}

	e.Bool(n.mc != nil)
	if n.mc != nil {
		encodeMC(e, n.mc, pktIdx)
	}
	e.Bool(n.vct != nil)
	if n.vct != nil {
		e.Int(len(n.vct.fifo))
		for _, k := range n.vct.fifo {
			e.Int(k.src)
			e.U64(k.dbv)
		}
	}
	e.Bool(n.faults != nil)
	if n.faults != nil {
		if err := encodeFaults(e, n.faults); err != nil {
			return nil, err
		}
	}
	e.Bool(n.integ != nil)
	if n.integ != nil {
		encodeIntegrity(e, n.integ)
	}
	e.Int(n.wd.stage)
	e.I64(n.wd.lastAction)
	return e.Bytes()
}

// collectPackets walks every live *packet reference in deterministic
// order and assigns each unique pointer an index.
func (n *Network) collectPackets() ([]*packet, map[*packet]int) {
	var table []*packet
	index := map[*packet]int{}
	add := func(p *packet) {
		if p == nil {
			return
		}
		if _, ok := index[p]; ok {
			return
		}
		index[p] = len(table)
		table = append(table, p)
	}
	for r := range n.routers {
		rs := &n.routers[r]
		for _, p := range rs.queue[rs.qhead:] {
			add(p)
		}
		for _, p := range rs.reinject[rs.rhead:] {
			add(p)
		}
		for p := 0; p < numPorts; p++ {
			for _, vc := range rs.vcs[p] {
				add(vc.pkt)
			}
		}
	}
	for s := 0; s < wheelSize; s++ {
		for _, t := range n.wheel[s] {
			add(t.pkt)
		}
	}
	if n.mc != nil {
		for _, ld := range n.mc.pendingLocal {
			add(ld.pkt)
		}
	}
	return table, index
}

func encodeMsg(e *checkpoint.Encoder, m Message) {
	e.Int(m.Src)
	e.Int(m.Dst)
	e.Int(int(m.Class))
	e.I64(m.Inject)
	e.Bool(m.Multicast)
	e.U64(m.DBV)
}

func encodePacket(e *checkpoint.Encoder, p *packet) {
	encodeMsg(e, p.msg)
	e.Int(p.numFlits)
	e.Int(p.class)
	e.Int(p.hops)
	e.Int(p.ejected)
	e.Bool(p.destSet != nil)
	if p.destSet != nil {
		e.IntSlice(p.destSet)
	}
	e.Bool(p.vctSetup)
	e.Int(p.deliverCore)
	e.Bool(p.mcFwd != nil)
	if p.mcFwd != nil {
		e.Int(p.mcFwd.cluster)
		encodeMsg(e, p.mcFwd.entry.msg)
		e.Int(p.mcFwd.entry.numFlits)
	}
	e.Bool(p.hasSeq)
	e.U64(p.seq)
	e.U64(p.sum)
	e.Int(p.attempt)
}

func encodeVC(e *checkpoint.Encoder, vc *vcState, pktIdx func(*packet) int) {
	idle := vc.pkt == nil && !vc.reserved && vc.incoming == 0 &&
		vc.count == 0 && vc.phase == phaseIdle &&
		vc.leaked == 0 && !vc.stuck
	e.Bool(!idle)
	if idle {
		return
	}
	e.Int(pktIdx(vc.pkt))
	e.Bool(vc.reserved)
	e.Int(vc.incoming)
	e.Int(vc.count)
	for i := 0; i < vc.count; i++ {
		s := vc.buf[(vc.head+i)%cap(vc.buf)]
		e.I64(s.eligibleAt)
		e.Bool(s.isHead)
		e.Bool(s.isTail)
	}
	e.Byte(byte(vc.phase))
	e.Int(len(vc.cands))
	for _, c := range vc.cands {
		e.Int(int(c))
	}
	e.I64(vc.arrivedAt)
	e.I64(vc.rcExtra)
	e.I64(vc.vaFirstFail)
	e.Int(vc.outPort)
	if vc.outVC == nil {
		e.Int(-1)
	} else {
		e.Int(vc.outVC.router.id)
		e.Int(vc.outVC.port)
		e.Int(vc.outVC.idx)
	}
	e.Int(vc.sent)
	e.Int(vc.retries)
	e.Int(vc.leaked)
	e.Bool(vc.stuck)
}

func encodeMC(e *checkpoint.Encoder, mc *mcChannel, pktIdx func(*packet) int) {
	e.Int(len(mc.queues))
	for _, q := range mc.queues {
		e.Int(len(q))
		for _, entry := range q {
			encodeMsg(e, entry.msg)
			e.Int(entry.numFlits)
		}
	}
	e.Int(mc.owner)
	e.I64(mc.epochEnd)
	e.Bool(mc.cur != nil)
	if mc.cur != nil {
		encodeMsg(e, mc.cur.msg)
		e.Int(mc.cur.numFlits)
	}
	e.Int(mc.flitsSent)
	e.IntSlice(mc.activeRx)
	e.Int(len(mc.pendingLocal))
	for _, ld := range mc.pendingLocal {
		e.I64(ld.at)
		e.Int(pktIdx(ld.pkt))
	}
}

func encodeFaults(e *checkpoint.Encoder, fs *faultState) error {
	blob, err := fs.rng.MarshalBinary()
	if err != nil {
		return err
	}
	e.BytesField(blob)
	for _, b := range fs.shortcutDead {
		e.Bool(b)
	}
	for _, b := range fs.failedTx {
		e.Bool(b)
	}
	for _, b := range fs.failedRx {
		e.Bool(b)
	}
	e.Int(len(fs.failedEdges))
	for _, edge := range fs.failedEdges {
		e.Int(edge.From)
		e.Int(edge.To)
	}
	for r := range fs.meshDead {
		for p := 0; p < numPorts; p++ {
			e.Bool(fs.meshDead[r][p])
		}
	}
	e.Int(fs.meshFaults)
	e.Int(len(fs.pendingKills))
	for _, k := range fs.pendingKills {
		e.Int(k[0])
		e.Int(k[1])
	}
	return nil
}

// encodeIntegrity serializes the end-to-end integrity bookkeeping. The
// seen and outstanding maps are written in sorted key order so the blob
// is deterministic; the pending list keeps insertion order (it is
// scanned linearly, so order is determinism-bearing).
func encodeIntegrity(e *checkpoint.Encoder, ig *integrityState) {
	e.Int(len(ig.nextSeq))
	for _, s := range ig.nextSeq {
		e.U64(s)
	}
	sortKeys := func(keys []integrityKey) {
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].src != keys[j].src {
				return keys[i].src < keys[j].src
			}
			return keys[i].seq < keys[j].seq
		})
	}
	seen := make([]integrityKey, 0, len(ig.seen))
	for k := range ig.seen {
		seen = append(seen, k)
	}
	sortKeys(seen)
	e.Int(len(seen))
	for _, k := range seen {
		e.Int(k.src)
		e.U64(k.seq)
	}
	out := make([]integrityKey, 0, len(ig.outstanding))
	for k := range ig.outstanding {
		out = append(out, k)
	}
	sortKeys(out)
	e.Int(len(out))
	for _, k := range out {
		e.Int(k.src)
		e.U64(k.seq)
		encodeMsg(e, ig.outstanding[k])
	}
	e.Int(len(ig.pending))
	for _, r := range ig.pending {
		e.I64(r.at)
		encodeMsg(e, r.msg)
		e.U64(r.seq)
		e.Int(r.attempt)
	}
}

func (n *Network) restoreIntegrity(d *checkpoint.Decoder) error {
	ig := n.integ
	N := n.cfg.Mesh.N()
	if sn := d.Int(); d.Err() == nil && sn != N {
		return fmt.Errorf("noc: snapshot has %d sequence counters, want %d", sn, N)
	}
	for i := range ig.nextSeq {
		ig.nextSeq[i] = d.U64()
	}
	readKey := func(what string) integrityKey {
		k := integrityKey{src: d.Int(), seq: d.U64()}
		if d.Err() == nil && (k.src < 0 || k.src >= N) {
			d.Fail(fmt.Errorf("noc: snapshot %s source router %d out of range", what, k.src))
		}
		return k
	}
	sn := d.Int()
	if d.Err() != nil || sn < 0 || sn > d.Remaining()/8 {
		d.Fail(fmt.Errorf("noc: implausible seen-set size %d", sn))
		return d.Err()
	}
	ig.seen = make(map[integrityKey]bool, sn)
	for i := 0; i < sn; i++ {
		ig.seen[readKey("seen entry")] = true
	}
	on := d.Int()
	if d.Err() != nil || on < 0 || on > d.Remaining()/8 {
		d.Fail(fmt.Errorf("noc: implausible outstanding-table size %d", on))
		return d.Err()
	}
	ig.outstanding = make(map[integrityKey]Message, on)
	for i := 0; i < on; i++ {
		k := readKey("outstanding entry")
		ig.outstanding[k] = n.decodeMsg(d)
	}
	pn := d.Int()
	if d.Err() != nil || pn < 0 || pn > d.Remaining()/8 {
		d.Fail(fmt.Errorf("noc: implausible pending-retransmission count %d", pn))
		return d.Err()
	}
	ig.pending = ig.pending[:0]
	for i := 0; i < pn; i++ {
		r := pendingRetx{at: d.I64(), msg: n.decodeMsg(d)}
		r.seq = d.U64()
		r.attempt = d.Int()
		if d.Err() == nil && r.attempt < 0 {
			return fmt.Errorf("noc: snapshot pending retransmission attempt %d negative", r.attempt)
		}
		ig.pending = append(ig.pending, r)
	}
	return d.Err()
}

func encodeStats(e *checkpoint.Encoder, s *Stats) {
	e.I64(s.Cycles)
	e.I64(s.PacketsInjected)
	e.I64(s.PacketsEjected)
	e.I64(s.FlitsInjected)
	e.I64(s.FlitsEjected)
	e.I64(s.PacketLatency)
	e.I64(s.FlitLatency)
	e.I64(s.HopSum)
	e.I64(s.RouterTraversals)
	e.I64(s.MeshFlitHops)
	e.I64(s.LocalFlitHops)
	e.F64(s.WireShortcutFlitMM)
	e.I64(s.RFShortcutBits)
	e.I64(s.RFMulticastBits)
	e.I64(s.RFMulticastRxBits)
	e.I64(s.RFGatedRxFlits)
	e.I64(s.MulticastMessages)
	e.I64(s.MulticastDeliveries)
	e.I64(s.MulticastLatency)
	e.I64(s.MulticastFlitsDelivered)
	e.I64(s.MulticastFlitLatency)
	e.I64(s.VCTHits)
	e.I64(s.VCTMisses)
	e.I64(s.EscapeSwitches)
	e.I64(s.FlitsCorrupted)
	e.I64(s.Retransmits)
	e.I64(s.LinkFailures)
	e.I64(s.DegradedReroutes)
	e.I64(s.Reconfigurations)
	e.I64(s.ReconfigUpdateCycles)
	e.I64(s.MisroutedPackets)
	e.I64(s.MisdeliveredPackets)
	e.I64(s.DuplicatesInjected)
	e.I64(s.CreditLeaks)
	e.I64(s.StuckVCs)
	e.I64(s.DuplicatesDropped)
	e.I64(s.ChecksumFailures)
	e.I64(s.IntegrityRetransmits)
	e.I64(s.PacketsLost)
	e.I64(s.WatchdogRecoveries)
	e.I64(s.RecoveryCreditRepairs)
	e.I64(s.RecoveryVCUnsticks)
	e.I64(s.RecoveryEscapes)
	e.I64(s.RecoveryReinjections)
	e.I64(s.FlitsScrubbed)
	e.I64Slice(s.MsgsByDistance)
}

// RestoreCheckpointState implements checkpoint.State. The receiver must
// be a freshly constructed network with the same static configuration
// the snapshot was taken under (the fingerprint is checked). Attached
// observers survive the restore. On error the network's state is
// undefined; discard it.
func (n *Network) RestoreCheckpointState(data []byte) error {
	d := checkpoint.NewDecoder(data)
	if v := d.Byte(); d.Err() == nil && v != snapshotVersion {
		return fmt.Errorf("noc: snapshot version %d not supported (want %d)", v, snapshotVersion)
	}
	if fp := d.U64(); d.Err() == nil && fp != n.fingerprint() {
		return fmt.Errorf("noc: snapshot fingerprint mismatch: the checkpoint was taken under a different configuration")
	}
	n.now = d.I64()
	n.inFlightPackets = d.I64()
	n.mcDead = d.Bool()
	decodeStats(d, &n.stats)
	if len(n.stats.MsgsByDistance) != n.cfg.Mesh.W+n.cfg.Mesh.H-1 {
		d.Fail(fmt.Errorf("noc: snapshot distance histogram has %d buckets", len(n.stats.MsgsByDistance)))
	}
	if err := n.restorePlan(d); err != nil {
		return err
	}

	N := n.cfg.Mesh.N()
	for r := 0; r < N; r++ {
		if d.Bool() {
			row := d.I64Slice()
			if len(row) != N && d.Err() == nil {
				return fmt.Errorf("noc: snapshot frequency row %d has %d entries, want %d", r, len(row), N)
			}
			n.freq[r] = row
		} else {
			n.freq[r] = nil
		}
	}
	for r := 0; r < N; r++ {
		for p := 0; p < numPorts; p++ {
			n.linkUse[r][p] = d.I64()
		}
	}

	table, err := n.decodePackets(d)
	if err != nil {
		return err
	}
	pktAt := func(what string) *packet {
		i := d.Int()
		if i == -1 {
			return nil
		}
		if i < 0 || i >= len(table) {
			d.Fail(fmt.Errorf("noc: snapshot %s references packet %d of %d", what, i, len(table)))
			return nil
		}
		return table[i]
	}

	if err := n.restoreRouters(d, pktAt); err != nil {
		return err
	}
	if err := n.restoreWheel(d, pktAt); err != nil {
		return err
	}

	if hasMC := d.Bool(); d.Err() == nil && hasMC != (n.mc != nil) {
		return fmt.Errorf("noc: snapshot multicast-channel presence does not match the configuration")
	}
	if n.mc != nil {
		if err := n.restoreMC(d, pktAt); err != nil {
			return err
		}
	}
	if hasVCT := d.Bool(); d.Err() == nil && hasVCT != (n.vct != nil) {
		return fmt.Errorf("noc: snapshot VCT-table presence does not match the configuration")
	}
	if n.vct != nil {
		if err := n.restoreVCT(d); err != nil {
			return err
		}
	}
	hasFaults := d.Bool()
	if d.Err() == nil && !hasFaults && n.cfg.Fault.enabled() {
		return fmt.Errorf("noc: snapshot lacks fault state for a fault-enabled configuration")
	}
	if hasFaults && d.Err() == nil {
		if err := n.restoreFaults(d); err != nil {
			return err
		}
	} else {
		n.faults = nil
	}
	if hasInteg := d.Bool(); d.Err() == nil && hasInteg != (n.integ != nil) {
		return fmt.Errorf("noc: snapshot integrity-layer presence does not match the configuration")
	}
	if n.integ != nil {
		if err := n.restoreIntegrity(d); err != nil {
			return err
		}
	}
	n.wd.stage = d.Int()
	n.wd.lastAction = d.I64()
	if d.Err() == nil && (n.wd.stage < 0 || n.wd.stage > 3) {
		return fmt.Errorf("noc: snapshot watchdog stage %d out of range", n.wd.stage)
	}
	if err := d.Finish(); err != nil {
		return err
	}
	// Derived state: routing tables over the restored plan and fault
	// record (the escape tree was rebuilt inside restoreFaults), and the
	// active-NI list (not serialized; NI processing is per-router
	// independent, so rebuilding it in router order is equivalent).
	n.routes = buildRoutes(n)
	n.niActive = n.niActive[:0]
	for r := range n.routers {
		rs := &n.routers[r]
		rs.niListed = false
		if rs.nextPacket() != nil || len(rs.feedings) > 0 {
			rs.niListed = true
			n.niActive = append(n.niActive, r)
		}
	}
	return nil
}

// restorePlan reads and installs the runtime shortcut plan.
func (n *Network) restorePlan(d *checkpoint.Decoder) error {
	cnt := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	N := n.cfg.Mesh.N()
	if cnt < 0 || cnt > N {
		return fmt.Errorf("noc: snapshot has %d shortcut edges on a %d-router mesh", cnt, N)
	}
	edges := make([]shortcut.Edge, cnt)
	for i := range edges {
		edges[i] = shortcut.Edge{From: d.Int(), To: d.Int()}
	}
	if d.Err() != nil {
		return d.Err()
	}
	// Structural validation only (the fresh receiver has no fault record
	// yet); shared with Reconfigure.
	if err := n.validateShortcutSet(edges); err != nil {
		return fmt.Errorf("noc: snapshot shortcut plan invalid: %w", err)
	}
	for i := range n.shortcutFrom {
		n.shortcutFrom[i] = -1
		n.shortcutTo[i] = -1
		n.shortcutLat[i] = 0
	}
	for _, e := range edges {
		n.shortcutFrom[e.From] = e.To
		n.shortcutTo[e.To] = e.From
		n.shortcutLat[e.From] = n.shortcutLatency(e)
	}
	n.cfg.Shortcuts = edges
	return nil
}

func (n *Network) decodePackets(d *checkpoint.Decoder) ([]*packet, error) {
	cnt := d.Int()
	if d.Err() != nil {
		return nil, d.Err()
	}
	// Every table entry consumes at least ~40 bytes; a loose per-entry
	// floor of 8 keeps corrupt counts from allocating wildly.
	if cnt < 0 || cnt > d.Remaining()/8 {
		return nil, fmt.Errorf("noc: implausible snapshot packet count %d", cnt)
	}
	table := make([]*packet, cnt)
	for i := range table {
		p, err := n.decodePacket(d)
		if err != nil {
			return nil, err
		}
		table[i] = p
	}
	return table, nil
}

func (n *Network) decodeMsg(d *checkpoint.Decoder) Message {
	m := Message{
		Src:   d.Int(),
		Dst:   d.Int(),
		Class: Class(d.Int()),
	}
	m.Inject = d.I64()
	m.Multicast = d.Bool()
	m.DBV = d.U64()
	if d.Err() == nil {
		N := n.cfg.Mesh.N()
		if m.Src < 0 || m.Src >= N || m.Dst < 0 || m.Dst >= N {
			d.Fail(fmt.Errorf("noc: snapshot message endpoints %d->%d out of range", m.Src, m.Dst))
		}
		if m.Class < Request || m.Class > Fill {
			d.Fail(fmt.Errorf("noc: snapshot message class %d unknown", int(m.Class)))
		}
	}
	return m
}

func (n *Network) decodePacket(d *checkpoint.Decoder) (*packet, error) {
	p := &packet{msg: n.decodeMsg(d)}
	p.numFlits = d.Int()
	p.class = d.Int()
	p.hops = d.Int()
	p.ejected = d.Int()
	if d.Bool() {
		p.destSet = d.IntSlice()
	}
	p.vctSetup = d.Bool()
	p.deliverCore = d.Int()
	if d.Bool() {
		fwd := &mcForward{cluster: d.Int()}
		fwd.entry.msg = n.decodeMsg(d)
		fwd.entry.numFlits = d.Int()
		p.mcFwd = fwd
	}
	p.hasSeq = d.Bool()
	p.seq = d.U64()
	p.sum = d.U64()
	p.attempt = d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if p.attempt < 0 {
		return nil, fmt.Errorf("noc: snapshot packet attempt count %d negative", p.attempt)
	}
	if p.hasSeq && n.integ == nil {
		return nil, fmt.Errorf("noc: snapshot integrity-tagged packet without the integrity layer")
	}
	N := n.cfg.Mesh.N()
	switch {
	case p.numFlits < 1 || p.ejected < 0 || p.ejected > p.numFlits || p.hops < 0:
		return nil, fmt.Errorf("noc: snapshot packet flit accounting invalid (%d flits, %d ejected, %d hops)", p.numFlits, p.ejected, p.hops)
	case p.class != vcClassNormal && p.class != vcClassEscape:
		return nil, fmt.Errorf("noc: snapshot packet VC class %d unknown", p.class)
	case p.deliverCore < -1 || p.deliverCore >= 64:
		return nil, fmt.Errorf("noc: snapshot packet delivery core %d out of range", p.deliverCore)
	}
	if p.destSet != nil && len(p.destSet) == 0 {
		return nil, fmt.Errorf("noc: snapshot forking packet has an empty destination set")
	}
	for _, dst := range p.destSet {
		if dst < 0 || dst >= N {
			return nil, fmt.Errorf("noc: snapshot packet destination router %d out of range", dst)
		}
	}
	if p.mcFwd != nil {
		if n.mc == nil {
			return nil, fmt.Errorf("noc: snapshot central-bank forward without a multicast channel")
		}
		if p.mcFwd.cluster < 0 || p.mcFwd.cluster >= len(n.mc.queues) {
			return nil, fmt.Errorf("noc: snapshot central-bank forward to cluster %d of %d", p.mcFwd.cluster, len(n.mc.queues))
		}
		if p.mcFwd.entry.numFlits < 1 {
			return nil, fmt.Errorf("noc: snapshot central-bank forward carries %d flits", p.mcFwd.entry.numFlits)
		}
	}
	return p, nil
}

// vcRef resolves a (port, idx) pair within router rs, bounds-checked.
func (n *Network) vcRef(d *checkpoint.Decoder, rs *routerState, what string) *vcState {
	port := d.Int()
	idx := d.Int()
	if d.Err() != nil {
		return nil
	}
	if port < 0 || port >= numPorts || idx < 0 || idx >= len(rs.vcs[port]) {
		d.Fail(fmt.Errorf("noc: snapshot %s references VC %d/%d at router %d", what, port, idx, rs.id))
		return nil
	}
	return rs.vcs[port][idx]
}

func (n *Network) restoreRouters(d *checkpoint.Decoder, pktAt func(string) *packet) error {
	for r := range n.routers {
		rs := &n.routers[r]
		qn := d.Int()
		if d.Err() != nil || qn < 0 || qn > d.Remaining()/8 {
			d.Fail(fmt.Errorf("noc: implausible NI queue length %d", qn))
			return d.Err()
		}
		rs.queue = rs.queue[:0]
		rs.qhead = 0
		for i := 0; i < qn; i++ {
			if p := pktAt("NI queue"); p != nil {
				rs.queue = append(rs.queue, p)
			}
		}
		rn := d.Int()
		if d.Err() != nil || rn < 0 || rn > d.Remaining()/8 {
			d.Fail(fmt.Errorf("noc: implausible reinjection queue length %d", rn))
			return d.Err()
		}
		rs.reinject = rs.reinject[:0]
		rs.rhead = 0
		for i := 0; i < rn; i++ {
			if p := pktAt("reinjection queue"); p != nil {
				rs.reinject = append(rs.reinject, p)
			}
		}
		rs.rrOffset = d.Int()
		fn := d.Int()
		if d.Err() != nil || fn < 0 || fn > n.cfg.LocalSpeedup {
			d.Fail(fmt.Errorf("noc: snapshot has %d NI feedings at router %d", fn, r))
			return d.Err()
		}
		rs.feedings = rs.feedings[:0]
		for i := 0; i < fn; i++ {
			vc := n.vcRef(d, rs, "NI feeding")
			fed := d.Int()
			if d.Err() != nil {
				return d.Err()
			}
			if vc.pkt == nil && vc.port != portLocal {
				// The pkt pointer is restored below; only structural checks
				// here.
			}
			rs.feedings = append(rs.feedings, feeding{vc: vc, fed: fed})
		}
		an := d.Int()
		if d.Err() != nil || an < 0 || an > d.Remaining()/8 {
			d.Fail(fmt.Errorf("noc: implausible active-list length %d", an))
			return d.Err()
		}
		rs.active = rs.active[:0]
		for i := 0; i < an; i++ {
			vc := n.vcRef(d, rs, "active list")
			if d.Err() != nil {
				return d.Err()
			}
			if vc.inActive {
				return fmt.Errorf("noc: snapshot lists VC %d/%d at router %d active twice", vc.port, vc.idx, r)
			}
			vc.inActive = true
			rs.active = append(rs.active, vc)
		}
		for p := 0; p < numPorts; p++ {
			for _, vc := range rs.vcs[p] {
				if err := n.restoreVC(d, vc, pktAt); err != nil {
					return err
				}
			}
		}
	}
	return d.Err()
}

func (n *Network) restoreVC(d *checkpoint.Decoder, vc *vcState, pktAt func(string) *packet) error {
	// Reset to idle first; every field is then overwritten or valid.
	inActive := vc.inActive // set by the active-list pass
	*vc = vcState{
		router: vc.router, port: vc.port, idx: vc.idx, class: vc.class,
		buf: vc.buf, inActive: inActive, vaFirstFail: -1,
		cands: vc.cands[:0],
	}
	if !d.Bool() {
		return d.Err()
	}
	vc.pkt = pktAt("VC")
	vc.reserved = d.Bool()
	vc.incoming = d.Int()
	cnt := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if vc.incoming < 0 || cnt < 0 || cnt > cap(vc.buf) || vc.incoming+cnt > cap(vc.buf) {
		return fmt.Errorf("noc: snapshot VC buffer accounting invalid (%d buffered, %d incoming, depth %d)", cnt, vc.incoming, cap(vc.buf))
	}
	vc.head = 0
	vc.count = 0
	for i := 0; i < cnt; i++ {
		s := flitSlot{eligibleAt: d.I64(), isHead: d.Bool(), isTail: d.Bool()}
		if d.Err() != nil {
			return d.Err()
		}
		vc.push(s)
	}
	phase := vcPhase(d.Byte())
	if d.Err() == nil && (phase < phaseIdle || phase > phaseActive) {
		return fmt.Errorf("noc: snapshot VC phase %d unknown", int(phase))
	}
	vc.phase = phase
	cn := d.Int()
	if d.Err() != nil || cn < 0 || cn > numPorts {
		d.Fail(fmt.Errorf("noc: snapshot VC has %d adaptive candidates", cn))
		return d.Err()
	}
	for i := 0; i < cn; i++ {
		c := d.Int()
		if d.Err() == nil && (c < 0 || c >= numPorts) {
			return fmt.Errorf("noc: snapshot adaptive candidate port %d invalid", c)
		}
		vc.cands = append(vc.cands, int8(c))
	}
	vc.arrivedAt = d.I64()
	vc.rcExtra = d.I64()
	vc.vaFirstFail = d.I64()
	vc.outPort = d.Int()
	if d.Err() == nil && (vc.outPort < 0 || vc.outPort >= numPorts) {
		return fmt.Errorf("noc: snapshot VC output port %d invalid", vc.outPort)
	}
	or := d.Int()
	if or != -1 {
		if d.Err() == nil && (or < 0 || or >= len(n.routers)) {
			return fmt.Errorf("noc: snapshot downstream VC router %d out of range", or)
		}
		if d.Err() == nil {
			vc.outVC = n.vcRef(d, &n.routers[or], "downstream VC")
		}
	}
	vc.sent = d.Int()
	vc.retries = d.Int()
	if d.Err() == nil && (vc.sent < 0 || vc.retries < 0) {
		return fmt.Errorf("noc: snapshot VC progress counters negative")
	}
	vc.leaked = d.Int()
	vc.stuck = d.Bool()
	if d.Err() == nil && (vc.leaked < 0 || vc.count+vc.incoming+vc.leaked > cap(vc.buf)) {
		return fmt.Errorf("noc: snapshot VC credit accounting invalid (%d buffered, %d incoming, %d leaked, depth %d)",
			vc.count, vc.incoming, vc.leaked, cap(vc.buf))
	}
	return d.Err()
}

func (n *Network) restoreWheel(d *checkpoint.Decoder, pktAt func(string) *packet) error {
	for s := 0; s < wheelSize; s++ {
		cnt := d.Int()
		if d.Err() != nil || cnt < 0 || cnt > d.Remaining()/8 {
			d.Fail(fmt.Errorf("noc: implausible wheel slot length %d", cnt))
			return d.Err()
		}
		n.wheel[s] = n.wheel[s][:0]
		for i := 0; i < cnt; i++ {
			tr := d.Int()
			if d.Err() == nil && (tr < 0 || tr >= len(n.routers)) {
				return fmt.Errorf("noc: snapshot wheel transfer targets router %d", tr)
			}
			if d.Err() != nil {
				return d.Err()
			}
			to := n.vcRef(d, &n.routers[tr], "wheel transfer")
			t := transfer{to: to, pkt: pktAt("wheel transfer")}
			t.isHead = d.Bool()
			t.isTail = d.Bool()
			if d.Err() != nil {
				return d.Err()
			}
			if t.isHead && t.pkt == nil {
				return fmt.Errorf("noc: snapshot head-flit transfer carries no packet")
			}
			n.wheel[s] = append(n.wheel[s], t)
		}
	}
	return d.Err()
}

func (n *Network) restoreMC(d *checkpoint.Decoder, pktAt func(string) *packet) error {
	mc := n.mc
	qn := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if qn != len(mc.queues) {
		return fmt.Errorf("noc: snapshot has %d multicast clusters, want %d", qn, len(mc.queues))
	}
	decodeEntry := func() (mcEntry, error) {
		e := mcEntry{msg: n.decodeMsg(d)}
		e.numFlits = d.Int()
		if d.Err() == nil && e.numFlits < 1 {
			return e, fmt.Errorf("noc: snapshot multicast entry carries %d flits", e.numFlits)
		}
		return e, d.Err()
	}
	for c := range mc.queues {
		en := d.Int()
		if d.Err() != nil || en < 0 || en > d.Remaining()/8 {
			d.Fail(fmt.Errorf("noc: implausible multicast queue length %d", en))
			return d.Err()
		}
		mc.queues[c] = mc.queues[c][:0]
		for i := 0; i < en; i++ {
			entry, err := decodeEntry()
			if err != nil {
				return err
			}
			mc.queues[c] = append(mc.queues[c], entry)
		}
	}
	mc.owner = d.Int()
	mc.epochEnd = d.I64()
	if d.Err() == nil && (mc.owner < -1 || mc.owner >= len(mc.queues)) {
		return fmt.Errorf("noc: snapshot multicast band owner %d out of range", mc.owner)
	}
	mc.cur = nil
	if d.Bool() {
		entry, err := decodeEntry()
		if err != nil {
			return err
		}
		mc.cur = &entry
	}
	mc.flitsSent = d.Int()
	mc.activeRx = d.IntSlice()
	for _, rx := range mc.activeRx {
		if rx < 0 || rx >= n.cfg.Mesh.N() {
			return fmt.Errorf("noc: snapshot multicast receiver %d out of range", rx)
		}
	}
	pn := d.Int()
	if d.Err() != nil || pn < 0 || pn > d.Remaining()/8 {
		d.Fail(fmt.Errorf("noc: implausible pending-delivery count %d", pn))
		return d.Err()
	}
	mc.pendingLocal = mc.pendingLocal[:0]
	for i := 0; i < pn; i++ {
		ld := localDelivery{at: d.I64(), pkt: pktAt("local delivery")}
		if d.Err() != nil {
			return d.Err()
		}
		if ld.pkt == nil {
			return fmt.Errorf("noc: snapshot local delivery carries no packet")
		}
		mc.pendingLocal = append(mc.pendingLocal, ld)
	}
	return d.Err()
}

func (n *Network) restoreVCT(d *checkpoint.Decoder) error {
	cnt := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if cnt < 0 || cnt > n.vct.size {
		return fmt.Errorf("noc: snapshot VCT table holds %d trees, capacity %d", cnt, n.vct.size)
	}
	n.vct.fifo = n.vct.fifo[:0]
	n.vct.keys = make(map[vctKey]bool, cnt)
	for i := 0; i < cnt; i++ {
		k := vctKey{src: d.Int(), dbv: d.U64()}
		if d.Err() != nil {
			return d.Err()
		}
		if n.vct.keys[k] {
			return fmt.Errorf("noc: snapshot VCT table repeats a tree")
		}
		n.vct.keys[k] = true
		n.vct.fifo = append(n.vct.fifo, k)
	}
	return nil
}

func (n *Network) restoreFaults(d *checkpoint.Decoder) error {
	fs := n.ensureFaults()
	blob := d.BytesField()
	if d.Err() != nil {
		return d.Err()
	}
	if err := fs.rng.UnmarshalBinary(blob); err != nil {
		return fmt.Errorf("noc: snapshot fault RNG state: %w", err)
	}
	N := n.cfg.Mesh.N()
	for i := 0; i < N; i++ {
		fs.shortcutDead[i] = d.Bool()
	}
	for i := 0; i < N; i++ {
		fs.failedTx[i] = d.Bool()
	}
	for i := 0; i < N; i++ {
		fs.failedRx[i] = d.Bool()
	}
	en := d.Int()
	if d.Err() != nil || en < 0 || en > d.Remaining()/8 {
		d.Fail(fmt.Errorf("noc: implausible failed-edge count %d", en))
		return d.Err()
	}
	fs.failedEdges = fs.failedEdges[:0]
	for i := 0; i < en; i++ {
		e := shortcut.Edge{From: d.Int(), To: d.Int()}
		if d.Err() == nil && (e.From < 0 || e.From >= N || e.To < 0 || e.To >= N) {
			return fmt.Errorf("noc: snapshot failed edge %v out of range", e)
		}
		fs.failedEdges = append(fs.failedEdges, e)
	}
	deadLinks := 0
	for r := 0; r < N; r++ {
		for p := 0; p < numPorts; p++ {
			fs.meshDead[r][p] = d.Bool()
			if fs.meshDead[r][p] && p <= portWest {
				deadLinks++
			}
		}
	}
	fs.meshFaults = d.Int()
	if d.Err() == nil && (fs.meshFaults < 0 || fs.meshFaults*2 != deadLinks) {
		return fmt.Errorf("noc: snapshot mesh-fault count %d does not match %d dead port marks", fs.meshFaults, deadLinks)
	}
	kn := d.Int()
	if d.Err() != nil || kn < 0 || kn > d.Remaining()/8 {
		d.Fail(fmt.Errorf("noc: implausible pending-kill count %d", kn))
		return d.Err()
	}
	fs.pendingKills = fs.pendingKills[:0]
	for i := 0; i < kn; i++ {
		k := [2]int{d.Int(), d.Int()}
		if d.Err() == nil && (k[0] < 0 || k[0] >= N || k[1] < 0 || k[1] >= numPorts) {
			return fmt.Errorf("noc: snapshot pending kill %v out of range", k)
		}
		fs.pendingKills = append(fs.pendingKills, k)
	}
	if d.Err() != nil {
		return d.Err()
	}
	// Per-band death and hardware records must agree with the installed
	// plan enough for routing to stay sane; the determinism-bearing check
	// is mesh connectivity, which rebuildEscape asserts fatally — verify
	// first so a corrupt snapshot errors instead of panicking.
	if fs.meshFaults > 0 {
		if !n.meshConnected() {
			return fmt.Errorf("noc: snapshot mesh-fault record disconnects the mesh")
		}
		fs.rebuildEscape(n)
	} else {
		fs.escapeNext = nil
	}
	return nil
}

// meshConnected reports whether the surviving mesh reaches every router.
func (n *Network) meshConnected() bool {
	N := n.cfg.Mesh.N()
	seen := make([]bool, N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := portNorth; p <= portWest; p++ {
			w := neighborThrough(n, v, p)
			if w < 0 || seen[w] || n.faults.meshDead[v][p] {
				continue
			}
			seen[w] = true
			count++
			stack = append(stack, w)
		}
	}
	return count == N
}

func decodeStats(d *checkpoint.Decoder, s *Stats) {
	s.Cycles = d.I64()
	s.PacketsInjected = d.I64()
	s.PacketsEjected = d.I64()
	s.FlitsInjected = d.I64()
	s.FlitsEjected = d.I64()
	s.PacketLatency = d.I64()
	s.FlitLatency = d.I64()
	s.HopSum = d.I64()
	s.RouterTraversals = d.I64()
	s.MeshFlitHops = d.I64()
	s.LocalFlitHops = d.I64()
	s.WireShortcutFlitMM = d.F64()
	s.RFShortcutBits = d.I64()
	s.RFMulticastBits = d.I64()
	s.RFMulticastRxBits = d.I64()
	s.RFGatedRxFlits = d.I64()
	s.MulticastMessages = d.I64()
	s.MulticastDeliveries = d.I64()
	s.MulticastLatency = d.I64()
	s.MulticastFlitsDelivered = d.I64()
	s.MulticastFlitLatency = d.I64()
	s.VCTHits = d.I64()
	s.VCTMisses = d.I64()
	s.EscapeSwitches = d.I64()
	s.FlitsCorrupted = d.I64()
	s.Retransmits = d.I64()
	s.LinkFailures = d.I64()
	s.DegradedReroutes = d.I64()
	s.Reconfigurations = d.I64()
	s.ReconfigUpdateCycles = d.I64()
	s.MisroutedPackets = d.I64()
	s.MisdeliveredPackets = d.I64()
	s.DuplicatesInjected = d.I64()
	s.CreditLeaks = d.I64()
	s.StuckVCs = d.I64()
	s.DuplicatesDropped = d.I64()
	s.ChecksumFailures = d.I64()
	s.IntegrityRetransmits = d.I64()
	s.PacketsLost = d.I64()
	s.WatchdogRecoveries = d.I64()
	s.RecoveryCreditRepairs = d.I64()
	s.RecoveryVCUnsticks = d.I64()
	s.RecoveryEscapes = d.I64()
	s.RecoveryReinjections = d.I64()
	s.FlitsScrubbed = d.I64()
	s.MsgsByDistance = d.I64Slice()
}
