package noc

// Packet freelist. Ownership rules (see DESIGN.md, "Pooling ownership"):
// a *packet has exactly one owner at any time — an NI queue slot, the
// VC/wheel ensemble carrying its flits (released jointly at tail
// ejection), the RF channel's pending local-delivery list, or the pool.
// freePacket may only be called by the path that just dropped the last
// live reference: retire (all branches), an integrity reject, the
// watchdog scrub, RF local-delivery retirement, or a transient forking
// parent. Allocation and recycling both happen only in the serial
// phases of a cycle, so the freelist needs no locking.

// newPacket returns a zeroed packet (deliverCore -1, the "plain
// unicast" sentinel) from the pool, or a fresh one.
func (n *Network) newPacket() *packet {
	k := len(n.pktPool) - 1
	if k < 0 {
		return &packet{deliverCore: -1}
	}
	p := n.pktPool[k]
	n.pktPool[k] = nil
	n.pktPool = n.pktPool[:k]
	*p = packet{deliverCore: -1}
	return p
}

// freePacket recycles a retired packet, reclaiming its destination-set
// backing array. Double frees corrupt the pool silently (two owners of
// one packet), so they panic instead.
func (n *Network) freePacket(p *packet) {
	if p.pooled {
		panic("noc: double free of pooled packet")
	}
	p.pooled = true
	if p.destSet != nil {
		n.freeDestSet(p.destSet)
		p.destSet = nil
	}
	p.mcFwd = nil
	n.pktPool = append(n.pktPool, p)
}

// newDestSet returns an empty non-nil destination-set slice, reusing a
// pooled backing array when one is available. Non-nil matters: a nil
// destSet marks a plain unicast, an allocated one a forking multicast.
func (n *Network) newDestSet() []int {
	k := len(n.dsPool) - 1
	if k < 0 {
		return make([]int, 0, 8)
	}
	s := n.dsPool[k]
	n.dsPool[k] = nil
	n.dsPool = n.dsPool[:k]
	return s[:0]
}

func (n *Network) freeDestSet(s []int) {
	n.dsPool = append(n.dsPool, s)
}
