package noc

// This file implements the fault-injection and recovery subsystem of the
// router pipeline: transient flit corruption on mesh links and RF-I
// shortcut bands (caught by per-flit CRC, repaired by NACK + bounded
// retransmission with exponential backoff at the sender VC), and
// permanent link failures (declared directly, or after a retry budget is
// exhausted). A failed link triggers graceful degradation: the routing
// tables are rebuilt without the dead edge, in-flight packets that had
// chosen it are re-routed, and — when mesh links die — the escape class
// switches from XY to deadlock-free up*/down* routing on a BFS spanning
// tree of the surviving mesh. The paper's escape-VC argument is exactly
// why this is safe: shortcuts are pure acceleration, and the mesh (or a
// tree inside it) remains a correct, deadlock-free fallback.
//
// Failure semantics are packet-granular: a wormhole packet that has
// already moved flits onto a link when the link is declared dead drains
// over it (the link degrades for new allocations first), so no flit is
// ever dropped and exactly-once delivery is preserved. The schedule and
// orchestration layer lives in internal/fault; this file holds only the
// pipeline mechanics so package noc stays dependency-free.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/shortcut"
)

// FaultConfig parameterizes the transient-fault model. The zero value
// disables corruption draws entirely (the hot path then pays a single
// nil-pointer check); permanent kills via KillShortcut/KillMeshLink work
// regardless.
type FaultConfig struct {
	// MeshBER is the per-flit corruption probability on inter-router
	// mesh links (a flit-error rate: the probability that a transmitted
	// flit fails its CRC at the receiver and must be retransmitted).
	MeshBER float64

	// RFBER is the per-flit corruption probability on RF-I shortcut
	// bands. The analog overlay is the fragile layer, so experiments
	// typically set RFBER well above MeshBER.
	RFBER float64

	// Adversarial fault modes. Each is a per-event probability drawn from
	// the same seeded RNG as the corruption model; all four are
	// conservation-accounted so Network.Audit balances throughout.
	//
	// MisrouteRate is the per-route-computation probability that a plain
	// unicast packet is granted a wrong-but-live output port instead of
	// its computed one. The packet is diverted whole (never sheared
	// mid-wormhole) and the next router re-routes it by destination, so
	// misrouting costs latency, not correctness.
	MisrouteRate float64

	// MisdeliverRate is the probability, per head flit arriving over an
	// RF shortcut band, that the receiver mis-tunes and ejects the packet
	// locally at the wrong router. Detection and retransmission are the
	// integrity layer's job; Config.Validate refuses this rate without
	// Config.Integrity.
	MisdeliverRate float64

	// DuplicateRate is the probability, per head flit transmitted onto an
	// RF shortcut band, that the band re-triggers and a second copy of
	// the packet materializes at the shortcut's destination router. The
	// copy carries the original's sequence number, so receiver-side dedup
	// drops whichever arrives second. Requires Config.Integrity.
	DuplicateRate float64

	// CreditLeakRate is the per-cycle probability that one randomly
	// chosen VC silently loses a buffer credit (its effective capacity
	// shrinks until watchdog stage 1 repairs it).
	CreditLeakRate float64

	// StuckVCRate is the per-cycle probability that one randomly chosen
	// normal-class VC wedges out of arbitration (it still accepts flits
	// but never advances or grants until watchdog stage 1 unsticks it).
	StuckVCRate float64

	// RetryLimit is how many consecutive corrupted transmissions of one
	// packet's flit stream a link sustains before being declared
	// permanently dead, and also the end-to-end attempt budget of the
	// integrity layer's NACK-style retransmissions. Default 8.
	RetryLimit int

	// BackoffBase is the stall, in cycles, before the first
	// retransmission (the NACK round trip: link traversal back plus CRC
	// check). Subsequent retries double it up to BackoffMax.
	// Defaults: base 4, max 256.
	BackoffBase int64
	BackoffMax  int64

	// Seed makes the corruption draws reproducible. Default 1.
	Seed int64
}

// enabled reports whether any probabilistic fault draws are configured.
func (f FaultConfig) enabled() bool {
	return f.MeshBER > 0 || f.RFBER > 0 ||
		f.MisrouteRate > 0 || f.MisdeliverRate > 0 || f.DuplicateRate > 0 ||
		f.CreditLeakRate > 0 || f.StuckVCRate > 0
}

// withDefaults fills the zero knobs of an enabled config.
func (f FaultConfig) withDefaults() FaultConfig {
	if f.RetryLimit == 0 {
		f.RetryLimit = 8
	}
	if f.BackoffBase == 0 {
		f.BackoffBase = 4
	}
	if f.BackoffMax == 0 {
		f.BackoffMax = 256
	}
	if f.Seed == 0 {
		f.Seed = 1
	}
	return f
}

// faultState is the network's live fault bookkeeping, created lazily the
// first time faults are configured or a link is killed.
type faultState struct {
	cfg FaultConfig
	rng *rng.Rand

	// shortcutDead[r] marks the current plan's outbound shortcut at r
	// dead; cleared by Reconfigure (the new plan is validated to avoid
	// failed endpoints).
	shortcutDead []bool

	// failedTx/failedRx mark RF endpoints whose hardware failed: once a
	// band dies, neither endpoint mixer may appear in a replanned set.
	failedTx []bool
	failedRx []bool

	// failedEdges accumulates every shortcut edge declared dead, across
	// reconfigurations, for reporting and replanning.
	failedEdges []shortcut.Edge

	// meshDead[r][p] marks the mesh output port p of router r dead.
	// Physical links fail whole: both directions are marked together.
	meshDead   [][numPorts]bool
	meshFaults int // dead physical mesh links

	// escapeNext[d][r] is the escape-class output port at router r
	// toward destination d, routed on a BFS spanning tree of the
	// surviving mesh. Built only while meshFaults > 0 (with a healthy
	// mesh the escape class routes XY with no table at all).
	escapeNext [][]int8

	// pendingKills are retry-budget link deaths detected mid-arbitration
	// and applied at the end of the cycle: declaring a link dead re-routes
	// in-flight packets, which must not happen while the switch-allocation
	// grant loop is still walking them.
	pendingKills [][2]int
}

// ensureFaults installs fault state on demand.
func (n *Network) ensureFaults() *faultState {
	if n.faults == nil {
		cfg := n.cfg.Fault.withDefaults()
		n.faults = &faultState{
			cfg:          cfg,
			rng:          rng.New(cfg.Seed),
			shortcutDead: make([]bool, n.cfg.Mesh.N()),
			failedTx:     make([]bool, n.cfg.Mesh.N()),
			failedRx:     make([]bool, n.cfg.Mesh.N()),
			meshDead:     make([][numPorts]bool, n.cfg.Mesh.N()),
		}
	}
	return n.faults
}

// corrupts draws the transient-corruption event for one flit about to
// leave router r through port p. Flits crossing an already-dead link are
// a draining wormhole packet and always pass (packet-granular failure).
func (fs *faultState) corrupts(r, p int) bool {
	var ber float64
	if p == portRF {
		if fs.shortcutDead[r] {
			return false
		}
		ber = fs.cfg.RFBER
	} else {
		if fs.meshDead[r][p] {
			return false
		}
		ber = fs.cfg.MeshBER
	}
	return ber > 0 && fs.rng.Float64() < ber
}

// backoff returns the retransmission stall for the given attempt number
// (1-based): BackoffBase doubling per attempt, capped at BackoffMax.
func (fs *faultState) backoff(attempt int) int64 {
	d := fs.cfg.BackoffBase
	for i := 1; i < attempt && d < fs.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > fs.cfg.BackoffMax {
		d = fs.cfg.BackoffMax
	}
	return d
}

// retransmit handles a corrupted transmission from vc: the flit stays at
// the sender (CRC failed downstream, NACK returned), pays an
// exponential-backoff stall, and after RetryLimit consecutive failures
// the link is declared permanently dead.
func (n *Network) retransmit(rs *routerState, vc *vcState) {
	fs := n.faults
	n.stats.FlitsCorrupted++
	for _, o := range n.observers {
		o.FlitCorrupted(rs.id, vc.outPort, n.now)
	}
	vc.retries++
	if vc.retries >= fs.cfg.RetryLimit {
		if vc.outPort == portRF || n.meshKillable(rs.id, vc.outPort) {
			// Budget exhausted: the link dies. The declaration is
			// deferred to the end of the cycle (the grant loop may still
			// hold references to VCs the reroute would reset); the flit
			// stays put and either re-routes with its packet or drains
			// over the then-dead link.
			fs.queueKill(rs.id, vc.outPort)
			if f := vc.front(); f != nil {
				f.eligibleAt = n.now + 1
			}
			return
		}
		// Killing this link would disconnect the mesh: it must stay up
		// (delivery beats declaring death), so the budget resets and the
		// sender keeps retrying at maximum backoff.
		vc.retries = 0
	}
	n.stats.Retransmits++
	delay := fs.backoff(vc.retries)
	if f := vc.front(); f != nil {
		f.eligibleAt = n.now + delay
	}
	for _, o := range n.observers {
		o.Retransmit(rs.id, vc.outPort, vc.retries, n.now)
	}
}

// queueKill records a retry-budget link death for application at the end
// of the current cycle (idempotent per link).
func (fs *faultState) queueKill(r, port int) {
	for _, k := range fs.pendingKills {
		if k[0] == r && k[1] == port {
			return
		}
	}
	fs.pendingKills = append(fs.pendingKills, [2]int{r, port})
}

// applyPendingKills declares queued link deaths; called from Step once
// the cycle's arbitration has fully completed.
func (n *Network) applyPendingKills() {
	fs := n.faults
	kills := fs.pendingKills
	fs.pendingKills = fs.pendingKills[:0]
	for _, k := range kills {
		if n.linkDead(k[0], k[1]) {
			continue
		}
		// Re-check connectivity: an earlier kill in this batch may have
		// made this one disconnecting.
		if k[1] != portRF && !n.meshKillable(k[0], k[1]) {
			continue
		}
		n.failLink(k[0], k[1])
	}
}

// KillShortcut permanently fails the outbound RF-I shortcut band at
// router from: the band's routing entries are invalidated, in-flight
// packets fall back to the mesh, and both endpoint mixers are excluded
// from future replans. Safe between cycles (e.g. from Observer.CycleEnd);
// never call it from inside a Step.
func (n *Network) KillShortcut(from int) error {
	if from < 0 || from >= len(n.shortcutFrom) {
		return fmt.Errorf("noc: kill shortcut: unknown router index %d", from)
	}
	if n.shortcutFrom[from] < 0 {
		return fmt.Errorf("noc: kill shortcut: router %d has no outbound shortcut", from)
	}
	if n.ensureFaults().shortcutDead[from] {
		return fmt.Errorf("noc: kill shortcut: shortcut at router %d already failed", from)
	}
	n.failLink(from, portRF)
	return nil
}

// KillMeshLink permanently fails the physical mesh link between adjacent
// routers a and b (both directions). It refuses to disconnect the mesh:
// graceful degradation guarantees delivery only while a fallback path
// exists. Safe between cycles, like KillShortcut.
func (n *Network) KillMeshLink(a, b int) error {
	N := n.cfg.Mesh.N()
	if a < 0 || a >= N || b < 0 || b >= N {
		return fmt.Errorf("noc: kill mesh link: unknown router index %d-%d", a, b)
	}
	port := -1
	for p := portNorth; p <= portWest; p++ {
		if neighborThrough(n, a, p) == b {
			port = p
			break
		}
	}
	if port < 0 {
		return fmt.Errorf("noc: kill mesh link: routers %d and %d are not adjacent", a, b)
	}
	if n.ensureFaults().meshDead[a][port] {
		return fmt.Errorf("noc: kill mesh link: link %d-%d already failed", a, b)
	}
	if !n.meshKillable(a, port) {
		return fmt.Errorf("noc: kill mesh link: removing %d-%d would disconnect the mesh", a, b)
	}
	n.failLink(a, port)
	return nil
}

// KillMulticastBand permanently fails the RF multicast band. Queued and
// future multicasts fall back to unicast expansion over the mesh; the
// transmission in flight (if any) completes (packet-granular failure).
func (n *Network) KillMulticastBand() error {
	if n.mc == nil {
		return fmt.Errorf("noc: kill multicast band: no multicast band configured")
	}
	if n.mcDead {
		return fmt.Errorf("noc: kill multicast band: band already failed")
	}
	n.ensureFaults()
	n.mcDead = true
	n.stats.LinkFailures++
	for _, o := range n.observers {
		o.LinkFailed(-1, portRF, n.now)
	}
	n.mc.failover()
	return nil
}

// meshKillable reports whether the mesh link leaving r through port can
// die without disconnecting the surviving mesh.
func (n *Network) meshKillable(r, port int) bool {
	nb := neighborThrough(n, r, port)
	if nb < 0 {
		return false
	}
	m := n.cfg.Mesh
	N := m.N()
	blocked := func(from, p int) bool {
		if n.faults != nil && n.faults.meshDead[from][p] {
			return true
		}
		return from == r && p == port || from == nb && p == oppositePort(port)
	}
	seen := make([]bool, N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := portNorth; p <= portWest; p++ {
			w := neighborThrough(n, v, p)
			if w < 0 || seen[w] || blocked(v, p) {
				continue
			}
			seen[w] = true
			count++
			stack = append(stack, w)
		}
	}
	return count == N
}

// failLink marks a link dead and runs the degradation sequence: fire
// LinkFailed, rebuild the routing tables minus the dead edge (and the
// tree escape table for mesh faults), then re-route in-flight packets
// that had chosen the link.
func (n *Network) failLink(r, port int) {
	fs := n.ensureFaults()
	if port == portRF {
		to := n.shortcutFrom[r]
		fs.shortcutDead[r] = true
		fs.failedTx[r] = true
		fs.failedRx[to] = true
		fs.failedEdges = append(fs.failedEdges, shortcut.Edge{From: r, To: to})
	} else {
		nb := neighborThrough(n, r, port)
		fs.meshDead[r][port] = true
		fs.meshDead[nb][oppositePort(port)] = true
		fs.meshFaults++
		fs.rebuildEscape(n)
	}
	n.stats.LinkFailures++
	for _, o := range n.observers {
		o.LinkFailed(r, port, n.now)
	}
	n.routes = buildRoutes(n)
	n.rerouteInFlight()
}

// rerouteInFlight resets every in-flight packet that had committed to a
// now-dead link (or holds a stale adaptive candidate set referencing
// one) back to route computation, releasing any downstream VC it had
// reserved. Packets that already moved flits onto the dead link are left
// to drain over it.
func (n *Network) rerouteInFlight() {
	fs := n.faults
	for r := range n.routers {
		rs := &n.routers[r]
		for p := 0; p < numPorts; p++ {
			for _, vc := range rs.vcs[p] {
				if vc.pkt == nil || (vc.phase != phaseVA && vc.phase != phaseActive) {
					continue
				}
				if !fs.stale(r, vc) {
					continue
				}
				if vc.phase == phaseActive && vc.sent > 0 {
					continue // mid-wormhole: drains over the dying link
				}
				if vc.outVC != nil {
					vc.outVC.reserved = false
					vc.outVC = nil
				}
				vc.phase = phaseRC
				vc.arrivedAt = n.now
				vc.vaFirstFail = -1
				vc.retries = 0
				vc.cands = vc.cands[:0]
				rs.enlist(vc)
				n.stats.DegradedReroutes++
				for _, o := range n.observers {
					o.DegradedReroute(r, vc.outPort, n.now)
				}
			}
		}
	}
}

// stale reports whether vc's routing decision references a dead link.
func (fs *faultState) stale(r int, vc *vcState) bool {
	dead := func(p int) bool {
		if p == portRF {
			return fs.shortcutDead[r]
		}
		return p != portLocal && fs.meshDead[r][p]
	}
	if dead(vc.outPort) {
		return true
	}
	for _, c := range vc.cands {
		if dead(int(c)) {
			return true
		}
	}
	return false
}

// linkDead reports whether output port p at router r is failed.
func (n *Network) linkDead(r, p int) bool {
	fs := n.faults
	if fs == nil {
		return false
	}
	if p == portRF {
		return fs.shortcutDead[r]
	}
	return fs.meshDead[r][p]
}

// liveShortcutEdges returns the configured shortcut set minus failed
// bands (what the routing tables may use).
func (n *Network) liveShortcutEdges() []shortcut.Edge {
	if n.faults == nil {
		return n.cfg.Shortcuts
	}
	live := make([]shortcut.Edge, 0, len(n.cfg.Shortcuts))
	for _, e := range n.cfg.Shortcuts {
		if !n.faults.shortcutDead[e.From] {
			live = append(live, e)
		}
	}
	return live
}

// meshGraph returns the surviving conventional mesh as a digraph.
func (n *Network) meshGraph() *graph.Digraph {
	g := n.cfg.Mesh.Graph()
	fs := n.faults
	if fs == nil || fs.meshFaults == 0 {
		return g
	}
	for r := range fs.meshDead {
		for p := portNorth; p <= portWest; p++ {
			if fs.meshDead[r][p] {
				g.RemoveEdge(r, neighborThrough(n, r, p))
			}
		}
	}
	return g
}

// rebuildEscape recomputes the escape-class routing table as up*/down*
// routing on a BFS spanning tree of the surviving mesh, rooted at router
// 0. Routing restricted to a tree is deadlock-free (every route climbs
// toward the root, then descends, so the channel dependency graph is
// acyclic), which preserves the escape class as a valid Duato escape
// layer even when XY paths are severed.
func (fs *faultState) rebuildEscape(n *Network) {
	m := n.cfg.Mesh
	N := m.N()
	// BFS from 0 over live mesh links, recording tree adjacency.
	type hop struct {
		to   int
		port int8
	}
	treeAdj := make([][]hop, N)
	seen := make([]bool, N)
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for p := portNorth; p <= portWest; p++ {
			w := neighborThrough(n, v, p)
			if w < 0 || seen[w] || fs.meshDead[v][p] {
				continue
			}
			seen[w] = true
			treeAdj[v] = append(treeAdj[v], hop{to: w, port: int8(p)})
			treeAdj[w] = append(treeAdj[w], hop{to: v, port: int8(oppositePort(p))})
			queue = append(queue, w)
		}
	}
	for v, ok := range seen {
		if !ok {
			panic(fmt.Sprintf("noc: mesh disconnected at router %d (kill should have been refused)", v))
		}
	}
	// Per destination, BFS over tree edges yields the next-hop port at
	// every router (the unique tree path).
	fs.escapeNext = make([][]int8, N)
	for d := 0; d < N; d++ {
		next := make([]int8, N)
		next[d] = int8(portLocal)
		visited := make([]bool, N)
		visited[d] = true
		queue = queue[:0]
		queue = append(queue, d)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, h := range treeAdj[v] {
				if visited[h.to] {
					continue
				}
				visited[h.to] = true
				// The tree edge from h.to back to v is h.to's next hop
				// toward d.
				for _, back := range treeAdj[h.to] {
					if back.to == v {
						next[h.to] = back.port
						break
					}
				}
				queue = append(queue, h.to)
			}
		}
		fs.escapeNext[d] = next
	}
}

// escapeRoute is the deadlock-free fallback routing function: XY on a
// healthy mesh, tree routing on a degraded one. The escape VCs, the
// VA-timeout fallback and mesh-only multicast forwarding all route
// through it.
func (n *Network) escapeRoute(r, d int) int {
	if fs := n.faults; fs != nil && fs.meshFaults > 0 {
		return int(fs.escapeNext[d][r])
	}
	return xyPort(n, r, d)
}

// FailedShortcuts returns every shortcut edge declared dead so far,
// across reconfigurations.
func (n *Network) FailedShortcuts() []shortcut.Edge {
	if n.faults == nil {
		return nil
	}
	return append([]shortcut.Edge(nil), n.faults.failedEdges...)
}

// FailedRFEndpoint reports whether router id's RF transmitter or
// receiver hardware has failed (it must not appear in that role in a
// replanned shortcut set).
func (n *Network) FailedRFEndpoint(id int) (tx, rx bool) {
	if n.faults == nil || id < 0 || id >= len(n.faults.failedTx) {
		return false, false
	}
	return n.faults.failedTx[id], n.faults.failedRx[id]
}

// DeadMeshLinks returns the failed physical mesh links as router pairs
// (lower id first).
func (n *Network) DeadMeshLinks() [][2]int {
	if n.faults == nil {
		return nil
	}
	var out [][2]int
	for r := range n.faults.meshDead {
		for p := portNorth; p <= portWest; p++ {
			if n.faults.meshDead[r][p] {
				if nb := neighborThrough(n, r, p); nb > r {
					out = append(out, [2]int{r, nb})
				}
			}
		}
	}
	return out
}

// MulticastBandAlive reports whether the RF multicast band (if
// configured) is still operational.
func (n *Network) MulticastBandAlive() bool {
	return n.mc != nil && !n.mcDead
}

// misroutePort draws the adversarial misroute for a packet finishing
// route computation at router r: with MisrouteRate probability it
// returns a wrong-but-live output port (never local, never the computed
// one), diverting the whole packet; the next router re-routes it by
// destination. Returns -1 when the draw misses or no alternative port is
// live. Only plain normal-class unicasts are diverted: multicast forks
// and escape-class packets must stay on their deadlock-free routes.
func (n *Network) misroutePort(r int, vc *vcState) int {
	fs := n.faults
	if fs == nil || fs.cfg.MisrouteRate <= 0 {
		return -1
	}
	p := vc.pkt
	if p.class != vcClassNormal || p.destSet != nil || p.mcFwd != nil ||
		vc.outPort == portLocal {
		return -1
	}
	if fs.rng.Float64() >= fs.cfg.MisrouteRate {
		return -1
	}
	var cands [numPorts]int
	nc := 0
	for port := portNorth; port <= portWest; port++ {
		if port == vc.outPort || fs.meshDead[r][port] {
			continue
		}
		if neighborThrough(n, r, port) < 0 {
			continue
		}
		cands[nc] = port
		nc++
	}
	if vc.outPort != portRF && n.shortcutFrom[r] >= 0 && !fs.shortcutDead[r] {
		cands[nc] = portRF
		nc++
	}
	if nc == 0 {
		return -1
	}
	wrong := cands[fs.rng.Intn(nc)]
	n.stats.MisroutedPackets++
	for _, o := range n.observers {
		o.PacketMisrouted(r, wrong, n.now)
	}
	return wrong
}

// drawMisdeliver draws the RF band mis-tune for a head flit that arrived
// at router r over a shortcut band: with MisdeliverRate probability the
// packet ejects locally here instead of continuing toward its true
// destination. Only integrity-tracked packets are eligible (the receiver
// must be able to detect and repair the misdelivery).
func (n *Network) drawMisdeliver(r int, vc *vcState) bool {
	fs := n.faults
	if fs == nil || fs.cfg.MisdeliverRate <= 0 || vc.port != portRF {
		return false
	}
	p := vc.pkt
	if !p.hasSeq || !p.integrityEligible() || r == p.msg.Dst {
		return false
	}
	return fs.rng.Float64() < fs.cfg.MisdeliverRate
}

// maybeDuplicate draws the RF band re-trigger for a head flit granted
// onto router r's shortcut band: with DuplicateRate probability a full
// copy of the packet materializes at the band's destination router
// (entering its NI with reinjection priority, so its flits are counted
// injected as they are fed — conservation holds by construction). The
// copy keeps the original's sequence number; receiver-side dedup drops
// whichever arrives second.
func (n *Network) maybeDuplicate(r int, p *packet) {
	fs := n.faults
	if fs == nil || fs.cfg.DuplicateRate <= 0 {
		return
	}
	if !p.hasSeq || !p.integrityEligible() {
		return
	}
	dst := n.shortcutFrom[r]
	if dst < 0 || fs.rng.Float64() >= fs.cfg.DuplicateRate {
		return
	}
	n.stats.DuplicatesInjected++
	for _, o := range n.observers {
		o.DuplicateInjected(r, n.now)
	}
	dup := n.newPacket()
	dup.msg = p.msg
	dup.numFlits = p.numFlits
	dup.hasSeq = true
	dup.seq = p.seq
	dup.sum = p.sum
	dup.attempt = p.attempt
	n.enqueueFront(dst, dup)
}

// stepChaos runs the per-cycle rate-driven credit-leak and stuck-VC
// draws. Called from Step at the end-of-cycle safe point.
func (n *Network) stepChaos() {
	fs := n.faults
	if fs.cfg.CreditLeakRate > 0 && fs.rng.Float64() < fs.cfg.CreditLeakRate {
		r := fs.rng.Intn(len(n.routers))
		p := fs.rng.Intn(numPorts)
		vcs := n.routers[r].vcs[p]
		vc := vcs[fs.rng.Intn(len(vcs))]
		n.leakCredit(vc)
	}
	if fs.cfg.StuckVCRate > 0 && fs.rng.Float64() < fs.cfg.StuckVCRate {
		r := fs.rng.Intn(len(n.routers))
		p := fs.rng.Intn(numPorts)
		vc := n.routers[r].vcs[p][fs.rng.Intn(n.cfg.VCsPerClass)]
		n.stickVC(vc)
	}
}

// leakCredit removes one credit from vc if it has headroom to lose.
func (n *Network) leakCredit(vc *vcState) bool {
	if vc.count+vc.incoming+vc.leaked >= cap(vc.buf) {
		return false
	}
	vc.leaked++
	n.stats.CreditLeaks++
	for _, o := range n.observers {
		o.CreditLeaked(vc.router.id, vc.port, n.now)
	}
	return true
}

// stickVC wedges vc out of arbitration (idempotent).
func (n *Network) stickVC(vc *vcState) bool {
	if vc.stuck || vc.class != vcClassNormal {
		return false
	}
	vc.stuck = true
	n.stats.StuckVCs++
	for _, o := range n.observers {
		o.VCStuck(vc.router.id, vc.port, n.now)
	}
	return true
}

// LeakLinkCredit injects a scheduled credit-leak fault on the mesh link
// from router a to adjacent router b: the first normal-class input VC at
// b's receiving port with headroom loses one credit. Safe between cycles
// (e.g. from Observer.CycleEnd), like the Kill* methods.
func (n *Network) LeakLinkCredit(a, b int) error {
	N := n.cfg.Mesh.N()
	if a < 0 || a >= N || b < 0 || b >= N {
		return fmt.Errorf("noc: leak credit: unknown router index %d-%d", a, b)
	}
	port := -1
	for p := portNorth; p <= portWest; p++ {
		if neighborThrough(n, a, p) == b {
			port = p
			break
		}
	}
	if port < 0 {
		return fmt.Errorf("noc: leak credit: routers %d and %d are not adjacent", a, b)
	}
	n.ensureFaults()
	in := oppositePort(port)
	for _, vc := range n.routers[b].vcs[in] {
		if n.leakCredit(vc) {
			return nil
		}
	}
	return fmt.Errorf("noc: leak credit: no VC at router %d port %s has a credit to lose", b, portName(in))
}

// StickVC injects a scheduled stuck-VC fault: every normal-class input
// VC at (router, port) stops arbitrating until a watchdog stage-1
// recovery unsticks it. Escape-class VCs are never stuck by this fault,
// preserving the Duato escape layer. Safe between cycles.
func (n *Network) StickVC(router, port int) error {
	if router < 0 || router >= n.cfg.Mesh.N() {
		return fmt.Errorf("noc: stick VC: unknown router index %d", router)
	}
	if port < 0 || port >= numPorts {
		return fmt.Errorf("noc: stick VC: unknown port %d", port)
	}
	n.ensureFaults()
	stuck := false
	for _, vc := range n.routers[router].vcs[port] {
		if n.stickVC(vc) {
			stuck = true
		}
	}
	if !stuck {
		return fmt.Errorf("noc: stick VC: all normal-class VCs at router %d port %s already stuck", router, portName(port))
	}
	return nil
}
