package noc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// randomConfig builds a random-but-valid design point from fuzz input.
func randomConfig(m *topology.Mesh, seed int64) Config {
	rng := rand.New(rand.NewSource(seed))
	widths := []tech.LinkWidth{tech.Width4B, tech.Width8B, tech.Width16B}
	cfg := Config{
		Mesh:            m,
		Width:           widths[rng.Intn(len(widths))],
		VCsPerClass:     1 + rng.Intn(4),
		BufDepth:        2 + rng.Intn(3),
		EscapeTimeout:   int64(4 + rng.Intn(30)),
		AdaptiveRouting: rng.Intn(2) == 0,
	}
	// Random valid shortcut set.
	nEdges := rng.Intn(8)
	usedSrc := map[int]bool{}
	usedDst := map[int]bool{}
	for len(cfg.Shortcuts) < nEdges {
		a, b := rng.Intn(m.N()), rng.Intn(m.N())
		if a == b || usedSrc[a] || usedDst[b] || m.IsCorner(a) || m.IsCorner(b) {
			continue
		}
		if m.Manhattan(a, b) < 2 {
			continue
		}
		usedSrc[a], usedDst[b] = true, true
		cfg.Shortcuts = append(cfg.Shortcuts, shortcut.Edge{From: a, To: b})
	}
	return cfg
}

// Property: any valid configuration conserves packets and flits and
// fully drains under random traffic — across widths, VC counts, buffer
// depths, shortcut sets, and both routing modes.
func TestPropertyConservationAcrossConfigs(t *testing.T) {
	m := topology.New10x10()
	f := func(seed int64) bool {
		cfg := randomConfig(m, seed)
		n := New(cfg)
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		injected := 0
		classes := []Class{Request, Data, MemLine}
		for cyc := 0; cyc < 1500; cyc++ {
			if rng.Float64() < 0.4 {
				src, dst := rng.Intn(100), rng.Intn(100)
				if src != dst {
					n.Inject(Message{
						Src: src, Dst: dst,
						Class: classes[rng.Intn(len(classes))], Inject: n.Now(),
					})
					injected++
				}
			}
			n.Step()
		}
		if !n.Drain(1_000_000) {
			t.Logf("seed %d: stuck with %d in flight (cfg %+v)", seed, n.InFlight(), cfg)
			return false
		}
		s := n.Stats()
		if s.PacketsEjected != int64(injected) || s.FlitsInjected != s.FlitsEjected {
			t.Logf("seed %d: conservation broken: pkts %d/%d flits %d/%d",
				seed, s.PacketsEjected, injected, s.FlitsEjected, s.FlitsInjected)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: multicast deliveries always equal messages x DBV population,
// under any multicast mode.
func TestPropertyMulticastDeliveryCount(t *testing.T) {
	m := topology.New10x10()
	modes := []MulticastMode{MulticastExpand, MulticastVCT, MulticastRF}
	f := func(seed int64, rawDBV uint64, modeSel uint8) bool {
		mode := modes[int(modeSel)%len(modes)]
		cfg := Config{Mesh: m, Width: tech.Width16B, Multicast: mode}
		if mode == MulticastRF {
			cfg.RFEnabled = m.RFPlacement(50)
		}
		n := New(cfg)
		rng := rand.New(rand.NewSource(seed))
		var want int64
		var msgs int
		for i := 0; i < 5; i++ {
			dbv := rawDBV >> uint(i*7)
			if dbv == 0 {
				continue
			}
			src := m.Caches()[rng.Intn(32)]
			n.Inject(Message{Src: src, Class: Invalidate, Multicast: true, DBV: dbv, Inject: n.Now()})
			want += int64(DBVCount(dbv))
			msgs++
			n.Run(20)
		}
		if !n.Drain(500_000) {
			return false
		}
		s := n.Stats()
		return s.MulticastMessages == int64(msgs) && s.MulticastDeliveries == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: latency is never below the analytic zero-load floor
// (5 cycles per router plus serialization) for any single message on an
// idle network.
func TestPropertyZeroLoadFloor(t *testing.T) {
	m := topology.New10x10()
	f := func(a, b uint8, cls uint8) bool {
		src, dst := int(a)%100, int(b)%100
		if src == dst {
			return true
		}
		classes := []Class{Request, Data, MemLine}
		c := classes[int(cls)%len(classes)]
		n := New(Config{Mesh: m, Width: tech.Width8B})
		n.Inject(Message{Src: src, Dst: dst, Class: c, Inject: 0})
		if !n.Drain(10000) {
			return false
		}
		s := n.Stats()
		hops := m.Manhattan(src, dst)
		flits := FlitsForSize(c.Size(), tech.Width8B)
		floor := int64(5*(hops+1) + flits - 1)
		// On an idle network the measured latency equals the floor.
		return s.PacketLatency == floor
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: adding shortcuts never makes any packet's hop count worse
// than the plain mesh distance (deterministic routing).
func TestPropertyShortcutsNeverLengthenRoutes(t *testing.T) {
	m := topology.New10x10()
	f := func(seed int64, a, b uint8) bool {
		cfg := randomConfig(m, seed)
		cfg.AdaptiveRouting = false
		cfg.Width = tech.Width16B
		src, dst := int(a)%100, int(b)%100
		if src == dst {
			return true
		}
		n := New(cfg)
		n.Inject(Message{Src: src, Dst: dst, Class: Request, Inject: 0})
		if !n.Drain(10000) {
			return false
		}
		return n.Stats().HopSum <= int64(m.Manhattan(src, dst))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
