package noc

// This file implements the end-to-end packet integrity layer
// (Config.Integrity): every plain unicast carries a per-source sequence
// number and a checksum over its message fields in the head flit. The
// receiver verifies both at ejection — a checksum mismatch or an
// ejection at the wrong router (RF band mis-tune) triggers a NACK-style
// retransmission from the sender-side outstanding table, and a sequence
// number that was already delivered is dropped as a duplicate (RF band
// re-trigger). Retransmissions share the link layer's retry budget and
// exponential backoff (FaultConfig.RetryLimit/BackoffBase/BackoffMax);
// when the budget runs out the packet is abandoned and counted in
// Stats.PacketsLost, closing the exactly-once ledger as
// injected = delivered + lost.

// integrityKey identifies a packet end to end: source router plus
// per-source sequence number.
type integrityKey struct {
	src int
	seq uint64
}

// pendingRetx is one NACK'd packet awaiting re-injection at its source.
type pendingRetx struct {
	at      int64 // cycle at which the retransmission enters the NI
	msg     Message
	seq     uint64
	attempt int
}

// integrityState is the network's end-to-end integrity bookkeeping.
type integrityState struct {
	// nextSeq[src] is the next sequence number assigned at source router
	// src.
	nextSeq []uint64

	// seen records delivered packets for receiver-side dedup.
	seen map[integrityKey]bool

	// outstanding is the sender-side retransmission table: every
	// injected-but-unacknowledged message, keyed by (src, seq). Entries
	// are removed on correct delivery or when the retry budget runs out.
	// This is the state the PR-3 snapshot container persists so recovery
	// (NACK retransmission and watchdog re-injection) survives a
	// checkpoint/restore cut.
	outstanding map[integrityKey]Message

	// pending holds scheduled retransmissions not yet re-injected,
	// ordered by insertion (at-cycles are monotone per packet, not
	// globally; reinjectDue scans linearly).
	pending []pendingRetx
}

func newIntegrityState(nRouters int) *integrityState {
	return &integrityState{
		nextSeq:     make([]uint64, nRouters),
		seen:        map[integrityKey]bool{},
		outstanding: map[integrityKey]Message{},
	}
}

// integritySum is the end-to-end checksum carried in the head flit: an
// FNV-1a fold over the message fields and the sequence number. It
// protects the header against corruption that slips past per-link CRC
// (modeled by the CorruptInFlightDst test hook).
func integritySum(m Message, seq uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(int64(m.Src)))
	mix(uint64(int64(m.Dst)))
	mix(uint64(int64(m.Class)))
	mix(uint64(m.Inject))
	if m.Multicast {
		mix(1)
	}
	mix(m.DBV)
	mix(seq)
	return h
}

// tag assigns a fresh sequence number and checksum to a packet entering
// the network at its source, and records it in the outstanding table.
func (ig *integrityState) tag(p *packet) {
	src := p.msg.Src
	p.hasSeq = true
	p.seq = ig.nextSeq[src]
	ig.nextSeq[src]++
	p.sum = integritySum(p.msg, p.seq)
	ig.outstanding[integrityKey{src: src, seq: p.seq}] = p.msg
}

// integrityAccept runs the receiver-side checks for an integrity-tagged
// packet whose tail just ejected at router rs. It returns true when the
// delivery is correct and first (normal bookkeeping proceeds), false
// when the packet was misdelivered, corrupted or a duplicate — in which
// case this ejection is not a delivery and the sender retransmits (or
// the duplicate is simply dropped).
func (n *Network) integrityAccept(rs *routerState, p *packet, at int64) bool {
	ig := n.integ
	key := integrityKey{src: p.msg.Src, seq: p.seq}
	if p.sum != integritySum(p.msg, p.seq) {
		// Header corrupted end to end: the carried fields cannot be
		// trusted, so retransmit from the sender-side table.
		n.stats.ChecksumFailures++
		n.scheduleRetx(key, p.attempt)
		return false
	}
	if rs.id != p.msg.Dst {
		// RF band mis-tune: ejected at the wrong router.
		n.stats.MisdeliveredPackets++
		for _, o := range n.observers {
			o.PacketMisdelivered(rs.id, p.msg, n.now)
		}
		n.scheduleRetx(key, p.attempt)
		return false
	}
	if ig.seen[key] {
		// Band re-trigger: this sequence number was already delivered.
		n.stats.DuplicatesDropped++
		for _, o := range n.observers {
			o.DuplicateDropped(rs.id, p.msg, n.now)
		}
		return false
	}
	ig.seen[key] = true
	delete(ig.outstanding, key)
	return true
}

// scheduleRetx books a NACK-style retransmission of the packet
// identified by key, charging the end-to-end attempt count against the
// link layer's retry budget. The re-injection is delayed by the same
// exponential backoff a link-layer retransmission pays.
func (n *Network) scheduleRetx(key integrityKey, attempt int) {
	ig := n.integ
	msg, ok := ig.outstanding[key]
	if !ok {
		// Already delivered (this was a stale duplicate of a repaired
		// packet) or already abandoned: nothing to resend.
		return
	}
	fs := n.ensureFaults()
	attempt++
	if attempt > fs.cfg.RetryLimit {
		// Budget exhausted: the packet is lost, and accounted as such so
		// the exactly-once ledger still closes.
		delete(ig.outstanding, key)
		n.stats.PacketsLost++
		for _, o := range n.observers {
			o.PacketLost(msg, n.now)
		}
		return
	}
	n.stats.IntegrityRetransmits++
	for _, o := range n.observers {
		o.IntegrityRetransmit(msg.Src, msg.Dst, attempt, n.now)
	}
	ig.pending = append(ig.pending, pendingRetx{
		at:      n.now + fs.backoff(attempt),
		msg:     msg,
		seq:     key.seq,
		attempt: attempt,
	})
}

// reinjectDue moves due retransmissions from the pending list back into
// their source routers' NI queues. The re-injected packet keeps its
// original sequence number, checksum and inject timestamp (end-to-end
// latency includes recovery time) and does not recount in
// Stats.PacketsInjected — it is the same packet, trying again.
func (n *Network) reinjectDue() {
	ig := n.integ
	keep := ig.pending[:0]
	for _, r := range ig.pending {
		if r.at > n.now {
			keep = append(keep, r)
			continue
		}
		p := n.newPacket()
		p.msg = r.msg
		p.numFlits = r.msg.Flits(n.cfg.Width)
		p.hasSeq = true
		p.seq = r.seq
		p.sum = integritySum(r.msg, r.seq)
		p.attempt = r.attempt
		n.enqueue(r.msg.Src, p)
	}
	ig.pending = keep
}

// CorruptInFlightDst is a test hook modeling end-to-end header
// corruption that slipped past per-link CRC: it rewrites the destination
// of one in-flight packet (the oldest head found) without fixing its
// checksum, so only the integrity layer can catch it. It returns false
// if no eligible in-flight packet exists. Never call it outside tests.
func (n *Network) CorruptInFlightDst(newDst int) bool {
	for r := range n.routers {
		rs := &n.routers[r]
		for p := 0; p < numPorts; p++ {
			for _, vc := range rs.vcs[p] {
				pkt := vc.pkt
				if pkt != nil && pkt.hasSeq && pkt.integrityEligible() &&
					pkt.msg.Dst != newDst && vc.sent == 0 {
					pkt.msg.Dst = newDst
					return true
				}
			}
		}
	}
	return false
}
