package noc

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/shortcut"
)

// wheelSize bounds link latency +2; wire shortcuts across the 10x10 die
// take at most ceil(36mm/2.5mm) = 15 cycles.
const wheelSize = 32

// transfer is a flit in flight on a link.
type transfer struct {
	to     *vcState
	pkt    *packet // non-nil only for head flits
	isHead bool
	isTail bool
}

// Network is one simulated design point: a mesh of routers, the overlay
// links, the network interfaces, and the RF multicast channel.
type Network struct {
	cfg    Config
	now    int64
	stats  Stats
	routes *routeTable

	routers []routerState

	// shortcutFrom[r] is the destination router of r's outbound shortcut
	// (-1 if none); shortcutTo[r] is the source of its inbound shortcut.
	shortcutFrom []int
	shortcutTo   []int
	// shortcutLat[r] is the link-traversal latency in cycles of r's
	// outbound shortcut (1 for RF-I, length-proportional for wire).
	shortcutLat []int64

	// wheel holds in-flight flits indexed by arrival cycle % wheelSize.
	wheel [wheelSize][]transfer

	mc  *mcChannel
	vct *vctTable

	// linkUse[r][p] counts flits leaving router r through port p.
	linkUse [][numPorts]int64

	// freq[x][y] counts unicast messages injected x->y (the event
	// counters application-specific selection reads).
	freq [][]int64

	// observers receive pipeline events (nil when observation is off, so
	// hot paths pay one branch). hookObs is the SetDeliveryHook adapter,
	// tracked separately so re-registering replaces it.
	observers []Observer
	hookObs   *deliveryHookObserver

	// faults is the fault-injection and recovery state (nil in a
	// fault-free world, so the hot path pays one pointer check). mcDead
	// marks the RF multicast band permanently failed.
	faults *faultState
	mcDead bool

	// integ is the end-to-end integrity state (nil unless
	// Config.Integrity); wd is the watchdog's escalation state.
	integ *integrityState
	wd    watchdogState

	inFlightPackets int64 // injected (incl. internal) minus retired

	// stepWorkers is the resolved proposal-phase worker count
	// (Config.StepWorkers clamped to the router count); pool is the
	// lazily created worker pool and proposeFn its preallocated shard
	// function.
	stepWorkers int
	pool        *stepPool
	proposeFn   func(int)

	// Hot-path freelists and scratch (see pool.go): retired packets and
	// destination-set backings are recycled, mcGroups is the per-port
	// destination scratch of spawnMulticastChildren, and niActive lists
	// the routers whose NIs have queued or streaming packets so the
	// injection scan skips idle routers.
	pktPool  []*packet
	dsPool   [][]int
	mcGroups [numPorts][]int
	niActive []int
}

// routerState holds one router's input VCs, its NI queues and round-robin
// pointers.
type routerState struct {
	id int
	// vcs[port][idx]: input VCs. idx < VCsPerClass is the normal class,
	// the rest are escape VCs.
	vcs [numPorts][]*vcState
	// active input VCs (have a packet or a reservation); lazily pruned.
	active []*vcState
	// NI injection queues: reinject has priority (VCT fork children).
	// Both pop by advancing a head index over a reusable backing array
	// (slicing the front off would leak the backing's capacity and
	// reallocate on every later push). niListed marks membership in the
	// network's niActive list.
	queue    []*packet
	qhead    int
	reinject []*packet
	rhead    int
	niListed bool
	// packets currently being fed into local-port VCs by the NI (up to
	// LocalSpeedup concurrently), with per-VC fed-flit counts.
	feedings []feeding
	rrOffset int
	// grantScratch is reused by switch allocation to avoid per-cycle
	// allocations.
	grantScratch []*vcState
	// freedAt[port] is the cycle at which a VC on that input port was
	// last released by a tail departure — the stamp the commit phase's
	// VC-allocation audit checks to detect same-cycle releases the
	// frozen proposal view missed (see commitRouter). Initialized to -1.
	freedAt [numPorts]int64
}

// feeding tracks one packet streaming from the NI into a local input VC.
type feeding struct {
	vc  *vcState
	fed int
}

// enlist adds a VC to the active list exactly once; arbitration prunes
// retired VCs lazily and clears the flag then.
func (rs *routerState) enlist(vc *vcState) {
	if !vc.inActive {
		vc.inActive = true
		rs.active = append(rs.active, vc)
	}
}

// vcPhase is the per-hop state of the packet occupying a VC.
type vcPhase int8

const (
	phaseIdle   vcPhase = iota
	phaseRC             // waiting for route computation (1 cycle after head arrival)
	phaseVA             // route known, waiting for a downstream VC
	phaseActive         // VC allocated; flits stream through SA
)

// vcState is one input virtual channel.
type vcState struct {
	router *routerState
	port   int
	idx    int
	class  int

	pkt      *packet
	reserved bool
	incoming int

	buf   []flitSlot // ring buffer, capacity BufDepth
	head  int
	count int

	phase       vcPhase
	inActive    bool // member of the router's active list
	// vaFrozen marks a VC allocation won optimistically against the
	// frozen proposal view this cycle, pending the commit-phase audit
	// that either certifies it or unwinds and replays it live. Always
	// false outside arbitrateAll.
	vaFrozen bool
	cands    []int8 // adaptive-routing minimal candidate ports
	arrivedAt   int64
	rcExtra     int64 // extra RC cycles (VCT tree setup)
	vaFirstFail int64
	outPort     int
	outVC       *vcState // nil for eject/absorb

	// sent counts flits of the current packet already sent downstream
	// (wormhole progress: a packet with sent > 0 cannot be re-routed).
	// retries counts consecutive corrupted transmissions of the front
	// flit; the link-layer retry budget is charged against it.
	sent    int
	retries int

	// leaked is the number of buffer credits this VC has silently lost
	// to the credit-leak fault (effective capacity shrinks by leaked
	// until watchdog stage 1 repairs it). stuck wedges the VC out of
	// arbitration entirely (stuck-VC fault; stage 1 unsticks it).
	leaked int
	stuck  bool
}

type flitSlot struct {
	eligibleAt int64
	isHead     bool
	isTail     bool
}

func (v *vcState) free() bool {
	return v.pkt == nil && !v.reserved && v.incoming == 0 && v.count == 0
}

func (v *vcState) space() bool {
	return v.count+v.incoming+v.leaked < cap(v.buf)
}

func (v *vcState) push(s flitSlot) {
	if v.count >= cap(v.buf) {
		panic("noc: VC buffer overflow")
	}
	v.buf[(v.head+v.count)%cap(v.buf)] = s
	v.count++
}

func (v *vcState) front() *flitSlot {
	if v.count == 0 {
		return nil
	}
	return &v.buf[v.head]
}

func (v *vcState) pop() flitSlot {
	s := v.buf[v.head]
	v.head = (v.head + 1) % cap(v.buf)
	v.count--
	return s
}

// New builds a network for the given configuration. It panics on an
// invalid configuration; callers handling user input should use
// NewChecked instead.
func New(cfg Config) *Network {
	n, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// NewChecked builds a network for the given configuration, returning an
// error (every violation found, joined) instead of panicking when the
// configuration is invalid.
func NewChecked(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg}
	m := cfg.Mesh
	n.routers = make([]routerState, m.N())
	n.shortcutFrom = make([]int, m.N())
	n.shortcutTo = make([]int, m.N())
	n.shortcutLat = make([]int64, m.N())
	for i := range n.shortcutFrom {
		n.shortcutFrom[i] = -1
		n.shortcutTo[i] = -1
	}
	for _, e := range cfg.Shortcuts {
		n.shortcutFrom[e.From] = e.To
		n.shortcutTo[e.To] = e.From
		n.shortcutLat[e.From] = n.shortcutLatency(e)
	}
	n.linkUse = make([][numPorts]int64, m.N())
	n.freq = make([][]int64, m.N())
	n.stats.MsgsByDistance = make([]int64, m.W+m.H-1)
	vcsTotal := 2 * cfg.VCsPerClass
	for r := range n.routers {
		rs := &n.routers[r]
		rs.id = r
		for p := 0; p < numPorts; p++ {
			rs.freedAt[p] = -1
		}
		for p := 0; p < numPorts; p++ {
			rs.vcs[p] = make([]*vcState, vcsTotal)
			for i := 0; i < vcsTotal; i++ {
				cl := vcClassNormal
				if i >= cfg.VCsPerClass {
					cl = vcClassEscape
				}
				rs.vcs[p][i] = &vcState{
					router: rs, port: p, idx: i, class: cl,
					buf: make([]flitSlot, cfg.BufDepth),
				}
			}
		}
	}
	n.stepWorkers = cfg.StepWorkers
	if n.stepWorkers > m.N() {
		n.stepWorkers = m.N()
	}
	n.routes = buildRoutes(n)
	if cfg.Multicast == MulticastRF {
		n.mc = newMCChannel(n)
	}
	if cfg.Multicast == MulticastVCT {
		n.vct = newVCTTable(cfg.VCTTableSize)
	}
	if cfg.Fault.enabled() {
		n.ensureFaults()
	}
	if cfg.Integrity {
		n.integ = newIntegrityState(m.N())
		n.ensureFaults() // backoff/budget parameters and the retx RNG
	}
	return n, nil
}

// meshLinkMM is the physical length of one inter-router mesh link on the
// 20 mm die (tech.RouterSpacingMM; duplicated here to avoid the import
// in the hot path... it is asserted equal in tests).
const meshLinkMM = 2.0

// shortcutLatency is the link-traversal latency of a shortcut edge:
// single-cycle for RF-I, length-proportional for wire shortcuts.
func (n *Network) shortcutLatency(e shortcut.Edge) int64 {
	if !n.cfg.WireShortcuts {
		return 1
	}
	distMM := float64(n.cfg.Mesh.Manhattan(e.From, e.To)) * meshLinkMM
	lat := int64(math.Ceil(distMM / n.cfg.WireMMPerCycle))
	if lat < 1 {
		lat = 1
	}
	return lat
}

// Config returns the (defaulted) configuration the network runs.
func (n *Network) Config() Config { return n.cfg }

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Stats returns a snapshot of the accumulated statistics.
func (n *Network) Stats() Stats {
	s := n.stats
	s.MsgsByDistance = append([]int64(nil), n.stats.MsgsByDistance...)
	return s
}

// InFlight returns the number of packets injected but not yet retired,
// plus queued multicast transmissions and pending integrity
// retransmissions (a drain is not complete while a NACK'd packet still
// awaits its re-injection). Used to drain the network at the end of a
// measurement run.
func (n *Network) InFlight() int64 {
	v := n.inFlightPackets
	if n.mc != nil {
		v += n.mc.pending()
	}
	if n.integ != nil {
		v += int64(len(n.integ.pending))
	}
	return v
}

// Inject submits a message to the network at the current cycle. It
// panics on an invalid message; callers handling user or generator
// input they do not control should use InjectChecked instead.
func (n *Network) Inject(msg Message) {
	if err := n.InjectChecked(msg); err != nil {
		panic(err)
	}
}

// InjectChecked submits a message to the network at the current cycle,
// returning an error instead of panicking on invalid input (unknown
// routers, a multicast from a non-cache router under RF delivery).
// Multicast messages are handled per the configured MulticastMode;
// unicast messages enter the source router's NI queue. On error the
// network is unchanged.
func (n *Network) InjectChecked(msg Message) error {
	if msg.Inject == 0 {
		msg.Inject = n.now
	}
	N := n.cfg.Mesh.N()
	if msg.Src < 0 || msg.Src >= N {
		return fmt.Errorf("noc: inject: unknown source router %d", msg.Src)
	}
	if !msg.Multicast {
		if msg.Dst < 0 || msg.Dst >= N {
			return fmt.Errorf("noc: inject: unknown destination router %d", msg.Dst)
		}
		if n.freq[msg.Src] == nil {
			n.freq[msg.Src] = make([]int64, N)
		}
		n.freq[msg.Src][msg.Dst]++
		p := n.newPacket()
		p.msg = msg
		p.numFlits = msg.Flits(n.cfg.Width)
		if n.integ != nil {
			n.integ.tag(p)
		}
		n.enqueue(msg.Src, p)
		n.stats.PacketsInjected++
		return nil
	}
	switch n.cfg.Multicast {
	case MulticastExpand:
		n.stats.MulticastMessages++
		n.expandMulticast(msg)
	case MulticastVCT:
		n.stats.MulticastMessages++
		dests := n.dbvRouters(msg.DBV)
		setup := n.vct.lookup(msg.Src, msg.DBV)
		if setup {
			n.stats.VCTMisses++
		} else {
			n.stats.VCTHits++
		}
		parent := n.newPacket()
		parent.msg = msg
		parent.numFlits = msg.Flits(n.cfg.Width)
		parent.destSet = dests
		parent.vctSetup = setup
		n.spawnMulticastChildren(msg.Src, parent, true)
		n.freePacket(parent)
	case MulticastRF:
		if n.mcDead {
			// The multicast band failed: degrade to unicast expansion
			// over the (RF-augmented) mesh.
			n.stats.MulticastMessages++
			n.expandMulticast(msg)
			return nil
		}
		if err := n.mc.submit(msg); err != nil {
			return err
		}
		n.stats.MulticastMessages++
	default:
		return fmt.Errorf("noc: inject: unhandled multicast mode %d", int(n.cfg.Multicast))
	}
	return nil
}

// expandMulticast delivers a multicast as one unicast per destination
// core injected at the source (the MulticastExpand baseline, and the
// degradation path when the RF multicast band fails).
func (n *Network) expandMulticast(msg Message) {
	cores := n.cfg.Mesh.Cores()
	for dbv := msg.DBV; dbv != 0; dbv &= dbv - 1 {
		core := bits.TrailingZeros64(dbv)
		u := msg
		u.Multicast = false
		u.Dst = cores[core]
		if u.Dst == msg.Src {
			// Self-delivery is free.
			n.recordMulticastDelivery(msg, msg.Flits(n.cfg.Width), n.now)
			continue
		}
		p := n.newPacket()
		p.msg = u
		p.numFlits = u.Flits(n.cfg.Width)
		p.deliverCore = core // count ejection as a multicast delivery
		n.enqueue(u.Src, p)
	}
}

// dbvRouters maps a DBV to the sorted list of destination router ids.
// The returned slice comes from the destination-set pool and is owned by
// the packet it is attached to.
func (n *Network) dbvRouters(dbv uint64) []int {
	cores := n.cfg.Mesh.Cores()
	out := n.newDestSet()
	for ; dbv != 0; dbv &= dbv - 1 {
		out = append(out, cores[bits.TrailingZeros64(dbv)])
	}
	return out
}

// noteNIWork puts a router on the active-NI list exactly once;
// injectFromNIs prunes routers whose NI goes idle.
func (n *Network) noteNIWork(rs *routerState) {
	if !rs.niListed {
		rs.niListed = true
		n.niActive = append(n.niActive, rs.id)
	}
}

// enqueue adds a packet to a router's NI queue.
func (n *Network) enqueue(router int, p *packet) {
	rs := &n.routers[router]
	rs.queue = append(rs.queue, p)
	n.noteNIWork(rs)
	n.inFlightPackets++
	if len(n.observers) != 0 {
		for _, o := range n.observers {
			o.PacketInjected(p.msg, n.now)
		}
	}
}

// enqueueFront adds a forked multicast child with reinjection priority.
func (n *Network) enqueueFront(router int, p *packet) {
	rs := &n.routers[router]
	rs.reinject = append(rs.reinject, p)
	n.noteNIWork(rs)
	n.inFlightPackets++
	if len(n.observers) != 0 {
		for _, o := range n.observers {
			o.PacketInjected(p.msg, n.now)
		}
	}
}

// spawnMulticastChildren splits a forking multicast at router r into one
// child per next-hop port group (delivering locally if r is itself a
// destination). When atSource is true the children enter r's normal NI
// queue; otherwise they take the priority reinjection path.
func (n *Network) spawnMulticastChildren(r int, p *packet, atSource bool) {
	groups := &n.mcGroups
	for _, d := range p.destSet {
		if d == r {
			n.recordMulticastDelivery(p.msg, p.numFlits, n.now)
			continue
		}
		port := n.escapeRoute(r, d)
		if groups[port] == nil {
			groups[port] = n.newDestSet()
		}
		groups[port] = append(groups[port], d)
	}
	for port := 0; port < numPorts; port++ {
		dests := groups[port]
		if dests == nil {
			continue
		}
		groups[port] = nil
		child := n.newPacket()
		child.msg = p.msg
		child.numFlits = p.numFlits
		child.destSet = dests
		child.vctSetup = p.vctSetup
		if atSource {
			n.enqueue(r, child)
		} else {
			n.enqueueFront(r, child)
		}
	}
}

// recordMulticastDelivery books one destination served by a multicast.
// The tail-based delivery latency lat converts to a per-flit latency of
// lat - (F-1) under back-to-back streaming (flit i injected at cycle
// inject+i arrives F-1-i cycles before the tail).
func (n *Network) recordMulticastDelivery(msg Message, numFlits int, at int64) {
	lat := at - msg.Inject
	n.stats.MulticastDeliveries++
	n.stats.MulticastLatency += lat
	n.stats.MulticastFlitsDelivered += int64(numFlits)
	perFlit := lat - int64(numFlits-1)
	if perFlit < 1 {
		perFlit = 1
	}
	n.stats.MulticastFlitLatency += perFlit * int64(numFlits)
	if len(n.observers) != 0 {
		for _, o := range n.observers {
			o.MulticastDelivered(msg, at)
		}
	}
}

// Step advances the simulation one network cycle.
func (n *Network) Step() {
	if n.integ != nil && len(n.integ.pending) != 0 {
		n.reinjectDue()
	}
	n.deliverArrivals()
	n.injectFromNIs()
	n.arbitrateAll()
	if n.mc != nil {
		n.mc.step()
	}
	if n.faults != nil {
		if len(n.faults.pendingKills) > 0 {
			n.applyPendingKills()
		}
		if n.faults.cfg.CreditLeakRate > 0 || n.faults.cfg.StuckVCRate > 0 {
			n.stepChaos()
		}
	}
	if n.cfg.Watchdog.Enabled {
		n.watchdogStep()
	}
	n.now++
	n.stats.Cycles = n.now
	if len(n.observers) != 0 {
		for _, o := range n.observers {
			o.CycleEnd(n)
		}
	}
}

// Run advances the simulation by the given number of cycles.
func (n *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// DrainReport describes how a post-injection drain went: whether the
// network emptied, how many cycles it took, and — when it did not —
// how much traffic is stranded and how stale the oldest head flit is
// (the deadlock post-mortem numbers).
type DrainReport struct {
	// Drained is true when all in-flight traffic retired within budget.
	Drained bool

	// CyclesUsed is how many drain cycles actually ran (<= the budget).
	CyclesUsed int64

	// Stranded is the in-flight count left when the drain stopped
	// (packets plus queued multicasts plus pending retransmissions;
	// zero when Drained).
	Stranded int64

	// OldestHeadAge is the age of the oldest head flit still occupying a
	// VC when the drain stopped (zero when Drained).
	OldestHeadAge int64
}

// Drain runs until all in-flight traffic retires or maxCycles elapse.
// It returns true if the network fully drained (a liveness check: with
// escape VCs there must be no deadlock).
func (n *Network) Drain(maxCycles int64) bool {
	return n.DrainWithReport(maxCycles).Drained
}

// DrainWithReport is Drain with a post-mortem: cycles used, stranded
// traffic, and the oldest head-flit age when the drain gave up.
func (n *Network) DrainWithReport(maxCycles int64) DrainReport {
	rep := DrainReport{}
	for rep.CyclesUsed = 0; rep.CyclesUsed < maxCycles; rep.CyclesUsed++ {
		if n.InFlight() == 0 {
			break
		}
		n.Step()
	}
	rep.Stranded = n.InFlight()
	rep.Drained = rep.Stranded == 0
	if !rep.Drained {
		rep.OldestHeadAge = n.Audit().OldestHeadAge
	}
	return rep
}

// deliverArrivals moves flits scheduled to arrive now into their VCs.
func (n *Network) deliverArrivals() {
	slot := n.now % wheelSize
	arrivals := n.wheel[slot]
	n.wheel[slot] = arrivals[:0]
	for _, t := range arrivals {
		vc := t.to
		vc.incoming--
		if t.isHead {
			vc.pkt = t.pkt
			vc.reserved = false
			vc.phase = phaseRC
			vc.arrivedAt = n.now
			vc.rcExtra = 0
			if t.pkt.vctSetup {
				vc.rcExtra = 2 // tree-table construction at each router
			}
			vc.vaFirstFail = -1
			vc.outVC = nil
			vc.sent = 0
			vc.retries = 0
			vc.router.enlist(vc)
			vc.push(flitSlot{eligibleAt: n.now + 3 + vc.rcExtra, isHead: true, isTail: t.isTail})
		} else {
			vc.push(flitSlot{eligibleAt: n.now + 1, isTail: t.isTail})
		}
	}
}

// schedule puts a flit on a link, arriving after 1 cycle of switch
// traversal plus the link's traversal latency.
func (n *Network) schedule(t transfer, linkLat int64) {
	at := (n.now + 1 + linkLat) % wheelSize
	t.to.incoming++
	n.wheel[at] = append(n.wheel[at], t)
}

// injectFromNIs feeds flits from each router's NI into its local input
// port: up to LocalSpeedup packets stream concurrently, one flit each per
// cycle (the local channel keeps its 16 B width as mesh links narrow).
func (n *Network) injectFromNIs() {
	if len(n.niActive) == 0 {
		return
	}
	speedup := n.cfg.LocalSpeedup
	keepActive := n.niActive[:0]
	for _, r := range n.niActive {
		rs := &n.routers[r]
		// Start new packets while NI channel slots and local VCs allow.
		for len(rs.feedings) < speedup {
			p := rs.nextPacket()
			if p == nil {
				break
			}
			vc := n.freeVC(rs, portLocal, p.class)
			if vc == nil {
				break // all injection VCs busy; retry next cycle
			}
			vc.pkt = p
			vc.phase = phaseRC
			vc.arrivedAt = n.now
			vc.rcExtra = 0
			if p.vctSetup {
				vc.rcExtra = 2
			}
			vc.vaFirstFail = -1
			vc.outVC = nil
			vc.sent = 0
			vc.retries = 0
			rs.enlist(vc)
			rs.feedings = append(rs.feedings, feeding{vc: vc})
			rs.popPacket()
		}
		// Feed one flit into each streaming VC.
		keep := rs.feedings[:0]
		for _, f := range rs.feedings {
			vc := f.vc
			if vc.space() {
				isHead := f.fed == 0
				isTail := f.fed == vc.pkt.numFlits-1
				el := n.now + 1
				if isHead {
					el = n.now + 3 + vc.rcExtra
				}
				vc.push(flitSlot{eligibleAt: el, isHead: isHead, isTail: isTail})
				n.stats.FlitsInjected++
				n.stats.LocalFlitHops++
				f.fed++
			}
			if f.fed < vc.pkt.numFlits {
				keep = append(keep, f)
			}
		}
		rs.feedings = keep
		if len(rs.feedings) == 0 && rs.nextPacket() == nil {
			rs.niListed = false
		} else {
			keepActive = append(keepActive, r)
		}
	}
	n.niActive = keepActive
}

// nextPacket peeks the NI queues (reinjection first).
func (rs *routerState) nextPacket() *packet {
	if rs.rhead < len(rs.reinject) {
		return rs.reinject[rs.rhead]
	}
	if rs.qhead < len(rs.queue) {
		return rs.queue[rs.qhead]
	}
	return nil
}

// popPacket removes the packet nextPacket returned, nilling the slot so
// the queue holds no reference to a packet it no longer owns. An emptied
// queue resets to reuse its backing array from the start.
func (rs *routerState) popPacket() {
	if rs.rhead < len(rs.reinject) {
		rs.reinject[rs.rhead] = nil
		rs.rhead++
		if rs.rhead == len(rs.reinject) {
			rs.reinject = rs.reinject[:0]
			rs.rhead = 0
		}
		return
	}
	rs.queue[rs.qhead] = nil
	rs.qhead++
	if rs.qhead == len(rs.queue) {
		rs.queue = rs.queue[:0]
		rs.qhead = 0
	}
}

// freeVC finds an unoccupied VC of the given class on a port.
func (n *Network) freeVC(rs *routerState, port, class int) *vcState {
	lo, hi := 0, n.cfg.VCsPerClass
	if class == vcClassEscape {
		lo, hi = n.cfg.VCsPerClass, 2*n.cfg.VCsPerClass
	}
	for i := lo; i < hi; i++ {
		if vc := rs.vcs[port][i]; vc.free() {
			return vc
		}
	}
	return nil
}
