package noc

import (
	"math/rand"
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

func baseline(w tech.LinkWidth) Config {
	return Config{Mesh: topology.New10x10(), Width: w}
}

// expectedLatency is the analytic zero-load latency of a packet: the head
// pays 5 cycles per router traversal (RC, VA, SA, ST, LT) over hops+1
// routers, and the tail trails by numFlits-1 cycles.
func expectedLatency(hops, flits int) int64 {
	return int64(5*(hops+1) + flits - 1)
}

func TestZeroLoadLatencyMatchesPipeline(t *testing.T) {
	cases := []struct {
		name  string
		class Class
		w     tech.LinkWidth
		src   topology.Coord
		dst   topology.Coord
	}{
		{"request-1hop-16B", Request, tech.Width16B, topology.Coord{X: 2, Y: 2}, topology.Coord{X: 3, Y: 2}},
		{"request-10hop-16B", Request, tech.Width16B, topology.Coord{X: 1, Y: 1}, topology.Coord{X: 6, Y: 6}},
		{"data-5hop-16B", Data, tech.Width16B, topology.Coord{X: 2, Y: 3}, topology.Coord{X: 5, Y: 5}},
		{"memline-7hop-4B", MemLine, tech.Width4B, topology.Coord{X: 1, Y: 2}, topology.Coord{X: 4, Y: 6}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := New(baseline(c.w))
			m := n.Config().Mesh
			src, dst := m.ID(c.src.X, c.src.Y), m.ID(c.dst.X, c.dst.Y)
			msg := Message{Src: src, Dst: dst, Class: c.class, Inject: 0}
			n.Inject(msg)
			if !n.Drain(10000) {
				t.Fatal("network did not drain")
			}
			s := n.Stats()
			if s.PacketsEjected != 1 {
				t.Fatalf("ejected %d packets, want 1", s.PacketsEjected)
			}
			hops := m.Manhattan(src, dst)
			flits := msg.Flits(c.w)
			want := expectedLatency(hops, flits)
			if s.PacketLatency != want {
				t.Errorf("latency = %d, want %d (hops=%d flits=%d)",
					s.PacketLatency, want, hops, flits)
			}
			if s.HopSum != int64(hops) {
				t.Errorf("hops = %d, want %d", s.HopSum, hops)
			}
			if s.FlitsInjected != int64(flits) || s.FlitsEjected != int64(flits) {
				t.Errorf("flits in/out = %d/%d, want %d", s.FlitsInjected, s.FlitsEjected, flits)
			}
		})
	}
}

func TestFlitCounts(t *testing.T) {
	// 7B/39B/132B at 16B links: 1, 3, 9 flits; at 8B: 1, 5, 17; at 4B: 2, 10, 33.
	cases := []struct {
		class Class
		w     tech.LinkWidth
		want  int
	}{
		{Request, tech.Width16B, 1}, {Data, tech.Width16B, 3}, {MemLine, tech.Width16B, 9},
		{Request, tech.Width8B, 1}, {Data, tech.Width8B, 5}, {MemLine, tech.Width8B, 17},
		{Request, tech.Width4B, 2}, {Data, tech.Width4B, 10}, {MemLine, tech.Width4B, 33},
	}
	for _, c := range cases {
		if got := (Message{Class: c.class}).Flits(c.w); got != c.want {
			t.Errorf("%v at %v = %d flits, want %d", c.class, c.w, got, c.want)
		}
	}
}

func TestShortcutCutsLatency(t *testing.T) {
	m := topology.New10x10()
	src, dst := m.ID(1, 1), m.ID(8, 8)
	run := func(cfg Config) int64 {
		n := New(cfg)
		n.Inject(Message{Src: src, Dst: dst, Class: Data, Inject: 0})
		if !n.Drain(10000) {
			t.Fatal("no drain")
		}
		return n.Stats().PacketLatency
	}
	base := run(baseline(tech.Width16B))
	sc := run(Config{
		Mesh: m, Width: tech.Width16B,
		Shortcuts: []shortcut.Edge{{From: src, To: dst}},
	})
	// With a direct shortcut the route is src -> dst in one hop.
	want := expectedLatency(1, 3)
	if sc != want {
		t.Errorf("shortcut latency = %d, want %d", sc, want)
	}
	if sc >= base {
		t.Errorf("shortcut (%d) not faster than mesh (%d)", sc, base)
	}
}

func TestShortcutMidRouteUsed(t *testing.T) {
	// Shortcut (2,2)->(7,7); message (1,2)->(8,7) should route through it:
	// 1 hop to the shortcut source, 1 shortcut hop, 1 hop out = 3 hops.
	m := topology.New10x10()
	n := New(Config{
		Mesh: m, Width: tech.Width16B,
		Shortcuts: []shortcut.Edge{{From: m.ID(2, 2), To: m.ID(7, 7)}},
	})
	n.Inject(Message{Src: m.ID(1, 2), Dst: m.ID(8, 7), Class: Request, Inject: 0})
	if !n.Drain(10000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	if s.HopSum != 3 {
		t.Errorf("hops = %d, want 3 (via shortcut)", s.HopSum)
	}
	if s.RFShortcutBits != int64(tech.Width16B.Bits()) {
		t.Errorf("RF bits = %d, want %d", s.RFShortcutBits, tech.Width16B.Bits())
	}
}

func TestXYUsedWhenShortcutGivesNoGain(t *testing.T) {
	// Neighbors should never detour via RF even if shortcuts exist.
	m := topology.New10x10()
	n := New(Config{
		Mesh: m, Width: tech.Width16B,
		Shortcuts: []shortcut.Edge{{From: m.ID(4, 4), To: m.ID(5, 4)}},
	})
	n.Inject(Message{Src: m.ID(4, 4), Dst: m.ID(5, 4), Class: Request, Inject: 0})
	if !n.Drain(10000) {
		t.Fatal("no drain")
	}
	if got := n.Stats().RFShortcutBits; got != 0 {
		t.Errorf("RF bits = %d, want 0 (no-gain pair should route XY)", got)
	}
}

func TestWireShortcutSlowerThanRF(t *testing.T) {
	m := topology.New10x10()
	edges := []shortcut.Edge{{From: m.ID(1, 1), To: m.ID(8, 8)}}
	run := func(wire bool) int64 {
		n := New(Config{Mesh: m, Width: tech.Width16B, Shortcuts: edges, WireShortcuts: wire})
		n.Inject(Message{Src: m.ID(1, 1), Dst: m.ID(8, 8), Class: Data, Inject: 0})
		if !n.Drain(10000) {
			t.Fatal("no drain")
		}
		return n.Stats().PacketLatency
	}
	rf, wire := run(false), run(true)
	// The wire shortcut spans 14 hops = 28 mm: ceil(28/2.5) = 12 cycles of
	// link traversal instead of 1, so 11 cycles slower.
	if wire-rf != 11 {
		t.Errorf("wire - rf = %d, want 11 (rf=%d wire=%d)", wire-rf, rf, wire)
	}
	// Wire shortcut accounts link energy, not RF bits.
	n := New(Config{Mesh: m, Width: tech.Width16B, Shortcuts: edges, WireShortcuts: true})
	n.Inject(Message{Src: m.ID(1, 1), Dst: m.ID(8, 8), Class: Request, Inject: 0})
	n.Drain(10000)
	s := n.Stats()
	if s.RFShortcutBits != 0 {
		t.Errorf("wire shortcut counted RF bits: %d", s.RFShortcutBits)
	}
	if s.WireShortcutFlitMM != 28.0 {
		t.Errorf("wire shortcut flit-mm = %v, want 28", s.WireShortcutFlitMM)
	}
}

func TestConservationUnderRandomLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := New(baseline(tech.Width16B))
	m := n.Config().Mesh
	injected := 0
	for cyc := 0; cyc < 5000; cyc++ {
		if rng.Float64() < 0.5 {
			src, dst := rng.Intn(100), rng.Intn(100)
			if src != dst {
				n.Inject(Message{Src: src, Dst: dst, Class: Data, Inject: n.Now()})
				injected++
			}
		}
		n.Step()
	}
	if !n.Drain(100000) {
		t.Fatal("network did not drain after load")
	}
	s := n.Stats()
	if s.PacketsEjected != int64(injected) {
		t.Errorf("ejected %d packets, want %d", s.PacketsEjected, injected)
	}
	if s.FlitsInjected != s.FlitsEjected {
		t.Errorf("flit conservation violated: in=%d out=%d", s.FlitsInjected, s.FlitsEjected)
	}
	_ = m
}

func TestNoDeadlockWithShortcutsUnderHeavyLoad(t *testing.T) {
	m := topology.New10x10()
	edges := shortcut.SelectMaxCost(m.Graph(), shortcut.Params{
		Budget: 16, Eligible: m.ShortcutEligible,
	})
	n := New(Config{Mesh: m, Width: tech.Width4B, Shortcuts: edges})
	rng := rand.New(rand.NewSource(42))
	injected := 0
	for cyc := 0; cyc < 8000; cyc++ {
		// Heavy load on a narrow mesh: multiple injections per cycle.
		for k := 0; k < 3; k++ {
			if rng.Float64() < 0.6 {
				src, dst := rng.Intn(100), rng.Intn(100)
				if src != dst {
					n.Inject(Message{Src: src, Dst: dst, Class: Data, Inject: n.Now()})
					injected++
				}
			}
		}
		n.Step()
	}
	if !n.Drain(500000) {
		t.Fatalf("deadlock: %d packets stuck", n.InFlight())
	}
	if got := n.Stats().PacketsEjected; got != int64(injected) {
		t.Errorf("ejected %d, want %d", got, injected)
	}
}

func TestDistanceHistogram(t *testing.T) {
	n := New(baseline(tech.Width16B))
	m := n.Config().Mesh
	// Three 1-hop messages and one 7-hop message.
	for i := 0; i < 3; i++ {
		n.Inject(Message{Src: m.ID(2, 2), Dst: m.ID(2, 3), Class: Request, Inject: 0})
		n.Run(50)
	}
	n.Inject(Message{Src: m.ID(0, 3), Dst: m.ID(5, 5), Class: Request, Inject: 0})
	if !n.Drain(10000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	if s.MsgsByDistance[1] != 3 {
		t.Errorf("distance-1 count = %d, want 3", s.MsgsByDistance[1])
	}
	if s.MsgsByDistance[7] != 1 {
		t.Errorf("distance-7 count = %d, want 1", s.MsgsByDistance[7])
	}
}

func TestNarrowLinksRaiseLatency(t *testing.T) {
	run := func(w tech.LinkWidth) float64 {
		n := New(baseline(w))
		rng := rand.New(rand.NewSource(3))
		for cyc := 0; cyc < 20000; cyc++ {
			if rng.Float64() < 0.3 {
				src, dst := rng.Intn(100), rng.Intn(100)
				if src != dst {
					n.Inject(Message{Src: src, Dst: dst, Class: Data, Inject: n.Now()})
				}
			}
			n.Step()
		}
		if !n.Drain(500000) {
			t.Fatal("no drain")
		}
		s := n.Stats()
		return s.AvgPacketLatency()
	}
	l16, l4 := run(tech.Width16B), run(tech.Width4B)
	if l4 <= l16 {
		t.Errorf("4B latency (%v) should exceed 16B latency (%v)", l4, l16)
	}
}

func TestMulticastExpandDeliversAll(t *testing.T) {
	cfg := baseline(tech.Width16B)
	cfg.Multicast = MulticastExpand
	n := New(cfg)
	m := cfg.Mesh
	src := m.Caches()[0]
	dbv := uint64(0)
	for _, ci := range []int{0, 5, 17, 40, 63} {
		dbv |= 1 << uint(ci)
	}
	n.Inject(Message{Src: src, Class: Invalidate, Multicast: true, DBV: dbv, Inject: 0})
	if !n.Drain(10000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	if s.MulticastMessages != 1 {
		t.Errorf("multicast messages = %d, want 1", s.MulticastMessages)
	}
	if s.MulticastDeliveries != 5 {
		t.Errorf("deliveries = %d, want 5", s.MulticastDeliveries)
	}
}

func TestMulticastVCTDeliversAllAndSharesPrefix(t *testing.T) {
	cfg := baseline(tech.Width16B)
	cfg.Multicast = MulticastVCT
	n := New(cfg)
	m := cfg.Mesh
	src := m.Caches()[0]
	dbv := uint64(0)
	cores := []int{3, 9, 27, 50}
	for _, ci := range cores {
		dbv |= 1 << uint(ci)
	}
	n.Inject(Message{Src: src, Class: Fill, Multicast: true, DBV: dbv, Inject: 0})
	if !n.Drain(20000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	if s.MulticastDeliveries != int64(len(cores)) {
		t.Errorf("deliveries = %d, want %d", s.MulticastDeliveries, len(cores))
	}
	if s.VCTMisses != 1 || s.VCTHits != 0 {
		t.Errorf("vct hits/misses = %d/%d, want 0/1", s.VCTHits, s.VCTMisses)
	}

	// Second identical multicast hits the tree table.
	n.Inject(Message{Src: src, Class: Fill, Multicast: true, DBV: dbv, Inject: n.Now()})
	if !n.Drain(20000) {
		t.Fatal("no drain")
	}
	s = n.Stats()
	if s.VCTHits != 1 {
		t.Errorf("vct hits = %d, want 1", s.VCTHits)
	}

	// Tree forwarding must move fewer flits over the mesh than unicast
	// expansion of the same multicast.
	cfgE := baseline(tech.Width16B)
	cfgE.Multicast = MulticastExpand
	ne := New(cfgE)
	ne.Inject(Message{Src: src, Class: Fill, Multicast: true, DBV: dbv, Inject: 0})
	if !ne.Drain(20000) {
		t.Fatal("no drain")
	}
	if vct, exp := s.MeshFlitHops/2, ne.Stats().MeshFlitHops; vct >= exp {
		t.Errorf("VCT mesh flit-hops per msg (%d) not below expand (%d)", vct, exp)
	}
}

func TestMulticastRFDeliversAll(t *testing.T) {
	m := topology.New10x10()
	cfg := Config{
		Mesh: m, Width: tech.Width16B,
		Multicast: MulticastRF,
		RFEnabled: m.RFPlacement(50),
	}
	n := New(cfg)
	src := m.Caches()[3]
	dbv := uint64(0)
	for ci := 0; ci < 64; ci += 7 {
		dbv |= 1 << uint(ci)
	}
	want := DBVCount(dbv)
	n.Inject(Message{Src: src, Class: Invalidate, Multicast: true, DBV: dbv, Inject: 0})
	if !n.Drain(20000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	if s.MulticastDeliveries != int64(want) {
		t.Errorf("deliveries = %d, want %d", s.MulticastDeliveries, want)
	}
	if s.RFMulticastBits == 0 {
		t.Error("no bits accounted on the multicast band")
	}
	if s.RFGatedRxFlits == 0 {
		t.Error("expected some receivers to power-gate")
	}
}

func TestMulticastRFFasterThanExpandForWideSets(t *testing.T) {
	m := topology.New10x10()
	dbv := uint64(0)
	for ci := 0; ci < 64; ci += 2 {
		dbv |= 1 << uint(ci)
	}
	src := m.CentralBank(0)
	run := func(cfg Config) float64 {
		n := New(cfg)
		n.Inject(Message{Src: src, Class: Invalidate, Multicast: true, DBV: dbv, Inject: 0})
		if !n.Drain(50000) {
			t.Fatal("no drain")
		}
		s := n.Stats()
		return float64(s.MulticastLatency) / float64(s.MulticastDeliveries)
	}
	expand := run(Config{Mesh: m, Width: tech.Width16B, Multicast: MulticastExpand})
	rf := run(Config{
		Mesh: m, Width: tech.Width16B, Multicast: MulticastRF,
		RFEnabled: m.RFPlacement(50),
	})
	if rf >= expand {
		t.Errorf("RF multicast latency (%v) should beat unicast expansion (%v)", rf, expand)
	}
}

func TestDBVHelpers(t *testing.T) {
	if DBVCount(0) != 0 || DBVCount(0xFF) != 8 {
		t.Error("DBVCount wrong")
	}
	cores := DBVCores(1<<3 | 1<<40)
	if len(cores) != 2 || cores[0] != 3 || cores[1] != 40 {
		t.Errorf("DBVCores = %v", cores)
	}
}

func TestClassSizes(t *testing.T) {
	if Request.Size() != 7 || Data.Size() != 39 || MemLine.Size() != 132 {
		t.Error("paper message sizes wrong")
	}
	if Invalidate.Size() != 7 || Fill.Size() != 39 {
		t.Error("coherence message sizes wrong")
	}
}

func TestMeshLinkMMMatchesTech(t *testing.T) {
	if meshLinkMM != tech.RouterSpacingMM {
		t.Errorf("meshLinkMM = %v, tech says %v", meshLinkMM, tech.RouterSpacingMM)
	}
}

func TestRFPortCounting(t *testing.T) {
	m := topology.New10x10()
	edges := []shortcut.Edge{{From: m.ID(1, 1), To: m.ID(8, 8)}}
	cfg := Config{Mesh: m, Width: tech.Width16B, Shortcuts: edges}
	if got := cfg.RFPortsAt(m.ID(1, 1)); got != 1 {
		t.Errorf("Tx router ports = %d, want 1", got)
	}
	if got := cfg.RFPortsAt(m.ID(8, 8)); got != 1 {
		t.Errorf("Rx router ports = %d, want 1", got)
	}
	if got := cfg.RFPortsAt(m.ID(5, 5)); got != 0 {
		t.Errorf("plain router ports = %d, want 0", got)
	}
}
