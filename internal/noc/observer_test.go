package noc

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tech"
	"repro/internal/topology"
)

// countingObserver tallies every event kind.
type countingObserver struct {
	BaseObserver
	injected, sent, ejected, delivered, mcast, cycles int64
	flitLatSum                                        int64
	localSent                                         int64
}

func (c *countingObserver) PacketInjected(Message, int64) { c.injected++ }
func (c *countingObserver) FlitSent(_, outPort int, _ int64) {
	c.sent++
	if outPort == portLocal {
		c.localSent++
	}
}
func (c *countingObserver) FlitEjected(_ int, lat int64) {
	c.ejected++
	c.flitLatSum += lat
}
func (c *countingObserver) PacketDelivered(Message, int64, int) { c.delivered++ }
func (c *countingObserver) MulticastDelivered(Message, int64)   { c.mcast++ }
func (c *countingObserver) CycleEnd(*Network)                   { c.cycles++ }

// runRandom drives n with uniform unicast traffic for cycles and drains.
func runRandom(t *testing.T, n *Network, cycles int, rate float64, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < cycles; i++ {
		if rng.Float64() < rate {
			src, dst := rng.Intn(n.cfg.Mesh.N()), rng.Intn(n.cfg.Mesh.N())
			if src != dst {
				n.Inject(Message{Src: src, Dst: dst, Class: Data, Inject: n.Now()})
			}
		}
		n.Step()
	}
	if !n.Drain(500000) {
		t.Fatal("network failed to drain")
	}
}

// Observer event counts must agree with the Stats counters the events
// mirror.
func TestObserverEventsMatchStats(t *testing.T) {
	n := New(Config{Mesh: topology.New10x10(), Width: tech.Width8B})
	c := &countingObserver{}
	n.AttachObserver(c)
	runRandom(t, n, 5000, 0.5, 42)
	s := n.Stats()

	if c.injected != s.PacketsInjected {
		t.Errorf("PacketInjected events = %d, stats.PacketsInjected = %d", c.injected, s.PacketsInjected)
	}
	if c.delivered != s.PacketsEjected {
		t.Errorf("PacketDelivered events = %d, stats.PacketsEjected = %d", c.delivered, s.PacketsEjected)
	}
	if c.sent != s.RouterTraversals {
		t.Errorf("FlitSent events = %d, stats.RouterTraversals = %d", c.sent, s.RouterTraversals)
	}
	if c.ejected != s.FlitsEjected {
		t.Errorf("FlitEjected events = %d, stats.FlitsEjected = %d", c.ejected, s.FlitsEjected)
	}
	if c.localSent != s.FlitsEjected {
		t.Errorf("local-port FlitSent events = %d, stats.FlitsEjected = %d", c.localSent, s.FlitsEjected)
	}
	if c.flitLatSum != s.FlitLatency {
		t.Errorf("FlitEjected latency sum = %d, stats.FlitLatency = %d", c.flitLatSum, s.FlitLatency)
	}
	if c.cycles != s.Cycles {
		t.Errorf("CycleEnd events = %d, stats.Cycles = %d", c.cycles, s.Cycles)
	}
	if c.mcast != 0 {
		t.Errorf("unexpected MulticastDelivered events: %d", c.mcast)
	}
}

// Multicast deliveries must fire MulticastDelivered once per served
// destination, under every delivery mode.
func TestObserverMulticastEvents(t *testing.T) {
	for _, mode := range []MulticastMode{MulticastExpand, MulticastVCT, MulticastRF} {
		t.Run(mode.String(), func(t *testing.T) {
			m := topology.New10x10()
			n := New(Config{Mesh: m, Multicast: mode, RFEnabled: m.RFPlacement(50)})
			c := &countingObserver{}
			n.AttachObserver(c)
			src := m.Caches()[0]
			var dbv uint64 = 0b1011 // cores 0, 1, 3
			n.Inject(Message{Src: src, Multicast: true, DBV: dbv, Class: Invalidate, Inject: 0})
			if !n.Drain(100000) {
				t.Fatal("drain failed")
			}
			if want := int64(DBVCount(dbv)); c.mcast != want {
				t.Errorf("MulticastDelivered events = %d, want %d", c.mcast, want)
			}
			if c.mcast != n.Stats().MulticastDeliveries {
				t.Errorf("events %d != stats deliveries %d", c.mcast, n.Stats().MulticastDeliveries)
			}
		})
	}
}

// SetDeliveryHook must keep its replace semantics on top of the
// observer plumbing, and detaching must stop events.
func TestDeliveryHookReplaceAndDetach(t *testing.T) {
	n := New(Config{Mesh: topology.New10x10()})
	var a, b int
	n.SetDeliveryHook(func(Message, int64) { a++ })
	n.SetDeliveryHook(func(Message, int64) { b++ }) // replaces the first
	c := &countingObserver{}
	n.AttachObserver(c)
	n.Inject(Message{Src: 0, Dst: 99, Class: Request, Inject: 0})
	if !n.Drain(100000) {
		t.Fatal("drain failed")
	}
	if a != 0 || b != 1 {
		t.Errorf("hook calls a=%d b=%d, want 0 and 1", a, b)
	}
	if c.delivered != 1 {
		t.Errorf("observer deliveries = %d, want 1", c.delivered)
	}
	n.DetachObserver(c)
	n.SetDeliveryHook(nil)
	n.Inject(Message{Src: 0, Dst: 99, Class: Request, Inject: n.Now()})
	if !n.Drain(100000) {
		t.Fatal("drain failed")
	}
	if b != 1 || c.delivered != 1 {
		t.Errorf("detached observer still saw events: hook=%d deliveries=%d", b, c.delivered)
	}
}

// Audit must report exact flit conservation at every cycle of a live
// run, zero credit violations, and an empty report after draining.
func TestAuditConservationEveryCycle(t *testing.T) {
	n := New(Config{Mesh: topology.New10x10(), Width: tech.Width4B, VCsPerClass: 2, BufDepth: 2})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		if rng.Float64() < 0.6 {
			src, dst := rng.Intn(100), rng.Intn(100)
			if src != dst {
				n.Inject(Message{Src: src, Dst: dst, Class: MemLine, Inject: n.Now()})
			}
		}
		n.Step()
		rep := n.Audit()
		if err := rep.ConservationError(); err != 0 {
			t.Fatalf("cycle %d: conservation error %+d (%+v)", n.Now(), err, rep)
		}
		if rep.CreditViolations != 0 {
			t.Fatalf("cycle %d: %d credit violations", n.Now(), rep.CreditViolations)
		}
	}
	if !n.Drain(500000) {
		t.Fatal("drain failed")
	}
	rep := n.Audit()
	if rep.FlitsBuffered != 0 || rep.FlitsOnLinks != 0 || rep.PacketsInFlight != 0 {
		t.Errorf("drained network not empty: %+v", rep)
	}
	if rep.OldestHeadAge != 0 {
		t.Errorf("drained network reports stuck head flit: %+v", rep)
	}
}

// DumpRouter must render occupied state without panicking mid-run.
func TestDumpRouter(t *testing.T) {
	n := New(Config{Mesh: topology.New10x10()})
	n.Inject(Message{Src: 0, Dst: 99, Class: MemLine, Inject: 0})
	n.Run(6)
	dump := n.DumpRouter(0)
	if !strings.Contains(dump, "router 0") {
		t.Errorf("dump missing header: %q", dump)
	}
	if !strings.Contains(dump, "pkt 0->99") {
		t.Errorf("dump missing in-flight packet: %q", dump)
	}
}
