package noc_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// randomConfig draws a design point from the space the paper explores:
// mesh size, link width, VC count, buffer depth, shortcut set (none,
// heuristic-selected, or arbitrary legal edges), local speedup, and
// routing function.
func randomConfig(rng *rand.Rand) noc.Config {
	dims := [][2]int{{6, 6}, {6, 8}, {8, 8}, {10, 10}}
	d := dims[rng.Intn(len(dims))]
	m := topology.New(d[0], d[1])
	widths := []tech.LinkWidth{tech.Width4B, tech.Width8B, tech.Width16B}

	cfg := noc.Config{
		Mesh:            m,
		Width:           widths[rng.Intn(len(widths))],
		VCsPerClass:     1 + rng.Intn(4),
		BufDepth:        1 + rng.Intn(4),
		EscapeTimeout:   int64(4 << rng.Intn(4)),
		AdaptiveRouting: rng.Intn(2) == 0,
	}
	if rng.Intn(2) == 0 {
		cfg.LocalSpeedup = 1 + rng.Intn(4)
	}
	switch rng.Intn(3) {
	case 0: // plain mesh, no shortcuts
	case 1: // heuristic selection, as the real designs use
		sizes := []int{25, 50, 100}
		sz := sizes[rng.Intn(len(sizes))]
		// The 25- and 50-router placements substitute corners by 10x10
		// coordinates; smaller meshes take the maximal placement.
		if sz != 100 && (m.W != 10 || m.H != 10) {
			sz = 100
		}
		rf := m.RFPlacement(sz)
		eligible := make(map[int]bool, len(rf))
		for _, id := range rf {
			eligible[id] = true
		}
		cfg.Shortcuts = shortcut.SelectMaxCost(m.Graph(), shortcut.Params{
			Budget:   1 + rng.Intn(8),
			Eligible: func(id int) bool { return eligible[id] },
		})
		cfg.RFEnabled = rf
	case 2: // arbitrary legal edges between distinct non-corner routers
		n := m.N()
		corner := map[int]bool{
			0: true, m.W - 1: true, n - m.W: true, n - 1: true,
		}
		seen := map[shortcut.Edge]bool{}
		for len(cfg.Shortcuts) < 1+rng.Intn(6) {
			e := shortcut.Edge{From: rng.Intn(n), To: rng.Intn(n)}
			if e.From == e.To || corner[e.From] || corner[e.To] || seen[e] {
				continue
			}
			seen[e] = true
			cfg.Shortcuts = append(cfg.Shortcuts, e)
		}
	}
	return cfg
}

// deliveryLedger records per-message delivery counts. Injection is
// throttled to at most one unicast per cycle, so (Inject, Src, Dst) is a
// unique message key.
type deliveryLedger struct {
	noc.BaseObserver
	delivered map[[3]int64]int
	dups      int
}

func (l *deliveryLedger) PacketDelivered(msg noc.Message, _ int64, _ int) {
	k := [3]int64{msg.Inject, int64(msg.Src), int64(msg.Dst)}
	l.delivered[k]++
	if l.delivered[k] > 1 {
		l.dups++
	}
}

// TestPropertyConservationAndDelivery drives randomized design points
// with random unicast traffic under the invariant checker, then asserts
// every injected message was delivered exactly once.
func TestPropertyConservationAndDelivery(t *testing.T) {
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			cfg := randomConfig(rng)

			chk := obs.NewInvariantChecker()
			chk.Every = 128
			chk.Fail = func(format string, args ...any) {
				t.Fatalf("config %+v: "+format, append([]any{cfg}, args...)...)
			}
			ledger := &deliveryLedger{delivered: map[[3]int64]int{}}

			n := noc.New(cfg)
			n.AttachObserver(chk)
			n.AttachObserver(ledger)

			injected := map[[3]int64]bool{}
			N := cfg.Mesh.N()
			for i := 0; i < 4000; i++ {
				if rng.Float64() < 0.4 {
					src, dst := rng.Intn(N), rng.Intn(N)
					if src != dst {
						k := [3]int64{n.Now(), int64(src), int64(dst)}
						if !injected[k] {
							injected[k] = true
							n.Inject(noc.Message{Src: src, Dst: dst, Class: noc.Data, Inject: n.Now()})
						}
					}
				}
				n.Step()
			}
			if !n.Drain(1000000) {
				t.Fatalf("config %+v failed to drain:\n%s", cfg, stuckDump(n))
			}
			chk.Check(n)

			if ledger.dups != 0 {
				t.Errorf("%d duplicate deliveries", ledger.dups)
			}
			if got, want := len(ledger.delivered), len(injected); got != want {
				t.Errorf("delivered %d distinct messages, injected %d", got, want)
			}
			for k := range injected {
				if ledger.delivered[k] != 1 {
					t.Errorf("message %v delivered %d times, want 1", k, ledger.delivered[k])
				}
			}
			if rep := n.Audit(); rep.ConservationError() != 0 || rep.FlitsBuffered != 0 {
				t.Errorf("drained network not clean: %+v", rep)
			}
		})
	}
}

// TestFaultPropertyConservationAndDelivery is the property suite under
// fire: random design points carry a random transient-fault model
// (corruption plus retransmission) and a random permanent-failure
// schedule — up to every shortcut band killed, plus mesh links — and
// must still deliver every message exactly once with flit conservation
// intact.
func TestFaultPropertyConservationAndDelivery(t *testing.T) {
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(7000 + trial)))
			cfg := randomConfig(rng)
			if rng.Intn(2) == 0 {
				cfg.Fault = noc.FaultConfig{
					MeshBER: rng.Float64() * 0.01,
					RFBER:   rng.Float64() * 0.05,
					Seed:    int64(1 + trial),
				}
			}

			// Schedule: each shortcut band dies with probability 2/3 (some
			// trials lose all of them); up to three mesh links die too.
			type kill struct {
				cycle int64
				rf    bool
				a, b  int
			}
			var kills []kill
			for _, e := range cfg.Shortcuts {
				if rng.Intn(3) < 2 {
					kills = append(kills, kill{cycle: rng.Int63n(3000), rf: true, a: e.From})
				}
			}
			m := cfg.Mesh
			for i := rng.Intn(4); i > 0; i-- {
				r := rng.Intn(m.N())
				c := m.Coord(r)
				if c.X+1 < m.W {
					kills = append(kills, kill{cycle: rng.Int63n(3000), a: r, b: m.ID(c.X+1, c.Y)})
				}
			}

			chk := obs.NewInvariantChecker()
			chk.Every = 128
			chk.Fail = func(format string, args ...any) {
				t.Fatalf("config %+v: "+format, append([]any{cfg}, args...)...)
			}
			ledger := &deliveryLedger{delivered: map[[3]int64]int{}}

			n := noc.New(cfg)
			n.AttachObserver(chk)
			n.AttachObserver(ledger)

			injected := map[[3]int64]bool{}
			N := cfg.Mesh.N()
			for i := 0; i < 4000; i++ {
				for _, k := range kills {
					if k.cycle != n.Now() {
						continue
					}
					var err error
					if k.rf {
						err = n.KillShortcut(k.a)
					} else {
						err = n.KillMeshLink(k.a, k.b)
					}
					// Refused kills (already dead, would disconnect) are
					// part of the contract, not failures.
					_ = err
				}
				if rng.Float64() < 0.4 {
					src, dst := rng.Intn(N), rng.Intn(N)
					if src != dst {
						k := [3]int64{n.Now(), int64(src), int64(dst)}
						if !injected[k] {
							injected[k] = true
							n.Inject(noc.Message{Src: src, Dst: dst, Class: noc.Data, Inject: n.Now()})
						}
					}
				}
				n.Step()
			}
			if !n.Drain(1000000) {
				t.Fatalf("config %+v failed to drain:\n%s", cfg, stuckDump(n))
			}
			chk.Check(n)

			if ledger.dups != 0 {
				t.Errorf("%d duplicate deliveries", ledger.dups)
			}
			if got, want := len(ledger.delivered), len(injected); got != want {
				t.Errorf("delivered %d distinct messages, injected %d", got, want)
			}
			if rep := n.Audit(); rep.ConservationError() != 0 || rep.FlitsBuffered != 0 {
				t.Errorf("drained network not clean: %+v", rep)
			}
		})
	}
}

// stuckDump renders every router still holding flits, for drain-failure
// diagnostics.
func stuckDump(n *noc.Network) string {
	rep := n.Audit()
	if rep.OldestRouter < 0 {
		return "no stuck router found"
	}
	return n.DumpRouter(rep.OldestRouter)
}

// TestPropertyCheckerCatchesCorruption is the negative control for the
// property suite: on a random config the checker must flag a seeded
// counter fault within one audit period.
func TestPropertyCheckerCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cfg := randomConfig(rng)

	chk := obs.NewInvariantChecker()
	chk.Every = 64
	var violations int
	chk.Fail = func(string, ...any) { violations++ }

	n := noc.New(cfg)
	n.AttachObserver(chk)
	N := cfg.Mesh.N()
	for i := 0; i < 256; i++ {
		if src, dst := rng.Intn(N), rng.Intn(N); src != dst {
			n.Inject(noc.Message{Src: src, Dst: dst, Class: noc.Data, Inject: n.Now()})
		}
		n.Step()
	}
	if violations != 0 {
		t.Fatal("violation before the fault was injected")
	}
	n.CorruptFlitCounter(+1)
	n.Run(chk.Every + 1)
	if violations == 0 {
		t.Error("checker missed the seeded fault on a randomized config")
	}
}
