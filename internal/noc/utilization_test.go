package noc

import (
	"strings"
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

func TestLinkUseCountsFlits(t *testing.T) {
	m := topology.New10x10()
	n := New(Config{Mesh: m, Width: tech.Width16B})
	// 3-flit message straight east across four hops.
	n.Inject(Message{Src: m.ID(2, 4), Dst: m.ID(6, 4), Class: Data, Inject: 0})
	if !n.Drain(10000) {
		t.Fatal("no drain")
	}
	u := n.LinkUse()
	// Every eastbound link on the path carried exactly 3 flits.
	for x := 2; x < 6; x++ {
		if got := u.Flits[m.ID(x, 4)][portEast]; got != 3 {
			t.Errorf("link (%d,4)->E carried %d flits, want 3", x, got)
		}
	}
	// Off-path links idle.
	if got := u.Flits[m.ID(2, 4)][portNorth]; got != 0 {
		t.Errorf("off-path link carried %d flits", got)
	}
	// Local ports: injection at source, ejection at destination.
	if got := u.Flits[m.ID(6, 4)][portLocal]; got != 3 {
		t.Errorf("ejection port carried %d flits, want 3", got)
	}
}

func TestUtilizationAndHottest(t *testing.T) {
	m := topology.New10x10()
	n := New(Config{Mesh: m, Width: tech.Width16B})
	for i := 0; i < 50; i++ {
		n.Inject(Message{Src: m.ID(0, 5), Dst: m.ID(9, 5), Class: Data, Inject: n.Now()})
		n.Run(10)
	}
	if !n.Drain(50000) {
		t.Fatal("no drain")
	}
	u := n.LinkUse()
	_, _, util := u.MaxMeshUtilization()
	if util <= 0 || util > 1 {
		t.Errorf("max utilization = %v, want (0,1]", util)
	}
	hot := n.HottestLinks(3)
	if len(hot) != 3 {
		t.Fatalf("hottest = %v", hot)
	}
	// The row-5 eastbound corridor must dominate.
	if !strings.Contains(hot[0], "->E") || !strings.Contains(hot[0], ",5)") {
		t.Errorf("hottest link %q not on the eastbound corridor", hot[0])
	}
}

func TestHeatmapRenders(t *testing.T) {
	m := topology.New10x10()
	n := New(Config{Mesh: m, Width: tech.Width4B})
	for i := 0; i < 200; i++ {
		n.Inject(Message{Src: m.ID(1, 1), Dst: m.ID(8, 8), Class: Data, Inject: n.Now()})
		n.Run(5)
	}
	n.Drain(100000)
	hm := n.Heatmap()
	lines := strings.Split(strings.TrimRight(hm, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("heatmap has %d rows, want 10", len(lines))
	}
	if !strings.ContainsAny(hm, ".:-=+*#%@") {
		t.Error("heatmap shows no load at all")
	}
}

func TestEscapeSwitchTriggersUnderBlockage(t *testing.T) {
	// Force VA failures: tiny VC budget and a flood toward one router via
	// the shortcut path. Escape switches must occur, and everything
	// still delivers.
	m := topology.New10x10()
	n := New(Config{
		Mesh: m, Width: tech.Width4B,
		VCsPerClass: 1, BufDepth: 2, EscapeTimeout: 4,
		Shortcuts: []shortcut.Edge{{From: m.ID(1, 1), To: m.ID(8, 8)}},
	})
	injected := 0
	for i := 0; i < 2000; i++ {
		n.Inject(Message{Src: m.ID(1, 1), Dst: m.ID(9, 8), Class: MemLine, Inject: n.Now()})
		n.Inject(Message{Src: m.ID(0, 1), Dst: m.ID(9, 8), Class: MemLine, Inject: n.Now()})
		injected += 2
		n.Step()
	}
	if !n.Drain(2000000) {
		t.Fatalf("stuck with %d in flight", n.InFlight())
	}
	s := n.Stats()
	if s.PacketsEjected != int64(injected) {
		t.Errorf("ejected %d, want %d", s.PacketsEjected, injected)
	}
	if s.EscapeSwitches == 0 {
		t.Error("expected escape-VC switches under single-VC blockage")
	}
}

func TestMulticastEpochArbitrationRotates(t *testing.T) {
	// Two clusters with pending multicasts must share the band.
	m := topology.New10x10()
	cfg := Config{
		Mesh: m, Width: tech.Width16B,
		Multicast: MulticastRF, RFEnabled: m.RFPlacement(50),
		MulticastEpoch: 64,
	}
	n := New(cfg)
	dbv := uint64(1<<3 | 1<<40 | 1<<60)
	// Saturate two clusters' central banks with multicasts.
	for i := 0; i < 20; i++ {
		n.Inject(Message{Src: m.CentralBank(0), Class: Invalidate, Multicast: true, DBV: dbv, Inject: n.Now()})
		n.Inject(Message{Src: m.CentralBank(3), Class: Fill, Multicast: true, DBV: dbv, Inject: n.Now()})
		n.Step()
	}
	if !n.Drain(100000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	want := int64(40 * DBVCount(dbv))
	if s.MulticastDeliveries != want {
		t.Errorf("deliveries = %d, want %d", s.MulticastDeliveries, want)
	}
}

func TestMulticastForwardToCentralBank(t *testing.T) {
	// A non-central cache bank's multicast first crosses the mesh to its
	// cluster's central bank.
	m := topology.New10x10()
	cfg := Config{
		Mesh: m, Width: tech.Width16B,
		Multicast: MulticastRF, RFEnabled: m.RFPlacement(50),
	}
	n := New(cfg)
	var src int
	for _, id := range m.CacheClusters()[0] {
		if id != m.CentralBank(0) {
			src = id
			break
		}
	}
	n.Inject(Message{Src: src, Class: Invalidate, Multicast: true, DBV: 1 << 10, Inject: 0})
	if !n.Drain(20000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	if s.MulticastDeliveries != 1 {
		t.Fatalf("deliveries = %d, want 1", s.MulticastDeliveries)
	}
	// The forward hop used the mesh (some mesh flit-hops on a cluster
	// where src != central).
	if s.MeshFlitHops == 0 {
		t.Error("expected mesh traffic for the forward to the central bank")
	}
}

func TestVCTSetupPenaltySlowsFirstSend(t *testing.T) {
	m := topology.New10x10()
	dbv := uint64(1<<12 | 1<<45)
	send := func(n *Network) float64 {
		before := n.Stats()
		n.Inject(Message{Src: m.Caches()[2], Class: Fill, Multicast: true, DBV: dbv, Inject: n.Now()})
		if !n.Drain(20000) {
			t.Fatal("no drain")
		}
		after := n.Stats()
		return float64(after.MulticastLatency-before.MulticastLatency) /
			float64(after.MulticastDeliveries-before.MulticastDeliveries)
	}
	cfg := Config{Mesh: m, Width: tech.Width16B, Multicast: MulticastVCT}
	n := New(cfg)
	first := send(n)
	second := send(n)
	if second >= first {
		t.Errorf("tree reuse (%.1f) should beat setup (%.1f)", second, first)
	}
	s := n.Stats()
	if s.VCTMisses != 1 || s.VCTHits != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", s.VCTHits, s.VCTMisses)
	}
}

func TestVCTTableEviction(t *testing.T) {
	m := topology.New10x10()
	cfg := Config{Mesh: m, Width: tech.Width16B, Multicast: MulticastVCT, VCTTableSize: 2}
	n := New(cfg)
	send := func(dbv uint64) {
		n.Inject(Message{Src: m.Caches()[0], Class: Invalidate, Multicast: true, DBV: dbv, Inject: n.Now()})
		if !n.Drain(20000) {
			t.Fatal("no drain")
		}
	}
	send(1 << 1) // miss, installs A
	send(1 << 2) // miss, installs B
	send(1 << 3) // miss, evicts A
	send(1 << 1) // miss again: A was evicted
	s := n.Stats()
	if s.VCTMisses != 4 || s.VCTHits != 0 {
		t.Errorf("hits/misses = %d/%d, want 0/4 with FIFO eviction", s.VCTHits, s.VCTMisses)
	}
}

func TestWormholeBackpressure(t *testing.T) {
	// With 1 VC and depth 2, a long message through a shared corridor
	// must backpressure the NI: injection stalls rather than overflowing.
	m := topology.New10x10()
	n := New(Config{Mesh: m, Width: tech.Width4B, VCsPerClass: 1, BufDepth: 2})
	for i := 0; i < 30; i++ {
		n.Inject(Message{Src: m.ID(0, 0), Dst: m.ID(9, 0), Class: MemLine, Inject: n.Now()})
	}
	// All 30 x 33-flit messages share one VC chain; no panic, full
	// delivery.
	if !n.Drain(2000000) {
		t.Fatalf("stuck with %d in flight", n.InFlight())
	}
	s := n.Stats()
	if s.PacketsEjected != 30 {
		t.Errorf("ejected %d, want 30", s.PacketsEjected)
	}
	if s.FlitsEjected != 30*33 {
		t.Errorf("flits = %d, want %d", s.FlitsEjected, 30*33)
	}
}

func TestObservedFrequencyMatchesInjection(t *testing.T) {
	m := topology.New10x10()
	n := New(Config{Mesh: m, Width: tech.Width16B})
	n.Inject(Message{Src: 5, Dst: 50, Class: Request, Inject: 0})
	n.Inject(Message{Src: 5, Dst: 50, Class: Data, Inject: 0})
	n.Inject(Message{Src: 7, Dst: 3, Class: Request, Inject: 0})
	freq := n.ObservedFrequency()
	if freq[5][50] != 2 || freq[7][3] != 1 {
		t.Errorf("freq = %v / %v", freq[5][50], freq[7][3])
	}
	n.ResetObservedFrequency()
	freq = n.ObservedFrequency()
	if freq[5] != nil {
		t.Error("reset did not clear counters")
	}
}
