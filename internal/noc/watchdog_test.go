package noc

import (
	"math/rand"
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// soakTraffic injects random unicast traffic for cycles steps and
// returns the per-message injection ledger.
func soakTraffic(n *Network, m *topology.Mesh, seed int64, cycles int, rate float64, mid func(*Network, int)) map[[3]int64]bool {
	rng := rand.New(rand.NewSource(seed))
	injected := map[[3]int64]bool{}
	for i := 0; i < cycles; i++ {
		if mid != nil {
			mid(n, i)
		}
		if rng.Float64() < rate {
			src, dst := rng.Intn(m.N()), rng.Intn(m.N())
			if src != dst {
				k := [3]int64{n.Now(), int64(src), int64(dst)}
				if !injected[k] {
					injected[k] = true
					n.Inject(Message{Src: src, Dst: dst, Class: Data, Inject: n.Now()})
				}
			}
		}
		n.Step()
	}
	return injected
}

// assertExactlyOnce checks the end-to-end ledger after a drained run:
// every injected message was delivered exactly once or explicitly
// abandoned, and the flit conservation identity holds.
func assertExactlyOnce(t *testing.T, n *Network, ledger *faultLedger, injected map[[3]int64]bool) {
	t.Helper()
	s := n.Stats()
	if ledger.dups != 0 {
		t.Errorf("duplicate deliveries: %d", ledger.dups)
	}
	if got, want := int64(len(ledger.delivered))+s.PacketsLost, int64(len(injected)); got != want {
		t.Errorf("delivery ledger broken: %d delivered + %d lost != %d injected",
			len(ledger.delivered), s.PacketsLost, want)
	}
	if s.PacketsInjected != s.PacketsEjected+s.PacketsLost {
		t.Errorf("stats ledger broken: injected %d != ejected %d + lost %d",
			s.PacketsInjected, s.PacketsEjected, s.PacketsLost)
	}
	rep := n.Audit()
	if err := rep.ConservationError(); err != 0 {
		t.Errorf("flit conservation broken: %+d (%+v)", err, rep)
	}
	if rep.FlitsBuffered != 0 {
		t.Errorf("drained network still buffers %d flits", rep.FlitsBuffered)
	}
}

// watchdogConfig returns a config with aggressive watchdog horizons so
// recovery fires inside short test runs.
func watchdogConfig(m *topology.Mesh, fault FaultConfig, integrity bool) Config {
	return Config{
		Mesh:      m,
		Width:     tech.Width16B,
		Shortcuts: shortcut.SelectMaxCost(m.Graph(), shortcut.Params{Budget: 4}),
		Fault:     fault,
		Integrity: integrity,
		Watchdog: WatchdogConfig{
			Enabled: true, CheckEvery: 256, StallHorizon: 4_096, Grace: 512,
		},
	}
}

// TestPropertyExactlyOnceUnderFaultModes is the PR's core property: for
// each adversarial fault mode at a non-zero rate, with the watchdog
// armed, every injected packet is delivered exactly once or explicitly
// abandoned, and flit conservation survives whatever recovery ran.
func TestPropertyExactlyOnceUnderFaultModes(t *testing.T) {
	t.Parallel()
	modes := []struct {
		name     string
		fault    FaultConfig
		activity func(Stats) int64
	}{
		{"misroute", FaultConfig{MisrouteRate: 0.02, Seed: 3},
			func(s Stats) int64 { return s.MisroutedPackets }},
		{"misdeliver", FaultConfig{MisdeliverRate: 0.2, Seed: 5},
			func(s Stats) int64 { return s.MisdeliveredPackets }},
		{"duplicate", FaultConfig{DuplicateRate: 0.2, Seed: 7},
			func(s Stats) int64 { return s.DuplicatesInjected }},
		{"credit-leak", FaultConfig{CreditLeakRate: 0.002, Seed: 9},
			func(s Stats) int64 { return s.CreditLeaks }},
		{"stuck-vc", FaultConfig{StuckVCRate: 0.001, Seed: 11},
			func(s Stats) int64 { return s.StuckVCs }},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			m := topology.New(6, 6)
			n := New(watchdogConfig(m, mode.fault, true))
			ledger := newFaultLedger()
			n.AttachObserver(ledger)
			injected := soakTraffic(n, m, 21, 6000, 0.4, nil)
			if !n.Drain(200_000) {
				rep := n.Audit()
				t.Fatalf("network wedged despite watchdog: %d in flight, oldest head %d cycles\n%s",
					n.InFlight(), rep.OldestHeadAge, n.DumpRouter(rep.OldestRouter))
			}
			if mode.activity(n.Stats()) == 0 {
				t.Fatalf("fault mode %s never fired — rate too low for the test to mean anything", mode.name)
			}
			assertExactlyOnce(t, n, ledger, injected)
		})
	}
}

// TestWatchdogUnsticksVCs deterministically wedges input VCs mid-run
// and checks the stage-1 recovery clears them so the network drains.
func TestWatchdogUnsticksVCs(t *testing.T) {
	t.Parallel()
	m := topology.New(6, 6)
	n := New(watchdogConfig(m, FaultConfig{}, true))
	ledger := newFaultLedger()
	n.AttachObserver(ledger)
	injected := soakTraffic(n, m, 31, 5000, 0.5, func(n *Network, i int) {
		if i == 1500 {
			// Wedge every normal VC on the four input ports around the
			// mesh center.
			for _, r := range []int{14, 15, 20, 21} {
				for p := portNorth; p <= portWest; p++ {
					if err := n.StickVC(r, p); err != nil {
						t.Fatalf("StickVC(%d,%d): %v", r, p, err)
					}
				}
			}
		}
	})
	if !n.Drain(200_000) {
		t.Fatalf("stuck VCs never recovered: %d in flight", n.InFlight())
	}
	s := n.Stats()
	if s.StuckVCs == 0 {
		t.Fatal("StickVC registered no faults")
	}
	if s.WatchdogRecoveries == 0 || s.RecoveryVCUnsticks == 0 {
		t.Errorf("watchdog never unstuck (recoveries %d, unsticks %d)",
			s.WatchdogRecoveries, s.RecoveryVCUnsticks)
	}
	assertExactlyOnce(t, n, ledger, injected)
}

// TestWatchdogRepairsLeakedCredits starves a hot link of credits and
// checks the stage-1 credit re-audit restores them.
func TestWatchdogRepairsLeakedCredits(t *testing.T) {
	t.Parallel()
	m := topology.New(6, 6)
	n := New(watchdogConfig(m, FaultConfig{}, true))
	ledger := newFaultLedger()
	n.AttachObserver(ledger)
	injected := soakTraffic(n, m, 41, 5000, 0.5, func(n *Network, i int) {
		if i == 1500 {
			// Bleed credits from several central links, repeatedly: each
			// call destroys one credit until the buffers are exhausted.
			for _, lk := range [][2]int{{14, 15}, {15, 21}, {20, 21}, {14, 20}} {
				for k := 0; k < 16; k++ {
					if err := n.LeakLinkCredit(lk[0], lk[1]); err != nil {
						t.Fatalf("LeakLinkCredit%v: %v", lk, err)
					}
				}
			}
		}
	})
	if !n.Drain(200_000) {
		t.Fatalf("leaked credits never repaired: %d in flight", n.InFlight())
	}
	s := n.Stats()
	if s.CreditLeaks == 0 {
		t.Fatal("LeakLinkCredit registered no faults")
	}
	if s.WatchdogRecoveries == 0 || s.RecoveryCreditRepairs == 0 {
		t.Errorf("watchdog never repaired credits (recoveries %d, repairs %d)",
			s.WatchdogRecoveries, s.RecoveryCreditRepairs)
	}
	assertExactlyOnce(t, n, ledger, injected)
}

// TestPropertyExactlyOnceMisrouteAndBandKill combines stochastic
// misrouting with deterministic band kills mid-run — the RF overlay
// degrades while packets are being diverted — and requires the
// exactly-once ledger to survive.
func TestPropertyExactlyOnceMisrouteAndBandKill(t *testing.T) {
	t.Parallel()
	m := topology.New(6, 6)
	cfg := watchdogConfig(m, FaultConfig{MisrouteRate: 0.02, RetryLimit: 6, Seed: 13}, true)
	n := New(cfg)
	ledger := newFaultLedger()
	n.AttachObserver(ledger)
	bands := n.Config().Shortcuts
	if len(bands) < 2 {
		t.Fatalf("want >= 2 bands for the kill schedule, got %d", len(bands))
	}
	injected := soakTraffic(n, m, 51, 6000, 0.4, func(n *Network, i int) {
		switch i {
		case 2000:
			if err := n.KillShortcut(bands[0].From); err != nil {
				t.Fatalf("KillShortcut(%d): %v", bands[0].From, err)
			}
		case 3500:
			if err := n.KillShortcut(bands[1].From); err != nil {
				t.Fatalf("KillShortcut(%d): %v", bands[1].From, err)
			}
		}
	})
	if !n.Drain(200_000) {
		t.Fatalf("network wedged: %d in flight", n.InFlight())
	}
	s := n.Stats()
	if s.MisroutedPackets == 0 {
		t.Fatal("misroute mode never fired")
	}
	if s.LinkFailures < 2 {
		t.Fatalf("band kills not registered: %d link failures", s.LinkFailures)
	}
	assertExactlyOnce(t, n, ledger, injected)
}

// TestPropertyEscapeRouteSpanningTree kills random (connectivity-
// preserving) mesh link sets and verifies the escape routing function
// still realizes a spanning tree: from every router, following
// escapeRoute hops reaches every destination over live links without
// ever revisiting a router (cycle-free), in at most N-1 hops.
func TestPropertyEscapeRouteSpanningTree(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 6; seed++ {
		m := topology.New(6, 6)
		n := New(Config{Mesh: m, Width: tech.Width16B})
		rng := rand.New(rand.NewSource(seed))
		kills := 0
		for attempt := 0; attempt < 20 && kills < 8; attempt++ {
			a := rng.Intn(m.N())
			ax, ay := a%6, a/6
			var b int
			if rng.Intn(2) == 0 && ax+1 < 6 {
				b = a + 1
			} else if ay+1 < 6 {
				b = a + 6
			} else {
				continue
			}
			if err := n.KillMeshLink(a, b); err == nil {
				kills++
			}
		}
		dead := map[[2]int]bool{}
		for _, lk := range n.DeadMeshLinks() {
			dead[lk] = true
			dead[[2]int{lk[1], lk[0]}] = true
		}
		N := m.N()
		for d := 0; d < N; d++ {
			for r := 0; r < N; r++ {
				cur, hops := r, 0
				seen := map[int]bool{r: true}
				for cur != d {
					port := n.escapeRoute(cur, d)
					if port == portLocal || port == portRF {
						t.Fatalf("seed %d kills %d: escapeRoute(%d,%d) = %s before arrival",
							seed, kills, cur, d, PortName(port))
					}
					nb := neighborThrough(n, cur, port)
					if nb < 0 {
						t.Fatalf("seed %d: escapeRoute(%d,%d) points off-mesh via %s",
							seed, cur, d, PortName(port))
					}
					if dead[[2]int{cur, nb}] {
						t.Fatalf("seed %d: escapeRoute(%d,%d) crosses dead link %d-%d",
							seed, cur, d, cur, nb)
					}
					if seen[nb] {
						t.Fatalf("seed %d: escape path to %d revisits router %d (cycle)", seed, d, nb)
					}
					seen[nb] = true
					cur = nb
					if hops++; hops >= N {
						t.Fatalf("seed %d: escape path %d->%d exceeds %d hops", seed, r, d, N)
					}
				}
			}
		}
	}
}
