package noc

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// digestObserver folds every observed event into a running FNV-1a
// digest, giving a compact fingerprint of the full event stream (order
// included) for cross-worker-count comparison.
type digestObserver struct {
	BaseObserver
	h      uint64
	events int64
}

func newDigestObserver() *digestObserver { return &digestObserver{h: 14695981039346656037} }

func (d *digestObserver) note(format string, args ...any) {
	h := fnv.New64a()
	fmt.Fprintf(h, format, args...)
	d.h = (d.h ^ h.Sum64()) * 1099511628211
	d.events++
}

func (d *digestObserver) PacketInjected(m Message, now int64) { d.note("inj %v %d", m, now) }
func (d *digestObserver) FlitSent(r, p int, now int64)        { d.note("sent %d %d %d", r, p, now) }
func (d *digestObserver) FlitEjected(r int, lat int64)        { d.note("ej %d %d", r, lat) }
func (d *digestObserver) PacketDelivered(m Message, at int64, hops int) {
	d.note("del %v %d %d", m, at, hops)
}
func (d *digestObserver) MulticastDelivered(m Message, at int64) { d.note("mdel %v %d", m, at) }
func (d *digestObserver) FlitCorrupted(r, p int, now int64)      { d.note("corr %d %d %d", r, p, now) }
func (d *digestObserver) Retransmit(r, p, a int, now int64)      { d.note("retx %d %d %d %d", r, p, a, now) }
func (d *digestObserver) IntegrityRetransmit(s, t, a int, now int64) {
	d.note("iretx %d %d %d %d", s, t, a, now)
}
func (d *digestObserver) PacketLost(m Message, now int64)         { d.note("lost %v %d", m, now) }
func (d *digestObserver) WatchdogRecovery(st, a int, now int64)   { d.note("wd %d %d %d", st, a, now) }
func (d *digestObserver) LinkFailed(r, p int, now int64)          { d.note("lf %d %d %d", r, p, now) }
func (d *digestObserver) DegradedReroute(r, p int, now int64)     { d.note("rr %d %d %d", r, p, now) }
func (d *digestObserver) DuplicateInjected(r int, now int64)      { d.note("dup %d %d", r, now) }
func (d *digestObserver) DuplicateDropped(r int, m Message, now int64) {
	d.note("dd %d %v %d", r, m, now)
}

// runWorkers drives cfg with a fixed seeded workload at the given
// worker count and returns the final statistics, a checkpoint of the
// mid-run microarchitectural state, and the event-stream digest.
func runWorkers(t *testing.T, cfg Config, workers int, seed int64) (Stats, []byte, *digestObserver) {
	t.Helper()
	cfg.StepWorkers = workers
	n, err := NewChecked(cfg)
	if err != nil {
		t.Fatalf("NewChecked(workers=%d): %v", workers, err)
	}
	obs := newDigestObserver()
	n.AttachObserver(obs)
	rng := rand.New(rand.NewSource(seed))
	classes := []Class{Request, Data, MemLine}
	for cyc := 0; cyc < 1200; cyc++ {
		if rng.Float64() < 0.7 {
			src, dst := rng.Intn(cfg.Mesh.N()), rng.Intn(cfg.Mesh.N())
			if src != dst {
				n.Inject(Message{Src: src, Dst: dst, Class: classes[rng.Intn(len(classes))], Inject: n.Now()})
			}
		}
		if (cfg.Multicast == MulticastRF || cfg.Multicast == MulticastVCT) && cyc%40 == 7 {
			banks := cfg.Mesh.Caches()
			n.Inject(Message{
				Src: banks[rng.Intn(len(banks))], Class: Invalidate, Multicast: true,
				DBV: rng.Uint64() | 1, Inject: n.Now(),
			})
		}
		n.Step()
	}
	// Checkpoint mid-flight: in-flight wormholes, reservations, wheel
	// entries and NI queues must all be byte-identical across worker
	// counts, not just the drained end state.
	snap, err := n.CheckpointState()
	if err != nil {
		t.Fatalf("CheckpointState(workers=%d): %v", workers, err)
	}
	if !n.Drain(2_000_000) {
		t.Fatalf("drain failed (workers=%d, in flight %d)", workers, n.InFlight())
	}
	return n.Stats(), snap, obs
}

// Deterministic parallel stepping: the commit-phase audit reconstructs
// the serial schedule exactly, so every worker count must produce
// bit-identical statistics, checkpoints, and observer event streams.
func TestStepWorkersBitIdentical(t *testing.T) {
	m := topology.New10x10()
	edges := shortcut.SelectMaxCost(m.Graph(), shortcut.Params{
		Budget: 16, Eligible: m.ShortcutEligible,
	})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"baseline-mesh", Config{Mesh: m, Width: tech.Width16B}},
		{"shortcuts-4B", Config{Mesh: m, Width: tech.Width4B, Shortcuts: edges}},
		{"adaptive-shortcuts", Config{Mesh: m, Width: tech.Width4B, Shortcuts: edges, AdaptiveRouting: true}},
		{"rf-multicast", Config{Mesh: m, Width: tech.Width16B, Multicast: MulticastRF, RFEnabled: m.RFPlacement(50)}},
		{"vct-multicast", Config{Mesh: m, Width: tech.Width16B, Multicast: MulticastVCT}},
		{"faulty-integrity", Config{
			Mesh: m, Width: tech.Width16B, Shortcuts: edges,
			Integrity: true,
			Fault:     FaultConfig{MeshBER: 2e-4, RFBER: 1e-3, DuplicateRate: 2e-3, Seed: 7},
			Watchdog:  WatchdogConfig{Enabled: true},
		}},
		// Misroute draws from the fault RNG during RC, which forces the
		// interleaved fallback schedule; worker counts must still agree.
		{"misroute-fallback", Config{
			Mesh: m, Width: tech.Width16B, Shortcuts: edges,
			Integrity: true,
			Fault:     FaultConfig{MisrouteRate: 2e-3, MisdeliverRate: 1e-3, Seed: 11},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			refStats, refSnap, refObs := runWorkers(t, c.cfg, 1, 42)
			if refObs.events == 0 {
				t.Fatal("reference run observed no events")
			}
			for _, w := range []int{2, 4} {
				stats, snap, obs := runWorkers(t, c.cfg, w, 42)
				if !reflect.DeepEqual(stats, refStats) {
					t.Errorf("workers=%d: stats diverge from serial:\n got %+v\nwant %+v", w, stats, refStats)
				}
				if !bytes.Equal(snap, refSnap) {
					t.Errorf("workers=%d: mid-run checkpoint bytes diverge from serial (len %d vs %d)",
						w, len(snap), len(refSnap))
				}
				if obs.h != refObs.h || obs.events != refObs.events {
					t.Errorf("workers=%d: event stream diverges from serial (%d events, digest %x; want %d, %x)",
						w, obs.events, obs.h, refObs.events, refObs.h)
				}
			}
		})
	}
}

// shardRange must partition exactly: contiguous, covering, near-equal.
func TestShardRange(t *testing.T) {
	for total := 0; total <= 23; total++ {
		for shards := 1; shards <= 8; shards++ {
			next := 0
			for i := 0; i < shards; i++ {
				lo, hi := shardRange(total, shards, i)
				if lo != next || hi < lo {
					t.Fatalf("total=%d shards=%d: shard %d = [%d,%d), want lo=%d", total, shards, i, lo, hi, next)
				}
				if sz := hi - lo; sz < total/shards || sz > total/shards+1 {
					t.Fatalf("total=%d shards=%d: shard %d size %d unbalanced", total, shards, i, sz)
				}
				next = hi
			}
			if next != total {
				t.Fatalf("total=%d shards=%d: covered %d", total, shards, next)
			}
		}
	}
}
