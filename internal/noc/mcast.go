package noc

import "fmt"

// This file implements the RF-I multicast channel of Section 3.3 and the
// VCT tree table used by the conventional-mesh multicast baseline.
//
// RF multicast: one frequency band is dedicated to multicast. Senders are
// cache banks only; a coarse-grain arbiter gives the band to one cache
// cluster per epoch, and within a cluster the designated central bank
// transmits. A bank wanting to multicast first forwards the message over
// conventional mesh links to its central bank. The transmission starts
// with a flit carrying the 64-bit destination bit vector (DBV) and the
// message's flit count; receivers not addressed by the DBV power-gate for
// the indicated duration, while addressed receivers copy each payload
// flit to the core(s) they serve as it arrives.

// mcEntry is one multicast queued for RF transmission.
type mcEntry struct {
	msg      Message
	numFlits int // payload flits (the DBV flit is extra)
}

// mcChannel is the multicast band state.
type mcChannel struct {
	n *Network
	// queues[c] holds multicasts awaiting transmission at cluster c's
	// central bank.
	queues   [][]mcEntry
	owner    int
	epochEnd int64

	cur       *mcEntry
	flitsSent int // includes the DBV flit

	// receivers tuned to the multicast band, and the cores each serves
	// (every core is served by its nearest tuned receiver).
	receivers []int
	served    map[int][]int // receiver router -> core indices
	// activeRx, for the in-flight multicast, are receivers whose served
	// cores intersect the DBV (the rest are power-gated).
	activeRx []int

	// pendingLocal holds local deliveries (receiver == core router)
	// waiting for the tail flit to arrive.
	pendingLocal []localDelivery
}

type localDelivery struct {
	at  int64
	pkt *packet
}

func newMCChannel(n *Network) *mcChannel {
	m := n.cfg.Mesh
	mc := &mcChannel{
		n:         n,
		queues:    make([][]mcEntry, len(m.CacheClusters())),
		receivers: n.cfg.MulticastReceivers,
		served:    map[int][]int{},
		owner:     -1,
	}
	// Assign every core to its nearest tuned receiver (ties to the lower
	// router id), mirroring the paper's "each RF-enabled router serves
	// two cores" example for the 50-receiver configuration.
	cores := m.Cores()
	for ci, router := range cores {
		best, bestD := -1, 1<<30
		for _, rx := range mc.receivers {
			if d := m.Manhattan(router, rx); d < bestD {
				best, bestD = rx, d
			}
		}
		if best >= 0 {
			mc.served[best] = append(mc.served[best], ci)
		}
	}
	return mc
}

// pending counts undelivered multicast work (queued + in flight).
func (mc *mcChannel) pending() int64 {
	var v int64
	for _, q := range mc.queues {
		v += int64(len(q))
	}
	if mc.cur != nil {
		v++
	}
	v += int64(len(mc.pendingLocal))
	return v
}

// submit routes a multicast toward the RF channel: directly into the
// central bank's queue if the source is the central bank, otherwise as a
// conventional-mesh unicast forward to the central bank. A source
// outside every cache cluster has no band arbiter to reach and is
// rejected with an error (the channel is unchanged).
func (mc *mcChannel) submit(msg Message) error {
	m := mc.n.cfg.Mesh
	cluster := m.ClusterOf(msg.Src)
	if cluster < 0 {
		return fmt.Errorf("noc: inject: multicast sender %d is not a cache bank", msg.Src)
	}
	central := m.CentralBank(cluster)
	entry := mcEntry{msg: msg, numFlits: msg.Flits(mc.n.cfg.Width)}
	if msg.Src == central {
		mc.queues[cluster] = append(mc.queues[cluster], entry)
		return nil
	}
	fwd := msg
	fwd.Multicast = false
	fwd.Dst = central
	p := mc.n.newPacket()
	p.msg = fwd
	p.numFlits = entry.numFlits
	p.mcFwd = &mcForward{cluster: cluster, entry: entry}
	mc.n.enqueue(msg.Src, p)
	return nil
}

// enqueueEntry queues a multicast for RF transmission, or — when the
// band has failed — degrades it to unicast expansion from its original
// source.
func (mc *mcChannel) enqueueEntry(cluster int, e mcEntry) {
	if mc.n.mcDead {
		mc.n.expandMulticast(e.msg)
		return
	}
	mc.queues[cluster] = append(mc.queues[cluster], e)
}

// failover drains every queued multicast into the unicast-expansion
// path after the band is declared dead. The transmission in flight (if
// any) completes: its flits are already on the air, the packet-granular
// failure model all links share.
func (mc *mcChannel) failover() {
	for c, q := range mc.queues {
		mc.queues[c] = nil
		for _, e := range q {
			mc.n.expandMulticast(e.msg)
		}
	}
}

// step advances the channel one cycle: epoch arbitration, one flit of
// transmission, and local-delivery retirement.
func (mc *mcChannel) step() {
	n := mc.n
	// Retire local deliveries whose tail has arrived.
	keep := mc.pendingLocal[:0]
	for _, ld := range mc.pendingLocal {
		if ld.at <= n.now {
			n.recordMulticastDelivery(ld.pkt.msg, ld.pkt.numFlits, ld.at)
			n.freePacket(ld.pkt)
		} else {
			keep = append(keep, ld)
		}
	}
	mc.pendingLocal = keep

	if mc.cur == nil {
		mc.arbitrate()
		if mc.cur == nil {
			return
		}
	}
	mc.transmitFlit()
}

// arbitrate rotates band ownership between cache clusters with pending
// multicasts; ownership persists for MulticastEpoch cycles once granted
// (the paper's coarse-grain amortization), but an owner with an empty
// queue yields immediately.
func (mc *mcChannel) arbitrate() {
	n := mc.n
	if mc.owner >= 0 && n.now < mc.epochEnd && len(mc.queues[mc.owner]) > 0 {
		mc.begin(mc.owner)
		return
	}
	k := len(mc.queues)
	for i := 1; i <= k; i++ {
		c := ((mc.owner+i)%k + k) % k
		if len(mc.queues[c]) > 0 {
			mc.owner = c
			mc.epochEnd = n.now + n.cfg.MulticastEpoch
			mc.begin(c)
			return
		}
	}
}

// begin pops the next multicast of cluster c into transmission.
func (mc *mcChannel) begin(c int) {
	e := mc.queues[c][0]
	mc.queues[c] = mc.queues[c][1:]
	mc.cur = &e
	mc.flitsSent = 0
	mc.activeRx = mc.activeRx[:0]
	for _, rx := range mc.receivers {
		for _, ci := range mc.served[rx] {
			if e.msg.DBV&(1<<uint(ci)) != 0 {
				mc.activeRx = append(mc.activeRx, rx)
				break
			}
		}
	}
}

// transmitFlit sends one flit of the in-flight multicast; receivers see
// it one cycle later (single-cycle RF-I link traversal).
func (mc *mcChannel) transmitFlit() {
	n := mc.n
	flitBits := int64(n.cfg.Width.Bits())
	arrival := n.now + 1
	if mc.flitsSent == 0 {
		// DBV flit: every tuned receiver must decode it to decide whether
		// to gate.
		n.stats.RFMulticastBits += flitBits
		n.stats.RFMulticastRxBits += flitBits * int64(len(mc.receivers))
		mc.deliverStart(arrival)
		mc.flitsSent++
		return
	}
	n.stats.RFMulticastBits += flitBits
	n.stats.RFMulticastRxBits += flitBits * int64(len(mc.activeRx))
	n.stats.RFGatedRxFlits += int64(len(mc.receivers) - len(mc.activeRx))
	mc.flitsSent++
	if mc.flitsSent == mc.cur.numFlits+1 {
		mc.finish(arrival)
	}
}

// deliverStart begins local distribution at each active receiver as soon
// as the DBV flit arrives: remote cores get a mesh packet injected at the
// receiver router; same-router cores are recorded when the tail arrives.
func (mc *mcChannel) deliverStart(dbvArrival int64) {
	n := mc.n
	cores := n.cfg.Mesh.Cores()
	e := mc.cur
	tailArrival := dbvArrival + int64(e.numFlits)
	for _, rx := range mc.activeRx {
		for _, ci := range mc.served[rx] {
			if e.msg.DBV&(1<<uint(ci)) == 0 {
				continue
			}
			dst := cores[ci]
			if dst == rx {
				lp := n.newPacket()
				lp.msg = e.msg
				lp.numFlits = e.numFlits
				lp.deliverCore = ci
				mc.pendingLocal = append(mc.pendingLocal, localDelivery{
					at: tailArrival, pkt: lp,
				})
				continue
			}
			// Remote core: forward the message over the mesh from the
			// receiver. Flits are duplicated as they are received, so
			// injection starts right after the DBV flit decodes.
			fwd := e.msg
			fwd.Multicast = false
			fwd.Src = rx
			fwd.Dst = dst
			p := n.newPacket()
			p.msg = fwd
			p.numFlits = e.numFlits
			p.deliverCore = ci
			n.enqueueFront(rx, p)
		}
	}
}

func (mc *mcChannel) finish(int64) {
	mc.cur = nil
	mc.flitsSent = 0
}

// vctTable models the per-source virtual-circuit-tree tables of the VCT
// baseline: a bounded set of (source, destination-set) trees with FIFO
// eviction. A lookup miss means the tree must be built, which charges the
// packet a per-router setup penalty.
type vctTable struct {
	size int
	keys map[vctKey]bool
	fifo []vctKey
}

type vctKey struct {
	src int
	dbv uint64
}

func newVCTTable(size int) *vctTable {
	return &vctTable{size: size, keys: map[vctKey]bool{}}
}

// lookup returns true when the tree must be set up (miss) and installs it.
func (t *vctTable) lookup(src int, dbv uint64) bool {
	k := vctKey{src, dbv}
	if t.keys[k] {
		return false
	}
	if len(t.fifo) >= t.size {
		old := t.fifo[0]
		t.fifo = t.fifo[1:]
		delete(t.keys, old)
	}
	t.keys[k] = true
	t.fifo = append(t.fifo, k)
	return true
}

// Entries returns the number of live trees (for area accounting).
func (t *vctTable) Entries() int { return len(t.keys) }
