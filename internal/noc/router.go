package noc

// This file implements the per-cycle router logic: route computation and
// virtual-channel allocation for head flits, switch allocation (one grant
// per output port and one per input port each cycle, round-robin), and
// flit departure, matching the paper's five-stage pipeline. Head flits
// become switch-eligible three cycles after arrival (RC at t+1, VA at
// t+2, SA from t+3) and arrive at the next router two cycles after their
// grant (ST, then single-cycle LT), for the paper's 5-cycle head latency
// per hop; body and tail flits are eligible one cycle after arrival, for
// the 3-cycle body latency.

// propose runs one router's proposal phase for this cycle: active-list
// compaction, the RC state machine, and an *optimistic* VC allocation
// against the view of downstream VC state frozen at the start of
// arbitration. RC reads only state that is static within a cycle
// (routing tables, link-fault state), so its results are exact. A VA
// success mutates optimistically (reservation, phase, switch
// eligibility) and is marked vaFrozen for the commit phase to audit; a
// VA failure mutates nothing — its bookkeeping (vaFirstFail, the escape
// switch) is deferred to commit, which sees live state. Proposal writes
// only this router's VCs and the reserved bit of downstream VCs it wins
// (each of which has this router as its only possible writer), so
// shards may run concurrently (see parallel.go).
func (n *Network) propose(rs *routerState) {
	if len(rs.active) == 0 {
		return
	}
	compact := rs.active[:0]
	for _, vc := range rs.active {
		if vc.pkt == nil {
			vc.inActive = false // retired; prune lazily
			continue
		}
		compact = append(compact, vc)
		if vc.stuck {
			continue // stuck-VC fault: wedged out of arbitration
		}
		n.proposeVC(rs, vc)
	}
	rs.active = compact
}

// proposeVC runs the RC stage and the optimistic (frozen-view) VA stage
// for the packet occupying vc. It must mirror advanceVC exactly except
// that VA failures leave no trace: commit either certifies the frozen
// outcome (when no same-cycle release touched the probed ports, the
// frozen view equals the view the serial simulator would have used) or
// unwinds and replays VA against live state.
func (n *Network) proposeVC(rs *routerState, vc *vcState) {
	switch vc.phase {
	case phaseRC:
		if n.now >= vc.arrivedAt+1+vc.rcExtra {
			vc.outPort = n.route(rs.id, vc)
			vc.cands = vc.cands[:0]
			if n.faults != nil {
				if n.drawMisdeliver(rs.id, vc) {
					vc.outPort = portLocal
					vc.phase = phaseVA
					return
				}
				if wrong := n.misroutePort(rs.id, vc); wrong >= 0 {
					vc.outPort = wrong
					vc.phase = phaseVA
					return
				}
			}
			if n.cfg.AdaptiveRouting && vc.outPort != portLocal &&
				vc.pkt.class == vcClassNormal && vc.pkt.destSet == nil {
				vc.cands = n.adaptiveCandidates(rs.id, vc.pkt.msg.Dst, vc.cands)
			}
			vc.phase = phaseVA
		}
	case phaseVA:
		if n.now < vc.arrivedAt+2+vc.rcExtra {
			return
		}
		if vc.outPort == portLocal {
			vc.outVC = nil
			vc.phase = phaseActive
			return
		}
		if len(vc.cands) > 1 {
			best, bestFree := vc.outPort, -1
			for _, p := range vc.cands {
				if free := n.freeVCCount(rs.id, int(p), vc.pkt.class); free > bestFree {
					best, bestFree = int(p), free
				}
			}
			if bestFree > 0 {
				vc.outPort = best
			}
		}
		if down := n.downstreamVC(rs.id, vc.outPort, vc.pkt.class); down != nil {
			down.reserved = true
			vc.outVC = down
			vc.phase = phaseActive
			vc.vaFrozen = true
			// SA no earlier than the cycle after VA completes.
			if f := vc.front(); f != nil && f.eligibleAt < n.now+1 {
				f.eligibleAt = n.now + 1
			}
		}
		// On failure: nothing. If the failure is certified by commit it
		// books there (vaFail); if the probed ports saw a same-cycle
		// release, commit replays VA live and may succeed instead.
	}
}

// commitRouter runs one router's commit phase: the VC-allocation audit,
// switch allocation, and the departures themselves — the latter two
// against live credit state (lower-id routers' departures this cycle
// are already visible, the same-cycle credit turnaround the serial
// simulator always had). Commit runs serially in fixed router order,
// which pins the allocation, wheel-append, and observer orders and
// makes results bit-identical at every worker count — and, because the
// audit reconstructs exactly the serial view, bit-identical to the
// purely serial simulator as well.
func (n *Network) commitRouter(rs *routerState, audit bool) {
	if len(rs.active) == 0 {
		return
	}

	// Audit this cycle's VC allocation (parallel proposal only — the
	// interleaved serial schedule proposes against live state, so its
	// outcomes are authoritative as-is). The proposal phase saw a view
	// frozen at the start of arbitration; the only events it can have
	// missed are releases made by lower-id routers' departures this
	// cycle (everything else that affects a VC's freeness happens
	// outside arbitration, and reservations by other routers are
	// confined to VCs this router never probes). If none of the ports
	// this router probed saw such a release, the frozen outcomes are
	// exactly what the serial simulator would have computed: certify
	// successes and book failures. Otherwise unwind this router's
	// optimistic wins and replay VA in active-list order against live
	// state, which reconstructs the serial sequence verbatim.
	dirty := false
	if audit {
		for _, vc := range rs.active {
			if vc.pkt == nil || vc.stuck {
				continue
			}
			if vc.vaFrozen || (vc.phase == phaseVA && n.now >= vc.arrivedAt+2+vc.rcExtra) {
				if n.vaProbeDirty(rs, vc) {
					dirty = true
					break
				}
			}
		}
	}
	if dirty {
		for _, vc := range rs.active {
			if vc.vaFrozen {
				vc.vaFrozen = false
				vc.outVC.reserved = false
				vc.outVC = nil
				vc.phase = phaseVA
			}
		}
		for _, vc := range rs.active {
			if vc.pkt != nil && !vc.stuck && vc.phase == phaseVA {
				n.advanceVC(rs, vc)
			}
		}
	} else {
		for _, vc := range rs.active {
			if vc.vaFrozen {
				vc.vaFrozen = false
			} else if vc.pkt != nil && !vc.stuck && vc.phase == phaseVA &&
				n.now >= vc.arrivedAt+2+vc.rcExtra && vc.outPort != portLocal {
				n.vaFail(rs, vc)
			}
		}
	}

	// Switch allocation: one grant per output port and one flit per input
	// port per cycle, except the local port, whose NI channel keeps its
	// 16 B width and therefore moves LocalSpeedup flits per cycle in each
	// direction on narrow meshes.
	speedup := n.cfg.LocalSpeedup
	var outLeft, inLeft [numPorts]int
	for p := 0; p < numPorts; p++ {
		outLeft[p], inLeft[p] = 1, 1
	}
	outLeft[portLocal], inLeft[portLocal] = speedup, speedup
	// Shortcut bands keep their 16 B width on narrow meshes, moving
	// several narrow flits per cycle.
	if rfs := n.cfg.ShortcutWidthBytes / n.cfg.Width.Bytes(); rfs > 1 {
		outLeft[portRF], inLeft[portRF] = rfs, rfs
	}
	granted := rs.grantScratch[:0]
	rot := rs.rrOffset
	rs.rrOffset++
	na := len(rs.active)
	for i := 0; i < na; i++ {
		vc := rs.active[(i+rot)%na]
		if vc.phase != phaseActive || vc.stuck || inLeft[vc.port] == 0 {
			continue
		}
		f := vc.front()
		if f == nil || f.eligibleAt > n.now {
			continue
		}
		if outLeft[vc.outPort] == 0 {
			continue // output taken this cycle
		}
		if vc.outVC != nil && !vc.outVC.space() {
			continue // no credit downstream
		}
		outLeft[vc.outPort]--
		inLeft[vc.port]--
		granted = append(granted, vc)
	}

	for _, vc := range granted {
		n.depart(rs, vc)
	}
	rs.grantScratch = granted[:0]
}

// advanceVC runs the RC and VA stages for the packet occupying vc
// against live state — the authoritative serial path, used by the
// commit phase to replay allocation when the frozen proposal view went
// stale (see proposeVC).
func (n *Network) advanceVC(rs *routerState, vc *vcState) {
	switch vc.phase {
	case phaseRC:
		if n.now >= vc.arrivedAt+1+vc.rcExtra {
			vc.outPort = n.route(rs.id, vc)
			vc.cands = vc.cands[:0]
			if n.faults != nil {
				if n.drawMisdeliver(rs.id, vc) {
					// RF band mis-tune: the packet ejects here, at the
					// wrong router; retire detects the mismatch.
					vc.outPort = portLocal
					vc.phase = phaseVA
					return
				}
				if wrong := n.misroutePort(rs.id, vc); wrong >= 0 {
					// Adversarial misroute: divert the whole packet and
					// skip adaptive candidates so VA cannot heal it.
					vc.outPort = wrong
					vc.phase = phaseVA
					return
				}
			}
			if n.cfg.AdaptiveRouting && vc.outPort != portLocal &&
				vc.pkt.class == vcClassNormal && vc.pkt.destSet == nil {
				vc.cands = n.adaptiveCandidates(rs.id, vc.pkt.msg.Dst, vc.cands)
			}
			vc.phase = phaseVA
		}
	case phaseVA:
		if n.now < vc.arrivedAt+2+vc.rcExtra {
			return
		}
		if vc.outPort == portLocal {
			vc.outVC = nil
			vc.phase = phaseActive
			return
		}
		if len(vc.cands) > 1 {
			// Adaptive VA: prefer the minimal port with the most free
			// downstream VCs this cycle.
			best, bestFree := vc.outPort, -1
			for _, p := range vc.cands {
				if free := n.freeVCCount(rs.id, int(p), vc.pkt.class); free > bestFree {
					best, bestFree = int(p), free
				}
			}
			if bestFree > 0 {
				vc.outPort = best
			}
		}
		down := n.downstreamVC(rs.id, vc.outPort, vc.pkt.class)
		if down != nil {
			down.reserved = true
			vc.outVC = down
			vc.phase = phaseActive
			// SA no earlier than the cycle after VA completes.
			if f := vc.front(); f != nil && f.eligibleAt < n.now+1 {
				f.eligibleAt = n.now + 1
			}
			return
		}
		n.vaFail(rs, vc)
	}
}

// vaFail books a VC-allocation failure: track how long the head has
// been stuck, and after the escape timeout re-route normal-class
// packets onto the escape VCs (XY over conventional mesh links only),
// the paper's deadlock-avoidance mechanism. Runs only in the serial
// commit phase, so it may touch global statistics.
func (n *Network) vaFail(rs *routerState, vc *vcState) {
	if vc.vaFirstFail < 0 {
		vc.vaFirstFail = n.now
	}
	if vc.pkt.class == vcClassNormal && vc.pkt.destSet == nil &&
		n.now-vc.vaFirstFail >= n.cfg.EscapeTimeout {
		vc.pkt.class = vcClassEscape
		vc.outPort = n.escapeRoute(rs.id, vc.pkt.msg.Dst)
		vc.vaFirstFail = n.now
		n.stats.EscapeSwitches++
	}
}

// vaProbeDirty reports whether any downstream input port this head's VA
// probed this cycle saw a release during the current commit phase — the
// one class of event the frozen proposal view can miss. Adaptive heads
// probe the downstream free-VC counts of every minimal candidate port,
// so any of them going stale invalidates the port choice too.
func (n *Network) vaProbeDirty(rs *routerState, vc *vcState) bool {
	if len(vc.cands) > 1 {
		for _, p := range vc.cands {
			if n.portFreedThisCycle(rs.id, int(p)) {
				return true
			}
		}
	}
	return n.portFreedThisCycle(rs.id, vc.outPort)
}

// portFreedThisCycle reports whether the downstream input port behind
// output port out of router r had a VC released this cycle (stamped by
// depart at tail release).
func (n *Network) portFreedThisCycle(r, out int) bool {
	switch out {
	case portLocal:
		return false
	case portRF:
		dst := n.shortcutFrom[r]
		return dst >= 0 && n.routers[dst].freedAt[portRF] == n.now
	}
	nb := neighborThrough(n, r, out)
	return nb >= 0 && n.routers[nb].freedAt[oppositePort(out)] == n.now
}

// route computes the output port for the packet at the head of vc.
func (n *Network) route(r int, vc *vcState) int {
	p := vc.pkt
	if p.destSet != nil {
		// Forking (VCT) multicast: absorb at delivery or branch routers,
		// otherwise follow the common mesh-fallback port (XY, or tree
		// routing while mesh links are failed).
		port := -1
		for _, d := range p.destSet {
			if d == r {
				return portLocal
			}
			dp := n.escapeRoute(r, d)
			if port == -1 {
				port = dp
			} else if port != dp {
				return portLocal // fork here
			}
		}
		return port
	}
	if r == p.msg.Dst {
		return portLocal
	}
	if p.class == vcClassEscape {
		return n.escapeRoute(r, p.msg.Dst)
	}
	return int(n.routes.port[r][p.msg.Dst])
}

// downstreamVC finds a free VC of the given class at the input port on
// the far side of output port out at router r, or nil.
func (n *Network) downstreamVC(r, out, class int) *vcState {
	var target *routerState
	var inPort int
	if out == portRF {
		dst := n.shortcutFrom[r]
		if dst < 0 {
			panic("noc: RF route at router without outbound shortcut")
		}
		target = &n.routers[dst]
		inPort = portRF
	} else {
		nb := neighborThrough(n, r, out)
		if nb < 0 {
			panic("noc: route off mesh edge")
		}
		target = &n.routers[nb]
		inPort = oppositePort(out)
	}
	return n.freeVC(target, inPort, class)
}

func oppositePort(p int) int {
	switch p {
	case portNorth:
		return portSouth
	case portSouth:
		return portNorth
	case portEast:
		return portWest
	case portWest:
		return portEast
	}
	panic("noc: no opposite for non-mesh port")
}

// depart sends vc's front flit through the crossbar.
func (n *Network) depart(rs *routerState, vc *vcState) {
	if n.faults != nil && vc.outPort != portLocal && n.faults.corrupts(rs.id, vc.outPort) {
		// CRC failure on the link: the flit never leaves the sender VC
		// (the grant and link cycle are wasted), and the link layer
		// retransmits after a NACK round trip plus backoff.
		n.retransmit(rs, vc)
		return
	}
	f := vc.pop()
	p := vc.pkt
	vc.sent++
	vc.retries = 0
	n.stats.RouterTraversals++
	n.linkUse[rs.id][vc.outPort]++
	if len(n.observers) != 0 {
		for _, o := range n.observers {
			o.FlitSent(rs.id, vc.outPort, n.now)
		}
	}

	if vc.outPort == portLocal {
		// Ejection: the flit leaves through the local port, reaching the
		// NI two cycles after the grant (ST + LT). Per-flit latency is
		// measured against the flit's own injection cycle (the NI feeds
		// one flit per cycle), the paper's latency/flit metric.
		n.stats.LocalFlitHops++
		n.stats.FlitsEjected++
		if p.destSet == nil && p.mcFwd == nil && p.deliverCore < 0 {
			flitInject := p.msg.Inject + int64(p.ejected)
			n.stats.FlitLatency += (n.now + 2) - flitInject
			p.ejected++
			if len(n.observers) != 0 {
				for _, o := range n.observers {
					o.FlitEjected(rs.id, (n.now+2)-flitInject)
				}
			}
		}
		if f.isTail {
			n.retire(rs, p)
			vc.release()
			// Stamp the release for the VC-allocation audit: the upstream
			// feeder of this input port may probe it later this commit
			// phase (see commitRouter).
			rs.freedAt[vc.port] = n.now
		}
		return
	}

	// Bandwidth/energy accounting by link type.
	flitBits := int64(n.cfg.Width.Bits())
	lat := int64(1)
	switch {
	case vc.outPort == portRF:
		lat = n.shortcutLat[rs.id]
		n.stats.RFShortcutBits += flitBits
	default:
		n.stats.MeshFlitHops++
	}
	if vc.outPort == portRF && n.cfg.WireShortcuts {
		// Wire shortcuts are conventional repeated wires: account their
		// length for link energy instead of RF bits.
		n.stats.RFShortcutBits -= flitBits
		n.stats.WireShortcutFlitMM += float64(n.cfg.Mesh.Manhattan(rs.id, n.shortcutFrom[rs.id])) * meshLinkMM
	}

	n.schedule(transfer{
		to: vc.outVC, pkt: headPkt(f, p), isHead: f.isHead, isTail: f.isTail,
	}, lat)
	if f.isHead {
		p.hops++
		if vc.outPort == portRF && n.faults != nil {
			n.maybeDuplicate(rs.id, p) // RF band re-trigger
		}
	}
	if f.isTail {
		vc.release()
		rs.freedAt[vc.port] = n.now
	}
}

func headPkt(f flitSlot, p *packet) *packet {
	if f.isHead {
		return p
	}
	return nil
}

// release frees a VC after its packet's tail departs.
func (v *vcState) release() {
	v.pkt = nil
	v.phase = phaseIdle
	v.outVC = nil
	v.outPort = 0
	v.vaFirstFail = -1
	v.cands = v.cands[:0]
	v.sent = 0
	v.retries = 0
}

// retire completes a packet whose tail ejected at router rs. Ejection
// completes two cycles after the grant (ST + LT into the NI). The tail
// ejection dropped the last live reference, so every branch ends by
// recycling the packet.
func (n *Network) retire(rs *routerState, p *packet) {
	at := n.now + 2
	n.inFlightPackets--
	switch {
	case p.destSet != nil:
		// Forking multicast absorbed at a branch/delivery router.
		n.spawnMulticastChildren(rs.id, p, false)
	case p.deliverCore >= 0:
		// Expanded-multicast unicast or RF local delivery: count as a
		// multicast delivery against the original inject time.
		n.recordMulticastDelivery(p.msg, p.numFlits, at)
	case p.mcFwd != nil:
		n.mc.enqueueEntry(p.mcFwd.cluster, p.mcFwd.entry)
	default:
		if n.integ != nil && p.hasSeq && !n.integrityAccept(rs, p, at) {
			// Misdelivered, corrupted or duplicate: not a delivery (any
			// retransmission was scheduled from the outstanding table,
			// which holds a copy, not this packet).
			n.freePacket(p)
			return
		}
		lat := at - p.msg.Inject
		n.stats.PacketsEjected++
		n.stats.PacketLatency += lat
		n.stats.HopSum += int64(p.hops)
		d := n.cfg.Mesh.Manhattan(p.msg.Src, p.msg.Dst)
		n.stats.MsgsByDistance[d]++
		if len(n.observers) != 0 {
			for _, o := range n.observers {
				o.PacketDelivered(p.msg, at, p.hops)
			}
		}
	}
	n.freePacket(p)
}
