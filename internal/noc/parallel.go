package noc

import "runtime"

// This file implements deterministic two-phase parallel stepping. Each
// cycle splits router arbitration into:
//
//   phase 1 (propose) — every router runs RC and an *optimistic* VC
//   allocation against the view of downstream VC state frozen at the
//   start of arbitration. Routers touch only (a) their own VCs and
//   (b) the `reserved` bit of downstream VCs they win in VA. Because
//   every input VC has exactly one upstream feeder (the opposite mesh
//   port, the unique shortcut source for portRF, or the local NI), no
//   two routers ever race on the same downstream VC, so the proposal
//   phase is order-independent and can fan out across a worker pool
//   over contiguous shards of n.routers.
//
//   phase 2 (commit) — serial, in fixed router order. Each router first
//   audits its frozen allocations: the only live-state events the
//   frozen view can miss are VC releases performed by lower-id routers'
//   departures earlier in the same commit phase, and depart stamps
//   every release with the cycle number (routerState.freedAt). If none
//   of the ports a router probed carry this cycle's stamp, the frozen
//   view provably equals the live view the serial simulator would have
//   used, and the frozen outcomes are certified as-is; otherwise the
//   router's optimistic wins are unwound and VA replays in active-list
//   order against live state. Either way the committed allocation is
//   exactly the serial simulator's. Switch allocation and departures
//   then run as before.
//
// The audit makes the parallel schedule *exact*: results are
// bit-identical at every worker count, including StepWorkers=1, and
// bit-identical to the original purely serial simulator — same Stats,
// same observer event streams, same checkpoint bytes.

// stepPool is a persistent pool of phase-1 workers. The run function is
// handed over per dispatch and cleared afterwards, so the pool never
// retains the Network between cycles; that keeps the Network collectible
// and lets a finalizer close req to retire the goroutines.
type stepPool struct {
	req  chan int
	done chan struct{}
	run  func(shard int)
}

func newStepPool(extra int) *stepPool {
	p := &stepPool{
		req:  make(chan int, extra),
		done: make(chan struct{}, extra),
	}
	for i := 0; i < extra; i++ {
		go func() {
			for s := range p.req {
				p.run(s)
				p.done <- struct{}{}
			}
		}()
	}
	return p
}

// dispatch runs shards 1..shards-1 on the pool and shard 0 on the
// caller, returning after all shards finish. The write of p.run
// happens-before the channel sends; the workers' run calls happen-before
// their done sends, so clearing p.run after the joins is race-free.
func (p *stepPool) dispatch(run func(int), shards int) {
	p.run = run
	for s := 1; s < shards; s++ {
		p.req <- s
	}
	run(0)
	for s := 1; s < shards; s++ {
		<-p.done
	}
	p.run = nil
}

// arbitrateAll runs one cycle of router arbitration. With one worker it
// interleaves propose and commit per router — the original serial
// schedule, where the proposal's "frozen" view *is* the live view, so
// the commit-phase audit is skipped outright. With several workers the
// proposal phase fans out first, and the audit reconstructs the serial
// schedule exactly (see the file comment), so both paths produce
// bit-identical results.
func (n *Network) arbitrateAll() {
	if n.stepWorkers > 1 && !n.proposeMustSerialize() {
		n.proposeParallel()
		for r := range n.routers {
			n.commitRouter(&n.routers[r], true)
		}
		return
	}
	for r := range n.routers {
		n.propose(&n.routers[r])
		n.commitRouter(&n.routers[r], false)
	}
}

// proposeMustSerialize reports whether arbitration must fall back to
// the interleaved serial schedule this cycle: the misroute and
// misdeliver fault modes draw from the shared fault RNG during RC, and
// only the interleaved schedule preserves the seed simulator's draw
// order relative to the departure-time draws (corruption, duplication).
func (n *Network) proposeMustSerialize() bool {
	fs := n.faults
	return fs != nil && (fs.cfg.MisrouteRate > 0 || fs.cfg.MisdeliverRate > 0)
}

// proposeParallel fans the proposal phase out across the worker pool,
// creating it on first use.
func (n *Network) proposeParallel() {
	if n.pool == nil {
		n.pool = newStepPool(n.stepWorkers - 1)
		n.proposeFn = n.proposeShard
		// The pool references neither the Network nor the closure below
		// between dispatches, so the Network stays collectible; closing
		// req on collection retires the worker goroutines.
		pool := n.pool
		runtime.SetFinalizer(n, func(*Network) { close(pool.req) })
	}
	n.pool.dispatch(n.proposeFn, n.stepWorkers)
}

func (n *Network) proposeShard(shard int) {
	lo, hi := shardRange(len(n.routers), n.stepWorkers, shard)
	for r := lo; r < hi; r++ {
		n.propose(&n.routers[r])
	}
}

// shardRange splits total items into shards contiguous ranges whose
// sizes differ by at most one, returning shard i's [lo, hi).
func shardRange(total, shards, i int) (lo, hi int) {
	base, rem := total/shards, total%shards
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}
