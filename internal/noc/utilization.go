package noc

import (
	"fmt"
	"strings"
)

// This file adds per-link activity tracking: flits crossing every
// directed inter-router link, RF shortcut band, and local port. The
// counters drive congestion analysis (which links saturate around a
// hotspot, how much load the overlay absorbs) and the text heatmap used
// by cmd/rfsim and the examples.

// LinkUse reports the flits carried by each output port of each router.
type LinkUse struct {
	// Flits[r][p] counts flits leaving router r through port p.
	Flits [][]int64
	// Cycles is the observation window.
	Cycles int64
}

// LinkUse returns a snapshot of per-link activity since construction.
func (n *Network) LinkUse() LinkUse {
	out := LinkUse{Flits: make([][]int64, len(n.routers)), Cycles: n.now}
	for r := range n.routers {
		out.Flits[r] = append([]int64(nil), n.linkUse[r][:]...)
	}
	return out
}

// Utilization returns the busy fraction of the directed link leaving
// router r through port p (flits per cycle; 1.0 is saturated for mesh
// links).
func (u LinkUse) Utilization(r, p int) float64 {
	if u.Cycles == 0 {
		return 0
	}
	return float64(u.Flits[r][p]) / float64(u.Cycles)
}

// MaxMeshUtilization returns the most-loaded directed mesh link and its
// utilization.
func (u LinkUse) MaxMeshUtilization() (router, port int, util float64) {
	for r := range u.Flits {
		for p := portNorth; p <= portWest; p++ {
			if v := u.Utilization(r, p); v > util {
				router, port, util = r, p, v
			}
		}
	}
	return router, port, util
}

// RouterThroughput returns total flits per cycle leaving router r on its
// mesh ports.
func (u LinkUse) RouterThroughput(r int) float64 {
	var total int64
	for p := portNorth; p <= portWest; p++ {
		total += u.Flits[r][p]
	}
	if u.Cycles == 0 {
		return 0
	}
	return float64(total) / float64(u.Cycles)
}

// heatRunes grade load from idle to saturated.
var heatRunes = []rune(" .:-=+*#%@")

// Heatmap renders mesh-link load as a W x H character grid: each cell
// shows the router's aggregate mesh-link output load, graded from ' '
// (idle) through '@' (all four links saturated). Row 0 of the mesh is
// printed at the bottom, matching the paper's floorplan figures.
func (n *Network) Heatmap() string {
	u := n.LinkUse()
	m := n.cfg.Mesh
	var b strings.Builder
	for y := m.H - 1; y >= 0; y-- {
		for x := 0; x < m.W; x++ {
			t := u.RouterThroughput(m.ID(x, y)) / 4.0 // 4 mesh ports
			idx := int(t * float64(len(heatRunes)))
			if idx >= len(heatRunes) {
				idx = len(heatRunes) - 1
			}
			b.WriteRune(heatRunes[idx])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// HottestLinks lists the k most-loaded directed links as human-readable
// strings ("(7,0)->W 0.83 flits/cycle"), most loaded first.
func (n *Network) HottestLinks(k int) []string {
	u := n.LinkUse()
	m := n.cfg.Mesh
	type item struct {
		r, p int
		v    float64
	}
	var items []item
	for r := range u.Flits {
		for p := 0; p < numPorts; p++ {
			if v := u.Utilization(r, p); v > 0 {
				items = append(items, item{r, p, v})
			}
		}
	}
	// Partial selection sort for the top k.
	if k > len(items) {
		k = len(items)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(items); j++ {
			if items[j].v > items[best].v {
				best = j
			}
		}
		items[i], items[best] = items[best], items[i]
	}
	out := make([]string, 0, k)
	for _, it := range items[:k] {
		c := m.Coord(it.r)
		out = append(out, fmt.Sprintf("(%d,%d)->%s %.3f flits/cycle",
			c.X, c.Y, portName(it.p), it.v))
	}
	return out
}
