package noc

// This file gives a Config a public, content-addressed identity for
// result memoization (the sweep service's cache key), distinct from the
// private checkpoint fingerprint in snapshot.go. The two differ on
// purpose: a checkpoint excludes the shortcut plan (Reconfigure mutates
// it at runtime, so the installed plan travels as state), while a cache
// key must include it — two designs with different shortcut sets produce
// different results and must never share a cache entry.

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
)

// Fingerprint returns a stable hex digest of every configuration field
// that shapes simulation results. Zero fields are defaulted first, so a
// zero Config and an explicitly-defaulted one hash identically.
//
// Execution parameters are excluded: StepWorkers changes how cycles are
// computed, not what they compute (results are bit-identical at every
// worker count, see DESIGN.md "Two-phase stepping"), so runs that differ
// only in worker count share a fingerprint — and a cache entry.
func (c Config) Fingerprint() string {
	c = c.withDefaults()
	h := sha256.New()
	e := newFPEncoder(h)
	e.i(c.Mesh.W)
	e.i(c.Mesh.H)
	e.i(int(c.Width))
	e.i(c.VCsPerClass)
	e.i(c.BufDepth)
	e.i64(c.EscapeTimeout)
	e.b(c.WireShortcuts)
	e.ints(c.RFEnabled)
	e.i(int(c.Multicast))
	e.ints(c.MulticastReceivers)
	e.i64(c.MulticastEpoch)
	e.i(c.VCTTableSize)
	e.f64(c.WireMMPerCycle)
	e.i(c.LocalSpeedup)
	e.i(c.ShortcutWidthBytes)
	e.i(len(c.Shortcuts))
	for _, edge := range c.Shortcuts {
		e.i(edge.From)
		e.i(edge.To)
	}
	e.f64(c.Fault.MeshBER)
	e.f64(c.Fault.RFBER)
	e.i(c.Fault.RetryLimit)
	e.i64(c.Fault.BackoffBase)
	e.i64(c.Fault.BackoffMax)
	e.i64(c.Fault.Seed)
	e.f64(c.Fault.MisrouteRate)
	e.f64(c.Fault.MisdeliverRate)
	e.f64(c.Fault.DuplicateRate)
	e.f64(c.Fault.CreditLeakRate)
	e.f64(c.Fault.StuckVCRate)
	e.b(c.Integrity)
	e.b(c.Watchdog.Enabled)
	e.i64(c.Watchdog.CheckEvery)
	e.i64(c.Watchdog.StallHorizon)
	e.i64(c.Watchdog.Grace)
	e.b(c.AdaptiveRouting)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// fpEncoder streams fixed-width little-endian primitives into a hash.
// Unlike checkpoint.Encoder it never buffers or errors: hash writes
// cannot fail.
type fpEncoder struct {
	w interface{ Write([]byte) (int, error) }
}

func newFPEncoder(w interface{ Write([]byte) (int, error) }) fpEncoder {
	return fpEncoder{w: w}
}

func (e fpEncoder) u64(v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	e.w.Write(buf[:])
}

func (e fpEncoder) i(v int)     { e.u64(uint64(int64(v))) }
func (e fpEncoder) i64(v int64) { e.u64(uint64(v)) }

func (e fpEncoder) b(v bool) {
	if v {
		e.u64(1)
	} else {
		e.u64(0)
	}
}

// f64 hashes the decimal rendering rather than raw bits so that the only
// two zero values (+0 and -0, which compare equal and simulate
// identically) share a digest.
func (e fpEncoder) f64(v float64) {
	if v == 0 {
		v = math.Abs(v) // normalize -0
	}
	e.u64(math.Float64bits(v))
}

// ints hashes a length-prefixed id list (order matters: shortcut band
// assignment and receiver tuning follow list order).
func (e fpEncoder) ints(vs []int) {
	e.i(len(vs))
	for _, v := range vs {
		e.i(v)
	}
}
