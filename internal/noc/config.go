package noc

import (
	"errors"
	"fmt"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// MulticastMode selects how coherence multicasts are delivered.
type MulticastMode int

const (
	// MulticastExpand is the baseline: a multicast becomes one unicast
	// message per destination core, all injected at the source.
	MulticastExpand MulticastMode = iota

	// MulticastVCT uses virtual-circuit-tree forwarding over the
	// conventional mesh: one packet forks at tree branch routers, and a
	// per-(source, destination-set) tree table makes reuses cheaper than
	// first sends (Jerger et al., the paper's VCT baseline).
	MulticastVCT

	// MulticastRF broadcasts on a dedicated RF-I frequency band from the
	// arbitrated cache cluster's central bank; tuned receivers that match
	// the destination bit vector deliver copies locally and the rest
	// power-gate for the message duration (Section 3.3).
	MulticastRF
)

// String implements fmt.Stringer.
func (m MulticastMode) String() string {
	switch m {
	case MulticastExpand:
		return "unicast-expand"
	case MulticastVCT:
		return "vct"
	case MulticastRF:
		return "rf"
	}
	return fmt.Sprintf("MulticastMode(%d)", int(m))
}

// Config describes one network design point.
type Config struct {
	// Mesh is the floorplan. Required.
	Mesh *topology.Mesh

	// Width is the inter-router mesh link width (16 B baseline; the
	// paper's power study reduces it to 8 B and 4 B).
	Width tech.LinkWidth

	// VCsPerClass is the number of virtual channels per input port in
	// each class (normal and escape). The paper reserves 8 escape VCs;
	// we default the normal class to 8 as well.
	VCsPerClass int

	// BufDepth is the per-VC buffer depth in flits. Default 4.
	BufDepth int

	// EscapeTimeout is how many cycles a head flit may fail VC allocation
	// in the normal class before being re-routed onto the escape VCs
	// (which use XY routing over conventional mesh links only). Default 16.
	EscapeTimeout int64

	// Shortcuts is the set of unidirectional express links overlaid on
	// the mesh. With RF-I these are single-cycle regardless of span; with
	// WireShortcuts they are conventional repeated wires whose link
	// traversal takes multiple cycles proportional to length.
	Shortcuts []shortcut.Edge

	// WireShortcuts implements the paper's "Mesh Wire Shortcuts"
	// comparison point: the same shortcut edges, realized in buffered RC
	// wire at WireMMPerCycle signal velocity instead of RF-I.
	WireShortcuts bool

	// RFEnabled lists the RF-enabled routers (access points). Used for
	// power/area accounting and as the candidate multicast receiver set.
	RFEnabled []int

	// Multicast selects the delivery mechanism for multicast messages.
	Multicast MulticastMode

	// MulticastReceivers lists the routers whose RF receivers are tuned
	// to the multicast band (MulticastRF only). Defaults to RFEnabled
	// minus any shortcut destination routers.
	MulticastReceivers []int

	// MulticastEpoch is the coarse-grain band-arbitration epoch in
	// cycles: for each epoch one cache cluster's central bank owns the
	// multicast band (round-robin over clusters with pending messages).
	// Default 256.
	MulticastEpoch int64

	// VCTTableSize bounds the number of trees the VCT table can hold
	// per source (FIFO eviction). Default 64.
	VCTTableSize int

	// WireMMPerCycle is the signal velocity of conventional repeated
	// wire in mm per network cycle, used for wire shortcuts. Default 2.5
	// (so a neighbor hop's 2 mm stays single-cycle and a cross-chip wire
	// shortcut pays several cycles, per Ho/Mai/Horowitz projections).
	WireMMPerCycle float64

	// LocalSpeedup is how many flits per cycle the NI<->router local
	// channel moves. The paper's bandwidth-reduction study narrows the
	// expensive inter-router links; the short local connection keeps its
	// 16 B width, so narrower meshes inject and eject proportionally more
	// (narrower) flits per cycle. Defaults to 16B / link width.
	LocalSpeedup int

	// ShortcutWidthBytes is the width of one RF-I shortcut band (16 B in
	// the paper regardless of mesh width). On meshes narrower than the
	// shortcut, the RF port moves ShortcutWidthBytes/link-width flits per
	// cycle.
	ShortcutWidthBytes int

	// Fault configures the transient-fault model: per-flit corruption
	// probabilities on mesh links and RF-I bands, the link-layer retry
	// budget and backoff, and the RNG seed. The zero value simulates a
	// fault-free world at seed speed. Permanent failures are injected at
	// runtime via KillShortcut/KillMeshLink/KillMulticastBand (typically
	// through an internal/fault schedule), with or without this model.
	Fault FaultConfig

	// Integrity enables the end-to-end packet integrity layer: every
	// plain unicast carries a per-source sequence number and a checksum
	// in its head flit; the receiver dedups by sequence number, detects
	// misdelivery (wrong ejection router) and checksum mismatches, and
	// triggers NACK-style source retransmission bounded by the
	// Fault.RetryLimit budget. Required by the duplication and
	// misdelivery fault modes, which are silent data corruption without
	// it.
	Integrity bool

	// Watchdog configures stall recovery: when forward progress stalls
	// past a horizon, the network performs staged self-healing (credit
	// repair and VC unsticking, then escape-path drain of blocked
	// wormholes, then scrub-and-reinject of the oldest stalled packet).
	// The zero value disables it.
	Watchdog WatchdogConfig

	// AdaptiveRouting enables the HPCA-2008 paper's contention-avoiding
	// adaptive routing: at each router a head flit may choose any output
	// port on a minimal path through the augmented topology, picking the
	// one with the most free downstream VCs. Deadlock freedom comes from
	// the escape VCs (Duato's protocol: adaptive classes may be cyclic as
	// long as a deadlock-free escape class is always reachable). Off by
	// default (deterministic table routing).
	AdaptiveRouting bool

	// StepWorkers is the number of goroutines the per-cycle router
	// proposal phase (RC/VA/SA) fans out across. The zero value defaults
	// to 1 (serial stepping); the CLIs map an explicit "-step-workers 0"
	// to GOMAXPROCS before building the config. Worker counts above the
	// router count are clamped. Results are bit-identical at every worker
	// count (see DESIGN.md, "Two-phase stepping"), so StepWorkers is not
	// part of the checkpoint fingerprint: a snapshot taken at one worker
	// count restores at any other.
	StepWorkers int
}

// withDefaults returns a copy of c with zero fields defaulted.
func (c Config) withDefaults() Config {
	if c.Mesh == nil {
		c.Mesh = topology.New10x10()
	}
	if c.Width == 0 {
		c.Width = tech.Width16B
	}
	if c.VCsPerClass == 0 {
		c.VCsPerClass = 8
	}
	if c.BufDepth == 0 {
		c.BufDepth = 4
	}
	if c.EscapeTimeout == 0 {
		c.EscapeTimeout = 16
	}
	if c.MulticastEpoch == 0 {
		c.MulticastEpoch = 256
	}
	if c.VCTTableSize == 0 {
		c.VCTTableSize = 64
	}
	if c.WireMMPerCycle == 0 {
		c.WireMMPerCycle = 2.5
	}
	if c.LocalSpeedup == 0 {
		c.LocalSpeedup = int(tech.Width16B) / c.Width.Bytes()
		if c.LocalSpeedup < 1 {
			c.LocalSpeedup = 1
		}
	}
	if c.ShortcutWidthBytes == 0 {
		c.ShortcutWidthBytes = tech.ShortcutWidthBytes
	}
	if c.StepWorkers == 0 {
		c.StepWorkers = 1
	}
	if c.Multicast == MulticastRF && c.MulticastReceivers == nil {
		c.MulticastReceivers = defaultMulticastReceivers(c)
	}
	c.Watchdog = c.Watchdog.withDefaults()
	return c
}

// Validate checks the configuration for user errors — invalid knob
// values, out-of-range router references, and structurally invalid
// shortcut sets — accumulating every violation found (errors.Join)
// rather than stopping at the first. Zero fields are defaulted before
// checking, mirroring construction.
func (c Config) Validate() error {
	c = c.withDefaults()
	var errs []error
	if !c.Width.Valid() {
		errs = append(errs, fmt.Errorf("noc: invalid link width %d", int(c.Width)))
	}
	if c.VCsPerClass < 1 {
		errs = append(errs, fmt.Errorf("noc: VCs per class must be positive, got %d", c.VCsPerClass))
	}
	if c.BufDepth < 1 {
		errs = append(errs, fmt.Errorf("noc: VC buffer depth must be positive, got %d", c.BufDepth))
	}
	if c.EscapeTimeout < 1 {
		errs = append(errs, fmt.Errorf("noc: escape timeout must be positive, got %d", c.EscapeTimeout))
	}
	if c.MulticastEpoch < 1 {
		errs = append(errs, fmt.Errorf("noc: multicast epoch must be positive, got %d", c.MulticastEpoch))
	}
	if c.VCTTableSize < 1 {
		errs = append(errs, fmt.Errorf("noc: VCT table size must be positive, got %d", c.VCTTableSize))
	}
	if c.WireMMPerCycle <= 0 {
		errs = append(errs, fmt.Errorf("noc: wire signal velocity must be positive, got %v", c.WireMMPerCycle))
	}
	if c.LocalSpeedup < 1 {
		errs = append(errs, fmt.Errorf("noc: local speedup must be positive, got %d", c.LocalSpeedup))
	}
	if c.StepWorkers < 1 {
		errs = append(errs, fmt.Errorf("noc: step workers must be positive, got %d", c.StepWorkers))
	}
	if c.Multicast < MulticastExpand || c.Multicast > MulticastRF {
		errs = append(errs, fmt.Errorf("noc: unknown multicast mode %d", int(c.Multicast)))
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"mesh flit-error", c.Fault.MeshBER}, {"RF flit-error", c.Fault.RFBER},
		{"misroute", c.Fault.MisrouteRate}, {"misdeliver", c.Fault.MisdeliverRate},
		{"duplicate", c.Fault.DuplicateRate}, {"credit-leak", c.Fault.CreditLeakRate},
		{"stuck-VC", c.Fault.StuckVCRate},
	} {
		if f.v < 0 || f.v > 1 {
			errs = append(errs, fmt.Errorf("noc: %s rate %v outside [0,1]", f.name, f.v))
		}
	}
	if !c.Integrity {
		// Without end-to-end sequence numbers these two modes are silent
		// data corruption (lost or double-delivered packets with no
		// detection), so they refuse to run blind.
		if c.Fault.MisdeliverRate > 0 {
			errs = append(errs, fmt.Errorf("noc: misdeliver rate %v requires Integrity (misdelivery is undetectable without it)", c.Fault.MisdeliverRate))
		}
		if c.Fault.DuplicateRate > 0 {
			errs = append(errs, fmt.Errorf("noc: duplicate rate %v requires Integrity (duplicates are undetectable without it)", c.Fault.DuplicateRate))
		}
	}
	if c.Watchdog.Enabled {
		for _, k := range []struct {
			name string
			v    int64
		}{
			{"check interval", c.Watchdog.CheckEvery},
			{"stall horizon", c.Watchdog.StallHorizon},
			{"grace period", c.Watchdog.Grace},
		} {
			if k.v < 1 {
				errs = append(errs, fmt.Errorf("noc: watchdog %s must be positive, got %d", k.name, k.v))
			}
		}
	}
	N := c.Mesh.N()
	for _, set := range []struct {
		name string
		ids  []int
	}{{"RF-enabled", c.RFEnabled}, {"multicast receiver", c.MulticastReceivers}} {
		for _, id := range set.ids {
			if id < 0 || id >= N {
				errs = append(errs, fmt.Errorf("noc: %s router %d out of range", set.name, id))
			}
		}
	}
	if err := validateShortcutEdges(N, c.Shortcuts, nil); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// defaultMulticastReceivers is the RF-enabled set minus shortcut
// destination routers (whose receivers are tuned to their shortcut band).
func defaultMulticastReceivers(c Config) []int {
	taken := map[int]bool{}
	for _, e := range c.Shortcuts {
		taken[e.To] = true
	}
	var out []int
	for _, id := range c.RFEnabled {
		if !taken[id] {
			out = append(out, id)
		}
	}
	return out
}

// RFPortsAt returns how many unidirectional RF ports router id carries
// under this configuration, for the area/power model (Table 2):
//
//   - an adaptive design (RFEnabled non-empty) builds both a transmitter
//     and a receiver at every access point, whether or not the current
//     reconfiguration uses them — that flexibility is exactly the
//     overhead the paper charges the adaptive architecture for;
//   - a static (architecture-specific) design builds only what its fixed
//     shortcut set needs: one Tx port per source, one Rx port per
//     destination, plus multicast transmitter/receiver attachments.
func (c Config) RFPortsAt(id int) int {
	if len(c.RFEnabled) > 0 {
		for _, r := range c.RFEnabled {
			if r == id {
				return 2
			}
		}
		// Multicast transmitters at cluster-central banks may sit outside
		// the access-point placement.
		if c.Multicast == MulticastRF {
			for ci := 0; ci < len(c.Mesh.CacheClusters()); ci++ {
				if c.Mesh.CentralBank(ci) == id {
					return 1
				}
			}
		}
		return 0
	}
	n := 0
	for _, e := range c.Shortcuts {
		if !c.WireShortcuts {
			if e.From == id {
				n++
			}
			if e.To == id {
				n++
			}
		}
	}
	if c.Multicast == MulticastRF {
		for _, r := range c.MulticastReceivers {
			if r == id {
				n++
			}
		}
		for ci := 0; ci < len(c.Mesh.CacheClusters()); ci++ {
			if c.Mesh.CentralBank(ci) == id {
				n++
			}
		}
	}
	return n
}

// RFEndpointCount returns the total number of unidirectional RF ports in
// the design (transmitters plus receivers), the unit of RF-I silicon
// area and standing power.
func (c Config) RFEndpointCount() int {
	n := 0
	for id := 0; id < c.Mesh.N(); id++ {
		n += c.RFPortsAt(id)
	}
	return n
}
