package noc

import (
	"context"
	"testing"

	"repro/internal/topology"
)

func TestRunContext(t *testing.T) {
	m := topology.New10x10()
	n := New(Config{Mesh: m})

	if err := n.RunContext(context.Background(), 1000); err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if n.Now() != 1000 {
		t.Fatalf("Now = %d after 1000 cycles", n.Now())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := n.RunContext(ctx, 1000); err != context.Canceled {
		t.Fatalf("cancelled RunContext returned %v", err)
	}
	if n.Now() != 1000 {
		t.Fatalf("cancelled RunContext advanced the clock to %d", n.Now())
	}

	// The network stays usable after a cancelled run.
	if err := n.RunContext(context.Background(), 10); err != nil {
		t.Fatalf("RunContext after cancellation: %v", err)
	}
	if n.Now() != 1010 {
		t.Fatalf("Now = %d, want 1010", n.Now())
	}
}

func TestDrainContext(t *testing.T) {
	m := topology.New10x10()
	n := New(Config{Mesh: m})
	for i := 0; i < 40; i++ {
		n.Inject(Message{Src: i, Dst: m.N() - 1 - i, Class: Data, Inject: n.Now()})
		n.Step()
	}
	if n.InFlight() == 0 {
		t.Fatal("test needs in-flight traffic")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if drained, err := n.DrainContext(ctx, 100000); err != context.Canceled || drained {
		t.Fatalf("cancelled DrainContext: drained=%v err=%v", drained, err)
	}

	drained, err := n.DrainContext(context.Background(), 100000)
	if err != nil || !drained {
		t.Fatalf("DrainContext: drained=%v err=%v", drained, err)
	}
	if n.InFlight() != 0 {
		t.Fatalf("%d flits in flight after drain", n.InFlight())
	}
}
