package noc

import (
	"math/rand"
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// assertNoPoolAliases fails the test if freelist recycling ever aliases
// a live packet: every packet reachable from live simulator state (VCs,
// NI queue live windows, wheel transfers, pending RF local deliveries —
// the same walk the checkpointer uses) must not carry the pooled mark,
// and no pooled packet may be reachable live.
func assertNoPoolAliases(t *testing.T, n *Network, cycle int64) {
	t.Helper()
	live, index := n.collectPackets()
	for _, p := range live {
		if p.pooled {
			t.Fatalf("cycle %d: live packet %+v is marked pooled (recycled while referenced)", cycle, p.msg)
		}
	}
	for _, p := range n.pktPool {
		if !p.pooled {
			t.Fatalf("cycle %d: freelist entry %+v not marked pooled", cycle, p.msg)
		}
		if _, ok := index[p]; ok {
			t.Fatalf("cycle %d: freelist entry %+v still reachable from live state", cycle, p.msg)
		}
	}
}

// Freelist recycling under chaos: with corruption, duplication, credit
// leaks, watchdog recoveries and the integrity layer all churning
// packets through retire/free/reallocate, no live structure may ever
// hold a recycled packet, and the exactly-once delivery ledger must
// still close after a drain.
func TestFreelistNeverAliasesLivePackets(t *testing.T) {
	m := topology.New10x10()
	edges := shortcut.SelectMaxCost(m.Graph(), shortcut.Params{
		Budget: 16, Eligible: m.ShortcutEligible,
	})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"unicast-chaos", Config{
			Mesh: m, Width: tech.Width16B, Shortcuts: edges,
			Integrity: true,
			Fault: FaultConfig{
				MeshBER: 5e-4, RFBER: 2e-3, DuplicateRate: 3e-3,
				MisrouteRate: 1e-3, MisdeliverRate: 1e-3,
				CreditLeakRate: 1e-3, Seed: 23,
			},
			Watchdog: WatchdogConfig{Enabled: true, CheckEvery: 256, StallHorizon: 2000, Grace: 256},
		}},
		{"rf-multicast", Config{
			Mesh: m, Width: tech.Width16B, Multicast: MulticastRF,
			RFEnabled: m.RFPlacement(50),
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			n, err := NewChecked(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			classes := []Class{Request, Data, MemLine}
			const cycles = 4000
			for cyc := int64(0); cyc < cycles; cyc++ {
				if rng.Float64() < 0.6 {
					src, dst := rng.Intn(c.cfg.Mesh.N()), rng.Intn(c.cfg.Mesh.N())
					if src != dst {
						n.Inject(Message{Src: src, Dst: dst, Class: classes[rng.Intn(len(classes))], Inject: n.Now()})
					}
				}
				if c.cfg.Multicast == MulticastRF && cyc%31 == 5 {
					banks := c.cfg.Mesh.Caches()
					n.Inject(Message{
						Src: banks[rng.Intn(len(banks))], Class: Invalidate, Multicast: true,
						DBV: rng.Uint64() | 1, Inject: n.Now(),
					})
				}
				n.Step()
				assertNoPoolAliases(t, n, n.Now())
			}
			if !n.Drain(2_000_000) {
				t.Fatalf("drain failed, %d in flight", n.InFlight())
			}
			assertNoPoolAliases(t, n, n.Now())
			if len(n.pktPool) == 0 {
				t.Fatal("drained chaos run recycled no packets; the property was never exercised")
			}
			s := n.Stats()
			// Exactly-once ledger: every injected unicast packet was
			// ejected or declared lost — never both, never neither.
			if got := s.PacketsEjected + s.PacketsLost; got != s.PacketsInjected {
				t.Fatalf("ledger open after drain: injected %d, ejected %d + lost %d = %d",
					s.PacketsInjected, s.PacketsEjected, s.PacketsLost, got)
			}
		})
	}
}
