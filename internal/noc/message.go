// Package noc is a cycle-driven, flit-level network-on-chip simulator
// equivalent in modeling detail to the Garnet model the paper uses:
// wormhole switching, credit-based virtual-channel flow control, the
// paper's 5-stage router pipeline (route computation, VC allocation,
// switch allocation, switch traversal, link traversal; head flits pay all
// five stages, body and tail flits pay three), XY or table-based
// shortest-path routing, single-cycle RF-I shortcut links, reserved
// escape virtual channels for deadlock freedom, and an RF-I multicast
// channel with VCT and unicast-expansion baselines.
package noc

import (
	"fmt"

	"repro/internal/tech"
)

// Class distinguishes the paper's message classes, which determine size.
type Class int

// Message classes and their payload-inclusive sizes (Section 4.1):
// request messages are 7 bytes, data messages 39 bytes, and messages
// between cache banks and memory controllers 132 bytes.
const (
	Request    Class = iota // core->cache requests and other control traffic
	Data                    // cache->core / core->core data messages
	MemLine                 // cache<->memory transfers
	Invalidate              // multicast coherence invalidation (control-sized)
	Fill                    // multicast fill (data-sized)
)

// Size returns the message size in bytes for a class.
func (c Class) Size() int {
	switch c {
	case Request, Invalidate:
		return 7
	case Data, Fill:
		return 39
	case MemLine:
		return 132
	}
	panic(fmt.Sprintf("noc: unknown message class %d", int(c)))
}

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Request:
		return "request"
	case Data:
		return "data"
	case MemLine:
		return "memline"
	case Invalidate:
		return "invalidate"
	case Fill:
		return "fill"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Message is one network message as produced by a traffic generator.
type Message struct {
	// Src and Dst are router ids. For multicast messages Dst is ignored
	// and DBV names the destination cores instead.
	Src, Dst int

	// Class determines the message size.
	Class Class

	// Inject is the cycle at which the message was created.
	Inject int64

	// Multicast marks coherence multicasts (invalidates and fills sent
	// from a cache bank to a set of cores). The destination set is the
	// DBV bit vector, indexed by core number.
	Multicast bool

	// DBV is the 64-bit destination bit vector of a multicast: bit i set
	// means core i (the i'th router in topology.Mesh.Cores() order) must
	// receive the message.
	DBV uint64
}

// Size returns the message size in bytes.
func (m Message) Size() int { return m.Class.Size() }

// Flits returns the number of flits the message occupies at the given
// link width (one flit per link-width bytes, rounded up).
func (m Message) Flits(w tech.LinkWidth) int {
	return FlitsForSize(m.Size(), w)
}

// FlitsForSize returns ceil(sizeBytes / width).
func FlitsForSize(sizeBytes int, w tech.LinkWidth) int {
	b := w.Bytes()
	return (sizeBytes + b - 1) / b
}

// DBVCount returns the number of destination cores in a multicast DBV.
func DBVCount(dbv uint64) int {
	n := 0
	for dbv != 0 {
		dbv &= dbv - 1
		n++
	}
	return n
}

// DBVCores expands a DBV into the list of core indices it names.
func DBVCores(dbv uint64) []int {
	var out []int
	for i := 0; i < 64; i++ {
		if dbv&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// packet is a message in flight inside the network.
type packet struct {
	msg      Message
	numFlits int
	class    int // vcClassNormal or vcClassEscape; sticky once escaped
	hops     int
	ejected  int // flits already ejected at the destination

	// destSet, when non-nil, makes this a forking (VCT-style) multicast
	// packet: router ids still to be served. Unicast packets leave it nil.
	destSet []int

	// vctSetup marks a VCT packet that missed the tree table and must pay
	// the per-router tree-construction penalty.
	vctSetup bool

	// deliverCore, when >= 0, marks an RF-multicast local-delivery packet
	// and names the core index it serves (for latency bookkeeping against
	// the original multicast's inject time).
	deliverCore int

	// mcFwd, when non-nil, marks a multicast being forwarded over the mesh
	// to its cluster's central bank: when the packet's tail ejects there,
	// the carried entry joins the cluster's RF transmission queue instead
	// of normal ejection bookkeeping. A plain struct (not a closure) so
	// in-flight forwards serialize through checkpoints.
	mcFwd *mcForward

	// End-to-end integrity header, carried in the head flit when
	// Config.Integrity is on (hasSeq set): a per-source sequence number,
	// a checksum over the message fields, and the end-to-end delivery
	// attempt (0 for the first transmission, incremented per NACK-style
	// retransmission and per watchdog re-injection).
	hasSeq  bool
	seq     uint64
	sum     uint64
	attempt int

	// pooled marks a packet currently owned by the Network freelist;
	// freePacket panics on a double free instead of silently handing one
	// packet to two owners. Cleared on reuse.
	pooled bool
}

// integrityEligible reports whether this packet participates in the
// end-to-end integrity protocol: plain unicasts only (multicast
// machinery has its own delivery bookkeeping).
func (p *packet) integrityEligible() bool {
	return p.destSet == nil && p.mcFwd == nil && p.deliverCore < 0
}

// mcForward is the payload of a central-bank forward (see packet.mcFwd).
type mcForward struct {
	cluster int
	entry   mcEntry
}

// Virtual-channel classes. The paper reserves eight escape VCs that only
// use conventional mesh links (XY routing) to break deadlocks introduced
// by the shortcut topology.
const (
	vcClassNormal = 0
	vcClassEscape = 1
)
