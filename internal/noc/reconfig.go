package noc

import (
	"errors"
	"fmt"

	"repro/internal/shortcut"
)

// This file provides what runtime (as opposed to per-application)
// reconfiguration needs: online collection of the inter-router
// communication-frequency matrix by the network's own event counters
// (Section 3.2.2: "information that can be readily collected by event
// counters in our network"), a delivery hook for closed-loop workload
// models, and quiesced retuning of the shortcut overlay.

// ObservedFrequency returns a copy of the frequency matrix F(x,y)
// counted by the network since the last reset: the number of unicast
// messages injected from router x to router y. Collection is always on;
// the counters are plain int64s and cost one increment per message.
func (n *Network) ObservedFrequency() [][]int64 {
	out := make([][]int64, len(n.freq))
	for i, row := range n.freq {
		if row != nil {
			out[i] = append([]int64(nil), row...)
		}
	}
	return out
}

// ResetObservedFrequency clears the frequency counters (done at each
// reconfiguration boundary so each window profiles only itself).
func (n *Network) ResetObservedFrequency() {
	for i := range n.freq {
		n.freq[i] = nil
	}
}

// deliveryHookObserver adapts a plain delivery callback to the Observer
// interface (the legacy SetDeliveryHook surface).
type deliveryHookObserver struct {
	BaseObserver
	fn func(Message, int64)
}

func (d *deliveryHookObserver) PacketDelivered(msg Message, at int64, _ int) {
	d.fn(msg, at)
}

// SetDeliveryHook registers a function invoked when a unicast packet's
// tail ejects, with the original message and the completion cycle.
// Closed-loop workload models (internal/cpu) use it to retire
// outstanding requests. It is a convenience adapter over AttachObserver:
// each call replaces the previous hook; a nil fn removes it.
func (n *Network) SetDeliveryHook(fn func(Message, int64)) {
	if n.hookObs != nil {
		n.DetachObserver(n.hookObs)
		n.hookObs = nil
	}
	if fn == nil {
		return
	}
	n.hookObs = &deliveryHookObserver{fn: fn}
	n.AttachObserver(n.hookObs)
}

// Reconfigure retunes the RF-I overlay to a new shortcut set and
// rebuilds every routing table, charging the paper's parallel
// table-update cost (one cycle per other router) by stepping the network
// idle for that long. The network must be drained: retuning a band whose
// receiver still holds flits would deliver them to the wrong router, so
// — like the paper — reconfiguration happens at a quiesced context
// switch.
//
// The edge list is validated in full before any state changes: on error
// the previous plan (and its routing tables) remains installed, and the
// returned error joins every violation found — out-of-range or
// self-looping edges, routers claimed by two bands in the same role, and
// endpoints whose RF hardware has permanently failed.
func (n *Network) Reconfigure(edges []shortcut.Edge) error {
	if n.InFlight() != 0 {
		return fmt.Errorf("noc: cannot reconfigure with %d packets in flight", n.InFlight())
	}
	if err := n.validateShortcutSet(edges); err != nil {
		return err
	}
	for i := range n.shortcutFrom {
		n.shortcutFrom[i] = -1
		n.shortcutTo[i] = -1
		n.shortcutLat[i] = 0
	}
	for _, e := range edges {
		n.shortcutFrom[e.From] = e.To
		n.shortcutTo[e.To] = e.From
		n.shortcutLat[e.From] = n.shortcutLatency(e)
	}
	n.cfg.Shortcuts = append([]shortcut.Edge(nil), edges...)
	if n.faults != nil {
		// The new plan allocates fresh bands on validated-healthy
		// endpoints; per-band death flags from the old plan do not carry
		// over (failedTx/failedRx, the hardware record, do).
		for i := range n.faults.shortcutDead {
			n.faults.shortcutDead[i] = false
		}
	}
	n.routes = buildRoutes(n)
	n.stats.Reconfigurations++
	// Routing-table update: all routers written in parallel, one cycle
	// per table entry (99 cycles on the 100-router mesh).
	update := int64(n.cfg.Mesh.N() - 1)
	n.stats.ReconfigUpdateCycles += update
	n.Run(update)
	for _, o := range n.observers {
		o.Replanned(len(edges), n.now)
	}
	return nil
}

// validateShortcutSet checks a proposed shortcut set against the mesh
// and the fault record, accumulating every violation instead of stopping
// at the first.
func (n *Network) validateShortcutSet(edges []shortcut.Edge) error {
	return validateShortcutEdges(n.cfg.Mesh.N(), edges, n.FailedRFEndpoint)
}

// validateShortcutEdges is the shared structural check behind both
// Config.Validate (no fault record yet, failed == nil) and runtime
// reconfiguration.
func validateShortcutEdges(N int, edges []shortcut.Edge, failed func(int) (bool, bool)) error {
	var errs []error
	txClaim := make(map[int]int, len(edges)) // router -> first claiming edge
	rxClaim := make(map[int]int, len(edges))
	for i, e := range edges {
		bad := false
		if e.From < 0 || e.From >= N {
			errs = append(errs, fmt.Errorf("noc: edge %d: unknown router index %d as source", i, e.From))
			bad = true
		}
		if e.To < 0 || e.To >= N {
			errs = append(errs, fmt.Errorf("noc: edge %d: unknown router index %d as destination", i, e.To))
			bad = true
		}
		if bad {
			continue
		}
		if e.From == e.To {
			errs = append(errs, fmt.Errorf("noc: edge %d: self-loop shortcut at router %d", i, e.From))
			continue
		}
		if prev, ok := txClaim[e.From]; ok {
			errs = append(errs, fmt.Errorf("noc: edge %d: router %d has two outbound shortcuts (also edge %d)", i, e.From, prev))
		} else {
			txClaim[e.From] = i
		}
		if prev, ok := rxClaim[e.To]; ok {
			errs = append(errs, fmt.Errorf("noc: edge %d: router %d has two inbound shortcuts (also edge %d)", i, e.To, prev))
		} else {
			rxClaim[e.To] = i
		}
		if failed == nil {
			continue
		}
		if tx, _ := failed(e.From); tx {
			errs = append(errs, fmt.Errorf("noc: edge %d: router %d's RF transmitter has failed", i, e.From))
		}
		if _, rx := failed(e.To); rx {
			errs = append(errs, fmt.Errorf("noc: edge %d: router %d's RF receiver has failed", i, e.To))
		}
	}
	return errors.Join(errs...)
}
