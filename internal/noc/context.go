package noc

import "context"

// ctxCheckInterval is how many cycles RunContext/DrainContext advance
// between context polls. Checking every cycle would put a select on the
// simulator's hot path; every 256 cycles bounds cancellation latency to
// well under a millisecond of wall clock at any realistic step rate.
const ctxCheckInterval = 256

// RunContext advances the simulation by up to the given number of
// cycles, stopping early if ctx is cancelled. It returns ctx.Err() on
// cancellation (the network remains valid and resumable) and nil if all
// cycles ran.
func (n *Network) RunContext(ctx context.Context, cycles int64) error {
	for i := int64(0); i < cycles; i++ {
		if i%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		n.Step()
	}
	return nil
}

// DrainContext runs until all in-flight traffic retires, maxCycles
// elapse, or ctx is cancelled. drained reports whether the network fully
// emptied; err is non-nil only on cancellation.
func (n *Network) DrainContext(ctx context.Context, maxCycles int64) (drained bool, err error) {
	for i := int64(0); i < maxCycles; i++ {
		if n.InFlight() == 0 {
			return true, nil
		}
		if i%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
		n.Step()
	}
	return n.InFlight() == 0, nil
}
