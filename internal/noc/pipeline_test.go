package noc

import (
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// TestHeadFlitPipelineTiming traces the documented stage timing on one
// hop: head arrival t, RC t+1, VA t+2, SA t+3, next-router arrival t+5.
func TestHeadFlitPipelineTiming(t *testing.T) {
	m := topology.New10x10()
	n := New(Config{Mesh: m, Width: tech.Width16B})
	src, dst := m.ID(4, 4), m.ID(6, 4) // two hops
	n.Inject(Message{Src: src, Dst: dst, Class: Request, Inject: 0})
	// After 5 cycles the head should have left the source router but not
	// yet been ejected; after the analytic total (5*(2+1)+0) = 15 plus
	// the 2-cycle ejection completion, the packet is done.
	n.Run(7)
	if got := n.Stats().PacketsEjected; got != 0 {
		t.Fatalf("packet ejected after 7 cycles, too fast")
	}
	n.Run(20)
	s := n.Stats()
	if s.PacketsEjected != 1 {
		t.Fatalf("packet not delivered")
	}
	if s.PacketLatency != 15 {
		t.Errorf("latency = %d, want 15", s.PacketLatency)
	}
}

// TestBodyFlitsStreamBackToBack: at zero load, consecutive flits of one
// packet eject on consecutive cycles (full switch throughput).
func TestBodyFlitsStreamBackToBack(t *testing.T) {
	m := topology.New10x10()
	n := New(Config{Mesh: m, Width: tech.Width16B})
	src, dst := m.ID(2, 2), m.ID(2, 6)
	n.Inject(Message{Src: src, Dst: dst, Class: MemLine, Inject: 0}) // 9 flits
	if !n.Drain(10000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	// Tail latency = head latency + (flits-1): exactly 8 cycles apart.
	want := int64(5*(4+1) + 9 - 1)
	if s.PacketLatency != want {
		t.Errorf("tail latency = %d, want %d", s.PacketLatency, want)
	}
	// Per-flit latencies: each flit sees the same network residence, so
	// the flit-latency sum is 9x the head's residency.
	if s.FlitLatency != 9*int64(5*(4+1)+2-2) {
		t.Errorf("flit latency sum = %d, want %d", s.FlitLatency, 9*int64(25))
	}
}

// TestVAStallDelaysOnlyHead: when all normal VCs at the next hop are
// held by another packet, the head waits in VA but the pipeline recovers
// at full speed once a VC frees.
func TestVAStallDelaysOnlyHead(t *testing.T) {
	m := topology.New10x10()
	// One normal VC per port: the second packet must wait for the first
	// to release the downstream VC.
	n := New(Config{Mesh: m, Width: tech.Width16B, VCsPerClass: 1, EscapeTimeout: 1000})
	src, dst := m.ID(1, 1), m.ID(5, 1)
	n.Inject(Message{Src: src, Dst: dst, Class: MemLine, Inject: 0})
	n.Inject(Message{Src: src, Dst: dst, Class: MemLine, Inject: 0})
	if !n.Drain(20000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	if s.PacketsEjected != 2 {
		t.Fatalf("ejected %d, want 2", s.PacketsEjected)
	}
	// The second packet's latency exceeds the first's by at least the
	// wormhole occupancy of a 9-flit packet.
	first := int64(5*(4+1) + 8)
	if s.PacketLatency <= 2*first {
		t.Errorf("combined latency %d implies no VA serialization (first=%d)",
			s.PacketLatency, first)
	}
	if s.EscapeSwitches != 0 {
		t.Errorf("escape switched %d times despite huge timeout", s.EscapeSwitches)
	}
}

// TestWireShortcutRouteTableUsesShortcut: wire shortcuts appear in the
// routing tables exactly like RF ones (only the link latency differs).
func TestWireShortcutRouteTableUsesShortcut(t *testing.T) {
	m := topology.New10x10()
	edges := []shortcut.Edge{{From: m.ID(2, 2), To: m.ID(7, 7)}}
	n := New(Config{Mesh: m, Width: tech.Width16B, Shortcuts: edges, WireShortcuts: true})
	n.Inject(Message{Src: m.ID(2, 2), Dst: m.ID(7, 7), Class: Request, Inject: 0})
	if !n.Drain(10000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	if s.HopSum != 1 {
		t.Errorf("hops = %d, want 1 (wire shortcut)", s.HopSum)
	}
	if s.WireShortcutFlitMM == 0 {
		t.Error("wire shortcut carried no accounted flit-mm")
	}
}

// TestReconfigureClearsOldShortcuts: after retuning to a different set,
// the old bands must no longer exist.
func TestReconfigureClearsOldShortcuts(t *testing.T) {
	m := topology.New10x10()
	n := New(Config{Mesh: m, Width: tech.Width16B,
		Shortcuts: []shortcut.Edge{{From: m.ID(1, 1), To: m.ID(8, 8)}}})
	if err := n.Reconfigure([]shortcut.Edge{{From: m.ID(8, 1), To: m.ID(1, 8)}}); err != nil {
		t.Fatal(err)
	}
	// Traffic on the old pair must go over the mesh now.
	before := n.Stats().RFShortcutBits
	n.Inject(Message{Src: m.ID(1, 1), Dst: m.ID(8, 8), Class: Request, Inject: n.Now()})
	if !n.Drain(10000) {
		t.Fatal("no drain")
	}
	if got := n.Stats().RFShortcutBits - before; got != 0 {
		t.Errorf("old shortcut still live: %d RF bits", got)
	}
	// And the new pair uses RF.
	before = n.Stats().RFShortcutBits
	n.Inject(Message{Src: m.ID(8, 1), Dst: m.ID(1, 8), Class: Request, Inject: n.Now()})
	if !n.Drain(10000) {
		t.Fatal("no drain")
	}
	if got := n.Stats().RFShortcutBits - before; got == 0 {
		t.Error("new shortcut unused")
	}
}

// TestLocalSpeedupBoundsEjection: at 4B the local channel moves up to 4
// flits per cycle; a burst of single-flit... multi-packet convergence at
// one router must eject at more than 1 flit/cycle.
func TestLocalSpeedupBoundsEjection(t *testing.T) {
	m := topology.New10x10()
	n := New(Config{Mesh: m, Width: tech.Width4B})
	dst := m.ID(5, 5)
	for _, c := range []topology.Coord{{X: 5, Y: 2}, {X: 5, Y: 8}, {X: 2, Y: 5}, {X: 8, Y: 5}} {
		n.Inject(Message{Src: m.ID(c.X, c.Y), Dst: dst, Class: MemLine, Inject: 0})
	}
	if !n.Drain(20000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	if s.PacketsEjected != 4 {
		t.Fatalf("ejected %d, want 4", s.PacketsEjected)
	}
	// All four 33-flit packets arrive over disjoint approaches; with
	// 4-flit/cycle ejection they finish within a whisker of the
	// zero-load single-packet time, far below the serialized bound.
	perPacket := s.PacketLatency / 4
	single := int64(5*(3+1) + 32)
	if perPacket > single+40 {
		t.Errorf("avg packet latency %d suggests ejection serialization (single=%d)",
			perPacket, single)
	}
}
